// Command benchtables regenerates every table and figure of the paper's
// evaluation section and prints the paper-vs-measured comparison.
//
// Usage:
//
//	benchtables -all                 # everything, reduced scale
//	benchtables -table1 -days 3     # full Table 1 protocol (3 fire days)
//	benchtables -table2 -images 281 # full Table 2 run (paper scale)
//	benchtables -fig8 -window 2h    # Figure 8 series
//	benchtables -fig2 -fig6 -fig7 -out ./figures
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"repro/internal/auxdata"
	"repro/internal/experiments"
	"repro/internal/geom"
)

func main() {
	var (
		all    = flag.Bool("all", false, "run every experiment at reduced scale")
		table1 = flag.Bool("table1", false, "reproduce Table 1 (thematic accuracy)")
		table2 = flag.Bool("table2", false, "reproduce Table 2 (chain processing times)")
		fig8   = flag.Bool("fig8", false, "reproduce Figure 8 (refinement response times)")
		fig2   = flag.Bool("fig2", false, "render Figure 2 (fire vector map)")
		fig6   = flag.Bool("fig6", false, "render Figure 6 (thematic overlay map)")
		fig7   = flag.Bool("fig7", false, "render Figure 7 (MODIS-vs-MSG overlay)")
		days   = flag.Int("days", 3, "Table 1: evaluation days")
		images = flag.Int("images", 281, "Table 2: acquisitions to process")
		window = flag.Duration("window", time.Hour, "Figure 8: monitored span per sensor")
		seed   = flag.Int64("seed", 42, "world/scenario seed")
		out    = flag.String("out", ".", "output directory for SVG figures")
	)
	flag.Parse()
	if *all {
		*table1, *table2, *fig8, *fig2, *fig6, *fig7 = true, true, true, true, true, true
		*days = 1
		*images = 20
		*window = 30 * time.Minute
	}
	if !(*table1 || *table2 || *fig8 || *fig2 || *fig6 || *fig7) {
		flag.Usage()
		os.Exit(2)
	}

	if *table1 {
		fmt.Printf("== Table 1 (seed %d, %d days) ==\n", *seed, *days)
		res, err := experiments.Table1(*seed, *days)
		fail(err)
		fmt.Println(res.Render())
	}
	if *table2 {
		fmt.Printf("== Table 2 (seed %d, %d images) ==\n", *seed, *images)
		res, err := experiments.Table2(*seed, *images)
		fail(err)
		fmt.Println(res.Render())
	}
	if *fig8 {
		fmt.Printf("== Figure 8 (seed %d, %v per sensor) ==\n", *seed, *window)
		res, err := experiments.Figure8(*seed, *window)
		fail(err)
		fmt.Println(res.Render())
		fmt.Printf("Municipalities slowest spatial op: %v\n\n", res.MunicipalitiesSlowest())
	}
	if *fig2 {
		m, err := experiments.Figure2(*seed, 15*time.Minute)
		fail(err)
		write(*out, "figure2.svg", m.SVG(900))
	}
	if *fig6 {
		svc, _, err := experiments.CollectProducts(*seed, 15*time.Minute)
		fail(err)
		win := geom.Envelope{MinX: 20.5, MinY: 36.0, MaxX: 24.5, MaxY: 39.5}
		from := time.Date(2007, 8, 24, 0, 0, 0, 0, time.UTC)
		m, err := experiments.Figure6(svc, win, from, from.Add(24*time.Hour))
		fail(err)
		write(*out, "figure6.svg", m.SVG(900))
		write(*out, "figure6.geojson", m.GeoJSON())
	}
	if *fig7 {
		m, err := experiments.Figure7(*seed, 15*time.Minute)
		fail(err)
		write(*out, "figure7.svg", m.SVG(900))
	}
	_ = auxdata.Region
}

func write(dir, name, content string) {
	path := filepath.Join(dir, name)
	fail(os.WriteFile(path, []byte(content), 0o644))
	fmt.Printf("wrote %s (%d bytes)\n", path, len(content))
}

func fail(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchtables:", err)
		os.Exit(1)
	}
}
