// Command reprolint runs the project's static-analysis suite
// (internal/lint) over the given package patterns and exits non-zero
// if any invariant diagnostic remains. It is stdlib-only and offline:
// package loading shells out to `go list` and type-checks from source
// plus the toolchain's export data.
//
// Usage:
//
//	go run ./cmd/reprolint ./...
//	go run ./cmd/reprolint -list
//
// Deliberate exceptions are suppressed in source with
//
//	//lint:allow <analyzer> <reason>
//
// on the flagged line or the line directly above it.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/lint"
)

func main() {
	list := flag.Bool("list", false, "list the analyzers and exit")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: reprolint [-list] [packages]\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	analyzers := lint.All()
	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-16s %s\n", a.Name, a.Doc)
		}
		return
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	prog, err := lint.LoadPackages(patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "reprolint:", err)
		os.Exit(2)
	}
	diags := lint.RunAnalyzers(prog, analyzers)
	for _, d := range diags {
		fmt.Println(d.String())
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "reprolint: %d diagnostic(s)\n", len(diags))
		os.Exit(1)
	}
}
