// Command stsparqld serves Strabon's stSPARQL endpoint over HTTP: the
// query service NOA operators pose the thematic queries of Section 3.2.4
// against. It can serve a static store (the synthetic world plus optional
// Turtle files) or, with -live, a store being written by the fire
// monitoring service while queries run — detection and refinement writes
// and operator reads sharing one store under the read-lock discipline.
//
//	stsparqld -addr :7575
//	stsparqld -addr :7575 -load extra.ttl
//	stsparqld -addr :7575 -live -window 1h -workers 4
//	stsparqld -addr :7575 -plan-cache 1024
//	stsparqld -addr :7575 -live -shards 4 -shard-width 1h
//
// With -shards N the backend is the sharded store (internal/shard):
// the acquisition history partitions into N time-range slices — each
// with its own lock, R-tree and plan cache — behind the same endpoint;
// time-constrained queries prune to the matching slices and fan out
// concurrently, and live writes lock only the slice they land in.
// /stats then reports per-shard cardinalities.
//
// Endpoints: /sparql (GET/POST query; JSON or format=tsv), /update
// (POST), /explain, /stats. SELECT responses stream row by row with
// X-Rows/X-Elapsed-Us trailers; repeated queries skip parse+plan
// through the generation-invalidated plan cache(s) (-plan-cache sizes
// them, 0 disables). Queries run under the request context, optionally
// capped by -query-timeout, so an abandoned or slow client cannot hold
// store read locks indefinitely.
//
// The serving tier layers on top: a generation-keyed result cache
// (-result-cache entries, -result-cache-bytes budget) replays repeated
// queries byte-for-byte without locks until a write to the slices they
// read invalidates them, and cache misses pass an admission gate
// (-max-concurrent evaluations with a -queue-depth FIFO wait queue;
// overflow answers 429 with Retry-After) under per-request -max-rows /
// -max-bytes response budgets.
package main

import (
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"time"

	"repro/internal/auxdata"
	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/resultcache"
	"repro/internal/seviri"
	"repro/internal/shard"
	"repro/internal/strabon"
)

func main() {
	var (
		addr       = flag.String("addr", ":7575", "HTTP listen address")
		seed       = flag.Int64("seed", 42, "synthetic world seed (0 disables world loading)")
		load       = flag.String("load", "", "optional Turtle file to load")
		live       = flag.Bool("live", false, "run the fire monitoring service against the served store")
		sensor     = flag.String("sensor", "MSG1", "live mode sensor stream: MSG1 or MSG2")
		window     = flag.Duration("window", time.Hour, "live mode monitored span")
		workers    = flag.Int("workers", 0, "live mode pipeline workers (0 = NumCPU)")
		planCache  = flag.Int("plan-cache", 256, "compiled-plan cache entries (0 disables plan caching)")
		shards     = flag.Int("shards", 1, "time-range shards (1 = single store)")
		shardWidth = flag.Duration("shard-width", time.Hour, "time span of one shard routing bucket")
		queryTO    = flag.Duration("query-timeout", 0, "per-query evaluation timeout, queue wait included (0 = none)")
		resCache   = flag.Int("result-cache", 256, "result cache entries (0 disables result caching)")
		resBytes   = flag.Int64("result-cache-bytes", 64<<20, "result cache byte budget (0 = unbounded)")
		maxConc    = flag.Int("max-concurrent", 0, "concurrent query evaluations admitted (0 = unlimited)")
		queueDepth = flag.Int("queue-depth", 64, "admission wait-queue depth (with -max-concurrent)")
		maxRows    = flag.Int("max-rows", 0, "per-request row budget (0 = unlimited)")
		maxBytes   = flag.Int64("max-bytes", 0, "per-request response byte budget (0 = unlimited)")
		opsAddr    = flag.String("ops-addr", "", "serve /metrics, /debug/queries and pprof on this separate address (empty = off)")
		slowQuery  = flag.Duration("slow-query", 0, "cache-miss queries at/above this land in /debug/queries (0 = all misses)")
	)
	flag.Parse()

	cfg := seviri.DefaultScenarioConfig()
	var st strabon.API
	if *shards > 1 {
		st = shard.New(shard.Config{
			Slices: *shards,
			Width:  *shardWidth,
			Epoch:  cfg.Start,
		})
		fmt.Fprintf(os.Stderr, "stsparqld: sharded store: %d slices of %v\n", *shards, *shardWidth)
	} else {
		st = strabon.New()
	}

	// The observability surface: a registry + slow-query log shared by
	// the endpoint (which instruments its request path against them) and
	// the separate ops listener (scrape + pprof stay reachable when the
	// serving port is saturated).
	var reg *obs.Registry
	var qlog *obs.QueryLog
	if *opsAddr != "" {
		reg = obs.NewRegistry()
		qlog = obs.NewQueryLog(256)
	}

	var svc *core.Service
	if *live {
		var err error
		svc, err = core.NewServiceWithStore(*seed, cfg, st)
		fail(err)
		svc.Workers = *workers
		if reg != nil {
			svc.Metrics = core.NewPipelineMetrics(reg)
		}
		sens := seviri.MSG1
		if *sensor == "MSG2" {
			sens = seviri.MSG2
		}
		from := cfg.Start.Add(11 * time.Hour)
		go func() {
			fmt.Fprintf(os.Stderr, "stsparqld: live service %s from %s for %v (%d workers)\n",
				sens.Name, from.Format(time.RFC3339), *window, svc.EffectiveWorkers())
			start := time.Now()
			if err := svc.RunWindow(sens, from, *window); err != nil {
				fmt.Fprintln(os.Stderr, "stsparqld: live window:", err)
				return
			}
			fmt.Fprintf(os.Stderr, "stsparqld: live window done: %d acquisitions in %v\n",
				len(svc.Reports), time.Since(start).Round(time.Millisecond))
		}()
	} else if *seed != 0 {
		world := auxdata.Generate(*seed)
		n := st.LoadTriples(world.AllTriples())
		fmt.Fprintf(os.Stderr, "stsparqld: loaded %d triples from synthetic world (seed %d)\n", n, *seed)
	}
	if *load != "" {
		src, err := os.ReadFile(*load)
		fail(err)
		n, err := st.LoadTurtle(string(src))
		fail(err)
		fmt.Fprintf(os.Stderr, "stsparqld: loaded %d triples from %s\n", n, *load)
	}

	st.SetPlanCacheSize(*planCache)

	ep := strabon.NewEndpoint(st)
	ep.QueryTimeout = *queryTO
	ep.MaxRows = *maxRows
	ep.MaxBytes = *maxBytes
	if *resCache > 0 {
		ep.Results = resultcache.New(*resCache, *resBytes)
	}
	if *maxConc > 0 {
		ep.Admission = strabon.NewAdmission(*maxConc, *queueDepth)
	}
	if reg != nil {
		tel := strabon.EnableTelemetry(ep, reg, qlog)
		tel.SlowQuery = *slowQuery
		opsLn, err := net.Listen("tcp", *opsAddr)
		fail(err)
		go http.Serve(opsLn, obs.NewOpsMux(reg, qlog))
		fmt.Fprintf(os.Stderr, "stsparqld: ops surface on %s (/metrics, /debug/queries, /debug/pprof/)\n", opsLn.Addr())
	}
	ln, err := net.Listen("tcp", *addr)
	fail(err)
	fmt.Fprintf(os.Stderr, "stsparqld: serving stSPARQL on %s (/sparql, /update, /explain, /stats; plan cache %d entries, result cache %d entries)\n",
		*addr, *planCache, *resCache)
	fail(http.Serve(ln, ep))
}

func fail(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "stsparqld:", err)
		os.Exit(1)
	}
}
