// Command benchserve runs the closed-loop serving benchmark: it builds
// a sharded store with a day of acquisition history, starts the served
// endpoint (result cache + admission control) on a loopback listener,
// keeps the live writer appending to the current slice, and drives N
// closed-loop clients replaying the hot/cold thematic mix against it —
// then reports client-observed latency quantiles and the result-cache
// hit ratio over the hot set.
//
//	benchserve -clients 4 -requests 500
//	benchserve -requests 500 -cache=false          (miss-path baseline)
//	benchserve -requests 500 -min-hot-hit 0.5      (CI smoke: exit 1 below)
//
// With -min-hot-hit the run fails when cache hits / hot requests falls
// below the floor — the regression gate for the serving tier: a keying
// or invalidation bug (e.g. the writer's slice leaking into hot-window
// vectors) shows up as a collapsed hit ratio long before it shows up
// as latency.
package main

import (
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"time"

	"repro/internal/closedloop"
	"repro/internal/resultcache"
	"repro/internal/shard"
	"repro/internal/strabon"
)

func main() {
	var (
		clients   = flag.Int("clients", 4, "concurrent closed-loop clients")
		requests  = flag.Int("requests", 400, "total request budget")
		hotFrac   = flag.Float64("hot-frac", 0.7, "fraction of requests drawn from the hot set")
		shards    = flag.Int("shards", 4, "time-range shards")
		width     = flag.Duration("width", time.Hour, "shard routing bucket width")
		history   = flag.Int("history", 12, "hours of seeded acquisition history")
		cache     = flag.Bool("cache", true, "enable the result cache")
		resCache  = flag.Int("result-cache", 1024, "result cache entries")
		resBytes  = flag.Int64("result-cache-bytes", 64<<20, "result cache byte budget")
		maxConc   = flag.Int("max-concurrent", 8, "admitted concurrent evaluations (0 = no gate)")
		queue     = flag.Int("queue-depth", 64, "admission wait-queue depth")
		interval  = flag.Duration("writer-interval", 500*time.Microsecond, "live writer insert interval")
		minHotHit = flag.Float64("min-hot-hit", 0, "fail unless hits/hot-requests reaches this (0 = report only)")
	)
	flag.Parse()

	st := shard.New(shard.Config{Slices: *shards, Width: *width, Epoch: closedloop.Day()})
	n := closedloop.Seed(st, *history)
	fmt.Fprintf(os.Stderr, "benchserve: seeded %d triples over %d slices (%d h history)\n", n, *shards, *history)

	ep := strabon.NewEndpoint(st)
	if *cache {
		ep.Results = resultcache.New(*resCache, *resBytes)
	}
	if *maxConc > 0 {
		ep.Admission = strabon.NewAdmission(*maxConc, *queue)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchserve:", err)
		os.Exit(1)
	}
	srv := &http.Server{Handler: ep}
	go srv.Serve(ln)
	defer srv.Close()

	stopWriter := closedloop.StartWriter(st, *interval)
	defer stopWriter()

	rep := closedloop.Run(closedloop.Config{
		BaseURL:  "http://" + ln.Addr().String(),
		Clients:  *clients,
		Requests: *requests,
		HotFrac:  *hotFrac,
		Hot:      closedloop.HotQueries(),
		Cold:     closedloop.ColdQuery,
	})
	stopWriter()

	fmt.Printf("closed loop: %s\n", rep)
	if *cache {
		cs := ep.Results.Stats()
		hotHit := 0.0
		if rep.Hot > 0 {
			hotHit = float64(cs.Hits) / float64(rep.Hot)
		}
		fmt.Printf("result cache: %d hits / %d misses (%d entries, %d bytes, %d evictions, %d invalidations), hot hit ratio %.2f\n",
			cs.Hits, cs.Misses, cs.Entries, cs.Bytes, cs.Evictions, cs.Invalidations, hotHit)
		if *minHotHit > 0 && hotHit < *minHotHit {
			fmt.Fprintf(os.Stderr, "benchserve: FAIL hot hit ratio %.2f < %.2f\n", hotHit, *minHotHit)
			os.Exit(1)
		}
	}
	if ep.Admission != nil {
		as := ep.Admission.Stats()
		fmt.Printf("admission: %d admitted, %d rejected, %d timed out\n", as.Admitted, as.Rejected, as.TimedOut)
	}
	if rep.Errors > 0 {
		fmt.Fprintf(os.Stderr, "benchserve: FAIL %d request errors\n", rep.Errors)
		os.Exit(1)
	}
}
