// Command benchserve runs the closed-loop serving benchmark: it builds
// a sharded store with a day of acquisition history, starts the served
// endpoint (result cache + admission control) on a loopback listener,
// keeps the live writer appending to the current slice, and drives N
// closed-loop clients replaying the hot/cold thematic mix against it —
// then reports client-observed latency quantiles and the result-cache
// hit ratio over the hot set.
//
//	benchserve -clients 4 -requests 500
//	benchserve -requests 500 -cache=false          (miss-path baseline)
//	benchserve -requests 500 -min-hot-hit 0.5      (CI smoke: exit 1 below)
//
// With -min-hot-hit the run fails when cache hits / hot requests falls
// below the floor — the regression gate for the serving tier: a keying
// or invalidation bug (e.g. the writer's slice leaking into hot-window
// vectors) shows up as a collapsed hit ratio long before it shows up
// as latency.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"strings"
	"time"

	"repro/internal/closedloop"
	"repro/internal/obs"
	"repro/internal/resultcache"
	"repro/internal/shard"
	"repro/internal/strabon"
)

// benchResult is the machine-readable run summary -json writes — the
// committed BENCH_serve.json baseline and the CI artifact.
type benchResult struct {
	Clients    int     `json:"clients"`
	Requests   int     `json:"requests"`
	Completed  int     `json:"completed"`
	Hot        int     `json:"hot"`
	Cold       int     `json:"cold"`
	Errors     int     `json:"errors"`
	Rejected   int     `json:"rejected"`
	P50Us      int64   `json:"p50_us"`
	P95Us      int64   `json:"p95_us"`
	P99Us      int64   `json:"p99_us"`
	MaxUs      int64   `json:"max_us"`
	MeanUs     int64   `json:"mean_us"`
	Throughput float64 `json:"throughput_rps"`
	HotHit     float64 `json:"hot_hit_ratio"`
	CacheHits  uint64  `json:"cache_hits"`
	CacheMiss  uint64  `json:"cache_misses"`
}

func main() {
	var (
		clients   = flag.Int("clients", 4, "concurrent closed-loop clients")
		requests  = flag.Int("requests", 400, "total request budget")
		hotFrac   = flag.Float64("hot-frac", 0.7, "fraction of requests drawn from the hot set")
		shards    = flag.Int("shards", 4, "time-range shards")
		width     = flag.Duration("width", time.Hour, "shard routing bucket width")
		history   = flag.Int("history", 12, "hours of seeded acquisition history")
		cache     = flag.Bool("cache", true, "enable the result cache")
		resCache  = flag.Int("result-cache", 1024, "result cache entries")
		resBytes  = flag.Int64("result-cache-bytes", 64<<20, "result cache byte budget")
		maxConc   = flag.Int("max-concurrent", 8, "admitted concurrent evaluations (0 = no gate)")
		queue     = flag.Int("queue-depth", 64, "admission wait-queue depth")
		interval  = flag.Duration("writer-interval", 500*time.Microsecond, "live writer insert interval")
		minHotHit = flag.Float64("min-hot-hit", 0, "fail unless hits/hot-requests reaches this (0 = report only)")
		jsonOut   = flag.String("json", "", "write the machine-readable run summary to this file")
		opsAddr   = flag.String("ops-addr", "", "serve /metrics, /debug/queries and pprof on this address (and self-check the scrape)")
	)
	flag.Parse()

	st := shard.New(shard.Config{Slices: *shards, Width: *width, Epoch: closedloop.Day()})
	n := closedloop.Seed(st, *history)
	fmt.Fprintf(os.Stderr, "benchserve: seeded %d triples over %d slices (%d h history)\n", n, *shards, *history)

	ep := strabon.NewEndpoint(st)
	if *cache {
		ep.Results = resultcache.New(*resCache, *resBytes)
	}
	if *maxConc > 0 {
		ep.Admission = strabon.NewAdmission(*maxConc, *queue)
	}
	var opsURL string
	if *opsAddr != "" {
		reg := obs.NewRegistry()
		qlog := obs.NewQueryLog(256)
		strabon.EnableTelemetry(ep, reg, qlog)
		opsLn, err := net.Listen("tcp", *opsAddr)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchserve: ops listen:", err)
			os.Exit(1)
		}
		opsSrv := &http.Server{Handler: obs.NewOpsMux(reg, qlog)}
		go opsSrv.Serve(opsLn)
		defer opsSrv.Close()
		opsURL = "http://" + opsLn.Addr().String()
		fmt.Fprintf(os.Stderr, "benchserve: ops surface on %s\n", opsURL)
	}

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchserve:", err)
		os.Exit(1)
	}
	srv := &http.Server{Handler: ep}
	go srv.Serve(ln)
	defer srv.Close()

	stopWriter := closedloop.StartWriter(st, *interval)
	defer stopWriter()

	rep := closedloop.Run(closedloop.Config{
		BaseURL:  "http://" + ln.Addr().String(),
		Clients:  *clients,
		Requests: *requests,
		HotFrac:  *hotFrac,
		Hot:      closedloop.HotQueries(),
		Cold:     closedloop.ColdQuery,
	})
	stopWriter()

	fmt.Printf("closed loop: %s\n", rep)
	hotHit := 0.0
	var cs resultcache.Stats
	if *cache {
		cs = ep.Results.Stats()
		if rep.Hot > 0 {
			hotHit = float64(cs.Hits) / float64(rep.Hot)
		}
		fmt.Printf("result cache: %d hits / %d misses (%d entries, %d bytes, %d evictions, %d invalidations), hot hit ratio %.2f\n",
			cs.Hits, cs.Misses, cs.Entries, cs.Bytes, cs.Evictions, cs.Invalidations, hotHit)
	}
	if ep.Admission != nil {
		as := ep.Admission.Stats()
		fmt.Printf("admission: %d admitted, %d rejected, %d timed out\n", as.Admitted, as.Rejected, as.TimedOut)
	}

	if *jsonOut != "" {
		doc := benchResult{
			Clients: *clients, Requests: *requests, Completed: rep.Requests,
			Hot: rep.Hot, Cold: rep.Cold, Errors: rep.Errors, Rejected: rep.Rejected,
			P50Us: rep.P50.Microseconds(), P95Us: rep.P95.Microseconds(),
			P99Us: rep.P99.Microseconds(), MaxUs: rep.Max.Microseconds(),
			MeanUs: rep.Mean.Microseconds(), Throughput: rep.Throughput,
			HotHit: hotHit, CacheHits: cs.Hits, CacheMiss: cs.Misses,
		}
		buf, _ := json.MarshalIndent(doc, "", "  ")
		if err := os.WriteFile(*jsonOut, append(buf, '\n'), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "benchserve: write json:", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "benchserve: wrote %s\n", *jsonOut)
	}

	// Self-check the scrape after the run so a metrics regression (panic
	// in a collect func, malformed exposition) fails the benchmark run —
	// the CI observability smoke leans on this.
	if opsURL != "" {
		families := []string{"strabon_query_seconds", "strabon_http_requests_total", "strabon_shard_triples"}
		if *cache {
			families = append(families, "strabon_result_cache_hits_total")
		}
		if ep.Admission != nil {
			families = append(families, "strabon_admission_admitted_total")
		}
		if err := checkScrape(opsURL+"/metrics", families); err != nil {
			fmt.Fprintln(os.Stderr, "benchserve: FAIL metrics scrape:", err)
			os.Exit(1)
		}
		fmt.Fprintln(os.Stderr, "benchserve: metrics scrape ok")
	}

	if *cache && *minHotHit > 0 && hotHit < *minHotHit {
		fmt.Fprintf(os.Stderr, "benchserve: FAIL hot hit ratio %.2f < %.2f\n", hotHit, *minHotHit)
		os.Exit(1)
	}
	if rep.Errors > 0 {
		fmt.Fprintf(os.Stderr, "benchserve: FAIL %d request errors\n", rep.Errors)
		os.Exit(1)
	}
}

// checkScrape fetches a /metrics URL and sanity-checks the exposition:
// 200, # TYPE lines present, every expected family named.
func checkScrape(url string, families []string) error {
	resp, err := http.Get(url)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("status %d", resp.StatusCode)
	}
	text := string(body)
	if !strings.Contains(text, "# TYPE") {
		return fmt.Errorf("no # TYPE lines in scrape")
	}
	for _, family := range families {
		if !strings.Contains(text, family) {
			return fmt.Errorf("scrape lacks %s", family)
		}
	}
	return nil
}
