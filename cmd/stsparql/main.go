// Command stsparql is a command-line stSPARQL client over the synthetic
// linked-data datasets (and optional Turtle files): the interface NOA
// operators use to pose the thematic queries of Section 3.2.4.
//
//	stsparql -query 'SELECT ?m WHERE { ?m a gag:Municipality . }'
//	stsparql -load extra.ttl -query-file q.rq -format json
//	stsparql -repeat 5 -query '...'   # geometry cache persists across runs
//	echo 'ASK { ?h a noa:Hotspot }' | stsparql
//
// Timing, result counts and geometry-cache occupancy go to stderr;
// results (table, json or tsv) go to stdout. -explain prints the chosen
// evaluation plan instead of executing.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"repro/internal/auxdata"
	"repro/internal/strabon"
	"repro/internal/stsparql"
)

func main() {
	var (
		seed      = flag.Int64("seed", 42, "synthetic world seed (0 disables world loading)")
		load      = flag.String("load", "", "optional Turtle file to load")
		query     = flag.String("query", "", "query text")
		queryFile = flag.String("query-file", "", "file holding the query")
		update    = flag.Bool("update", false, "treat the request as an update")
		explain   = flag.Bool("explain", false, "print the evaluation plan instead of executing")
		format    = flag.String("format", "table", "result format: table, json or tsv")
		repeat    = flag.Int("repeat", 1, "evaluate the query N times (the shared geometry cache makes repeats cheap)")
	)
	flag.Parse()
	if *repeat < 1 {
		*repeat = 1
	}

	// The geometry cache is created here and shared with the store, so
	// every evaluation — across -repeat runs — reuses parsed WKT instead
	// of re-parsing the same coastline literals.
	cache := stsparql.NewCache()
	st := strabon.NewWithCache(cache)
	if *seed != 0 {
		world := auxdata.Generate(*seed)
		n := st.LoadTriples(world.AllTriples())
		fmt.Fprintf(os.Stderr, "loaded %d triples from synthetic world (seed %d)\n", n, *seed)
	}
	if *load != "" {
		src, err := os.ReadFile(*load)
		fail(err)
		n, err := st.LoadTurtle(string(src))
		fail(err)
		fmt.Fprintf(os.Stderr, "loaded %d triples from %s\n", n, *load)
	}

	q := *query
	if *queryFile != "" {
		src, err := os.ReadFile(*queryFile)
		fail(err)
		q = string(src)
	}
	if q == "" {
		src, err := io.ReadAll(os.Stdin)
		fail(err)
		q = string(src)
	}
	if q == "" {
		fmt.Fprintln(os.Stderr, "stsparql: no query given")
		os.Exit(2)
	}

	if *explain {
		plan, err := st.Explain(q)
		fail(err)
		fmt.Print(plan)
		return
	}

	if *update {
		for i := 0; i < *repeat; i++ {
			start := time.Now()
			stats, err := st.Update(q)
			fail(err)
			fmt.Fprintf(os.Stderr, "update run %d: matched %d, deleted %d, inserted %d in %v\n",
				i+1, stats.Matched, stats.Deleted, stats.Inserted, time.Since(start).Round(time.Microsecond))
		}
		reportCache(cache)
		return
	}

	var res *stsparql.Result
	for i := 0; i < *repeat; i++ {
		r, d, err := st.TimedQuery(q)
		fail(err)
		res = r
		fmt.Fprintf(os.Stderr, "run %d: %d rows in %v\n", i+1, len(r.Rows), d.Round(time.Microsecond))
	}
	reportCache(cache)

	switch *format {
	case "json":
		fail(strabon.WriteResultJSON(os.Stdout, res))
	case "tsv":
		fail(strabon.WriteResultTSV(os.Stdout, res))
	case "table":
		printTable(res)
	default:
		fmt.Fprintf(os.Stderr, "stsparql: unknown format %q (want table, json or tsv)\n", *format)
		os.Exit(2)
	}
}

func reportCache(cache *stsparql.Cache) {
	fmt.Fprintf(os.Stderr, "geometry cache: %d parsed WKT literals\n", cache.Size())
}

func printTable(res *stsparql.Result) {
	for _, v := range res.Vars {
		fmt.Printf("%-40s", "?"+v)
	}
	fmt.Println()
	for _, row := range res.Rows {
		for _, v := range res.Vars {
			fmt.Printf("%-40s", truncate(row[v].String(), 38))
		}
		fmt.Println()
	}
}

func truncate(s string, n int) string {
	if len(s) > n {
		return s[:n-3] + "..."
	}
	return s
}

func fail(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "stsparql:", err)
		os.Exit(1)
	}
}
