// Command stsparql is a command-line stSPARQL client over the synthetic
// linked-data datasets (and optional Turtle files): the interface NOA
// operators use to pose the thematic queries of Section 3.2.4.
//
//	stsparql -query 'SELECT ?m WHERE { ?m a gag:Municipality . }'
//	stsparql -load extra.ttl -query-file q.rq -format json
//	stsparql -repeat 5 -query '...'   # plan + geometry caches persist across runs
//	echo 'ASK { ?h a noa:Hotspot }' | stsparql
//
// Timing, result counts, geometry-cache occupancy and plan-cache
// hit/miss counters go to stderr; results (table, json or tsv) go to
// stdout. All three formats render incrementally from the store's
// streaming cursor — rows are printed as the engine produces them and
// flushed every few rows, so a LIMITed query over a huge store prints
// without ever materialising the scan. -explain prints the chosen
// evaluation plan instead of executing.
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"repro/internal/auxdata"
	"repro/internal/strabon"
	"repro/internal/stsparql"
)

// tableFlushRows is how often the incremental table rendering flushes
// its buffer to stdout.
const tableFlushRows = 64

func main() {
	var (
		seed      = flag.Int64("seed", 42, "synthetic world seed (0 disables world loading)")
		load      = flag.String("load", "", "optional Turtle file to load")
		query     = flag.String("query", "", "query text")
		queryFile = flag.String("query-file", "", "file holding the query")
		update    = flag.Bool("update", false, "treat the request as an update")
		explain   = flag.Bool("explain", false, "print the evaluation plan instead of executing")
		analyze   = flag.Bool("analyze", false, "execute the query and print the plan annotated with per-operator actuals (EXPLAIN ANALYZE)")
		format    = flag.String("format", "table", "result format: table, json or tsv")
		repeat    = flag.Int("repeat", 1, "evaluate the query N times (the plan and geometry caches make repeats cheap)")
	)
	flag.Parse()
	if *repeat < 1 {
		*repeat = 1
	}

	// The geometry cache is created here and shared with the store, so
	// every evaluation — across -repeat runs — reuses parsed WKT instead
	// of re-parsing the same coastline literals. The store's built-in
	// plan cache does the same for compiled plans: run 1 parses and
	// plans, runs 2..N hit the cache.
	cache := stsparql.NewCache()
	st := strabon.NewWithCache(cache)
	if *seed != 0 {
		world := auxdata.Generate(*seed)
		n := st.LoadTriples(world.AllTriples())
		fmt.Fprintf(os.Stderr, "loaded %d triples from synthetic world (seed %d)\n", n, *seed)
	}
	if *load != "" {
		src, err := os.ReadFile(*load)
		fail(err)
		n, err := st.LoadTurtle(string(src))
		fail(err)
		fmt.Fprintf(os.Stderr, "loaded %d triples from %s\n", n, *load)
	}

	q := *query
	if *queryFile != "" {
		src, err := os.ReadFile(*queryFile)
		fail(err)
		q = string(src)
	}
	if q == "" {
		src, err := io.ReadAll(os.Stdin)
		fail(err)
		q = string(src)
	}
	if q == "" {
		fmt.Fprintln(os.Stderr, "stsparql: no query given")
		os.Exit(2)
	}

	if *analyze {
		plan, err := st.ExplainAnalyze(context.Background(), q)
		fail(err)
		fmt.Print(plan)
		reportCaches(cache, st)
		return
	}
	if *explain {
		plan, err := st.Explain(q)
		fail(err)
		fmt.Print(plan)
		return
	}

	if *update {
		for i := 0; i < *repeat; i++ {
			start := time.Now()
			stats, err := st.Update(q)
			fail(err)
			fmt.Fprintf(os.Stderr, "update run %d: matched %d, deleted %d, inserted %d in %v\n",
				i+1, stats.Matched, stats.Deleted, stats.Inserted, time.Since(start).Round(time.Microsecond))
		}
		reportCaches(cache, st)
		return
	}

	// Warm-up runs stream to nowhere (a complete iteration, the paper's
	// timing protocol); the last run streams to the chosen renderer.
	for i := 0; i < *repeat; i++ {
		last := i == *repeat-1
		start := time.Now()
		cur, err := st.QueryStreamCtx(context.Background(), q)
		fail(err)
		if last {
			fail(render(cur, *format))
		} else {
			for _, ok := cur.Next(); ok; _, ok = cur.Next() {
			}
		}
		fail(cur.Close())
		fmt.Fprintf(os.Stderr, "run %d: %d rows in %v\n",
			i+1, cur.Rows(), time.Since(start).Round(time.Microsecond))
	}
	reportCaches(cache, st)
}

// render streams the cursor's rows to stdout in the requested format.
func render(cur strabon.QueryCursor, format string) error {
	switch format {
	case "json":
		return renderRows(cur, strabon.NewJSONRowWriter(os.Stdout, cur.Vars()))
	case "tsv":
		return renderRows(cur, strabon.NewTSVRowWriter(os.Stdout, cur.Vars()))
	case "table":
		return renderTable(cur)
	default:
		fmt.Fprintf(os.Stderr, "stsparql: unknown format %q (want table, json or tsv)\n", format)
		os.Exit(2)
		return nil
	}
}

func renderRows(cur strabon.QueryCursor, rw strabon.RowWriter) error {
	for row, ok := cur.Next(); ok; row, ok = cur.Next() {
		if err := rw.Row(row); err != nil {
			return err
		}
	}
	return rw.End()
}

// renderTable prints the fixed-width table incrementally: rows go to a
// buffered writer flushed every tableFlushRows rows, never holding more
// than one flush interval in memory.
func renderTable(cur strabon.QueryCursor) error {
	w := bufio.NewWriter(os.Stdout)
	for _, v := range cur.Vars() {
		fmt.Fprintf(w, "%-40s", "?"+v)
	}
	fmt.Fprintln(w)
	n := 0
	for row, ok := cur.Next(); ok; row, ok = cur.Next() {
		for _, v := range cur.Vars() {
			fmt.Fprintf(w, "%-40s", truncate(row[v].String(), 38))
		}
		fmt.Fprintln(w)
		if n++; n%tableFlushRows == 0 {
			if err := w.Flush(); err != nil {
				return err
			}
		}
	}
	return w.Flush()
}

func reportCaches(cache *stsparql.Cache, st *strabon.Store) {
	fmt.Fprintf(os.Stderr, "geometry cache: %d parsed WKT literals\n", cache.Size())
	ps := st.PlanStats()
	fmt.Fprintf(os.Stderr, "plan cache: %d hits, %d misses, %d evictions (%d entries)\n",
		ps.Hits, ps.Misses, ps.Evictions, ps.Entries)
}

func truncate(s string, n int) string {
	if len(s) > n {
		return s[:n-3] + "..."
	}
	return s
}

func fail(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "stsparql:", err)
		os.Exit(1)
	}
}
