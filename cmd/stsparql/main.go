// Command stsparql is a command-line stSPARQL endpoint over the synthetic
// linked-data datasets (and optional Turtle files): the interface NOA
// operators use to pose the thematic queries of Section 3.2.4.
//
//	stsparql -query 'SELECT ?m WHERE { ?m a gag:Municipality . }'
//	stsparql -load extra.ttl -query-file q.rq
//	echo 'ASK { ?h a noa:Hotspot }' | stsparql
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/auxdata"
	"repro/internal/strabon"
)

func main() {
	var (
		seed      = flag.Int64("seed", 42, "synthetic world seed (0 disables world loading)")
		load      = flag.String("load", "", "optional Turtle file to load")
		query     = flag.String("query", "", "query text")
		queryFile = flag.String("query-file", "", "file holding the query")
		update    = flag.Bool("update", false, "treat the request as an update")
	)
	flag.Parse()

	st := strabon.New()
	if *seed != 0 {
		world := auxdata.Generate(*seed)
		n := st.LoadTriples(world.AllTriples())
		fmt.Fprintf(os.Stderr, "loaded %d triples from synthetic world (seed %d)\n", n, *seed)
	}
	if *load != "" {
		src, err := os.ReadFile(*load)
		fail(err)
		n, err := st.LoadTurtle(string(src))
		fail(err)
		fmt.Fprintf(os.Stderr, "loaded %d triples from %s\n", n, *load)
	}

	q := *query
	if *queryFile != "" {
		src, err := os.ReadFile(*queryFile)
		fail(err)
		q = string(src)
	}
	if q == "" {
		src, err := io.ReadAll(os.Stdin)
		fail(err)
		q = string(src)
	}
	if q == "" {
		fmt.Fprintln(os.Stderr, "stsparql: no query given")
		os.Exit(2)
	}

	if *update {
		stats, err := st.Update(q)
		fail(err)
		fmt.Printf("matched %d solutions, deleted %d, inserted %d triples\n",
			stats.Matched, stats.Deleted, stats.Inserted)
		return
	}
	res, _, err := st.TimedQuery(q)
	fail(err)
	for _, v := range res.Vars {
		fmt.Printf("%-40s", "?"+v)
	}
	fmt.Println()
	for _, row := range res.Rows {
		for _, v := range res.Vars {
			fmt.Printf("%-40s", truncate(row[v].String(), 38))
		}
		fmt.Println()
	}
	fmt.Fprintf(os.Stderr, "%d rows\n", len(res.Rows))
}

func truncate(s string, n int) string {
	if len(s) > n {
		return s[:n-3] + "..."
	}
	return s
}

func fail(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "stsparql:", err)
		os.Exit(1)
	}
}
