// Command sevirigen generates a synthetic MSG/SEVIRI HRIT archive: a
// directory of segment files for every acquisition of a sensor over a
// window, plus a ground-truth summary. The archive can be attached to
// the data vault with AttachDir (see examples/vaultexplore).
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"repro/internal/auxdata"
	"repro/internal/seviri"
)

func main() {
	var (
		seed     = flag.Int64("seed", 42, "world/scenario seed")
		out      = flag.String("out", "./hrit-archive", "output directory")
		sensor   = flag.String("sensor", "MSG1", "MSG1 or MSG2")
		window   = flag.Duration("window", 30*time.Minute, "archive span")
		segments = flag.Int("segments", 4, "HRIT segments per acquisition")
		compress = flag.Bool("compress", true, "apply the wavelet stage")
	)
	flag.Parse()

	sens := seviri.MSG1
	if *sensor == "MSG2" {
		sens = seviri.MSG2
	}
	world := auxdata.Generate(*seed)
	cfg := seviri.DefaultScenarioConfig()
	sc := seviri.GenerateScenario(world, *seed+1, cfg)
	sim := seviri.NewSimulator(sc)
	fail(os.MkdirAll(*out, 0o755))

	from := cfg.Start.Add(11 * time.Hour)
	files, bytes := 0, 0
	for _, at := range seviri.AcquisitionTimes(sens, from, *window) {
		acq, err := sim.Acquire(sens, at, *segments, *compress)
		fail(err)
		for ch, segs := range acq.Segments {
			for i, raw := range segs {
				name := fmt.Sprintf("%s_%s_%s_seg%d.hrit", sens.Name, ch,
					at.UTC().Format("20060102T150405"), i)
				fail(os.WriteFile(filepath.Join(*out, name), raw, 0o644))
				files++
				bytes += len(raw)
			}
		}
	}
	fmt.Printf("sevirigen: wrote %d segment files (%.1f MiB) to %s\n",
		files, float64(bytes)/(1<<20), *out)
	fmt.Printf("ground truth: %d fires, %d artifacts over %d days\n",
		len(sc.Fires), len(sc.Artifacts), cfg.Days)
	for _, f := range sc.Fires {
		fmt.Printf("  fire %2d at (%.3f, %.3f)  %s..%s  peak %.1f km, %.0f K\n",
			f.ID, f.Center.X, f.Center.Y,
			f.Start.Format("02 15:04"), f.End.Format("02 15:04"),
			f.PeakRadiusKm, f.Intensity)
	}
}

func fail(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "sevirigen:", err)
		os.Exit(1)
	}
}
