// Command firewatch runs the end-to-end fire monitoring service over a
// synthetic fire day and disseminates the products: per-acquisition
// reports on stdout and, with -serve, an HTTP server combining the
// product endpoints (GeoJSON, SVG map — the role GeoServer plays in the
// pre-TELEIOS architecture) with Strabon's stSPARQL endpoint (/sparql,
// /update, /explain, /stats). The stSPARQL endpoint comes up before the
// acquisition window starts, so operator queries run against the store
// while detection and refinement are writing to it: SELECTs stream row
// by row under the store's read lock, and each pipeline flush bumps the
// store generation, invalidating cached query plans so repeated
// operator queries never see a stale plan.
package main

import (
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"sync/atomic"
	"time"

	"repro/internal/auxdata"
	"repro/internal/core"
	"repro/internal/geom"
	"repro/internal/mapgen"
	"repro/internal/obs"
	"repro/internal/seviri"
	"repro/internal/shard"
	"repro/internal/strabon"
)

func main() {
	var (
		seed       = flag.Int64("seed", 42, "world/scenario seed")
		sensor     = flag.String("sensor", "MSG1", "sensor stream: MSG1 (5 min) or MSG2 (15 min)")
		window     = flag.Duration("window", time.Hour, "monitored span")
		workers    = flag.Int("workers", 0, "acquisition pipeline workers (0 = NumCPU)")
		serve      = flag.String("serve", "", "optional HTTP listen address, e.g. :8080")
		shards     = flag.Int("shards", 1, "time-range store shards (1 = single store)")
		shardWidth = flag.Duration("shard-width", time.Hour, "time span of one shard routing bucket")
		opsAddr    = flag.String("ops-addr", "", "serve /metrics, /debug/queries and pprof on this separate address (empty = off)")
	)
	flag.Parse()

	sens := seviri.MSG1
	if *sensor == "MSG2" {
		sens = seviri.MSG2
	}
	cfg := seviri.DefaultScenarioConfig()
	var st strabon.API = strabon.New()
	if *shards > 1 {
		st = shard.New(shard.Config{Slices: *shards, Width: *shardWidth, Epoch: cfg.Start})
		fmt.Printf("firewatch: sharded store: %d slices of %v\n", *shards, *shardWidth)
	}
	svc, err := core.NewServiceWithStore(*seed, cfg, st)
	fail(err)
	svc.Workers = *workers

	var reg *obs.Registry
	var qlog *obs.QueryLog
	if *opsAddr != "" {
		reg = obs.NewRegistry()
		qlog = obs.NewQueryLog(256)
		svc.Metrics = core.NewPipelineMetrics(reg)
		opsLn, err := net.Listen("tcp", *opsAddr)
		fail(err)
		go http.Serve(opsLn, obs.NewOpsMux(reg, qlog))
		fmt.Printf("firewatch: ops surface on %s (/metrics, /debug/queries, /debug/pprof/)\n", opsLn.Addr())
	}

	from := cfg.Start.Add(11 * time.Hour)
	fmt.Printf("firewatch: servicing %s from %s for %v (deadline %v per acquisition, %d workers)\n",
		sens.Name, from.Format(time.RFC3339), *window, sens.Cadence, svc.EffectiveWorkers())
	if svc.EffectiveWorkers() > 1 {
		fmt.Println("firewatch: pipeline mode — Store and scoped refinement figures are flush-level (shared across a batch)")
	}

	// With -serve, the stSPARQL endpoint comes up before the window runs:
	// operator queries and the acquisition pipeline's writes share the
	// store under its read-lock discipline. The product endpoints read the
	// service's in-memory report state, which is only stable once the
	// window completes; they answer 503 until then.
	var windowDone atomic.Bool
	if *serve != "" {
		mux := http.NewServeMux()
		ep := strabon.NewEndpoint(svc.Strabon)
		if reg != nil {
			strabon.EnableTelemetry(ep, reg, qlog)
		}
		mux.Handle("/sparql", ep)
		mux.Handle("/update", ep)
		mux.Handle("/explain", ep)
		mux.Handle("/stats", ep)
		mux.HandleFunc("/products.geojson", func(w http.ResponseWriter, r *http.Request) {
			if !windowDone.Load() {
				http.Error(w, "acquisition window in progress", http.StatusServiceUnavailable)
				return
			}
			m := productMap(svc)
			w.Header().Set("Content-Type", "application/geo+json")
			fmt.Fprint(w, m.GeoJSON())
		})
		mux.HandleFunc("/map.svg", func(w http.ResponseWriter, r *http.Request) {
			if !windowDone.Load() {
				http.Error(w, "acquisition window in progress", http.StatusServiceUnavailable)
				return
			}
			m := productMap(svc)
			w.Header().Set("Content-Type", "image/svg+xml")
			fmt.Fprint(w, m.SVG(900))
		})
		ln, err := net.Listen("tcp", *serve)
		fail(err)
		fmt.Printf("firewatch: serving on %s (/sparql, /update, /explain, /stats, /products.geojson, /map.svg)\n", *serve)
		go func() { fail(http.Serve(ln, mux)) }()
	}

	start := time.Now()
	runErr := svc.RunWindow(sens, from, *window)
	wall := time.Since(start)
	// Completed acquisitions are committed and reported even when a later
	// one failed.
	for _, rep := range svc.Reports {
		status := "OK"
		if !rep.DeadlineMet {
			status = "DEADLINE MISSED"
		}
		fmt.Printf("%s  chain=%8v  hotspots=%3d -> refined=%3d  [%s]\n",
			rep.At.Format("15:04"), rep.ChainTime.Round(time.Millisecond),
			rep.RawHotspot, rep.Refined, status)
		for _, op := range rep.RefineOps {
			fmt.Printf("      %-18s %8v  (affected %d)\n", op.Op,
				op.Duration.Round(time.Microsecond), op.Affected)
		}
	}
	if n := len(svc.Reports); n > 0 {
		fmt.Printf("firewatch: %d acquisitions in %v (%.1f acq/s)\n",
			n, wall.Round(time.Millisecond), float64(n)/wall.Seconds())
	}
	fail(runErr)

	if *serve == "" {
		return
	}
	windowDone.Store(true)
	stStats := svc.Strabon.Stats()
	ps := svc.Strabon.PlanStats()
	fmt.Printf("firewatch: served %d queries during the window (plan cache: %d hits, %d misses, %d evictions)\n",
		stStats.Queries, ps.Hits, ps.Misses, ps.Evictions)
	fmt.Println("firewatch: window complete, continuing to serve (interrupt to stop)")
	select {}
}

func productMap(svc *core.Service) *mapgen.Map {
	world := svc.Sim.Scenario.World
	m := mapgen.New(auxdata.Region, "firewatch: active fire products")
	var land []geom.Geometry
	for _, p := range world.Land {
		land = append(land, p)
	}
	m.AddLayer(mapgen.Layer{Name: "Coastline", Stroke: "#7a6a4f", Fill: "#f3ecd9", Geoms: land})
	var fires []geom.Geometry
	for _, p := range svc.PlainProducts {
		for _, h := range p.Hotspots {
			fires = append(fires, h.Geometry)
		}
	}
	m.AddLayer(mapgen.Layer{Name: "Hotspots", Stroke: "#990000", Fill: "#ff2200", Opacity: 0.6, Geoms: fires})
	return m
}

func fail(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "firewatch:", err)
		os.Exit(1)
	}
}
