// Package auxdata synthesises the auxiliary geospatial datasets of the
// paper's Section 3.2.3 for a deterministic "Greece-like" coastal region:
// a coastline (mainland plus islands), the Corine Land Cover grid, the
// Greek Administrative Geography (prefectures and municipalities with
// populations), LinkedGeoData amenities (fire stations, primary roads)
// and a GeoNames-style gazetteer. Every dataset is exported as stRDF
// triples under the same ontologies the paper uses, so the refinement
// queries run unchanged.
//
// The real datasets are not redistributable; the generator preserves what
// the refinement step depends on — schema, geometry classes, topological
// relationships (municipalities partition land, towns lie on land, land
// cover tiles the mainland) — from a single seed.
package auxdata

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/geom"
)

// Region is the service's area of interest: a Greece-sized lon/lat box.
var Region = geom.Envelope{MinX: 20.0, MinY: 35.0, MaxX: 26.0, MaxY: 40.0}

// CoverClass is a level-3 Corine land cover class.
type CoverClass int

// Land cover classes used by the synthetic world.
const (
	CoverSea CoverClass = iota
	CoverForest
	CoverScrub
	CoverAgricultural
	CoverUrban
)

// String returns a short name.
func (c CoverClass) String() string {
	switch c {
	case CoverSea:
		return "sea"
	case CoverForest:
		return "forest"
	case CoverScrub:
		return "scrub"
	case CoverAgricultural:
		return "agricultural"
	default:
		return "urban"
	}
}

// Municipality is one lowest-level administrative unit.
type Municipality struct {
	ID         string
	Name       string
	Prefecture string
	YpesCode   string
	Population int
	Geometry   geom.MultiPolygon
}

// Town is a populated place (GeoNames feature).
type Town struct {
	ID         string
	Name       string
	Population int
	Capital    bool // prefecture capital (featureCode P.PPLA)
	Location   geom.Point
	Prefecture string
}

// Road is an LGD primary road.
type Road struct {
	ID   string
	Name string
	Path geom.LineString
}

// FireStation is an LGD amenity node.
type FireStation struct {
	ID       string
	Name     string
	Location geom.Point
}

// CoverCell is one Corine polygon with its classification.
type CoverCell struct {
	ID       string
	Class    CoverClass
	Geometry geom.MultiPolygon
}

// World is the full synthetic geography.
type World struct {
	Seed           int64
	Land           []geom.Polygon // mainland first, then islands
	Municipalities []Municipality
	Prefectures    []string
	Towns          []Town
	Roads          []Road
	FireStations   []FireStation
	Cover          []CoverCell

	coverGrid map[[2]int]CoverClass
	coverStep float64
	landEnv   []geom.Envelope
}

// Generate builds the world deterministically from a seed.
func Generate(seed int64) *World {
	r := rand.New(rand.NewSource(seed))
	w := &World{Seed: seed, coverStep: 0.25, coverGrid: make(map[[2]int]CoverClass)}

	// Mainland: a large radial blob in the region's north-west.
	w.Land = append(w.Land, blob(r, 22.2, 38.4, 1.9, 48))
	// Islands to the south-east.
	for i := 0; i < 3; i++ {
		cx := 23.5 + r.Float64()*2.0
		cy := 35.6 + r.Float64()*1.4
		w.Land = append(w.Land, blob(r, cx, cy, 0.25+r.Float64()*0.35, 24))
	}
	for _, p := range w.Land {
		w.landEnv = append(w.landEnv, p.Envelope())
	}

	w.generateAdministrative(r)
	w.generateTowns(r)
	w.generateCover(r)
	w.generateInfrastructure(r)
	return w
}

// blob builds an irregular star-convex polygon: radius modulated by a few
// seeded harmonics.
func blob(r *rand.Rand, cx, cy, baseR float64, n int) geom.Polygon {
	type harm struct{ amp, phase, freq float64 }
	hs := []harm{
		{0.25 * r.Float64(), r.Float64() * 2 * math.Pi, 2},
		{0.18 * r.Float64(), r.Float64() * 2 * math.Pi, 3},
		{0.12 * r.Float64(), r.Float64() * 2 * math.Pi, 5},
		{0.08 * r.Float64(), r.Float64() * 2 * math.Pi, 7},
	}
	ring := make(geom.Ring, 0, n+1)
	for i := 0; i < n; i++ {
		th := 2 * math.Pi * float64(i) / float64(n)
		rad := baseR
		for _, h := range hs {
			rad *= 1 + h.amp*math.Sin(h.freq*th+h.phase)
		}
		ring = append(ring, geom.Point{
			X: cx + rad*math.Cos(th),
			Y: cy + 0.8*rad*math.Sin(th), // slight latitudinal squash
		})
	}
	ring = append(ring, ring[0])
	return geom.Polygon{Shell: ring}.Normalized()
}

// LandAt reports whether a point is on land.
func (w *World) LandAt(p geom.Point) bool {
	for i, poly := range w.Land {
		if !w.landEnv[i].ContainsPoint(p) {
			continue
		}
		if geom.PointInPolygon(p, poly) {
			return true
		}
	}
	return false
}

// CoverAt returns the land cover class at a point.
func (w *World) CoverAt(p geom.Point) CoverClass {
	key := [2]int{
		int(math.Floor((p.X - Region.MinX) / w.coverStep)),
		int(math.Floor((p.Y - Region.MinY) / w.coverStep)),
	}
	if c, ok := w.coverGrid[key]; ok {
		return c
	}
	return CoverSea
}

var prefectureNames = []string{
	"Achaia", "Boeotia", "Corinthia", "Doris", "Evrytania",
	"Phthiotis", "Phocis", "Arcadia", "Argolis",
}

var townNames = []string{
	"Patra", "Thiva", "Korinthos", "Amfissa", "Karpenisi", "Lamia",
	"Itea", "Tripoli", "Nafplio", "Livadeia", "Aigio", "Xylokastro",
	"Galaxidi", "Delphi", "Arachova", "Kalavryta", "Nemea", "Loutraki",
}

func (w *World) generateAdministrative(r *rand.Rand) {
	// Municipalities: grid cells clipped to land; prefectures: 2x2 blocks.
	const cell = 0.8
	env := w.Land[0].Envelope()
	for _, isl := range w.Land[1:] {
		env = env.Expand(isl.Envelope())
	}
	prefIdx := 0
	prefOf := make(map[[2]int]string)
	id := 0
	for gy := 0; ; gy++ {
		y0 := env.MinY + float64(gy)*cell
		if y0 >= env.MaxY {
			break
		}
		for gx := 0; ; gx++ {
			x0 := env.MinX + float64(gx)*cell
			if x0 >= env.MaxX {
				break
			}
			cellPoly := geom.Envelope{MinX: x0, MinY: y0, MaxX: x0 + cell, MaxY: y0 + cell}.ToPolygon()
			var parts geom.MultiPolygon
			for _, land := range w.Land {
				parts = append(parts, geom.Intersection(cellPoly, land)...)
			}
			if parts.Area() < 0.01 {
				continue
			}
			pk := [2]int{gx / 2, gy / 2}
			pref, ok := prefOf[pk]
			if !ok {
				pref = prefectureNames[prefIdx%len(prefectureNames)]
				if prefIdx >= len(prefectureNames) {
					pref = fmt.Sprintf("%s%d", pref, prefIdx/len(prefectureNames)+1)
				}
				prefOf[pk] = pref
				w.Prefectures = append(w.Prefectures, pref)
				prefIdx++
			}
			id++
			w.Municipalities = append(w.Municipalities, Municipality{
				ID:         fmt.Sprintf("mun%03d", id),
				Name:       fmt.Sprintf("Municipality of %s %d", pref, id),
				Prefecture: pref,
				YpesCode:   fmt.Sprintf("%04d", 1000+id),
				Population: 2000 + r.Intn(120000),
				Geometry:   parts,
			})
		}
	}
}

func (w *World) generateTowns(r *rand.Rand) {
	seen := make(map[string]bool)
	for i, name := range townNames {
		// Rejection-sample a land point.
		var p geom.Point
		found := false
		for try := 0; try < 400; try++ {
			p = geom.Point{
				X: Region.MinX + r.Float64()*Region.Width(),
				Y: Region.MinY + r.Float64()*Region.Height(),
			}
			if w.LandAt(p) {
				found = true
				break
			}
		}
		if !found {
			continue
		}
		pref := w.prefectureAt(p)
		capital := pref != "" && !seen[pref]
		if capital {
			seen[pref] = true
		}
		w.Towns = append(w.Towns, Town{
			ID:         fmt.Sprintf("town%02d", i),
			Name:       name,
			Population: 5000 + r.Intn(200000),
			Capital:    capital,
			Location:   p,
			Prefecture: pref,
		})
	}
}

func (w *World) prefectureAt(p geom.Point) string {
	for _, m := range w.Municipalities {
		if geom.Intersects(p, m.Geometry) {
			return m.Prefecture
		}
	}
	return ""
}

func (w *World) generateCover(r *rand.Rand) {
	id := 0
	nx := int(Region.Width()/w.coverStep) + 1
	ny := int(Region.Height()/w.coverStep) + 1
	for gy := 0; gy < ny; gy++ {
		for gx := 0; gx < nx; gx++ {
			x0 := Region.MinX + float64(gx)*w.coverStep
			y0 := Region.MinY + float64(gy)*w.coverStep
			centre := geom.Point{X: x0 + w.coverStep/2, Y: y0 + w.coverStep/2}
			if !w.LandAt(centre) {
				continue
			}
			class := w.classifyCell(r, centre)
			w.coverGrid[[2]int{gx, gy}] = class
			cellPoly := geom.Envelope{MinX: x0, MinY: y0, MaxX: x0 + w.coverStep, MaxY: y0 + w.coverStep}.ToPolygon()
			var parts geom.MultiPolygon
			for _, land := range w.Land {
				parts = append(parts, geom.Intersection(cellPoly, land)...)
			}
			if parts.IsEmpty() {
				parts = geom.MultiPolygon{cellPoly}
			}
			id++
			w.Cover = append(w.Cover, CoverCell{
				ID:       fmt.Sprintf("Area_%d", id),
				Class:    class,
				Geometry: parts,
			})
		}
	}
}

func (w *World) classifyCell(r *rand.Rand, centre geom.Point) CoverClass {
	// Urban near towns.
	for _, t := range w.Towns {
		if t.Location.DistanceTo(centre) < 0.18 {
			return CoverUrban
		}
	}
	// Agricultural plains in the south of the mainland, forests north,
	// scrub sprinkled in.
	u := r.Float64()
	switch {
	case centre.Y < 37.8 && u < 0.55:
		return CoverAgricultural
	case u < 0.25:
		return CoverScrub
	default:
		return CoverForest
	}
}

func (w *World) generateInfrastructure(r *rand.Rand) {
	// Primary roads chain towns west-to-east.
	towns := append([]Town(nil), w.Towns...)
	for i := 0; i < len(towns); i++ {
		for j := i + 1; j < len(towns); j++ {
			if towns[j].Location.X < towns[i].Location.X {
				towns[i], towns[j] = towns[j], towns[i]
			}
		}
	}
	for i := 1; i < len(towns); i++ {
		a, b := towns[i-1].Location, towns[i].Location
		if a.DistanceTo(b) > 2.5 {
			continue // no causeways across the open sea
		}
		mid := geom.Point{
			X: (a.X + b.X) / 2,
			Y: (a.Y+b.Y)/2 + (r.Float64()-0.5)*0.1,
		}
		w.Roads = append(w.Roads, Road{
			ID:   fmt.Sprintf("way%03d", i),
			Name: fmt.Sprintf("EO-%d %s–%s", 70+i, towns[i-1].Name, towns[i].Name),
			Path: geom.LineString{a, mid, b},
		})
	}
	// One fire station per capital plus a few extras.
	n := 0
	for _, t := range w.Towns {
		if !t.Capital && r.Float64() > 0.3 {
			continue
		}
		n++
		w.FireStations = append(w.FireStations, FireStation{
			ID:   fmt.Sprintf("node%07d", 1119850000+n),
			Name: fmt.Sprintf("Fire Service of %s", t.Name),
			Location: geom.Point{
				X: t.Location.X + (r.Float64()-0.5)*0.03,
				Y: t.Location.Y + (r.Float64()-0.5)*0.03,
			},
		})
	}
}

// RandomForestPoint samples a forest or scrub location — ignition sites
// for fire scenarios.
func (w *World) RandomForestPoint(r *rand.Rand) (geom.Point, bool) {
	for try := 0; try < 1000; try++ {
		p := geom.Point{
			X: Region.MinX + r.Float64()*Region.Width(),
			Y: Region.MinY + r.Float64()*Region.Height(),
		}
		if !w.LandAt(p) {
			continue
		}
		if c := w.CoverAt(p); c == CoverForest || c == CoverScrub {
			return p, true
		}
	}
	return geom.Point{}, false
}

// RandomAgriculturalPoint samples an agricultural location — the paper's
// farmer-burn false alarms start here.
func (w *World) RandomAgriculturalPoint(r *rand.Rand) (geom.Point, bool) {
	for try := 0; try < 1000; try++ {
		p := geom.Point{
			X: Region.MinX + r.Float64()*Region.Width(),
			Y: Region.MinY + r.Float64()*Region.Height(),
		}
		if w.LandAt(p) && w.CoverAt(p) == CoverAgricultural {
			return p, true
		}
	}
	return geom.Point{}, false
}

// CoastPoint samples a sea location near the coastline — sun-glint false
// alarms of the plain chain appear here.
func (w *World) CoastPoint(r *rand.Rand) (geom.Point, bool) {
	for try := 0; try < 2000; try++ {
		land := w.Land[r.Intn(len(w.Land))]
		v := land.Shell[r.Intn(len(land.Shell)-1)]
		p := geom.Point{
			X: v.X + (r.Float64()-0.5)*0.15,
			Y: v.Y + (r.Float64()-0.5)*0.15,
		}
		if !w.LandAt(p) && Region.ContainsPoint(p) {
			return p, true
		}
	}
	return geom.Point{}, false
}

// newRand returns a seeded random source; exposed for tests and the
// scenario generator so everything derives from the world seed.
func newRand(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }
