package auxdata

import (
	"fmt"

	"repro/internal/geom"
	"repro/internal/ontology"
	"repro/internal/rdf"
)

// This file exports the synthetic world as the five RDF datasets of the
// paper's Section 3.2.3, each under its original ontology so the
// refinement queries run verbatim.

func iri(s string) rdf.Term { return rdf.NewIRI(s) }

func geomLit(g geom.Geometry) rdf.Term { return rdf.NewGeometry(geom.WKT(g)) }

// CoastlineTriples exports each land polygon as a coast:Coastline, the
// dataset the delete-in-sea and refine-in-coast updates join against.
func (w *World) CoastlineTriples() []rdf.Triple {
	var out []rdf.Triple
	for i, land := range w.Land {
		s := iri(fmt.Sprintf("%sCoastline_%d", ontology.Coast, i+1))
		out = append(out,
			rdf.Triple{S: s, P: iri(rdf.RDFType), O: iri(ontology.ClassCoastline)},
			rdf.Triple{S: s, P: iri(ontology.HasGeometry), O: geomLit(land)},
		)
	}
	return out
}

func coverClassIRI(c CoverClass) string {
	switch c {
	case CoverForest:
		return ontology.ClassConiferous
	case CoverScrub:
		return ontology.ClassSclerophyll
	case CoverAgricultural:
		return ontology.ClassArable
	case CoverUrban:
		return ontology.ClassUrbanFabric
	default:
		return ontology.ClassSea
	}
}

// CorineTriples exports the land cover cells following the paper's
// modelling: "for each specific area in the shapefile, a unique URI is
// created and it is connected with an instance of the third level".
func (w *World) CorineTriples() []rdf.Triple {
	var out []rdf.Triple
	for _, cell := range w.Cover {
		s := iri(ontology.CLC + cell.ID)
		out = append(out,
			rdf.Triple{S: s, P: iri(rdf.RDFType), O: iri(ontology.ClassCLCArea)},
			rdf.Triple{S: s, P: iri(ontology.HasGeometry), O: geomLit(cell.Geometry)},
			rdf.Triple{S: s, P: iri(ontology.PropLandUse), O: iri(coverClassIRI(cell.Class))},
		)
	}
	return out
}

// GAGTriples exports the administrative geography: municipalities with
// population, YPES code, prefecture membership and boundaries.
func (w *World) GAGTriples() []rdf.Triple {
	var out []rdf.Triple
	for _, pref := range w.Prefectures {
		s := iri(ontology.GAG + "pre" + sanitize(pref))
		out = append(out,
			rdf.Triple{S: s, P: iri(rdf.RDFType), O: iri(ontology.ClassPrefecture)},
			rdf.Triple{S: s, P: iri(ontology.PropLabel), O: rdf.NewLiteral(pref)},
		)
	}
	for _, m := range w.Municipalities {
		s := iri(ontology.GAG + m.ID)
		out = append(out,
			rdf.Triple{S: s, P: iri(rdf.RDFType), O: iri(ontology.ClassMunicipality)},
			rdf.Triple{S: s, P: iri(ontology.PropLabel), O: rdf.NewLiteral(m.Name)},
			rdf.Triple{S: s, P: iri(ontology.PropPopulation), O: rdf.NewInteger(int64(m.Population))},
			rdf.Triple{S: s, P: iri(ontology.PropYpesCode), O: rdf.NewLiteral(m.YpesCode)},
			rdf.Triple{S: s, P: iri(ontology.PropIsPartOf), O: iri(ontology.GAG + "pre" + sanitize(m.Prefecture))},
			rdf.Triple{S: s, P: iri(ontology.HasGeometry), O: geomLit(m.Geometry)},
		)
	}
	return out
}

// LGDTriples exports the LinkedGeoData slice: fire stations and primary
// roads, shaped like the paper's lgd:node1119854639 example.
func (w *World) LGDTriples() []rdf.Triple {
	var out []rdf.Triple
	for _, fs := range w.FireStations {
		s := iri(ontology.LGD + fs.ID)
		out = append(out,
			rdf.Triple{S: s, P: iri(rdf.RDFType), O: iri(ontology.ClassLGDAmenity)},
			rdf.Triple{S: s, P: iri(rdf.RDFType), O: iri(ontology.ClassLGDFireStation)},
			rdf.Triple{S: s, P: iri(rdf.RDFType), O: iri(ontology.ClassLGDNode)},
			rdf.Triple{S: s, P: iri(ontology.PropLGDDirectType), O: iri(ontology.ClassLGDFireStation)},
			rdf.Triple{S: s, P: iri(ontology.PropLabel), O: rdf.NewLiteral(fs.Name)},
			rdf.Triple{S: s, P: iri(ontology.HasGeometry), O: geomLit(fs.Location)},
		)
	}
	for _, rd := range w.Roads {
		s := iri(ontology.LGD + rd.ID)
		out = append(out,
			rdf.Triple{S: s, P: iri(rdf.RDFType), O: iri(ontology.ClassLGDPrimary)},
			rdf.Triple{S: s, P: iri(rdf.RDFType), O: iri(ontology.ClassLGDWay)},
			rdf.Triple{S: s, P: iri(ontology.PropLabel), O: rdf.NewLiteral(rd.Name)},
			rdf.Triple{S: s, P: iri(ontology.HasGeometry), O: geomLit(rd.Path)},
		)
	}
	return out
}

// GeoNamesTriples exports the gazetteer, shaped like the paper's Patras
// example (feature class P, PPLA for prefecture capitals).
func (w *World) GeoNamesTriples() []rdf.Triple {
	var out []rdf.Triple
	for i, t := range w.Towns {
		s := iri(fmt.Sprintf("%s%d/", ontology.GNRes, 255000+i))
		code := ontology.CodePPL
		if t.Capital {
			code = ontology.CodePPLA
		}
		out = append(out,
			rdf.Triple{S: s, P: iri(rdf.RDFType), O: iri(ontology.ClassGNFeature)},
			rdf.Triple{S: s, P: iri(ontology.PropGNName), O: rdf.NewLiteral(t.Name)},
			rdf.Triple{S: s, P: iri(ontology.PropGNAltName), O: rdf.NewLangLiteral(t.Name, "en")},
			rdf.Triple{S: s, P: iri(ontology.PropGNCountryCode), O: rdf.NewLiteral("GR")},
			rdf.Triple{S: s, P: iri(ontology.PropGNFeatureClass), O: iri(ontology.GN + "P")},
			rdf.Triple{S: s, P: iri(ontology.PropGNFeatureCode), O: iri(code)},
			rdf.Triple{S: s, P: iri(ontology.HasGeometry), O: geomLit(t.Location)},
		)
	}
	return out
}

// AllTriples concatenates every dataset plus the ontology schema.
func (w *World) AllTriples() []rdf.Triple {
	var out []rdf.Triple
	out = append(out, ontologyTriples()...)
	out = append(out, w.CoastlineTriples()...)
	out = append(out, w.CorineTriples()...)
	out = append(out, w.GAGTriples()...)
	out = append(out, w.LGDTriples()...)
	out = append(out, w.GeoNamesTriples()...)
	return out
}

func ontologyTriples() []rdf.Triple { return ontologyPkgTriples }

var ontologyPkgTriples = ontology.Triples()

func sanitize(s string) string {
	out := make([]rune, 0, len(s))
	for _, r := range s {
		if r == ' ' {
			continue
		}
		out = append(out, r)
	}
	return string(out)
}
