package auxdata

import (
	"testing"

	"repro/internal/geom"
	"repro/internal/ontology"
	"repro/internal/rdf"
)

func TestGenerateDeterministic(t *testing.T) {
	w1 := Generate(42)
	w2 := Generate(42)
	if len(w1.Municipalities) != len(w2.Municipalities) || len(w1.Towns) != len(w2.Towns) {
		t.Fatal("same seed produced different worlds")
	}
	if len(w1.Towns) > 0 && !w1.Towns[0].Location.Equals(w2.Towns[0].Location) {
		t.Fatal("town positions differ across runs")
	}
	w3 := Generate(7)
	if len(w3.Towns) > 0 && len(w1.Towns) > 0 && w3.Towns[0].Location.Equals(w1.Towns[0].Location) {
		t.Fatal("different seeds produced identical towns")
	}
}

func TestWorldHasSubstance(t *testing.T) {
	w := Generate(42)
	if len(w.Land) < 2 {
		t.Fatalf("land polygons = %d", len(w.Land))
	}
	if len(w.Municipalities) < 5 {
		t.Fatalf("municipalities = %d", len(w.Municipalities))
	}
	if len(w.Towns) < 5 {
		t.Fatalf("towns = %d", len(w.Towns))
	}
	if len(w.Cover) < 20 {
		t.Fatalf("cover cells = %d", len(w.Cover))
	}
	if len(w.FireStations) == 0 || len(w.Roads) == 0 {
		t.Fatal("no infrastructure")
	}
}

func TestTownsAreOnLand(t *testing.T) {
	w := Generate(42)
	for _, town := range w.Towns {
		if !w.LandAt(town.Location) {
			t.Fatalf("town %s is in the sea at %v", town.Name, town.Location)
		}
	}
}

func TestMunicipalitiesLieOnLand(t *testing.T) {
	w := Generate(42)
	for _, m := range w.Municipalities {
		c := geom.Centroid(m.Geometry)
		// The centroid of a clipped coastal municipality can fall in a
		// bay; accept either on-land or within a small distance of land.
		if !w.LandAt(c) {
			onLand := false
			for _, land := range w.Land {
				if geom.Intersects(m.Geometry, land) {
					onLand = true
					break
				}
			}
			if !onLand {
				t.Fatalf("municipality %s does not touch land", m.ID)
			}
		}
	}
}

func TestCoverConsistency(t *testing.T) {
	w := Generate(42)
	// Points sampled from generator helpers must classify consistently.
	r := newRand(w.Seed)
	for i := 0; i < 20; i++ {
		if p, ok := w.RandomForestPoint(r); ok {
			if c := w.CoverAt(p); c != CoverForest && c != CoverScrub {
				t.Fatalf("forest point classifies as %v", c)
			}
			if !w.LandAt(p) {
				t.Fatal("forest point in the sea")
			}
		}
		if p, ok := w.RandomAgriculturalPoint(r); ok {
			if w.CoverAt(p) != CoverAgricultural {
				t.Fatal("agricultural point misclassified")
			}
		}
		if p, ok := w.CoastPoint(r); ok {
			if w.LandAt(p) {
				t.Fatal("coast (sea) point on land")
			}
		}
	}
	// Deep sea is sea.
	if w.CoverAt(geom.Point{X: 25.9, Y: 35.05}) != CoverSea {
		// This corner may rarely be land; only check when it is sea.
		if !w.LandAt(geom.Point{X: 25.9, Y: 35.05}) {
			t.Fatal("sea point not classified as sea")
		}
	}
}

func TestRDFExports(t *testing.T) {
	w := Generate(42)
	all := w.AllTriples()
	if len(all) < 500 {
		t.Fatalf("only %d triples", len(all))
	}
	s := rdf.NewStore()
	for _, tp := range all {
		s.Add(tp)
	}
	// Every exported geometry literal must be parseable WKT.
	bad := 0
	s.MatchTerms(rdf.Term{}, rdf.NewIRI(ontology.HasGeometry), rdf.Term{}, func(tp rdf.Triple) bool {
		if _, err := geom.ParseWKT(tp.O.Value); err != nil {
			bad++
		}
		return true
	})
	if bad > 0 {
		t.Fatalf("%d unparseable geometry literals", bad)
	}
	// Dataset classes present.
	for _, class := range []string{
		ontology.ClassCoastline, ontology.ClassCLCArea, ontology.ClassMunicipality,
		ontology.ClassLGDFireStation, ontology.ClassGNFeature, ontology.ClassPrefecture,
	} {
		cid, ok := s.Dict().Lookup(rdf.NewIRI(class))
		if !ok {
			t.Fatalf("class %s missing", class)
		}
		tid, _ := s.Dict().Lookup(rdf.NewIRI(rdf.RDFType))
		if len(s.Subjects(tid, cid)) == 0 {
			t.Fatalf("no instances of %s", class)
		}
	}
}

func TestPrefectureCapitals(t *testing.T) {
	w := Generate(42)
	caps := 0
	for _, town := range w.Towns {
		if town.Capital {
			caps++
			if town.Prefecture == "" {
				t.Fatalf("capital %s has no prefecture", town.Name)
			}
		}
	}
	if caps == 0 {
		t.Fatal("no prefecture capitals")
	}
}
