package geom

import (
	"math"
	"sort"
)

// This file implements the constructive set operations exposed to stSPARQL
// as strdf:intersection, strdf:union (binary and aggregate) and
// strdf:difference. Area/area operations use the Greiner-Hormann clipping
// algorithm on hole-free rings with a deterministic perturbation fallback
// for degenerate configurations (shared vertices, collinear overlapping
// edges), followed by ring nesting to reassemble polygons with holes.

type boolOp int

const (
	opIntersection boolOp = iota
	opUnion
	opDifference
)

// Intersection returns the shared area of two geometries as a
// MultiPolygon. Non-area inputs contribute no area; use IntersectionG for
// mixed-dimension results.
func Intersection(g1, g2 Geometry) MultiPolygon {
	a1 := toPolys(g1)
	a2 := toPolys(g2)
	if len(a1) == 0 || len(a2) == 0 {
		return nil
	}
	var out MultiPolygon
	for _, p := range a1 {
		for _, q := range a2 {
			out = append(out, clipPolygons(p, q, opIntersection)...)
		}
	}
	return out
}

// Union returns the combined area of two geometries as a MultiPolygon.
func Union(g1, g2 Geometry) MultiPolygon {
	polys := append(toPolys(g1), toPolys(g2)...)
	return UnionAllPolygons(polys)
}

// UnionAllPolygons folds a polygon set into a union MultiPolygon. This is
// the strdf:union aggregate used by the coastline refinement query.
func UnionAllPolygons(polys []Polygon) MultiPolygon {
	var acc MultiPolygon
	for _, p := range polys {
		if p.IsEmpty() {
			continue
		}
		acc = unionInto(acc, p)
	}
	return acc
}

// unionInto merges p into the accumulated disjoint set acc, keeping members
// pairwise disjoint so later predicates stay simple.
func unionInto(acc MultiPolygon, p Polygon) MultiPolygon {
	cur := MultiPolygon{p}
	var out MultiPolygon
	for _, q := range acc {
		merged := false
		for i, c := range cur {
			if polygonPolygonIntersect(q, c) {
				u := clipPolygons(q, c, opUnion)
				// Replace c with the union members; q is consumed.
				cur = append(append(append(MultiPolygon{}, cur[:i]...), cur[i+1:]...), u...)
				merged = true
				break
			}
		}
		if !merged {
			out = append(out, q)
		}
	}
	return append(out, cur...)
}

// Difference returns the area of g1 not covered by g2 as a MultiPolygon.
func Difference(g1, g2 Geometry) MultiPolygon {
	a1 := toPolys(g1)
	a2 := toPolys(g2)
	if len(a1) == 0 {
		return nil
	}
	cur := MultiPolygon(a1)
	for _, q := range a2 {
		var next MultiPolygon
		for _, p := range cur {
			next = append(next, clipPolygons(p, q, opDifference)...)
		}
		cur = next
		if len(cur) == 0 {
			break
		}
	}
	return cur
}

// SymmetricDifference returns (g1 - g2) union (g2 - g1).
func SymmetricDifference(g1, g2 Geometry) MultiPolygon {
	d1 := Difference(g1, g2)
	d2 := Difference(g2, g1)
	return UnionAllPolygons(append([]Polygon(d1), d2...))
}

// IntersectionG is the dimension-general strdf:intersection: point inputs
// yield the contained points, line inputs the clipped line parts, and area
// inputs the clipped area.
func IntersectionG(g1, g2 Geometry) Geometry {
	if g1 == nil || g2 == nil {
		return Collection{}
	}
	d1, d2 := g1.Dimension(), g2.Dimension()
	if d1 > d2 {
		return IntersectionG(g2, g1)
	}
	switch d1 {
	case 0:
		pts, _, _ := flatten(g1)
		var out MultiPoint
		for _, p := range pts {
			if Intersects(p, g2) {
				out = append(out, p)
			}
		}
		return out
	case 1:
		if d2 == 1 {
			return lineLineIntersectionPoints(g1, g2)
		}
		_, lines, _ := flatten(g1)
		_, _, polys := flatten(g2)
		var out MultiLineString
		for _, l := range lines {
			out = append(out, clipLineToPolygons(l, polys)...)
		}
		return out
	default:
		return Intersection(g1, g2)
	}
}

func lineLineIntersectionPoints(g1, g2 Geometry) MultiPoint {
	_, l1, _ := flatten(g1)
	_, l2, _ := flatten(g2)
	var out MultiPoint
	for _, a := range l1 {
		for _, b := range l2 {
			for i := 1; i < len(a); i++ {
				for j := 1; j < len(b); j++ {
					if res, pt := segmentIntersect(a[i-1], a[i], b[j-1], b[j]); res == segCross || res == segTouch {
						out = append(out, pt)
					}
				}
			}
		}
	}
	return dedupPoints(out)
}

func dedupPoints(pts MultiPoint) MultiPoint {
	var out MultiPoint
	for _, p := range pts {
		dup := false
		for _, q := range out {
			if p.Equals(q) {
				dup = true
				break
			}
		}
		if !dup {
			out = append(out, p)
		}
	}
	return out
}

// clipLineToPolygons keeps the parts of l inside the union of polys.
func clipLineToPolygons(l LineString, polys []Polygon) MultiLineString {
	if len(l) < 2 {
		return nil
	}
	var out MultiLineString
	var cur LineString
	flush := func() {
		if len(cur) >= 2 {
			out = append(out, cur)
		}
		cur = nil
	}
	for i := 1; i < len(l); i++ {
		a, b := l[i-1], l[i]
		// Split segment at all ring crossings.
		cuts := []float64{0, 1}
		for _, poly := range polys {
			for _, r := range poly.Rings() {
				for j := 1; j < len(r); j++ {
					if res, pt := segmentIntersect(a, b, r[j-1], r[j]); res == segCross || res == segTouch {
						t := projectParam(a, b, pt)
						cuts = append(cuts, t)
					}
				}
			}
		}
		sort.Float64s(cuts)
		for k := 1; k < len(cuts); k++ {
			t0, t1 := cuts[k-1], cuts[k]
			if t1-t0 < Epsilon {
				continue
			}
			mid := Point{a.X + (t0+t1)/2*(b.X-a.X), a.Y + (t0+t1)/2*(b.Y-a.Y)}
			p0 := Point{a.X + t0*(b.X-a.X), a.Y + t0*(b.Y-a.Y)}
			p1 := Point{a.X + t1*(b.X-a.X), a.Y + t1*(b.Y-a.Y)}
			inside := false
			for _, poly := range polys {
				if locateInPolygon(mid, poly) != locOutside {
					inside = true
					break
				}
			}
			if inside {
				if len(cur) == 0 {
					cur = append(cur, p0)
				}
				cur = append(cur, p1)
			} else {
				flush()
			}
		}
	}
	flush()
	return out
}

func projectParam(a, b, p Point) float64 {
	dx, dy := b.X-a.X, b.Y-a.Y
	l2 := dx*dx + dy*dy
	if l2 < 1e-30 {
		return 0
	}
	return ((p.X-a.X)*dx + (p.Y-a.Y)*dy) / l2
}

// toPolys extracts the polygonal members of any geometry.
func toPolys(g Geometry) []Polygon {
	if g == nil {
		return nil
	}
	_, _, polys := flatten(g)
	return polys
}

// clipPolygons applies a boolean op to two polygons (which may carry
// holes) and returns the resulting polygon set.
func clipPolygons(a, b Polygon, op boolOp) MultiPolygon {
	a = a.Normalized()
	b = b.Normalized()
	// Hole-free fast path plus the hole algebra described in DESIGN.md:
	// a = shellA - holesA, b = shellB - holesB.
	base := clipShells(Polygon{Shell: a.Shell}, Polygon{Shell: b.Shell}, op)
	switch op {
	case opIntersection:
		// (shellA inter shellB) - holesA - holesB
		out := base
		for _, h := range append(a.Holes, b.Holes...) {
			out = subtractRing(out, h)
		}
		return out
	case opDifference:
		// a - b = (shellA - shellB) + (shellA inter holesB), all minus holesA.
		out := base
		for _, h := range b.Holes {
			out = append(out, clipShells(Polygon{Shell: a.Shell}, Polygon{Shell: holeAsShell(h)}, opIntersection)...)
		}
		for _, h := range a.Holes {
			out = subtractRing(out, h)
		}
		return out
	default: // union
		out := base
		// Holes survive where not covered by the other polygon.
		for _, h := range a.Holes {
			hp := Polygon{Shell: holeAsShell(h)}
			for _, rem := range Difference(hp, b) {
				out = subtractPolygon(out, rem)
			}
		}
		for _, h := range b.Holes {
			hp := Polygon{Shell: holeAsShell(h)}
			for _, rem := range Difference(hp, a) {
				out = subtractPolygon(out, rem)
			}
		}
		return out
	}
}

func holeAsShell(h Ring) Ring {
	if h.IsCCW() {
		return h
	}
	return h.Reversed()
}

func subtractRing(mp MultiPolygon, h Ring) MultiPolygon {
	return subtractPolygon(mp, Polygon{Shell: holeAsShell(h)})
}

func subtractPolygon(mp MultiPolygon, p Polygon) MultiPolygon {
	var out MultiPolygon
	for _, m := range mp {
		out = append(out, clipPolygons(m, p, opDifference)...)
	}
	return out
}

// clipShells runs Greiner-Hormann on two hole-free polygons.
func clipShells(a, b Polygon, op boolOp) MultiPolygon {
	if a.IsEmpty() {
		if op == opUnion && !b.IsEmpty() {
			return MultiPolygon{b}
		}
		return nil
	}
	if b.IsEmpty() {
		if op == opUnion || op == opDifference {
			return MultiPolygon{a}
		}
		return nil
	}
	if !a.Envelope().Intersects(b.Envelope()) {
		return disjointResult(a, b, op)
	}
	for attempt := 0; attempt < 6; attempt++ {
		bb := b
		if attempt > 0 {
			bb = perturbPolygon(b, attempt)
		}
		rings, ok := greinerHormann(a.Shell, bb.Shell, op)
		if ok {
			return assemblePolygons(rings)
		}
	}
	// All perturbations degenerate (pathological input): fall back to the
	// containment-only approximation.
	return disjointOrNested(a, b, op)
}

// perturbPolygon translates and microscopically rotates b to break vertex
// and edge coincidences. The displacement is ~1e-7 of the envelope
// diagonal — metres at most — and deterministic per attempt.
func perturbPolygon(b Polygon, attempt int) Polygon {
	env := b.Envelope()
	diag := math.Hypot(env.Width(), env.Height())
	if diag < Epsilon {
		diag = 1
	}
	d := diag * 3e-8 * float64(attempt)
	angle := float64(attempt) * 1.2345
	dx, dy := d*math.Cos(angle), d*math.Sin(angle)
	shell := make(Ring, len(b.Shell))
	for i, p := range b.Shell {
		shell[i] = Point{p.X + dx, p.Y + dy}
	}
	return Polygon{Shell: shell}
}

func disjointResult(a, b Polygon, op boolOp) MultiPolygon {
	switch op {
	case opIntersection:
		return nil
	case opDifference:
		return MultiPolygon{a}
	default:
		return MultiPolygon{a, b}
	}
}

// disjointOrNested resolves the no-boundary-intersection cases.
func disjointOrNested(a, b Polygon, op boolOp) MultiPolygon {
	aInB := locateInPolygon(interiorPoint(a), b) == locInside
	bInA := locateInPolygon(interiorPoint(b), a) == locInside
	switch op {
	case opIntersection:
		if aInB {
			return MultiPolygon{a}
		}
		if bInA {
			return MultiPolygon{b}
		}
		return nil
	case opDifference:
		if aInB {
			return nil
		}
		if bInA {
			// a with hole b.
			hole := b.Shell
			if hole.IsCCW() {
				hole = hole.Reversed()
			}
			return MultiPolygon{{Shell: a.Shell, Holes: []Ring{hole}}}
		}
		return MultiPolygon{a}
	default:
		if aInB {
			return MultiPolygon{b}
		}
		if bInA {
			return MultiPolygon{a}
		}
		return MultiPolygon{a, b}
	}
}

// ghVertex is a node of the Greiner-Hormann doubly linked vertex list.
type ghVertex struct {
	pt         Point
	next, prev *ghVertex
	intersect  bool
	entry      bool
	visited    bool
	neighbor   *ghVertex
	alpha      float64 // position along the source edge, for ordering
}

// buildList converts a CCW ring into a circular linked list (dropping the
// duplicate closing vertex).
func buildList(r Ring) *ghVertex {
	n := len(r) - 1
	if n < 3 {
		return nil
	}
	var head, prev *ghVertex
	for i := 0; i < n; i++ {
		v := &ghVertex{pt: r[i]}
		if head == nil {
			head = v
		} else {
			prev.next = v
			v.prev = prev
		}
		prev = v
	}
	prev.next = head
	head.prev = prev
	return head
}

// greinerHormann clips CCW subject ring s against CCW clip ring c. The
// second return value is false when a degenerate intersection was found
// and the caller should perturb and retry.
func greinerHormann(s, c Ring, op boolOp) ([]Ring, bool) {
	if !s.IsCCW() {
		s = s.Reversed()
	}
	if !c.IsCCW() {
		c = c.Reversed()
	}
	subj := buildList(s)
	clip := buildList(c)
	if subj == nil || clip == nil {
		return nil, true
	}

	// Phase 1: find and insert intersections.
	degenerate := false
	nIntersections := 0
	forEachEdge(subj, func(s1 *ghVertex) bool {
		s2 := nextNonIntersect(s1)
		forEachEdge(clip, func(c1 *ghVertex) bool {
			c2 := nextNonIntersect(c1)
			res, pt := segmentIntersect(s1.pt, s2.pt, c1.pt, c2.pt)
			switch res {
			case segNone:
			case segCross:
				as := projectParam(s1.pt, s2.pt, pt)
				ac := projectParam(c1.pt, c2.pt, pt)
				if as < 1e-12 || as > 1-1e-12 || ac < 1e-12 || ac > 1-1e-12 {
					degenerate = true
					return false
				}
				vs := &ghVertex{pt: pt, intersect: true, alpha: as}
				vc := &ghVertex{pt: pt, intersect: true, alpha: ac}
				vs.neighbor, vc.neighbor = vc, vs
				insertBetween(s1, s2, vs)
				insertBetween(c1, c2, vc)
				nIntersections++
			default:
				degenerate = true
				return false
			}
			return true
		})
		return !degenerate
	})
	if degenerate {
		return nil, false
	}
	if nIntersections == 0 {
		sp := Polygon{Shell: s}
		cp := Polygon{Shell: c}
		return polysToRings(disjointOrNested(sp, cp, op)), true
	}
	if nIntersections%2 != 0 {
		// Numerically inconsistent crossing count; perturb and retry.
		return nil, false
	}

	// Phase 2: mark entry/exit. A subject intersection is an entry into the
	// clip polygon if the preceding position was outside the clip.
	markEntries(subj, c, op == opUnion || op == opDifference)
	markEntries(clip, s, op == opUnion)

	// Phase 3: trace result rings.
	var out []Ring
	for {
		start := firstUnvisited(subj)
		if start == nil {
			break
		}
		ring := traceRing(start)
		if len(ring) >= 3 {
			ring = append(ring, ring[0])
			rr := Ring(ring)
			if rr.Area() > 1e-18 {
				out = append(out, rr)
			}
		}
	}
	return out, true
}

func polysToRings(mp MultiPolygon) []Ring {
	var out []Ring
	for _, p := range mp {
		out = append(out, p.Shell)
		out = append(out, p.Holes...)
	}
	return out
}

// forEachEdge visits every original (non-intersection) vertex of the list.
func forEachEdge(head *ghVertex, f func(*ghVertex) bool) {
	v := head
	for {
		if !v.intersect {
			if !f(v) {
				return
			}
		}
		// Advance to next original vertex.
		v = nextNonIntersect(v)
		if v == head {
			return
		}
	}
}

func nextNonIntersect(v *ghVertex) *ghVertex {
	n := v.next
	for n.intersect {
		n = n.next
	}
	return n
}

// insertBetween inserts nv between original vertices a and b, ordered by
// alpha among any existing intersection vertices.
func insertBetween(a, b, nv *ghVertex) {
	cur := a
	for cur.next != b && cur.next.intersect && cur.next.alpha < nv.alpha {
		cur = cur.next
	}
	nv.next = cur.next
	nv.prev = cur
	cur.next.prev = nv
	cur.next = nv
}

// markEntries sets the entry flag on intersection vertices of list `head`
// with respect to ring other; invert flips the flags (for union/difference
// operand roles).
func markEntries(head *ghVertex, other Ring, invert bool) {
	// Status before the first vertex: is head.pt inside other?
	inside := locateInRing(head.pt, other) == locInside
	entry := !inside
	if invert {
		entry = !entry
	}
	v := head
	for {
		if v.intersect {
			v.entry = entry
			entry = !entry
		}
		v = v.next
		if v == head {
			return
		}
	}
}

// firstUnvisited finds an unprocessed intersection vertex.
func firstUnvisited(head *ghVertex) *ghVertex {
	v := head
	for {
		if v.intersect && !v.visited {
			return v
		}
		v = v.next
		if v == head {
			return nil
		}
	}
}

// traceRing walks the linked lists from an intersection vertex, switching
// lists at every intersection, until it returns to the start.
func traceRing(start *ghVertex) []Point {
	var out []Point
	v := start
	for i := 0; ; i++ {
		if i > 1<<20 {
			// Safety valve against list corruption.
			return nil
		}
		v.visited = true
		if v.neighbor != nil {
			v.neighbor.visited = true
		}
		if v.entry {
			for {
				out = append(out, v.pt)
				v = v.next
				if v.intersect {
					break
				}
			}
		} else {
			for {
				out = append(out, v.pt)
				v = v.prev
				if v.intersect {
					break
				}
			}
		}
		v.visited = true
		if v.neighbor == nil {
			return out
		}
		v = v.neighbor
		if v == start || (v.neighbor != nil && v.neighbor == start) || samePos(v, start) {
			return out
		}
	}
}

func samePos(a, b *ghVertex) bool {
	return a.pt.Equals(b.pt) && a.visited && b.visited
}

// assemblePolygons nests a flat set of rings into polygons with holes
// using even-odd containment depth.
func assemblePolygons(rings []Ring) MultiPolygon {
	if len(rings) == 0 {
		return nil
	}
	type node struct {
		ring  Ring
		depth int
	}
	nodes := make([]node, len(rings))
	for i, r := range rings {
		nodes[i] = node{ring: r}
	}
	// Depth = number of other rings containing this ring's interior point.
	for i := range nodes {
		ip := interiorPoint(Polygon{Shell: ccw(nodes[i].ring)})
		for j := range nodes {
			if i == j {
				continue
			}
			if locateInRing(ip, nodes[j].ring) == locInside {
				nodes[i].depth++
			}
		}
	}
	// Sort shells (even depth) by depth so parents come first.
	sort.SliceStable(nodes, func(i, j int) bool { return nodes[i].depth < nodes[j].depth })
	var out MultiPolygon
	for _, n := range nodes {
		if n.depth%2 == 0 {
			out = append(out, Polygon{Shell: ccw(n.ring)})
		} else {
			// Attach hole to the innermost containing shell.
			ip := interiorPoint(Polygon{Shell: ccw(n.ring)})
			for i := len(out) - 1; i >= 0; i-- {
				if locateInRing(ip, out[i].Shell) == locInside {
					out[i].Holes = append(out[i].Holes, cw(n.ring))
					break
				}
			}
		}
	}
	return out
}

func ccw(r Ring) Ring {
	if r.IsCCW() {
		return r
	}
	return r.Reversed()
}

func cw(r Ring) Ring {
	if r.IsCCW() {
		return r.Reversed()
	}
	return r
}
