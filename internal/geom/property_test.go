package geom

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// boundedPoint produces coordinates in a Greece-like window so random
// geometries are numerically representative of the service data.
func boundedPoint(r *rand.Rand) Point {
	return Point{
		X: 19 + r.Float64()*10, // 19..29 deg E
		Y: 34 + r.Float64()*8,  // 34..42 deg N
	}
}

func randomSquare(r *rand.Rand) Polygon {
	c := boundedPoint(r)
	side := 0.01 + r.Float64()*2
	return NewSquare(c.X, c.Y, side)
}

// randomConvex builds a random convex polygon from a point cloud hull.
func randomConvex(r *rand.Rand) Polygon {
	n := 4 + r.Intn(8)
	c := boundedPoint(r)
	radius := 0.05 + r.Float64()*1.5
	pts := make([]Point, n)
	for i := range pts {
		ang := r.Float64() * 2 * math.Pi
		rad := radius * (0.3 + 0.7*r.Float64())
		pts[i] = Point{c.X + rad*math.Cos(ang), c.Y + rad*math.Sin(ang)}
	}
	hull := ConvexHull(pts)
	return Polygon{Shell: hull}
}

func quickCfg(seed int64) *quick.Config {
	return &quick.Config{
		MaxCount: 150,
		Rand:     rand.New(rand.NewSource(seed)),
		Values:   nil,
	}
}

func TestPropertyWKTRoundTripPreservesArea(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	for i := 0; i < 200; i++ {
		p := randomConvex(r)
		if p.Shell == nil || !p.Shell.Valid() {
			continue
		}
		g, err := ParseWKT(WKT(p))
		if err != nil {
			t.Fatalf("roundtrip parse: %v", err)
		}
		if math.Abs(Area(g)-p.Area()) > 1e-9*math.Max(1, p.Area()) {
			t.Fatalf("area changed in WKT roundtrip: %g vs %g", Area(g), p.Area())
		}
	}
}

func TestPropertyIntersectionCommutesOnArea(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	for i := 0; i < 150; i++ {
		a := randomSquare(r)
		b := randomConvex(r)
		if !b.Shell.Valid() {
			continue
		}
		ab := Intersection(a, b).Area()
		ba := Intersection(b, a).Area()
		tol := 1e-6 * math.Max(1, math.Max(a.Area(), b.Area()))
		if math.Abs(ab-ba) > tol {
			t.Fatalf("intersection area not symmetric: %g vs %g\nA=%s\nB=%s", ab, ba, WKT(a), WKT(b))
		}
	}
}

func TestPropertyInclusionExclusion(t *testing.T) {
	// area(A) + area(B) == area(A∪B) + area(A∩B)
	r := rand.New(rand.NewSource(3))
	for i := 0; i < 150; i++ {
		a := randomSquare(r)
		b := randomSquare(r)
		u := Union(a, b).Area()
		inter := Intersection(a, b).Area()
		lhs := a.Area() + b.Area()
		rhs := u + inter
		tol := 1e-4 * math.Max(1e-6, lhs)
		if math.Abs(lhs-rhs) > tol {
			t.Fatalf("inclusion-exclusion violated: %g vs %g\nA=%s\nB=%s", lhs, rhs, WKT(a), WKT(b))
		}
	}
}

func TestPropertyDifferencePartition(t *testing.T) {
	// area(A-B) + area(A∩B) == area(A)
	r := rand.New(rand.NewSource(4))
	for i := 0; i < 150; i++ {
		a := randomConvex(r)
		b := randomSquare(r)
		if !a.Shell.Valid() {
			continue
		}
		d := Difference(a, b).Area()
		inter := Intersection(a, b).Area()
		tol := 1e-4 * math.Max(1e-6, a.Area())
		if math.Abs(d+inter-a.Area()) > tol {
			t.Fatalf("difference partition violated: %g + %g != %g\nA=%s\nB=%s",
				d, inter, a.Area(), WKT(a), WKT(b))
		}
	}
}

func TestPropertyIntersectionWithinOperands(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	for i := 0; i < 100; i++ {
		a := randomSquare(r)
		b := randomConvex(r)
		if !b.Shell.Valid() {
			continue
		}
		inter := Intersection(a, b)
		if inter.Area() > a.Area()+1e-6 || inter.Area() > b.Area()+1e-6 {
			t.Fatalf("intersection bigger than operand")
		}
		// Every intersection polygon centroid must lie in both operands
		// (convex clip of convex-ish shapes; centroid is interior).
		for _, p := range inter {
			c := interiorPoint(p)
			if !PointInPolygon(c, a) && Distance(c, a) > 1e-6 {
				t.Fatalf("intersection point %v escapes A", c)
			}
			if !PointInPolygon(c, b) && Distance(c, b) > 1e-6 {
				t.Fatalf("intersection point %v escapes B", c)
			}
		}
	}
}

func TestPropertyEnvelopeConsistency(t *testing.T) {
	err := quick.Check(func(x1, y1, x2, y2 float64) bool {
		// Map raw floats into a sane range.
		f := func(v float64) float64 { return math.Mod(math.Abs(v), 100) }
		a := Point{f(x1), f(y1)}
		b := Point{f(x2), f(y2)}
		e := EmptyEnvelope().ExpandPoint(a).ExpandPoint(b)
		return e.ContainsPoint(a) && e.ContainsPoint(b) &&
			e.Width() >= 0 && e.Height() >= 0
	}, quickCfg(6))
	if err != nil {
		t.Fatal(err)
	}
}

func TestPropertyConvexHullContainsInput(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for i := 0; i < 100; i++ {
		n := 3 + r.Intn(30)
		pts := make([]Point, n)
		for j := range pts {
			pts[j] = boundedPoint(r)
		}
		hull := ConvexHull(pts)
		if !hull.Valid() {
			continue // collinear degenerate cloud
		}
		poly := Polygon{Shell: hull}
		for _, p := range pts {
			if locateInPolygon(p, poly) == locOutside {
				t.Fatalf("hull excludes input point %v", p)
			}
		}
	}
}

func TestPropertyContainsImpliesIntersects(t *testing.T) {
	r := rand.New(rand.NewSource(8))
	for i := 0; i < 150; i++ {
		a := randomConvex(r)
		b := randomSquare(r)
		if !a.Shell.Valid() {
			continue
		}
		if Contains(a, b) && !Intersects(a, b) {
			t.Fatalf("Contains without Intersects:\nA=%s\nB=%s", WKT(a), WKT(b))
		}
		if Contains(a, b) && Disjoint(a, b) {
			t.Fatal("Contains with Disjoint")
		}
	}
}

func TestPropertySimplifyNeverGrows(t *testing.T) {
	r := rand.New(rand.NewSource(9))
	for i := 0; i < 100; i++ {
		n := 2 + r.Intn(40)
		l := make(LineString, n)
		for j := range l {
			l[j] = boundedPoint(r)
		}
		s := Simplify(l, r.Float64())
		if len(s) > len(l) {
			t.Fatalf("simplify grew the line: %d -> %d", len(l), len(s))
		}
		if len(s) < 2 {
			t.Fatalf("simplify dropped endpoints: %d", len(s))
		}
		if !s[0].Equals(l[0]) || !s[len(s)-1].Equals(l[len(l)-1]) {
			t.Fatal("simplify moved endpoints")
		}
	}
}

func TestPropertyDistanceSymmetric(t *testing.T) {
	r := rand.New(rand.NewSource(10))
	for i := 0; i < 80; i++ {
		a := randomSquare(r)
		b := randomSquare(r)
		d1 := Distance(a, b)
		d2 := Distance(b, a)
		if math.Abs(d1-d2) > 1e-9 {
			t.Fatalf("distance not symmetric: %g vs %g", d1, d2)
		}
		if d1 > 0 && Intersects(a, b) {
			t.Fatal("positive distance but intersecting")
		}
	}
}
