package geom

import (
	"math"
	"testing"
)

func TestPointBasics(t *testing.T) {
	p := Point{2, 3}
	if p.Kind() != KindPoint {
		t.Fatalf("kind = %v", p.Kind())
	}
	if p.Dimension() != 0 {
		t.Fatalf("dimension = %d", p.Dimension())
	}
	if got := p.DistanceTo(Point{5, 7}); math.Abs(got-5) > 1e-12 {
		t.Fatalf("distance = %g, want 5", got)
	}
	if !p.Equals(Point{2 + 1e-12, 3}) {
		t.Fatal("Equals should tolerate sub-epsilon noise")
	}
	if p.Equals(Point{2.1, 3}) {
		t.Fatal("Equals accepted distinct point")
	}
}

func TestEnvelopeOperations(t *testing.T) {
	e := EmptyEnvelope()
	if !e.IsEmpty() {
		t.Fatal("EmptyEnvelope not empty")
	}
	e = e.ExpandPoint(Point{1, 2}).ExpandPoint(Point{4, 6})
	if e.Width() != 3 || e.Height() != 4 {
		t.Fatalf("extent = %gx%g, want 3x4", e.Width(), e.Height())
	}
	if e.Area() != 12 {
		t.Fatalf("area = %g", e.Area())
	}
	if c := e.Center(); c.X != 2.5 || c.Y != 4 {
		t.Fatalf("center = %v", c)
	}
	o := Envelope{MinX: 3, MinY: 5, MaxX: 10, MaxY: 10}
	if !e.Intersects(o) {
		t.Fatal("envelopes should intersect")
	}
	inter := e.Intersection(o)
	if inter.MinX != 3 || inter.MinY != 5 || inter.MaxX != 4 || inter.MaxY != 6 {
		t.Fatalf("intersection = %+v", inter)
	}
	far := Envelope{MinX: 100, MinY: 100, MaxX: 101, MaxY: 101}
	if e.Intersects(far) {
		t.Fatal("disjoint envelopes reported intersecting")
	}
	if !e.Intersection(far).IsEmpty() {
		t.Fatal("disjoint intersection should be empty")
	}
	if !e.Buffer(1).ContainsPoint(Point{0.5, 1.5}) {
		t.Fatal("buffered envelope should contain nearby point")
	}
	if !e.Contains(Envelope{MinX: 2, MinY: 3, MaxX: 3, MaxY: 4}) {
		t.Fatal("Contains failed for nested envelope")
	}
}

func TestRingAreaAndWinding(t *testing.T) {
	ccwRing := Ring{{0, 0}, {4, 0}, {4, 4}, {0, 4}, {0, 0}}
	if !ccwRing.Valid() {
		t.Fatal("ring should be valid")
	}
	if a := ccwRing.SignedArea(); math.Abs(a-16) > 1e-12 {
		t.Fatalf("signed area = %g, want 16", a)
	}
	if !ccwRing.IsCCW() {
		t.Fatal("ring should be CCW")
	}
	rev := ccwRing.Reversed()
	if rev.IsCCW() {
		t.Fatal("reversed ring should be CW")
	}
	if a := rev.Area(); math.Abs(a-16) > 1e-12 {
		t.Fatalf("area after reversal = %g", a)
	}
	c := ccwRing.Centroid()
	if math.Abs(c.X-2) > 1e-12 || math.Abs(c.Y-2) > 1e-12 {
		t.Fatalf("centroid = %v, want (2,2)", c)
	}
}

func TestPolygonAreaWithHole(t *testing.T) {
	poly := Polygon{
		Shell: Ring{{0, 0}, {10, 0}, {10, 10}, {0, 10}, {0, 0}},
		Holes: []Ring{{{2, 2}, {2, 4}, {4, 4}, {4, 2}, {2, 2}}},
	}
	if a := poly.Area(); math.Abs(a-96) > 1e-9 {
		t.Fatalf("area = %g, want 96", a)
	}
	n := poly.Normalized()
	if !n.Shell.IsCCW() {
		t.Fatal("normalized shell should be CCW")
	}
	if n.Holes[0].IsCCW() {
		t.Fatal("normalized hole should be CW")
	}
}

func TestNewSquare(t *testing.T) {
	sq := NewSquare(10, 20, 4)
	if a := sq.Area(); math.Abs(a-16) > 1e-9 {
		t.Fatalf("area = %g, want 16", a)
	}
	c := sq.Centroid()
	if math.Abs(c.X-10) > 1e-9 || math.Abs(c.Y-20) > 1e-9 {
		t.Fatalf("centroid = %v", c)
	}
}

func TestWKTRoundTrip(t *testing.T) {
	cases := []string{
		"POINT (21.73 38.24)",
		"LINESTRING (0 0, 1 1, 2 0)",
		"POLYGON ((0 0, 4 0, 4 4, 0 4, 0 0))",
		"POLYGON ((0 0, 10 0, 10 10, 0 10, 0 0), (2 2, 2 4, 4 4, 4 2, 2 2))",
		"MULTIPOINT (1 1, 2 2)",
		"MULTILINESTRING ((0 0, 1 1), (2 2, 3 3))",
		"MULTIPOLYGON (((0 0, 1 0, 1 1, 0 1, 0 0)), ((5 5, 6 5, 6 6, 5 6, 5 5)))",
		"GEOMETRYCOLLECTION (POINT (1 2), LINESTRING (0 0, 1 1))",
	}
	for _, src := range cases {
		g, err := ParseWKT(src)
		if err != nil {
			t.Fatalf("parse %q: %v", src, err)
		}
		out := WKT(g)
		g2, err := ParseWKT(out)
		if err != nil {
			t.Fatalf("reparse %q: %v", out, err)
		}
		if g.Kind() != g2.Kind() {
			t.Fatalf("kind changed: %v -> %v", g.Kind(), g2.Kind())
		}
		e1, e2 := g.Envelope(), g2.Envelope()
		if !almostEq(e1.MinX, e2.MinX) || !almostEq(e1.MaxY, e2.MaxY) {
			t.Fatalf("envelope changed for %q", src)
		}
	}
}

func TestWKTPaperLiterals(t *testing.T) {
	// Geometries quoted verbatim from the paper's triples, including the
	// "x,y" comma-separated coordinate style of the gag dataset.
	cases := []string{
		"POLYGON ((21.52 37.91,21.57 37.91,21.56 37.88,21.56 37.88,21.52 37.87,21.52 37.91))",
		"POINT(23.8778 40.4003)",
		"POINT(21.73 38.24)",
		"POLYGON((23.74,38.03, 23.80,38.03, 23.80,38.08, 23.74,38.08, 23.74,38.03))",
		"POLYGON((21.027 38.36, 23.77 38.36, 23.77 36.05, 21.027 36.05, 21.027 38.36))",
	}
	for _, src := range cases {
		if _, err := ParseWKT(src); err != nil {
			t.Errorf("parse %q: %v", src, err)
		}
	}
}

func TestWKTEmptyForms(t *testing.T) {
	for _, src := range []string{
		"POLYGON EMPTY", "MULTIPOLYGON EMPTY", "LINESTRING EMPTY",
		"MULTIPOINT EMPTY", "GEOMETRYCOLLECTION EMPTY",
	} {
		g, err := ParseWKT(src)
		if err != nil {
			t.Fatalf("parse %q: %v", src, err)
		}
		if !g.IsEmpty() {
			t.Fatalf("%q should be empty", src)
		}
	}
}

func TestWKTErrors(t *testing.T) {
	for _, src := range []string{
		"", "FOO (1 2)", "POINT (1)", "POINT (1 2", "POINT (1 2) garbage",
		"POLYGON ((0 0, 1 1))", "LINESTRING (1 1)",
	} {
		if _, err := ParseWKT(src); err == nil {
			t.Errorf("parse %q: expected error", src)
		}
	}
}

func TestPointInPolygon(t *testing.T) {
	poly := MustParseWKT("POLYGON ((0 0, 10 0, 10 10, 0 10, 0 0), (4 4, 4 6, 6 6, 6 4, 4 4))").(Polygon)
	cases := []struct {
		p    Point
		want bool
	}{
		{Point{1, 1}, true},
		{Point{5, 5}, false}, // inside hole
		{Point{11, 5}, false},
		{Point{0, 5}, true}, // on boundary
		{Point{4, 5}, true}, // on hole boundary
		{Point{9.99, 9.99}, true},
		{Point{-0.01, 5}, false},
	}
	for _, c := range cases {
		if got := PointInPolygon(c.p, poly); got != c.want {
			t.Errorf("PointInPolygon(%v) = %v, want %v", c.p, got, c.want)
		}
	}
}

func TestIntersectsBasic(t *testing.T) {
	a := MustParseWKT("POLYGON ((0 0, 4 0, 4 4, 0 4, 0 0))")
	b := MustParseWKT("POLYGON ((2 2, 6 2, 6 6, 2 6, 2 2))")
	c := MustParseWKT("POLYGON ((10 10, 12 10, 12 12, 10 12, 10 10))")
	if !Intersects(a, b) {
		t.Fatal("overlapping polygons should intersect")
	}
	if Intersects(a, c) {
		t.Fatal("disjoint polygons should not intersect")
	}
	if !Disjoint(a, c) {
		t.Fatal("Disjoint is inverted")
	}
	pt := Point{1, 1}
	if !Intersects(pt, a) || !Intersects(a, pt) {
		t.Fatal("point in polygon should intersect both ways")
	}
	line := LineString{{-1, 2}, {5, 2}}
	if !Intersects(line, a) {
		t.Fatal("crossing line should intersect polygon")
	}
	outside := LineString{{-5, -5}, {-1, -1}}
	if Intersects(outside, a) {
		t.Fatal("outside line should not intersect")
	}
}

func TestIntersectsNestedPolygon(t *testing.T) {
	outer := MustParseWKT("POLYGON ((0 0, 10 0, 10 10, 0 10, 0 0))")
	inner := MustParseWKT("POLYGON ((3 3, 5 3, 5 5, 3 5, 3 3))")
	if !Intersects(outer, inner) || !Intersects(inner, outer) {
		t.Fatal("nested polygons should intersect")
	}
}

func TestContainsWithin(t *testing.T) {
	outer := MustParseWKT("POLYGON ((0 0, 10 0, 10 10, 0 10, 0 0))")
	inner := MustParseWKT("POLYGON ((3 3, 5 3, 5 5, 3 5, 3 3))")
	partial := MustParseWKT("POLYGON ((8 8, 12 8, 12 12, 8 12, 8 8))")
	if !Contains(outer, inner) {
		t.Fatal("outer should contain inner")
	}
	if Contains(inner, outer) {
		t.Fatal("inner must not contain outer")
	}
	if Contains(outer, partial) {
		t.Fatal("partially overlapping polygon is not contained")
	}
	if !Within(inner, outer) {
		t.Fatal("Within is the converse of Contains")
	}
	if !Contains(outer, Point{5, 5}) {
		t.Fatal("polygon should contain interior point")
	}
	if Contains(outer, Point{15, 5}) {
		t.Fatal("polygon must not contain exterior point")
	}
	line := LineString{{1, 1}, {9, 9}}
	if !Contains(outer, line) {
		t.Fatal("polygon should contain interior line")
	}
	crossing := LineString{{5, 5}, {15, 5}}
	if Contains(outer, crossing) {
		t.Fatal("polygon must not contain escaping line")
	}
}

func TestContainsHonoursHoles(t *testing.T) {
	donut := MustParseWKT("POLYGON ((0 0, 10 0, 10 10, 0 10, 0 0), (4 4, 4 6, 6 6, 6 4, 4 4))")
	if Contains(donut, Point{5, 5}) {
		t.Fatal("point in hole must not be contained")
	}
	inHole := MustParseWKT("POLYGON ((4.5 4.5, 5.5 4.5, 5.5 5.5, 4.5 5.5, 4.5 4.5))")
	if Contains(donut, inHole) {
		t.Fatal("polygon inside hole must not be contained")
	}
	solidPart := MustParseWKT("POLYGON ((1 1, 3 1, 3 3, 1 3, 1 1))")
	if !Contains(donut, solidPart) {
		t.Fatal("polygon in solid part should be contained")
	}
}

func TestIntersectionAreas(t *testing.T) {
	a := MustParseWKT("POLYGON ((0 0, 4 0, 4 4, 0 4, 0 0))")
	b := MustParseWKT("POLYGON ((2 2, 6 2, 6 6, 2 6, 2 2))")
	inter := Intersection(a, b)
	if got := inter.Area(); math.Abs(got-4) > 1e-6 {
		t.Fatalf("intersection area = %g, want 4", got)
	}
	// Nested case.
	inner := MustParseWKT("POLYGON ((1 1, 2 1, 2 2, 1 2, 1 1))")
	inter2 := Intersection(a, inner)
	if got := inter2.Area(); math.Abs(got-1) > 1e-6 {
		t.Fatalf("nested intersection area = %g, want 1", got)
	}
	// Disjoint case.
	far := MustParseWKT("POLYGON ((100 100, 101 100, 101 101, 100 101, 100 100))")
	if got := Intersection(a, far); !got.IsEmpty() {
		t.Fatalf("disjoint intersection not empty: %v", got)
	}
}

func TestUnionAreas(t *testing.T) {
	a := MustParseWKT("POLYGON ((0 0, 4 0, 4 4, 0 4, 0 0))")
	b := MustParseWKT("POLYGON ((2 2, 6 2, 6 6, 2 6, 2 2))")
	u := Union(a, b)
	if got := u.Area(); math.Abs(got-28) > 1e-5 {
		t.Fatalf("union area = %g, want 28", got)
	}
	far := MustParseWKT("POLYGON ((100 100, 102 100, 102 102, 100 102, 100 100))")
	u2 := Union(a, far)
	if got := u2.Area(); math.Abs(got-20) > 1e-5 {
		t.Fatalf("disjoint union area = %g, want 20", got)
	}
	if len(u2) != 2 {
		t.Fatalf("disjoint union should keep 2 polygons, got %d", len(u2))
	}
}

func TestDifferenceAreas(t *testing.T) {
	a := MustParseWKT("POLYGON ((0 0, 4 0, 4 4, 0 4, 0 0))")
	b := MustParseWKT("POLYGON ((2 2, 6 2, 6 6, 2 6, 2 2))")
	d := Difference(a, b)
	if got := d.Area(); math.Abs(got-12) > 1e-5 {
		t.Fatalf("difference area = %g, want 12", got)
	}
	// Subtracting a nested polygon punches a hole.
	inner := MustParseWKT("POLYGON ((1 1, 2 1, 2 2, 1 2, 1 1))")
	d2 := Difference(a, inner)
	if got := d2.Area(); math.Abs(got-15) > 1e-5 {
		t.Fatalf("hole difference area = %g, want 15", got)
	}
	// Subtracting the container leaves nothing.
	d3 := Difference(inner, a)
	if !d3.IsEmpty() && d3.Area() > 1e-9 {
		t.Fatalf("difference with container should be empty, area %g", d3.Area())
	}
	// Disjoint subtraction is identity.
	far := MustParseWKT("POLYGON ((100 100, 101 100, 101 101, 100 101, 100 100))")
	d4 := Difference(a, far)
	if got := d4.Area(); math.Abs(got-16) > 1e-9 {
		t.Fatalf("disjoint difference area = %g, want 16", got)
	}
}

func TestDifferenceSharedEdge(t *testing.T) {
	// Adjacent squares sharing an edge: classic Greiner-Hormann degeneracy,
	// resolved by perturbation.
	a := MustParseWKT("POLYGON ((0 0, 2 0, 2 2, 0 2, 0 0))")
	b := MustParseWKT("POLYGON ((2 0, 4 0, 4 2, 2 2, 2 0))")
	d := Difference(a, b)
	if got := d.Area(); math.Abs(got-4) > 1e-4 {
		t.Fatalf("shared-edge difference area = %g, want ~4", got)
	}
	inter := Intersection(a, b)
	if got := inter.Area(); got > 1e-4 {
		t.Fatalf("shared-edge intersection area = %g, want ~0", got)
	}
}

func TestIdenticalPolygonsOps(t *testing.T) {
	a := MustParseWKT("POLYGON ((0 0, 4 0, 4 4, 0 4, 0 0))")
	if got := Intersection(a, a).Area(); math.Abs(got-16) > 1e-3 {
		t.Fatalf("self intersection area = %g, want 16", got)
	}
	if got := Difference(a, a).Area(); got > 1e-3 {
		t.Fatalf("self difference area = %g, want 0", got)
	}
	if got := Union(a, a).Area(); math.Abs(got-16) > 1e-3 {
		t.Fatalf("self union area = %g, want 16", got)
	}
}

func TestConcavePolygonClipping(t *testing.T) {
	// L-shaped subject, convex clip.
	l := MustParseWKT("POLYGON ((0 0, 4 0, 4 2, 2 2, 2 4, 0 4, 0 0))")
	clipPoly := MustParseWKT("POLYGON ((1 1, 3 1, 3 3, 1 3, 1 1))")
	inter := Intersection(l, clipPoly)
	// L area in clip window: the clip square is 2x2=4; the part of the L
	// inside it excludes the (2..3)x(2..3) notch square of area 1 => 3.
	if got := inter.Area(); math.Abs(got-3) > 1e-5 {
		t.Fatalf("concave intersection area = %g, want 3", got)
	}
	d := Difference(l, clipPoly)
	// L area = 12; minus 3 => 9.
	if got := d.Area(); math.Abs(got-9) > 1e-5 {
		t.Fatalf("concave difference area = %g, want 9", got)
	}
}

func TestUnionAllPolygons(t *testing.T) {
	var polys []Polygon
	// A row of overlapping squares.
	for i := 0; i < 5; i++ {
		polys = append(polys, NewSquare(float64(i)*1.5, 0, 2))
	}
	u := UnionAllPolygons(polys)
	// Total footprint: from -1 to 7 in X, -1..1 in Y = 8*2 = 16.
	if got := u.Area(); math.Abs(got-16) > 1e-3 {
		t.Fatalf("union-all area = %g, want 16", got)
	}
}

func TestIntersectionGMixedDimensions(t *testing.T) {
	poly := MustParseWKT("POLYGON ((0 0, 4 0, 4 4, 0 4, 0 0))")
	pts := MultiPoint{{1, 1}, {9, 9}, {2, 2}}
	got := IntersectionG(pts, poly)
	mp, ok := got.(MultiPoint)
	if !ok || len(mp) != 2 {
		t.Fatalf("point intersection = %#v, want 2 points", got)
	}
	line := LineString{{-2, 2}, {6, 2}}
	lres := IntersectionG(line, poly)
	mls, ok := lres.(MultiLineString)
	if !ok || len(mls) != 1 {
		t.Fatalf("line intersection = %#v", lres)
	}
	if got := mls[0].Length(); math.Abs(got-4) > 1e-6 {
		t.Fatalf("clipped line length = %g, want 4", got)
	}
}

func TestOverlaps(t *testing.T) {
	a := MustParseWKT("POLYGON ((0 0, 4 0, 4 4, 0 4, 0 0))")
	b := MustParseWKT("POLYGON ((2 2, 6 2, 6 6, 2 6, 2 2))")
	inner := MustParseWKT("POLYGON ((1 1, 2 1, 2 2, 1 2, 1 1))")
	far := MustParseWKT("POLYGON ((10 10, 12 10, 12 12, 10 12, 10 10))")
	if !Overlaps(a, b) {
		t.Fatal("partially overlapping polygons should Overlap")
	}
	if Overlaps(a, inner) {
		t.Fatal("contained polygon should not Overlap")
	}
	if Overlaps(a, far) {
		t.Fatal("disjoint polygons should not Overlap")
	}
}

func TestTouches(t *testing.T) {
	a := MustParseWKT("POLYGON ((0 0, 2 0, 2 2, 0 2, 0 0))")
	pt := Point{2, 1} // on edge
	if !Touches(pt, a) {
		t.Fatal("boundary point should touch")
	}
	interior := Point{1, 1}
	if Touches(interior, a) {
		t.Fatal("interior point should not touch")
	}
}

func TestEqualsPredicate(t *testing.T) {
	a := MustParseWKT("POLYGON ((0 0, 4 0, 4 4, 0 4, 0 0))")
	// Same ring, rotated start vertex.
	b := MustParseWKT("POLYGON ((4 0, 4 4, 0 4, 0 0, 4 0))")
	c := MustParseWKT("POLYGON ((0 0, 5 0, 5 4, 0 4, 0 0))")
	if !Equals(a, b) {
		t.Fatal("rotated polygons should be Equal")
	}
	if Equals(a, c) {
		t.Fatal("different polygons must not be Equal")
	}
	if !Equals(Point{1, 2}, Point{1, 2}) {
		t.Fatal("identical points should be Equal")
	}
}

func TestDistance(t *testing.T) {
	a := MustParseWKT("POLYGON ((0 0, 2 0, 2 2, 0 2, 0 0))")
	b := MustParseWKT("POLYGON ((5 0, 7 0, 7 2, 5 2, 5 0))")
	if got := Distance(a, b); math.Abs(got-3) > 1e-9 {
		t.Fatalf("polygon distance = %g, want 3", got)
	}
	if got := Distance(a, a); got != 0 {
		t.Fatalf("self distance = %g", got)
	}
	p := Point{4, 1}
	if got := Distance(p, a); math.Abs(got-2) > 1e-9 {
		t.Fatalf("point-polygon distance = %g, want 2", got)
	}
	l1 := LineString{{0, 5}, {2, 5}}
	if got := Distance(l1, a); math.Abs(got-3) > 1e-9 {
		t.Fatalf("line-polygon distance = %g, want 3", got)
	}
	if got := Distance(Point{0, 0}, Point{3, 4}); math.Abs(got-5) > 1e-12 {
		t.Fatalf("point distance = %g", got)
	}
}

func TestBoundary(t *testing.T) {
	poly := MustParseWKT("POLYGON ((0 0, 4 0, 4 4, 0 4, 0 0))")
	b := Boundary(poly)
	ls, ok := b.(LineString)
	if !ok {
		t.Fatalf("boundary type = %T", b)
	}
	if got := ls.Length(); math.Abs(got-16) > 1e-9 {
		t.Fatalf("boundary length = %g, want 16", got)
	}
	line := LineString{{0, 0}, {1, 0}}
	lb := Boundary(line).(MultiPoint)
	if len(lb) != 2 {
		t.Fatalf("line boundary has %d points", len(lb))
	}
	if pb := Boundary(Point{1, 1}); !pb.IsEmpty() {
		t.Fatal("point boundary should be empty")
	}
}

func TestConvexHull(t *testing.T) {
	pts := []Point{{0, 0}, {4, 0}, {4, 4}, {0, 4}, {2, 2}, {1, 1}, {3, 2}}
	hull := ConvexHull(pts)
	if !hull.Valid() {
		t.Fatal("hull ring invalid")
	}
	if got := hull.Area(); math.Abs(got-16) > 1e-9 {
		t.Fatalf("hull area = %g, want 16", got)
	}
	if !hull.IsCCW() {
		t.Fatal("hull should be CCW")
	}
	// Degenerate inputs.
	if h := ConvexHull([]Point{{1, 1}}); len(h) == 0 {
		t.Fatal("single point hull empty")
	}
	if h := ConvexHull(nil); h != nil {
		t.Fatal("nil hull should be nil")
	}
}

func TestSimplify(t *testing.T) {
	// A line with a tiny zigzag that should vanish at tolerance 0.5.
	l := LineString{{0, 0}, {1, 0.01}, {2, -0.02}, {3, 0.01}, {4, 0}}
	s := Simplify(l, 0.5)
	if len(s) != 2 {
		t.Fatalf("simplified to %d points, want 2", len(s))
	}
	// A real corner must survive.
	corner := LineString{{0, 0}, {2, 2}, {4, 0}}
	s2 := Simplify(corner, 0.5)
	if len(s2) != 3 {
		t.Fatalf("corner simplified to %d points, want 3", len(s2))
	}
}

func TestCentroidVariants(t *testing.T) {
	sq := NewSquare(2, 2, 2)
	c := Centroid(sq)
	if math.Abs(c.X-2) > 1e-9 || math.Abs(c.Y-2) > 1e-9 {
		t.Fatalf("square centroid = %v", c)
	}
	mp := MultiPolygon{NewSquare(0, 0, 2), NewSquare(10, 0, 2)}
	cm := Centroid(mp)
	if math.Abs(cm.X-5) > 1e-9 {
		t.Fatalf("multipolygon centroid = %v", cm)
	}
	cl := Centroid(LineString{{0, 0}, {4, 0}})
	if math.Abs(cl.X-2) > 1e-9 {
		t.Fatalf("line centroid = %v", cl)
	}
}

func TestAreaDispatch(t *testing.T) {
	if Area(Point{1, 1}) != 0 {
		t.Fatal("point area should be 0")
	}
	if got := Area(NewSquare(0, 0, 3)); math.Abs(got-9) > 1e-9 {
		t.Fatalf("square area = %g", got)
	}
	col := Collection{NewSquare(0, 0, 1), NewSquare(5, 5, 2)}
	if got := Area(col); math.Abs(got-5) > 1e-9 {
		t.Fatalf("collection area = %g", got)
	}
}
