package geom

import (
	"math"
	"sort"
)

// cross returns the z component of (b-a) x (c-a): positive when c is left
// of the directed line a->b.
func cross(a, b, c Point) float64 {
	return (b.X-a.X)*(c.Y-a.Y) - (b.Y-a.Y)*(c.X-a.X)
}

// orient classifies c relative to the directed segment a->b with an
// area-scaled tolerance: +1 left, -1 right, 0 collinear.
func orient(a, b, c Point) int {
	v := cross(a, b, c)
	scale := math.Max(1, a.DistanceTo(b))
	if v > Epsilon*scale {
		return 1
	}
	if v < -Epsilon*scale {
		return -1
	}
	return 0
}

// onSegment reports whether collinear point p lies within segment a-b.
func onSegment(a, b, p Point) bool {
	return math.Min(a.X, b.X)-Epsilon <= p.X && p.X <= math.Max(a.X, b.X)+Epsilon &&
		math.Min(a.Y, b.Y)-Epsilon <= p.Y && p.Y <= math.Max(a.Y, b.Y)+Epsilon
}

// segIntersection classifies the intersection of segments a-b and c-d.
type segResult int

const (
	segNone    segResult = iota // disjoint
	segCross                    // proper crossing at a single point
	segTouch                    // single shared point at an endpoint
	segOverlap                  // collinear overlap
)

// segmentIntersect computes the intersection between segments a-b and c-d.
// For segCross and segTouch, pt is the shared point; for segOverlap pt is
// one point of the shared sub-segment.
func segmentIntersect(a, b, c, d Point) (res segResult, pt Point) {
	o1 := orient(a, b, c)
	o2 := orient(a, b, d)
	o3 := orient(c, d, a)
	o4 := orient(c, d, b)

	if o1 != o2 && o3 != o4 && o1 != 0 && o2 != 0 && o3 != 0 && o4 != 0 {
		// Proper crossing: solve the 2x2 system.
		t := segParam(a, b, c, d)
		return segCross, Point{a.X + t*(b.X-a.X), a.Y + t*(b.Y-a.Y)}
	}
	// Collinear / touching cases.
	touches := make([]Point, 0, 4)
	if o1 == 0 && onSegment(a, b, c) {
		touches = append(touches, c)
	}
	if o2 == 0 && onSegment(a, b, d) {
		touches = append(touches, d)
	}
	if o3 == 0 && onSegment(c, d, a) {
		touches = append(touches, a)
	}
	if o4 == 0 && onSegment(c, d, b) {
		touches = append(touches, b)
	}
	switch {
	case len(touches) == 0:
		if o1 != o2 && o3 != o4 {
			// Endpoint-grazing crossing where one orientation is zero but
			// the zero point fell outside the segment box: treat as touch.
			t := segParam(a, b, c, d)
			if t >= -Epsilon && t <= 1+Epsilon {
				return segTouch, Point{a.X + t*(b.X-a.X), a.Y + t*(b.Y-a.Y)}
			}
		}
		return segNone, Point{}
	case len(touches) == 1:
		return segTouch, touches[0]
	default:
		// Distinct touch points mean collinear overlap; coincident ones a touch.
		first := touches[0]
		for _, p := range touches[1:] {
			if !p.Equals(first) {
				return segOverlap, first
			}
		}
		return segTouch, first
	}
}

// segParam returns parameter t along a->b of the line intersection with c->d.
func segParam(a, b, c, d Point) float64 {
	den := (b.X-a.X)*(d.Y-c.Y) - (b.Y-a.Y)*(d.X-c.X)
	if math.Abs(den) < 1e-30 {
		return 0
	}
	return ((c.X-a.X)*(d.Y-c.Y) - (c.Y-a.Y)*(d.X-c.X)) / den
}

// ringLocation classifies a point relative to a ring.
type ringLocation int

const (
	locOutside ringLocation = iota
	locInside
	locBoundary
)

// locateInRing classifies p against ring r using the winding/crossing rule
// with explicit boundary detection.
func locateInRing(p Point, r Ring) ringLocation {
	if len(r) < 4 {
		return locOutside
	}
	inside := false
	for i := 1; i < len(r); i++ {
		a, b := r[i-1], r[i]
		if orient(a, b, p) == 0 && onSegment(a, b, p) {
			return locBoundary
		}
		// Standard ray-casting: count edges crossing the horizontal ray to +X.
		if (a.Y > p.Y) != (b.Y > p.Y) {
			xAt := a.X + (p.Y-a.Y)/(b.Y-a.Y)*(b.X-a.X)
			if xAt > p.X {
				inside = !inside
			}
		}
	}
	if inside {
		return locInside
	}
	return locOutside
}

// locateInPolygon classifies p against polygon poly, honouring holes.
func locateInPolygon(p Point, poly Polygon) ringLocation {
	switch locateInRing(p, poly.Shell) {
	case locOutside:
		return locOutside
	case locBoundary:
		return locBoundary
	}
	for _, h := range poly.Holes {
		switch locateInRing(p, h) {
		case locInside:
			return locOutside
		case locBoundary:
			return locBoundary
		}
	}
	return locInside
}

// PointInPolygon reports whether p is inside or on the boundary of poly.
func PointInPolygon(p Point, poly Polygon) bool {
	return locateInPolygon(p, poly) != locOutside
}

// pointSegmentDistance returns the distance from p to segment a-b.
func pointSegmentDistance(p, a, b Point) float64 {
	ab := b.Sub(a)
	l2 := ab.X*ab.X + ab.Y*ab.Y
	if l2 < 1e-30 {
		return p.DistanceTo(a)
	}
	t := ((p.X-a.X)*ab.X + (p.Y-a.Y)*ab.Y) / l2
	t = math.Max(0, math.Min(1, t))
	return p.DistanceTo(Point{a.X + t*ab.X, a.Y + t*ab.Y})
}

// segmentDistance returns the minimal distance between segments a-b and c-d.
func segmentDistance(a, b, c, d Point) float64 {
	if res, _ := segmentIntersect(a, b, c, d); res != segNone {
		return 0
	}
	return math.Min(
		math.Min(pointSegmentDistance(a, c, d), pointSegmentDistance(b, c, d)),
		math.Min(pointSegmentDistance(c, a, b), pointSegmentDistance(d, a, b)),
	)
}

// Distance returns the minimal Euclidean distance between two geometries
// (0 when they intersect). This implements strdf:distance.
func Distance(g1, g2 Geometry) float64 {
	if Intersects(g1, g2) {
		return 0
	}
	s1 := boundarySegments(g1)
	s2 := boundarySegments(g2)
	p1 := loosePoints(g1)
	p2 := loosePoints(g2)
	best := math.Inf(1)
	for _, s := range s1 {
		for _, t := range s2 {
			best = math.Min(best, segmentDistance(s[0], s[1], t[0], t[1]))
		}
		for _, p := range p2 {
			best = math.Min(best, pointSegmentDistance(p, s[0], s[1]))
		}
	}
	for _, t := range s2 {
		for _, p := range p1 {
			best = math.Min(best, pointSegmentDistance(p, t[0], t[1]))
		}
	}
	for _, p := range p1 {
		for _, q := range p2 {
			best = math.Min(best, p.DistanceTo(q))
		}
	}
	return best
}

// boundarySegments returns every line segment of g's boundary/path.
func boundarySegments(g Geometry) [][2]Point {
	var out [][2]Point
	add := func(pts []Point) {
		for i := 1; i < len(pts); i++ {
			out = append(out, [2]Point{pts[i-1], pts[i]})
		}
	}
	switch v := g.(type) {
	case LineString:
		add(v)
	case MultiLineString:
		for _, l := range v {
			add(l)
		}
	case Polygon:
		for _, r := range v.Rings() {
			add(r)
		}
	case MultiPolygon:
		for _, p := range v {
			for _, r := range p.Rings() {
				add(r)
			}
		}
	case Collection:
		for _, m := range v {
			out = append(out, boundarySegments(m)...)
		}
	}
	return out
}

// loosePoints returns the point members of g (for distance computation).
func loosePoints(g Geometry) []Point {
	switch v := g.(type) {
	case Point:
		return []Point{v}
	case MultiPoint:
		return v
	case Collection:
		var out []Point
		for _, m := range v {
			out = append(out, loosePoints(m)...)
		}
		return out
	default:
		return nil
	}
}

// ConvexHull returns the convex hull of the input points (Andrew's
// monotone chain). The result ring is counter-clockwise and closed.
func ConvexHull(pts []Point) Ring {
	if len(pts) == 0 {
		return nil
	}
	sorted := append([]Point(nil), pts...)
	sort.Slice(sorted, func(i, j int) bool {
		if sorted[i].X != sorted[j].X {
			return sorted[i].X < sorted[j].X
		}
		return sorted[i].Y < sorted[j].Y
	})
	// Deduplicate.
	uniq := sorted[:1]
	for _, p := range sorted[1:] {
		if !p.Equals(uniq[len(uniq)-1]) {
			uniq = append(uniq, p)
		}
	}
	if len(uniq) == 1 {
		return Ring{uniq[0], uniq[0], uniq[0], uniq[0]}
	}
	if len(uniq) == 2 {
		return Ring{uniq[0], uniq[1], uniq[0], uniq[0]}
	}
	var lower, upper []Point
	for _, p := range uniq {
		for len(lower) >= 2 && cross(lower[len(lower)-2], lower[len(lower)-1], p) <= 0 {
			lower = lower[:len(lower)-1]
		}
		lower = append(lower, p)
	}
	for i := len(uniq) - 1; i >= 0; i-- {
		p := uniq[i]
		for len(upper) >= 2 && cross(upper[len(upper)-2], upper[len(upper)-1], p) <= 0 {
			upper = upper[:len(upper)-1]
		}
		upper = append(upper, p)
	}
	hull := append(lower[:len(lower)-1], upper[:len(upper)-1]...)
	hull = append(hull, hull[0])
	return Ring(hull)
}

// Simplify reduces the vertex count of a linestring with the
// Douglas-Peucker algorithm at the given tolerance.
func Simplify(l LineString, tolerance float64) LineString {
	if len(l) <= 2 {
		return l
	}
	keep := make([]bool, len(l))
	keep[0], keep[len(l)-1] = true, true
	simplifyRange(l, 0, len(l)-1, tolerance, keep)
	out := make(LineString, 0, len(l))
	for i, k := range keep {
		if k {
			out = append(out, l[i])
		}
	}
	return out
}

func simplifyRange(l LineString, lo, hi int, tol float64, keep []bool) {
	if hi <= lo+1 {
		return
	}
	maxD, maxI := -1.0, -1
	for i := lo + 1; i < hi; i++ {
		d := pointSegmentDistance(l[i], l[lo], l[hi])
		if d > maxD {
			maxD, maxI = d, i
		}
	}
	if maxD > tol {
		keep[maxI] = true
		simplifyRange(l, lo, maxI, tol, keep)
		simplifyRange(l, maxI, hi, tol, keep)
	}
}

// SimplifyRing simplifies a ring while keeping it closed and valid.
func SimplifyRing(r Ring, tolerance float64) Ring {
	s := Simplify(LineString(r), tolerance)
	if len(s) < 4 {
		return r
	}
	return Ring(s)
}

// interiorPoint returns a point strictly inside the polygon; used by the
// boolean-op classifier. It probes the centroid first, then midpoints of a
// horizontal scan through the ring's vertical middle.
func interiorPoint(p Polygon) Point {
	c := p.Shell.Centroid()
	if locateInPolygon(c, p) == locInside {
		return c
	}
	env := p.Envelope()
	// Scan a few horizontal lines; find a segment midpoint inside.
	for _, f := range []float64{0.5, 0.25, 0.75, 0.37, 0.61, 0.13, 0.87} {
		y := env.MinY + f*(env.MaxY-env.MinY)
		xs := ringScanXs(p.Shell, y)
		for _, h := range p.Holes {
			xs = append(xs, ringScanXs(h, y)...)
		}
		sort.Float64s(xs)
		for i := 1; i < len(xs); i++ {
			mid := Point{(xs[i-1] + xs[i]) / 2, y}
			if locateInPolygon(mid, p) == locInside {
				return mid
			}
		}
	}
	return c
}

// ringScanXs returns x coordinates where the horizontal line at y crosses r.
func ringScanXs(r Ring, y float64) []float64 {
	var xs []float64
	for i := 1; i < len(r); i++ {
		a, b := r[i-1], r[i]
		if (a.Y > y) != (b.Y > y) {
			xs = append(xs, a.X+(y-a.Y)/(b.Y-a.Y)*(b.X-a.X))
		}
	}
	return xs
}
