// Package geom implements the planar geometry model used throughout the
// reproduction: points, linestrings and polygons with OGC Well-Known Text
// input/output, topological predicates (the strdf:* filter functions of
// stSPARQL), and polygon boolean operations (intersection, union,
// difference) needed by the hotspot refinement queries of the paper.
//
// The model is deliberately the subset of OGC Simple Features that the
// paper's queries exercise. Coordinates are EPSG:4326-style lon/lat pairs
// interpreted on a flat plane; the service area (Greece) is small enough
// that planar predicates preserve the paper's semantics.
package geom

import (
	"fmt"
	"math"
)

// Kind enumerates the geometry types supported by the engine.
type Kind int

// Geometry kinds, in the order WKT names them.
const (
	KindPoint Kind = iota
	KindLineString
	KindPolygon
	KindMultiPoint
	KindMultiLineString
	KindMultiPolygon
	KindCollection
)

// String returns the WKT tag for the kind.
func (k Kind) String() string {
	switch k {
	case KindPoint:
		return "POINT"
	case KindLineString:
		return "LINESTRING"
	case KindPolygon:
		return "POLYGON"
	case KindMultiPoint:
		return "MULTIPOINT"
	case KindMultiLineString:
		return "MULTILINESTRING"
	case KindMultiPolygon:
		return "MULTIPOLYGON"
	case KindCollection:
		return "GEOMETRYCOLLECTION"
	default:
		return fmt.Sprintf("KIND(%d)", int(k))
	}
}

// Epsilon is the coordinate tolerance used by predicates and constructive
// operations. Coordinates are degrees; 1e-9 degrees is ~0.1 mm on the
// ground, far below sensor resolution.
const Epsilon = 1e-9

// Geometry is the interface implemented by every geometry value.
type Geometry interface {
	// Kind reports the concrete geometry type.
	Kind() Kind
	// Envelope returns the minimal axis-aligned bounding box.
	Envelope() Envelope
	// IsEmpty reports whether the geometry has no coordinates.
	IsEmpty() bool
	// Dimension returns the topological dimension: 0 for points,
	// 1 for lines, 2 for areas. Collections report their maximum.
	Dimension() int
}

// Point is a single position.
type Point struct {
	X, Y float64
}

// Kind implements Geometry.
func (Point) Kind() Kind { return KindPoint }

// Envelope implements Geometry.
func (p Point) Envelope() Envelope { return Envelope{MinX: p.X, MinY: p.Y, MaxX: p.X, MaxY: p.Y} }

// IsEmpty implements Geometry. A Point value is never empty.
func (Point) IsEmpty() bool { return false }

// Dimension implements Geometry.
func (Point) Dimension() int { return 0 }

// Sub returns the vector p - q.
func (p Point) Sub(q Point) Point { return Point{p.X - q.X, p.Y - q.Y} }

// Add returns the vector p + q.
func (p Point) Add(q Point) Point { return Point{p.X + q.X, p.Y + q.Y} }

// Scale returns p scaled by f.
func (p Point) Scale(f float64) Point { return Point{p.X * f, p.Y * f} }

// Equals reports coordinate equality within Epsilon.
func (p Point) Equals(q Point) bool {
	return math.Abs(p.X-q.X) <= Epsilon && math.Abs(p.Y-q.Y) <= Epsilon
}

// DistanceTo returns the Euclidean distance to q.
func (p Point) DistanceTo(q Point) float64 {
	return math.Hypot(p.X-q.X, p.Y-q.Y)
}

// MultiPoint is a set of positions.
type MultiPoint []Point

// Kind implements Geometry.
func (MultiPoint) Kind() Kind { return KindMultiPoint }

// Envelope implements Geometry.
func (m MultiPoint) Envelope() Envelope {
	e := EmptyEnvelope()
	for _, p := range m {
		e = e.ExpandPoint(p)
	}
	return e
}

// IsEmpty implements Geometry.
func (m MultiPoint) IsEmpty() bool { return len(m) == 0 }

// Dimension implements Geometry.
func (MultiPoint) Dimension() int { return 0 }

// LineString is an ordered sequence of at least two positions.
type LineString []Point

// Kind implements Geometry.
func (LineString) Kind() Kind { return KindLineString }

// Envelope implements Geometry.
func (l LineString) Envelope() Envelope {
	e := EmptyEnvelope()
	for _, p := range l {
		e = e.ExpandPoint(p)
	}
	return e
}

// IsEmpty implements Geometry.
func (l LineString) IsEmpty() bool { return len(l) == 0 }

// Dimension implements Geometry.
func (LineString) Dimension() int { return 1 }

// Length returns the sum of segment lengths.
func (l LineString) Length() float64 {
	var total float64
	for i := 1; i < len(l); i++ {
		total += l[i].DistanceTo(l[i-1])
	}
	return total
}

// IsClosed reports whether the first and last vertices coincide.
func (l LineString) IsClosed() bool {
	return len(l) >= 4 && l[0].Equals(l[len(l)-1])
}

// MultiLineString is a set of linestrings.
type MultiLineString []LineString

// Kind implements Geometry.
func (MultiLineString) Kind() Kind { return KindMultiLineString }

// Envelope implements Geometry.
func (m MultiLineString) Envelope() Envelope {
	e := EmptyEnvelope()
	for _, l := range m {
		e = e.Expand(l.Envelope())
	}
	return e
}

// IsEmpty implements Geometry.
func (m MultiLineString) IsEmpty() bool { return len(m) == 0 }

// Dimension implements Geometry.
func (MultiLineString) Dimension() int { return 1 }

// Ring is a closed linear ring. The closing vertex is stored explicitly,
// i.e. r[0] == r[len(r)-1] for a valid ring with at least 4 entries.
type Ring []Point

// Valid reports whether the ring has at least four vertices and is closed.
func (r Ring) Valid() bool {
	return len(r) >= 4 && r[0].Equals(r[len(r)-1])
}

// SignedArea returns the signed area: positive for counter-clockwise
// orientation, negative for clockwise.
func (r Ring) SignedArea() float64 {
	var sum float64
	for i := 1; i < len(r); i++ {
		sum += r[i-1].X*r[i].Y - r[i].X*r[i-1].Y
	}
	return sum / 2
}

// Area returns the absolute enclosed area.
func (r Ring) Area() float64 { return math.Abs(r.SignedArea()) }

// IsCCW reports counter-clockwise winding.
func (r Ring) IsCCW() bool { return r.SignedArea() > 0 }

// Reversed returns the ring with opposite winding.
func (r Ring) Reversed() Ring {
	out := make(Ring, len(r))
	for i, p := range r {
		out[len(r)-1-i] = p
	}
	return out
}

// Envelope returns the ring's bounding box.
func (r Ring) Envelope() Envelope {
	e := EmptyEnvelope()
	for _, p := range r {
		e = e.ExpandPoint(p)
	}
	return e
}

// Centroid returns the area centroid of the ring.
func (r Ring) Centroid() Point {
	var cx, cy, a float64
	for i := 1; i < len(r); i++ {
		cross := r[i-1].X*r[i].Y - r[i].X*r[i-1].Y
		cx += (r[i-1].X + r[i].X) * cross
		cy += (r[i-1].Y + r[i].Y) * cross
		a += cross
	}
	if math.Abs(a) < Epsilon*Epsilon {
		// Degenerate ring: fall back to vertex mean.
		var sx, sy float64
		n := len(r) - 1
		if n <= 0 {
			return Point{}
		}
		for _, p := range r[:n] {
			sx += p.X
			sy += p.Y
		}
		return Point{sx / float64(n), sy / float64(n)}
	}
	return Point{cx / (3 * a), cy / (3 * a)}
}

// Polygon is an area bounded by one shell and zero or more holes. The
// shell should wind counter-clockwise and holes clockwise; constructors in
// this package normalise windings.
type Polygon struct {
	Shell Ring
	Holes []Ring
}

// Kind implements Geometry.
func (Polygon) Kind() Kind { return KindPolygon }

// Envelope implements Geometry.
func (p Polygon) Envelope() Envelope { return p.Shell.Envelope() }

// IsEmpty implements Geometry.
func (p Polygon) IsEmpty() bool { return len(p.Shell) == 0 }

// Dimension implements Geometry.
func (Polygon) Dimension() int { return 2 }

// Area returns the polygon area: shell minus holes.
func (p Polygon) Area() float64 {
	a := p.Shell.Area()
	for _, h := range p.Holes {
		a -= h.Area()
	}
	return a
}

// Centroid returns the centroid of the shell (holes are ignored; refinement
// queries only use centroids of convex pixel footprints).
func (p Polygon) Centroid() Point { return p.Shell.Centroid() }

// Normalized returns the polygon with CCW shell and CW holes.
func (p Polygon) Normalized() Polygon {
	out := Polygon{Shell: p.Shell}
	if !p.Shell.IsCCW() {
		out.Shell = p.Shell.Reversed()
	}
	for _, h := range p.Holes {
		if h.IsCCW() {
			h = h.Reversed()
		}
		out.Holes = append(out.Holes, h)
	}
	return out
}

// Rings returns shell and holes as one slice, shell first.
func (p Polygon) Rings() []Ring {
	out := make([]Ring, 0, 1+len(p.Holes))
	out = append(out, p.Shell)
	out = append(out, p.Holes...)
	return out
}

// MultiPolygon is a set of polygons.
type MultiPolygon []Polygon

// Kind implements Geometry.
func (MultiPolygon) Kind() Kind { return KindMultiPolygon }

// Envelope implements Geometry.
func (m MultiPolygon) Envelope() Envelope {
	e := EmptyEnvelope()
	for _, p := range m {
		e = e.Expand(p.Envelope())
	}
	return e
}

// IsEmpty implements Geometry.
func (m MultiPolygon) IsEmpty() bool { return len(m) == 0 }

// Dimension implements Geometry.
func (MultiPolygon) Dimension() int { return 2 }

// Area returns the total area of all member polygons.
func (m MultiPolygon) Area() float64 {
	var a float64
	for _, p := range m {
		a += p.Area()
	}
	return a
}

// Collection is a heterogeneous set of geometries.
type Collection []Geometry

// Kind implements Geometry.
func (Collection) Kind() Kind { return KindCollection }

// Envelope implements Geometry.
func (c Collection) Envelope() Envelope {
	e := EmptyEnvelope()
	for _, g := range c {
		e = e.Expand(g.Envelope())
	}
	return e
}

// IsEmpty implements Geometry.
func (c Collection) IsEmpty() bool {
	for _, g := range c {
		if !g.IsEmpty() {
			return false
		}
	}
	return true
}

// Dimension implements Geometry.
func (c Collection) Dimension() int {
	d := 0
	for _, g := range c {
		if gd := g.Dimension(); gd > d {
			d = gd
		}
	}
	return d
}

// Envelope is an axis-aligned bounding box.
type Envelope struct {
	MinX, MinY, MaxX, MaxY float64
}

// EmptyEnvelope returns the identity element for Expand: an inverted box.
func EmptyEnvelope() Envelope {
	return Envelope{
		MinX: math.Inf(1), MinY: math.Inf(1),
		MaxX: math.Inf(-1), MaxY: math.Inf(-1),
	}
}

// IsEmpty reports whether the envelope contains no points.
func (e Envelope) IsEmpty() bool { return e.MinX > e.MaxX || e.MinY > e.MaxY }

// Width returns the X extent, or 0 if empty.
func (e Envelope) Width() float64 {
	if e.IsEmpty() {
		return 0
	}
	return e.MaxX - e.MinX
}

// Height returns the Y extent, or 0 if empty.
func (e Envelope) Height() float64 {
	if e.IsEmpty() {
		return 0
	}
	return e.MaxY - e.MinY
}

// Area returns the envelope area.
func (e Envelope) Area() float64 { return e.Width() * e.Height() }

// Center returns the midpoint.
func (e Envelope) Center() Point {
	return Point{(e.MinX + e.MaxX) / 2, (e.MinY + e.MaxY) / 2}
}

// ExpandPoint grows the envelope to include p.
func (e Envelope) ExpandPoint(p Point) Envelope {
	return Envelope{
		MinX: math.Min(e.MinX, p.X), MinY: math.Min(e.MinY, p.Y),
		MaxX: math.Max(e.MaxX, p.X), MaxY: math.Max(e.MaxY, p.Y),
	}
}

// Expand grows the envelope to include o.
func (e Envelope) Expand(o Envelope) Envelope {
	if o.IsEmpty() {
		return e
	}
	if e.IsEmpty() {
		return o
	}
	return Envelope{
		MinX: math.Min(e.MinX, o.MinX), MinY: math.Min(e.MinY, o.MinY),
		MaxX: math.Max(e.MaxX, o.MaxX), MaxY: math.Max(e.MaxY, o.MaxY),
	}
}

// Buffer returns the envelope grown by d on every side.
func (e Envelope) Buffer(d float64) Envelope {
	return Envelope{MinX: e.MinX - d, MinY: e.MinY - d, MaxX: e.MaxX + d, MaxY: e.MaxY + d}
}

// Intersects reports whether the two envelopes share any point.
func (e Envelope) Intersects(o Envelope) bool {
	if e.IsEmpty() || o.IsEmpty() {
		return false
	}
	return e.MinX <= o.MaxX+Epsilon && o.MinX <= e.MaxX+Epsilon &&
		e.MinY <= o.MaxY+Epsilon && o.MinY <= e.MaxY+Epsilon
}

// Contains reports whether o lies entirely inside e.
func (e Envelope) Contains(o Envelope) bool {
	if e.IsEmpty() || o.IsEmpty() {
		return false
	}
	return e.MinX <= o.MinX && o.MaxX <= e.MaxX &&
		e.MinY <= o.MinY && o.MaxY <= e.MaxY
}

// ContainsPoint reports whether p lies inside or on the boundary of e.
func (e Envelope) ContainsPoint(p Point) bool {
	return !e.IsEmpty() &&
		e.MinX-Epsilon <= p.X && p.X <= e.MaxX+Epsilon &&
		e.MinY-Epsilon <= p.Y && p.Y <= e.MaxY+Epsilon
}

// Intersection returns the overlapping region of two envelopes.
func (e Envelope) Intersection(o Envelope) Envelope {
	r := Envelope{
		MinX: math.Max(e.MinX, o.MinX), MinY: math.Max(e.MinY, o.MinY),
		MaxX: math.Min(e.MaxX, o.MaxX), MaxY: math.Min(e.MaxY, o.MaxY),
	}
	if r.IsEmpty() {
		return EmptyEnvelope()
	}
	return r
}

// ToRing converts the envelope to a CCW rectangle ring.
func (e Envelope) ToRing() Ring {
	return Ring{
		{e.MinX, e.MinY}, {e.MaxX, e.MinY},
		{e.MaxX, e.MaxY}, {e.MinX, e.MaxY},
		{e.MinX, e.MinY},
	}
}

// ToPolygon converts the envelope to a rectangle polygon.
func (e Envelope) ToPolygon() Polygon { return Polygon{Shell: e.ToRing()} }

// NewSquare returns the axis-aligned square polygon centred at (cx, cy)
// with the given side length. Hotspot pixels are emitted as such squares.
func NewSquare(cx, cy, side float64) Polygon {
	h := side / 2
	return Envelope{MinX: cx - h, MinY: cy - h, MaxX: cx + h, MaxY: cy + h}.ToPolygon()
}

// Area returns the area of any geometry; zero for points and lines.
func Area(g Geometry) float64 {
	switch v := g.(type) {
	case Polygon:
		return v.Area()
	case MultiPolygon:
		return v.Area()
	case Collection:
		var a float64
		for _, m := range v {
			a += Area(m)
		}
		return a
	default:
		return 0
	}
}

// Centroid returns a representative interior-ish point for any geometry.
func Centroid(g Geometry) Point {
	switch v := g.(type) {
	case Point:
		return v
	case MultiPoint:
		var sx, sy float64
		if len(v) == 0 {
			return Point{}
		}
		for _, p := range v {
			sx += p.X
			sy += p.Y
		}
		return Point{sx / float64(len(v)), sy / float64(len(v))}
	case LineString:
		if len(v) == 0 {
			return Point{}
		}
		// Length-weighted midpoint.
		total := v.Length()
		if total < Epsilon {
			return v[0]
		}
		var cx, cy float64
		for i := 1; i < len(v); i++ {
			w := v[i].DistanceTo(v[i-1]) / total
			cx += (v[i].X + v[i-1].X) / 2 * w
			cy += (v[i].Y + v[i-1].Y) / 2 * w
		}
		return Point{cx, cy}
	case MultiLineString:
		var parts []Point
		for _, l := range v {
			if len(l) > 0 {
				parts = append(parts, Centroid(l))
			}
		}
		return Centroid(MultiPoint(parts))
	case Polygon:
		return v.Centroid()
	case MultiPolygon:
		var cx, cy, aw float64
		for _, p := range v {
			a := p.Area()
			c := p.Centroid()
			cx += c.X * a
			cy += c.Y * a
			aw += a
		}
		if aw < Epsilon*Epsilon {
			if len(v) == 0 {
				return Point{}
			}
			return v[0].Centroid()
		}
		return Point{cx / aw, cy / aw}
	case Collection:
		var parts []Point
		for _, m := range v {
			parts = append(parts, Centroid(m))
		}
		return Centroid(MultiPoint(parts))
	default:
		return Point{}
	}
}

// Boundary returns the topological boundary of a geometry: ring
// linestrings for polygons, endpoints for lines, empty for points. This
// implements strdf:boundary.
func Boundary(g Geometry) Geometry {
	switch v := g.(type) {
	case Polygon:
		var out MultiLineString
		for _, r := range v.Rings() {
			out = append(out, LineString(r))
		}
		if len(out) == 1 {
			return out[0]
		}
		return out
	case MultiPolygon:
		var out MultiLineString
		for _, p := range v {
			for _, r := range p.Rings() {
				out = append(out, LineString(r))
			}
		}
		return out
	case LineString:
		if v.IsClosed() || len(v) == 0 {
			return MultiPoint{}
		}
		return MultiPoint{v[0], v[len(v)-1]}
	case MultiLineString:
		var out MultiPoint
		for _, l := range v {
			if !l.IsClosed() && len(l) > 0 {
				out = append(out, l[0], l[len(l)-1])
			}
		}
		return out
	default:
		return MultiPoint{}
	}
}
