package geom

import "math"

// This file implements the topological predicates exposed to stSPARQL as
// strdf:anyInteract (Intersects), strdf:contains, strdf:within,
// strdf:overlap, strdf:touches, strdf:disjoint and strdf:equals. The
// implementation decomposes every geometry into points, segments and
// polygons and evaluates the predicate pairwise, which matches the OGC
// semantics for the geometry subset used by the paper's datasets.

// flatten decomposes any geometry into its atomic members.
func flatten(g Geometry) (pts []Point, lines []LineString, polys []Polygon) {
	switch v := g.(type) {
	case Point:
		pts = append(pts, v)
	case MultiPoint:
		pts = append(pts, v...)
	case LineString:
		if len(v) > 0 {
			lines = append(lines, v)
		}
	case MultiLineString:
		for _, l := range v {
			if len(l) > 0 {
				lines = append(lines, l)
			}
		}
	case Polygon:
		if !v.IsEmpty() {
			polys = append(polys, v)
		}
	case MultiPolygon:
		for _, p := range v {
			if !p.IsEmpty() {
				polys = append(polys, p)
			}
		}
	case Collection:
		for _, m := range v {
			p2, l2, g2 := flatten(m)
			pts = append(pts, p2...)
			lines = append(lines, l2...)
			polys = append(polys, g2...)
		}
	}
	return pts, lines, polys
}

// ringCount and ringAt iterate a polygon's rings (shell first, then
// holes) without materialising the slice Rings allocates — the
// predicate loops below run per candidate row of a spatial join.
func ringCount(p Polygon) int { return 1 + len(p.Holes) }

func ringAt(p Polygon, i int) Ring {
	if i == 0 {
		return p.Shell
	}
	return p.Holes[i-1]
}

// Intersects reports whether the two geometries share at least one point.
// This is the semantics of the paper's strdf:anyInteract filter function.
func Intersects(g1, g2 Geometry) bool {
	if g1 == nil || g2 == nil || g1.IsEmpty() || g2.IsEmpty() {
		return false
	}
	if !g1.Envelope().Intersects(g2.Envelope()) {
		return false
	}
	// Atomic-pair fast paths: the spatial joins of the service compare one
	// stored geometry against one query geometry per candidate row, and
	// those are overwhelmingly simple polygons and points — dispatching on
	// the concrete pair skips the flatten decomposition (three slice
	// allocations per side) entirely. Emptiness is already excluded above,
	// so these branches match flatten's non-empty members exactly.
	switch a := g1.(type) {
	case Polygon:
		switch b := g2.(type) {
		case Polygon:
			return polygonPolygonIntersect(a, b)
		case Point:
			return locateInPolygon(b, a) != locOutside
		case LineString:
			return linePolygonIntersect(b, a)
		}
	case Point:
		switch b := g2.(type) {
		case Polygon:
			return locateInPolygon(a, b) != locOutside
		case Point:
			return a.Equals(b)
		case LineString:
			return pointOnLine(a, b)
		}
	case LineString:
		switch b := g2.(type) {
		case Polygon:
			return linePolygonIntersect(a, b)
		case Point:
			return pointOnLine(b, a)
		case LineString:
			return lineLineIntersect(a, b)
		}
	}
	p1, l1, a1 := flatten(g1)
	p2, l2, a2 := flatten(g2)

	for _, p := range p1 {
		if anyPointHit(p, p2, l2, a2) {
			return true
		}
	}
	for _, p := range p2 {
		if anyPointHit(p, nil, l1, a1) {
			return true
		}
	}
	for _, la := range l1 {
		for _, lb := range l2 {
			if lineLineIntersect(la, lb) {
				return true
			}
		}
		for _, pb := range a2 {
			if linePolygonIntersect(la, pb) {
				return true
			}
		}
	}
	for _, lb := range l2 {
		for _, pa := range a1 {
			if linePolygonIntersect(lb, pa) {
				return true
			}
		}
	}
	for _, pa := range a1 {
		for _, pb := range a2 {
			if polygonPolygonIntersect(pa, pb) {
				return true
			}
		}
	}
	return false
}

func anyPointHit(p Point, pts []Point, lines []LineString, polys []Polygon) bool {
	for _, q := range pts {
		if p.Equals(q) {
			return true
		}
	}
	for _, l := range lines {
		if pointOnLine(p, l) {
			return true
		}
	}
	for _, poly := range polys {
		if locateInPolygon(p, poly) != locOutside {
			return true
		}
	}
	return false
}

func pointOnLine(p Point, l LineString) bool {
	for i := 1; i < len(l); i++ {
		if orient(l[i-1], l[i], p) == 0 && onSegment(l[i-1], l[i], p) {
			return true
		}
	}
	return len(l) == 1 && p.Equals(l[0])
}

func lineLineIntersect(a, b LineString) bool {
	if !a.Envelope().Intersects(b.Envelope()) {
		return false
	}
	for i := 1; i < len(a); i++ {
		for j := 1; j < len(b); j++ {
			if res, _ := segmentIntersect(a[i-1], a[i], b[j-1], b[j]); res != segNone {
				return true
			}
		}
	}
	return false
}

func linePolygonIntersect(l LineString, p Polygon) bool {
	if !l.Envelope().Intersects(p.Envelope()) {
		return false
	}
	for _, v := range l {
		if locateInPolygon(v, p) != locOutside {
			return true
		}
	}
	for i := 0; i < ringCount(p); i++ {
		if lineLineIntersect(l, LineString(ringAt(p, i))) {
			return true
		}
	}
	return false
}

func polygonPolygonIntersect(a, b Polygon) bool {
	if !a.Envelope().Intersects(b.Envelope()) {
		return false
	}
	// Boundary crossing?
	for i := 0; i < ringCount(a); i++ {
		ra := LineString(ringAt(a, i))
		for j := 0; j < ringCount(b); j++ {
			if lineLineIntersect(ra, LineString(ringAt(b, j))) {
				return true
			}
		}
	}
	// One fully inside the other?
	if locateInPolygon(a.Shell[0], b) != locOutside {
		return true
	}
	if locateInPolygon(b.Shell[0], a) != locOutside {
		return true
	}
	return false
}

// Disjoint is the negation of Intersects.
func Disjoint(g1, g2 Geometry) bool { return !Intersects(g1, g2) }

// Contains reports whether every point of g2 lies in g1 and the interiors
// share at least one point. This implements strdf:contains.
func Contains(g1, g2 Geometry) bool {
	if g1 == nil || g2 == nil || g1.IsEmpty() || g2.IsEmpty() {
		return false
	}
	if !g1.Envelope().Contains(g2.Envelope().Intersection(g1.Envelope())) ||
		!g1.Envelope().Contains(g2.Envelope()) {
		return false
	}
	p2, l2, a2 := flatten(g2)
	_, l1, a1 := flatten(g1)

	// The container must be at least the dimension of the containee for the
	// cases the service uses (area contains area/line/point, line contains
	// point/line).
	for _, p := range p2 {
		if !pointCoveredBy(p, l1, a1) {
			return false
		}
	}
	for _, l := range l2 {
		if !lineCoveredBy(l, l1, a1) {
			return false
		}
	}
	for _, poly := range a2 {
		if !polygonCoveredByPolys(poly, a1) {
			return false
		}
	}
	return Intersects(g1, g2)
}

// Within is the converse of Contains.
func Within(g1, g2 Geometry) bool { return Contains(g2, g1) }

// CoveredBy reports whether g1 lies entirely within g2 (boundary contact
// allowed). Used by the validation protocol's point-in-polygon tests.
func CoveredBy(g1, g2 Geometry) bool { return Contains(g2, g1) }

func pointCoveredBy(p Point, lines []LineString, polys []Polygon) bool {
	for _, poly := range polys {
		if locateInPolygon(p, poly) != locOutside {
			return true
		}
	}
	for _, l := range lines {
		if pointOnLine(p, l) {
			return true
		}
	}
	return false
}

// lineCoveredBy checks that every vertex and every segment midpoint of l
// lies in one of the cover geometries. Midpoint sampling resolves segments
// that leave and re-enter between vertices; the service's data (pixel
// squares vs municipality polygons) has no pathological re-entry cases
// below that sampling density.
func lineCoveredBy(l LineString, lines []LineString, polys []Polygon) bool {
	samples := make([]Point, 0, 2*len(l))
	samples = append(samples, l...)
	for i := 1; i < len(l); i++ {
		samples = append(samples, Point{(l[i-1].X + l[i].X) / 2, (l[i-1].Y + l[i].Y) / 2})
	}
	for _, p := range samples {
		if !pointCoveredBy(p, lines, polys) {
			return false
		}
	}
	return true
}

// polygonCoveredByPolys reports whether poly lies within the union of polys.
func polygonCoveredByPolys(poly Polygon, cover []Polygon) bool {
	if len(cover) == 0 {
		return false
	}
	// Common fast path: covered by a single polygon.
	for _, c := range cover {
		if polygonInPolygon(poly, c) {
			return true
		}
	}
	if len(cover) == 1 {
		return false
	}
	// Fast reject before the expensive union fallback: every sampled
	// point of poly (vertices + interior) must lie in some cover part —
	// a necessary condition, so failing it proves non-coverage.
	samples := append(Ring{interiorPoint(poly)}, poly.Shell...)
	for _, p := range samples {
		inAny := false
		for _, c := range cover {
			if locateInPolygon(p, c) != locOutside {
				inAny = true
				break
			}
		}
		if !inAny {
			return false
		}
	}
	// Union cover: subtract each cover polygon; empty remainder means covered.
	rem := MultiPolygon{poly}
	for _, c := range cover {
		rem = Difference(rem, c)
		if rem.IsEmpty() {
			return true
		}
	}
	return rem.Area() < Epsilon
}

// polygonInPolygon reports whether inner lies entirely inside outer
// (boundary contact allowed).
func polygonInPolygon(inner, outer Polygon) bool {
	if !outer.Envelope().Contains(inner.Envelope()) {
		return false
	}
	for _, v := range inner.Shell {
		if locateInPolygon(v, outer) == locOutside {
			return false
		}
	}
	// Boundary of inner must not cross into a hole or outside: check that
	// no inner edge properly crosses an outer ring edge.
	for _, ro := range outer.Rings() {
		for i := 1; i < len(inner.Shell); i++ {
			for j := 1; j < len(ro); j++ {
				if res, _ := segmentIntersect(inner.Shell[i-1], inner.Shell[i], ro[j-1], ro[j]); res == segCross {
					return false
				}
			}
		}
	}
	// A hole of outer must not sit inside inner with area.
	for _, h := range outer.Holes {
		hp := Polygon{Shell: h}
		if polygonPolygonIntersect(hp, inner) {
			ip := interiorPoint(hp)
			if locateInRing(ip, inner.Shell) == locInside && locateInPolygon(ip, outer) == locOutside {
				return false
			}
		}
	}
	return true
}

// Equals reports topological equality for the common case of identical
// ring vertex sets (possibly rotated/reversed) or area-equivalence.
func Equals(g1, g2 Geometry) bool {
	if g1 == nil || g2 == nil {
		return g1 == nil && g2 == nil
	}
	if g1.IsEmpty() && g2.IsEmpty() {
		return true
	}
	e1, e2 := g1.Envelope(), g2.Envelope()
	if !almostEq(e1.MinX, e2.MinX) || !almostEq(e1.MinY, e2.MinY) ||
		!almostEq(e1.MaxX, e2.MaxX) || !almostEq(e1.MaxY, e2.MaxY) {
		return false
	}
	if g1.Dimension() != g2.Dimension() {
		return false
	}
	switch g1.Dimension() {
	case 0:
		return Contains(Collection{g1, g1}, g2) || containsAllPoints(g1, g2) && containsAllPoints(g2, g1)
	case 2:
		a1 := toPolys(g1)
		a2 := toPolys(g2)
		if len(a1) == 1 && len(a2) == 1 && len(a1[0].Holes) == 0 && len(a2[0].Holes) == 0 &&
			ringsEquivalent(a1[0].Shell, a2[0].Shell) {
			return true
		}
		// Symmetric difference must be (relatively) empty; the boolean ops
		// may leave perturbation slivers on coincident boundaries.
		tol := 1e-5 * math.Max(Area(g1)+Area(g2), 1e-3)
		return Difference(g1, g2).Area() < tol && Difference(g2, g1).Area() < tol
	default:
		_, l1, _ := flatten(g1)
		_, l2, _ := flatten(g2)
		for _, l := range l1 {
			if !lineCoveredBy(l, l2, nil) {
				return false
			}
		}
		for _, l := range l2 {
			if !lineCoveredBy(l, l1, nil) {
				return false
			}
		}
		return true
	}
}

func containsAllPoints(g1, g2 Geometry) bool {
	p1, _, _ := flatten(g1)
	p2, _, _ := flatten(g2)
	for _, q := range p2 {
		found := false
		for _, p := range p1 {
			if p.Equals(q) {
				found = true
				break
			}
		}
		if !found {
			return false
		}
	}
	return true
}

// ringsEquivalent reports whether two rings trace the same vertex cycle,
// possibly rotated and/or reversed.
func ringsEquivalent(a, b Ring) bool {
	if len(a) != len(b) {
		return false
	}
	n := len(a) - 1 // drop duplicate closing vertex
	if n < 3 {
		return false
	}
	try := func(b Ring) bool {
		for shift := 0; shift < n; shift++ {
			match := true
			for i := 0; i < n; i++ {
				if !a[i].Equals(b[(i+shift)%n]) {
					match = false
					break
				}
			}
			if match {
				return true
			}
		}
		return false
	}
	return try(b) || try(b.Reversed())
}

func almostEq(a, b float64) bool {
	d := a - b
	return d < 1e-7 && d > -1e-7
}

// Overlaps reports whether the interiors share area but neither contains
// the other (strdf:overlap for area geometries). For the area/area case the
// paper's HAVING strdf:overlap(...) uses this to test partial coastline
// coverage.
func Overlaps(g1, g2 Geometry) bool {
	if g1 == nil || g2 == nil || g1.IsEmpty() || g2.IsEmpty() {
		return false
	}
	if g1.Dimension() != 2 || g2.Dimension() != 2 {
		// For non-area pairs fall back to "interiors intersect but neither
		// contains the other".
		return Intersects(g1, g2) && !Contains(g1, g2) && !Contains(g2, g1)
	}
	inter := Intersection(g1, g2)
	if inter.Area() < Epsilon {
		return false
	}
	return !Contains(g1, g2) && !Contains(g2, g1)
}

// Touches reports whether the geometries share boundary points but no
// interior points.
func Touches(g1, g2 Geometry) bool {
	if !Intersects(g1, g2) {
		return false
	}
	if g1.Dimension() == 2 && g2.Dimension() == 2 {
		return Intersection(g1, g2).Area() < 1e-12
	}
	if g1.Dimension() == 0 && g2.Dimension() == 0 {
		return false
	}
	// Point/line vs area: intersects but point not interior.
	p1, l1, a1 := flatten(g1)
	_, l2, a2 := flatten(g2)
	if g1.Dimension() == 0 {
		for _, p := range p1 {
			for _, poly := range a2 {
				if locateInPolygon(p, poly) == locInside {
					return false
				}
			}
			for _, l := range l2 {
				if pointOnLine(p, l) && !isLineEndpoint(p, l) {
					return false
				}
			}
		}
		return true
	}
	if g2.Dimension() == 0 {
		return Touches(g2, g1)
	}
	// Line vs area: no line point strictly inside.
	checkLines := func(lines []LineString, polys []Polygon) bool {
		for _, l := range lines {
			for _, poly := range polys {
				for _, v := range l {
					if locateInPolygon(v, poly) == locInside {
						return false
					}
				}
				for i := 1; i < len(l); i++ {
					mid := Point{(l[i-1].X + l[i].X) / 2, (l[i-1].Y + l[i].Y) / 2}
					if locateInPolygon(mid, poly) == locInside {
						return false
					}
				}
			}
		}
		return true
	}
	return checkLines(l1, a2) && checkLines(l2, a1)
}

func isLineEndpoint(p Point, l LineString) bool {
	return len(l) > 0 && (p.Equals(l[0]) || p.Equals(l[len(l)-1]))
}
