package geom

import (
	"fmt"
	"strconv"
	"strings"
)

// ParseWKT parses an OGC Well-Known Text string into a Geometry. The
// parser accepts the subset emitted by the paper's datasets: POINT,
// LINESTRING, POLYGON, MULTIPOINT, MULTILINESTRING, MULTIPOLYGON and
// GEOMETRYCOLLECTION, each optionally EMPTY.
func ParseWKT(s string) (Geometry, error) {
	p := &wktParser{src: s}
	g, err := p.parseGeometry()
	if err != nil {
		return nil, err
	}
	p.skipSpace()
	if p.pos != len(p.src) {
		return nil, fmt.Errorf("geom: trailing input at offset %d in %q", p.pos, clip(s))
	}
	return g, nil
}

// MustParseWKT parses s and panics on error. Intended for tests and
// compiled-in constant geometries.
func MustParseWKT(s string) Geometry {
	g, err := ParseWKT(s)
	if err != nil {
		panic(err)
	}
	return g
}

func clip(s string) string {
	if len(s) > 48 {
		return s[:48] + "..."
	}
	return s
}

type wktParser struct {
	src string
	pos int
}

func (p *wktParser) skipSpace() {
	for p.pos < len(p.src) {
		switch p.src[p.pos] {
		case ' ', '\t', '\n', '\r':
			p.pos++
		default:
			return
		}
	}
}

func (p *wktParser) word() string {
	p.skipSpace()
	start := p.pos
	for p.pos < len(p.src) {
		c := p.src[p.pos]
		if (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') {
			p.pos++
		} else {
			break
		}
	}
	return strings.ToUpper(p.src[start:p.pos])
}

func (p *wktParser) expect(c byte) error {
	p.skipSpace()
	if p.pos >= len(p.src) || p.src[p.pos] != c {
		return fmt.Errorf("geom: expected %q at offset %d in %q", string(c), p.pos, clip(p.src))
	}
	p.pos++
	return nil
}

func (p *wktParser) peek() byte {
	p.skipSpace()
	if p.pos >= len(p.src) {
		return 0
	}
	return p.src[p.pos]
}

func (p *wktParser) number() (float64, error) {
	p.skipSpace()
	start := p.pos
	for p.pos < len(p.src) {
		c := p.src[p.pos]
		if (c >= '0' && c <= '9') || c == '-' || c == '+' || c == '.' || c == 'e' || c == 'E' {
			p.pos++
		} else {
			break
		}
	}
	if start == p.pos {
		return 0, fmt.Errorf("geom: expected number at offset %d in %q", p.pos, clip(p.src))
	}
	v, err := strconv.ParseFloat(p.src[start:p.pos], 64)
	if err != nil {
		return 0, fmt.Errorf("geom: bad number %q: %v", p.src[start:p.pos], err)
	}
	return v, nil
}

// isEmptyTag consumes the EMPTY keyword if present.
func (p *wktParser) isEmptyTag() bool {
	p.skipSpace()
	if strings.HasPrefix(strings.ToUpper(p.src[p.pos:]), "EMPTY") {
		p.pos += len("EMPTY")
		return true
	}
	return false
}

func (p *wktParser) parseGeometry() (Geometry, error) {
	tag := p.word()
	switch tag {
	case "POINT":
		if p.isEmptyTag() {
			return MultiPoint{}, nil
		}
		pts, err := p.coordList()
		if err != nil {
			return nil, err
		}
		if len(pts) != 1 {
			return nil, fmt.Errorf("geom: POINT wants 1 coordinate, got %d", len(pts))
		}
		return pts[0], nil
	case "LINESTRING":
		if p.isEmptyTag() {
			return LineString{}, nil
		}
		pts, err := p.coordList()
		if err != nil {
			return nil, err
		}
		if len(pts) < 2 {
			return nil, fmt.Errorf("geom: LINESTRING wants >=2 coordinates, got %d", len(pts))
		}
		return LineString(pts), nil
	case "POLYGON":
		if p.isEmptyTag() {
			return Polygon{}, nil
		}
		return p.polygonBody()
	case "MULTIPOINT":
		if p.isEmptyTag() {
			return MultiPoint{}, nil
		}
		return p.multiPointBody()
	case "MULTILINESTRING":
		if p.isEmptyTag() {
			return MultiLineString{}, nil
		}
		if err := p.expect('('); err != nil {
			return nil, err
		}
		var out MultiLineString
		for {
			pts, err := p.coordList()
			if err != nil {
				return nil, err
			}
			out = append(out, LineString(pts))
			if p.peek() == ',' {
				p.pos++
				continue
			}
			break
		}
		if err := p.expect(')'); err != nil {
			return nil, err
		}
		return out, nil
	case "MULTIPOLYGON":
		if p.isEmptyTag() {
			return MultiPolygon{}, nil
		}
		if err := p.expect('('); err != nil {
			return nil, err
		}
		var out MultiPolygon
		for {
			poly, err := p.polygonBody()
			if err != nil {
				return nil, err
			}
			out = append(out, poly)
			if p.peek() == ',' {
				p.pos++
				continue
			}
			break
		}
		if err := p.expect(')'); err != nil {
			return nil, err
		}
		return out, nil
	case "GEOMETRYCOLLECTION":
		if p.isEmptyTag() {
			return Collection{}, nil
		}
		if err := p.expect('('); err != nil {
			return nil, err
		}
		var out Collection
		for {
			g, err := p.parseGeometry()
			if err != nil {
				return nil, err
			}
			out = append(out, g)
			if p.peek() == ',' {
				p.pos++
				continue
			}
			break
		}
		if err := p.expect(')'); err != nil {
			return nil, err
		}
		return out, nil
	default:
		return nil, fmt.Errorf("geom: unknown WKT tag %q in %q", tag, clip(p.src))
	}
}

// coordList parses "( x y, x y, ... )".
func (p *wktParser) coordList() ([]Point, error) {
	if err := p.expect('('); err != nil {
		return nil, err
	}
	var pts []Point
	for {
		x, err := p.number()
		if err != nil {
			return nil, err
		}
		// Some shapefile-to-RDF exporters in the paper's datasets emit
		// "x,y" pairs; accept an optional comma between X and Y.
		if p.peek() == ',' {
			p.pos++
		}
		y, err := p.number()
		if err != nil {
			return nil, err
		}
		pts = append(pts, Point{x, y})
		if p.peek() == ',' {
			p.pos++
			continue
		}
		break
	}
	if err := p.expect(')'); err != nil {
		return nil, err
	}
	return pts, nil
}

func (p *wktParser) polygonBody() (Polygon, error) {
	if err := p.expect('('); err != nil {
		return Polygon{}, err
	}
	var rings []Ring
	for {
		pts, err := p.coordList()
		if err != nil {
			return Polygon{}, err
		}
		r := Ring(pts)
		if !r.Valid() {
			// Tolerate unclosed rings from sloppy exporters by closing them.
			if len(r) >= 3 && !r[0].Equals(r[len(r)-1]) {
				r = append(r, r[0])
			}
			if !r.Valid() {
				return Polygon{}, fmt.Errorf("geom: polygon ring with %d points is not a valid ring", len(pts))
			}
		}
		rings = append(rings, r)
		if p.peek() == ',' {
			p.pos++
			continue
		}
		break
	}
	if err := p.expect(')'); err != nil {
		return Polygon{}, err
	}
	poly := Polygon{Shell: rings[0], Holes: rings[1:]}
	return poly.Normalized(), nil
}

// multiPointBody accepts both "((1 2),(3 4))" and "(1 2, 3 4)" forms.
func (p *wktParser) multiPointBody() (Geometry, error) {
	if err := p.expect('('); err != nil {
		return nil, err
	}
	var out MultiPoint
	for {
		if p.peek() == '(' {
			pts, err := p.coordList()
			if err != nil {
				return nil, err
			}
			if len(pts) != 1 {
				return nil, fmt.Errorf("geom: MULTIPOINT member wants 1 coordinate, got %d", len(pts))
			}
			out = append(out, pts[0])
		} else {
			x, err := p.number()
			if err != nil {
				return nil, err
			}
			y, err := p.number()
			if err != nil {
				return nil, err
			}
			out = append(out, Point{x, y})
		}
		if p.peek() == ',' {
			p.pos++
			continue
		}
		break
	}
	if err := p.expect(')'); err != nil {
		return nil, err
	}
	return out, nil
}

// WKT serialises a geometry to Well-Known Text.
func WKT(g Geometry) string {
	var b strings.Builder
	writeWKT(&b, g)
	return b.String()
}

func writeWKT(b *strings.Builder, g Geometry) {
	switch v := g.(type) {
	case Point:
		b.WriteString("POINT (")
		writeCoord(b, v)
		b.WriteByte(')')
	case MultiPoint:
		if len(v) == 0 {
			b.WriteString("MULTIPOINT EMPTY")
			return
		}
		b.WriteString("MULTIPOINT (")
		for i, p := range v {
			if i > 0 {
				b.WriteString(", ")
			}
			writeCoord(b, p)
		}
		b.WriteByte(')')
	case LineString:
		if len(v) == 0 {
			b.WriteString("LINESTRING EMPTY")
			return
		}
		b.WriteString("LINESTRING ")
		writeCoordList(b, v)
	case MultiLineString:
		if len(v) == 0 {
			b.WriteString("MULTILINESTRING EMPTY")
			return
		}
		b.WriteString("MULTILINESTRING (")
		for i, l := range v {
			if i > 0 {
				b.WriteString(", ")
			}
			writeCoordList(b, l)
		}
		b.WriteByte(')')
	case Polygon:
		if v.IsEmpty() {
			b.WriteString("POLYGON EMPTY")
			return
		}
		b.WriteString("POLYGON ")
		writePolygonBody(b, v)
	case MultiPolygon:
		if len(v) == 0 {
			b.WriteString("MULTIPOLYGON EMPTY")
			return
		}
		b.WriteString("MULTIPOLYGON (")
		for i, p := range v {
			if i > 0 {
				b.WriteString(", ")
			}
			writePolygonBody(b, p)
		}
		b.WriteByte(')')
	case Collection:
		if len(v) == 0 {
			b.WriteString("GEOMETRYCOLLECTION EMPTY")
			return
		}
		b.WriteString("GEOMETRYCOLLECTION (")
		for i, m := range v {
			if i > 0 {
				b.WriteString(", ")
			}
			writeWKT(b, m)
		}
		b.WriteByte(')')
	default:
		b.WriteString("GEOMETRYCOLLECTION EMPTY")
	}
}

func writeCoord(b *strings.Builder, p Point) {
	b.WriteString(formatCoord(p.X))
	b.WriteByte(' ')
	b.WriteString(formatCoord(p.Y))
}

func writeCoordList(b *strings.Builder, pts []Point) {
	b.WriteByte('(')
	for i, p := range pts {
		if i > 0 {
			b.WriteString(", ")
		}
		writeCoord(b, p)
	}
	b.WriteByte(')')
}

func writePolygonBody(b *strings.Builder, p Polygon) {
	b.WriteByte('(')
	writeCoordList(b, p.Shell)
	for _, h := range p.Holes {
		b.WriteString(", ")
		writeCoordList(b, h)
	}
	b.WriteByte(')')
}

// formatCoord trims trailing zeros so serialised products stay compact.
func formatCoord(v float64) string {
	return strconv.FormatFloat(v, 'f', -1, 64)
}
