package detect

import (
	"math"
	"math/rand"
	"testing"
	"time"

	"repro/internal/array"
	"repro/internal/solar"
)

func fireScene() (*array.Dense, *array.Dense) {
	t039 := array.New(16, 16)
	t108 := array.New(16, 16)
	t039.Fill(295)
	t108.Fill(292)
	// Strong fire pixel.
	t039.Set(8, 8, 345)
	t108.Set(8, 8, 296)
	return t039, t108
}

func TestClassifyFindsFire(t *testing.T) {
	t039, t108 := fireScene()
	conf, err := Classify(t039, t108, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := conf.Get(8, 8); got != Fire {
		t.Fatalf("fire pixel = %g", got)
	}
	if got := conf.Get(0, 0); got != NoFire {
		t.Fatalf("background = %g", got)
	}
}

func TestClassifyShapeMismatch(t *testing.T) {
	if _, err := Classify(array.New(4, 4), array.New(5, 4), nil); err == nil {
		t.Fatal("shape mismatch should error")
	}
}

func TestClassifyPixelThresholds(t *testing.T) {
	th := DayThresholds
	cases := []struct {
		name                       string
		t039, t108, std039, std108 float64
		want                       int
	}{
		{"strong fire", 340, 300, 6, 1, Fire},
		{"potential fire", 312, 303, 3, 1, PotentialFire},
		{"too cold", 305, 290, 6, 1, NoFire},
		{"no contrast", 340, 335, 6, 1, NoFire},
		{"flat window", 340, 300, 1, 1, NoFire},
		{"cloud edge", 340, 300, 6, 5, NoFire},
	}
	for _, c := range cases {
		if got := ClassifyPixel(c.t039, c.t108, c.std039, c.std108, th); got != c.want {
			t.Errorf("%s: got %d, want %d", c.name, got, c.want)
		}
	}
}

func TestNightThresholdsCatchCoolerFires(t *testing.T) {
	// A pixel below the day 3.9 µm threshold but above the night one.
	got := ClassifyPixel(295, 285, 5, 1, NightThresholds)
	if got != Fire {
		t.Fatalf("night classification = %d", got)
	}
	if ClassifyPixel(295, 285, 5, 1, DayThresholds) != NoFire {
		t.Fatal("day thresholds should reject this pixel")
	}
}

func TestInterpolation(t *testing.T) {
	mid := Interpolate(DayThresholds, NightThresholds, 0.5)
	if mid.T039 != (DayThresholds.T039+NightThresholds.T039)/2 {
		t.Fatalf("midpoint T039 = %g", mid.T039)
	}
	if got := ForZenith(50); got != DayThresholds {
		t.Fatalf("zenith 50 should be day: %+v", got)
	}
	if got := ForZenith(95); got != NightThresholds {
		t.Fatalf("zenith 95 should be night: %+v", got)
	}
	tw := ForZenith(80) // halfway through twilight
	if math.Abs(tw.T039-300) > 1e-9 {
		t.Fatalf("twilight T039 = %g, want 300", tw.T039)
	}
}

func TestPerPixelZenith(t *testing.T) {
	// Left half day, right half night: a 295 K anomaly fires only at night.
	t039 := array.New(16, 8)
	t108 := array.New(16, 8)
	t039.Fill(280)
	t108.Fill(278)
	t039.Set(3, 4, 295)  // day side: below day threshold
	t039.Set(12, 4, 295) // night side: above night threshold
	zen := func(x, y int) float64 {
		if x < 8 {
			return 30
		}
		return 100
	}
	conf, err := Classify(t039, t108, zen)
	if err != nil {
		t.Fatal(err)
	}
	if conf.Get(3, 4) != NoFire {
		t.Fatalf("day-side pixel = %g", conf.Get(3, 4))
	}
	if conf.Get(12, 4) == NoFire {
		t.Fatalf("night-side pixel = %g", conf.Get(12, 4))
	}
}

func TestLegacyMatchesDeclarative(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	t039 := array.New(40, 32)
	t108 := array.New(40, 32)
	for i := range t039.Values() {
		t039.Values()[i] = 290 + r.Float64()*10
		t108.Values()[i] = 287 + r.Float64()*6
	}
	// Sprinkle fires.
	for i := 0; i < 10; i++ {
		x, y := r.Intn(40), r.Intn(32)
		t039.Set(x, y, 320+r.Float64()*40)
	}
	zen := func(x, y int) float64 { return 40 + float64(x) } // spans day/twilight/night
	fast, err := Classify(t039, t108, zen)
	if err != nil {
		t.Fatal(err)
	}
	legacy := LegacyClassify(t039, t108, zen)
	for y := 0; y < 32; y++ {
		for x := 0; x < 40; x++ {
			if fast.Get(x, y) != legacy.Get(x, y) {
				t.Fatalf("implementations disagree at (%d,%d): %g vs %g",
					x, y, fast.Get(x, y), legacy.Get(x, y))
			}
		}
	}
}

func TestSolarZenithSanity(t *testing.T) {
	// Athens (23.7 E, 38.0 N), local solar noon in August: sun well up.
	noon := time.Date(2007, 8, 24, 10, 30, 0, 0, time.UTC) // ~12:05 solar
	z := solar.ZenithAngle(noon, 23.7, 38.0)
	if z > 35 {
		t.Fatalf("noon zenith = %g", z)
	}
	midnight := time.Date(2007, 8, 24, 22, 30, 0, 0, time.UTC)
	zn := solar.ZenithAngle(midnight, 23.7, 38.0)
	if zn < 90 {
		t.Fatalf("midnight zenith = %g", zn)
	}
	if solar.Classify(z) != solar.Day || solar.Classify(zn) != solar.Night {
		t.Fatal("regime classification wrong")
	}
	// Twilight weight is monotone.
	if solar.TwilightWeight(75) <= solar.TwilightWeight(85) {
		t.Fatal("twilight weight should decrease with zenith")
	}
}
