package detect

import (
	"math"

	"repro/internal/array"
)

// LegacyClassify is the imperative baseline classification: a direct
// translation of the hand-written C loop structure of NOA's pre-TELEIOS
// chain. Each pixel rescans its 3×3 neighbourhood (no shared prefix
// sums), computes both windowed standard deviations, and applies the
// thresholds inline. Table 2 compares the chain built on this routine
// against the declarative SciQL chain.
func LegacyClassify(t039, t108 *array.Dense, zenith func(x, y int) float64) *array.Dense {
	w, h := t039.Width(), t039.Height()
	x0, y0 := t039.Origin()
	bx0, by0 := t108.Origin()
	a := t039.Values()
	b := t108.Values()
	_ = bx0
	_ = by0
	out := array.NewWithOrigin(x0, y0, w, h)
	res := out.Values()

	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			// Windowed first and second moments, rescanned per pixel.
			var sumA, sumA2, sumB, sumB2 float64
			n := 0
			for dy := -1; dy <= 1; dy++ {
				yy := y + dy
				if yy < 0 || yy >= h {
					continue
				}
				for dx := -1; dx <= 1; dx++ {
					xx := x + dx
					if xx < 0 || xx >= w {
						continue
					}
					va := a[yy*w+xx]
					vb := b[yy*w+xx]
					sumA += va
					sumA2 += va * va
					sumB += vb
					sumB2 += vb * vb
					n++
				}
			}
			fn := float64(n)
			meanA := sumA / fn
			meanB := sumB / fn
			varA := sumA2/fn - meanA*meanA
			varB := sumB2/fn - meanB*meanB
			if varA < 0 {
				varA = 0
			}
			if varB < 0 {
				varB = 0
			}
			stdA := math.Sqrt(varA)
			stdB := math.Sqrt(varB)

			th := DayThresholds
			if zenith != nil {
				th = ForZenith(zenith(x, y))
			}
			res[y*w+x] = float64(ClassifyPixel(a[y*w+x], b[y*w+x], stdA, stdB, th))
		}
	}
	return out
}
