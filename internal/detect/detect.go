// Package detect implements the contextual fire classification of the
// processing chain: the EUMETSAT Active Fire Monitoring thresholding
// algorithm [EUM/MET/REP/07/0170] as used by the paper — per-pixel tests
// on the 3.9 µm brightness temperature, the 3.9−10.8 µm difference, and
// the 3×3 windowed standard deviations of both bands, with day/night
// threshold sets interpolated across twilight by solar zenith angle.
//
// Two implementations are provided: Classify, the building block the
// SciQL chain reproduces declaratively, and LegacyChain (see legacy.go),
// the imperative baseline standing in for the paper's "legacy C"
// implementation in the Table 2 comparison.
package detect

import (
	"fmt"

	"repro/internal/array"
	"repro/internal/solar"
)

// Confidence levels of the classification, as in the paper: "The value 2
// denotes fire, value 1 denotes potential fire while 0 denotes no fire."
const (
	NoFire        = 0
	PotentialFire = 1
	Fire          = 2
)

// Thresholds is one threshold set of the EUMETSAT algorithm.
type Thresholds struct {
	T039          float64 // min 3.9 µm temperature (K)
	DiffFire      float64 // min 3.9−10.8 difference for confidence 2
	DiffPotential float64 // min difference for confidence 1
	Std039Fire    float64 // min 3.9 µm window std-dev for confidence 2
	Std039Pot     float64 // min std-dev for confidence 1
	Std108Max     float64 // max 10.8 µm window std-dev (cloud-edge guard)
}

// DayThresholds are the values in the paper's Figure 4 (daytime image).
var DayThresholds = Thresholds{
	T039:          310,
	DiffFire:      10,
	DiffPotential: 8,
	Std039Fire:    4,
	Std039Pot:     2.5,
	Std108Max:     2,
}

// NightThresholds follow the EUMETSAT ATBD's night configuration: the
// 3.9 µm background is colder at night, so the absolute and contextual
// thresholds relax.
var NightThresholds = Thresholds{
	T039:          290,
	DiffFire:      8,
	DiffPotential: 6,
	Std039Fire:    3,
	Std039Pot:     2,
	Std108Max:     2,
}

// Interpolate blends two threshold sets: w = 1 gives day, w = 0 night.
// The paper: "For solar zenith angles between 70° and 90° the thresholds
// are linearly interpolated."
func Interpolate(day, night Thresholds, w float64) Thresholds {
	mix := func(d, n float64) float64 { return n + (d-n)*w }
	return Thresholds{
		T039:          mix(day.T039, night.T039),
		DiffFire:      mix(day.DiffFire, night.DiffFire),
		DiffPotential: mix(day.DiffPotential, night.DiffPotential),
		Std039Fire:    mix(day.Std039Fire, night.Std039Fire),
		Std039Pot:     mix(day.Std039Pot, night.Std039Pot),
		Std108Max:     mix(day.Std108Max, night.Std108Max),
	}
}

// ForZenith returns the interpolated threshold set for a solar zenith
// angle in degrees.
func ForZenith(zenith float64) Thresholds {
	return Interpolate(DayThresholds, NightThresholds, solar.TwilightWeight(zenith))
}

// ClassifyPixel applies a threshold set to one pixel's statistics.
func ClassifyPixel(t039, t108, std039, std108 float64, th Thresholds) int {
	diff := t039 - t108
	if t039 > th.T039 && diff > th.DiffFire && std039 > th.Std039Fire && std108 < th.Std108Max {
		return Fire
	}
	if t039 > th.T039 && diff > th.DiffPotential && std039 > th.Std039Pot && std108 < th.Std108Max {
		return PotentialFire
	}
	return NoFire
}

// Classify runs the full contextual classification over co-registered
// temperature arrays. The zenith function supplies the per-pixel solar
// zenith angle ("computed on a per-pixel basis given the image
// acquisition timestamp and the exact location of the pixel"); pass nil
// for uniform day thresholds.
func Classify(t039, t108 *array.Dense, zenith func(x, y int) float64) (*array.Dense, error) {
	if t039.Width() != t108.Width() || t039.Height() != t108.Height() {
		return nil, fmt.Errorf("detect: band shape mismatch %dx%d vs %dx%d",
			t039.Width(), t039.Height(), t108.Width(), t108.Height())
	}
	std039 := t039.WindowStdDev(1)
	std108 := t108.WindowStdDev(1)
	x0, y0 := t039.Origin()
	bx0, by0 := t108.Origin()
	out := array.NewWithOrigin(x0, y0, t039.Width(), t039.Height())
	for y := 0; y < t039.Height(); y++ {
		for x := 0; x < t039.Width(); x++ {
			ax, ay := x0+x, y0+y
			th := DayThresholds
			if zenith != nil {
				th = ForZenith(zenith(x, y))
			}
			c := ClassifyPixel(
				t039.Get(ax, ay),
				t108.Get(bx0+x, by0+y),
				std039.Get(ax, ay),
				std108.Get(ax, ay),
				th,
			)
			out.Set(ax, ay, float64(c))
		}
	}
	return out, nil
}
