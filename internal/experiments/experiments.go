// Package experiments regenerates every table and figure of the paper's
// evaluation (Section 4). Each experiment is a pure function over a seed
// and scale parameters so the benchmark harness (bench_test.go) and the
// benchtables command share one implementation.
package experiments

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"repro/internal/accuracy"
	"repro/internal/core"
	"repro/internal/modis"
	"repro/internal/products"
	"repro/internal/refine"
	"repro/internal/seviri"
	"repro/internal/vault"
)

// Table1Result is the paper's Table 1: thematic accuracy of the plain
// chain vs after refinement.
type Table1Result struct {
	Plain   accuracy.Row
	Refined accuracy.Row
}

// Table1 reproduces the validation protocol: MSG acquisitions are
// serviced inside the 30-minute merge window around every MODIS overpass
// of the evaluation days, then both product variants are overlaid with
// the MODIS reference.
func Table1(seed int64, days int) (*Table1Result, error) {
	cfg := seviri.DefaultScenarioConfig()
	cfg.Days = days
	svc, err := core.NewService(seed, cfg)
	if err != nil {
		return nil, err
	}
	start := cfg.Start
	// Service the MSG1 stream inside each overpass merge window.
	for _, op := range modis.OverpassesFor(start, days) {
		from := op.Time.Add(-accuracy.MergeWindow / 2)
		for _, t := range seviri.AcquisitionTimes(seviri.MSG1, from, accuracy.MergeWindow) {
			if _, err := svc.Step(seviri.MSG1, t); err != nil {
				return nil, err
			}
		}
	}
	reference := modis.DetectAll(svc.Sim.Scenario, start, days)
	refined, err := svc.RefinedProducts()
	if err != nil {
		return nil, err
	}
	return &Table1Result{
		Plain:   accuracy.Evaluate("Plain chain", svc.PlainProducts, reference),
		Refined: accuracy.Evaluate("After refinement", refined, reference),
	}, nil
}

// Render formats the result like the paper's Table 1.
func (r *Table1Result) Render() string {
	var b strings.Builder
	b.WriteString("Table 1: Thematic accuracy for the original chain and after refinement\n")
	fmt.Fprintf(&b, "%-18s %12s %14s %10s %12s %14s %12s\n",
		"Chain", "MODIS total", "MODIS det.", "Omis. %", "MSG total", "MSG det.", "FalseAl. %")
	for _, row := range []accuracy.Row{r.Plain, r.Refined} {
		fmt.Fprintf(&b, "%-18s %12d %14d %10.2f %12d %14d %12.2f\n",
			row.Label, row.TotalMODIS, row.MODISDetectedByMSG, row.OmissionPct,
			row.TotalMSG, row.MSGDetectedByMODIS, row.FalseAlarmPct)
	}
	b.WriteString("Paper:             2542 / 2219 / 12.71 / 2710 / 2000 / 26.20 (plain)\n")
	b.WriteString("                   2542 / 2287 / 10.03 / 3262 / 2301 / 29.46 (refined)\n")
	return b.String()
}

// Table2Result is the paper's Table 2: per-image processing time of the
// legacy chain vs the SciQL chain.
type Table2Result struct {
	Images                          int
	LegacyAvg, LegacyMin, LegacyMax time.Duration
	SciQLAvg, SciQLMin, SciQLMax    time.Duration
}

// Table2 processes `images` consecutive MSG1 acquisitions of the paper's
// evaluation day through both chains, measuring wall time per image (the
// paper: 281 images of 22 Aug 2010).
func Table2(seed int64, images int) (*Table2Result, error) {
	cfg := seviri.DefaultScenarioConfig()
	cfg.Start = time.Date(2010, 8, 22, 0, 0, 0, 0, time.UTC)
	cfg.Days = 1
	cfg.FiresPerDay = 10
	svc, err := core.NewService(seed, cfg)
	if err != nil {
		return nil, err
	}
	v := vault.New(2 * images)
	sciqlChain := core.NewSciQLChain(v, svc.Sim.Transform())
	legacyChain := core.NewLegacyChain(v, svc.Sim.Transform())

	times := seviri.AcquisitionTimes(seviri.MSG1,
		cfg.Start.Add(8*time.Hour), time.Duration(images)*seviri.MSG1.Cadence)
	res := &Table2Result{Images: len(times), LegacyMin: 1 << 62, SciQLMin: 1 << 62}
	var legacyTotal, sciqlTotal time.Duration
	for _, at := range times {
		acq, err := svc.Sim.Acquire(seviri.MSG1, at, 4, true)
		if err != nil {
			return nil, err
		}
		if err := core.IngestAcquisition(v, acq); err != nil {
			return nil, err
		}
		start := time.Now()
		pl, err := legacyChain.Process("MSG1", at)
		if err != nil {
			return nil, err
		}
		d := time.Since(start)
		legacyTotal += d
		res.LegacyMin = minDur(res.LegacyMin, d)
		res.LegacyMax = maxDur(res.LegacyMax, d)

		start = time.Now()
		ps, err := sciqlChain.Process("MSG1", at)
		if err != nil {
			return nil, err
		}
		d = time.Since(start)
		sciqlTotal += d
		res.SciQLMin = minDur(res.SciQLMin, d)
		res.SciQLMax = maxDur(res.SciQLMax, d)

		if len(pl.Hotspots) != len(ps.Hotspots) {
			return nil, fmt.Errorf("experiments: chains disagree at %v: %d vs %d hotspots",
				at, len(pl.Hotspots), len(ps.Hotspots))
		}
	}
	n := time.Duration(len(times))
	if n > 0 {
		res.LegacyAvg = legacyTotal / n
		res.SciQLAvg = sciqlTotal / n
	}
	return res, nil
}

func minDur(a, b time.Duration) time.Duration {
	if a < b {
		return a
	}
	return b
}

func maxDur(a, b time.Duration) time.Duration {
	if a > b {
		return a
	}
	return b
}

// Render formats the result like the paper's Table 2.
func (r *Table2Result) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table 2: Processing times per image acquisition (%d images)\n", r.Images)
	fmt.Fprintf(&b, "%-12s %12s %12s %12s\n", "Chain", "Avg", "Min", "Max")
	fmt.Fprintf(&b, "%-12s %12s %12s %12s\n", "Legacy", r.LegacyAvg, r.LegacyMin, r.LegacyMax)
	fmt.Fprintf(&b, "%-12s %12s %12s %12s\n", "SciQL", r.SciQLAvg, r.SciQLMin, r.SciQLMax)
	ratio := 0.0
	if r.LegacyAvg > 0 {
		ratio = float64(r.SciQLAvg) / float64(r.LegacyAvg)
	}
	fmt.Fprintf(&b, "SciQL/Legacy ratio: %.2fx (paper: 2.067/1.481 = 1.40x)\n", ratio)
	return b.String()
}

// Figure8Point is one measurement of Figure 8: the response time of one
// refinement operation at one acquisition.
type Figure8Point struct {
	Sensor   string
	At       time.Time
	Op       refine.Op
	Duration time.Duration
	Hotspots int
}

// Figure8Result holds both sensor series.
type Figure8Result struct {
	Points []Figure8Point
}

// Figure8 runs the refinement sequence over MSG1 and MSG2 acquisition
// streams and records per-operation response times.
func Figure8(seed int64, window time.Duration) (*Figure8Result, error) {
	out := &Figure8Result{}
	for _, sensor := range []seviri.Sensor{seviri.MSG1, seviri.MSG2} {
		cfg := seviri.DefaultScenarioConfig()
		cfg.Days = 1
		svc, err := core.NewService(seed, cfg)
		if err != nil {
			return nil, err
		}
		from := cfg.Start.Add(10 * time.Hour)
		for _, at := range seviri.AcquisitionTimes(sensor, from, window) {
			rep, err := svc.Step(sensor, at)
			if err != nil {
				return nil, err
			}
			for _, tm := range rep.RefineOps {
				out.Points = append(out.Points, Figure8Point{
					Sensor: sensor.Name, At: at, Op: tm.Op,
					Duration: tm.Duration, Hotspots: rep.RawHotspot,
				})
			}
		}
	}
	return out, nil
}

// Render prints the per-op series plus summary statistics, mirroring the
// Figure 8 log-scale plot as text.
func (r *Figure8Result) Render() string {
	var b strings.Builder
	b.WriteString("Figure 8: refinement response times per acquisition (ms)\n")
	type key struct {
		sensor string
		op     refine.Op
	}
	series := make(map[key][]float64)
	for _, p := range r.Points {
		k := key{p.Sensor, p.Op}
		series[k] = append(series[k], float64(p.Duration.Microseconds())/1000)
	}
	var keys []key
	for k := range series {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].sensor != keys[j].sensor {
			return keys[i].sensor < keys[j].sensor
		}
		return opRank(keys[i].op) < opRank(keys[j].op)
	})
	fmt.Fprintf(&b, "%-6s %-18s %10s %10s %10s\n", "Sensor", "Operation", "median", "p95", "max")
	for _, k := range keys {
		vals := series[k]
		sort.Float64s(vals)
		med := vals[len(vals)/2]
		p95 := vals[min(len(vals)-1, len(vals)*95/100)]
		fmt.Fprintf(&b, "%-6s %-18s %9.2f %9.2f %9.2f\n",
			k.sensor, k.op, med, p95, vals[len(vals)-1])
	}
	b.WriteString("Paper shape: all ops sub-second, Municipalities the slowest (sec-level spikes),\n")
	b.WriteString("time grows with the number of hotspots in the acquisition.\n")
	return b.String()
}

func opRank(op refine.Op) int {
	for i, o := range refine.AllOps {
		if o == op {
			return i
		}
	}
	return len(refine.AllOps)
}

// MunicipalitiesSlowest verifies the paper's headline Figure 8
// observation on the measured data.
func (r *Figure8Result) MunicipalitiesSlowest() bool {
	totals := make(map[refine.Op]time.Duration)
	for _, p := range r.Points {
		if p.Op == refine.OpStore {
			continue // Store is bulk-load, not a spatial query
		}
		totals[p.Op] += p.Duration
	}
	mun := totals[refine.OpMunicipalities]
	for op, d := range totals {
		if op != refine.OpMunicipalities && op != refine.OpTimePersistence && d > mun {
			return false
		}
	}
	return mun > 0
}

// CollectProducts is a helper for the map figures: services a short MSG1
// window and returns the service (with products stored in Strabon).
func CollectProducts(seed int64, window time.Duration) (*core.Service, []*products.Product, error) {
	cfg := seviri.DefaultScenarioConfig()
	cfg.Days = 1
	svc, err := core.NewService(seed, cfg)
	if err != nil {
		return nil, nil, err
	}
	from := cfg.Start.Add(11 * time.Hour)
	if err := svc.RunWindow(seviri.MSG1, from, window); err != nil {
		return nil, nil, err
	}
	return svc, svc.PlainProducts, nil
}
