package experiments

import (
	"strings"
	"testing"
	"time"

	"repro/internal/geom"
)

func TestTable2SmallScale(t *testing.T) {
	res, err := Table2(42, 4)
	if err != nil {
		t.Fatal(err)
	}
	if res.Images != 4 {
		t.Fatalf("images = %d", res.Images)
	}
	if res.LegacyAvg <= 0 || res.SciQLAvg <= 0 {
		t.Fatalf("timings = %+v", res)
	}
	if res.LegacyMin > res.LegacyMax || res.SciQLMin > res.SciQLMax {
		t.Fatal("min/max inverted")
	}
	out := res.Render()
	if !strings.Contains(out, "Legacy") || !strings.Contains(out, "SciQL") {
		t.Fatalf("render: %s", out)
	}
}

func TestFigure8SmallScale(t *testing.T) {
	res, err := Figure8(42, 30*time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) == 0 {
		t.Fatal("no measurements")
	}
	sensors := map[string]bool{}
	for _, p := range res.Points {
		sensors[p.Sensor] = true
		if p.Duration <= 0 {
			t.Fatal("zero duration point")
		}
	}
	if !sensors["MSG1"] || !sensors["MSG2"] {
		t.Fatalf("sensors = %v", sensors)
	}
	out := res.Render()
	if !strings.Contains(out, "Municipalities") {
		t.Fatalf("render: %s", out)
	}
}

func TestFigureMaps(t *testing.T) {
	m2, err := Figure2(42, 10*time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	svg := m2.SVG(600)
	if !strings.HasPrefix(svg, "<svg") || !strings.Contains(svg, "hotspots") {
		t.Fatal("figure 2 SVG malformed")
	}

	svc, _, err := CollectProducts(42, 10*time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	window := geom.Envelope{MinX: 20.5, MinY: 36.0, MaxX: 24.5, MaxY: 39.5}
	from := time.Date(2007, 8, 24, 0, 0, 0, 0, time.UTC)
	m6, err := Figure6(svc, window, from, from.Add(24*time.Hour))
	if err != nil {
		t.Fatal(err)
	}
	svg6 := m6.SVG(600)
	for _, want := range []string{"Corine land cover", "Municipality boundaries", "Primary roads"} {
		if !strings.Contains(svg6, want) {
			t.Fatalf("figure 6 missing layer %q", want)
		}
	}
	if gj := m6.GeoJSON(); !strings.Contains(gj, "FeatureCollection") {
		t.Fatal("figure 6 GeoJSON malformed")
	}

	m7, err := Figure7(42, 10*time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(m7.SVG(600), "MODIS hotspots") {
		t.Fatal("figure 7 missing MODIS layer")
	}
}

func TestTable1Tiny(t *testing.T) {
	if testing.Short() {
		t.Skip("table 1 protocol is slow")
	}
	res, err := Table1(42, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.Plain.TotalMSG == 0 {
		t.Fatal("plain chain produced no hotspots at all")
	}
	out := res.Render()
	if !strings.Contains(out, "Table 1") {
		t.Fatalf("render: %s", out)
	}
	// The refinement must not raise the omission error.
	if res.Refined.OmissionPct > res.Plain.OmissionPct+1e-9 {
		t.Fatalf("refinement raised omission: %.2f -> %.2f",
			res.Plain.OmissionPct, res.Refined.OmissionPct)
	}
}
