package experiments

import (
	"context"
	"fmt"
	"time"

	"repro/internal/accuracy"
	"repro/internal/auxdata"
	"repro/internal/core"
	"repro/internal/geom"
	"repro/internal/mapgen"
	"repro/internal/modis"
	"repro/internal/ontology"
	"repro/internal/strabon"
	"repro/internal/stsparql"
)

// geomsOf parses the geometry bindings of a query result column.
func geomsOf(res *stsparql.Result, geomVar, labelVar string) ([]geom.Geometry, []string) {
	var gs []geom.Geometry
	var labels []string
	for _, row := range res.Rows {
		t, ok := row[geomVar]
		if !ok {
			continue
		}
		g, err := geom.ParseWKT(t.Value)
		if err != nil {
			continue
		}
		gs = append(gs, g)
		label := ""
		if labelVar != "" {
			label = row[labelVar].Value
		}
		labels = append(labels, label)
	}
	return gs, labels
}

// Figure2 regenerates the paper's Figure 2: a detailed vector
// representation of detected fires over the coastline and road network.
func Figure2(seed int64, window time.Duration) (*mapgen.Map, error) {
	svc, prods, err := CollectProducts(seed, window)
	if err != nil {
		return nil, err
	}
	world := svc.Sim.Scenario.World
	m := mapgen.New(auxdata.Region, "Figure 2: vector representation of detected fires")
	var land []geom.Geometry
	for _, p := range world.Land {
		land = append(land, p)
	}
	m.AddLayer(mapgen.Layer{Name: "Coastline", Stroke: "#7a6a4f", Fill: "#f3ecd9", Geoms: land})
	var roads []geom.Geometry
	for _, r := range world.Roads {
		roads = append(roads, r.Path)
	}
	m.AddLayer(mapgen.Layer{Name: "Primary roads", Stroke: "#c04000", Width: 1.2, Geoms: roads})
	var fires []geom.Geometry
	for _, p := range prods {
		for _, h := range p.Hotspots {
			fires = append(fires, h.Geometry)
		}
	}
	m.AddLayer(mapgen.Layer{Name: "MSG/SEVIRI hotspots", Stroke: "#990000", Fill: "#ff2200", Opacity: 0.6, Geoms: fires})
	return m, nil
}

// Figure6Queries are the five stSPARQL queries of Section 3.2.4, adapted
// only in the dataset prefixes (the paper mixes noa:hasGeometry and
// strdf:hasGeometry; the synthetic datasets use strdf: throughout). The
// window polygon is the paper's south-eastern-Peloponnese analogue in the
// synthetic region.
func Figure6Queries(window geom.Envelope, from, to time.Time) map[string]string {
	wkt := geom.WKT(window.ToPolygon())
	q := make(map[string]string)
	q["hotspots"] = fmt.Sprintf(`
SELECT ?hotspot ?hGeo ?hAcqTime ?hConfidence ?hSensor
WHERE {
  ?hotspot a noa:Hotspot ;
    strdf:hasGeometry ?hGeo ;
    noa:hasAcquisitionDateTime ?hAcqTime ;
    noa:hasConfidence ?hConfidence ;
    noa:isDerivedFromSensor ?hSensor ;
  FILTER( "%s" <= str(?hAcqTime) ) .
  FILTER( str(?hAcqTime) <= "%s" ) .
  FILTER( strdf:contains("%s"^^strdf:WKT, ?hGeo)).
}`, from.UTC().Format("2006-01-02T15:04:05"), to.UTC().Format("2006-01-02T15:04:05"), wkt)
	q["landcover"] = fmt.Sprintf(`
SELECT ?area ?aGeo ?aLandUse
WHERE {
  ?area a clc:Area ;
    clc:hasLandUse ?aLandUse ;
    strdf:hasGeometry ?aGeo .
  FILTER( strdf:anyInteract("%s"^^strdf:WKT, ?aGeo) ) . }`, wkt)
	q["roads"] = fmt.Sprintf(`
SELECT ?road ?rGeo
WHERE {
  ?road a lgdo:Primary ;
    strdf:hasGeometry ?rGeo .
  FILTER( strdf:anyInteract("%s"^^strdf:WKT, ?rGeo) ) .}`, wkt)
	q["capitals"] = fmt.Sprintf(`
SELECT ?n ?nName ?nGeo
WHERE {
  ?n a gn:Feature ;
    strdf:hasGeometry ?nGeo ;
    gn:name ?nName ;
    gn:featureCode <%s> .
  FILTER( strdf:contains("%s"^^strdf:WKT, ?nGeo))}`, ontology.CodePPLA, wkt)
	q["municipalities"] = fmt.Sprintf(`
SELECT ?municipality ?mYpesCode ?mContainer ?mLabel
  ( strdf:boundary(?mGeo) as ?mBoundary )
WHERE {
  ?municipality a gag:Municipality ;
    gag:hasYpesCode ?mYpesCode ;
    gag:isPartOf ?mContainer ;
    rdfs:label ?mLabel ;
    strdf:hasGeometry ?mGeo .
  FILTER( strdf:anyInteract("%s"^^strdf:WKT, ?mGeo) ) . }`, wkt)
	return q
}

// Figure6 regenerates the paper's Figure 6: the overlay map built from
// Queries 1–5.
func Figure6(svc *core.Service, window geom.Envelope, from, to time.Time) (*mapgen.Map, error) {
	queries := Figure6Queries(window, from, to)
	run := func(name string) (*stsparql.Result, error) {
		res, err := strabon.MaterialiseQuery(context.Background(), svc.Strabon, queries[name])
		if err != nil {
			return nil, fmt.Errorf("experiments: figure 6 query %q: %w", name, err)
		}
		return res, nil
	}
	m := mapgen.New(window, "Figure 6: thematic map from stSPARQL queries")

	lc, err := run("landcover")
	if err != nil {
		return nil, err
	}
	lcG, _ := geomsOf(lc, "aGeo", "")
	m.AddLayer(mapgen.Layer{Name: "Corine land cover", Stroke: "#8aa86d", Fill: "#d9e8c4", Opacity: 0.8, Geoms: lcG})

	mun, err := run("municipalities")
	if err != nil {
		return nil, err
	}
	munG, munL := geomsOf(mun, "mBoundary", "mLabel")
	m.AddLayer(mapgen.Layer{Name: "Municipality boundaries", Stroke: "#555588", Width: 1, Geoms: munG, Labels: munL})

	roads, err := run("roads")
	if err != nil {
		return nil, err
	}
	roadG, _ := geomsOf(roads, "rGeo", "")
	m.AddLayer(mapgen.Layer{Name: "Primary roads", Stroke: "#c04000", Width: 1.4, Geoms: roadG})

	hs, err := run("hotspots")
	if err != nil {
		return nil, err
	}
	hsG, _ := geomsOf(hs, "hGeo", "")
	m.AddLayer(mapgen.Layer{Name: "Hotspots", Stroke: "#990000", Fill: "#ff2200", Opacity: 0.65, Geoms: hsG})

	caps, err := run("capitals")
	if err != nil {
		return nil, err
	}
	capG, capL := geomsOf(caps, "nGeo", "nName")
	m.AddLayer(mapgen.Layer{Name: "Prefecture capitals", Stroke: "#000000", Fill: "#222266", Geoms: capG, Labels: capL})

	m.SortLayersBottomUp()
	return m, nil
}

// Figure7 regenerates the paper's Figure 7: the MODIS-vs-MSG overlay
// exposing false alarms and omissions, over the coastline.
func Figure7(seed int64, window time.Duration) (*mapgen.Map, error) {
	svc, prods, err := CollectProducts(seed, window)
	if err != nil {
		return nil, err
	}
	world := svc.Sim.Scenario.World
	start := prods[0].AcquiredAt
	var modisPts []geom.Geometry
	for _, op := range modis.OverpassesFor(start.Truncate(24*time.Hour), 1) {
		for _, h := range modis.Detect(svc.Sim.Scenario, op) {
			if d := op.Time.Sub(start); d >= -accuracy.MergeWindow && d <= window+accuracy.MergeWindow {
				modisPts = append(modisPts, h.Location)
			}
		}
	}
	m := mapgen.New(auxdata.Region, "Figure 7: false alarms and omissions (MSG vs MODIS)")
	var land []geom.Geometry
	for _, p := range world.Land {
		land = append(land, p)
	}
	m.AddLayer(mapgen.Layer{Name: "Greek coastline", Stroke: "#7a6a4f", Fill: "#f3ecd9", Geoms: land})
	var fires []geom.Geometry
	for _, p := range prods {
		for _, h := range p.Hotspots {
			fires = append(fires, h.Geometry)
		}
	}
	m.AddLayer(mapgen.Layer{Name: "MSG/SEVIRI hotspots", Stroke: "#990000", Fill: "#ff9955", Opacity: 0.7, Geoms: fires})
	m.AddLayer(mapgen.Layer{Name: "MODIS hotspots", Stroke: "#003399", Fill: "#2255ff", Geoms: modisPts})
	return m, nil
}
