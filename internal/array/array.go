// Package array implements the scientific 2-D array engine underneath the
// SciQL front-end: dense float64 arrays with integer x/y dimensions,
// validity masks, slicing, elementwise kernels and O(1)-per-cell sliding
// window aggregation via summed-area tables. It plays the role MonetDB's
// array storage plays in the paper.
package array

import (
	"encoding/binary"
	"fmt"
	"io"
	"math"
)

// Dense is a two-dimensional array of float64 cells. The x dimension is
// the column index and y the row index, matching the SciQL declarations
// "(x INTEGER DIMENSION, y INTEGER DIMENSION, v FLOAT)" of the paper. The
// dimension ranges may start at a non-zero offset after slicing.
type Dense struct {
	x0, y0 int // dimension origin
	w, h   int
	vals   []float64
	valid  []bool // nil means fully valid
}

// New returns a w×h array with origin (0,0), zero-filled.
func New(w, h int) *Dense {
	if w < 0 || h < 0 {
		panic(fmt.Sprintf("array: negative dimensions %dx%d", w, h))
	}
	return &Dense{w: w, h: h, vals: make([]float64, w*h)}
}

// NewWithOrigin returns a w×h array whose dimensions start at (x0, y0).
func NewWithOrigin(x0, y0, w, h int) *Dense {
	a := New(w, h)
	a.x0, a.y0 = x0, y0
	return a
}

// FromValues builds an array from row-major values.
func FromValues(w, h int, vals []float64) (*Dense, error) {
	if len(vals) != w*h {
		return nil, fmt.Errorf("array: %d values for %dx%d array", len(vals), w, h)
	}
	a := New(w, h)
	copy(a.vals, vals)
	return a, nil
}

// Width returns the x extent.
func (a *Dense) Width() int { return a.w }

// Height returns the y extent.
func (a *Dense) Height() int { return a.h }

// Origin returns the first valid (x, y) dimension values.
func (a *Dense) Origin() (int, int) { return a.x0, a.y0 }

// Len returns the cell count.
func (a *Dense) Len() int { return a.w * a.h }

// Values exposes the underlying row-major cell slice. Mutating it mutates
// the array; kernels use it to avoid per-cell bounds checks.
func (a *Dense) Values() []float64 { return a.vals }

// contains reports whether dimension coordinates are in range.
func (a *Dense) contains(x, y int) bool {
	return x >= a.x0 && x < a.x0+a.w && y >= a.y0 && y < a.y0+a.h
}

func (a *Dense) idx(x, y int) int { return (y-a.y0)*a.w + (x - a.x0) }

// Get returns the cell at dimension coordinates (x, y).
func (a *Dense) Get(x, y int) float64 {
	if !a.contains(x, y) {
		panic(fmt.Sprintf("array: Get(%d,%d) out of range [%d:%d)x[%d:%d)",
			x, y, a.x0, a.x0+a.w, a.y0, a.y0+a.h))
	}
	return a.vals[a.idx(x, y)]
}

// Set stores v at (x, y) and marks the cell valid.
func (a *Dense) Set(x, y int, v float64) {
	if !a.contains(x, y) {
		panic(fmt.Sprintf("array: Set(%d,%d) out of range", x, y))
	}
	i := a.idx(x, y)
	a.vals[i] = v
	if a.valid != nil {
		a.valid[i] = true
	}
}

// Valid reports whether the cell holds a value (true unless the cell was
// explicitly invalidated).
func (a *Dense) Valid(x, y int) bool {
	if !a.contains(x, y) {
		return false
	}
	if a.valid == nil {
		return true
	}
	return a.valid[a.idx(x, y)]
}

// Invalidate marks a cell as holding no value (SQL NULL).
func (a *Dense) Invalidate(x, y int) {
	if !a.contains(x, y) {
		return
	}
	if a.valid == nil {
		a.valid = make([]bool, a.w*a.h)
		for i := range a.valid {
			a.valid[i] = true
		}
	}
	a.valid[a.idx(x, y)] = false
}

// Clone returns a deep copy.
func (a *Dense) Clone() *Dense {
	out := &Dense{x0: a.x0, y0: a.y0, w: a.w, h: a.h, vals: append([]float64(nil), a.vals...)}
	if a.valid != nil {
		out.valid = append([]bool(nil), a.valid...)
	}
	return out
}

// Slice returns the sub-array covering dimension range [x0, x1) × [y0, y1),
// clamped to the array bounds. The result keeps absolute dimension
// coordinates, matching SciQL range-query semantics (this is the paper's
// cropping step).
func (a *Dense) Slice(x0, x1, y0, y1 int) *Dense {
	x0 = max(x0, a.x0)
	y0 = max(y0, a.y0)
	x1 = min(x1, a.x0+a.w)
	y1 = min(y1, a.y0+a.h)
	if x1 <= x0 || y1 <= y0 {
		return NewWithOrigin(x0, y0, 0, 0)
	}
	out := NewWithOrigin(x0, y0, x1-x0, y1-y0)
	for y := y0; y < y1; y++ {
		srcRow := a.idx(x0, y)
		dstRow := out.idx(x0, y)
		copy(out.vals[dstRow:dstRow+out.w], a.vals[srcRow:srcRow+out.w])
	}
	if a.valid != nil {
		out.valid = make([]bool, out.w*out.h)
		for y := y0; y < y1; y++ {
			srcRow := a.idx(x0, y)
			dstRow := out.idx(x0, y)
			copy(out.valid[dstRow:dstRow+out.w], a.valid[srcRow:srcRow+out.w])
		}
	}
	return out
}

// Map applies f to every cell, returning a new array with the same domain.
func (a *Dense) Map(f func(v float64) float64) *Dense {
	out := a.Clone()
	for i, v := range out.vals {
		out.vals[i] = f(v)
	}
	return out
}

// Zip combines two arrays cell-wise. The arrays must share width/height;
// origins may differ (cells are aligned positionally, the SciQL dimension
// join after both sides were cropped to the same window).
func Zip(a, b *Dense, f func(av, bv float64) float64) (*Dense, error) {
	if a.w != b.w || a.h != b.h {
		return nil, fmt.Errorf("array: Zip on %dx%d vs %dx%d", a.w, a.h, b.w, b.h)
	}
	out := a.Clone()
	for i := range out.vals {
		out.vals[i] = f(a.vals[i], b.vals[i])
	}
	if b.valid != nil {
		if out.valid == nil {
			out.valid = make([]bool, out.w*out.h)
			for i := range out.valid {
				out.valid[i] = true
			}
		}
		for i := range out.valid {
			out.valid[i] = out.valid[i] && b.valid[i]
		}
	}
	return out, nil
}

// Fill sets every cell to v.
func (a *Dense) Fill(v float64) {
	for i := range a.vals {
		a.vals[i] = v
	}
}

// Stats summarises the valid cells.
type Stats struct {
	Count    int
	Min, Max float64
	Mean     float64
}

// Summary computes min/max/mean over valid cells.
func (a *Dense) Summary() Stats {
	s := Stats{Min: math.Inf(1), Max: math.Inf(-1)}
	var sum float64
	for i, v := range a.vals {
		if a.valid != nil && !a.valid[i] {
			continue
		}
		s.Count++
		sum += v
		if v < s.Min {
			s.Min = v
		}
		if v > s.Max {
			s.Max = v
		}
	}
	if s.Count > 0 {
		s.Mean = sum / float64(s.Count)
	} else {
		s.Min, s.Max = 0, 0
	}
	return s
}

// WindowMean computes, for every cell, the mean over the (2r+1)×(2r+1)
// window centred on it (clamped at edges), using a summed-area table:
// O(1) per cell regardless of radius. This is the workhorse of the SciQL
// structural grouping "GROUP BY a[x-1:x+2][y-1:y+2]" in the paper's
// classification query.
func (a *Dense) WindowMean(r int) *Dense {
	sat := a.summedAreaTable()
	cnt := a.countTable(r)
	out := NewWithOrigin(a.x0, a.y0, a.w, a.h)
	for y := 0; y < a.h; y++ {
		for x := 0; x < a.w; x++ {
			out.vals[y*a.w+x] = windowSum(sat, a.w, a.h, x, y, r) / cnt[y*a.w+x]
		}
	}
	return out
}

// WindowMeanNaive is the rescan implementation used by the ablation
// benchmark: O(r²) per cell.
func (a *Dense) WindowMeanNaive(r int) *Dense {
	out := NewWithOrigin(a.x0, a.y0, a.w, a.h)
	for y := 0; y < a.h; y++ {
		for x := 0; x < a.w; x++ {
			var sum float64
			n := 0
			for dy := -r; dy <= r; dy++ {
				for dx := -r; dx <= r; dx++ {
					xx, yy := x+dx, y+dy
					if xx < 0 || xx >= a.w || yy < 0 || yy >= a.h {
						continue
					}
					sum += a.vals[yy*a.w+xx]
					n++
				}
			}
			out.vals[y*a.w+x] = sum / float64(n)
		}
	}
	return out
}

// WindowStdDev computes the windowed standard deviation per cell:
// sqrt(mean(v²) − mean(v)²), exactly the formulation in the paper's
// Figure 4 query.
func (a *Dense) WindowStdDev(r int) *Dense {
	mean := a.WindowMean(r)
	sq := a.Map(func(v float64) float64 { return v * v })
	meanSq := sq.WindowMean(r)
	out := NewWithOrigin(a.x0, a.y0, a.w, a.h)
	for i := range out.vals {
		d := meanSq.vals[i] - mean.vals[i]*mean.vals[i]
		if d < 0 {
			d = 0 // numerical noise
		}
		out.vals[i] = math.Sqrt(d)
	}
	return out
}

// summedAreaTable returns the (w+1)×(h+1) inclusive prefix-sum table.
func (a *Dense) summedAreaTable() []float64 {
	w1 := a.w + 1
	sat := make([]float64, w1*(a.h+1))
	for y := 0; y < a.h; y++ {
		var rowSum float64
		for x := 0; x < a.w; x++ {
			rowSum += a.vals[y*a.w+x]
			sat[(y+1)*w1+(x+1)] = sat[y*w1+(x+1)] + rowSum
		}
	}
	return sat
}

// windowSum sums the clamped window around (x, y) from a SAT.
func windowSum(sat []float64, w, h, x, y, r int) float64 {
	x0, y0 := max(x-r, 0), max(y-r, 0)
	x1, y1 := min(x+r, w-1), min(y+r, h-1)
	w1 := w + 1
	return sat[(y1+1)*w1+(x1+1)] - sat[y0*w1+(x1+1)] - sat[(y1+1)*w1+x0] + sat[y0*w1+x0]
}

// countTable precomputes the clamped window population per cell.
func (a *Dense) countTable(r int) []float64 {
	out := make([]float64, a.w*a.h)
	for y := 0; y < a.h; y++ {
		ny := min(y+r, a.h-1) - max(y-r, 0) + 1
		for x := 0; x < a.w; x++ {
			nx := min(x+r, a.w-1) - max(x-r, 0) + 1
			out[y*a.w+x] = float64(nx * ny)
		}
	}
	return out
}

// Resample maps this array onto a new grid of size w×h using the inverse
// transform inv: for each destination cell, inv returns the source
// coordinates, and the value is bilinearly interpolated. Cells mapping
// outside the source are invalidated. This is the georeferencing kernel.
func (a *Dense) Resample(w, h int, inv func(dx, dy int) (sx, sy float64)) *Dense {
	out := New(w, h)
	out.valid = make([]bool, w*h)
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			sx, sy := inv(x, y)
			fx, fy := sx-float64(a.x0), sy-float64(a.y0)
			ix, iy := int(math.Floor(fx)), int(math.Floor(fy))
			if ix < 0 || iy < 0 || ix >= a.w-1 || iy >= a.h-1 {
				continue
			}
			tx, ty := fx-float64(ix), fy-float64(iy)
			v00 := a.vals[iy*a.w+ix]
			v10 := a.vals[iy*a.w+ix+1]
			v01 := a.vals[(iy+1)*a.w+ix]
			v11 := a.vals[(iy+1)*a.w+ix+1]
			out.vals[y*w+x] = v00*(1-tx)*(1-ty) + v10*tx*(1-ty) + v01*(1-tx)*ty + v11*tx*ty
			out.valid[y*w+x] = true
		}
	}
	return out
}

const denseMagic = uint32(0x53714C41) // "SqLA"

// WriteTo serialises the array in a compact binary format.
func (a *Dense) WriteTo(w io.Writer) (int64, error) {
	hdr := []any{
		denseMagic,
		int32(a.x0), int32(a.y0), int32(a.w), int32(a.h),
		int32(boolToInt(a.valid != nil)),
	}
	var n int64
	for _, v := range hdr {
		if err := binary.Write(w, binary.LittleEndian, v); err != nil {
			return n, err
		}
		n += 4
	}
	if err := binary.Write(w, binary.LittleEndian, a.vals); err != nil {
		return n, err
	}
	n += int64(8 * len(a.vals))
	if a.valid != nil {
		bits := packBools(a.valid)
		if err := binary.Write(w, binary.LittleEndian, bits); err != nil {
			return n, err
		}
		n += int64(len(bits))
	}
	return n, nil
}

// ReadFrom deserialises an array written by WriteTo.
func ReadFrom(r io.Reader) (*Dense, error) {
	var magic uint32
	if err := binary.Read(r, binary.LittleEndian, &magic); err != nil {
		return nil, err
	}
	if magic != denseMagic {
		return nil, fmt.Errorf("array: bad magic %#x", magic)
	}
	var x0, y0, w, h, hasValid int32
	for _, p := range []*int32{&x0, &y0, &w, &h, &hasValid} {
		if err := binary.Read(r, binary.LittleEndian, p); err != nil {
			return nil, err
		}
	}
	if w < 0 || h < 0 || int64(w)*int64(h) > 1<<31 {
		return nil, fmt.Errorf("array: unreasonable dimensions %dx%d", w, h)
	}
	a := NewWithOrigin(int(x0), int(y0), int(w), int(h))
	if err := binary.Read(r, binary.LittleEndian, a.vals); err != nil {
		return nil, err
	}
	if hasValid != 0 {
		bits := make([]byte, (len(a.vals)+7)/8)
		if err := binary.Read(r, binary.LittleEndian, bits); err != nil {
			return nil, err
		}
		a.valid = unpackBools(bits, len(a.vals))
	}
	return a, nil
}

func packBools(bs []bool) []byte {
	out := make([]byte, (len(bs)+7)/8)
	for i, b := range bs {
		if b {
			out[i/8] |= 1 << (i % 8)
		}
	}
	return out
}

func unpackBools(bits []byte, n int) []bool {
	out := make([]bool, n)
	for i := range out {
		out[i] = bits[i/8]&(1<<(i%8)) != 0
	}
	return out
}

func boolToInt(b bool) int {
	if b {
		return 1
	}
	return 0
}
