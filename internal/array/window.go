package array

// This file provides the generalised structural-grouping kernels used by
// the SciQL executor: rectangular sliding windows with independent
// relative bounds, e.g. SciQL's "GROUP BY a[x-1:x+2][y-1:y+2]" denotes
// the window dx ∈ [-1, +2), dy ∈ [-1, +2) around each anchor cell.

// WindowSpec is a relative window: lo bounds inclusive, hi bounds
// exclusive, matching SciQL slice syntax.
type WindowSpec struct {
	XLo, XHi, YLo, YHi int
}

// Window3x3 is the classification window of the paper's Figure 4.
var Window3x3 = WindowSpec{XLo: -1, XHi: 2, YLo: -1, YHi: 2}

// Size returns the unclamped window population.
func (w WindowSpec) Size() int { return (w.XHi - w.XLo) * (w.YHi - w.YLo) }

// WindowSum computes, per cell, the sum of the window around it (clamped
// at array edges) in O(1) per cell via a summed-area table.
func (a *Dense) WindowSum(spec WindowSpec) *Dense {
	sat := a.summedAreaTable()
	out := NewWithOrigin(a.x0, a.y0, a.w, a.h)
	w1 := a.w + 1
	for y := 0; y < a.h; y++ {
		y0 := max(y+spec.YLo, 0)
		y1 := min(y+spec.YHi-1, a.h-1)
		for x := 0; x < a.w; x++ {
			x0 := max(x+spec.XLo, 0)
			x1 := min(x+spec.XHi-1, a.w-1)
			if x1 < x0 || y1 < y0 {
				continue
			}
			out.vals[y*a.w+x] = sat[(y1+1)*w1+(x1+1)] - sat[y0*w1+(x1+1)] -
				sat[(y1+1)*w1+x0] + sat[y0*w1+x0]
		}
	}
	return out
}

// WindowCount returns the clamped population of the window per cell.
func (a *Dense) WindowCount(spec WindowSpec) *Dense {
	out := NewWithOrigin(a.x0, a.y0, a.w, a.h)
	for y := 0; y < a.h; y++ {
		ny := min(y+spec.YHi-1, a.h-1) - max(y+spec.YLo, 0) + 1
		if ny < 0 {
			ny = 0
		}
		for x := 0; x < a.w; x++ {
			nx := min(x+spec.XHi-1, a.w-1) - max(x+spec.XLo, 0) + 1
			if nx < 0 {
				nx = 0
			}
			out.vals[y*a.w+x] = float64(nx * ny)
		}
	}
	return out
}

// WindowAvg is WindowSum / WindowCount.
func (a *Dense) WindowAvg(spec WindowSpec) *Dense {
	sum := a.WindowSum(spec)
	cnt := a.WindowCount(spec)
	for i := range sum.vals {
		if cnt.vals[i] > 0 {
			sum.vals[i] /= cnt.vals[i]
		}
	}
	return sum
}

// WindowMin computes the windowed minimum (naive scan; windows in the
// service are 3×3, so the constant factor is small).
func (a *Dense) WindowMin(spec WindowSpec) *Dense {
	return a.windowExtreme(spec, func(a, b float64) bool { return a < b })
}

// WindowMax computes the windowed maximum.
func (a *Dense) WindowMax(spec WindowSpec) *Dense {
	return a.windowExtreme(spec, func(a, b float64) bool { return a > b })
}

func (a *Dense) windowExtreme(spec WindowSpec, better func(a, b float64) bool) *Dense {
	out := NewWithOrigin(a.x0, a.y0, a.w, a.h)
	for y := 0; y < a.h; y++ {
		for x := 0; x < a.w; x++ {
			first := true
			var best float64
			for dy := spec.YLo; dy < spec.YHi; dy++ {
				yy := y + dy
				if yy < 0 || yy >= a.h {
					continue
				}
				for dx := spec.XLo; dx < spec.XHi; dx++ {
					xx := x + dx
					if xx < 0 || xx >= a.w {
						continue
					}
					v := a.vals[yy*a.w+xx]
					if first || better(v, best) {
						best = v
						first = false
					}
				}
			}
			out.vals[y*a.w+x] = best
		}
	}
	return out
}
