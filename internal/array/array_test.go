package array

import (
	"bytes"
	"math"
	"math/rand"
	"testing"
)

func TestNewAndGetSet(t *testing.T) {
	a := New(4, 3)
	if a.Width() != 4 || a.Height() != 3 || a.Len() != 12 {
		t.Fatalf("dims = %dx%d", a.Width(), a.Height())
	}
	a.Set(2, 1, 7.5)
	if got := a.Get(2, 1); got != 7.5 {
		t.Fatalf("Get = %g", got)
	}
	if got := a.Get(0, 0); got != 0 {
		t.Fatalf("zero cell = %g", got)
	}
}

func TestOutOfRangePanics(t *testing.T) {
	a := New(2, 2)
	for _, f := range []func(){
		func() { a.Get(2, 0) },
		func() { a.Get(-1, 0) },
		func() { a.Set(0, 2, 1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestFromValues(t *testing.T) {
	a, err := FromValues(2, 2, []float64{1, 2, 3, 4})
	if err != nil {
		t.Fatal(err)
	}
	if a.Get(0, 0) != 1 || a.Get(1, 0) != 2 || a.Get(0, 1) != 3 || a.Get(1, 1) != 4 {
		t.Fatal("row-major layout broken")
	}
	if _, err := FromValues(2, 2, []float64{1}); err == nil {
		t.Fatal("length mismatch should error")
	}
}

func TestSliceKeepsAbsoluteCoordinates(t *testing.T) {
	a := New(10, 10)
	for y := 0; y < 10; y++ {
		for x := 0; x < 10; x++ {
			a.Set(x, y, float64(y*10+x))
		}
	}
	s := a.Slice(3, 7, 2, 5)
	if s.Width() != 4 || s.Height() != 3 {
		t.Fatalf("slice dims = %dx%d", s.Width(), s.Height())
	}
	x0, y0 := s.Origin()
	if x0 != 3 || y0 != 2 {
		t.Fatalf("origin = (%d,%d)", x0, y0)
	}
	if got := s.Get(3, 2); got != 23 {
		t.Fatalf("s.Get(3,2) = %g, want 23", got)
	}
	if got := s.Get(6, 4); got != 46 {
		t.Fatalf("s.Get(6,4) = %g, want 46", got)
	}
	// Slicing a slice composes.
	s2 := s.Slice(4, 6, 3, 5)
	if got := s2.Get(5, 3); got != 35 {
		t.Fatalf("s2.Get(5,3) = %g", got)
	}
	// Degenerate slice.
	empty := a.Slice(8, 3, 0, 10)
	if empty.Len() != 0 {
		t.Fatal("inverted slice should be empty")
	}
	// Clamped slice.
	c := a.Slice(-5, 100, -5, 100)
	if c.Width() != 10 || c.Height() != 10 {
		t.Fatalf("clamped = %dx%d", c.Width(), c.Height())
	}
}

func TestValidityMask(t *testing.T) {
	a := New(3, 3)
	if !a.Valid(1, 1) {
		t.Fatal("fresh cells should be valid")
	}
	a.Invalidate(1, 1)
	if a.Valid(1, 1) {
		t.Fatal("invalidated cell still valid")
	}
	a.Set(1, 1, 5)
	if !a.Valid(1, 1) {
		t.Fatal("Set should revalidate")
	}
	if a.Valid(99, 99) {
		t.Fatal("out-of-range should be invalid")
	}
	s := a.Summary()
	if s.Count != 9 {
		t.Fatalf("count = %d", s.Count)
	}
	a.Invalidate(0, 0)
	if got := a.Summary().Count; got != 8 {
		t.Fatalf("count after invalidate = %d", got)
	}
}

func TestMapAndZip(t *testing.T) {
	a, _ := FromValues(2, 2, []float64{1, 2, 3, 4})
	b := a.Map(func(v float64) float64 { return v * 10 })
	if b.Get(1, 1) != 40 {
		t.Fatalf("Map = %g", b.Get(1, 1))
	}
	if a.Get(1, 1) != 4 {
		t.Fatal("Map must not mutate source")
	}
	z, err := Zip(a, b, func(x, y float64) float64 { return y - x })
	if err != nil {
		t.Fatal(err)
	}
	if z.Get(0, 1) != 27 {
		t.Fatalf("Zip = %g", z.Get(0, 1))
	}
	c := New(3, 2)
	if _, err := Zip(a, c, func(x, y float64) float64 { return 0 }); err == nil {
		t.Fatal("shape mismatch should error")
	}
}

func TestSummary(t *testing.T) {
	a, _ := FromValues(2, 2, []float64{1, 2, 3, 4})
	s := a.Summary()
	if s.Min != 1 || s.Max != 4 || math.Abs(s.Mean-2.5) > 1e-12 || s.Count != 4 {
		t.Fatalf("summary = %+v", s)
	}
	empty := New(0, 0)
	if es := empty.Summary(); es.Count != 0 || es.Min != 0 {
		t.Fatalf("empty summary = %+v", es)
	}
}

func TestWindowMeanMatchesNaive(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	a := New(37, 23)
	for i := range a.Values() {
		a.Values()[i] = r.Float64() * 100
	}
	for _, radius := range []int{1, 2, 3} {
		fast := a.WindowMean(radius)
		naive := a.WindowMeanNaive(radius)
		for i := range fast.Values() {
			if math.Abs(fast.Values()[i]-naive.Values()[i]) > 1e-9 {
				t.Fatalf("radius %d cell %d: fast %g vs naive %g",
					radius, i, fast.Values()[i], naive.Values()[i])
			}
		}
	}
}

func TestWindowMeanConstant(t *testing.T) {
	a := New(10, 10)
	a.Fill(5)
	m := a.WindowMean(1)
	for _, v := range m.Values() {
		if math.Abs(v-5) > 1e-12 {
			t.Fatalf("mean of constant field = %g", v)
		}
	}
}

func TestWindowStdDev(t *testing.T) {
	// Constant field: zero deviation everywhere.
	a := New(8, 8)
	a.Fill(300)
	sd := a.WindowStdDev(1)
	for _, v := range sd.Values() {
		if v > 1e-9 {
			t.Fatalf("stddev of constant = %g", v)
		}
	}
	// A single hot pixel produces positive deviation in its neighbourhood.
	a.Set(4, 4, 400)
	sd = a.WindowStdDev(1)
	if sd.Get(4, 4) < 10 {
		t.Fatalf("stddev at hot pixel = %g", sd.Get(4, 4))
	}
	if sd.Get(0, 0) > 1e-9 {
		t.Fatalf("stddev far away = %g", sd.Get(0, 0))
	}
	// Hand-checked 3x3 window: mean over the 9 cells around (4,4) is
	// (8*300+400)/9; stddev = sqrt(mean(v^2)-mean^2).
	mean := (8*300.0 + 400) / 9
	meanSq := (8*300.0*300 + 400*400) / 9
	want := math.Sqrt(meanSq - mean*mean)
	if got := sd.Get(4, 4); math.Abs(got-want) > 1e-9 {
		t.Fatalf("stddev = %g, want %g", got, want)
	}
}

func TestResampleIdentity(t *testing.T) {
	a := New(10, 10)
	for y := 0; y < 10; y++ {
		for x := 0; x < 10; x++ {
			a.Set(x, y, float64(x+y))
		}
	}
	out := a.Resample(10, 10, func(dx, dy int) (float64, float64) {
		return float64(dx), float64(dy)
	})
	for y := 0; y < 9; y++ {
		for x := 0; x < 9; x++ {
			if math.Abs(out.Get(x, y)-a.Get(x, y)) > 1e-9 {
				t.Fatalf("identity resample changed (%d,%d)", x, y)
			}
		}
	}
	// Border cells mapping outside become invalid.
	if out.Valid(9, 9) {
		t.Fatal("edge extrapolation should be invalid")
	}
}

func TestResampleShift(t *testing.T) {
	a := New(10, 10)
	for y := 0; y < 10; y++ {
		for x := 0; x < 10; x++ {
			a.Set(x, y, float64(x))
		}
	}
	// Shift by half a pixel: bilinear interpolation gives x+0.5.
	out := a.Resample(10, 10, func(dx, dy int) (float64, float64) {
		return float64(dx) + 0.5, float64(dy)
	})
	if got := out.Get(3, 5); math.Abs(got-3.5) > 1e-9 {
		t.Fatalf("shifted value = %g, want 3.5", got)
	}
}

func TestSerializationRoundTrip(t *testing.T) {
	a := NewWithOrigin(5, 7, 13, 9)
	r := rand.New(rand.NewSource(9))
	for i := range a.Values() {
		a.Values()[i] = r.NormFloat64()
	}
	a.Invalidate(6, 8)
	var buf bytes.Buffer
	if _, err := a.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadFrom(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Width() != 13 || back.Height() != 9 {
		t.Fatalf("dims = %dx%d", back.Width(), back.Height())
	}
	if x0, y0 := back.Origin(); x0 != 5 || y0 != 7 {
		t.Fatalf("origin = (%d,%d)", x0, y0)
	}
	for i := range a.Values() {
		if a.Values()[i] != back.Values()[i] {
			t.Fatalf("value %d drifted", i)
		}
	}
	if back.Valid(6, 8) {
		t.Fatal("validity mask lost")
	}
	if !back.Valid(5, 7) {
		t.Fatal("valid cell became invalid")
	}
}

func TestReadFromRejectsGarbage(t *testing.T) {
	if _, err := ReadFrom(bytes.NewReader([]byte{1, 2, 3, 4, 5, 6, 7, 8})); err == nil {
		t.Fatal("garbage should not parse")
	}
	if _, err := ReadFrom(bytes.NewReader(nil)); err == nil {
		t.Fatal("empty input should error")
	}
}

func TestCloneIndependence(t *testing.T) {
	a := New(2, 2)
	a.Set(0, 0, 1)
	b := a.Clone()
	b.Set(0, 0, 99)
	if a.Get(0, 0) != 1 {
		t.Fatal("clone shares storage")
	}
}
