package mapgen

import (
	"strings"
	"testing"

	"repro/internal/geom"
)

func testMap() *Map {
	m := New(geom.Envelope{MinX: 20, MinY: 35, MaxX: 26, MaxY: 40}, "Test Map")
	m.AddLayer(Layer{
		Name: "Areas", Stroke: "#333", Fill: "#cde",
		Geoms: []geom.Geometry{geom.NewSquare(22, 38, 1)},
	})
	m.AddLayer(Layer{
		Name: "Points", Stroke: "#900",
		Geoms:  []geom.Geometry{geom.Point{X: 23, Y: 37}},
		Labels: []string{"Athens & <co>"},
	})
	m.AddLayer(Layer{
		Name: "Lines", Stroke: "#060", Width: 2,
		Geoms: []geom.Geometry{geom.LineString{{X: 21, Y: 36}, {X: 24, Y: 39}}},
	})
	return m
}

func TestSVGStructure(t *testing.T) {
	svg := testMap().SVG(600)
	for _, want := range []string{
		"<svg", "</svg>", "<path", "<circle", "<polyline",
		"Test Map", "Athens &amp; &lt;co&gt;",
		`id="areas"`, `id="points"`, `id="lines"`,
	} {
		if !strings.Contains(svg, want) {
			t.Fatalf("SVG missing %q", want)
		}
	}
	// Default width applies when non-positive.
	if !strings.Contains(New(geom.Envelope{MinX: 0, MinY: 0, MaxX: 1, MaxY: 1}, "").SVG(0), `width="800"`) {
		t.Fatal("default width not applied")
	}
}

func TestGeoJSONStructure(t *testing.T) {
	gj := testMap().GeoJSON()
	for _, want := range []string{
		`"type":"FeatureCollection"`, `"type":"Polygon"`,
		`"type":"Point"`, `"type":"LineString"`, `"layer":"Areas"`,
	} {
		if !strings.Contains(gj, want) {
			t.Fatalf("GeoJSON missing %q", want)
		}
	}
}

func TestGeoJSONAllGeometryKinds(t *testing.T) {
	m := New(geom.Envelope{MinX: 0, MinY: 0, MaxX: 10, MaxY: 10}, "")
	m.AddLayer(Layer{Name: "all", Geoms: []geom.Geometry{
		geom.MultiPoint{{X: 1, Y: 1}, {X: 2, Y: 2}},
		geom.MultiLineString{{{X: 0, Y: 0}, {X: 1, Y: 1}}},
		geom.MultiPolygon{geom.NewSquare(5, 5, 1)},
		geom.Collection{geom.Point{X: 3, Y: 3}},
	}})
	gj := m.GeoJSON()
	for _, want := range []string{"MultiPoint", "MultiLineString", "MultiPolygon", "GeometryCollection"} {
		if !strings.Contains(gj, want) {
			t.Fatalf("GeoJSON missing %q", want)
		}
	}
}

func TestSortLayersBottomUp(t *testing.T) {
	m := New(geom.Envelope{MinX: 0, MinY: 0, MaxX: 10, MaxY: 10}, "")
	m.AddLayer(Layer{Name: "pts", Geoms: []geom.Geometry{geom.Point{X: 1, Y: 1}}})
	m.AddLayer(Layer{Name: "lines", Geoms: []geom.Geometry{geom.LineString{{X: 0, Y: 0}, {X: 1, Y: 1}}}})
	m.AddLayer(Layer{Name: "polys", Geoms: []geom.Geometry{geom.NewSquare(5, 5, 2)}})
	m.SortLayersBottomUp()
	if m.Layers[0].Name != "polys" || m.Layers[2].Name != "pts" {
		t.Fatalf("layer order: %s, %s, %s", m.Layers[0].Name, m.Layers[1].Name, m.Layers[2].Name)
	}
}

func TestPolygonWithHoleRendersEvenOdd(t *testing.T) {
	donut := geom.Polygon{
		Shell: geom.Ring{{X: 0, Y: 0}, {X: 4, Y: 0}, {X: 4, Y: 4}, {X: 0, Y: 4}, {X: 0, Y: 0}},
		Holes: []geom.Ring{{{X: 1, Y: 1}, {X: 1, Y: 2}, {X: 2, Y: 2}, {X: 2, Y: 1}, {X: 1, Y: 1}}},
	}
	m := New(geom.Envelope{MinX: -1, MinY: -1, MaxX: 5, MaxY: 5}, "")
	m.AddLayer(Layer{Name: "donut", Fill: "#abc", Geoms: []geom.Geometry{donut}})
	svg := m.SVG(100)
	if !strings.Contains(svg, `fill-rule="evenodd"`) {
		t.Fatal("holes need even-odd fill rule")
	}
	// Two subpaths (shell + hole) in one path element.
	if strings.Count(svg, "M") < 2 {
		t.Fatal("hole subpath missing")
	}
}
