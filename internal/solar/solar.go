// Package solar computes the solar zenith angle used by the fire
// classification algorithm to select day/night thresholds: the paper
// defines day as zenith < 70°, night as zenith > 90°, and linearly
// interpolates thresholds in between. The implementation uses the
// standard low-precision solar position algorithm (declination from day
// of year, hour angle from the equation of time), accurate to a fraction
// of a degree — far below the 20° width of the twilight band.
package solar

import (
	"math"
	"time"
)

const deg = math.Pi / 180

// ZenithAngle returns the solar zenith angle in degrees at the given UTC
// time and geographic position (longitude east, latitude north, degrees).
func ZenithAngle(t time.Time, lon, lat float64) float64 {
	t = t.UTC()
	doy := float64(t.YearDay())
	// Fractional year (radians).
	hours := float64(t.Hour()) + float64(t.Minute())/60 + float64(t.Second())/3600
	gamma := 2 * math.Pi / 365 * (doy - 1 + (hours-12)/24)

	// Equation of time (minutes) and declination (radians) — Spencer 1971.
	eqTime := 229.18 * (0.000075 + 0.001868*math.Cos(gamma) - 0.032077*math.Sin(gamma) -
		0.014615*math.Cos(2*gamma) - 0.040849*math.Sin(2*gamma))
	decl := 0.006918 - 0.399912*math.Cos(gamma) + 0.070257*math.Sin(gamma) -
		0.006758*math.Cos(2*gamma) + 0.000907*math.Sin(2*gamma) -
		0.002697*math.Cos(3*gamma) + 0.00148*math.Sin(3*gamma)

	// True solar time (minutes).
	timeOffset := eqTime + 4*lon
	tst := hours*60 + timeOffset
	// Hour angle (degrees): 0 at solar noon.
	ha := tst/4 - 180

	cosZen := math.Sin(lat*deg)*math.Sin(decl) +
		math.Cos(lat*deg)*math.Cos(decl)*math.Cos(ha*deg)
	cosZen = math.Max(-1, math.Min(1, cosZen))
	return math.Acos(cosZen) / deg
}

// Regime classifies illumination per the paper's thresholds.
type Regime int

// Illumination regimes.
const (
	Day Regime = iota
	Twilight
	Night
)

// Day/night zenith bounds from the paper: "Day is defined with a local
// solar zenith angle lower than 70° while night with a solar zenith angle
// of higher than 90°".
const (
	DayMaxZenith   = 70.0
	NightMinZenith = 90.0
)

// Classify maps a zenith angle to its regime.
func Classify(zenith float64) Regime {
	switch {
	case zenith < DayMaxZenith:
		return Day
	case zenith > NightMinZenith:
		return Night
	default:
		return Twilight
	}
}

// TwilightWeight returns the day-weight in [0, 1] for threshold
// interpolation: 1 in full day, 0 at night, linear in between.
func TwilightWeight(zenith float64) float64 {
	switch {
	case zenith <= DayMaxZenith:
		return 1
	case zenith >= NightMinZenith:
		return 0
	default:
		return (NightMinZenith - zenith) / (NightMinZenith - DayMaxZenith)
	}
}
