package solar

import (
	"testing"
	"time"
)

func TestZenithDiurnalCycle(t *testing.T) {
	lon, lat := 23.7, 38.0 // Athens
	day := time.Date(2007, 8, 24, 0, 0, 0, 0, time.UTC)
	minZen, maxZen := 180.0, 0.0
	var minAt time.Time
	for h := 0; h < 24; h++ {
		z := ZenithAngle(day.Add(time.Duration(h)*time.Hour), lon, lat)
		if z < minZen {
			minZen, minAt = z, day.Add(time.Duration(h)*time.Hour)
		}
		if z > maxZen {
			maxZen = z
		}
	}
	// August noon at 38N: zenith ~27 degrees; midnight far below horizon.
	if minZen > 35 {
		t.Fatalf("noon zenith = %g", minZen)
	}
	if maxZen < 100 {
		t.Fatalf("midnight zenith = %g", maxZen)
	}
	// Solar noon near 10 UTC (23.7E is UTC+1.6 solar).
	if h := minAt.Hour(); h < 9 || h > 11 {
		t.Fatalf("solar noon at %d UTC", h)
	}
}

func TestRegimesAndWeights(t *testing.T) {
	cases := []struct {
		zen    float64
		regime Regime
		weight float64
	}{
		{30, Day, 1},
		{69.9, Day, 1},
		{80, Twilight, 0.5},
		{90.1, Night, 0},
		{120, Night, 0},
	}
	for _, c := range cases {
		if got := Classify(c.zen); got != c.regime {
			t.Errorf("Classify(%g) = %v, want %v", c.zen, got, c.regime)
		}
		if got := TwilightWeight(c.zen); got < c.weight-0.01 || got > c.weight+0.01 {
			t.Errorf("TwilightWeight(%g) = %g, want %g", c.zen, got, c.weight)
		}
	}
}

func TestWinterSummerContrast(t *testing.T) {
	lon, lat := 23.7, 38.0
	summer := ZenithAngle(time.Date(2007, 6, 21, 10, 0, 0, 0, time.UTC), lon, lat)
	winter := ZenithAngle(time.Date(2007, 12, 21, 10, 0, 0, 0, time.UTC), lon, lat)
	if winter-summer < 30 {
		t.Fatalf("seasonal contrast too small: summer %g, winter %g", summer, winter)
	}
}
