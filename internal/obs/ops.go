package obs

import (
	"hash/fnv"
	"net/http"
	"net/http/pprof"
	"strconv"
)

// NewOpsMux assembles the operational sidecar surface served behind a
// binary's -ops-addr flag: the /metrics scrape target, the
// /debug/queries slow-query log, and net/http/pprof under
// /debug/pprof/. It is deliberately a separate mux (and, in the
// binaries, a separate listener) from the query endpoint, so profiling
// and scraping stay reachable when the serving port is saturated — and
// so pprof is never exposed on the public port. reg and qlog may be
// nil; their routes are simply absent.
func NewOpsMux(reg *Registry, qlog *QueryLog) *http.ServeMux {
	mux := http.NewServeMux()
	if reg != nil {
		mux.Handle("/metrics", reg)
	}
	if qlog != nil {
		mux.Handle("/debug/queries", qlog)
	}
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// Digest returns a short stable FNV-1a digest of s — the slow-query
// log's plan fingerprint: two queries with the same digest chose the
// same plan shape.
func Digest(s string) string {
	h := fnv.New64a()
	h.Write([]byte(s))
	return strconv.FormatUint(h.Sum64(), 16)
}
