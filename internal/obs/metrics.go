// Package obs is the engine's observability core: a hand-rolled,
// stdlib-only metrics registry speaking the Prometheus text exposition
// format, per-request trace IDs, and a ring-buffer slow-query log. It
// deliberately depends on nothing but the standard library (the
// reprolint precedent): the serving layers thread its instruments
// through their hot paths, so every instrument is a bare atomic —
// recording a counter increment or histogram observation takes no lock
// and allocates nothing.
//
// The registry separates two kinds of metric:
//
//   - live instruments (Counter, Gauge, Histogram and their labelled
//     Vec families), updated by the request/pipeline paths as work
//     happens;
//   - snapshot collectors (GaugeFunc, CollectFunc), called at scrape
//     time to render state another subsystem already maintains
//     (cache stats, admission depths, per-shard cardinalities).
//
// Snapshot collectors run on the scrape goroutine and must be cheap
// and lock-light: they may take short-lived internal read locks of the
// subsystem they snapshot, but must never acquire a store write lock
// or hold a cursor open (the lockdiscipline/cursorclose analyzers
// police the store-side callers).
package obs

import (
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing counter.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (n must be non-negative; counters only go up).
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is a value that can go up and down.
type Gauge struct {
	bits atomic.Uint64 // float64 bits
}

// Set replaces the gauge value.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add shifts the gauge by d.
func (g *Gauge) Add(d float64) {
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + d)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the current gauge value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Histogram is a fixed-bucket cumulative histogram. Buckets are upper
// bounds in ascending order; an implicit +Inf bucket is always present.
// Observations are lock-free: one atomic add on the matching bucket,
// one on the count, and a CAS loop on the float sum.
type Histogram struct {
	bounds  []float64
	buckets []atomic.Uint64 // len(bounds)+1, last = +Inf
	count   atomic.Uint64
	sumBits atomic.Uint64
}

// DefBuckets are the default latency buckets, in seconds.
var DefBuckets = []float64{.0001, .00025, .0005, .001, .0025, .005, .01, .025, .05, .1, .25, .5, 1, 2.5, 5}

func newHistogram(bounds []float64) *Histogram {
	if len(bounds) == 0 {
		bounds = DefBuckets
	}
	return &Histogram{bounds: bounds, buckets: make([]atomic.Uint64, len(bounds)+1)}
}

// Observe records one observation.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v)
	h.buckets[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count returns the total number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of all observations.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sumBits.Load()) }

// Sample is one labelled value emitted by a CollectFunc.
type Sample struct {
	LabelValues []string
	Value       float64
}

// metric is one registered exposition block.
type metric struct {
	name   string
	help   string
	typ    string // counter | gauge | histogram
	labels []string

	counter *Counter
	gauge   *Gauge
	hist    *Histogram

	// vec children, keyed by joined label values; guarded by mu.
	mu       sync.RWMutex
	children map[string]*child
	order    []string

	gaugeFn   func() float64
	collectFn func() []Sample
}

type child struct {
	labelValues []string
	counter     *Counter
	gauge       *Gauge
	hist        *Histogram
}

// Registry holds metrics and renders them in registration order.
type Registry struct {
	mu      sync.Mutex
	metrics []*metric
	byName  map[string]*metric
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: make(map[string]*metric)}
}

func (r *Registry) register(m *metric) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.byName[m.name]; dup {
		panic("obs: duplicate metric " + m.name)
	}
	r.byName[m.name] = m
	r.metrics = append(r.metrics, m)
}

// NewCounter registers and returns a counter.
func (r *Registry) NewCounter(name, help string) *Counter {
	c := &Counter{}
	r.register(&metric{name: name, help: help, typ: "counter", counter: c})
	return c
}

// NewGauge registers and returns a gauge.
func (r *Registry) NewGauge(name, help string) *Gauge {
	g := &Gauge{}
	r.register(&metric{name: name, help: help, typ: "gauge", gauge: g})
	return g
}

// NewHistogram registers and returns a histogram with the given bucket
// upper bounds (nil = DefBuckets).
func (r *Registry) NewHistogram(name, help string, buckets []float64) *Histogram {
	h := newHistogram(buckets)
	r.register(&metric{name: name, help: help, typ: "histogram", hist: h})
	return h
}

// NewGaugeFunc registers a gauge whose value is computed at scrape time.
// fn must be cheap and must not acquire store write locks.
func (r *Registry) NewGaugeFunc(name, help string, fn func() float64) {
	r.register(&metric{name: name, help: help, typ: "gauge", gaugeFn: fn})
}

// NewCollectFunc registers a labelled gauge family whose samples are
// computed at scrape time — the hook for snapshot-style sources
// (per-shard cardinalities, cache stats). typ is "gauge" or "counter".
func (r *Registry) NewCollectFunc(name, help, typ string, labels []string, fn func() []Sample) {
	r.register(&metric{name: name, help: help, typ: typ, labels: labels, collectFn: fn})
}

// CounterVec is a family of counters partitioned by label values.
type CounterVec struct{ m *metric }

// NewCounterVec registers and returns a labelled counter family.
func (r *Registry) NewCounterVec(name, help string, labels []string) *CounterVec {
	m := &metric{name: name, help: help, typ: "counter", labels: labels, children: make(map[string]*child)}
	r.register(m)
	return &CounterVec{m: m}
}

// With returns the counter for the given label values, creating it on
// first use. The fast path (existing child) is one RLock'd map read.
func (v *CounterVec) With(labelValues ...string) *Counter {
	return v.m.child(labelValues).counter
}

// HistogramVec is a family of histograms partitioned by label values.
type HistogramVec struct {
	m      *metric
	bounds []float64
}

// NewHistogramVec registers and returns a labelled histogram family.
func (r *Registry) NewHistogramVec(name, help string, labels []string, buckets []float64) *HistogramVec {
	if len(buckets) == 0 {
		buckets = DefBuckets
	}
	m := &metric{name: name, help: help, typ: "histogram", labels: labels, children: make(map[string]*child)}
	r.register(m)
	return &HistogramVec{m: m, bounds: buckets}
}

// With returns the histogram for the given label values, creating it on
// first use.
func (v *HistogramVec) With(labelValues ...string) *Histogram {
	return v.m.child(labelValues, v.bounds...).hist
}

func (m *metric) child(labelValues []string, bounds ...float64) *child {
	if len(labelValues) != len(m.labels) {
		panic(fmt.Sprintf("obs: %s wants %d label values, got %d", m.name, len(m.labels), len(labelValues)))
	}
	key := strings.Join(labelValues, "\x00")
	m.mu.RLock()
	c, ok := m.children[key]
	m.mu.RUnlock()
	if ok {
		return c
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if c, ok = m.children[key]; ok {
		return c
	}
	c = &child{labelValues: append([]string(nil), labelValues...)}
	switch m.typ {
	case "counter":
		c.counter = &Counter{}
	case "gauge":
		c.gauge = &Gauge{}
	case "histogram":
		c.hist = newHistogram(bounds)
	}
	m.children[key] = c
	m.order = append(m.order, key)
	return c
}

// WritePrometheus renders every registered metric in the Prometheus
// text exposition format (version 0.0.4).
func (r *Registry) WritePrometheus(w io.Writer) {
	r.mu.Lock()
	metrics := append([]*metric(nil), r.metrics...)
	r.mu.Unlock()
	var b strings.Builder
	for _, m := range metrics {
		m.write(&b)
	}
	io.WriteString(w, b.String())
}

// ServeHTTP serves the registry as a /metrics scrape target.
func (r *Registry) ServeHTTP(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	r.WritePrometheus(w)
}

func (m *metric) write(b *strings.Builder) {
	fmt.Fprintf(b, "# HELP %s %s\n", m.name, m.help)
	fmt.Fprintf(b, "# TYPE %s %s\n", m.name, m.typ)
	switch {
	case m.counter != nil:
		fmt.Fprintf(b, "%s %s\n", m.name, formatFloat(float64(m.counter.Value())))
	case m.gauge != nil:
		fmt.Fprintf(b, "%s %s\n", m.name, formatFloat(m.gauge.Value()))
	case m.hist != nil:
		writeHistogram(b, m.name, "", m.hist)
	case m.gaugeFn != nil:
		fmt.Fprintf(b, "%s %s\n", m.name, formatFloat(m.gaugeFn()))
	case m.collectFn != nil:
		for _, s := range m.collectFn() {
			fmt.Fprintf(b, "%s%s %s\n", m.name, labelString(m.labels, s.LabelValues), formatFloat(s.Value))
		}
	case m.children != nil:
		m.mu.RLock()
		keys := append([]string(nil), m.order...)
		children := make([]*child, len(keys))
		for i, k := range keys {
			children[i] = m.children[k]
		}
		m.mu.RUnlock()
		for _, c := range children {
			ls := labelString(m.labels, c.labelValues)
			switch {
			case c.counter != nil:
				fmt.Fprintf(b, "%s%s %s\n", m.name, ls, formatFloat(float64(c.counter.Value())))
			case c.gauge != nil:
				fmt.Fprintf(b, "%s%s %s\n", m.name, ls, formatFloat(c.gauge.Value()))
			case c.hist != nil:
				writeHistogram(b, m.name, pairString(m.labels, c.labelValues), c.hist)
			}
		}
	}
}

// writeHistogram renders one histogram's bucket/sum/count series.
// extraPairs is the pre-rendered `k="v",` label prefix (may be empty).
func writeHistogram(b *strings.Builder, name, extraPairs string, h *Histogram) {
	cum := uint64(0)
	for i, bound := range h.bounds {
		cum += h.buckets[i].Load()
		fmt.Fprintf(b, "%s_bucket{%sle=%q} %d\n", name, extraPairs, formatFloat(bound), cum)
	}
	cum += h.buckets[len(h.bounds)].Load()
	fmt.Fprintf(b, "%s_bucket{%sle=\"+Inf\"} %d\n", name, extraPairs, cum)
	if extraPairs == "" {
		fmt.Fprintf(b, "%s_sum %s\n", name, formatFloat(h.Sum()))
		fmt.Fprintf(b, "%s_count %d\n", name, h.Count())
	} else {
		fmt.Fprintf(b, "%s_sum{%s} %s\n", name, strings.TrimSuffix(extraPairs, ","), formatFloat(h.Sum()))
		fmt.Fprintf(b, "%s_count{%s} %d\n", name, strings.TrimSuffix(extraPairs, ","), h.Count())
	}
}

// labelString renders `{k1="v1",k2="v2"}`, or "" with no labels.
func labelString(names, values []string) string {
	if len(names) == 0 {
		return ""
	}
	return "{" + strings.TrimSuffix(pairString(names, values), ",") + "}"
}

// pairString renders `k1="v1",k2="v2",` (trailing comma, for use as a
// prefix ahead of a histogram's le label).
func pairString(names, values []string) string {
	var b strings.Builder
	for i, n := range names {
		v := ""
		if i < len(values) {
			v = values[i]
		}
		b.WriteString(n)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(v))
		b.WriteString(`",`)
	}
	return b.String()
}

// escapeLabel escapes a label value per the exposition format.
func escapeLabel(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	return strings.ReplaceAll(v, `"`, `\"`)
}

// formatFloat renders a sample value the way Prometheus clients do:
// integers without an exponent, everything else in shortest form.
func formatFloat(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return strconv.FormatFloat(v, 'f', -1, 64)
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}
