package obs

import (
	"crypto/rand"
	"encoding/binary"
	"encoding/hex"
	"encoding/json"
	"net/http"
	"sync"
	"sync/atomic"
	"time"
)

// Per-request trace IDs. An inbound X-Request-Id is honoured (so IDs
// propagate through proxies and show up in client logs and the
// slow-query log alike); otherwise a process-unique ID is minted from a
// random process prefix plus an atomic sequence — no locking, no
// clock reads on the request path.

// RequestIDHeader is the header trace IDs travel in.
const RequestIDHeader = "X-Request-Id"

var (
	idPrefix [8]byte
	idOnce   sync.Once
	idSeq    atomic.Uint64
)

// NewRequestID mints a process-unique trace ID.
func NewRequestID() string {
	idOnce.Do(func() {
		if _, err := rand.Read(idPrefix[:]); err != nil {
			binary.BigEndian.PutUint64(idPrefix[:], uint64(time.Now().UnixNano()))
		}
	})
	var buf [16]byte
	copy(buf[:8], idPrefix[:])
	binary.BigEndian.PutUint64(buf[8:], idSeq.Add(1))
	return hex.EncodeToString(buf[:])
}

// RequestID resolves the trace ID for an inbound request: the caller's
// X-Request-Id if it sent one (truncated to a sane length), a fresh ID
// otherwise.
func RequestID(r *http.Request) string {
	if id := r.Header.Get(RequestIDHeader); id != "" {
		if len(id) > 128 {
			id = id[:128]
		}
		return id
	}
	return NewRequestID()
}

// QueryRecord is one slow-query log entry.
type QueryRecord struct {
	TraceID    string        `json:"trace_id"`
	Query      string        `json:"query"`
	PlanDigest string        `json:"plan_digest,omitempty"`
	Outcome    string        `json:"outcome"` // hit | miss | error | rejected
	Rows       int           `json:"rows"`
	ElapsedUs  int64         `json:"elapsed_us"`
	At         time.Time     `json:"at"`
	Elapsed    time.Duration `json:"-"`
}

// QueryLog is a fixed-size ring of the most recent recorded queries,
// served as JSON at /debug/queries. Recording is a short mutex'd copy
// into the ring — no allocation beyond the record itself, no store
// locks.
type QueryLog struct {
	mu   sync.Mutex
	ring []QueryRecord
	next int
	full bool
}

// NewQueryLog returns a ring holding the n most recent records.
func NewQueryLog(n int) *QueryLog {
	if n < 1 {
		n = 1
	}
	return &QueryLog{ring: make([]QueryRecord, n)}
}

// Record appends one entry, evicting the oldest once the ring is full.
func (l *QueryLog) Record(rec QueryRecord) {
	rec.ElapsedUs = rec.Elapsed.Microseconds()
	if rec.At.IsZero() {
		rec.At = time.Now()
	}
	const maxQuery = 2048
	if len(rec.Query) > maxQuery {
		rec.Query = rec.Query[:maxQuery]
	}
	l.mu.Lock()
	l.ring[l.next] = rec
	l.next++
	if l.next == len(l.ring) {
		l.next, l.full = 0, true
	}
	l.mu.Unlock()
}

// Snapshot returns the recorded entries, newest first.
func (l *QueryLog) Snapshot() []QueryRecord {
	l.mu.Lock()
	defer l.mu.Unlock()
	n := l.next
	if l.full {
		n = len(l.ring)
	}
	out := make([]QueryRecord, 0, n)
	for i := 1; i <= n; i++ {
		out = append(out, l.ring[(l.next-i+len(l.ring))%len(l.ring)])
	}
	return out
}

// ServeHTTP serves the log as JSON (newest first).
func (l *QueryLog) ServeHTTP(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(l.Snapshot())
}
