package obs

import (
	"net/http"
	"net/http/httptest"
	"regexp"
	"strings"
	"testing"
	"time"
)

func TestRegistryExposition(t *testing.T) {
	reg := NewRegistry()
	c := reg.NewCounter("test_events_total", "Events.")
	c.Inc()
	c.Add(2)
	g := reg.NewGauge("test_depth", "Depth.")
	g.Set(3)
	g.Add(-1)
	h := reg.NewHistogram("test_latency_seconds", "Latency.", []float64{0.1, 1})
	h.Observe(0.05)
	h.Observe(0.5)
	h.Observe(5)
	cv := reg.NewCounterVec("test_requests_total", "Requests.", []string{"path"})
	cv.With("/sparql").Inc()
	cv.With("/stats").Add(2)
	hv := reg.NewHistogramVec("test_query_seconds", "Query latency.", []string{"outcome"}, []float64{0.5})
	hv.With("hit").Observe(0.1)
	reg.NewGaugeFunc("test_live", "Live.", func() float64 { return 7 })
	reg.NewCollectFunc("test_shard_triples", "Per shard.", "gauge", []string{"shard"}, func() []Sample {
		return []Sample{{LabelValues: []string{"s0"}, Value: 11}, {LabelValues: []string{`we"ird\`}, Value: 1}}
	})

	rec := httptest.NewRecorder()
	reg.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/metrics", nil))
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Fatalf("content type %q", ct)
	}
	body := rec.Body.String()

	for _, want := range []string{
		"# HELP test_events_total Events.",
		"# TYPE test_events_total counter",
		"test_events_total 3",
		"test_depth 2",
		`test_latency_seconds_bucket{le="0.1"} 1`,
		`test_latency_seconds_bucket{le="1"} 2`,
		`test_latency_seconds_bucket{le="+Inf"} 3`,
		"test_latency_seconds_count 3",
		`test_requests_total{path="/sparql"} 1`,
		`test_requests_total{path="/stats"} 2`,
		`test_query_seconds_bucket{outcome="hit",le="0.5"} 1`,
		`test_query_seconds_count{outcome="hit"} 1`,
		"test_live 7",
		`test_shard_triples{shard="s0"} 11`,
		`test_shard_triples{shard="we\"ird\\"} 1`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("exposition lacks %q\n%s", want, body)
		}
	}

	// Every non-comment line must be a well-formed sample.
	sample := regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^}]*\})? -?[0-9+.eEInf-]+$`)
	for _, line := range strings.Split(strings.TrimSpace(body), "\n") {
		if strings.HasPrefix(line, "#") {
			continue
		}
		if !sample.MatchString(line) {
			t.Errorf("malformed sample line %q", line)
		}
	}
}

func TestRegistryDuplicatePanics(t *testing.T) {
	reg := NewRegistry()
	reg.NewCounter("dup", "x")
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate registration did not panic")
		}
	}()
	reg.NewGauge("dup", "y")
}

func TestHistogramSum(t *testing.T) {
	h := newHistogram([]float64{1})
	h.Observe(0.25)
	h.Observe(0.75)
	if got := h.Sum(); got != 1.0 {
		t.Fatalf("sum = %v", got)
	}
	if got := h.Count(); got != 2 {
		t.Fatalf("count = %d", got)
	}
}

func TestQueryLogRing(t *testing.T) {
	l := NewQueryLog(3)
	for i := 0; i < 5; i++ {
		l.Record(QueryRecord{Query: strings.Repeat("q", i+1), Outcome: "miss", Elapsed: time.Duration(i) * time.Millisecond})
	}
	snap := l.Snapshot()
	if len(snap) != 3 {
		t.Fatalf("ring kept %d, want 3", len(snap))
	}
	// Newest first: the 5th record (5 q's) leads.
	if snap[0].Query != "qqqqq" || snap[2].Query != "qqq" {
		t.Fatalf("order wrong: %q ... %q", snap[0].Query, snap[2].Query)
	}
	if snap[0].ElapsedUs != 4000 {
		t.Fatalf("elapsed_us = %d", snap[0].ElapsedUs)
	}
	if snap[0].At.IsZero() {
		t.Fatal("At not stamped")
	}

	rec := httptest.NewRecorder()
	l.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/debug/queries", nil))
	if !strings.Contains(rec.Body.String(), `"outcome":"miss"`) {
		t.Fatalf("json lacks outcome: %s", rec.Body.String())
	}
}

func TestQueryLogTruncatesLongQueries(t *testing.T) {
	l := NewQueryLog(1)
	l.Record(QueryRecord{Query: strings.Repeat("x", 5000)})
	if got := len(l.Snapshot()[0].Query); got != 2048 {
		t.Fatalf("kept %d bytes, want 2048", got)
	}
}

func TestRequestID(t *testing.T) {
	a, b := NewRequestID(), NewRequestID()
	if a == b || a == "" {
		t.Fatalf("ids not unique: %q %q", a, b)
	}
	r := httptest.NewRequest(http.MethodGet, "/", nil)
	r.Header.Set(RequestIDHeader, "inbound-id")
	if got := RequestID(r); got != "inbound-id" {
		t.Fatalf("inbound id not honoured: %q", got)
	}
	r.Header.Set(RequestIDHeader, strings.Repeat("z", 300))
	if got := RequestID(r); len(got) != 128 {
		t.Fatalf("long inbound id not truncated: %d", len(got))
	}
}

func TestOpsMux(t *testing.T) {
	reg := NewRegistry()
	reg.NewCounter("x_total", "x")
	mux := NewOpsMux(reg, NewQueryLog(4))
	srv := httptest.NewServer(mux)
	defer srv.Close()
	for _, path := range []string{"/metrics", "/debug/queries", "/debug/pprof/cmdline"} {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s -> %d", path, resp.StatusCode)
		}
	}
}

func TestDigestStable(t *testing.T) {
	if Digest("plan") != Digest("plan") {
		t.Fatal("digest not stable")
	}
	if Digest("plan a") == Digest("plan b") {
		t.Fatal("distinct inputs collided (FNV-1a would not)")
	}
}
