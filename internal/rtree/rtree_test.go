package rtree

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"repro/internal/geom"
)

func box(x, y, w, h float64) geom.Envelope {
	return geom.Envelope{MinX: x, MinY: y, MaxX: x + w, MaxY: y + h}
}

func TestEmptyTree(t *testing.T) {
	tr := New()
	if tr.Len() != 0 {
		t.Fatal("new tree not empty")
	}
	if !tr.Bounds().IsEmpty() {
		t.Fatal("empty tree bounds not empty")
	}
	got := tr.SearchSlice(box(0, 0, 100, 100))
	if len(got) != 0 {
		t.Fatal("search on empty tree returned items")
	}
	if tr.Delete(box(0, 0, 1, 1), "x") {
		t.Fatal("delete on empty tree succeeded")
	}
}

func TestInsertAndSearch(t *testing.T) {
	tr := New()
	for i := 0; i < 100; i++ {
		x := float64(i % 10)
		y := float64(i / 10)
		tr.Insert(box(x, y, 0.5, 0.5), i)
	}
	if tr.Len() != 100 {
		t.Fatalf("len = %d", tr.Len())
	}
	// Window covering the 2x2 block at (0,0)..(2,2).
	got := tr.SearchSlice(box(-0.1, -0.1, 1.7, 1.7))
	want := map[int]bool{0: true, 1: true, 10: true, 11: true}
	if len(got) != len(want) {
		t.Fatalf("got %d items: %v", len(got), got)
	}
	for _, g := range got {
		if !want[g.(int)] {
			t.Fatalf("unexpected item %v", g)
		}
	}
}

func TestSearchEarlyStop(t *testing.T) {
	tr := New()
	for i := 0; i < 50; i++ {
		tr.Insert(box(float64(i), 0, 0.5, 0.5), i)
	}
	count := 0
	tr.Search(box(-1, -1, 100, 100), func(Item) bool {
		count++
		return count < 5
	})
	if count != 5 {
		t.Fatalf("early stop visited %d items", count)
	}
}

func TestDelete(t *testing.T) {
	tr := New()
	boxes := make([]geom.Envelope, 60)
	for i := range boxes {
		boxes[i] = box(float64(i%8), float64(i/8), 0.9, 0.9)
		tr.Insert(boxes[i], i)
	}
	for i := 0; i < 30; i++ {
		if !tr.Delete(boxes[i], i) {
			t.Fatalf("delete %d failed", i)
		}
	}
	if tr.Len() != 30 {
		t.Fatalf("len after deletes = %d", tr.Len())
	}
	// Remaining items must all be findable.
	for i := 30; i < 60; i++ {
		found := false
		tr.Search(boxes[i], func(it Item) bool {
			if it.Data == i {
				found = true
				return false
			}
			return true
		})
		if !found {
			t.Fatalf("item %d lost after deletions", i)
		}
	}
	// Deleting a missing item fails cleanly.
	if tr.Delete(boxes[0], 0) {
		t.Fatal("second delete of same item succeeded")
	}
}

func TestDeleteAll(t *testing.T) {
	tr := New()
	for i := 0; i < 40; i++ {
		tr.Insert(box(float64(i), 0, 1, 1), i)
	}
	for i := 0; i < 40; i++ {
		if !tr.Delete(box(float64(i), 0, 1, 1), i) {
			t.Fatalf("delete %d failed", i)
		}
	}
	if tr.Len() != 0 {
		t.Fatalf("len = %d after deleting all", tr.Len())
	}
	if got := tr.SearchSlice(box(-10, -10, 100, 100)); len(got) != 0 {
		t.Fatalf("emptied tree still returns %d items", len(got))
	}
}

func TestBulkLoadMatchesInsert(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	items := make([]Item, 1000)
	for i := range items {
		items[i] = Item{
			Box:  box(r.Float64()*100, r.Float64()*100, r.Float64(), r.Float64()),
			Data: i,
		}
	}
	bulk := BulkLoad(items)
	inc := New()
	for _, it := range items {
		inc.Insert(it.Box, it.Data)
	}
	if bulk.Len() != 1000 || inc.Len() != 1000 {
		t.Fatalf("lens = %d / %d", bulk.Len(), inc.Len())
	}
	for q := 0; q < 50; q++ {
		w := box(r.Float64()*90, r.Float64()*90, 10, 10)
		a := toInts(bulk.SearchSlice(w))
		b := toInts(inc.SearchSlice(w))
		sort.Ints(a)
		sort.Ints(b)
		if fmt.Sprint(a) != fmt.Sprint(b) {
			t.Fatalf("window %v: bulk %v != incremental %v", w, a, b)
		}
	}
}

func toInts(xs []any) []int {
	out := make([]int, len(xs))
	for i, x := range xs {
		out[i] = x.(int)
	}
	return out
}

func TestBulkLoadEmptyAndTiny(t *testing.T) {
	if tr := BulkLoad(nil); tr.Len() != 0 {
		t.Fatal("bulk load of nil should be empty")
	}
	tr := BulkLoad([]Item{{Box: box(1, 1, 1, 1), Data: "a"}})
	if tr.Len() != 1 {
		t.Fatal("bulk load of one item")
	}
	got := tr.SearchSlice(box(0, 0, 3, 3))
	if len(got) != 1 || got[0] != "a" {
		t.Fatalf("got %v", got)
	}
}

func TestNearest(t *testing.T) {
	tr := New()
	for i := 0; i < 10; i++ {
		tr.Insert(box(float64(i*10), 0, 1, 1), i)
	}
	got := toInts(tr.Nearest(geom.Point{X: 0, Y: 0}, 3))
	if len(got) != 3 || got[0] != 0 || got[1] != 1 || got[2] != 2 {
		t.Fatalf("nearest = %v", got)
	}
	// k larger than size.
	all := tr.Nearest(geom.Point{X: 0, Y: 0}, 100)
	if len(all) != 10 {
		t.Fatalf("nearest with big k returned %d", len(all))
	}
	if tr.Nearest(geom.Point{}, 0) != nil {
		t.Fatal("k=0 should return nil")
	}
}

func TestBoundsGrow(t *testing.T) {
	tr := New()
	tr.Insert(box(0, 0, 1, 1), 1)
	tr.Insert(box(50, 50, 1, 1), 2)
	b := tr.Bounds()
	if b.MinX != 0 || b.MaxX != 51 || b.MaxY != 51 {
		t.Fatalf("bounds = %+v", b)
	}
}

func TestHeightGrows(t *testing.T) {
	tr := New()
	for i := 0; i < 2000; i++ {
		tr.Insert(box(float64(i%50), float64(i/50), 0.5, 0.5), i)
	}
	if h := tr.Height(); h < 2 {
		t.Fatalf("height = %d for 2000 items", h)
	}
	// All items findable after many splits.
	got := tr.SearchSlice(box(-1, -1, 100, 100))
	if len(got) != 2000 {
		t.Fatalf("full scan found %d items", len(got))
	}
}

func TestPropertyRandomInsertSearchDelete(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	tr := New()
	type rec struct {
		b geom.Envelope
		i int
	}
	var live []rec
	nextID := 0
	for step := 0; step < 3000; step++ {
		switch {
		case len(live) == 0 || r.Float64() < 0.6:
			b := box(r.Float64()*100, r.Float64()*100, r.Float64()*2, r.Float64()*2)
			tr.Insert(b, nextID)
			live = append(live, rec{b, nextID})
			nextID++
		default:
			k := r.Intn(len(live))
			if !tr.Delete(live[k].b, live[k].i) {
				t.Fatalf("step %d: delete of live item %d failed", step, live[k].i)
			}
			live = append(live[:k], live[k+1:]...)
		}
		if tr.Len() != len(live) {
			t.Fatalf("step %d: len %d != live %d", step, tr.Len(), len(live))
		}
	}
	// Exhaustive verification with random windows against brute force.
	for q := 0; q < 100; q++ {
		w := box(r.Float64()*95, r.Float64()*95, 5, 5)
		var want []int
		for _, rc := range live {
			if rc.b.Intersects(w) {
				want = append(want, rc.i)
			}
		}
		got := toInts(tr.SearchSlice(w))
		sort.Ints(want)
		sort.Ints(got)
		if fmt.Sprint(want) != fmt.Sprint(got) {
			t.Fatalf("window %v: want %v got %v", w, want, got)
		}
	}
}

func TestInsertAllMatchesInsert(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	mk := func(n int) []Item {
		items := make([]Item, n)
		for i := range items {
			items[i] = Item{
				Box:  box(r.Float64()*100, r.Float64()*100, r.Float64(), r.Float64()),
				Data: r.Intn(1 << 30),
			}
		}
		return items
	}
	// Grow a tree through a mix of flush sizes: empty-tree bulk load,
	// rebuild-triggering batches, and small append-path batches.
	batch := New()
	inc := New()
	total := 0
	for _, n := range []int{40, 300, 3, 7, 500, 1} {
		items := mk(n)
		batch.InsertAll(items)
		for _, it := range items {
			inc.Insert(it.Box, it.Data)
		}
		total += n
		if batch.Len() != total || inc.Len() != total {
			t.Fatalf("after +%d: lens = %d / %d, want %d", n, batch.Len(), inc.Len(), total)
		}
	}
	for q := 0; q < 50; q++ {
		w := box(r.Float64()*90, r.Float64()*90, 10, 10)
		a := toInts(batch.SearchSlice(w))
		b := toInts(inc.SearchSlice(w))
		sort.Ints(a)
		sort.Ints(b)
		if fmt.Sprint(a) != fmt.Sprint(b) {
			t.Fatalf("window %v: batch %v != incremental %v", w, a, b)
		}
	}
	// Deletion must keep working across rebuilt trees.
	probe := mk(1)[0]
	batch.InsertAll([]Item{probe})
	if !batch.Delete(probe.Box, probe.Data) {
		t.Fatal("delete after InsertAll failed")
	}
}

func TestInsertAllEmptyBatch(t *testing.T) {
	tr := New()
	tr.InsertAll(nil)
	if tr.Len() != 0 {
		t.Fatal("empty batch must be a no-op")
	}
	tr.Insert(box(1, 1, 1, 1), "a")
	tr.InsertAll(nil)
	if tr.Len() != 1 {
		t.Fatal("empty batch on non-empty tree must be a no-op")
	}
}
