// Package rtree implements an in-memory R-tree spatial index with
// quadratic-split insertion and sort-tile-recursive (STR) bulk loading.
// Strabon uses it to accelerate the spatial joins of the refinement
// queries; the ablation benchmarks compare query plans with and without
// it.
package rtree

import (
	"math"
	"sort"

	"repro/internal/geom"
)

const (
	maxEntries = 16
	minEntries = maxEntries * 2 / 5
)

// Item is an indexed payload with its bounding box.
type Item struct {
	Box  geom.Envelope
	Data any
}

type node struct {
	leaf     bool
	box      geom.Envelope
	items    []Item  // leaf payloads
	children []*node // internal children
}

// Tree is the R-tree. The zero value is an empty, usable tree.
type Tree struct {
	root *node
	size int
}

// New returns an empty tree.
func New() *Tree { return &Tree{} }

// Len reports the number of indexed items.
func (t *Tree) Len() int { return t.size }

// Bounds returns the bounding box of the whole index.
func (t *Tree) Bounds() geom.Envelope {
	if t.root == nil {
		return geom.EmptyEnvelope()
	}
	return t.root.box
}

// Insert adds an item to the index.
func (t *Tree) Insert(box geom.Envelope, data any) {
	item := Item{Box: box, Data: data}
	if t.root == nil {
		t.root = &node{leaf: true, box: box, items: []Item{item}}
		t.size = 1
		return
	}
	n1, n2 := t.insert(t.root, item)
	if n2 != nil {
		// Root split: grow the tree.
		t.root = &node{
			leaf:     false,
			box:      n1.box.Expand(n2.box),
			children: []*node{n1, n2},
		}
	}
	t.size++
}

// insert pushes item down from n; returns (n, nil) or the two nodes
// resulting from a split.
func (t *Tree) insert(n *node, item Item) (*node, *node) {
	n.box = n.box.Expand(item.Box)
	if n.leaf {
		n.items = append(n.items, item)
		if len(n.items) > maxEntries {
			return splitLeaf(n)
		}
		return n, nil
	}
	best := chooseSubtree(n.children, item.Box)
	c1, c2 := t.insert(n.children[best], item)
	n.children[best] = c1
	if c2 != nil {
		n.children = append(n.children, c2)
		if len(n.children) > maxEntries {
			return splitInternal(n)
		}
	}
	return n, nil
}

// chooseSubtree picks the child needing least enlargement (ties by area).
func chooseSubtree(children []*node, box geom.Envelope) int {
	best := 0
	bestEnl := math.Inf(1)
	bestArea := math.Inf(1)
	for i, c := range children {
		area := c.box.Area()
		enl := c.box.Expand(box).Area() - area
		if enl < bestEnl || (enl == bestEnl && area < bestArea) {
			best, bestEnl, bestArea = i, enl, area
		}
	}
	return best
}

// splitLeaf performs a quadratic split of an overfull leaf.
func splitLeaf(n *node) (*node, *node) {
	seeds1, seeds2 := pickSeeds(len(n.items), func(i int) geom.Envelope { return n.items[i].Box })
	a := &node{leaf: true, box: n.items[seeds1].Box, items: []Item{n.items[seeds1]}}
	b := &node{leaf: true, box: n.items[seeds2].Box, items: []Item{n.items[seeds2]}}
	for i, it := range n.items {
		if i == seeds1 || i == seeds2 {
			continue
		}
		assignLeaf(a, b, it, len(n.items)-i-1)
	}
	return a, b
}

func assignLeaf(a, b *node, it Item, remaining int) {
	// Force-assign when one side risks falling under the minimum.
	if len(a.items)+remaining+1 <= minEntries {
		a.items = append(a.items, it)
		a.box = a.box.Expand(it.Box)
		return
	}
	if len(b.items)+remaining+1 <= minEntries {
		b.items = append(b.items, it)
		b.box = b.box.Expand(it.Box)
		return
	}
	enlA := a.box.Expand(it.Box).Area() - a.box.Area()
	enlB := b.box.Expand(it.Box).Area() - b.box.Area()
	if enlA < enlB || (enlA == enlB && len(a.items) <= len(b.items)) {
		a.items = append(a.items, it)
		a.box = a.box.Expand(it.Box)
	} else {
		b.items = append(b.items, it)
		b.box = b.box.Expand(it.Box)
	}
}

func splitInternal(n *node) (*node, *node) {
	s1, s2 := pickSeeds(len(n.children), func(i int) geom.Envelope { return n.children[i].box })
	a := &node{box: n.children[s1].box, children: []*node{n.children[s1]}}
	b := &node{box: n.children[s2].box, children: []*node{n.children[s2]}}
	for i, c := range n.children {
		if i == s1 || i == s2 {
			continue
		}
		enlA := a.box.Expand(c.box).Area() - a.box.Area()
		enlB := b.box.Expand(c.box).Area() - b.box.Area()
		if enlA < enlB || (enlA == enlB && len(a.children) <= len(b.children)) {
			a.children = append(a.children, c)
			a.box = a.box.Expand(c.box)
		} else {
			b.children = append(b.children, c)
			b.box = b.box.Expand(c.box)
		}
	}
	return a, b
}

// pickSeeds returns the pair of entries wasting the most area together.
func pickSeeds(n int, boxAt func(int) geom.Envelope) (int, int) {
	worst := -math.MaxFloat64
	s1, s2 := 0, 1
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			bi, bj := boxAt(i), boxAt(j)
			waste := bi.Expand(bj).Area() - bi.Area() - bj.Area()
			if waste > worst {
				worst, s1, s2 = waste, i, j
			}
		}
	}
	return s1, s2
}

// Search visits every item whose box intersects the query window. The
// visit function returns false to stop early.
func (t *Tree) Search(window geom.Envelope, visit func(Item) bool) {
	if t.root == nil {
		return
	}
	searchNode(t.root, window, visit)
}

func searchNode(n *node, window geom.Envelope, visit func(Item) bool) bool {
	if !n.box.Intersects(window) {
		return true
	}
	if n.leaf {
		for _, it := range n.items {
			if it.Box.Intersects(window) {
				if !visit(it) {
					return false
				}
			}
		}
		return true
	}
	for _, c := range n.children {
		if !searchNode(c, window, visit) {
			return false
		}
	}
	return true
}

// SearchSlice collects the payloads of all items intersecting the window.
func (t *Tree) SearchSlice(window geom.Envelope) []any {
	var out []any
	t.Search(window, func(it Item) bool {
		out = append(out, it.Data)
		return true
	})
	return out
}

// Delete removes the first item whose box equals the given box and whose
// payload compares equal. It reports whether an item was removed.
func (t *Tree) Delete(box geom.Envelope, data any) bool {
	if t.root == nil {
		return false
	}
	removed, orphans := deleteFrom(t.root, box, data)
	if !removed {
		return false
	}
	t.size--
	// Reinsert orphaned items from underfull nodes.
	for _, it := range orphans {
		t.size--
		t.Insert(it.Box, it.Data)
	}
	if !t.root.leaf && len(t.root.children) == 1 {
		t.root = t.root.children[0]
	}
	if t.size == 0 {
		t.root = nil
	}
	return true
}

func deleteFrom(n *node, box geom.Envelope, data any) (bool, []Item) {
	if !n.box.Intersects(box) {
		return false, nil
	}
	if n.leaf {
		for i, it := range n.items {
			if it.Data == data && sameBox(it.Box, box) {
				n.items = append(n.items[:i], n.items[i+1:]...)
				n.box = recomputeLeafBox(n)
				return true, nil
			}
		}
		return false, nil
	}
	for i, c := range n.children {
		ok, orphans := deleteFrom(c, box, data)
		if !ok {
			continue
		}
		if (c.leaf && len(c.items) < minEntries) || (!c.leaf && len(c.children) < minEntries) {
			// Dissolve the underfull child; reinsert its items.
			n.children = append(n.children[:i], n.children[i+1:]...)
			orphans = append(orphans, collectItems(c)...)
		}
		n.box = recomputeInternalBox(n)
		return true, orphans
	}
	return false, nil
}

func sameBox(a, b geom.Envelope) bool {
	return a.MinX == b.MinX && a.MinY == b.MinY && a.MaxX == b.MaxX && a.MaxY == b.MaxY
}

func recomputeLeafBox(n *node) geom.Envelope {
	e := geom.EmptyEnvelope()
	for _, it := range n.items {
		e = e.Expand(it.Box)
	}
	return e
}

func recomputeInternalBox(n *node) geom.Envelope {
	e := geom.EmptyEnvelope()
	for _, c := range n.children {
		e = e.Expand(c.box)
	}
	return e
}

func collectItems(n *node) []Item {
	if n.leaf {
		return n.items
	}
	var out []Item
	for _, c := range n.children {
		out = append(out, collectItems(c)...)
	}
	return out
}

// InsertAll adds a batch of items in one call. Small batches fall back to
// repeated insertion; a batch that is large relative to the tree (or lands
// in an empty tree) triggers an STR rebuild over the union, producing a
// well-packed tree in O(n log n) instead of n quadratic-split descents.
// Strabon's batched writer uses this so the spatial index is bulk-loaded
// once per flush rather than once per triple.
func (t *Tree) InsertAll(items []Item) {
	if len(items) == 0 {
		return
	}
	// Rebuild when the batch would grow the tree by a quarter or more.
	if t.root == nil || len(items)*4 >= t.size {
		union := make([]Item, 0, t.size+len(items))
		if t.root != nil {
			union = append(union, collectItems(t.root)...)
		}
		union = append(union, items...)
		*t = *BulkLoad(union)
		return
	}
	for _, it := range items {
		t.Insert(it.Box, it.Data)
	}
}

// BulkLoad builds a tree from items with the STR (sort-tile-recursive)
// algorithm, producing a well-packed tree much faster than repeated
// insertion.
func BulkLoad(items []Item) *Tree {
	t := &Tree{size: len(items)}
	if len(items) == 0 {
		return t
	}
	leaves := strPack(items)
	nodes := leaves
	for len(nodes) > 1 {
		nodes = strPackNodes(nodes)
	}
	t.root = nodes[0]
	return t
}

func strPack(items []Item) []*node {
	n := len(items)
	leafCount := (n + maxEntries - 1) / maxEntries
	sliceCount := int(math.Ceil(math.Sqrt(float64(leafCount))))
	perSlice := sliceCount * maxEntries

	sorted := append([]Item(nil), items...)
	sort.Slice(sorted, func(i, j int) bool {
		return sorted[i].Box.Center().X < sorted[j].Box.Center().X
	})
	var leaves []*node
	for s := 0; s < n; s += perSlice {
		end := min(s+perSlice, n)
		slice := sorted[s:end]
		sort.Slice(slice, func(i, j int) bool {
			return slice[i].Box.Center().Y < slice[j].Box.Center().Y
		})
		for i := 0; i < len(slice); i += maxEntries {
			j := min(i+maxEntries, len(slice))
			leaf := &node{leaf: true, items: append([]Item(nil), slice[i:j]...)}
			leaf.box = recomputeLeafBox(leaf)
			leaves = append(leaves, leaf)
		}
	}
	return leaves
}

func strPackNodes(children []*node) []*node {
	n := len(children)
	nodeCount := (n + maxEntries - 1) / maxEntries
	sliceCount := int(math.Ceil(math.Sqrt(float64(nodeCount))))
	perSlice := sliceCount * maxEntries

	sorted := append([]*node(nil), children...)
	sort.Slice(sorted, func(i, j int) bool {
		return sorted[i].box.Center().X < sorted[j].box.Center().X
	})
	var out []*node
	for s := 0; s < n; s += perSlice {
		end := min(s+perSlice, n)
		slice := sorted[s:end]
		sort.Slice(slice, func(i, j int) bool {
			return slice[i].box.Center().Y < slice[j].box.Center().Y
		})
		for i := 0; i < len(slice); i += maxEntries {
			j := min(i+maxEntries, len(slice))
			parent := &node{children: append([]*node(nil), slice[i:j]...)}
			parent.box = recomputeInternalBox(parent)
			out = append(out, parent)
		}
	}
	return out
}

// Nearest returns the payloads of the k items nearest to p by box
// distance, closest first.
func (t *Tree) Nearest(p geom.Point, k int) []any {
	if t.root == nil || k <= 0 {
		return nil
	}
	type cand struct {
		dist float64
		data any
	}
	var best []cand
	worst := math.Inf(1)
	var walk func(n *node)
	walk = func(n *node) {
		if boxDistance(n.box, p) > worst && len(best) >= k {
			return
		}
		if n.leaf {
			for _, it := range n.items {
				d := boxDistance(it.Box, p)
				if len(best) < k || d < worst {
					best = append(best, cand{d, it.Data})
					sort.Slice(best, func(i, j int) bool { return best[i].dist < best[j].dist })
					if len(best) > k {
						best = best[:k]
					}
					if len(best) == k {
						worst = best[k-1].dist
					}
				}
			}
			return
		}
		// Visit children nearest-first.
		kids := append([]*node(nil), n.children...)
		sort.Slice(kids, func(i, j int) bool {
			return boxDistance(kids[i].box, p) < boxDistance(kids[j].box, p)
		})
		for _, c := range kids {
			walk(c)
		}
	}
	walk(t.root)
	out := make([]any, len(best))
	for i, c := range best {
		out[i] = c.data
	}
	return out
}

func boxDistance(b geom.Envelope, p geom.Point) float64 {
	dx := math.Max(0, math.Max(b.MinX-p.X, p.X-b.MaxX))
	dy := math.Max(0, math.Max(b.MinY-p.Y, p.Y-b.MaxY))
	return math.Hypot(dx, dy)
}

// Height returns the tree height (0 for empty).
func (t *Tree) Height() int {
	h := 0
	for n := t.root; n != nil; {
		h++
		if n.leaf {
			break
		}
		n = n.children[0]
	}
	return h
}
