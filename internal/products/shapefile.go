package products

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"io"
	"math"

	"repro/internal/geom"
)

// This file implements the ESRI-shapefile-subset writer and reader the
// service uses for dissemination ("exporting the final product to raster
// and vector formats (ESRI shapefiles)"): the .shp geometry stream with
// the standard 100-byte header and Polygon (type 5) records. Attribute
// data (.dbf) is out of scope — the RDF-ization carries the attributes.

const (
	shpFileCode    = 9994
	shpVersion     = 1000
	shpTypePolygon = 5
)

// WriteSHP serialises the product's hotspot polygons as a .shp stream.
func (p *Product) WriteSHP(w io.Writer) error {
	var body bytes.Buffer
	be := binary.BigEndian
	le := binary.LittleEndian

	env := geom.EmptyEnvelope()
	for _, h := range p.Hotspots {
		env = env.Expand(h.Geometry.Envelope())
	}
	if env.IsEmpty() {
		env = geom.Envelope{}
	}

	for i, h := range p.Hotspots {
		rec := encodePolygonRecord(h.Geometry)
		var hdr [8]byte
		be.PutUint32(hdr[0:], uint32(i+1))
		be.PutUint32(hdr[4:], uint32(len(rec)/2)) // length in 16-bit words
		body.Write(hdr[:])
		body.Write(rec)
	}

	// 100-byte main header.
	var head [100]byte
	be.PutUint32(head[0:], shpFileCode)
	be.PutUint32(head[24:], uint32((100+body.Len())/2))
	le.PutUint32(head[28:], shpVersion)
	le.PutUint32(head[32:], shpTypePolygon)
	le.PutUint64(head[36:], math.Float64bits(env.MinX))
	le.PutUint64(head[44:], math.Float64bits(env.MinY))
	le.PutUint64(head[52:], math.Float64bits(env.MaxX))
	le.PutUint64(head[60:], math.Float64bits(env.MaxY))
	if _, err := w.Write(head[:]); err != nil {
		return err
	}
	_, err := w.Write(body.Bytes())
	return err
}

func encodePolygonRecord(poly geom.Polygon) []byte {
	le := binary.LittleEndian
	rings := poly.Rings()
	nPoints := 0
	for _, r := range rings {
		nPoints += len(r)
	}
	buf := make([]byte, 4+32+8+len(rings)*4+nPoints*16)
	le.PutUint32(buf[0:], shpTypePolygon)
	env := poly.Envelope()
	le.PutUint64(buf[4:], math.Float64bits(env.MinX))
	le.PutUint64(buf[12:], math.Float64bits(env.MinY))
	le.PutUint64(buf[20:], math.Float64bits(env.MaxX))
	le.PutUint64(buf[28:], math.Float64bits(env.MaxY))
	le.PutUint32(buf[36:], uint32(len(rings)))
	le.PutUint32(buf[40:], uint32(nPoints))
	off := 44
	idx := 0
	for _, r := range rings {
		le.PutUint32(buf[off:], uint32(idx))
		off += 4
		idx += len(r)
	}
	for _, r := range rings {
		// Shapefile outer rings are clockwise.
		ring := r
		if ring.IsCCW() {
			ring = ring.Reversed()
		}
		for _, pt := range ring {
			le.PutUint64(buf[off:], math.Float64bits(pt.X))
			le.PutUint64(buf[off+8:], math.Float64bits(pt.Y))
			off += 16
		}
	}
	return buf
}

// ReadSHP parses a .shp stream produced by WriteSHP, returning the
// polygons in record order.
func ReadSHP(r io.Reader) ([]geom.Polygon, error) {
	raw, err := io.ReadAll(r)
	if err != nil {
		return nil, err
	}
	if len(raw) < 100 {
		return nil, fmt.Errorf("products: shapefile too short (%d bytes)", len(raw))
	}
	be := binary.BigEndian
	le := binary.LittleEndian
	if be.Uint32(raw[0:]) != shpFileCode {
		return nil, fmt.Errorf("products: bad shapefile code")
	}
	if le.Uint32(raw[32:]) != shpTypePolygon {
		return nil, fmt.Errorf("products: unsupported shape type %d", le.Uint32(raw[32:]))
	}
	var out []geom.Polygon
	pos := 100
	for pos+8 <= len(raw) {
		recLen := int(be.Uint32(raw[pos+4:])) * 2
		pos += 8
		if pos+recLen > len(raw) {
			return nil, fmt.Errorf("products: truncated record at offset %d", pos)
		}
		rec := raw[pos : pos+recLen]
		pos += recLen
		poly, err := decodePolygonRecord(rec)
		if err != nil {
			return nil, err
		}
		out = append(out, poly)
	}
	return out, nil
}

func decodePolygonRecord(rec []byte) (geom.Polygon, error) {
	le := binary.LittleEndian
	if len(rec) < 44 {
		return geom.Polygon{}, fmt.Errorf("products: short polygon record")
	}
	if le.Uint32(rec[0:]) != shpTypePolygon {
		return geom.Polygon{}, fmt.Errorf("products: unexpected shape type in record")
	}
	nRings := int(le.Uint32(rec[36:]))
	nPoints := int(le.Uint32(rec[40:]))
	need := 44 + nRings*4 + nPoints*16
	if len(rec) < need {
		return geom.Polygon{}, fmt.Errorf("products: record wants %d bytes, has %d", need, len(rec))
	}
	starts := make([]int, nRings+1)
	for i := 0; i < nRings; i++ {
		starts[i] = int(le.Uint32(rec[44+i*4:]))
	}
	starts[nRings] = nPoints
	ptsOff := 44 + nRings*4
	readPoint := func(i int) geom.Point {
		off := ptsOff + i*16
		return geom.Point{
			X: math.Float64frombits(le.Uint64(rec[off:])),
			Y: math.Float64frombits(le.Uint64(rec[off+8:])),
		}
	}
	var poly geom.Polygon
	for ri := 0; ri < nRings; ri++ {
		ring := make(geom.Ring, 0, starts[ri+1]-starts[ri])
		for i := starts[ri]; i < starts[ri+1]; i++ {
			ring = append(ring, readPoint(i))
		}
		if ri == 0 {
			poly.Shell = ring
		} else {
			poly.Holes = append(poly.Holes, ring)
		}
	}
	return poly.Normalized(), nil
}
