package products

import (
	"bytes"
	"math"
	"testing"
	"time"

	"repro/internal/array"
	"repro/internal/geom"
	"repro/internal/georef"
	"repro/internal/ontology"
	"repro/internal/rdf"
)

func testTransform() georef.Transform {
	return georef.Transform{
		DstWidth: 10, DstHeight: 10,
		LonMin: 20, LatMax: 40, LonStep: 0.04, LatStep: 0.04,
	}
}

func TestVectorize(t *testing.T) {
	conf := array.New(10, 10)
	conf.Set(2, 3, 2) // fire
	conf.Set(5, 5, 1) // potential
	at := time.Date(2007, 8, 24, 18, 15, 0, 0, time.UTC)
	p := Vectorize(conf, testTransform(), "MSG2", "sciql", at)
	if len(p.Hotspots) != 2 {
		t.Fatalf("hotspots = %d", len(p.Hotspots))
	}
	fire := p.Hotspots[0]
	if fire.Confidence != 1.0 || !fire.Confirmation {
		t.Fatalf("fire hotspot = %+v", fire)
	}
	// The pixel square must be centred on the pixel's geographic centre.
	lon, lat := testTransform().PixelToGeo(2, 3)
	c := fire.Geometry.Centroid()
	if math.Abs(c.X-lon) > 1e-9 || math.Abs(c.Y-lat) > 1e-9 {
		t.Fatalf("centroid %v vs pixel centre (%g,%g)", c, lon, lat)
	}
	if a := fire.Geometry.Area(); math.Abs(a-0.04*0.04) > 1e-12 {
		t.Fatalf("pixel area = %g", a)
	}
	pot := p.Hotspots[1]
	if pot.Confidence != 0.5 || pot.Confirmation {
		t.Fatalf("potential hotspot = %+v", pot)
	}
}

func TestHotspotTriples(t *testing.T) {
	h := Hotspot{
		ID:         "MSG2_20070824T181500_1",
		Geometry:   geom.NewSquare(21.54, 37.89, 0.04),
		Confidence: 1.0, Confirmation: true,
		AcquiredAt: time.Date(2007, 8, 24, 18, 15, 0, 0, time.UTC),
		Sensor:     "MSG2", Chain: "sciql", Producer: "noa",
	}
	triples := h.Triples()
	if len(triples) != 8 {
		t.Fatalf("triples = %d, want 8 (the paper's example shape)", len(triples))
	}
	s := rdf.NewStore()
	for _, tp := range triples {
		s.Add(tp)
	}
	// Spot-check the example's predicates.
	for _, pred := range []string{
		ontology.PropAcquisitionDateTime, ontology.PropConfidence,
		ontology.PropConfirmation, ontology.HasGeometry,
		ontology.PropSensor, ontology.PropProducedBy, ontology.PropProcessingChain,
	} {
		pid, ok := s.Dict().Lookup(rdf.NewIRI(pred))
		if !ok || s.Count(0, pid, 0) != 1 {
			t.Fatalf("predicate %s missing", pred)
		}
	}
	// The geometry literal parses.
	var wkt string
	s.MatchTerms(rdf.Term{}, rdf.NewIRI(ontology.HasGeometry), rdf.Term{}, func(tp rdf.Triple) bool {
		wkt = tp.O.Value
		return false
	})
	if _, err := geom.ParseWKT(wkt); err != nil {
		t.Fatal(err)
	}
}

func TestProductTriplesLinkage(t *testing.T) {
	conf := array.New(4, 4)
	conf.Set(1, 1, 2)
	p := Vectorize(conf, testTransform(), "MSG1", "sciql",
		time.Date(2010, 8, 22, 12, 0, 0, 0, time.UTC))
	triples := p.Triples()
	s := rdf.NewStore()
	for _, tp := range triples {
		s.Add(tp)
	}
	tid, _ := s.Dict().Lookup(rdf.NewIRI(rdf.RDFType))
	shpID, ok := s.Dict().Lookup(rdf.NewIRI(ontology.ClassShapefile))
	if !ok || len(s.Subjects(tid, shpID)) != 1 {
		t.Fatal("shapefile individual missing")
	}
	exID, ok := s.Dict().Lookup(rdf.NewIRI(ontology.PropExtractedFrom))
	if !ok || s.Count(0, exID, 0) != 1 {
		t.Fatal("hotspot not linked to its shapefile")
	}
	if p.Filename() == "" {
		t.Fatal("empty dissemination filename")
	}
}

func TestSHPRoundTrip(t *testing.T) {
	conf := array.New(6, 6)
	conf.Set(1, 1, 2)
	conf.Set(4, 2, 1)
	conf.Set(3, 5, 2)
	p := Vectorize(conf, testTransform(), "MSG1", "legacy",
		time.Date(2010, 8, 22, 12, 5, 0, 0, time.UTC))
	var buf bytes.Buffer
	if err := p.WriteSHP(&buf); err != nil {
		t.Fatal(err)
	}
	polys, err := ReadSHP(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(polys) != 3 {
		t.Fatalf("read %d polygons", len(polys))
	}
	for i, poly := range polys {
		want := p.Hotspots[i].Geometry
		if math.Abs(poly.Area()-want.Area()) > 1e-12 {
			t.Fatalf("polygon %d area %g vs %g", i, poly.Area(), want.Area())
		}
		if !geom.Equals(poly, want) {
			t.Fatalf("polygon %d geometry drifted", i)
		}
	}
}

func TestSHPEmptyProduct(t *testing.T) {
	p := &Product{Sensor: "MSG1", Chain: "sciql", AcquiredAt: time.Now()}
	var buf bytes.Buffer
	if err := p.WriteSHP(&buf); err != nil {
		t.Fatal(err)
	}
	polys, err := ReadSHP(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(polys) != 0 {
		t.Fatalf("empty product produced %d polygons", len(polys))
	}
}

func TestReadSHPRejectsGarbage(t *testing.T) {
	if _, err := ReadSHP(bytes.NewReader([]byte("not a shapefile"))); err == nil {
		t.Fatal("garbage accepted")
	}
}
