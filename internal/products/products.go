// Package products models the outputs of the processing chain: hotspot
// records vectorised from classified pixel arrays ("selects pixels
// classified as fire or potential fire and outputs a POLYGON description
// in Well-known Text"), an ESRI-shapefile-subset binary container for
// dissemination, and the RDF-ization of products under the NOA ontology
// (Section 3.2.2).
package products

import (
	"fmt"
	"time"

	"repro/internal/array"
	"repro/internal/geom"
	"repro/internal/georef"
	"repro/internal/ontology"
	"repro/internal/rdf"
)

// Hotspot is one detected fire pixel.
type Hotspot struct {
	ID           string
	Geometry     geom.Polygon // the ~4×4 km pixel footprint
	Confidence   float64      // 0.5 for potential fire, 1.0 for fire
	AcquiredAt   time.Time
	Sensor       string // "MSG1" / "MSG2"
	Chain        string // processing chain name
	Producer     string // "noa"
	Confirmation bool
}

// Product is one acquisition's hotspot set (the paper's shapefile).
type Product struct {
	Sensor     string
	Chain      string
	AcquiredAt time.Time
	Hotspots   []Hotspot
}

// Vectorize converts a classified confidence array (0/1/2 per pixel, on
// the georeferenced grid) into hotspot polygons using the grid geometry.
func Vectorize(conf *array.Dense, tr georef.Transform, sensor, chain string, at time.Time) *Product {
	p := &Product{Sensor: sensor, Chain: chain, AcquiredAt: at}
	x0, y0 := conf.Origin()
	n := 0
	for y := 0; y < conf.Height(); y++ {
		for x := 0; x < conf.Width(); x++ {
			c := conf.Get(x0+x, y0+y)
			if c < 1 {
				continue
			}
			lon, lat := tr.PixelToGeo(x0+x, y0+y)
			n++
			confidence := 0.5
			if c >= 2 {
				confidence = 1.0
			}
			p.Hotspots = append(p.Hotspots, Hotspot{
				ID: fmt.Sprintf("%s_%s_%d", sensor,
					at.UTC().Format("20060102T150405"), n),
				Geometry:     geom.NewSquare(lon, lat, tr.LonStep),
				Confidence:   confidence,
				AcquiredAt:   at,
				Sensor:       sensor,
				Chain:        chain,
				Producer:     "noa",
				Confirmation: c >= 2,
			})
		}
	}
	return p
}

// NOA ontology individuals and helpers.

func iri(s string) rdf.Term { return rdf.NewIRI(s) }

// HotspotURI returns the RDF subject of a hotspot.
func HotspotURI(h Hotspot) string { return ontology.NOA + "Hotspot_" + h.ID }

// Triples renders a hotspot under the NOA ontology, shaped exactly like
// the paper's Section 3.2.2 example.
func (h Hotspot) Triples() []rdf.Triple {
	s := iri(HotspotURI(h))
	confirmation := ontology.UnconfirmedFire
	if h.Confirmation {
		confirmation = ontology.ConfirmedFire
	}
	return []rdf.Triple{
		{S: s, P: iri(rdf.RDFType), O: iri(ontology.ClassHotspot)},
		{S: s, P: iri(ontology.PropAcquisitionDateTime),
			O: rdf.NewDateTime(h.AcquiredAt.UTC().Format("2006-01-02T15:04:05"))},
		{S: s, P: iri(ontology.PropConfidence), O: rdf.NewFloat(h.Confidence)},
		{S: s, P: iri(ontology.PropConfirmation), O: iri(confirmation)},
		{S: s, P: iri(ontology.HasGeometry), O: rdf.NewGeometry(geom.WKT(h.Geometry))},
		{S: s, P: iri(ontology.PropSensor), O: rdf.NewTypedLiteral(h.Sensor, rdf.XSDString)},
		{S: s, P: iri(ontology.PropProducedBy), O: iri(ontology.NOA + "noa")},
		{S: s, P: iri(ontology.PropProcessingChain), O: rdf.NewTypedLiteral(h.Chain, rdf.XSDString)},
	}
}

// Triples renders the whole product: a noa:Shapefile individual plus
// every hotspot, linked by noa:isExtractedFrom.
func (p *Product) Triples() []rdf.Triple {
	return p.TriplesInto(nil)
}

// TriplesInto appends the product's RDF-ization to dst and returns the
// extended slice, letting callers that RDF-ize many products (the
// pipeline's batching writer) presize or reuse the destination.
func (p *Product) TriplesInto(dst []rdf.Triple) []rdf.Triple {
	shp := iri(fmt.Sprintf("%sShapefile_%s_%s", ontology.NOA, p.Sensor,
		p.AcquiredAt.UTC().Format("20060102T150405")))
	out := append(dst,
		rdf.Triple{S: shp, P: iri(rdf.RDFType), O: iri(ontology.ClassShapefile)},
		rdf.Triple{S: shp, P: iri(ontology.PropAcquisitionDateTime),
			O: rdf.NewDateTime(p.AcquiredAt.UTC().Format("2006-01-02T15:04:05"))},
		rdf.Triple{S: shp, P: iri(ontology.PropSensor), O: rdf.NewTypedLiteral(p.Sensor, rdf.XSDString)},
		rdf.Triple{S: shp, P: iri(ontology.PropProcessingChain), O: rdf.NewTypedLiteral(p.Chain, rdf.XSDString)},
		rdf.Triple{S: shp, P: iri(ontology.PropFilename),
			O: rdf.NewLiteral(p.Filename())},
	)
	for _, h := range p.Hotspots {
		out = append(out, h.Triples()...)
		out = append(out, rdf.Triple{
			S: iri(HotspotURI(h)), P: iri(ontology.PropExtractedFrom), O: shp,
		})
	}
	return out
}

// Filename renders the dissemination filename of the product.
func (p *Product) Filename() string {
	return fmt.Sprintf("HMSG_%s_%s.shp", p.Sensor, p.AcquiredAt.UTC().Format("20060102_1504"))
}
