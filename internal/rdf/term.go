// Package rdf implements the RDF data model used by the Strabon
// substrate: IRIs, blank nodes and typed literals, a dictionary encoder
// that maps terms to dense integer identifiers, an in-memory triple store
// with SPO/POS/OSP orderings, and a Turtle reader/writer.
//
// The model follows stRDF (Koubarakis et al.): geometries are literals of
// datatype strdf:geometry (or strdf:WKT) whose lexical form is OGC
// Well-Known Text.
package rdf

import (
	"encoding/binary"
	"fmt"
	"strconv"
	"strings"
)

// TermKind discriminates the three RDF term categories.
type TermKind uint8

// Term kinds.
const (
	TermIRI TermKind = iota
	TermBlank
	TermLiteral
)

// Term is an RDF term. The zero Term is invalid; use the constructors.
type Term struct {
	Kind     TermKind
	Value    string // IRI text, blank node label, or literal lexical form
	Datatype string // literal datatype IRI ("" means xsd:string / plain)
	Lang     string // literal language tag
}

// Well-known datatype IRIs.
const (
	XSDString   = "http://www.w3.org/2001/XMLSchema#string"
	XSDInteger  = "http://www.w3.org/2001/XMLSchema#integer"
	XSDFloat    = "http://www.w3.org/2001/XMLSchema#float"
	XSDDouble   = "http://www.w3.org/2001/XMLSchema#double"
	XSDBoolean  = "http://www.w3.org/2001/XMLSchema#boolean"
	XSDDateTime = "http://www.w3.org/2001/XMLSchema#dateTime"

	// StRDFGeometry is the strdf:geometry datatype of stRDF literals.
	StRDFGeometry = "http://strdf.di.uoa.gr/ontology#geometry"
	// StRDFWKT is the strdf:WKT alias accepted by Strabon.
	StRDFWKT = "http://strdf.di.uoa.gr/ontology#WKT"

	// RDFType is rdf:type, abbreviated "a" in Turtle.
	RDFType = "http://www.w3.org/1999/02/22-rdf-syntax-ns#type"
)

// NewIRI returns an IRI term.
func NewIRI(iri string) Term { return Term{Kind: TermIRI, Value: iri} }

// NewBlank returns a blank node term with the given label.
func NewBlank(label string) Term { return Term{Kind: TermBlank, Value: label} }

// NewLiteral returns a plain string literal.
func NewLiteral(lex string) Term { return Term{Kind: TermLiteral, Value: lex} }

// NewTypedLiteral returns a literal with an explicit datatype IRI.
func NewTypedLiteral(lex, datatype string) Term {
	return Term{Kind: TermLiteral, Value: lex, Datatype: datatype}
}

// NewLangLiteral returns a language-tagged literal.
func NewLangLiteral(lex, lang string) Term {
	return Term{Kind: TermLiteral, Value: lex, Lang: lang}
}

// NewInteger returns an xsd:integer literal.
func NewInteger(v int64) Term {
	return NewTypedLiteral(strconv.FormatInt(v, 10), XSDInteger)
}

// NewFloat returns an xsd:float literal.
func NewFloat(v float64) Term {
	return NewTypedLiteral(strconv.FormatFloat(v, 'g', -1, 64), XSDFloat)
}

// NewBoolean returns an xsd:boolean literal.
func NewBoolean(v bool) Term {
	return NewTypedLiteral(strconv.FormatBool(v), XSDBoolean)
}

// NewDateTime returns an xsd:dateTime literal from an ISO 8601 string.
func NewDateTime(iso string) Term { return NewTypedLiteral(iso, XSDDateTime) }

// NewGeometry returns an strdf:geometry literal holding WKT.
func NewGeometry(wkt string) Term { return NewTypedLiteral(wkt, StRDFGeometry) }

// IsIRI reports whether the term is an IRI.
func (t Term) IsIRI() bool { return t.Kind == TermIRI }

// IsBlank reports whether the term is a blank node.
func (t Term) IsBlank() bool { return t.Kind == TermBlank }

// IsLiteral reports whether the term is a literal.
func (t Term) IsLiteral() bool { return t.Kind == TermLiteral }

// IsGeometry reports whether the term is an stRDF geometry literal.
func (t Term) IsGeometry() bool {
	return t.Kind == TermLiteral && (t.Datatype == StRDFGeometry || t.Datatype == StRDFWKT)
}

// IsZero reports whether the term is the zero (invalid/wildcard) value.
func (t Term) IsZero() bool {
	return t.Value == "" && t.Datatype == "" && t.Lang == "" && t.Kind == TermIRI
}

// Integer parses the literal as an integer.
func (t Term) Integer() (int64, bool) {
	if t.Kind != TermLiteral {
		return 0, false
	}
	v, err := strconv.ParseInt(strings.TrimSpace(t.Value), 10, 64)
	return v, err == nil
}

// Float parses the literal as a float.
func (t Term) Float() (float64, bool) {
	if t.Kind != TermLiteral {
		return 0, false
	}
	v, err := strconv.ParseFloat(strings.TrimSpace(t.Value), 64)
	return v, err == nil
}

// Bool parses the literal as a boolean.
func (t Term) Bool() (bool, bool) {
	if t.Kind != TermLiteral {
		return false, false
	}
	v, err := strconv.ParseBool(t.Value)
	return v, err == nil
}

// key returns a unique string encoding of the term for dictionary lookup.
func (t Term) key() string {
	return string(t.appendKey(nil))
}

// appendKey appends the term's dictionary key to b. Callers probing a
// map can pass a stack buffer and index with string(b) — the compiler
// elides the string copy, so the lookup does not allocate. Literal
// fields are length-prefixed rather than separator-joined so that no
// byte content (NULs included) can make two distinct terms collide.
func (t Term) appendKey(b []byte) []byte {
	switch t.Kind {
	case TermIRI:
		b = append(b, 'I')
		return append(b, t.Value...)
	case TermBlank:
		b = append(b, 'B')
		return append(b, t.Value...)
	default:
		b = append(b, 'L')
		b = binary.AppendUvarint(b, uint64(len(t.Datatype)))
		b = append(b, t.Datatype...)
		b = binary.AppendUvarint(b, uint64(len(t.Lang)))
		b = append(b, t.Lang...)
		return append(b, t.Value...)
	}
}

// String renders the term in N-Triples-like syntax.
func (t Term) String() string {
	switch t.Kind {
	case TermIRI:
		return "<" + t.Value + ">"
	case TermBlank:
		return "_:" + t.Value
	default:
		s := strconv.Quote(t.Value)
		if t.Lang != "" {
			return s + "@" + t.Lang
		}
		if t.Datatype != "" && t.Datatype != XSDString {
			return s + "^^<" + t.Datatype + ">"
		}
		return s
	}
}

// Equal reports exact term equality.
func (t Term) Equal(o Term) bool {
	return t.Kind == o.Kind && t.Value == o.Value && t.Datatype == o.Datatype && t.Lang == o.Lang
}

// Triple is a subject/predicate/object statement.
type Triple struct {
	S, P, O Term
}

// NewTriple builds a triple.
func NewTriple(s, p, o Term) Triple { return Triple{S: s, P: p, O: o} }

// String renders the triple in N-Triples-like syntax.
func (tr Triple) String() string {
	return fmt.Sprintf("%s %s %s .", tr.S, tr.P, tr.O)
}
