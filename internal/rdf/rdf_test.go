package rdf

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"
)

func TestTermConstructors(t *testing.T) {
	iri := NewIRI("http://example.org/a")
	if !iri.IsIRI() || iri.IsLiteral() || iri.IsBlank() {
		t.Fatal("IRI kind flags wrong")
	}
	b := NewBlank("n1")
	if !b.IsBlank() {
		t.Fatal("blank kind wrong")
	}
	lit := NewLiteral("hello")
	if !lit.IsLiteral() {
		t.Fatal("literal kind wrong")
	}
	n := NewInteger(42)
	if v, ok := n.Integer(); !ok || v != 42 {
		t.Fatalf("Integer() = %v, %v", v, ok)
	}
	f := NewFloat(2.5)
	if v, ok := f.Float(); !ok || v != 2.5 {
		t.Fatalf("Float() = %v, %v", v, ok)
	}
	bo := NewBoolean(true)
	if v, ok := bo.Bool(); !ok || !v {
		t.Fatalf("Bool() = %v, %v", v, ok)
	}
	g := NewGeometry("POINT (1 2)")
	if !g.IsGeometry() {
		t.Fatal("geometry literal not recognized")
	}
	wkt := NewTypedLiteral("POINT (1 2)", StRDFWKT)
	if !wkt.IsGeometry() {
		t.Fatal("strdf:WKT literal not recognized as geometry")
	}
	if NewLiteral("POINT (1 2)").IsGeometry() {
		t.Fatal("plain literal must not be geometry")
	}
}

func TestTermString(t *testing.T) {
	cases := []struct {
		term Term
		want string
	}{
		{NewIRI("http://e/x"), "<http://e/x>"},
		{NewBlank("b0"), "_:b0"},
		{NewLiteral("hi"), `"hi"`},
		{NewLangLiteral("Patras", "en"), `"Patras"@en`},
		{NewInteger(7), `"7"^^<` + XSDInteger + `>`},
	}
	for _, c := range cases {
		if got := c.term.String(); got != c.want {
			t.Errorf("String() = %s, want %s", got, c.want)
		}
	}
}

func TestDictionaryRoundTrip(t *testing.T) {
	d := NewDictionary()
	terms := []Term{
		NewIRI("http://e/a"),
		NewIRI("http://e/b"),
		NewBlank("x"),
		NewLiteral("lit"),
		NewTypedLiteral("lit", XSDString),
		NewLangLiteral("lit", "el"),
		NewGeometry("POINT (1 1)"),
	}
	ids := make([]ID, len(terms))
	for i, tm := range terms {
		ids[i] = d.Encode(tm)
		if ids[i] == Wildcard {
			t.Fatal("encode returned wildcard id")
		}
	}
	// Re-encoding returns identical IDs.
	for i, tm := range terms {
		if got := d.Encode(tm); got != ids[i] {
			t.Fatalf("re-encode changed id: %d vs %d", got, ids[i])
		}
	}
	for i, id := range ids {
		if got := d.Decode(id); !got.Equal(terms[i]) {
			t.Fatalf("decode(%d) = %v, want %v", id, got, terms[i])
		}
	}
	if _, ok := d.Lookup(NewIRI("http://nowhere/")); ok {
		t.Fatal("lookup of unseen term succeeded")
	}
	if !d.Decode(Wildcard).IsZero() {
		t.Fatal("decoding wildcard should be zero term")
	}
	if !d.Decode(9999).IsZero() {
		t.Fatal("decoding unknown id should be zero term")
	}
	// Distinct literals with same lexical form must get distinct IDs.
	a := d.Encode(NewLiteral("v"))
	b := d.Encode(NewLangLiteral("v", "en"))
	c := d.Encode(NewTypedLiteral("v", XSDInteger))
	if a == b || b == c || a == c {
		t.Fatal("literal variants collided in dictionary")
	}
}

func tr(s, p, o string) Triple {
	return Triple{S: NewIRI(s), P: NewIRI(p), O: NewIRI(o)}
}

func TestStoreAddRemove(t *testing.T) {
	s := NewStore()
	t1 := tr("http://e/s1", "http://e/p", "http://e/o1")
	if !s.Add(t1) {
		t.Fatal("first add should be new")
	}
	if s.Add(t1) {
		t.Fatal("duplicate add should report false")
	}
	if s.Len() != 1 {
		t.Fatalf("len = %d", s.Len())
	}
	if !s.Has(t1) {
		t.Fatal("Has should find the triple")
	}
	if !s.Remove(t1) {
		t.Fatal("remove failed")
	}
	if s.Remove(t1) {
		t.Fatal("second remove should fail")
	}
	if s.Len() != 0 || s.Has(t1) {
		t.Fatal("store should be empty")
	}
}

func TestStoreMatchPatterns(t *testing.T) {
	s := NewStore()
	for i := 0; i < 10; i++ {
		s.Add(tr(fmt.Sprintf("http://e/s%d", i%3), "http://e/p1", fmt.Sprintf("http://e/o%d", i)))
	}
	s.Add(tr("http://e/s0", "http://e/p2", "http://e/o0"))

	d := s.Dict()
	s0, _ := d.Lookup(NewIRI("http://e/s0"))
	p1, _ := d.Lookup(NewIRI("http://e/p1"))
	p2, _ := d.Lookup(NewIRI("http://e/p2"))
	o0, _ := d.Lookup(NewIRI("http://e/o0"))

	count := func(a, b, c ID) int { return s.Count(a, b, c) }

	if got := count(s0, Wildcard, Wildcard); got != 5 {
		t.Fatalf("S-bound count = %d, want 5", got)
	}
	if got := count(Wildcard, p1, Wildcard); got != 10 {
		t.Fatalf("P-bound count = %d, want 10", got)
	}
	if got := count(Wildcard, Wildcard, o0); got != 2 {
		t.Fatalf("O-bound count = %d, want 2", got)
	}
	if got := count(s0, p2, Wildcard); got != 1 {
		t.Fatalf("SP-bound count = %d, want 1", got)
	}
	if got := count(s0, Wildcard, o0); got != 2 {
		t.Fatalf("SO-bound count = %d, want 2", got)
	}
	if got := count(Wildcard, p1, o0); got != 1 {
		t.Fatalf("PO-bound count = %d, want 1", got)
	}
	if got := count(s0, p1, o0); got != 1 {
		t.Fatalf("SPO-bound count = %d, want 1", got)
	}
	if got := count(Wildcard, Wildcard, Wildcard); got != 11 {
		t.Fatalf("full scan count = %d, want 11", got)
	}
}

func TestStoreMatchTermsWildcards(t *testing.T) {
	s := NewStore()
	s.Add(tr("http://e/s", "http://e/p", "http://e/o"))
	var seen int
	s.MatchTerms(Term{}, NewIRI("http://e/p"), Term{}, func(Triple) bool {
		seen++
		return true
	})
	if seen != 1 {
		t.Fatalf("matched %d", seen)
	}
	// Unknown term short-circuits.
	s.MatchTerms(NewIRI("http://unknown/"), Term{}, Term{}, func(Triple) bool {
		t.Fatal("should not match")
		return false
	})
}

func TestStoreSubjects(t *testing.T) {
	s := NewStore()
	typ := NewIRI(RDFType)
	hotspot := NewIRI("http://e/Hotspot")
	for i := 0; i < 5; i++ {
		s.Add(Triple{S: NewIRI(fmt.Sprintf("http://e/h%d", i)), P: typ, O: hotspot})
	}
	tid, _ := s.Dict().Lookup(typ)
	hid, _ := s.Dict().Lookup(hotspot)
	subs := s.Subjects(tid, hid)
	if len(subs) != 5 {
		t.Fatalf("subjects = %d, want 5", len(subs))
	}
}

func TestNamespaces(t *testing.T) {
	ns := NewNamespaces()
	iri, err := ns.Expand("noa:Hotspot")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasSuffix(iri, "#Hotspot") {
		t.Fatalf("expanded = %q", iri)
	}
	if q := ns.Shrink(iri); q != "noa:Hotspot" {
		t.Fatalf("shrink = %q", q)
	}
	if _, err := ns.Expand("nope:X"); err == nil {
		t.Fatal("unknown prefix should error")
	}
	if _, err := ns.Expand("noprefix"); err == nil {
		t.Fatal("name without colon should error")
	}
	ns.Bind("ex", "http://example.org/")
	if got, _ := ns.Expand("ex:a"); got != "http://example.org/a" {
		t.Fatalf("custom prefix expand = %q", got)
	}
}

func TestParseTurtlePaperExample(t *testing.T) {
	// The hotspot example from Section 3.2.2 of the paper, verbatim
	// modulo whitespace.
	src := `
noa:Hotspot_1 a noa:Hotspot ;
  noa:hasAcquisitionDateTime "2007-08-24T18:15:00"^^xsd:dateTime;
  noa:hasConfidence 1.0 ;
  noa:hasConfirmation noa:confirmed ;
  strdf:hasGeometry "POLYGON ((21.52 37.91,21.57 37.91,21.56 37.88,21.56 37.88,21.52 37.87,21.52 37.91))"^^strdf:geometry ;
  noa:isDerivedFromSensor "MSG2"^^xsd:string ;
  noa:isProducedBy noa:noa ;
  noa:isFromProcessingChain "cloud-masked"^^xsd:string .
`
	triples, err := ParseTurtle(src, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(triples) != 8 {
		t.Fatalf("parsed %d triples, want 8", len(triples))
	}
	var geomFound, dtFound, confFound bool
	for _, tp := range triples {
		if tp.O.IsGeometry() {
			geomFound = true
		}
		if tp.O.Datatype == XSDDateTime {
			dtFound = true
		}
		if v, ok := tp.O.Float(); ok && v == 1.0 && tp.O.Datatype == XSDDouble {
			confFound = true
		}
	}
	if !geomFound || !dtFound || !confFound {
		t.Fatalf("missing literal kinds: geom=%v dt=%v conf=%v", geomFound, dtFound, confFound)
	}
}

func TestParseTurtleGeoNamesExample(t *testing.T) {
	src := `
<http://sws.geonames.org/255683/> a gn:Feature ;
  gn:alternateName "Patrae" ;
  gn:alternateName "Patras"@en ;
  gn:name "Patras" ;
  gn:countryCode "GR" ;
  gn:featureClass gn:P ;
  gn:parentCountry <http://sws.geonames.org/390903/> ;
  strdf:hasGeometry "POINT(21.73 38.24)"^^strdf:geometry .
`
	triples, err := ParseTurtle(src, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(triples) != 8 {
		t.Fatalf("parsed %d triples, want 8", len(triples))
	}
	var langLit bool
	for _, tp := range triples {
		if tp.O.Lang == "en" && tp.O.Value == "Patras" {
			langLit = true
		}
	}
	if !langLit {
		t.Fatal("language-tagged literal not parsed")
	}
}

func TestParseTurtleDirectivesAndLists(t *testing.T) {
	src := `
@prefix ex: <http://example.org/> .
ex:s ex:p ex:o1, ex:o2, ex:o3 .
ex:s2 ex:q 42 ; ex:r 3.14 ; ex:t true .
_:b1 ex:p ex:o1 .
# a comment line
ex:s3 ex:u "multi\nline" .
`
	triples, err := ParseTurtle(src, NewNamespaces())
	if err != nil {
		t.Fatal(err)
	}
	if len(triples) != 8 {
		t.Fatalf("parsed %d triples, want 8", len(triples))
	}
	if triples[0].O.Value != "http://example.org/o1" {
		t.Fatalf("object list first = %v", triples[0].O)
	}
	if triples[6].S.Kind != TermBlank {
		t.Fatalf("blank subject = %v", triples[6].S)
	}
}

func TestParseTurtleErrors(t *testing.T) {
	for _, src := range []string{
		`ex:s ex:p ex:o .`,                // unknown prefix
		`@prefix ex <http://e/> .`,        // missing colon
		`<http://e/s> <http://e/p>`,       // missing object and dot
		`"lit" <http://e/p> "x" .`,        // literal subject
		`<http://e/s> "p" <http://e/o> .`, // literal predicate
		`<http://e/s> <http://e/p> "unterminated .`,
	} {
		if _, err := ParseTurtle(src, nil); err == nil {
			t.Errorf("expected parse error for %q", src)
		}
	}
}

func TestTurtleRoundTrip(t *testing.T) {
	ns := NewNamespaces()
	ns.Bind("ex", "http://example.org/")
	orig := []Triple{
		{S: NewIRI("http://example.org/h1"), P: NewIRI(RDFType), O: NewIRI("http://example.org/Hotspot")},
		{S: NewIRI("http://example.org/h1"), P: NewIRI("http://example.org/conf"), O: NewFloat(0.5)},
		{S: NewIRI("http://example.org/h1"), P: NewIRI("http://example.org/geo"), O: NewGeometry("POINT (1 2)")},
		{S: NewIRI("http://example.org/h2"), P: NewIRI("http://example.org/label"), O: NewLangLiteral("Αθήνα", "el")},
	}
	text := WriteTurtle(orig, ns)
	back, err := ParseTurtle(text, ns)
	if err != nil {
		t.Fatalf("reparse: %v\n%s", err, text)
	}
	if len(back) != len(orig) {
		t.Fatalf("roundtrip count %d != %d\n%s", len(back), len(orig), text)
	}
	s := NewStore()
	for _, tp := range orig {
		s.Add(tp)
	}
	for _, tp := range back {
		if !s.Has(tp) {
			t.Fatalf("roundtrip invented triple %v", tp)
		}
	}
}

func TestStoreRandomizedAgainstMap(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	s := NewStore()
	ref := make(map[string]Triple)
	key := func(t Triple) string { return t.String() }
	mk := func() Triple {
		return tr(
			fmt.Sprintf("http://e/s%d", r.Intn(20)),
			fmt.Sprintf("http://e/p%d", r.Intn(5)),
			fmt.Sprintf("http://e/o%d", r.Intn(30)),
		)
	}
	for i := 0; i < 5000; i++ {
		t3 := mk()
		if r.Float64() < 0.7 {
			added := s.Add(t3)
			_, existed := ref[key(t3)]
			if added == existed {
				t.Fatalf("add mismatch for %v: added=%v existed=%v", t3, added, existed)
			}
			ref[key(t3)] = t3
		} else {
			removed := s.Remove(t3)
			_, existed := ref[key(t3)]
			if removed != existed {
				t.Fatalf("remove mismatch for %v", t3)
			}
			delete(ref, key(t3))
		}
		if s.Len() != len(ref) {
			t.Fatalf("size drift: store %d vs ref %d", s.Len(), len(ref))
		}
	}
	for _, t3 := range s.Triples() {
		if _, ok := ref[key(t3)]; !ok {
			t.Fatalf("store has phantom triple %v", t3)
		}
	}
}

// brutePredicateCard recomputes PredicateCard by full scan, the oracle
// for the incrementally-maintained statistics.
func brutePredicateCard(s *Store, pred Term) (int, int, int) {
	n := 0
	subj := make(map[string]bool)
	obj := make(map[string]bool)
	s.MatchTerms(Term{}, pred, Term{}, func(t Triple) bool {
		n++
		subj[t.S.String()] = true
		obj[t.O.String()] = true
		return true
	})
	return n, len(subj), len(obj)
}

func TestCountPattern(t *testing.T) {
	s := NewStore()
	for _, t3 := range []Triple{
		tr("http://e/a", "http://e/p", "http://e/x"),
		tr("http://e/a", "http://e/p", "http://e/y"),
		tr("http://e/b", "http://e/p", "http://e/x"),
		tr("http://e/b", "http://e/q", "http://e/x"),
	} {
		s.Add(t3)
	}
	i := func(v string) Term { return NewIRI(v) }
	for _, tc := range []struct {
		s, p, o Term
		want    int
	}{
		{Term{}, Term{}, Term{}, 4},
		{i("http://e/a"), Term{}, Term{}, 2},
		{Term{}, i("http://e/p"), Term{}, 3},
		{Term{}, Term{}, i("http://e/x"), 3},
		{i("http://e/a"), i("http://e/p"), Term{}, 2},
		{Term{}, i("http://e/p"), i("http://e/x"), 2},
		{i("http://e/b"), Term{}, i("http://e/x"), 2},
		{i("http://e/a"), i("http://e/p"), i("http://e/x"), 1},
		{i("http://e/a"), i("http://e/q"), i("http://e/x"), 0},
		{i("http://e/nope"), Term{}, Term{}, 0},
	} {
		if got := s.CountPattern(tc.s, tc.p, tc.o); got != tc.want {
			t.Errorf("CountPattern(%v %v %v) = %d, want %d", tc.s, tc.p, tc.o, got, tc.want)
		}
	}
	triples, subjects, predicates, objects := s.StoreCard()
	if triples != 4 || subjects != 2 || predicates != 2 || objects != 2 {
		t.Fatalf("StoreCard = %d %d %d %d", triples, subjects, predicates, objects)
	}
}

func TestPredicateCardMaintainedUnderChurn(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	s := NewStore()
	preds := []Term{NewIRI("http://e/p0"), NewIRI("http://e/p1"), NewIRI("http://e/p2")}
	var live []Triple
	for i := 0; i < 3000; i++ {
		t3 := tr(
			fmt.Sprintf("http://e/s%d", r.Intn(15)),
			fmt.Sprintf("http://e/p%d", r.Intn(3)),
			fmt.Sprintf("http://e/o%d", r.Intn(25)),
		)
		if r.Float64() < 0.65 {
			s.Add(t3)
			live = append(live, t3)
		} else {
			s.Remove(t3)
		}
		if i%500 == 0 {
			for _, p := range preds {
				wn, ws, wo := brutePredicateCard(s, p)
				gn, gs, go_ := s.PredicateCard(p)
				if gn != wn || gs != ws || go_ != wo {
					t.Fatalf("step %d pred %v: got (%d,%d,%d), want (%d,%d,%d)",
						i, p, gn, gs, go_, wn, ws, wo)
				}
			}
		}
	}
	// Drain and verify the counters return to zero.
	for _, t3 := range live {
		s.Remove(t3)
	}
	for _, p := range preds {
		if n, ds, do := s.PredicateCard(p); n != 0 || ds != 0 || do != 0 {
			t.Fatalf("after drain, pred %v card = (%d,%d,%d)", p, n, ds, do)
		}
	}
}
