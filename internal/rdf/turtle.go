package rdf

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// Namespaces manages prefix -> IRI bindings for Turtle I/O and for the
// stSPARQL parser. It is safe for concurrent use: strabon parses queries
// (reads) concurrently with Turtle loads (which may Bind new prefixes).
type Namespaces struct {
	mu       sync.RWMutex
	prefixes map[string]string
}

// NewNamespaces returns a namespace table preloaded with the vocabularies
// used by the paper's datasets.
func NewNamespaces() *Namespaces {
	n := &Namespaces{prefixes: make(map[string]string)}
	for p, iri := range map[string]string{
		"rdf":   "http://www.w3.org/1999/02/22-rdf-syntax-ns#",
		"rdfs":  "http://www.w3.org/2000/01/rdf-schema#",
		"owl":   "http://www.w3.org/2002/07/owl#",
		"xsd":   "http://www.w3.org/2001/XMLSchema#",
		"strdf": "http://strdf.di.uoa.gr/ontology#",
		"noa":   "http://teleios.di.uoa.gr/ontologies/noaOntology.owl#",
		"clc":   "http://teleios.di.uoa.gr/ontologies/clcOntology.owl#",
		"coast": "http://teleios.di.uoa.gr/ontologies/coastlineOntology.owl#",
		"gag":   "http://teleios.di.uoa.gr/ontologies/gagOntology.owl#",
		"lgd":   "http://linkedgeodata.org/triplify/",
		"lgdo":  "http://linkedgeodata.org/ontology/",
		"gn":    "http://www.geonames.org/ontology#",
		"sweet": "http://sweet.jpl.nasa.gov/ontology/",
	} {
		n.prefixes[p] = iri
	}
	return n
}

// Bind registers (or overrides) a prefix. Query parsing reaches this
// for PREFIX declarations, so it runs on read paths too: the lock is
// the namespace table's own mutex, held for one map write.
func (n *Namespaces) Bind(prefix, iri string) {
	//lint:allow lockdiscipline namespace-table mutex, not a store lock; PREFIX declarations bind during read-path parsing
	n.mu.Lock()
	n.prefixes[prefix] = iri
	n.mu.Unlock()
}

// Expand resolves a prefixed name such as "noa:Hotspot" to a full IRI.
func (n *Namespaces) Expand(qname string) (string, error) {
	i := strings.Index(qname, ":")
	if i < 0 {
		return "", fmt.Errorf("rdf: %q is not a prefixed name", qname)
	}
	n.mu.RLock()
	base, ok := n.prefixes[qname[:i]]
	n.mu.RUnlock()
	if !ok {
		return "", fmt.Errorf("rdf: unknown prefix %q", qname[:i])
	}
	return base + qname[i+1:], nil
}

// Shrink renders an IRI with the best matching prefix, or "" if none fits.
func (n *Namespaces) Shrink(iri string) string {
	n.mu.RLock()
	defer n.mu.RUnlock()
	bestPrefix, bestBase := "", ""
	for p, base := range n.prefixes {
		if strings.HasPrefix(iri, base) && len(base) > len(bestBase) {
			bestPrefix, bestBase = p, base
		}
	}
	if bestBase == "" {
		return ""
	}
	local := iri[len(bestBase):]
	if strings.ContainsAny(local, "/#:") {
		return ""
	}
	return bestPrefix + ":" + local
}

// Prefixes returns a copy of the bindings.
func (n *Namespaces) Prefixes() map[string]string {
	n.mu.RLock()
	defer n.mu.RUnlock()
	out := make(map[string]string, len(n.prefixes))
	for k, v := range n.prefixes {
		out[k] = v
	}
	return out
}

// ParseTurtle parses a Turtle document into triples. It supports the
// subset used by the paper's datasets: @prefix directives, IRIs, prefixed
// names, the "a" keyword, blank node labels, predicate lists (;), object
// lists (,), string literals with ^^datatype or @lang, and bare numeric /
// boolean literals.
func ParseTurtle(src string, ns *Namespaces) ([]Triple, error) {
	if ns == nil {
		ns = NewNamespaces()
	}
	p := &turtleParser{src: src, ns: ns}
	return p.parse()
}

type turtleParser struct {
	src  string
	pos  int
	line int
	ns   *Namespaces
}

func (p *turtleParser) errf(format string, args ...any) error {
	return fmt.Errorf("rdf: turtle line %d: %s", p.line+1, fmt.Sprintf(format, args...))
}

func (p *turtleParser) skipWS() {
	for p.pos < len(p.src) {
		c := p.src[p.pos]
		switch {
		case c == '\n':
			p.line++
			p.pos++
		case c == ' ' || c == '\t' || c == '\r':
			p.pos++
		case c == '#':
			for p.pos < len(p.src) && p.src[p.pos] != '\n' {
				p.pos++
			}
		default:
			return
		}
	}
}

func (p *turtleParser) eof() bool {
	p.skipWS()
	return p.pos >= len(p.src)
}

func (p *turtleParser) peek() byte {
	p.skipWS()
	if p.pos >= len(p.src) {
		return 0
	}
	return p.src[p.pos]
}

func (p *turtleParser) expect(c byte) error {
	if p.peek() != c {
		return p.errf("expected %q", string(c))
	}
	p.pos++
	return nil
}

func (p *turtleParser) parse() ([]Triple, error) {
	var out []Triple
	for !p.eof() {
		if p.peek() == '@' {
			if err := p.directive(); err != nil {
				return nil, err
			}
			continue
		}
		triples, err := p.statement()
		if err != nil {
			return nil, err
		}
		out = append(out, triples...)
	}
	return out, nil
}

func (p *turtleParser) directive() error {
	word := p.readWhile(func(c byte) bool { return c != ' ' && c != '\t' && c != '\n' })
	if word != "@prefix" {
		return p.errf("unsupported directive %q", word)
	}
	p.skipWS()
	prefix := p.readWhile(func(c byte) bool { return c != ':' })
	if err := p.expect(':'); err != nil {
		return err
	}
	term, err := p.term()
	if err != nil {
		return err
	}
	if !term.IsIRI() {
		return p.errf("@prefix wants an IRI")
	}
	p.ns.Bind(strings.TrimSpace(prefix), term.Value)
	return p.expect('.')
}

func (p *turtleParser) statement() ([]Triple, error) {
	subj, err := p.term()
	if err != nil {
		return nil, err
	}
	if subj.IsLiteral() {
		return nil, p.errf("literal subject")
	}
	var out []Triple
	for {
		pred, err := p.predicate()
		if err != nil {
			return nil, err
		}
		for {
			obj, err := p.term()
			if err != nil {
				return nil, err
			}
			out = append(out, Triple{S: subj, P: pred, O: obj})
			if p.peek() == ',' {
				p.pos++
				continue
			}
			break
		}
		switch p.peek() {
		case ';':
			p.pos++
			// A dangling ";" before "." is legal Turtle.
			if p.peek() == '.' {
				p.pos++
				return out, nil
			}
			continue
		case '.':
			p.pos++
			return out, nil
		default:
			return nil, p.errf("expected ';' or '.' after object")
		}
	}
}

func (p *turtleParser) predicate() (Term, error) {
	p.skipWS()
	if p.pos < len(p.src) && p.src[p.pos] == 'a' {
		// "a" keyword only when followed by whitespace.
		if p.pos+1 < len(p.src) {
			c := p.src[p.pos+1]
			if c == ' ' || c == '\t' || c == '\n' || c == '<' {
				p.pos++
				return NewIRI(RDFType), nil
			}
		}
	}
	t, err := p.term()
	if err != nil {
		return Term{}, err
	}
	if !t.IsIRI() {
		return Term{}, p.errf("predicate must be an IRI")
	}
	return t, nil
}

func (p *turtleParser) readWhile(ok func(byte) bool) string {
	start := p.pos
	for p.pos < len(p.src) && ok(p.src[p.pos]) {
		p.pos++
	}
	return p.src[start:p.pos]
}

func isNameChar(c byte) bool {
	return c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' ||
		c >= '0' && c <= '9' || c == '_' || c == '-' || c == '.' || c == '%'
}

func (p *turtleParser) term() (Term, error) {
	switch c := p.peek(); {
	case c == '<':
		p.pos++
		iri := p.readWhile(func(c byte) bool { return c != '>' })
		if err := p.expect('>'); err != nil {
			return Term{}, err
		}
		return NewIRI(iri), nil
	case c == '_':
		p.pos++
		if err := p.expect(':'); err != nil {
			return Term{}, err
		}
		label := p.readWhile(isNameChar)
		label = strings.TrimSuffix(label, ".")
		return NewBlank(label), nil
	case c == '"':
		return p.stringLiteral()
	case c >= '0' && c <= '9' || c == '-' || c == '+':
		lex := p.readWhile(func(c byte) bool {
			return c >= '0' && c <= '9' || c == '-' || c == '+' || c == '.' || c == 'e' || c == 'E'
		})
		// A trailing '.' is the statement terminator, not part of the number.
		if strings.HasSuffix(lex, ".") {
			lex = lex[:len(lex)-1]
			p.pos--
		}
		if strings.ContainsAny(lex, ".eE") {
			if _, err := strconv.ParseFloat(lex, 64); err != nil {
				return Term{}, p.errf("bad numeric literal %q", lex)
			}
			return NewTypedLiteral(lex, XSDDouble), nil
		}
		if _, err := strconv.ParseInt(lex, 10, 64); err != nil {
			return Term{}, p.errf("bad integer literal %q", lex)
		}
		return NewTypedLiteral(lex, XSDInteger), nil
	default:
		word := p.readWhile(func(c byte) bool { return isNameChar(c) || c == ':' })
		if word == "true" || word == "false" {
			return NewTypedLiteral(word, XSDBoolean), nil
		}
		if word == "" {
			return Term{}, p.errf("unexpected character %q", string(c))
		}
		// Trailing '.' of the statement can stick to the local name.
		for strings.HasSuffix(word, ".") {
			word = word[:len(word)-1]
			p.pos--
		}
		iri, err := p.ns.Expand(word)
		if err != nil {
			return Term{}, p.errf("%v", err)
		}
		return NewIRI(iri), nil
	}
}

func (p *turtleParser) stringLiteral() (Term, error) {
	if err := p.expect('"'); err != nil {
		return Term{}, err
	}
	var b strings.Builder
	for p.pos < len(p.src) {
		c := p.src[p.pos]
		if c == '\\' && p.pos+1 < len(p.src) {
			p.pos++
			switch p.src[p.pos] {
			case 'n':
				b.WriteByte('\n')
			case 't':
				b.WriteByte('\t')
			case 'r':
				b.WriteByte('\r')
			case '"':
				b.WriteByte('"')
			case '\\':
				b.WriteByte('\\')
			default:
				b.WriteByte(p.src[p.pos])
			}
			p.pos++
			continue
		}
		if c == '"' {
			p.pos++
			lex := b.String()
			// Datatype or language tag?
			if p.pos+1 < len(p.src) && p.src[p.pos] == '^' && p.src[p.pos+1] == '^' {
				p.pos += 2
				dt, err := p.term()
				if err != nil {
					return Term{}, err
				}
				if !dt.IsIRI() {
					return Term{}, p.errf("datatype must be an IRI")
				}
				return NewTypedLiteral(lex, dt.Value), nil
			}
			if p.pos < len(p.src) && p.src[p.pos] == '@' {
				p.pos++
				lang := p.readWhile(func(c byte) bool {
					return c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c == '-'
				})
				return NewLangLiteral(lex, lang), nil
			}
			return NewLiteral(lex), nil
		}
		if c == '\n' {
			p.line++
		}
		b.WriteByte(c)
		p.pos++
	}
	return Term{}, p.errf("unterminated string literal")
}

// WriteTurtle serialises triples as Turtle, grouping by subject and using
// the namespace table for prefixed names. Output is deterministic.
func WriteTurtle(triples []Triple, ns *Namespaces) string {
	if ns == nil {
		ns = NewNamespaces()
	}
	var b strings.Builder
	// Emit prefix directives for prefixes actually used.
	used := make(map[string]bool)
	renderTerm := func(t Term) string {
		switch t.Kind {
		case TermIRI:
			if q := ns.Shrink(t.Value); q != "" {
				used[q[:strings.Index(q, ":")]] = true
				return q
			}
			return "<" + t.Value + ">"
		case TermBlank:
			return "_:" + t.Value
		default:
			s := strconv.Quote(t.Value)
			if t.Lang != "" {
				return s + "@" + t.Lang
			}
			if t.Datatype != "" && t.Datatype != XSDString {
				if q := ns.Shrink(t.Datatype); q != "" {
					used[q[:strings.Index(q, ":")]] = true
					return s + "^^" + q
				}
				return s + "^^<" + t.Datatype + ">"
			}
			return s
		}
	}

	// Group triples by subject, preserving first-seen subject order.
	type group struct {
		subj  string
		lines []string
	}
	order := make(map[string]int)
	var groups []*group
	for _, t := range triples {
		sk := renderTerm(t.S)
		pk := renderTerm(t.P)
		if t.P.Value == RDFType {
			pk = "a"
		}
		ok := renderTerm(t.O)
		idx, seen := order[sk]
		if !seen {
			idx = len(groups)
			order[sk] = idx
			groups = append(groups, &group{subj: sk})
		}
		groups[idx].lines = append(groups[idx].lines, pk+" "+ok)
	}

	var body strings.Builder
	for _, g := range groups {
		body.WriteString(g.subj)
		for i, l := range g.lines {
			if i == 0 {
				body.WriteString(" ")
			} else {
				body.WriteString(" ;\n    ")
			}
			body.WriteString(l)
		}
		body.WriteString(" .\n")
	}

	prefixes := ns.Prefixes()
	var names []string
	for p := range used {
		names = append(names, p)
	}
	sort.Strings(names)
	for _, p := range names {
		fmt.Fprintf(&b, "@prefix %s: <%s> .\n", p, prefixes[p])
	}
	if len(names) > 0 {
		b.WriteString("\n")
	}
	b.WriteString(body.String())
	return b.String()
}
