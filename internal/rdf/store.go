package rdf

// EncodedTriple is a dictionary-encoded statement.
type EncodedTriple struct {
	S, P, O ID
}

// index is a two-level map from first key to second key to a set of third
// keys. Three instances in different orders give the SPO, POS and OSP
// access paths of the store.
type index map[ID]map[ID]map[ID]struct{}

func (ix index) add(a, b, c ID) bool {
	m1, ok := ix[a]
	if !ok {
		m1 = make(map[ID]map[ID]struct{})
		ix[a] = m1
	}
	m2, ok := m1[b]
	if !ok {
		m2 = make(map[ID]struct{})
		m1[b] = m2
	}
	if _, exists := m2[c]; exists {
		return false
	}
	m2[c] = struct{}{}
	return true
}

func (ix index) remove(a, b, c ID) bool {
	m1, ok := ix[a]
	if !ok {
		return false
	}
	m2, ok := m1[b]
	if !ok {
		return false
	}
	if _, exists := m2[c]; !exists {
		return false
	}
	delete(m2, c)
	if len(m2) == 0 {
		delete(m1, b)
		if len(m1) == 0 {
			delete(ix, a)
		}
	}
	return true
}

// Store is an in-memory dictionary-encoded triple store with three
// complete orderings, the classic layout of RDF column stores (and of
// Strabon's underlying schema). Alongside the indexes it maintains cheap
// cardinality statistics — triples and distinct subjects per predicate —
// kept up to date on every Add/Remove, so a query planner can cost join
// orders in O(1) per estimate.
type Store struct {
	dict *Dictionary
	spo  index
	pos  index
	osp  index
	size int

	// predCount counts triples per predicate; predSubj counts distinct
	// subjects per predicate (distinct objects come free as len(pos[p])).
	predCount map[ID]int
	predSubj  map[ID]int
}

// NewStore returns an empty store with a fresh dictionary.
func NewStore() *Store {
	return &Store{
		dict:      NewDictionary(),
		spo:       make(index),
		pos:       make(index),
		osp:       make(index),
		predCount: make(map[ID]int),
		predSubj:  make(map[ID]int),
	}
}

// Dict exposes the store's dictionary.
func (s *Store) Dict() *Dictionary { return s.dict }

// Len reports the number of distinct triples.
func (s *Store) Len() int { return s.size }

// Add inserts a triple; it reports whether the triple was new.
func (s *Store) Add(t Triple) bool {
	return s.AddEncoded(EncodedTriple{
		S: s.dict.Encode(t.S),
		P: s.dict.Encode(t.P),
		O: s.dict.Encode(t.O),
	})
}

// AddEncoded inserts an already-encoded triple.
func (s *Store) AddEncoded(t EncodedTriple) bool {
	if !s.spo.add(t.S, t.P, t.O) {
		return false
	}
	s.pos.add(t.P, t.O, t.S)
	s.osp.add(t.O, t.S, t.P)
	s.size++
	s.predCount[t.P]++
	if len(s.spo[t.S][t.P]) == 1 {
		s.predSubj[t.P]++
	}
	return true
}

// Remove deletes a triple; it reports whether the triple was present.
func (s *Store) Remove(t Triple) bool {
	sid, ok := s.dict.Lookup(t.S)
	if !ok {
		return false
	}
	pid, ok := s.dict.Lookup(t.P)
	if !ok {
		return false
	}
	oid, ok := s.dict.Lookup(t.O)
	if !ok {
		return false
	}
	return s.RemoveEncoded(EncodedTriple{S: sid, P: pid, O: oid})
}

// RemoveEncoded deletes an encoded triple.
func (s *Store) RemoveEncoded(t EncodedTriple) bool {
	if !s.spo.remove(t.S, t.P, t.O) {
		return false
	}
	s.pos.remove(t.P, t.O, t.S)
	s.osp.remove(t.O, t.S, t.P)
	s.size--
	if s.predCount[t.P]--; s.predCount[t.P] == 0 {
		delete(s.predCount, t.P)
	}
	if _, ok := s.spo[t.S][t.P]; !ok {
		if s.predSubj[t.P]--; s.predSubj[t.P] == 0 {
			delete(s.predSubj, t.P)
		}
	}
	return true
}

// Has reports whether the triple is present.
func (s *Store) Has(t Triple) bool {
	sid, ok := s.dict.Lookup(t.S)
	if !ok {
		return false
	}
	pid, ok := s.dict.Lookup(t.P)
	if !ok {
		return false
	}
	oid, ok := s.dict.Lookup(t.O)
	if !ok {
		return false
	}
	m1, ok := s.spo[sid]
	if !ok {
		return false
	}
	m2, ok := m1[pid]
	if !ok {
		return false
	}
	_, ok = m2[oid]
	return ok
}

// Match streams every encoded triple matching the pattern, where Wildcard
// (0) components match anything. The visit function returns false to stop.
// The best available index ordering is selected from the bound components.
func (s *Store) Match(sub, pred, obj ID, visit func(EncodedTriple) bool) {
	switch {
	case sub != Wildcard:
		m1, ok := s.spo[sub]
		if !ok {
			return
		}
		if pred != Wildcard {
			m2, ok := m1[pred]
			if !ok {
				return
			}
			if obj != Wildcard {
				if _, ok := m2[obj]; ok {
					visit(EncodedTriple{sub, pred, obj})
				}
				return
			}
			for o := range m2 {
				if !visit(EncodedTriple{sub, pred, o}) {
					return
				}
			}
			return
		}
		if obj != Wildcard {
			// S and O bound: scan predicates of subject.
			for p, m2 := range m1 {
				if _, ok := m2[obj]; ok {
					if !visit(EncodedTriple{sub, p, obj}) {
						return
					}
				}
			}
			return
		}
		for p, m2 := range m1 {
			for o := range m2 {
				if !visit(EncodedTriple{sub, p, o}) {
					return
				}
			}
		}
	case pred != Wildcard:
		m1, ok := s.pos[pred]
		if !ok {
			return
		}
		if obj != Wildcard {
			m2, ok := m1[obj]
			if !ok {
				return
			}
			for sid := range m2 {
				if !visit(EncodedTriple{sid, pred, obj}) {
					return
				}
			}
			return
		}
		for o, m2 := range m1 {
			for sid := range m2 {
				if !visit(EncodedTriple{sid, pred, o}) {
					return
				}
			}
		}
	case obj != Wildcard:
		m1, ok := s.osp[obj]
		if !ok {
			return
		}
		for sid, m2 := range m1 {
			for p := range m2 {
				if !visit(EncodedTriple{sid, p, obj}) {
					return
				}
			}
		}
	default:
		for sid, m1 := range s.spo {
			for p, m2 := range m1 {
				for o := range m2 {
					if !visit(EncodedTriple{sid, p, o}) {
						return
					}
				}
			}
		}
	}
}

// MatchTerms streams decoded triples matching a term pattern; zero Terms
// act as wildcards.
func (s *Store) MatchTerms(sub, pred, obj Term, visit func(Triple) bool) {
	var sid, pid, oid ID
	var ok bool
	if !sub.IsZero() {
		if sid, ok = s.dict.Lookup(sub); !ok {
			return
		}
	}
	if !pred.IsZero() {
		if pid, ok = s.dict.Lookup(pred); !ok {
			return
		}
	}
	if !obj.IsZero() {
		if oid, ok = s.dict.Lookup(obj); !ok {
			return
		}
	}
	s.Match(sid, pid, oid, func(t EncodedTriple) bool {
		return visit(Triple{
			S: s.dict.Decode(t.S),
			P: s.dict.Decode(t.P),
			O: s.dict.Decode(t.O),
		})
	})
}

// Count returns the number of triples matching the pattern.
func (s *Store) Count(sub, pred, obj ID) int {
	n := 0
	s.Match(sub, pred, obj, func(EncodedTriple) bool { n++; return true })
	return n
}

// Triples returns all triples, decoded. Intended for tests and small
// exports; large scans should use Match.
func (s *Store) Triples() []Triple {
	out := make([]Triple, 0, s.size)
	s.Match(Wildcard, Wildcard, Wildcard, func(t EncodedTriple) bool {
		out = append(out, Triple{
			S: s.dict.Decode(t.S),
			P: s.dict.Decode(t.P),
			O: s.dict.Decode(t.O),
		})
		return true
	})
	return out
}

// --- cardinality statistics (the planner's cost inputs) ---

// countEncoded returns the exact number of triples matching an encoded
// pattern without enumerating them: every case is answered from index map
// lengths or the maintained per-predicate counters. Worst case is O(number
// of predicates of one subject or object), typically a handful.
func (s *Store) countEncoded(sub, pred, obj ID) int {
	switch {
	case sub != Wildcard && pred != Wildcard && obj != Wildcard:
		if _, ok := s.spo[sub][pred][obj]; ok {
			return 1
		}
		return 0
	case sub != Wildcard && pred != Wildcard:
		return len(s.spo[sub][pred])
	case pred != Wildcard && obj != Wildcard:
		return len(s.pos[pred][obj])
	case sub != Wildcard && obj != Wildcard:
		n := 0
		for _, m2 := range s.spo[sub] {
			if _, ok := m2[obj]; ok {
				n++
			}
		}
		return n
	case sub != Wildcard:
		n := 0
		for _, m2 := range s.spo[sub] {
			n += len(m2)
		}
		return n
	case pred != Wildcard:
		return s.predCount[pred]
	case obj != Wildcard:
		n := 0
		for _, m2 := range s.osp[obj] {
			n += len(m2)
		}
		return n
	default:
		return s.size
	}
}

// CountPattern returns the exact number of triples matching a term
// pattern (zero Terms are wildcards) in near-constant time. Terms absent
// from the dictionary match nothing.
func (s *Store) CountPattern(sub, pred, obj Term) int {
	var sid, pid, oid ID
	var ok bool
	if !sub.IsZero() {
		if sid, ok = s.dict.Lookup(sub); !ok {
			return 0
		}
	}
	if !pred.IsZero() {
		if pid, ok = s.dict.Lookup(pred); !ok {
			return 0
		}
	}
	if !obj.IsZero() {
		if oid, ok = s.dict.Lookup(obj); !ok {
			return 0
		}
	}
	return s.countEncoded(sid, pid, oid)
}

// PredicateCard reports per-predicate cardinalities: total triples,
// distinct subjects and distinct objects. All three are O(1).
func (s *Store) PredicateCard(pred Term) (triples, distinctS, distinctO int) {
	pid, ok := s.dict.Lookup(pred)
	if !ok {
		return 0, 0, 0
	}
	return s.predCount[pid], s.predSubj[pid], len(s.pos[pid])
}

// StoreCard reports store-level cardinalities: total triples and the
// distinct subject, predicate and object counts. All four are O(1).
func (s *Store) StoreCard() (triples, subjects, predicates, objects int) {
	return s.size, len(s.spo), len(s.pos), len(s.osp)
}

// Subjects returns the distinct subject IDs with predicate pred and object
// obj (either may be Wildcard).
func (s *Store) Subjects(pred, obj ID) []ID {
	seen := make(map[ID]struct{})
	var out []ID
	s.Match(Wildcard, pred, obj, func(t EncodedTriple) bool {
		if _, dup := seen[t.S]; !dup {
			seen[t.S] = struct{}{}
			out = append(out, t.S)
		}
		return true
	})
	return out
}
