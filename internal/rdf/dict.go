package rdf

// ID is a dense dictionary identifier for a term. 0 is reserved as the
// wildcard / "no term" sentinel so that pattern matching can use the zero
// value naturally.
type ID uint32

// Wildcard matches any term in pattern lookups.
const Wildcard ID = 0

// Dictionary maps terms to dense IDs and back. The mapping is append-only:
// terms are never garbage-collected, mirroring the dictionary columns of a
// column store.
//
// # Concurrency contract
//
// A Dictionary is not internally synchronised; it relies on the owning
// store's lock discipline (see strabon's package comment):
//
//   - Encode appends — it may grow both the key map and the term slice,
//     so it must only run under the owning store's WRITE lock (every
//     mutation path: Add, AddEncoded via Store.Add, bulk loads).
//   - Lookup and Decode never mutate. Because the mapping is append-only
//     and IDs are dense, any ID observed under a read lock stays valid
//     for the lifetime of the dictionary: readers may hold decoded IDs
//     across their whole evaluation and decode them lock-free relative
//     to each other (the store read lock excludes writers; concurrent
//     read-locked evaluations share the dictionary without coordination).
//   - An ID never changes meaning. Removing a triple does not remove its
//     terms, so cached plans and ID-keyed operator state survive store
//     generations — they are invalidated for staleness of results, never
//     because an ID was reused.
//
// TestDictionaryAppendOnly and FuzzDictionaryRoundTrip pin this contract.
type Dictionary struct {
	byKey map[string]ID
	terms []Term // terms[i-1] holds the term for ID i

	// bytes approximates the retained heap footprint (term strings, key
	// strings and fixed per-entry overhead), maintained on Encode so the
	// /metrics dictionary gauges are O(1).
	bytes int
}

// dictEntryOverhead approximates the fixed per-entry cost: the Term in
// the slice, the map key header and bucket slack, and the ID.
const dictEntryOverhead = 96

// NewDictionary returns an empty dictionary.
func NewDictionary() *Dictionary {
	return &Dictionary{byKey: make(map[string]ID)}
}

// Encode interns a term, returning its ID (allocating one if new). Write
// lock only; see the concurrency contract above.
func (d *Dictionary) Encode(t Term) ID {
	k := t.key()
	if id, ok := d.byKey[k]; ok {
		return id
	}
	d.terms = append(d.terms, t)
	id := ID(len(d.terms))
	d.byKey[k] = id
	d.bytes += len(k) + len(t.Value) + len(t.Datatype) + len(t.Lang) + dictEntryOverhead
	return id
}

// Lookup returns the ID for a term without interning; ok is false when the
// term has never been seen. The probe key is built in a stack buffer —
// bind joins call Lookup per probe row, so this path must not allocate
// for ordinary-sized terms.
func (d *Dictionary) Lookup(t Term) (ID, bool) {
	var arr [128]byte
	id, ok := d.byKey[string(t.appendKey(arr[:0]))]
	return id, ok
}

// Decode returns the term for an ID. Decoding the wildcard or an unknown
// ID returns the zero Term.
func (d *Dictionary) Decode(id ID) Term {
	if id == 0 || int(id) > len(d.terms) {
		return Term{}
	}
	return d.terms[id-1]
}

// Len reports the number of interned terms.
func (d *Dictionary) Len() int { return len(d.terms) }

// ApproxBytes reports the approximate retained heap footprint of the
// dictionary: interned term and key strings plus fixed per-entry
// overhead. Like Len it reads under whatever lock the caller holds.
func (d *Dictionary) ApproxBytes() int { return d.bytes }
