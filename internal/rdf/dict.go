package rdf

// ID is a dense dictionary identifier for a term. 0 is reserved as the
// wildcard / "no term" sentinel so that pattern matching can use the zero
// value naturally.
type ID uint32

// Wildcard matches any term in pattern lookups.
const Wildcard ID = 0

// Dictionary maps terms to dense IDs and back. The mapping is append-only:
// terms are never garbage-collected, mirroring the dictionary columns of a
// column store.
type Dictionary struct {
	byKey map[string]ID
	terms []Term // terms[i-1] holds the term for ID i
}

// NewDictionary returns an empty dictionary.
func NewDictionary() *Dictionary {
	return &Dictionary{byKey: make(map[string]ID)}
}

// Encode interns a term, returning its ID (allocating one if new).
func (d *Dictionary) Encode(t Term) ID {
	k := t.key()
	if id, ok := d.byKey[k]; ok {
		return id
	}
	d.terms = append(d.terms, t)
	id := ID(len(d.terms))
	d.byKey[k] = id
	return id
}

// Lookup returns the ID for a term without interning; ok is false when the
// term has never been seen. The probe key is built in a stack buffer —
// bind joins call Lookup per probe row, so this path must not allocate
// for ordinary-sized terms.
func (d *Dictionary) Lookup(t Term) (ID, bool) {
	var arr [128]byte
	id, ok := d.byKey[string(t.appendKey(arr[:0]))]
	return id, ok
}

// Decode returns the term for an ID. Decoding the wildcard or an unknown
// ID returns the zero Term.
func (d *Dictionary) Decode(id ID) Term {
	if id == 0 || int(id) > len(d.terms) {
		return Term{}
	}
	return d.terms[id-1]
}

// Len reports the number of interned terms.
func (d *Dictionary) Len() int { return len(d.terms) }
