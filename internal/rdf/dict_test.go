package rdf

import (
	"fmt"
	"testing"
)

// TestDictionaryAppendOnly pins the contract the ID-native execution
// engine relies on: IDs are dense, stable and never reused, and Decode
// of any previously returned ID keeps returning the same term no matter
// how many terms are interned afterwards.
func TestDictionaryAppendOnly(t *testing.T) {
	d := NewDictionary()
	terms := []Term{
		NewIRI("http://example.org/a"),
		NewBlank("b0"),
		NewLiteral("plain"),
		NewLangLiteral("bonjour", "fr"),
		NewTypedLiteral("42", XSDInteger),
		NewGeometry("POINT(1 2)"),
	}
	ids := make([]ID, len(terms))
	for i, tm := range terms {
		ids[i] = d.Encode(tm)
		if ids[i] != ID(i+1) {
			t.Fatalf("Encode(%v) = %d, want dense id %d", tm, ids[i], i+1)
		}
	}
	// Re-encoding is idempotent.
	for i, tm := range terms {
		if got := d.Encode(tm); got != ids[i] {
			t.Fatalf("re-Encode(%v) = %d, want %d", tm, got, ids[i])
		}
	}
	// Interning more terms never disturbs existing IDs.
	for i := 0; i < 1000; i++ {
		d.Encode(NewIRI(fmt.Sprintf("http://example.org/extra/%d", i)))
	}
	for i, tm := range terms {
		if got := d.Decode(ids[i]); !got.Equal(tm) {
			t.Fatalf("Decode(%d) = %v after growth, want %v", ids[i], got, tm)
		}
		if got, ok := d.Lookup(tm); !ok || got != ids[i] {
			t.Fatalf("Lookup(%v) = %d,%v after growth, want %d,true", tm, got, ok, ids[i])
		}
	}
	if d.Len() != len(terms)+1000 {
		t.Fatalf("Len = %d, want %d", d.Len(), len(terms)+1000)
	}
	if d.ApproxBytes() <= 0 {
		t.Fatalf("ApproxBytes = %d, want > 0", d.ApproxBytes())
	}
}

// TestDictionaryZeroAndUnknown pins the wildcard/unknown edges.
func TestDictionaryZeroAndUnknown(t *testing.T) {
	d := NewDictionary()
	if got := d.Decode(Wildcard); !got.IsZero() {
		t.Fatalf("Decode(Wildcard) = %v, want zero term", got)
	}
	if got := d.Decode(99); !got.IsZero() {
		t.Fatalf("Decode(unknown) = %v, want zero term", got)
	}
	if _, ok := d.Lookup(NewIRI("http://never/seen")); ok {
		t.Fatal("Lookup of unseen term reported ok")
	}
}

// TestDictionaryDistinguishesLiteralShapes checks that a lexical form
// shared across plain, language-tagged and datatyped literals (and an
// IRI and a blank node of the same text) interns to distinct IDs.
func TestDictionaryDistinguishesLiteralShapes(t *testing.T) {
	d := NewDictionary()
	shapes := []Term{
		NewLiteral("x"),
		NewLangLiteral("x", "en"),
		NewLangLiteral("x", "de"),
		NewTypedLiteral("x", XSDString),
		NewTypedLiteral("x", XSDInteger),
		NewIRI("x"),
		NewBlank("x"),
	}
	seen := make(map[ID]Term)
	for _, tm := range shapes {
		id := d.Encode(tm)
		if prev, dup := seen[id]; dup {
			t.Fatalf("terms %v and %v collided on id %d", prev, tm, id)
		}
		seen[id] = tm
	}
}

// FuzzDictionaryRoundTrip fuzzes encode/decode round-trips over every
// term shape, including language-tagged and datatyped literals: Encode
// then Decode must reproduce the exact term, Lookup must agree with
// Encode, and distinct terms must never share an ID.
func FuzzDictionaryRoundTrip(f *testing.F) {
	f.Add(uint8(0), "http://example.org/x", "", "")
	f.Add(uint8(1), "b1", "", "")
	f.Add(uint8(2), "plain text", "", "")
	f.Add(uint8(2), "bonjour", "", "fr")
	f.Add(uint8(2), "42", XSDInteger, "")
	f.Add(uint8(2), "POLYGON((0 0,1 0,1 1,0 0))", StRDFGeometry, "")
	f.Add(uint8(2), "a\x00b", "dt\x00x", "l\x00g") // NUL bytes must not confuse keys
	f.Fuzz(func(t *testing.T, kind uint8, value, datatype, lang string) {
		var tm Term
		switch kind % 3 {
		case 0:
			tm = NewIRI(value)
		case 1:
			tm = NewBlank(value)
		default:
			tm = Term{Kind: TermLiteral, Value: value, Datatype: datatype, Lang: lang}
		}
		if tm.IsZero() {
			// The zero term is not a valid dictionary entry; the engine
			// never encodes it (0 is the unbound sentinel).
			t.Skip()
		}
		d := NewDictionary()
		// Pre-populate with near-miss terms so collisions would surface.
		d.Encode(NewLiteral(value))
		d.Encode(NewIRI(value))
		d.Encode(Term{Kind: TermLiteral, Value: value, Datatype: lang, Lang: datatype})

		id := d.Encode(tm)
		if id == 0 {
			t.Fatal("Encode returned the wildcard id")
		}
		if got := d.Decode(id); !got.Equal(tm) {
			t.Fatalf("Decode(Encode(%#v)) = %#v", tm, got)
		}
		if got, ok := d.Lookup(tm); !ok || got != id {
			t.Fatalf("Lookup(%#v) = %d,%v; Encode gave %d", tm, got, ok, id)
		}
		if got := d.Encode(tm); got != id {
			t.Fatalf("second Encode(%#v) = %d, want %d", tm, got, id)
		}
		// Every interned term decodes back to something that re-encodes
		// to its own ID — pairwise distinctness.
		for i := 1; i <= d.Len(); i++ {
			back := d.Decode(ID(i))
			if got, ok := d.Lookup(back); !ok || got != ID(i) {
				t.Fatalf("id %d decodes to %#v which looks up as %d,%v", i, back, got, ok)
			}
		}
	})
}
