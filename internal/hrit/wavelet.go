package hrit

import (
	"encoding/binary"
	"fmt"
)

// This file implements the codec's compression stage: a multi-level
// lossless integer Haar wavelet (lifting scheme) in the Mallat layout,
// followed by zig-zag varint entropy coding. Natural imagery concentrates
// energy in the shrinking low-pass quadrant, so almost all coefficients
// are small high-pass values that varint-code to single bytes — the same
// rationale as the operational wavelet compression of the MSG
// dissemination chain.

// waveletLevels bounds the pyramid depth; beyond ~5 levels the low-pass
// band is already tiny for SEVIRI crop sizes.
const waveletLevels = 5

// compressWavelet transforms and entropy-codes a w×h count field.
func compressWavelet(counts []uint16, w, h int) []byte {
	c := make([]int32, len(counts))
	for i, v := range counts {
		c[i] = int32(v)
	}
	haarForward(c, w, h)
	out := make([]byte, 0, len(c))
	var tmp [binary.MaxVarintLen32]byte
	for _, v := range c {
		n := binary.PutUvarint(tmp[:], zigzag(v))
		out = append(out, tmp[:n]...)
	}
	return out
}

func decompressWavelet(data []byte, w, h int) ([]uint16, error) {
	n := w * h
	c := make([]int32, n)
	pos := 0
	for i := 0; i < n; i++ {
		v, used := binary.Uvarint(data[pos:])
		if used <= 0 {
			return nil, fmt.Errorf("hrit: truncated wavelet stream at coefficient %d", i)
		}
		pos += used
		c[i] = unzigzag(v)
	}
	haarInverse(c, w, h)
	out := make([]uint16, n)
	for i, v := range c {
		if v < 0 || v > 1023 {
			return nil, fmt.Errorf("hrit: wavelet reconstruction out of range (%d)", v)
		}
		out[i] = uint16(v)
	}
	return out, nil
}

func zigzag(v int32) uint64 {
	return uint64(uint32(v<<1) ^ uint32(v>>31))
}

func unzigzag(u uint64) int32 {
	return int32(uint32(u)>>1) ^ -int32(u&1)
}

// levelDims returns the pyramid of sub-rectangle sizes processed by the
// forward transform, largest first.
func levelDims(w, h int) [][2]int {
	var out [][2]int
	cw, ch := w, h
	for level := 0; level < waveletLevels && cw >= 2 && ch >= 2; level++ {
		out = append(out, [2]int{cw, ch})
		cw = (cw + 1) / 2
		ch = (ch + 1) / 2
	}
	return out
}

// haarForward applies the multi-level integer Haar lifting transform in
// place: each level transforms the current low-pass quadrant's rows then
// columns, leaving the Mallat layout (ss quadrant top-left).
func haarForward(c []int32, w, h int) {
	buf := make([]int32, max(w, h))
	for _, dims := range levelDims(w, h) {
		cw, ch := dims[0], dims[1]
		for y := 0; y < ch; y++ {
			row := buf[:cw]
			copy(row, c[y*w:y*w+cw])
			liftForward(row)
			copy(c[y*w:y*w+cw], row)
		}
		for x := 0; x < cw; x++ {
			col := buf[:ch]
			for y := 0; y < ch; y++ {
				col[y] = c[y*w+x]
			}
			liftForward(col)
			for y := 0; y < ch; y++ {
				c[y*w+x] = col[y]
			}
		}
	}
}

func haarInverse(c []int32, w, h int) {
	dims := levelDims(w, h)
	buf := make([]int32, max(w, h))
	for i := len(dims) - 1; i >= 0; i-- {
		cw, ch := dims[i][0], dims[i][1]
		for x := 0; x < cw; x++ {
			col := buf[:ch]
			for y := 0; y < ch; y++ {
				col[y] = c[y*w+x]
			}
			liftInverse(col)
			for y := 0; y < ch; y++ {
				c[y*w+x] = col[y]
			}
		}
		for y := 0; y < ch; y++ {
			row := buf[:cw]
			copy(row, c[y*w:y*w+cw])
			liftInverse(row)
			copy(c[y*w:y*w+cw], row)
		}
	}
}

// liftForward rearranges pairs (a, b) into low-pass s = a + floor(d/2)
// and high-pass d = b − a, laid out [s..., (odd tail), d...]. The odd
// tail sample joins the low-pass band so multi-level recursion covers it.
func liftForward(v []int32) {
	n := len(v) / 2
	if n == 0 {
		return
	}
	sLen := n + len(v)%2
	s := make([]int32, sLen)
	d := make([]int32, n)
	for i := 0; i < n; i++ {
		a, b := v[2*i], v[2*i+1]
		d[i] = b - a
		s[i] = a + (d[i] >> 1)
	}
	if len(v)%2 == 1 {
		s[n] = v[len(v)-1]
	}
	copy(v[:sLen], s)
	copy(v[sLen:], d)
}

func liftInverse(v []int32) {
	n := len(v) / 2
	if n == 0 {
		return
	}
	sLen := n + len(v)%2
	out := make([]int32, len(v))
	for i := 0; i < n; i++ {
		s, d := v[i], v[sLen+i]
		a := s - (d >> 1)
		b := a + d
		out[2*i], out[2*i+1] = a, b
	}
	if len(v)%2 == 1 {
		out[len(v)-1] = v[n]
	}
	copy(v, out)
}
