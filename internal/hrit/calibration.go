package hrit

import (
	"fmt"

	"repro/internal/array"
)

// Calibration converts raw 10-bit detector counts to brightness
// temperatures in kelvin and back, the step the paper describes as "the
// input of these two bands is subsequently transformed into temperature
// values". The mapping is affine per channel, covering the physically
// plausible temperature span of each SEVIRI IR band.
type Calibration struct {
	Channel string
	// T = Offset + Slope * count
	Offset, Slope float64
}

// Channel names used throughout the service.
const (
	ChannelIR039 = "IR_039" // 3.9 µm — fire-sensitive band
	ChannelIR108 = "IR_108" // 10.8 µm — thermal background band
)

var calibrations = map[string]Calibration{
	// 3.9 µm saturates high for fires: span 170..450 K over 1024 counts.
	ChannelIR039: {Channel: ChannelIR039, Offset: 170, Slope: (450.0 - 170.0) / 1023.0},
	// 10.8 µm: span 170..340 K.
	ChannelIR108: {Channel: ChannelIR108, Offset: 170, Slope: (340.0 - 170.0) / 1023.0},
}

// CalibrationFor returns the channel's calibration.
func CalibrationFor(channel string) (Calibration, error) {
	c, ok := calibrations[channel]
	if !ok {
		return Calibration{}, fmt.Errorf("hrit: no calibration for channel %q", channel)
	}
	return c, nil
}

// CountToTemp converts one count to kelvin.
func (c Calibration) CountToTemp(count uint16) float64 {
	return c.Offset + c.Slope*float64(count)
}

// TempToCount converts kelvin to the nearest representable count,
// clamping to the channel's span.
func (c Calibration) TempToCount(t float64) uint16 {
	v := (t - c.Offset) / c.Slope
	if v < 0 {
		return 0
	}
	if v > 1023 {
		return 1023
	}
	return uint16(v + 0.5)
}

// CalibrateArray converts an array of raw counts into temperatures.
func (c Calibration) CalibrateArray(counts *array.Dense) *array.Dense {
	return counts.Map(func(v float64) float64 { return c.Offset + c.Slope*v })
}
