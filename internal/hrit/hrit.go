// Package hrit implements a faithful-in-spirit codec for the HRIT/LRIT
// segment files the MSG ground station emits (CGMS 03 "LRIT/HRIT Global
// Specification" structure): a sequence of typed header records followed
// by a 10-bit-packed image data field, optionally compressed with a
// lossless integer wavelet (Haar lifting) stage — the "wavelet compressed
// images" of the paper's Section 2. One SEVIRI acquisition is split into
// several segments that may arrive out of order; Assemble reassembles
// them into the full image array.
package hrit

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"sort"
	"time"

	"repro/internal/array"
)

// Header record types, following the CGMS numbering where applicable.
const (
	headerPrimary    = 0
	headerImageStruc = 1
	headerImageNav   = 2
	headerTimestamp  = 5
	headerAnnotation = 4
)

const fileMagic = uint16(0xAE17)

// SegmentHeader carries the metadata of one HRIT segment file. The
// SEVIRI Monitor's first job in the paper is extracting exactly this
// metadata into a catalog, because "one image comprises multiple raw
// files, which might arrive out-of-order".
type SegmentHeader struct {
	ProductName   string // e.g. "MSG2-SEVIRI"
	Channel       string // "IR_039" or "IR_108"
	SegmentNo     int    // 1-based
	TotalSegments int
	Columns       int // full image width
	Lines         int // lines in this segment
	FirstLine     int // offset of this segment's first line in the image
	BitsPerPixel  int
	Compressed    bool
	Timestamp     time.Time // acquisition start (UTC)
}

// Segment is a decoded HRIT segment: header plus raw 10-bit counts.
type Segment struct {
	Header SegmentHeader
	// Counts holds Lines×Columns raw detector counts in row-major order,
	// each in [0, 1023].
	Counts []uint16
}

// Encode serialises a segment into the HRIT wire format.
func Encode(seg Segment) ([]byte, error) {
	h := seg.Header
	if len(seg.Counts) != h.Columns*h.Lines {
		return nil, fmt.Errorf("hrit: %d counts for %dx%d segment", len(seg.Counts), h.Columns, h.Lines)
	}
	for _, c := range seg.Counts {
		if c > 1023 {
			return nil, fmt.Errorf("hrit: count %d exceeds 10-bit range", c)
		}
	}

	var data []byte
	if h.Compressed {
		data = compressWavelet(seg.Counts, h.Columns, h.Lines)
	} else {
		data = pack10(seg.Counts)
	}

	var buf bytes.Buffer
	be := binary.BigEndian

	writeHeader := func(typ uint8, body []byte) {
		// Record: type(1) length(2 = total record length) body.
		var rec [3]byte
		rec[0] = typ
		be.PutUint16(rec[1:], uint16(3+len(body)))
		buf.Write(rec[:])
		buf.Write(body)
	}

	// Primary header (type 0): magic, file type, total header length
	// (patched below), data field length in bits.
	primary := make([]byte, 16)
	be.PutUint16(primary[0:], fileMagic)
	primary[2] = 0 // file type: image data
	be.PutUint64(primary[8:], uint64(len(data))*8)
	writeHeader(headerPrimary, primary)

	// Image structure (type 1).
	struc := make([]byte, 12)
	struc[0] = uint8(h.BitsPerPixel)
	be.PutUint16(struc[1:], uint16(h.Columns))
	be.PutUint16(struc[3:], uint16(h.Lines))
	if h.Compressed {
		struc[5] = 1
	}
	be.PutUint32(struc[6:], uint32(h.FirstLine))
	writeHeader(headerImageStruc, struc)

	// Image navigation (type 2): projection tag (geostationary).
	writeHeader(headerImageNav, []byte("GEOS(+009.5)"))

	// Annotation (type 4): product, channel, segment numbering.
	ann := fmt.Sprintf("%s|%s|%03d|%03d", h.ProductName, h.Channel, h.SegmentNo, h.TotalSegments)
	writeHeader(headerAnnotation, []byte(ann))

	// Timestamp (type 5): unix nanoseconds.
	ts := make([]byte, 8)
	be.PutUint64(ts, uint64(h.Timestamp.UTC().UnixNano()))
	writeHeader(headerTimestamp, ts)

	// Patch total header length into primary header (bytes 4:8 of body,
	// located 3 bytes into the stream).
	total := uint32(buf.Len())
	out := buf.Bytes()
	be.PutUint32(out[3+4:], total)

	return append(out, data...), nil
}

// DecodeHeader parses only the header records — the vault's metadata scan
// path, which must not pay for pixel decompression.
func DecodeHeader(raw []byte) (SegmentHeader, int, error) {
	be := binary.BigEndian
	var h SegmentHeader
	pos := 0
	totalHeader := -1
	seenPrimary := false
	for pos+3 <= len(raw) {
		typ := raw[pos]
		recLen := int(be.Uint16(raw[pos+1 : pos+3]))
		if recLen < 3 || pos+recLen > len(raw) {
			return h, 0, fmt.Errorf("hrit: corrupt header record at offset %d", pos)
		}
		body := raw[pos+3 : pos+recLen]
		switch typ {
		case headerPrimary:
			if len(body) < 16 || be.Uint16(body[0:]) != fileMagic {
				return h, 0, fmt.Errorf("hrit: bad magic")
			}
			totalHeader = int(be.Uint32(body[4:]))
			seenPrimary = true
		case headerImageStruc:
			if len(body) < 12 {
				return h, 0, fmt.Errorf("hrit: short image structure header")
			}
			h.BitsPerPixel = int(body[0])
			h.Columns = int(be.Uint16(body[1:]))
			h.Lines = int(be.Uint16(body[3:]))
			h.Compressed = body[5] == 1
			h.FirstLine = int(be.Uint32(body[6:]))
		case headerAnnotation:
			var seg, tot int
			parts := bytes.Split(body, []byte("|"))
			if len(parts) != 4 {
				return h, 0, fmt.Errorf("hrit: malformed annotation %q", body)
			}
			h.ProductName = string(parts[0])
			h.Channel = string(parts[1])
			if _, err := fmt.Sscanf(string(parts[2]), "%d", &seg); err != nil {
				return h, 0, fmt.Errorf("hrit: bad segment number %q", parts[2])
			}
			if _, err := fmt.Sscanf(string(parts[3]), "%d", &tot); err != nil {
				return h, 0, fmt.Errorf("hrit: bad segment total %q", parts[3])
			}
			h.SegmentNo, h.TotalSegments = seg, tot
		case headerTimestamp:
			if len(body) < 8 {
				return h, 0, fmt.Errorf("hrit: short timestamp header")
			}
			h.Timestamp = time.Unix(0, int64(be.Uint64(body))).UTC()
		}
		pos += recLen
		if seenPrimary && pos == totalHeader {
			break
		}
	}
	if !seenPrimary {
		return h, 0, fmt.Errorf("hrit: missing primary header")
	}
	if totalHeader < 0 || totalHeader > len(raw) {
		return h, 0, fmt.Errorf("hrit: header length %d out of range", totalHeader)
	}
	return h, totalHeader, nil
}

// Decode parses a full segment, decompressing the pixel data.
func Decode(raw []byte) (Segment, error) {
	h, headerLen, err := DecodeHeader(raw)
	if err != nil {
		return Segment{}, err
	}
	data := raw[headerLen:]
	var counts []uint16
	if h.Compressed {
		counts, err = decompressWavelet(data, h.Columns, h.Lines)
		if err != nil {
			return Segment{}, err
		}
	} else {
		counts, err = unpack10(data, h.Columns*h.Lines)
		if err != nil {
			return Segment{}, err
		}
	}
	return Segment{Header: h, Counts: counts}, nil
}

// Assemble reorders a full acquisition's segments (which may arrive in
// any order) and concatenates them into the complete image. All segments
// must share channel, timestamp, column count and total.
func Assemble(segs []Segment) (*array.Dense, error) {
	if len(segs) == 0 {
		return nil, fmt.Errorf("hrit: no segments")
	}
	ref := segs[0].Header
	if len(segs) != ref.TotalSegments {
		return nil, fmt.Errorf("hrit: %d of %d segments present", len(segs), ref.TotalSegments)
	}
	sorted := append([]Segment(nil), segs...)
	sort.Slice(sorted, func(i, j int) bool {
		return sorted[i].Header.SegmentNo < sorted[j].Header.SegmentNo
	})
	totalLines := 0
	for i, s := range sorted {
		h := s.Header
		if h.Channel != ref.Channel || !h.Timestamp.Equal(ref.Timestamp) ||
			h.Columns != ref.Columns || h.TotalSegments != ref.TotalSegments {
			return nil, fmt.Errorf("hrit: segment %d does not belong to this acquisition", h.SegmentNo)
		}
		if h.SegmentNo != i+1 {
			return nil, fmt.Errorf("hrit: missing segment %d", i+1)
		}
		totalLines += h.Lines
	}
	img := array.New(ref.Columns, totalLines)
	vals := img.Values()
	for _, s := range sorted {
		off := s.Header.FirstLine * ref.Columns
		for i, c := range s.Counts {
			vals[off+i] = float64(c)
		}
	}
	return img, nil
}

// Split divides a full image of raw counts into n segments for encoding.
func Split(counts []uint16, columns int, n int, hdr SegmentHeader) ([]Segment, error) {
	if columns <= 0 || len(counts)%columns != 0 {
		return nil, fmt.Errorf("hrit: %d counts not divisible into %d columns", len(counts), columns)
	}
	lines := len(counts) / columns
	if n <= 0 || n > lines {
		return nil, fmt.Errorf("hrit: cannot split %d lines into %d segments", lines, n)
	}
	per := (lines + n - 1) / n
	var out []Segment
	for i := 0; i < n; i++ {
		first := i * per
		last := min(first+per, lines)
		if first >= last {
			break
		}
		h := hdr
		h.SegmentNo = i + 1
		h.TotalSegments = n
		h.Columns = columns
		h.Lines = last - first
		h.FirstLine = first
		h.BitsPerPixel = 10
		out = append(out, Segment{
			Header: h,
			Counts: append([]uint16(nil), counts[first*columns:last*columns]...),
		})
	}
	// The ceil division may produce fewer real segments than requested.
	for i := range out {
		out[i].Header.TotalSegments = len(out)
	}
	return out, nil
}

// pack10 packs 10-bit values: 4 counts into 5 bytes.
func pack10(counts []uint16) []byte {
	out := make([]byte, 0, (len(counts)*10+7)/8)
	var acc uint32
	bits := 0
	for _, c := range counts {
		acc = acc<<10 | uint32(c&0x3FF)
		bits += 10
		for bits >= 8 {
			bits -= 8
			out = append(out, byte(acc>>bits))
		}
	}
	if bits > 0 {
		out = append(out, byte(acc<<(8-bits)))
	}
	return out
}

func unpack10(data []byte, n int) ([]uint16, error) {
	if len(data)*8 < n*10 {
		return nil, fmt.Errorf("hrit: %d bytes cannot hold %d 10-bit counts", len(data), n)
	}
	out := make([]uint16, n)
	var acc uint32
	bits := 0
	di := 0
	for i := 0; i < n; i++ {
		for bits < 10 {
			acc = acc<<8 | uint32(data[di])
			di++
			bits += 8
		}
		bits -= 10
		out[i] = uint16(acc>>bits) & 0x3FF
	}
	return out, nil
}
