package hrit

import (
	"math/rand"
	"testing"
	"time"
)

func testHeader() SegmentHeader {
	return SegmentHeader{
		ProductName:  "MSG2-SEVIRI",
		Channel:      ChannelIR039,
		BitsPerPixel: 10,
		Timestamp:    time.Date(2010, 8, 22, 12, 5, 0, 0, time.UTC),
	}
}

func randomCounts(n int, seed int64) []uint16 {
	r := rand.New(rand.NewSource(seed))
	out := make([]uint16, n)
	// Smooth field + noise: representative of thermal imagery.
	for i := range out {
		base := 400 + 100*((i/64)%5)
		out[i] = uint16((base + r.Intn(40)) % 1024)
	}
	return out
}

func TestPack10RoundTrip(t *testing.T) {
	for _, n := range []int{0, 1, 3, 4, 5, 64, 1000} {
		counts := randomCounts(n, int64(n))
		packed := pack10(counts)
		back, err := unpack10(packed, n)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		for i := range counts {
			if counts[i] != back[i] {
				t.Fatalf("n=%d: count %d drifted %d -> %d", n, i, counts[i], back[i])
			}
		}
	}
}

func TestUnpack10Truncated(t *testing.T) {
	if _, err := unpack10([]byte{0xFF}, 4); err == nil {
		t.Fatal("truncated data should error")
	}
}

func TestWaveletRoundTrip(t *testing.T) {
	for _, dims := range [][2]int{{8, 8}, {7, 5}, {1, 9}, {16, 3}, {64, 64}} {
		w, h := dims[0], dims[1]
		counts := randomCounts(w*h, int64(w*100+h))
		data := compressWavelet(counts, w, h)
		back, err := decompressWavelet(data, w, h)
		if err != nil {
			t.Fatalf("%dx%d: %v", w, h, err)
		}
		for i := range counts {
			if counts[i] != back[i] {
				t.Fatalf("%dx%d: coefficient %d drifted %d -> %d", w, h, i, counts[i], back[i])
			}
		}
	}
}

func TestWaveletCompressesSmoothImagery(t *testing.T) {
	// A smooth field should compress below the packed-10-bit size.
	w, h := 64, 64
	counts := make([]uint16, w*h)
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			counts[y*w+x] = uint16(500 + x/8 + y/8)
		}
	}
	compressed := len(compressWavelet(counts, w, h))
	packed := len(pack10(counts))
	if compressed >= packed {
		t.Fatalf("wavelet (%d bytes) not smaller than packed (%d bytes)", compressed, packed)
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	for _, compressed := range []bool{false, true} {
		h := testHeader()
		h.Columns = 32
		h.Lines = 16
		h.SegmentNo = 2
		h.TotalSegments = 4
		h.FirstLine = 16
		h.Compressed = compressed
		seg := Segment{Header: h, Counts: randomCounts(32*16, 77)}
		raw, err := Encode(seg)
		if err != nil {
			t.Fatal(err)
		}
		back, err := Decode(raw)
		if err != nil {
			t.Fatal(err)
		}
		if back.Header != h {
			t.Fatalf("header drifted:\n%+v\n%+v", back.Header, h)
		}
		for i := range seg.Counts {
			if seg.Counts[i] != back.Counts[i] {
				t.Fatalf("count %d drifted", i)
			}
		}
	}
}

func TestDecodeHeaderOnly(t *testing.T) {
	h := testHeader()
	h.Columns = 16
	h.Lines = 8
	h.SegmentNo = 1
	h.TotalSegments = 1
	seg := Segment{Header: h, Counts: randomCounts(16*8, 3)}
	raw, err := Encode(seg)
	if err != nil {
		t.Fatal(err)
	}
	got, headerLen, err := DecodeHeader(raw)
	if err != nil {
		t.Fatal(err)
	}
	if got.Channel != ChannelIR039 || got.Columns != 16 || got.Lines != 8 {
		t.Fatalf("header = %+v", got)
	}
	if headerLen <= 0 || headerLen >= len(raw) {
		t.Fatalf("headerLen = %d of %d", headerLen, len(raw))
	}
	if !got.Timestamp.Equal(h.Timestamp) {
		t.Fatalf("timestamp = %v", got.Timestamp)
	}
}

func TestDecodeRejectsGarbage(t *testing.T) {
	for _, raw := range [][]byte{
		nil,
		{1, 2},
		{0, 0, 19, 0xFF, 0xFF, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0}, // wrong magic
	} {
		if _, err := Decode(raw); err == nil {
			t.Fatalf("garbage %v decoded", raw)
		}
	}
}

func TestEncodeValidatesCounts(t *testing.T) {
	h := testHeader()
	h.Columns, h.Lines = 2, 1
	if _, err := Encode(Segment{Header: h, Counts: []uint16{1}}); err == nil {
		t.Fatal("short counts should fail")
	}
	if _, err := Encode(Segment{Header: h, Counts: []uint16{1, 2000}}); err == nil {
		t.Fatal("11-bit count should fail")
	}
}

func TestSplitAssembleRoundTrip(t *testing.T) {
	w, lines := 24, 30
	counts := randomCounts(w*lines, 11)
	segs, err := Split(counts, w, 4, testHeader())
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) != 4 {
		t.Fatalf("split into %d segments", len(segs))
	}
	// Shuffle to simulate out-of-order arrival.
	shuffled := []Segment{segs[2], segs[0], segs[3], segs[1]}
	img, err := Assemble(shuffled)
	if err != nil {
		t.Fatal(err)
	}
	if img.Width() != w || img.Height() != lines {
		t.Fatalf("assembled dims %dx%d", img.Width(), img.Height())
	}
	for y := 0; y < lines; y++ {
		for x := 0; x < w; x++ {
			if img.Get(x, y) != float64(counts[y*w+x]) {
				t.Fatalf("cell (%d,%d) drifted", x, y)
			}
		}
	}
}

func TestAssembleDetectsMissingSegment(t *testing.T) {
	counts := randomCounts(24*30, 12)
	segs, _ := Split(counts, 24, 3, testHeader())
	if _, err := Assemble(segs[:2]); err == nil {
		t.Fatal("missing segment should fail")
	}
	// Mixing acquisitions fails.
	other, _ := Split(counts, 24, 3, func() SegmentHeader {
		h := testHeader()
		h.Timestamp = h.Timestamp.Add(5 * time.Minute)
		return h
	}())
	if _, err := Assemble([]Segment{segs[0], segs[1], other[2]}); err == nil {
		t.Fatal("mixed acquisitions should fail")
	}
}

func TestSplitValidation(t *testing.T) {
	if _, err := Split(make([]uint16, 10), 3, 1, testHeader()); err == nil {
		t.Fatal("non-divisible counts should fail")
	}
	if _, err := Split(make([]uint16, 12), 4, 9, testHeader()); err == nil {
		t.Fatal("more segments than lines should fail")
	}
}

func TestCalibrationRoundTrip(t *testing.T) {
	for _, ch := range []string{ChannelIR039, ChannelIR108} {
		cal, err := CalibrationFor(ch)
		if err != nil {
			t.Fatal(err)
		}
		for _, temp := range []float64{200, 250, 300, 330} {
			count := cal.TempToCount(temp)
			back := cal.CountToTemp(count)
			if diff := back - temp; diff > cal.Slope || diff < -cal.Slope {
				t.Fatalf("%s: %g K -> %d -> %g K", ch, temp, count, back)
			}
		}
		// Clamping.
		if cal.TempToCount(-100) != 0 || cal.TempToCount(10000) != 1023 {
			t.Fatal("clamping broken")
		}
	}
	if _, err := CalibrationFor("VIS_006"); err == nil {
		t.Fatal("unknown channel should fail")
	}
}

func TestCalibrationFireRange(t *testing.T) {
	// The 3.9 µm band must represent both 290 K background and >340 K
	// fire pixels distinguishably.
	cal, _ := CalibrationFor(ChannelIR039)
	bg := cal.TempToCount(290)
	fire := cal.TempToCount(340)
	if fire-bg < 100 {
		t.Fatalf("insufficient dynamic range: %d vs %d", bg, fire)
	}
}
