// Package georef implements the georeferencing step of the processing
// chain: mapping raw geostationary scan coordinates onto a regular
// geographic grid with a pre-calculated second-degree polynomial
// transform, exactly as the paper describes ("resamples the image into a
// slightly larger size and applies a two degree polynomial in order to
// map pixels of the old image to the pixels of the new image. The
// coefficients of the polynomial as well as the target image dimensions
// are all precalculated.").
package georef

import (
	"fmt"
	"math"

	"repro/internal/array"
)

// Poly2 is a bivariate polynomial of total degree two:
// f(u, v) = C0 + C1·u + C2·v + C3·u² + C4·u·v + C5·v².
type Poly2 [6]float64

// Eval evaluates the polynomial.
func (p Poly2) Eval(u, v float64) float64 {
	return p[0] + p[1]*u + p[2]*v + p[3]*u*u + p[4]*u*v + p[5]*v*v
}

// Transform maps destination grid pixels back to source image pixels
// (the inverse mapping used for resampling) with one polynomial per
// source axis, plus the destination grid geometry.
type Transform struct {
	// SrcX and SrcY give source pixel coordinates from destination pixel
	// coordinates.
	SrcX, SrcY Poly2
	// DstWidth/DstHeight are the target grid dimensions.
	DstWidth, DstHeight int
	// Geographic anchoring of the destination grid: pixel (0,0) centre is
	// (LonMin, LatMax); lon grows with +x, lat shrinks with +y.
	LonMin, LatMax float64
	LonStep        float64 // degrees per destination pixel in x
	LatStep        float64 // degrees per destination pixel in y (positive)
}

// PixelToGeo returns the geographic centre of a destination pixel.
func (t Transform) PixelToGeo(x, y int) (lon, lat float64) {
	return t.LonMin + (float64(x)+0.5)*t.LonStep, t.LatMax - (float64(y)+0.5)*t.LatStep
}

// GeoToPixel returns the destination pixel containing a location.
func (t Transform) GeoToPixel(lon, lat float64) (x, y int) {
	return int((lon - t.LonMin) / t.LonStep), int((t.LatMax - lat) / t.LatStep)
}

// Apply resamples a source image onto the destination grid with bilinear
// interpolation. Destination cells mapping outside the source become
// invalid.
func (t Transform) Apply(src *array.Dense) *array.Dense {
	return src.Resample(t.DstWidth, t.DstHeight, func(dx, dy int) (float64, float64) {
		u, v := float64(dx), float64(dy)
		return t.SrcX.Eval(u, v), t.SrcY.Eval(u, v)
	})
}

// ControlPoint ties a destination pixel to its known source position;
// used to fit the polynomial coefficients ("calculated by hand" once in
// the paper, refit when the satellite drifts).
type ControlPoint struct {
	DstX, DstY float64 // destination pixel
	SrcX, SrcY float64 // corresponding source pixel
}

// Fit estimates the two polynomials from at least six control points by
// linear least squares (normal equations on the monomial basis).
func Fit(points []ControlPoint) (sx, sy Poly2, err error) {
	if len(points) < 6 {
		return sx, sy, fmt.Errorf("georef: need >= 6 control points, got %d", len(points))
	}
	basis := func(u, v float64) [6]float64 {
		return [6]float64{1, u, v, u * u, u * v, v * v}
	}
	// Normal equations: A^T A c = A^T b, shared A for both axes.
	var ata [6][6]float64
	var atbX, atbY [6]float64
	for _, p := range points {
		b := basis(p.DstX, p.DstY)
		for i := 0; i < 6; i++ {
			for j := 0; j < 6; j++ {
				ata[i][j] += b[i] * b[j]
			}
			atbX[i] += b[i] * p.SrcX
			atbY[i] += b[i] * p.SrcY
		}
	}
	cx, err := solve6(ata, atbX)
	if err != nil {
		return sx, sy, err
	}
	cy, err := solve6(ata, atbY)
	if err != nil {
		return sx, sy, err
	}
	return cx, cy, nil
}

// solve6 solves a 6×6 linear system with partial-pivot Gaussian
// elimination.
func solve6(a [6][6]float64, b [6]float64) (Poly2, error) {
	const n = 6
	// Augment.
	var m [n][n + 1]float64
	for i := 0; i < n; i++ {
		copy(m[i][:n], a[i][:])
		m[i][n] = b[i]
	}
	for col := 0; col < n; col++ {
		// Pivot.
		piv := col
		for r := col + 1; r < n; r++ {
			if math.Abs(m[r][col]) > math.Abs(m[piv][col]) {
				piv = r
			}
		}
		if math.Abs(m[piv][col]) < 1e-12 {
			return Poly2{}, fmt.Errorf("georef: degenerate control point configuration")
		}
		m[col], m[piv] = m[piv], m[col]
		// Eliminate.
		for r := 0; r < n; r++ {
			if r == col {
				continue
			}
			f := m[r][col] / m[col][col]
			for c := col; c <= n; c++ {
				m[r][c] -= f * m[col][c]
			}
		}
	}
	var out Poly2
	for i := 0; i < n; i++ {
		out[i] = m[i][n] / m[i][i]
	}
	return out, nil
}

// ResidualRMS reports the fit quality over the control points (pixels).
func ResidualRMS(points []ControlPoint, sx, sy Poly2) float64 {
	var sum float64
	for _, p := range points {
		dx := sx.Eval(p.DstX, p.DstY) - p.SrcX
		dy := sy.Eval(p.DstX, p.DstY) - p.SrcY
		sum += dx*dx + dy*dy
	}
	return math.Sqrt(sum / float64(len(points)))
}
