package georef

import (
	"math"
	"testing"

	"repro/internal/array"
)

func TestPolyEval(t *testing.T) {
	p := Poly2{1, 2, 3, 0.5, 0.25, 0.125}
	got := p.Eval(2, 4)
	want := 1 + 2*2 + 3*4 + 0.5*4 + 0.25*8 + 0.125*16
	if math.Abs(got-want) > 1e-12 {
		t.Fatalf("eval = %g, want %g", got, want)
	}
}

func TestFitRecoversPolynomial(t *testing.T) {
	truthX := Poly2{5, 1.01, 0.02, 0.0001, 0.00005, 0}
	truthY := Poly2{3, -0.01, 0.99, 0, 0.00002, 0.0001}
	var pts []ControlPoint
	for i := 0; i < 5; i++ {
		for j := 0; j < 5; j++ {
			dx, dy := float64(i*20), float64(j*20)
			pts = append(pts, ControlPoint{
				DstX: dx, DstY: dy,
				SrcX: truthX.Eval(dx, dy),
				SrcY: truthY.Eval(dx, dy),
			})
		}
	}
	sx, sy, err := Fit(pts)
	if err != nil {
		t.Fatal(err)
	}
	for i := range truthX {
		if math.Abs(sx[i]-truthX[i]) > 1e-6 || math.Abs(sy[i]-truthY[i]) > 1e-6 {
			t.Fatalf("coefficient %d drifted: %g vs %g / %g vs %g", i, sx[i], truthX[i], sy[i], truthY[i])
		}
	}
	if rms := ResidualRMS(pts, sx, sy); rms > 1e-6 {
		t.Fatalf("residual RMS = %g", rms)
	}
}

func TestFitValidation(t *testing.T) {
	if _, _, err := Fit(nil); err == nil {
		t.Fatal("no control points should fail")
	}
	// Collinear points: degenerate normal equations.
	var pts []ControlPoint
	for i := 0; i < 8; i++ {
		pts = append(pts, ControlPoint{DstX: float64(i), DstY: 0, SrcX: float64(i), SrcY: 0})
	}
	if _, _, err := Fit(pts); err == nil {
		t.Fatal("collinear control points should fail")
	}
}

func TestTransformGeoPixel(t *testing.T) {
	tr := Transform{
		DstWidth: 100, DstHeight: 80,
		LonMin: 20, LatMax: 40, LonStep: 0.04, LatStep: 0.04,
	}
	lon, lat := tr.PixelToGeo(0, 0)
	if math.Abs(lon-20.02) > 1e-9 || math.Abs(lat-39.98) > 1e-9 {
		t.Fatalf("pixel(0,0) at (%g,%g)", lon, lat)
	}
	x, y := tr.GeoToPixel(lon, lat)
	if x != 0 || y != 0 {
		t.Fatalf("roundtrip pixel = (%d,%d)", x, y)
	}
	x, y = tr.GeoToPixel(21.0, 39.0)
	lon2, lat2 := tr.PixelToGeo(x, y)
	if math.Abs(lon2-21.0) > tr.LonStep || math.Abs(lat2-39.0) > tr.LatStep {
		t.Fatalf("pixel centre (%g,%g) too far from (21,39)", lon2, lat2)
	}
}

func TestApplyIdentityTransform(t *testing.T) {
	src := array.New(20, 20)
	for y := 0; y < 20; y++ {
		for x := 0; x < 20; x++ {
			src.Set(x, y, float64(x*100+y))
		}
	}
	tr := Transform{
		SrcX:     Poly2{0, 1, 0, 0, 0, 0},
		SrcY:     Poly2{0, 0, 1, 0, 0, 0},
		DstWidth: 20, DstHeight: 20,
	}
	out := tr.Apply(src)
	for y := 1; y < 18; y++ {
		for x := 1; x < 18; x++ {
			if math.Abs(out.Get(x, y)-src.Get(x, y)) > 1e-9 {
				t.Fatalf("identity warp changed (%d,%d)", x, y)
			}
		}
	}
}

func TestApplyShiftTransform(t *testing.T) {
	src := array.New(20, 20)
	for y := 0; y < 20; y++ {
		for x := 0; x < 20; x++ {
			src.Set(x, y, float64(x))
		}
	}
	tr := Transform{
		SrcX:     Poly2{2, 1, 0, 0, 0, 0}, // dst x maps to src x+2
		SrcY:     Poly2{0, 0, 1, 0, 0, 0},
		DstWidth: 15, DstHeight: 15,
	}
	out := tr.Apply(src)
	if got := out.Get(5, 5); math.Abs(got-7) > 1e-9 {
		t.Fatalf("shifted value = %g, want 7", got)
	}
}
