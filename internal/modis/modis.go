// Package modis simulates the MODIS fire products used as the reference
// in the paper's thematic-accuracy protocol (Table 1): the Terra and Aqua
// platforms overpass the region twice a day each (the paper: Aqua at
// 00:30 and 11:30, Terra at 09:30 and 20:30 local), and FIRMS-style
// hotspot points are derived at 1 km resolution from the same ground
// truth the SEVIRI simulator renders. Being 16× finer than MSG pixels,
// MODIS resolves small fires that MSG misses — the omission-error source
// — while seeing none of the glint/smoke artifacts that MSG turns into
// false alarms.
package modis

import (
	"fmt"
	"math"
	"time"

	"repro/internal/geom"
	"repro/internal/seviri"
)

// PixelKm is the MODIS fire-product resolution (the paper's "1 km pixel
// size of MODIS").
const PixelKm = 1.0

// Overpass is one platform pass over the region.
type Overpass struct {
	Platform string // "Terra" / "Aqua"
	Time     time.Time
}

// Hotspot is one FIRMS-style fire detection point.
type Hotspot struct {
	Platform string
	Time     time.Time
	Location geom.Point
	// FRP is a fire-radiative-power-like intensity score.
	FRP float64
}

// DailyOverpasses returns the four passes of a UTC day, using the
// paper's local times (EEST = UTC+3 in August).
func DailyOverpasses(day time.Time) []Overpass {
	day = day.Truncate(24 * time.Hour)
	local := func(h, m int) time.Time {
		return day.Add(time.Duration(h)*time.Hour + time.Duration(m)*time.Minute).
			Add(-3 * time.Hour) // local -> UTC
	}
	return []Overpass{
		{Platform: "Aqua", Time: local(0, 30)},
		{Platform: "Terra", Time: local(9, 30)},
		{Platform: "Aqua", Time: local(11, 30)},
		{Platform: "Terra", Time: local(20, 30)},
	}
}

// OverpassesFor lists every overpass within [start, start+days).
func OverpassesFor(start time.Time, days int) []Overpass {
	var out []Overpass
	for d := 0; d < days; d++ {
		out = append(out, DailyOverpasses(start.Add(time.Duration(d)*24*time.Hour))...)
	}
	return out
}

// Detect renders the MODIS hotspot points of one overpass from a
// scenario's ground truth: every 1 km pixel whose fire coverage exceeds
// the detection threshold yields a point at the pixel centre.
func Detect(sc *seviri.Scenario, op Overpass) []Hotspot {
	var out []Hotspot
	active := sc.ActiveAt(op.Time)
	const stepLon = PixelKm / seviri.KmPerDegLon
	const stepLat = PixelKm / seviri.KmPerDegLat
	n := 0
	for _, f := range active {
		// Scan the 1 km grid cells covering the fire disk.
		radDegLon := f.RadiusKm / seviri.KmPerDegLon
		radDegLat := f.RadiusKm / seviri.KmPerDegLat
		x0 := math.Floor((f.Event.Center.X-radDegLon)/stepLon) * stepLon
		y0 := math.Floor((f.Event.Center.Y-radDegLat)/stepLat) * stepLat
		for y := y0; y <= f.Event.Center.Y+radDegLat+stepLat; y += stepLat {
			for x := x0; x <= f.Event.Center.X+radDegLon+stepLon; x += stepLon {
				centre := geom.Point{X: x + stepLon/2, Y: y + stepLat/2}
				frac := fireFraction(centre, f)
				// MODIS detects from ~10% pixel coverage at 1 km.
				if frac < 0.1 {
					continue
				}
				n++
				out = append(out, Hotspot{
					Platform: op.Platform,
					Time:     op.Time,
					Location: centre,
					FRP:      f.Event.Intensity * frac,
				})
			}
		}
	}
	_ = n
	return dedup(out)
}

func fireFraction(pix geom.Point, f seviri.ActiveFire) float64 {
	dx := (pix.X - f.Event.Center.X) * seviri.KmPerDegLon
	dy := (pix.Y - f.Event.Center.Y) * seviri.KmPerDegLat
	d := math.Hypot(dx, dy)
	switch {
	case d <= f.RadiusKm-PixelKm/2:
		return 1
	case d >= f.RadiusKm+PixelKm/2:
		return 0
	default:
		return (f.RadiusKm + PixelKm/2 - d) / PixelKm
	}
}

func dedup(hs []Hotspot) []Hotspot {
	seen := make(map[string]bool, len(hs))
	out := hs[:0]
	for _, h := range hs {
		k := fmt.Sprintf("%.4f|%.4f|%d", h.Location.X, h.Location.Y, h.Time.Unix())
		if !seen[k] {
			seen[k] = true
			out = append(out, h)
		}
	}
	return out
}

// DetectAll runs Detect over every overpass of a window and returns the
// per-overpass results keyed by overpass time.
func DetectAll(sc *seviri.Scenario, start time.Time, days int) map[time.Time][]Hotspot {
	out := make(map[time.Time][]Hotspot)
	for _, op := range OverpassesFor(start, days) {
		out[op.Time] = append(out[op.Time], Detect(sc, op)...)
	}
	return out
}
