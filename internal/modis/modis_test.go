package modis

import (
	"math/rand"
	"testing"
	"time"

	"repro/internal/auxdata"
	"repro/internal/seviri"
)

func testScenario() *seviri.Scenario {
	w := auxdata.Generate(42)
	cfg := seviri.DefaultScenarioConfig()
	cfg.Days = 1
	cfg.FiresPerDay = 6
	return seviri.GenerateScenario(w, 43, cfg)
}

func TestDailyOverpasses(t *testing.T) {
	day := time.Date(2007, 8, 24, 0, 0, 0, 0, time.UTC)
	ops := DailyOverpasses(day)
	if len(ops) != 4 {
		t.Fatalf("overpasses = %d", len(ops))
	}
	platforms := map[string]int{}
	for _, op := range ops {
		platforms[op.Platform]++
	}
	if platforms["Terra"] != 2 || platforms["Aqua"] != 2 {
		t.Fatalf("platform mix = %v", platforms)
	}
	all := OverpassesFor(day, 3)
	if len(all) != 12 {
		t.Fatalf("3-day overpasses = %d", len(all))
	}
}

func TestDetectSeesActiveFires(t *testing.T) {
	sc := testScenario()
	// Find an afternoon overpass during which at least one decent fire burns.
	found := false
	for _, op := range OverpassesFor(time.Date(2007, 8, 24, 0, 0, 0, 0, time.UTC), 1) {
		active := sc.ActiveAt(op.Time)
		bigActive := 0
		for _, f := range active {
			if f.RadiusKm > 1 {
				bigActive++
			}
		}
		hs := Detect(sc, op)
		if bigActive > 0 {
			found = true
			if len(hs) == 0 {
				t.Fatalf("overpass %v: %d big fires active but no MODIS detections", op.Time, bigActive)
			}
		}
		if bigActive == 0 && len(active) == 0 && len(hs) != 0 {
			t.Fatalf("overpass %v: no fires but %d detections", op.Time, len(hs))
		}
	}
	if !found {
		t.Skip("no overpass coincided with a big fire in this seed")
	}
}

func TestDetectResolvesSmallFires(t *testing.T) {
	// A 0.6 km fire covers a meaningful share of 1 km MODIS pixels but a
	// tiny share of 4 km MSG pixels.
	w := auxdata.Generate(42)
	cfg := seviri.DefaultScenarioConfig()
	cfg.Days = 1
	cfg.FiresPerDay = 0
	sc := seviri.GenerateScenario(w, 7, cfg)
	p, ok := w.RandomForestPoint(rand.New(rand.NewSource(7)))
	if !ok {
		t.Skip("no forest point")
	}
	start := time.Date(2007, 8, 24, 9, 0, 0, 0, time.UTC)
	sc.Fires = append(sc.Fires, seviri.FireEvent{
		ID: 1, Center: p,
		Start: start, End: start.Add(6 * time.Hour),
		PeakRadiusKm: 0.6, Intensity: 20,
	})
	op := Overpass{Platform: "Terra", Time: start.Add(3 * time.Hour)}
	hs := Detect(sc, op)
	if len(hs) == 0 {
		t.Fatal("MODIS should resolve a 0.6 km fire")
	}
	for _, h := range hs {
		d := h.Location.DistanceTo(p)
		if d > 0.05 {
			t.Fatalf("detection %v too far from fire %v", h.Location, p)
		}
		if h.FRP <= 0 {
			t.Fatal("non-positive FRP")
		}
	}
}

func TestDetectAllGroupsByOverpass(t *testing.T) {
	sc := testScenario()
	byOp := DetectAll(sc, time.Date(2007, 8, 24, 0, 0, 0, 0, time.UTC), 1)
	if len(byOp) != 4 {
		t.Fatalf("overpass groups = %d", len(byOp))
	}
}
