package stsparql

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/rdf"
)

// Parse parses an stSPARQL query or update request. The namespace table
// provides prefix bindings in addition to any PREFIX declarations in the
// request itself; pass nil for the default TELEIOS namespaces.
func Parse(src string, ns *rdf.Namespaces) (*Query, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	if ns == nil {
		ns = rdf.NewNamespaces()
	}
	p := &parser{toks: toks, ns: ns}
	q, err := p.parseQuery()
	if err != nil {
		return nil, err
	}
	if !p.atEOF() {
		return nil, p.errf("trailing tokens after query")
	}
	return q, nil
}

type parser struct {
	toks []token
	pos  int
	ns   *rdf.Namespaces
}

func (p *parser) cur() token { return p.toks[p.pos] }

func (p *parser) atEOF() bool { return p.cur().kind == tokEOF }

func (p *parser) advance() token {
	t := p.toks[p.pos]
	if t.kind != tokEOF {
		p.pos++
	}
	return t
}

func (p *parser) errf(format string, args ...any) error {
	return fmt.Errorf("stsparql: line %d: %s (near %q)", p.cur().line,
		fmt.Sprintf(format, args...), p.cur().text)
}

// isKeyword reports whether the current token is the given keyword
// (case-insensitive).
func (p *parser) isKeyword(kw string) bool {
	t := p.cur()
	return t.kind == tokWord && strings.EqualFold(t.text, kw)
}

func (p *parser) acceptKeyword(kw string) bool {
	if p.isKeyword(kw) {
		p.advance()
		return true
	}
	return false
}

func (p *parser) expectKeyword(kw string) error {
	if !p.acceptKeyword(kw) {
		return p.errf("expected %s", kw)
	}
	return nil
}

func (p *parser) isPunct(s string) bool {
	t := p.cur()
	return t.kind == tokPunct && t.text == s
}

func (p *parser) acceptPunct(s string) bool {
	if p.isPunct(s) {
		p.advance()
		return true
	}
	return false
}

func (p *parser) expectPunct(s string) error {
	if !p.acceptPunct(s) {
		return p.errf("expected %q", s)
	}
	return nil
}

func (p *parser) parseQuery() (*Query, error) {
	// Prologue.
	for p.isKeyword("PREFIX") {
		p.advance()
		name := p.advance()
		if name.kind != tokWord || !strings.HasSuffix(name.text, ":") {
			return nil, p.errf("PREFIX wants 'name:'")
		}
		iri := p.advance()
		if iri.kind != tokIRI {
			return nil, p.errf("PREFIX wants an IRI")
		}
		p.ns.Bind(strings.TrimSuffix(name.text, ":"), iri.text)
	}
	switch {
	case p.isKeyword("SELECT"):
		sel, err := p.parseSelect()
		if err != nil {
			return nil, err
		}
		return &Query{Select: sel}, nil
	case p.isKeyword("ASK"):
		p.advance()
		p.acceptKeyword("WHERE")
		gp, err := p.parseGroupPattern()
		if err != nil {
			return nil, err
		}
		return &Query{Ask: &AskQuery{Where: gp}}, nil
	case p.isKeyword("DELETE") || p.isKeyword("INSERT"):
		up, err := p.parseUpdate()
		if err != nil {
			return nil, err
		}
		return &Query{Update: up}, nil
	default:
		return nil, p.errf("expected SELECT, ASK, DELETE or INSERT")
	}
}

func (p *parser) parseSelect() (*SelectQuery, error) {
	if err := p.expectKeyword("SELECT"); err != nil {
		return nil, err
	}
	q := &SelectQuery{Limit: -1}
	if p.acceptKeyword("DISTINCT") {
		q.Distinct = true
	} else {
		p.acceptKeyword("REDUCED")
	}
	// Projection.
	if p.cur().kind == tokOp && p.cur().text == "*" {
		p.advance()
		q.Star = true
	} else {
		for {
			switch {
			case p.cur().kind == tokVar:
				q.Projection = append(q.Projection, SelectItem{Var: p.advance().text})
			case p.isPunct("("):
				p.advance()
				e, err := p.parseExpr()
				if err != nil {
					return nil, err
				}
				if err := p.expectKeyword("AS"); err != nil {
					return nil, err
				}
				if p.cur().kind != tokVar {
					return nil, p.errf("AS wants a variable")
				}
				v := p.advance().text
				if err := p.expectPunct(")"); err != nil {
					return nil, err
				}
				q.Projection = append(q.Projection, SelectItem{Var: v, Expr: e})
			default:
				if len(q.Projection) == 0 {
					return nil, p.errf("SELECT wants at least one projection")
				}
				goto projDone
			}
		}
	}
projDone:
	p.acceptKeyword("WHERE")
	gp, err := p.parseGroupPattern()
	if err != nil {
		return nil, err
	}
	q.Where = gp

	// Solution modifiers.
	if p.acceptKeyword("GROUP") {
		if err := p.expectKeyword("BY"); err != nil {
			return nil, err
		}
		for {
			e, err := p.parseGroupByKey()
			if err != nil {
				return nil, err
			}
			q.GroupBy = append(q.GroupBy, e)
			if p.cur().kind == tokVar || p.isPunct("(") {
				continue
			}
			break
		}
	}
	if p.acceptKeyword("HAVING") {
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			q.Having = append(q.Having, e)
			if p.isPunct("(") || p.cur().kind == tokVar {
				continue
			}
			break
		}
	}
	if p.acceptKeyword("ORDER") {
		if err := p.expectKeyword("BY"); err != nil {
			return nil, err
		}
		for {
			var key OrderKey
			switch {
			case p.acceptKeyword("ASC"):
				if err := p.expectPunct("("); err != nil {
					return nil, err
				}
				e, err := p.parseExpr()
				if err != nil {
					return nil, err
				}
				if err := p.expectPunct(")"); err != nil {
					return nil, err
				}
				key = OrderKey{Expr: e}
			case p.acceptKeyword("DESC"):
				if err := p.expectPunct("("); err != nil {
					return nil, err
				}
				e, err := p.parseExpr()
				if err != nil {
					return nil, err
				}
				if err := p.expectPunct(")"); err != nil {
					return nil, err
				}
				key = OrderKey{Expr: e, Desc: true}
			case p.cur().kind == tokVar:
				key = OrderKey{Expr: &VarExpr{Name: p.advance().text}}
			default:
				goto orderDone
			}
			q.OrderBy = append(q.OrderBy, key)
		}
	}
orderDone:
	// SPARQL allows LIMIT and OFFSET in either order, but at most one of
	// each.
	sawLimit, sawOffset := false, false
	for {
		switch {
		case p.acceptKeyword("LIMIT"):
			if sawLimit {
				return nil, p.errf("duplicate LIMIT clause")
			}
			sawLimit = true
			n, err := p.parseInt()
			if err != nil {
				return nil, err
			}
			q.Limit = n
		case p.acceptKeyword("OFFSET"):
			if sawOffset {
				return nil, p.errf("duplicate OFFSET clause")
			}
			sawOffset = true
			n, err := p.parseInt()
			if err != nil {
				return nil, err
			}
			q.Offset = n
		default:
			return q, nil
		}
	}
}

// parseGroupByKey accepts "?v" or "(expr)" or "(expr AS ?v)".
func (p *parser) parseGroupByKey() (Expr, error) {
	if p.cur().kind == tokVar {
		return &VarExpr{Name: p.advance().text}, nil
	}
	if p.acceptPunct("(") {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if err := p.expectPunct(")"); err != nil {
			return nil, err
		}
		return e, nil
	}
	return nil, p.errf("GROUP BY wants a variable or parenthesised expression")
}

func (p *parser) parseInt() (int, error) {
	t := p.advance()
	if t.kind != tokNumber {
		return 0, p.errf("expected integer")
	}
	n, err := strconv.Atoi(t.text)
	if err != nil {
		return 0, p.errf("bad integer %q", t.text)
	}
	return n, nil
}

func (p *parser) parseUpdate() (*UpdateQuery, error) {
	up := &UpdateQuery{}
	dataForm := false
	deleteWhereShorthand := false
	if p.acceptKeyword("DELETE") {
		switch {
		case p.acceptKeyword("DATA"):
			dataForm = true
			tpl, err := p.parseTemplate()
			if err != nil {
				return nil, err
			}
			up.Delete = tpl
		case p.isKeyword("WHERE"):
			deleteWhereShorthand = true
		default:
			tpl, err := p.parseTemplate()
			if err != nil {
				return nil, err
			}
			up.Delete = tpl
		}
	}
	if p.acceptKeyword("INSERT") {
		if p.acceptKeyword("DATA") {
			dataForm = true
		}
		tpl, err := p.parseTemplate()
		if err != nil {
			return nil, err
		}
		up.Insert = tpl
	}
	if dataForm {
		return up, nil
	}
	if err := p.expectKeyword("WHERE"); err != nil {
		return nil, err
	}
	gp, err := p.parseGroupPattern()
	if err != nil {
		return nil, err
	}
	up.Where = gp
	if deleteWhereShorthand {
		// DELETE WHERE { pattern }: the pattern doubles as the template.
		up.Delete = collectPatterns(gp)
	}
	return up, nil
}

func collectPatterns(gp *GroupPattern) []TriplePattern {
	var out []TriplePattern
	for _, el := range gp.Elements {
		switch v := el.(type) {
		case *BGPElement:
			out = append(out, v.Patterns...)
		case *GroupPattern:
			out = append(out, collectPatterns(v)...)
		}
	}
	return out
}

// parseTemplate parses "{ triples }" allowing variables everywhere.
func (p *parser) parseTemplate() ([]TriplePattern, error) {
	if err := p.expectPunct("{"); err != nil {
		return nil, err
	}
	var out []TriplePattern
	for !p.isPunct("}") {
		pats, err := p.parseTriplesStatement()
		if err != nil {
			return nil, err
		}
		out = append(out, pats...)
		p.acceptPunct(".")
	}
	p.advance() // consume '}'
	return out, nil
}

func (p *parser) parseGroupPattern() (*GroupPattern, error) {
	if err := p.expectPunct("{"); err != nil {
		return nil, err
	}
	gp := &GroupPattern{}
	for {
		switch {
		case p.isPunct("}"):
			p.advance()
			return gp, nil
		case p.isPunct("."):
			p.advance() // tolerate stray separators
		case p.isKeyword("FILTER"):
			p.advance()
			cond, err := p.parseFilterCondition()
			if err != nil {
				return nil, err
			}
			gp.Elements = append(gp.Elements, &FilterElement{Cond: cond})
		case p.isKeyword("OPTIONAL"):
			p.advance()
			sub, err := p.parseGroupPattern()
			if err != nil {
				return nil, err
			}
			gp.Elements = append(gp.Elements, &OptionalElement{Pattern: sub})
		case p.isKeyword("SELECT"):
			sel, err := p.parseSelect()
			if err != nil {
				return nil, err
			}
			gp.Elements = append(gp.Elements, &SubSelectElement{Select: sel})
		case p.isPunct("{"):
			first, err := p.parseGroupPattern()
			if err != nil {
				return nil, err
			}
			if p.isKeyword("UNION") {
				u := &UnionElement{Branches: []*GroupPattern{first}}
				for p.acceptKeyword("UNION") {
					br, err := p.parseGroupPattern()
					if err != nil {
						return nil, err
					}
					u.Branches = append(u.Branches, br)
				}
				gp.Elements = append(gp.Elements, u)
			} else {
				gp.Elements = append(gp.Elements, first)
			}
		case p.atEOF():
			return nil, p.errf("unterminated group pattern")
		default:
			pats, err := p.parseTriplesStatement()
			if err != nil {
				return nil, err
			}
			gp.Elements = append(gp.Elements, &BGPElement{Patterns: pats})
		}
	}
}

// parseFilterCondition accepts "FILTER (expr)" and "FILTER fn(args)".
func (p *parser) parseFilterCondition() (Expr, error) {
	if p.isPunct("(") {
		p.advance()
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if err := p.expectPunct(")"); err != nil {
			return nil, err
		}
		return e, nil
	}
	// Builtin-call form, possibly negated.
	return p.parseUnary()
}

// parseTriplesStatement parses one subject with its predicate-object list.
// It stops at '.', '}' or before a FILTER/OPTIONAL keyword that follows a
// dangling ';' (a tolerance for the paper's listings).
func (p *parser) parseTriplesStatement() ([]TriplePattern, error) {
	subj, err := p.parseTermOrVar()
	if err != nil {
		return nil, err
	}
	var out []TriplePattern
	for {
		verb, err := p.parseVerb()
		if err != nil {
			return nil, err
		}
		for {
			obj, err := p.parseTermOrVar()
			if err != nil {
				return nil, err
			}
			out = append(out, TriplePattern{S: subj, P: verb, O: obj})
			if p.acceptPunct(",") {
				continue
			}
			break
		}
		if p.acceptPunct(";") {
			// Dangling ';' before '}', '.', FILTER, OPTIONAL is tolerated.
			if p.isPunct("}") || p.isPunct(".") || p.isKeyword("FILTER") || p.isKeyword("OPTIONAL") {
				if p.isPunct(".") {
					p.advance()
				}
				return out, nil
			}
			continue
		}
		p.acceptPunct(".")
		return out, nil
	}
}

func (p *parser) parseVerb() (TermOrVar, error) {
	t := p.cur()
	if t.kind == tokWord && t.text == "a" {
		p.advance()
		return TermOrVar{Term: rdf.NewIRI(rdf.RDFType)}, nil
	}
	return p.parseTermOrVar()
}

func (p *parser) parseTermOrVar() (TermOrVar, error) {
	t := p.cur()
	switch t.kind {
	case tokVar:
		p.advance()
		return TermOrVar{Var: t.text}, nil
	case tokIRI:
		p.advance()
		return TermOrVar{Term: rdf.NewIRI(t.text)}, nil
	case tokString:
		p.advance()
		term, err := p.literalTerm(t)
		if err != nil {
			return TermOrVar{}, err
		}
		return TermOrVar{Term: term}, nil
	case tokNumber:
		p.advance()
		return TermOrVar{Term: numberTerm(t.text)}, nil
	case tokWord:
		switch strings.ToLower(t.text) {
		case "true":
			p.advance()
			return TermOrVar{Term: rdf.NewBoolean(true)}, nil
		case "false":
			p.advance()
			return TermOrVar{Term: rdf.NewBoolean(false)}, nil
		}
		if strings.HasPrefix(t.text, "_:") {
			p.advance()
			return TermOrVar{Term: rdf.NewBlank(strings.TrimPrefix(t.text, "_:"))}, nil
		}
		iri, err := p.ns.Expand(t.text)
		if err != nil {
			return TermOrVar{}, p.errf("%v", err)
		}
		p.advance()
		return TermOrVar{Term: rdf.NewIRI(iri)}, nil
	default:
		return TermOrVar{}, p.errf("expected term or variable")
	}
}

func (p *parser) literalTerm(t token) (rdf.Term, error) {
	switch {
	case t.lang != "":
		return rdf.NewLangLiteral(t.text, t.lang), nil
	case t.datatype != "":
		dt := t.datatype
		if !strings.Contains(dt, "://") {
			expanded, err := p.ns.Expand(dt)
			if err != nil {
				return rdf.Term{}, p.errf("%v", err)
			}
			dt = expanded
		}
		return rdf.NewTypedLiteral(t.text, dt), nil
	default:
		return rdf.NewLiteral(t.text), nil
	}
}

func numberTerm(text string) rdf.Term {
	if strings.ContainsAny(text, ".eE") {
		return rdf.NewTypedLiteral(text, rdf.XSDDouble)
	}
	return rdf.NewTypedLiteral(text, rdf.XSDInteger)
}

// --- expressions ---

func (p *parser) parseExpr() (Expr, error) { return p.parseOr() }

func (p *parser) parseOr() (Expr, error) {
	l, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.cur().kind == tokOp && p.cur().text == "||" {
		p.advance()
		r, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		l = &BinaryExpr{Op: "||", L: l, R: r}
	}
	return l, nil
}

func (p *parser) parseAnd() (Expr, error) {
	l, err := p.parseRelational()
	if err != nil {
		return nil, err
	}
	for p.cur().kind == tokOp && p.cur().text == "&&" {
		p.advance()
		r, err := p.parseRelational()
		if err != nil {
			return nil, err
		}
		l = &BinaryExpr{Op: "&&", L: l, R: r}
	}
	return l, nil
}

func (p *parser) parseRelational() (Expr, error) {
	l, err := p.parseAdditive()
	if err != nil {
		return nil, err
	}
	if t := p.cur(); t.kind == tokOp {
		switch t.text {
		case "=", "!=", "<", "<=", ">", ">=":
			p.advance()
			r, err := p.parseAdditive()
			if err != nil {
				return nil, err
			}
			return &BinaryExpr{Op: t.text, L: l, R: r}, nil
		}
	}
	return l, nil
}

func (p *parser) parseAdditive() (Expr, error) {
	l, err := p.parseMultiplicative()
	if err != nil {
		return nil, err
	}
	for t := p.cur(); t.kind == tokOp && (t.text == "+" || t.text == "-"); t = p.cur() {
		p.advance()
		r, err := p.parseMultiplicative()
		if err != nil {
			return nil, err
		}
		l = &BinaryExpr{Op: t.text, L: l, R: r}
	}
	return l, nil
}

func (p *parser) parseMultiplicative() (Expr, error) {
	l, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for t := p.cur(); t.kind == tokOp && (t.text == "*" || t.text == "/"); t = p.cur() {
		p.advance()
		r, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		l = &BinaryExpr{Op: t.text, L: l, R: r}
	}
	return l, nil
}

func (p *parser) parseUnary() (Expr, error) {
	if t := p.cur(); t.kind == tokOp && (t.text == "!" || t.text == "-") {
		p.advance()
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &UnaryExpr{Op: t.text, X: x}, nil
	}
	return p.parsePrimary()
}

func (p *parser) parsePrimary() (Expr, error) {
	t := p.cur()
	switch t.kind {
	case tokPunct:
		if t.text == "(" {
			p.advance()
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if err := p.expectPunct(")"); err != nil {
				return nil, err
			}
			return e, nil
		}
		return nil, p.errf("unexpected %q in expression", t.text)
	case tokVar:
		p.advance()
		return &VarExpr{Name: t.text}, nil
	case tokNumber:
		p.advance()
		return &ConstExpr{Term: numberTerm(t.text)}, nil
	case tokString:
		p.advance()
		term, err := p.literalTerm(t)
		if err != nil {
			return nil, err
		}
		return &ConstExpr{Term: term}, nil
	case tokIRI:
		p.advance()
		return &ConstExpr{Term: rdf.NewIRI(t.text)}, nil
	case tokWord:
		word := t.text
		lower := strings.ToLower(word)
		if lower == "true" || lower == "false" {
			p.advance()
			return &ConstExpr{Term: rdf.NewBoolean(lower == "true")}, nil
		}
		// Function call?
		if p.toks[p.pos+1].kind == tokPunct && p.toks[p.pos+1].text == "(" {
			p.advance() // name
			p.advance() // '('
			call := &CallExpr{Name: lower}
			if p.acceptKeyword("DISTINCT") {
				call.Distinct = true
			}
			if p.cur().kind == tokOp && p.cur().text == "*" {
				p.advance()
				call.Star = true
			} else if !p.isPunct(")") {
				for {
					arg, err := p.parseExpr()
					if err != nil {
						return nil, err
					}
					call.Args = append(call.Args, arg)
					if p.acceptPunct(",") {
						continue
					}
					break
				}
			}
			if err := p.expectPunct(")"); err != nil {
				return nil, err
			}
			return call, nil
		}
		// Bare prefixed name as constant IRI.
		iri, err := p.ns.Expand(word)
		if err != nil {
			return nil, p.errf("%v", err)
		}
		p.advance()
		return &ConstExpr{Term: rdf.NewIRI(iri)}, nil
	default:
		return nil, p.errf("unexpected token in expression")
	}
}
