package stsparql

import (
	"container/list"
	"fmt"
	"sync"

	"repro/internal/rdf"
)

// Compiled plans and the generation-invalidated plan cache. A served
// endpoint sees the same thematic queries over and over (the paper's
// NOA operators re-pose a fixed catalogue); caching the compiled plan
// keyed by the query text skips parse and planning on repeats — the
// pattern Gottlob et al.'s ontological-database work motivates for
// repeated rewritten queries. Plans embed cardinality estimates drawn
// from the source's live statistics, so every cache entry is pinned to
// the source generation it was planned at and invalidated when the
// source mutates.

// Compiled is a parsed query together with its physical plan. Plan
// nodes are immutable (all per-execution state lives in iterators), so
// one Compiled may be run repeatedly and concurrently — against the
// unchanged source it was compiled for. Operator-level caches are built
// at most once per Compiled and shared across runs: sub-select
// solutions always (they hold decoded terms), hash-join build sides
// only when the source dictionary is native (store IDs are stable
// across evaluations; evaluation-local IDs are not — see iddict.go).
type Compiled struct {
	Query *Query
	sel   *selectPlan
	ask   *groupPlan

	// cacheable is the plan-time result-cacheability verdict: false for
	// non-deterministic shapes (SAMPLE) and for plans that would read
	// live statistics mid-flight. See cacheable.go.
	cacheable bool
}

// IsSelect reports whether the compiled query is a SELECT.
func (c *Compiled) IsSelect() bool { return c.sel != nil }

// IsAsk reports whether the compiled query is an ASK.
func (c *Compiled) IsAsk() bool { return c.ask != nil }

// Compile plans a parsed query against this evaluator's source. Update
// requests carry no plan (their WHERE phase is planned at execution
// time, against the pre-update state).
func (e *Evaluator) Compile(q *Query) *Compiled {
	c := &Compiled{Query: q}
	switch {
	case q.Select != nil:
		c.sel = e.newPlanner().planSelect(q.Select, false)
	case q.Ask != nil:
		c.ask = e.newPlanner().planGroupRoot(q.Ask.Where, false)
	}
	c.cacheable = Cacheable(q) && !planReadsLiveStats(c)
	return c
}

// CompileCached parses and plans src, consulting cache first: a hit at
// the same source generation returns the stored Compiled without
// touching the parser or planner. cache may be nil (caching disabled).
// Only SELECT and ASK compile into cacheable plans.
func (e *Evaluator) CompileCached(src string, ns *rdf.Namespaces, cache *PlanCache, gen uint64) (*Compiled, error) {
	if cache != nil {
		if c, ok := cache.get(src, gen); ok {
			return c, nil
		}
	}
	q, err := Parse(src, ns)
	if err != nil {
		return nil, err
	}
	c := e.Compile(q)
	if cache != nil && (c.sel != nil || c.ask != nil) {
		cache.put(src, gen, c)
	}
	return c, nil
}

// RunCompiled opens a cursor over a compiled SELECT.
func (e *Evaluator) RunCompiled(c *Compiled) (Cursor, error) {
	if c.sel == nil {
		return nil, fmt.Errorf("stsparql: RunCompiled wants a SELECT")
	}
	it, vars := c.sel.open(e, []Binding{{}})
	return &planCursor{it: it, vars: vars}, nil
}

// AskCompiled evaluates a compiled ASK, stopping at the first solution.
func (e *Evaluator) AskCompiled(c *Compiled) (bool, error) {
	if c.ask == nil {
		return false, fmt.Errorf("stsparql: AskCompiled wants an ASK")
	}
	it := c.ask.open(e, seedIter(e.dict, c.ask.schema, []Binding{{}}))
	defer it.close()
	b, err := nextLive(it)
	return b != nil, err
}

// PlanCacheStats is a snapshot of cache effectiveness counters.
// Evictions counts both capacity evictions and generation
// invalidations.
type PlanCacheStats struct {
	Hits      uint64 `json:"hits"`
	Misses    uint64 `json:"misses"`
	Evictions uint64 `json:"evictions"`
	Entries   int    `json:"entries"`
}

// PlanCache is a bounded, LRU-evicted cache of compiled plans keyed by
// query text, invalidated by source generation: an entry only hits when
// the caller's generation matches the one it was compiled at. It is
// safe for concurrent use, but the plans it stores are tied to one
// source — do not share a PlanCache across stores.
type PlanCache struct {
	mu        sync.Mutex
	max       int
	lru       *list.List // of *planEntry; front = most recently used
	entries   map[string]*list.Element
	hits      uint64
	misses    uint64
	evictions uint64
}

type planEntry struct {
	key string
	gen uint64
	c   *Compiled
}

// NewPlanCache returns a cache holding at most max compiled plans.
func NewPlanCache(max int) *PlanCache {
	return &PlanCache{
		max:     max,
		lru:     list.New(),
		entries: make(map[string]*list.Element),
	}
}

// Stats returns a snapshot of the cache counters.
func (pc *PlanCache) Stats() PlanCacheStats {
	pc.mu.Lock()
	defer pc.mu.Unlock()
	return PlanCacheStats{
		Hits:      pc.hits,
		Misses:    pc.misses,
		Evictions: pc.evictions,
		Entries:   len(pc.entries),
	}
}

func (pc *PlanCache) get(key string, gen uint64) (*Compiled, bool) {
	pc.mu.Lock()
	defer pc.mu.Unlock()
	el, ok := pc.entries[key]
	if ok {
		ent := el.Value.(*planEntry)
		if ent.gen == gen {
			pc.lru.MoveToFront(el)
			pc.hits++
			return ent.c, true
		}
		// Planned against an older store state: drop it.
		pc.lru.Remove(el)
		delete(pc.entries, key)
		pc.evictions++
	}
	pc.misses++
	return nil, false
}

func (pc *PlanCache) put(key string, gen uint64, c *Compiled) {
	if pc.max <= 0 {
		return
	}
	pc.mu.Lock()
	defer pc.mu.Unlock()
	if el, ok := pc.entries[key]; ok {
		el.Value = &planEntry{key: key, gen: gen, c: c}
		pc.lru.MoveToFront(el)
		return
	}
	pc.entries[key] = pc.lru.PushFront(&planEntry{key: key, gen: gen, c: c})
	for pc.lru.Len() > pc.max {
		back := pc.lru.Back()
		pc.lru.Remove(back)
		delete(pc.entries, back.Value.(*planEntry).key)
		pc.evictions++
	}
}
