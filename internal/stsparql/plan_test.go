package stsparql

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/geom"
	"repro/internal/rdf"
)

// spatialFixture wraps the fixture store with a SpatialSource
// implementation (envelope scan; exactness does not matter for planning
// tests) so plans include window-served joins like strabon's store does.
type spatialFixture struct {
	*rdf.Store
}

func (s spatialFixture) SpatialIndexEnabled() bool { return true }

func (s spatialFixture) MatchGeometryWindow(env geom.Envelope, visit func(rdf.Triple) bool) {
	s.MatchTerms(rdf.Term{}, rdf.NewIRI("http://strdf.di.uoa.gr/ontology#hasGeometry"), rdf.Term{},
		func(t rdf.Triple) bool {
			g, err := geom.ParseWKT(t.O.Value)
			if err != nil {
				return true
			}
			if g.Envelope().Intersects(env) {
				return visit(t)
			}
			return true
		})
}

// clcFixture extends the fixture with one Corine land-cover area so the
// InvalidForFires refinement shape has data on both join sides.
func clcFixture() spatialFixture {
	s := fixtureStore()
	clcNS := "http://teleios.di.uoa.gr/ontologies/clcOntology.owl#"
	add := func(subj, pred string, obj rdf.Term) {
		s.Add(rdf.Triple{S: iri(subj), P: iri(pred), O: obj})
	}
	add(clcNS+"area1", rdf.RDFType, iri(clcNS+"Area"))
	add(clcNS+"area1", clcNS+"hasLandUse", iri(clcNS+"NonIrrigatedArableLand"))
	add(clcNS+"area1", "http://strdf.di.uoa.gr/ontology#hasGeometry",
		rdf.NewGeometry("POLYGON ((0 0, 4 0, 4 4, 0 4, 0 0))"))
	return spatialFixture{s}
}

const invalidForFiresQuery = `
DELETE { ?h ?hProperty ?hObject }
WHERE {
  ?h a noa:Hotspot ;
     noa:hasAcquisitionDateTime ?at ;
     strdf:hasGeometry ?hGeo ;
     ?hProperty ?hObject .
  ?a a clc:Area ;
     clc:hasLandUse ?use ;
     strdf:hasGeometry ?aGeo .
  FILTER( str(?at) = "2007-08-24T18:15:00" )
  FILTER( ?use = clc:NonIrrigatedArableLand || ?use = clc:ContinuousUrbanFabric )
  FILTER( strdf:coveredBy(?hGeo, ?aGeo) )
}`

// TestExplainInvalidForFiresGolden pins the plan chosen for the paper's
// InvalidForFires refinement: the hotspot side scans first, the
// acquisition-scope filter is pushed directly below the pattern binding
// ?at, and the land-cover geometry (the second basic graph pattern — the
// parser splits subject blocks) is joined through an R-tree window scan
// as soon as the plan reaches it, with ?hGeo already bound.
func TestExplainInvalidForFiresGolden(t *testing.T) {
	q := mustParse(t, invalidForFiresQuery)
	got, err := NewEvaluator(clcFixture()).Explain(q)
	if err != nil {
		t.Fatal(err)
	}
	want := `update delete=1 insert=0
  join[bind] {?h <http://www.w3.org/1999/02/22-rdf-syntax-ns#type> <http://teleios.di.uoa.gr/ontologies/noaOntology.owl#Hotspot>} est=3
  join[bind] {?h <http://teleios.di.uoa.gr/ontologies/noaOntology.owl#hasAcquisitionDateTime> ?at} on h est=3
  filter[pushed] (str(?at) = "2007-08-24T18:15:00")
  join[bind] {?h <http://strdf.di.uoa.gr/ontology#hasGeometry> ?hGeo} on h est=0.75
  join[bind] {?h ?hProperty ?hObject} on h est=3
  join[window] {?a <http://strdf.di.uoa.gr/ontology#hasGeometry> ?aGeo} est=0.21
  filter[pushed] strdf:coveredby(?hGeo, ?aGeo)
  join[bind] {?a <http://www.w3.org/1999/02/22-rdf-syntax-ns#type> <http://teleios.di.uoa.gr/ontologies/clcOntology.owl#Area>} on a est=0.0075
  join[bind] {?a <http://teleios.di.uoa.gr/ontologies/clcOntology.owl#hasLandUse> ?use} on a est=0.0075
  filter[pushed] ((?use = <http://teleios.di.uoa.gr/ontologies/clcOntology.owl#NonIrrigatedArableLand>) || (?use = <http://teleios.di.uoa.gr/ontologies/clcOntology.owl#ContinuousUrbanFabric>))
`
	if got != want {
		t.Fatalf("explain mismatch:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

// TestExplainAggregateGolden pins the plan of a grouped thematic query:
// joins, then aggregate / project / order / slice as explicit operators.
func TestExplainAggregateGolden(t *testing.T) {
	q := mustParse(t, `
SELECT ?sensor (COUNT(?h) AS ?n) WHERE {
  ?h a noa:Hotspot ; noa:isDerivedFromSensor ?sensor .
} GROUP BY ?sensor HAVING (COUNT(?h) > 1) ORDER BY ?sensor LIMIT 5`)
	got, err := NewEvaluator(clcFixture()).Explain(q)
	if err != nil {
		t.Fatal(err)
	}
	want := `select
  join[bind] {?h <http://www.w3.org/1999/02/22-rdf-syntax-ns#type> <http://teleios.di.uoa.gr/ontologies/noaOntology.owl#Hotspot>} est=3
  join[bind] {?h <http://teleios.di.uoa.gr/ontologies/noaOntology.owl#isDerivedFromSensor> ?sensor} on h est=3
  aggregate group=?sensor having=1
  project ?sensor (count(?h) AS ?n)
  order ?sensor top=5
  slice offset=0 limit=5
`
	if got != want {
		t.Fatalf("explain mismatch:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

// TestExplainSlicePushdownGolden pins the LIMIT/OFFSET pushdown
// annotation: an order-free, aggregate-free, distinct-free plan marks
// its slice pushed — the cursor's early exit reaches the index scans —
// while the aggregate golden above keeps a plain slice.
func TestExplainSlicePushdownGolden(t *testing.T) {
	q := mustParse(t, `
SELECT ?h ?c WHERE { ?h a noa:Hotspot ; noa:hasConfidence ?c . } LIMIT 5 OFFSET 2`)
	got, err := NewEvaluator(clcFixture()).Explain(q)
	if err != nil {
		t.Fatal(err)
	}
	want := `select
  join[bind] {?h <http://www.w3.org/1999/02/22-rdf-syntax-ns#type> <http://teleios.di.uoa.gr/ontologies/noaOntology.owl#Hotspot>} est=3
  join[bind] {?h <http://teleios.di.uoa.gr/ontologies/noaOntology.owl#hasConfidence> ?c} on h est=3
  project ?h ?c
  slice[pushed] offset=2 limit=5
`
	if got != want {
		t.Fatalf("explain mismatch:\n--- got ---\n%s--- want ---\n%s", got, want)
	}

	// The blocking modifiers suppress the annotation.
	for _, src := range []string{
		`SELECT ?h WHERE { ?h a noa:Hotspot . } ORDER BY ?h LIMIT 5`,
		`SELECT DISTINCT ?h WHERE { ?h a noa:Hotspot . } LIMIT 5`,
		`SELECT * WHERE { ?h a noa:Hotspot . } LIMIT 5`,
	} {
		out, err := NewEvaluator(clcFixture()).Explain(mustParse(t, src))
		if err != nil {
			t.Fatal(err)
		}
		if strings.Contains(out, "slice[pushed]") {
			t.Errorf("slice wrongly marked pushed for %q:\n%s", src, out)
		}
	}
}

// TestExplainShapes spot-checks plan features that golden tests would
// make brittle: optional/union sub-plans and the hash strategy for
// disconnected patterns over large intermediates.
func TestExplainShapes(t *testing.T) {
	q := mustParse(t, `
SELECT ?h WHERE {
  ?h a noa:Hotspot ; strdf:hasGeometry ?hGeo .
  OPTIONAL {
    ?c a coast:Coastline ; strdf:hasGeometry ?cGeo .
    FILTER( strdf:anyInteract(?hGeo, ?cGeo) )
  }
  FILTER( !bound(?c) )
}`)
	out, err := NewEvaluator(clcFixture()).Explain(q)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"optional\n", "join[window] {?c <http://strdf.di.uoa.gr/ontology#hasGeometry> ?cGeo}", "filter !bound(?c)"} {
		if !strings.Contains(out, want) {
			t.Errorf("explain missing %q:\n%s", want, out)
		}
	}

	q2 := mustParse(t, `
SELECT ?x WHERE { { ?x a noa:Hotspot . } UNION { ?x a gag:Municipality . } }`)
	out2, err := NewEvaluator(clcFixture()).Explain(q2)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out2, "union\n") || strings.Count(out2, "branch") != 2 {
		t.Errorf("union explain:\n%s", out2)
	}
}

// TestPlanExecutionEquivalence cross-checks the planned execution against
// the same queries' known results on the spatial fixture (window scans
// and hash joins must not change the solution set).
func TestPlanExecutionEquivalence(t *testing.T) {
	src := clcFixture()
	res := runSelectSrc(t, src, `
SELECT ?h ?m WHERE {
  ?h a noa:Hotspot ;
     strdf:hasGeometry ?hGeo .
  ?m a gag:Municipality ;
     strdf:hasGeometry ?mGeo .
  FILTER( strdf:anyInteract(?hGeo, ?mGeo) ) .
}`)
	if len(res.Rows) != 2 {
		t.Fatalf("spatial join rows = %d, want 2", len(res.Rows))
	}

	// Force the hash-join path: a disconnected pattern under a large
	// intermediate result (every hotspot x every municipality).
	res2 := runSelectSrc(t, src, `
SELECT ?h ?p ?m WHERE {
  ?h a noa:Hotspot .
  ?m a gag:Municipality ; gag:hasPopulation ?p .
}`)
	if len(res2.Rows) != 6 {
		t.Fatalf("cross join rows = %d, want 6", len(res2.Rows))
	}
}

func runSelectSrc(t *testing.T, src Source, q string) *Result {
	t.Helper()
	parsed := mustParse(t, q)
	res, err := NewEvaluator(src).Select(parsed.Select)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestSubSelectUnboundProjectionSurvivesJoin pins that a variable a
// sub-select projects but leaves unbound (here via OPTIONAL) must not be
// treated as certainly bound: a later join keyed on it (the hash path
// would probe with an unbound sentinel) has to fall back to runtime
// binding semantics instead of dropping the rows.
func TestSubSelectUnboundProjectionSurvivesJoin(t *testing.T) {
	s := rdf.NewStore()
	p := rdf.NewIRI("http://e/p")
	m := rdf.NewIRI("http://e/m")
	q := rdf.NewIRI("http://e/q")
	r := rdf.NewIRI("http://e/r")
	const n = 70 // past hashJoinMinRows
	for i := 0; i < n; i++ {
		subj := rdf.NewIRI(fmt.Sprintf("http://e/s%d", i))
		s.Add(rdf.Triple{S: subj, P: p, O: rdf.NewIRI(fmt.Sprintf("http://e/o%d", i))})
		s.Add(rdf.Triple{S: rdf.NewIRI(fmt.Sprintf("http://e/o%d", i)), P: m, O: rdf.NewIRI(fmt.Sprintf("http://e/mid%d", i))})
	}
	// Only one mid resolves to an x, and that x has two r-values.
	s.Add(rdf.Triple{S: rdf.NewIRI("http://e/mid0"), P: q, O: rdf.NewIRI("http://e/x0")})
	s.Add(rdf.Triple{S: rdf.NewIRI("http://e/x0"), P: r, O: rdf.NewIRI("http://e/y0")})
	s.Add(rdf.Triple{S: rdf.NewIRI("http://e/x0"), P: r, O: rdf.NewIRI("http://e/y1")})

	res := runSelectSrc(t, s, `
PREFIX e: <http://e/>
SELECT ?s ?x ?y WHERE {
  ?s e:p ?o .
  { SELECT ?o ?x WHERE { ?o e:m ?mid . OPTIONAL { ?mid e:q ?x } } }
  ?x e:r ?y .
}`)
	// Every row extends through ?x e:r ?y: the one row carrying ?x=x0
	// joins on it, and the 69 rows with ?x unbound scan the pattern and
	// bind ?x afresh — two r-triples each way, so 70 x 2 solutions. A
	// hash join keyed on a wrongly-"certain" ?x would return 2.
	if len(res.Rows) != 2*n {
		t.Fatalf("rows = %d, want %d", len(res.Rows), 2*n)
	}
}

// TestHashJoinMatchesBindJoin runs a connected join both ways over a
// dataset sized past the hash threshold and compares solution multisets.
func TestHashJoinMatchesBindJoin(t *testing.T) {
	s := rdf.NewStore()
	typ := rdf.NewIRI(rdf.RDFType)
	cls := rdf.NewIRI("http://e/Thing")
	link := rdf.NewIRI("http://e/linksTo")
	for i := 0; i < 200; i++ {
		subj := rdf.NewIRI(fmt.Sprintf("http://e/s%d", i))
		s.Add(rdf.Triple{S: subj, P: typ, O: cls})
		s.Add(rdf.Triple{S: subj, P: link, O: rdf.NewIRI(fmt.Sprintf("http://e/s%d", (i+1)%200))})
	}
	q := mustParse(t, `
PREFIX e: <http://e/>
SELECT ?a ?b WHERE { ?a a e:Thing ; e:linksTo ?b . ?b a e:Thing . }`)
	res, err := NewEvaluator(s).Select(q.Select)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 200 {
		t.Fatalf("rows = %d, want 200", len(res.Rows))
	}
	seen := map[string]bool{}
	for _, row := range res.Rows {
		k := row["a"].Value + "->" + row["b"].Value
		if seen[k] {
			t.Fatalf("duplicate solution %s", k)
		}
		seen[k] = true
	}
}
