package stsparql

import (
	"fmt"
	"strings"

	"repro/internal/geom"
	"repro/internal/rdf"
)

// This file holds the physical operators of the stSPARQL engine. A
// compiled plan (see plan.go) is a pipeline of operators, each
// transforming a batch of binding rows into the next batch — the
// materialised flavour of the iterator model, which matches the
// evaluation semantics the original tree-walking evaluator pinned.
//
// Operators are single-use: a plan is compiled per evaluation and may
// carry per-execution state (a hash join caches its build side so that
// per-row re-execution under OPTIONAL does not rebuild it).

// operator is one stage of a compiled query pipeline.
type operator interface {
	run(e *Evaluator, in []Binding) ([]Binding, error)
	// explain renders the operator (and any sub-plans) at the given
	// indentation.
	explain(b *strings.Builder, indent string)
}

// Join strategies a joinOp can be planned with.
const (
	joinBind   = "bind"   // per-row indexed scan
	joinHash   = "hash"   // scan once, hash on shared vars, probe
	joinWindow = "window" // per-row R-tree window scan (spatial join)
)

// joinOp extends each input row through one triple pattern. The planner
// chooses the strategy; window falls back to bind per row when no filter
// yields a candidate envelope, and hash falls back to bind for tiny
// inputs (the build cost would dominate).
type joinOp struct {
	pat      TriplePattern
	filters  []*FilterElement // group filters, for spatial-window detection
	strategy string
	shared   []string // pattern vars certainly bound by the input rows
	est      float64  // estimated output rows (Explain annotation)

	table map[string][]Binding // hash build side, cached per execution
}

func (op *joinOp) run(e *Evaluator, in []Binding) ([]Binding, error) {
	if op.strategy == joinHash && len(in) > 1 {
		return op.hashRun(e, in), nil
	}
	var out []Binding
	for _, row := range in {
		e.scanPattern(op.pat, row, op.filters, func(extended Binding) {
			out = append(out, extended)
		})
	}
	return out, nil
}

// hashRun materialises the pattern's matches once, buckets them by the
// shared variables, and probes with each input row. With no shared
// variables the single bucket is a cross product — still a win over
// rescanning the pattern per input row.
func (op *joinOp) hashRun(e *Evaluator, in []Binding) []Binding {
	if op.table == nil {
		op.table = make(map[string][]Binding)
		e.scanPattern(op.pat, Binding{}, nil, func(m Binding) {
			k := string(bindingKey(nil, m, op.shared))
			op.table[k] = append(op.table[k], m)
		})
	}
	var out []Binding
	var kb []byte
	for _, row := range in {
		kb = bindingKey(kb[:0], row, op.shared)
		for _, cand := range op.table[string(kb)] {
			if merged, ok := mergeCompatible(row, cand); ok {
				out = append(out, merged)
			}
		}
	}
	return out
}

func (op *joinOp) explain(b *strings.Builder, indent string) {
	fmt.Fprintf(b, "%sjoin[%s] {%s %s %s}", indent, op.strategy,
		termOrVarString(op.pat.S), termOrVarString(op.pat.P), termOrVarString(op.pat.O))
	if len(op.shared) > 0 {
		fmt.Fprintf(b, " on %s", strings.Join(op.shared, ","))
	}
	fmt.Fprintf(b, " est=%s\n", formatEst(op.est))
}

// bindingKey appends a composite key of the row's values for vars to dst.
// Missing vars are encoded distinctly from any bound value.
func bindingKey(dst []byte, row Binding, vars []string) []byte {
	for _, v := range vars {
		dst = appendTermKey(dst, row[v])
		dst = append(dst, 0x1f)
	}
	return dst
}

// appendTermKey appends a unique byte encoding of a term without the
// quoting cost of Term.String. The zero term (unbound) encodes as a lone
// sentinel byte.
func appendTermKey(dst []byte, t rdf.Term) []byte {
	if t.IsZero() {
		return append(dst, 0x00)
	}
	dst = append(dst, byte('1'+t.Kind))
	dst = append(dst, t.Value...)
	dst = append(dst, 0x00)
	dst = append(dst, t.Datatype...)
	dst = append(dst, 0x00)
	dst = append(dst, t.Lang...)
	return dst
}

// filterOp keeps the rows satisfying a FILTER condition; evaluation
// errors drop the row, per SPARQL semantics.
type filterOp struct {
	cond  Expr
	eager bool // pushed into a BGP by the planner (Explain annotation)
}

func (op *filterOp) run(e *Evaluator, in []Binding) ([]Binding, error) {
	out := in[:0]
	for _, row := range in {
		v := e.evalExpr(op.cond, row)
		pass, err := v.effectiveBool()
		if err == nil && pass {
			out = append(out, row)
		}
	}
	return out, nil
}

func (op *filterOp) explain(b *strings.Builder, indent string) {
	label := "filter"
	if op.eager {
		label = "filter[pushed]"
	}
	fmt.Fprintf(b, "%s%s %s\n", indent, label, exprString(op.cond))
}

// optionalOp left-joins each row against a sub-plan: rows with no
// sub-solution pass through unextended.
type optionalOp struct {
	sub *groupPlan
}

func (op *optionalOp) run(e *Evaluator, in []Binding) ([]Binding, error) {
	var out []Binding
	for _, row := range in {
		sub, err := op.sub.run(e, []Binding{row})
		if err != nil {
			return nil, err
		}
		if len(sub) == 0 {
			out = append(out, row)
		} else {
			out = append(out, sub...)
		}
	}
	return out, nil
}

func (op *optionalOp) explain(b *strings.Builder, indent string) {
	fmt.Fprintf(b, "%soptional\n", indent)
	op.sub.explain(b, indent+"  ")
}

// unionOp concatenates the solutions of each branch, seeded per row.
type unionOp struct {
	branches []*groupPlan
}

func (op *unionOp) run(e *Evaluator, in []Binding) ([]Binding, error) {
	var out []Binding
	for _, row := range in {
		for _, br := range op.branches {
			sub, err := br.run(e, []Binding{row})
			if err != nil {
				return nil, err
			}
			out = append(out, sub...)
		}
	}
	return out, nil
}

func (op *unionOp) explain(b *strings.Builder, indent string) {
	fmt.Fprintf(b, "%sunion\n", indent)
	for _, br := range op.branches {
		fmt.Fprintf(b, "%s branch\n", indent)
		br.explain(b, indent+"  ")
	}
}

// nestedGroupOp evaluates a nested group graph pattern with its own
// filter scope.
type nestedGroupOp struct {
	sub *groupPlan
}

func (op *nestedGroupOp) run(e *Evaluator, in []Binding) ([]Binding, error) {
	return op.sub.run(e, in)
}

func (op *nestedGroupOp) explain(b *strings.Builder, indent string) {
	fmt.Fprintf(b, "%sgroup\n", indent)
	op.sub.explain(b, indent+"  ")
}

// subSelectOp evaluates a nested SELECT once and joins its solutions
// with the input rows on their shared variables.
type subSelectOp struct {
	sub *selectPlan
}

func (op *subSelectOp) run(e *Evaluator, in []Binding) ([]Binding, error) {
	res, err := op.sub.run(e, []Binding{{}})
	if err != nil {
		return nil, err
	}
	var out []Binding
	for _, row := range in {
		for _, sub := range res.Rows {
			if merged, ok := mergeCompatible(row, sub); ok {
				out = append(out, merged)
			}
		}
	}
	return out, nil
}

func (op *subSelectOp) explain(b *strings.Builder, indent string) {
	fmt.Fprintf(b, "%ssub-select\n", indent)
	op.sub.explain(b, indent+"  ")
}

// aggregateOp groups rows and evaluates aggregate projections and HAVING
// constraints.
type aggregateOp struct {
	q *SelectQuery
}

func (op *aggregateOp) run(e *Evaluator, in []Binding) ([]Binding, error) {
	return e.aggregate(op.q, in)
}

func (op *aggregateOp) explain(b *strings.Builder, indent string) {
	fmt.Fprintf(b, "%saggregate", indent)
	if len(op.q.GroupBy) > 0 {
		keys := make([]string, len(op.q.GroupBy))
		for i, g := range op.q.GroupBy {
			keys[i] = exprString(g)
		}
		fmt.Fprintf(b, " group=%s", strings.Join(keys, ","))
	}
	if len(op.q.Having) > 0 {
		fmt.Fprintf(b, " having=%d", len(op.q.Having))
	}
	b.WriteByte('\n')
}

// projectOp applies the SELECT projection. It records the output
// variable list (which for SELECT * depends on the rows) for the result
// header and the distinct operator.
type projectOp struct {
	q       *SelectQuery
	grouped bool
	vars    []string // set during run
}

func (op *projectOp) run(e *Evaluator, in []Binding) ([]Binding, error) {
	op.vars = e.projectionVars(op.q, in)
	projected := make([]Binding, 0, len(in))
	for _, row := range in {
		out := make(Binding, len(op.vars))
		for _, item := range op.q.Projection {
			if item.Expr != nil && !op.grouped {
				if t, ok := e.evalExpr(item.Expr, row).asTerm(); ok {
					out[item.Var] = t
				}
				continue
			}
			// Plain variables, and grouped rows (which already carry the
			// computed aggregate bindings), copy through.
			if t, ok := row[item.Var]; ok {
				out[item.Var] = t
			}
		}
		if op.q.Star {
			for k, v := range row {
				out[k] = v
			}
		}
		projected = append(projected, out)
	}
	return projected, nil
}

func (op *projectOp) explain(b *strings.Builder, indent string) {
	if op.q.Star {
		fmt.Fprintf(b, "%sproject *\n", indent)
		return
	}
	items := make([]string, len(op.q.Projection))
	for i, item := range op.q.Projection {
		if item.Expr != nil {
			items[i] = "(" + exprString(item.Expr) + " AS ?" + item.Var + ")"
		} else {
			items[i] = "?" + item.Var
		}
	}
	fmt.Fprintf(b, "%sproject %s\n", indent, strings.Join(items, " "))
}

// distinctOp deduplicates rows over the projected variables.
type distinctOp struct {
	proj *projectOp
}

func (op *distinctOp) run(e *Evaluator, in []Binding) ([]Binding, error) {
	return distinctRows(in, op.proj.vars), nil
}

func (op *distinctOp) explain(b *strings.Builder, indent string) {
	fmt.Fprintf(b, "%sdistinct\n", indent)
}

// orderOp sorts rows by the ORDER BY keys (stable; incomparable values
// tie).
type orderOp struct {
	keys []OrderKey
}

func (op *orderOp) run(e *Evaluator, in []Binding) ([]Binding, error) {
	e.orderRows(in, op.keys)
	return in, nil
}

func (op *orderOp) explain(b *strings.Builder, indent string) {
	keys := make([]string, len(op.keys))
	for i, k := range op.keys {
		keys[i] = exprString(k.Expr)
		if k.Desc {
			keys[i] += " desc"
		}
	}
	fmt.Fprintf(b, "%sorder %s\n", indent, strings.Join(keys, ", "))
}

// sliceOp applies OFFSET and LIMIT.
type sliceOp struct {
	offset, limit int
}

func (op *sliceOp) run(e *Evaluator, in []Binding) ([]Binding, error) {
	if op.offset > 0 {
		if op.offset >= len(in) {
			return nil, nil
		}
		in = in[op.offset:]
	}
	if op.limit >= 0 && op.limit < len(in) {
		in = in[:op.limit]
	}
	return in, nil
}

func (op *sliceOp) explain(b *strings.Builder, indent string) {
	fmt.Fprintf(b, "%sslice offset=%d limit=%d\n", indent, op.offset, op.limit)
}

// --- pattern scanning (shared by bind joins and hash build sides) ---

// scanPattern matches one triple pattern under a row, emitting extended
// rows. When the pattern binds a fresh geometry variable that a pending
// spatial filter constrains against an already-known geometry, and the
// source has a spatial index, the scan is served by an R-tree window
// query instead of a full predicate scan.
func (e *Evaluator) scanPattern(pat TriplePattern, row Binding, filters []*FilterElement, emit func(Binding)) {
	resolve := func(tv TermOrVar) rdf.Term {
		if !tv.IsVar() {
			return tv.Term
		}
		if t, ok := row[tv.Var]; ok {
			return t
		}
		return rdf.Term{}
	}
	s, p, o := resolve(pat.S), resolve(pat.P), resolve(pat.O)

	tryBind := func(t rdf.Triple) {
		out := row
		cloned := false
		bind := func(tv TermOrVar, val rdf.Term) bool {
			if !tv.IsVar() {
				return true
			}
			if existing, ok := out[tv.Var]; ok && !existing.IsZero() {
				return existing.Equal(val)
			}
			if !cloned {
				out = row.clone()
				cloned = true
			}
			out[tv.Var] = val
			return true
		}
		if !bind(pat.S, t.S) || !bind(pat.P, t.P) || !bind(pat.O, t.O) {
			return
		}
		if !cloned {
			out = row.clone()
		}
		emit(out)
	}

	// Spatial index fast path.
	if ss, ok := e.src.(SpatialSource); ok && ss.SpatialIndexEnabled() &&
		!p.IsZero() && GeometryPredicates[p.Value] && pat.O.IsVar() && o.IsZero() {
		if env, found := e.spatialWindowFor(pat.O.Var, row, filters); found {
			ss.MatchGeometryWindow(env, func(t rdf.Triple) bool {
				if !p.IsZero() && t.P.Value != p.Value {
					return true
				}
				if !s.IsZero() && !t.S.Equal(s) {
					return true
				}
				tryBind(t)
				return true
			})
			return
		}
	}

	e.src.MatchTerms(s, p, o, func(t rdf.Triple) bool {
		tryBind(t)
		return true
	})
}

// spatialWindowFor inspects pending filters for a spatial predicate
// constraining variable v against a geometry already computable under row;
// it returns the candidate envelope.
func (e *Evaluator) spatialWindowFor(v string, row Binding, filters []*FilterElement) (geom.Envelope, bool) {
	for _, f := range filters {
		if env, ok := e.findSpatialConstraint(f.Cond, v, row); ok {
			return env, true
		}
	}
	return geom.Envelope{}, false
}

var spatialJoinFns = map[string]bool{
	"strdf:anyinteract": true,
	"strdf:intersects":  true,
	"strdf:contains":    true,
	"strdf:within":      true,
	"strdf:overlap":     true,
	"strdf:overlaps":    true,
	"strdf:touches":     true,
	"strdf:touch":       true,
	"strdf:equals":      true,
	"strdf:coveredby":   true,
	"strdf:covers":      true,
}

func (e *Evaluator) findSpatialConstraint(expr Expr, v string, row Binding) (geom.Envelope, bool) {
	switch n := expr.(type) {
	case *CallExpr:
		if spatialJoinFns[n.Name] && len(n.Args) == 2 {
			for i := 0; i < 2; i++ {
				if ve, ok := n.Args[i].(*VarExpr); ok && ve.Name == v {
					other := e.evalExpr(n.Args[1-i], row)
					if other.Kind == VGeom {
						return other.Geom.Envelope(), true
					}
				}
			}
		}
	case *BinaryExpr:
		if n.Op == "&&" {
			if env, ok := e.findSpatialConstraint(n.L, v, row); ok {
				return env, true
			}
			return e.findSpatialConstraint(n.R, v, row)
		}
	}
	return geom.Envelope{}, false
}
