package stsparql

import (
	"fmt"
	"iter"
	"sort"
	"strings"
	"sync"

	"repro/internal/geom"
	"repro/internal/rdf"
)

// This file holds the physical operators of the stSPARQL engine. A
// compiled plan (see plan.go) is a pipeline of operators in the Volcano
// (open/next/close) iterator model: open wires an operator over its
// input and returns a rowIter, and rows are pulled one at a time through
// the pipeline. Streaming operators (joins, filters, optional, union,
// sub-select join, project, distinct, slice) hold at most the matches of
// one input row; blocking operators (order, aggregate, the SELECT *
// projection) materialise their input internally before yielding.
//
// Pulling instead of pushing is what makes early termination free: a
// downstream LIMIT simply stops calling next, an ASK stops at the first
// solution, and a cursor abandoned by a client stops the scans when it
// is closed.
//
// Operator values themselves are immutable once planned — all
// per-execution state lives in the iterators open returns — so a
// compiled plan can be cached and run concurrently (see plancache.go).
// The two operator-level caches, a hash join's build side and a
// sub-select's solution set, are guarded by sync.Once: both are
// deterministic functions of the source, which cannot change while a
// plan is live (plans are invalidated when the store's generation
// moves).

// rowIter is the pull side of an opened operator pipeline: next yields
// the next row (ok=false once exhausted or on error), close releases
// any resources (scans in flight, sub-iterators) and must be idempotent.
type rowIter interface {
	next() (Binding, bool, error)
	close()
}

// operator is one stage of a compiled query pipeline.
type operator interface {
	// open wires the operator over its input rows and returns the pull
	// iterator of its output.
	open(e *Evaluator, in rowIter) rowIter
	// explain renders the operator (and any sub-plans) at the given
	// indentation.
	explain(b *strings.Builder, indent string)
}

// rowsIter yields a materialised row slice; it doubles as the seed
// iterator of a pipeline.
type rowsIter struct {
	rows []Binding
	pos  int
}

func (it *rowsIter) next() (Binding, bool, error) {
	if it.pos >= len(it.rows) {
		return nil, false, nil
	}
	r := it.rows[it.pos]
	it.pos++
	return r, true, nil
}

func (it *rowsIter) close() {}

// drainIter pulls an iterator to exhaustion. Used by the materialising
// wrappers and by the blocking operators.
func drainIter(in rowIter) ([]Binding, error) {
	var rows []Binding
	for {
		row, ok, err := in.next()
		if err != nil {
			return nil, err
		}
		if !ok {
			return rows, nil
		}
		rows = append(rows, row)
	}
}

// Join strategies a joinOp can be planned with.
const (
	joinBind   = "bind"   // per-row indexed scan
	joinHash   = "hash"   // scan once, hash on shared vars, probe
	joinWindow = "window" // per-row R-tree window scan (spatial join)
)

// joinOp extends each input row through one triple pattern. The planner
// chooses the strategy; window falls back to bind per row when no filter
// yields a candidate envelope, and hash falls back to bind for
// single-row inputs (the build cost would dominate).
type joinOp struct {
	pat      TriplePattern
	filters  []*FilterElement // group filters, for spatial-window detection
	strategy string
	shared   []string // pattern vars certainly bound by the input rows
	est      float64  // estimated output rows (Explain annotation)
	// buffered joins materialise each probe row's matches instead of
	// streaming them through a pull coroutine: set for per-row
	// re-executed sub-plans (OPTIONAL/UNION, where a coroutine per row
	// would dominate) and for plans that are always fully drained
	// (update WHERE clauses), where early termination cannot occur.
	buffered bool

	// Hash build side, built at most once per plan lifetime: the table
	// is a function of the source, which is pinned while the plan is
	// live, so concurrent and repeated executions (OPTIONAL re-entry,
	// cached plans) share it.
	tableOnce sync.Once
	table     map[string][]Binding
}

func (op *joinOp) open(e *Evaluator, in rowIter) rowIter {
	return &joinIter{op: op, e: e, in: in}
}

func (op *joinOp) buildTable(e *Evaluator) {
	op.tableOnce.Do(func() {
		op.table = make(map[string][]Binding)
		e.scanPattern(op.pat, Binding{}, nil, func(m Binding) bool {
			k := string(bindingKey(nil, m, op.shared))
			op.table[k] = append(op.table[k], m)
			return true
		})
	})
}

type joinIter struct {
	op *joinOp
	e  *Evaluator
	in rowIter

	buf []Binding // matches of the current probe row (buffered modes)
	pos int

	pull func() (Binding, bool) // streaming scan of the current row
	stop func()

	pending []Binding // lookahead rows the hash decision pulled early
	hash    bool      // lookahead committed to the hash strategy
	started bool
	closed  bool
	kb      []byte // reused probe key buffer
}

func (it *joinIter) next() (Binding, bool, error) {
	for {
		if it.pull != nil {
			if b, ok := it.pull(); ok {
				return b, true, nil
			}
			it.stop()
			it.pull, it.stop = nil, nil
		}
		if it.pos < len(it.buf) {
			b := it.buf[it.pos]
			it.pos++
			return b, true, nil
		}
		row, ok, err := it.nextProbe()
		if err != nil || !ok {
			return nil, false, err
		}
		it.startRow(row)
	}
}

// nextProbe returns the next input row to extend. The hash strategy
// decides on first use whether to engage: a single input row sticks to a
// bind scan (the build would dominate), two or more build the table.
func (it *joinIter) nextProbe() (Binding, bool, error) {
	if len(it.pending) > 0 {
		row := it.pending[0]
		it.pending = it.pending[:copy(it.pending, it.pending[1:])]
		return row, true, nil
	}
	if it.op.strategy == joinHash && !it.started {
		it.started = true
		r1, ok, err := it.in.next()
		if err != nil || !ok {
			return nil, false, err
		}
		r2, ok2, err := it.in.next()
		if err != nil {
			return nil, false, err
		}
		if ok2 {
			it.hash = true
			it.pending = append(it.pending, r2)
		}
		return r1, true, nil
	}
	it.started = true
	return it.in.next()
}

// startRow prepares the matches of one probe row: a hash probe, a
// streamed scan (when the fan-out is unbounded), or a buffered scan.
func (it *joinIter) startRow(row Binding) {
	if it.hash {
		it.op.buildTable(it.e)
		it.kb = bindingKey(it.kb[:0], row, it.op.shared)
		it.buf, it.pos = it.buf[:0], 0
		for _, cand := range it.op.table[string(it.kb)] {
			if merged, ok := mergeCompatible(row, cand); ok {
				it.buf = append(it.buf, merged)
			}
		}
		return
	}
	if it.op.strategy == joinBind && len(it.op.shared) == 0 && !it.op.buffered {
		// No input variable constrains the scan, so its fan-out is the
		// whole pattern extent — the shape of a pipeline's first scan.
		// Stream the matches through a pull coroutine instead of
		// materialising them: a downstream LIMIT (or an abandoned
		// cursor) then stops the index scan itself.
		it.pull, it.stop = iter.Pull(func(yield func(Binding) bool) {
			it.e.scanPattern(it.op.pat, row, it.op.filters, yield)
		})
		return
	}
	// Buffered scan: memory bounded by the matches of this one row.
	it.buf, it.pos = it.buf[:0], 0
	it.e.scanPattern(it.op.pat, row, it.op.filters, func(b Binding) bool {
		it.buf = append(it.buf, b)
		return true
	})
}

func (it *joinIter) close() {
	if it.closed {
		return
	}
	it.closed = true
	if it.stop != nil {
		it.stop()
		it.pull, it.stop = nil, nil
	}
	it.in.close()
}

func (op *joinOp) explain(b *strings.Builder, indent string) {
	fmt.Fprintf(b, "%sjoin[%s] {%s %s %s}", indent, op.strategy,
		termOrVarString(op.pat.S), termOrVarString(op.pat.P), termOrVarString(op.pat.O))
	if len(op.shared) > 0 {
		fmt.Fprintf(b, " on %s", strings.Join(op.shared, ","))
	}
	fmt.Fprintf(b, " est=%s\n", formatEst(op.est))
}

// bindingKey appends a composite key of the row's values for vars to dst.
// Missing vars are encoded distinctly from any bound value.
func bindingKey(dst []byte, row Binding, vars []string) []byte {
	for _, v := range vars {
		dst = appendTermKey(dst, row[v])
		dst = append(dst, 0x1f)
	}
	return dst
}

// appendTermKey appends a unique byte encoding of a term without the
// quoting cost of Term.String. The zero term (unbound) encodes as a lone
// sentinel byte.
func appendTermKey(dst []byte, t rdf.Term) []byte {
	if t.IsZero() {
		return append(dst, 0x00)
	}
	dst = append(dst, byte('1'+t.Kind))
	dst = append(dst, t.Value...)
	dst = append(dst, 0x00)
	dst = append(dst, t.Datatype...)
	dst = append(dst, 0x00)
	dst = append(dst, t.Lang...)
	return dst
}

// filterOp keeps the rows satisfying a FILTER condition; evaluation
// errors drop the row, per SPARQL semantics.
type filterOp struct {
	cond  Expr
	eager bool // pushed into a BGP by the planner (Explain annotation)
}

func (op *filterOp) open(e *Evaluator, in rowIter) rowIter {
	return &filterIter{op: op, e: e, in: in}
}

type filterIter struct {
	op *filterOp
	e  *Evaluator
	in rowIter
}

func (it *filterIter) next() (Binding, bool, error) {
	for {
		row, ok, err := it.in.next()
		if err != nil || !ok {
			return nil, false, err
		}
		v := it.e.evalExpr(it.op.cond, row)
		if pass, err := v.effectiveBool(); err == nil && pass {
			return row, true, nil
		}
	}
}

func (it *filterIter) close() { it.in.close() }

func (op *filterOp) explain(b *strings.Builder, indent string) {
	label := "filter"
	if op.eager {
		label = "filter[pushed]"
	}
	fmt.Fprintf(b, "%s%s %s\n", indent, label, exprString(op.cond))
}

// optionalOp left-joins each row against a sub-plan: rows with no
// sub-solution pass through unextended. The sub-plan is re-opened per
// input row; its solutions stream through.
type optionalOp struct {
	sub *groupPlan
}

func (op *optionalOp) open(e *Evaluator, in rowIter) rowIter {
	return &optionalIter{op: op, e: e, in: in}
}

type optionalIter struct {
	op *optionalOp
	e  *Evaluator
	in rowIter

	row Binding
	sub rowIter
	any bool
}

func (it *optionalIter) next() (Binding, bool, error) {
	for {
		if it.sub != nil {
			b, ok, err := it.sub.next()
			if err != nil {
				return nil, false, err
			}
			if ok {
				it.any = true
				return b, true, nil
			}
			it.sub.close()
			it.sub = nil
			if !it.any {
				return it.row, true, nil
			}
		}
		row, ok, err := it.in.next()
		if err != nil || !ok {
			return nil, false, err
		}
		it.row, it.any = row, false
		it.sub = it.op.sub.open(it.e, &rowsIter{rows: []Binding{row}})
	}
}

func (it *optionalIter) close() {
	if it.sub != nil {
		it.sub.close()
		it.sub = nil
	}
	it.in.close()
}

func (op *optionalOp) explain(b *strings.Builder, indent string) {
	fmt.Fprintf(b, "%soptional\n", indent)
	op.sub.explain(b, indent+"  ")
}

// unionOp concatenates the solutions of each branch, seeded per row.
type unionOp struct {
	branches []*groupPlan
}

func (op *unionOp) open(e *Evaluator, in rowIter) rowIter {
	return &unionIter{op: op, e: e, in: in}
}

type unionIter struct {
	op *unionOp
	e  *Evaluator
	in rowIter

	row    Binding
	hasRow bool
	branch int
	sub    rowIter
}

func (it *unionIter) next() (Binding, bool, error) {
	for {
		if it.sub != nil {
			b, ok, err := it.sub.next()
			if err != nil {
				return nil, false, err
			}
			if ok {
				return b, true, nil
			}
			it.sub.close()
			it.sub = nil
		}
		if it.hasRow && it.branch < len(it.op.branches) {
			it.sub = it.op.branches[it.branch].open(it.e, &rowsIter{rows: []Binding{it.row}})
			it.branch++
			continue
		}
		it.hasRow = false
		row, ok, err := it.in.next()
		if err != nil || !ok {
			return nil, false, err
		}
		it.row, it.hasRow, it.branch = row, true, 0
	}
}

func (it *unionIter) close() {
	if it.sub != nil {
		it.sub.close()
		it.sub = nil
	}
	it.in.close()
}

func (op *unionOp) explain(b *strings.Builder, indent string) {
	fmt.Fprintf(b, "%sunion\n", indent)
	for _, br := range op.branches {
		fmt.Fprintf(b, "%s branch\n", indent)
		br.explain(b, indent+"  ")
	}
}

// nestedGroupOp evaluates a nested group graph pattern with its own
// filter scope.
type nestedGroupOp struct {
	sub *groupPlan
}

func (op *nestedGroupOp) open(e *Evaluator, in rowIter) rowIter {
	return op.sub.open(e, in)
}

func (op *nestedGroupOp) explain(b *strings.Builder, indent string) {
	fmt.Fprintf(b, "%sgroup\n", indent)
	op.sub.explain(b, indent+"  ")
}

// subSelectOp evaluates a nested SELECT once and joins its solutions
// with the input rows on their shared variables. The sub-evaluation is
// lazy (an empty input never runs it) and cached on the operator, so
// OPTIONAL re-entry and cached plans reuse the solution set.
type subSelectOp struct {
	sub *selectPlan

	once sync.Once
	res  []Binding
	err  error
}

func (op *subSelectOp) open(e *Evaluator, in rowIter) rowIter {
	return &subSelectIter{op: op, e: e, in: in}
}

func (op *subSelectOp) solutions(e *Evaluator) ([]Binding, error) {
	op.once.Do(func() {
		res, err := op.sub.run(e, []Binding{{}})
		if err != nil {
			op.err = err
			return
		}
		op.res = res.Rows
	})
	return op.res, op.err
}

type subSelectIter struct {
	op *subSelectOp
	e  *Evaluator
	in rowIter

	res    []Binding
	row    Binding
	hasRow bool
	pos    int
}

func (it *subSelectIter) next() (Binding, bool, error) {
	for {
		if it.hasRow {
			for it.pos < len(it.res) {
				cand := it.res[it.pos]
				it.pos++
				if merged, ok := mergeCompatible(it.row, cand); ok {
					return merged, true, nil
				}
			}
			it.hasRow = false
		}
		row, ok, err := it.in.next()
		if err != nil || !ok {
			return nil, false, err
		}
		res, err := it.op.solutions(it.e)
		if err != nil {
			return nil, false, err
		}
		it.res, it.row, it.hasRow, it.pos = res, row, true, 0
	}
}

func (it *subSelectIter) close() { it.in.close() }

func (op *subSelectOp) explain(b *strings.Builder, indent string) {
	fmt.Fprintf(b, "%ssub-select\n", indent)
	op.sub.explain(b, indent+"  ")
}

// aggregateOp groups rows and evaluates aggregate projections and HAVING
// constraints. Blocking: grouping needs the full input.
type aggregateOp struct {
	q *SelectQuery
}

func (op *aggregateOp) open(e *Evaluator, in rowIter) rowIter {
	return &aggregateIter{op: op, e: e, in: in}
}

type aggregateIter struct {
	op  *aggregateOp
	e   *Evaluator
	in  rowIter
	out *rowsIter
}

func (it *aggregateIter) next() (Binding, bool, error) {
	if it.out == nil {
		rows, err := drainIter(it.in)
		if err != nil {
			return nil, false, err
		}
		grouped, err := it.e.aggregate(it.op.q, rows)
		if err != nil {
			return nil, false, err
		}
		it.out = &rowsIter{rows: grouped}
	}
	return it.out.next()
}

func (it *aggregateIter) close() { it.in.close() }

func (op *aggregateOp) explain(b *strings.Builder, indent string) {
	fmt.Fprintf(b, "%saggregate", indent)
	if len(op.q.GroupBy) > 0 {
		keys := make([]string, len(op.q.GroupBy))
		for i, g := range op.q.GroupBy {
			keys[i] = exprString(g)
		}
		fmt.Fprintf(b, " group=%s", strings.Join(keys, ","))
	}
	if len(op.q.Having) > 0 {
		fmt.Fprintf(b, " having=%d", len(op.q.Having))
	}
	b.WriteByte('\n')
}

// projectOp applies the SELECT projection. An explicit projection
// streams (its output variables are static); SELECT * is the one
// blocking modifier — the header depends on the rows, so it materialises
// at open, which is what lets a cursor report Vars before iteration.
type projectOp struct {
	q       *SelectQuery
	grouped bool
}

func (op *projectOp) open(e *Evaluator, in rowIter) rowIter {
	it := &projectIter{op: op, e: e, in: in}
	if op.q.Star {
		rows, err := drainIter(in)
		if err != nil {
			it.err = err
			return it
		}
		it.vars = e.projectionVars(op.q, rows)
		out := make([]Binding, 0, len(rows))
		for _, row := range rows {
			out = append(out, op.projectRow(e, it.vars, row))
		}
		it.star = &rowsIter{rows: out}
		return it
	}
	it.vars = e.projectionVars(op.q, nil)
	return it
}

type projectIter struct {
	op   *projectOp
	e    *Evaluator
	in   rowIter
	vars []string
	star *rowsIter // materialised output of a SELECT *
	err  error
}

func (it *projectIter) next() (Binding, bool, error) {
	if it.err != nil {
		return nil, false, it.err
	}
	if it.star != nil {
		return it.star.next()
	}
	row, ok, err := it.in.next()
	if err != nil || !ok {
		return nil, false, err
	}
	return it.op.projectRow(it.e, it.vars, row), true, nil
}

func (it *projectIter) close() { it.in.close() }

func (op *projectOp) projectRow(e *Evaluator, vars []string, row Binding) Binding {
	out := make(Binding, len(vars))
	for _, item := range op.q.Projection {
		if item.Expr != nil && !op.grouped {
			if t, ok := e.evalExpr(item.Expr, row).asTerm(); ok {
				out[item.Var] = t
			}
			continue
		}
		// Plain variables, and grouped rows (which already carry the
		// computed aggregate bindings), copy through.
		if t, ok := row[item.Var]; ok {
			out[item.Var] = t
		}
	}
	if op.q.Star {
		for k, v := range row {
			out[k] = v
		}
	}
	return out
}

func (op *projectOp) explain(b *strings.Builder, indent string) {
	if op.q.Star {
		fmt.Fprintf(b, "%sproject *\n", indent)
		return
	}
	items := make([]string, len(op.q.Projection))
	for i, item := range op.q.Projection {
		if item.Expr != nil {
			items[i] = "(" + exprString(item.Expr) + " AS ?" + item.Var + ")"
		} else {
			items[i] = "?" + item.Var
		}
	}
	fmt.Fprintf(b, "%sproject %s\n", indent, strings.Join(items, " "))
}

// distinctOp deduplicates rows over the projected variables, streaming:
// each row's key is checked against the seen set as it is pulled, so
// first occurrences flow through immediately (the same order
// materialised deduplication produced).
type distinctOp struct {
	proj *projectOp
}

func (op *distinctOp) open(e *Evaluator, in rowIter) rowIter {
	it := &distinctIter{in: in, seen: make(map[string]bool)}
	// The planner places distinct directly after the projection, whose
	// iterator carries the output variable list the keys range over; for
	// an explicit projection the list is also derivable statically, so
	// only SELECT DISTINCT * strictly depends on the adjacency.
	if pi, ok := in.(*projectIter); ok {
		it.vars = pi.vars
	} else if !op.proj.q.Star {
		it.vars = e.projectionVars(op.proj.q, nil)
	}
	return it
}

type distinctIter struct {
	in   rowIter
	vars []string
	seen map[string]bool
	kb   []byte
}

func (it *distinctIter) next() (Binding, bool, error) {
	for {
		row, ok, err := it.in.next()
		if err != nil || !ok {
			return nil, false, err
		}
		it.kb = bindingKey(it.kb[:0], row, it.vars)
		if !it.seen[string(it.kb)] {
			it.seen[string(it.kb)] = true
			return row, true, nil
		}
	}
}

func (it *distinctIter) close() { it.in.close() }

func (op *distinctOp) explain(b *strings.Builder, indent string) {
	fmt.Fprintf(b, "%sdistinct\n", indent)
}

// orderOp sorts rows by the ORDER BY keys (stable; incomparable values
// tie). Blocking: sorting needs the full input — but when a downstream
// LIMIT bounds how many sorted rows can ever be consumed (topK > 0), the
// operator keeps only the top K rows in a bounded heap instead of
// materialising and sorting the whole input.
type orderOp struct {
	keys []OrderKey
	// topK > 0 bounds how many rows of the sorted output are reachable
	// (OFFSET+LIMIT). The input is still fully drained, but memory stays
	// O(topK) and the final sort is over topK rows, not the input.
	topK int
}

func (op *orderOp) open(e *Evaluator, in rowIter) rowIter {
	return &orderIter{op: op, e: e, in: in}
}

type orderIter struct {
	op  *orderOp
	e   *Evaluator
	in  rowIter
	out *rowsIter
}

func (it *orderIter) next() (Binding, bool, error) {
	if it.out == nil {
		var rows []Binding
		var err error
		if it.op.topK > 0 {
			rows, err = it.drainTopK(it.op.topK)
		} else {
			rows, err = drainIter(it.in)
			if err == nil {
				it.e.orderRows(rows, it.op.keys)
			}
		}
		if err != nil {
			return nil, false, err
		}
		it.out = &rowsIter{rows: rows}
	}
	return it.out.next()
}

// seqRow tags a row with its arrival sequence so the bounded heap can
// reproduce the stable sort exactly: among equal keys the earliest
// arrivals win, and the final order breaks key ties by arrival.
type seqRow struct {
	row Binding
	seq int
}

// drainTopK pulls the input to exhaustion keeping only the k first rows
// of the stable sort order in a max-heap: the root is the worst kept row
// (by key, later arrival losing ties), so each new row either replaces
// it or is dropped. O(n log k) comparisons, O(k) memory — also the
// per-shard pre-merge truncation of the sharded store's ordered merge.
func (it *orderIter) drainTopK(k int) ([]Binding, error) {
	// after reports whether a sorts strictly after b in the final order.
	after := func(a, b seqRow) bool {
		if c := it.e.compareOrderKeys(a.row, b.row, it.op.keys); c != 0 {
			return c > 0
		}
		return a.seq > b.seq
	}
	var heap []seqRow // max-heap under after(): root = worst kept row
	siftDown := func(i int) {
		for {
			l, r := 2*i+1, 2*i+2
			worst := i
			if l < len(heap) && after(heap[l], heap[worst]) {
				worst = l
			}
			if r < len(heap) && after(heap[r], heap[worst]) {
				worst = r
			}
			if worst == i {
				return
			}
			heap[i], heap[worst] = heap[worst], heap[i]
			i = worst
		}
	}
	seq := 0
	for {
		row, ok, err := it.in.next()
		if err != nil {
			return nil, err
		}
		if !ok {
			break
		}
		e := seqRow{row: row, seq: seq}
		seq++
		if len(heap) < k {
			heap = append(heap, e)
			for i := len(heap) - 1; i > 0; { // sift up
				p := (i - 1) / 2
				if !after(heap[i], heap[p]) {
					break
				}
				heap[i], heap[p] = heap[p], heap[i]
				i = p
			}
			continue
		}
		if after(e, heap[0]) {
			continue // sorts after the worst kept row: unreachable
		}
		heap[0] = e
		siftDown(0)
	}
	sort.Slice(heap, func(i, j int) bool { return after(heap[j], heap[i]) })
	rows := make([]Binding, len(heap))
	for i, e := range heap {
		rows[i] = e.row
	}
	return rows, nil
}

func (it *orderIter) close() { it.in.close() }

func (op *orderOp) explain(b *strings.Builder, indent string) {
	keys := make([]string, len(op.keys))
	for i, k := range op.keys {
		keys[i] = exprString(k.Expr)
		if k.Desc {
			keys[i] += " desc"
		}
	}
	fmt.Fprintf(b, "%sorder %s", indent, strings.Join(keys, ", "))
	if op.topK > 0 {
		fmt.Fprintf(b, " top=%d", op.topK)
	}
	b.WriteByte('\n')
}

// sliceOp applies OFFSET and LIMIT by counting pulled rows. Once the
// limit is satisfied it closes its input, releasing any scans still in
// flight — with a streaming upstream (pushed=true, see planSelect) this
// stops the index scans themselves.
type sliceOp struct {
	offset, limit int
	pushed        bool // order/aggregate/distinct-free: early exit reaches the scans
}

func (op *sliceOp) open(e *Evaluator, in rowIter) rowIter {
	return &sliceIter{op: op, in: in}
}

type sliceIter struct {
	op      *sliceOp
	in      rowIter
	skipped int
	emitted int
	done    bool
}

func (it *sliceIter) next() (Binding, bool, error) {
	if it.done {
		return nil, false, nil
	}
	for it.skipped < it.op.offset {
		_, ok, err := it.in.next()
		if err != nil || !ok {
			it.done = true
			return nil, false, err
		}
		it.skipped++
	}
	if it.op.limit >= 0 && it.emitted >= it.op.limit {
		it.done = true
		it.in.close()
		return nil, false, nil
	}
	row, ok, err := it.in.next()
	if err != nil || !ok {
		it.done = true
		return nil, false, err
	}
	it.emitted++
	return row, true, nil
}

func (it *sliceIter) close() { it.in.close() }

func (op *sliceOp) explain(b *strings.Builder, indent string) {
	label := "slice"
	if op.pushed {
		label = "slice[pushed]"
	}
	fmt.Fprintf(b, "%s%s offset=%d limit=%d\n", indent, label, op.offset, op.limit)
}

// --- pattern scanning (shared by bind joins and hash build sides) ---

// scanPattern matches one triple pattern under a row, emitting extended
// rows until emit returns false. When the pattern binds a fresh geometry
// variable that a pending spatial filter constrains against an
// already-known geometry, and the source has a spatial index, the scan
// is served by an R-tree window query instead of a full predicate scan.
func (e *Evaluator) scanPattern(pat TriplePattern, row Binding, filters []*FilterElement, emit func(Binding) bool) {
	resolve := func(tv TermOrVar) rdf.Term {
		if !tv.IsVar() {
			return tv.Term
		}
		if t, ok := row[tv.Var]; ok {
			return t
		}
		return rdf.Term{}
	}
	s, p, o := resolve(pat.S), resolve(pat.P), resolve(pat.O)

	// tryBind reports whether the scan should continue.
	tryBind := func(t rdf.Triple) bool {
		out := row
		cloned := false
		bind := func(tv TermOrVar, val rdf.Term) bool {
			if !tv.IsVar() {
				return true
			}
			if existing, ok := out[tv.Var]; ok && !existing.IsZero() {
				return existing.Equal(val)
			}
			if !cloned {
				out = row.clone()
				cloned = true
			}
			out[tv.Var] = val
			return true
		}
		if !bind(pat.S, t.S) || !bind(pat.P, t.P) || !bind(pat.O, t.O) {
			return true
		}
		if !cloned {
			out = row.clone()
		}
		return emit(out)
	}

	// Spatial index fast path.
	if ss, ok := e.src.(SpatialSource); ok && ss.SpatialIndexEnabled() &&
		!p.IsZero() && GeometryPredicates[p.Value] && pat.O.IsVar() && o.IsZero() {
		if env, found := e.spatialWindowFor(pat.O.Var, row, filters); found {
			ss.MatchGeometryWindow(env, func(t rdf.Triple) bool {
				if !p.IsZero() && t.P.Value != p.Value {
					return true
				}
				if !s.IsZero() && !t.S.Equal(s) {
					return true
				}
				return tryBind(t)
			})
			return
		}
	}

	e.src.MatchTerms(s, p, o, func(t rdf.Triple) bool {
		return tryBind(t)
	})
}

// spatialWindowFor inspects pending filters for a spatial predicate
// constraining variable v against a geometry already computable under row;
// it returns the candidate envelope.
func (e *Evaluator) spatialWindowFor(v string, row Binding, filters []*FilterElement) (geom.Envelope, bool) {
	for _, f := range filters {
		if env, ok := e.findSpatialConstraint(f.Cond, v, row); ok {
			return env, true
		}
	}
	return geom.Envelope{}, false
}

var spatialJoinFns = map[string]bool{
	"strdf:anyinteract": true,
	"strdf:intersects":  true,
	"strdf:contains":    true,
	"strdf:within":      true,
	"strdf:overlap":     true,
	"strdf:overlaps":    true,
	"strdf:touches":     true,
	"strdf:touch":       true,
	"strdf:equals":      true,
	"strdf:coveredby":   true,
	"strdf:covers":      true,
}

func (e *Evaluator) findSpatialConstraint(expr Expr, v string, row Binding) (geom.Envelope, bool) {
	switch n := expr.(type) {
	case *CallExpr:
		if spatialJoinFns[n.Name] && len(n.Args) == 2 {
			for i := 0; i < 2; i++ {
				if ve, ok := n.Args[i].(*VarExpr); ok && ve.Name == v {
					other := e.evalExpr(n.Args[1-i], row)
					if other.Kind == VGeom {
						return other.Geom.Envelope(), true
					}
				}
			}
		}
	case *BinaryExpr:
		if n.Op == "&&" {
			if env, ok := e.findSpatialConstraint(n.L, v, row); ok {
				return env, true
			}
			return e.findSpatialConstraint(n.R, v, row)
		}
	}
	return geom.Envelope{}, false
}
