package stsparql

import (
	"fmt"
	"iter"
	"sort"
	"strings"
	"sync"

	"repro/internal/geom"
	"repro/internal/rdf"
)

// This file holds the physical operators of the stSPARQL engine. A
// compiled plan (see plan.go) is a pipeline of operators in a
// vectorised pull model: open wires an operator over its input and
// returns a batchIter, and columnar *Batch slabs of up to batchSizeMax
// rows are pulled through the pipeline (see batch.go). Scans fill
// batches directly from the index iterators — in ID space when the
// source exposes its dictionary (IDSource), so the hot path never
// materialises a term — filters and slices mark rows dead in the
// selection vector without copying, bind joins and hash probes run
// tight loops over fixed-width ID columns, and the blocking operators
// (order, aggregate, the SELECT * projection) consume whole batches
// before yielding.
//
// Pulling instead of pushing keeps early termination cheap: a
// downstream LIMIT simply stops pulling, an ASK stops at the first
// live batch, and a cursor abandoned by a client stops the scans when
// it is closed. Scans grow their batches geometrically from
// batchSizeMin so those early exits abandon the index scan after a few
// dozen visits, not a full slab. Producers own their output batches
// (valid until the next pull), which lets the streaming operators reuse
// one slab across calls instead of allocating per batch.
//
// Operator values themselves are immutable once planned — all
// per-execution state lives in the iterators open returns — so a
// compiled plan can be cached and run concurrently (see plancache.go).
// The two operator-level caches, a hash join's build side and a
// sub-select's solution set, are guarded by sync.Once. The sub-select
// cache holds decoded terms and is always shareable; the hash build
// side holds IDs, which are only stable across evaluations in native
// mode (store IDs — see iddict.go), so local-mode evaluations build
// their table per iterator instead.

// operator is one stage of a compiled query pipeline.
type operator interface {
	// open wires the operator over its input batches and returns the
	// pull iterator of its output.
	open(e *Evaluator, in batchIter) batchIter
	// explain renders the operator (and any sub-plans) at the given
	// indentation.
	explain(b *strings.Builder, indent string)
}

// Join strategies a joinOp can be planned with.
const (
	joinBind   = "bind"   // per-row indexed scan
	joinHash   = "hash"   // scan once, hash on shared vars, probe
	joinWindow = "window" // per-row R-tree window scan (spatial join)
)

// joinOp extends each input row through one triple pattern. The planner
// chooses the strategy; window falls back to bind per row when no filter
// yields a candidate envelope, and hash falls back to bind for
// single-row inputs (the build cost would dominate).
type joinOp struct {
	pat      TriplePattern
	filters  []*FilterElement // group filters, for spatial-window detection
	strategy string
	shared   []string   // pattern vars certainly bound by the input rows
	est      float64    // estimated output rows (Explain annotation)
	schema   *varSchema // column layout of the enclosing group
	// buffered joins fill their output batch probe row by probe row
	// instead of streaming scan batches through a pull coroutine: set
	// for per-row re-executed sub-plans (OPTIONAL/UNION, where a
	// coroutine per row would dominate) and for plans that are always
	// fully drained (update WHERE clauses), where early termination
	// cannot occur.
	buffered bool
	// first is the first-batch size hint (0 = batchSizeMin): a pushed
	// LIMIT below batchSizeMin caps how many rows the pipeline pulls, so
	// scans open with a batch of that size and still grow geometrically
	// if the slice turns out not to stop them.
	first int

	// Hash build side, built at most once per plan lifetime in NATIVE
	// mode: the table is a function of the source (pinned while the plan
	// is live) and its keys are store IDs, stable across evaluations, so
	// concurrent and repeated executions share it. Local-mode (composite
	// source) evaluations key on evaluation-local IDs and build per
	// iterator instead. The build side is itself columnar: one batch
	// over the pattern's variables, indexed by shared-var ID key.
	tableOnce sync.Once
	build     *Batch
	table     map[string][]int32
}

// streams reports whether probe rows scan through a pull coroutine: no
// input variable constrains the scan (its fan-out is the whole pattern
// extent — the shape of a pipeline's first scan), so batches stream out
// and a downstream LIMIT (or an abandoned cursor) stops the index scan
// itself.
func (op *joinOp) streams() bool {
	return op.strategy == joinBind && len(op.shared) == 0 && !op.buffered
}

func (op *joinOp) open(e *Evaluator, in batchIter) batchIter {
	return &joinIter{op: op, e: e, in: in, target: op.firstTarget()}
}

// firstTarget is the size of the first batch this join fills.
func (op *joinOp) firstTarget() int {
	if op.first > 0 {
		return op.first
	}
	return batchSizeMin
}

// makeTable scans the pattern once and indexes it by shared-var ID key.
func (op *joinOp) makeTable(e *Evaluator) (*Batch, map[string][]int32) {
	var names []string
	for _, tv := range []TermOrVar{op.pat.S, op.pat.P, op.pat.O} {
		if tv.IsVar() && !containsVar(names, tv.Var) {
			names = append(names, tv.Var)
		}
	}
	sort.Strings(names)
	b := newBatch(e.dict, newSchema(names), batchSizeMax)
	e.scanPatternInto(op.pat, rowRef{}, nil, func() *Batch { return b }, alwaysScan)
	table := make(map[string][]int32)
	var kb []byte
	for r := 0; r < b.n; r++ {
		kb = rowKey(kb[:0], rowRef{b: b, i: r}, op.shared)
		table[string(kb)] = append(table[string(kb)], int32(r))
	}
	return b, table
}

type joinIter struct {
	op *joinOp
	e  *Evaluator
	in batchIter

	inBatch *Batch // current probe batch
	inOrd   int    // next live ordinal to probe

	pull func() (*Batch, bool) // streaming scan of the current probe row
	stop func()

	pending []*Batch // lookahead batches the hash decision pulled early
	hash    bool     // lookahead committed to the hash strategy
	started bool
	closed  bool
	target  int    // batch size target, growing geometrically
	kb      []byte // reused probe key buffer

	build *Batch // hash build side (shared in native mode)
	table map[string][]int32

	scan    *patScan // reused per-probe-row bind scan
	scanOut *Batch   // output batch the reused scan appends to
	out     *Batch   // reused buffered-path output slab
}

// outBatch returns the iterator-owned output slab, reset for refilling
// (batches are only valid until the next pull, so the previous fill has
// been consumed by the time this is called again).
func (it *joinIter) outBatch() *Batch {
	if it.out == nil || it.out.cap < it.target {
		it.out = newBatch(it.e.dict, it.op.schema, it.target)
	} else {
		it.out.reset()
	}
	return it.out
}

// ensureTable resolves the hash build side: shared and built at most
// once per plan in native mode, per iterator in local mode (see the
// file comment).
func (it *joinIter) ensureTable() {
	if it.table != nil {
		return
	}
	if it.e.dict.native() {
		it.op.tableOnce.Do(func() {
			it.op.build, it.op.table = it.op.makeTable(it.e)
		})
		it.build, it.table = it.op.build, it.op.table
		return
	}
	it.build, it.table = it.op.makeTable(it.e)
}

func (it *joinIter) next() (*Batch, error) {
	if it.closed {
		return nil, nil
	}
	if it.op.streams() {
		for {
			if it.pull != nil {
				if b, ok := it.pull(); ok {
					return b, nil
				}
				it.stop()
				it.pull, it.stop = nil, nil
			}
			probe, ok, err := it.nextProbeRow()
			if err != nil || !ok {
				return nil, err
			}
			it.startStream(probe)
		}
	}
	var out *Batch
	for {
		probe, ok, err := it.nextProbeRow()
		if err != nil {
			return nil, err
		}
		if !ok {
			if out != nil && out.live() > 0 {
				return out, nil
			}
			return nil, nil
		}
		if out == nil {
			out = it.outBatch()
		}
		if it.hash {
			it.probeHash(probe, out)
		} else {
			if it.scan == nil {
				it.scan = newPatScan(it.e, it.op.pat, it.op.filters, func() *Batch { return it.scanOut }, alwaysScan)
			}
			it.scanOut = out
			it.scan.run(probe)
		}
		if out.n >= it.target {
			if it.target < batchSizeMax {
				it.target *= batchSizeGrowth
			}
			return out, nil
		}
	}
}

// nextProbeRow returns the next live input row to extend.
func (it *joinIter) nextProbeRow() (rowRef, bool, error) {
	for {
		if it.inBatch != nil && it.inOrd < it.inBatch.live() {
			i := it.inBatch.row(it.inOrd)
			it.inOrd++
			return rowRef{b: it.inBatch, i: i}, true, nil
		}
		b, err := it.nextInBatch()
		if err != nil || b == nil {
			return rowRef{}, false, err
		}
		it.inBatch, it.inOrd = b, 0
	}
}

// nextInBatch returns the next non-empty input batch. The hash strategy
// decides on first use whether to engage: a single input row sticks to
// a bind scan (the build would dominate), two or more build the table.
func (it *joinIter) nextInBatch() (*Batch, error) {
	if len(it.pending) > 0 {
		b := it.pending[0]
		it.pending = it.pending[:copy(it.pending, it.pending[1:])]
		return b, nil
	}
	if it.op.strategy == joinHash && !it.started {
		it.started = true
		b1, err := nextLive(it.in)
		if err != nil || b1 == nil {
			return b1, err
		}
		if b1.live() >= 2 {
			it.hash = true
			return b1, nil
		}
		// Upstream batches are only valid until the next pull, so the
		// single held row is copied out before looking ahead.
		b1 = cloneBatch(b1)
		b2, err := nextLive(it.in)
		if err != nil {
			return nil, err
		}
		if b2 != nil {
			it.hash = true
			//lint:allow batchview pending is served before the iterator pulls in again
			it.pending = append(it.pending, b2)
		}
		return b1, nil
	}
	it.started = true
	return nextLive(it.in)
}

// nextLive pulls in until a batch with live rows (or exhaustion).
func nextLive(in batchIter) (*Batch, error) {
	for {
		b, err := in.next()
		if err != nil || b == nil {
			return nil, err
		}
		if b.live() > 0 {
			return b, nil
		}
	}
}

// startStream opens a pull coroutine yielding the scan's matches as
// progressively-sized batches. One slab is reused across yields — by
// the time the coroutine resumes, the consumer has moved past the
// previous batch — and replaced only when the target outgrows it.
func (it *joinIter) startStream(probe rowRef) {
	op, e := it.op, it.e
	it.pull, it.stop = iter.Pull(func(yield func(*Batch) bool) {
		target := op.firstTarget()
		out := newBatch(e.dict, op.schema, target)
		e.scanPatternInto(op.pat, probe, op.filters, func() *Batch { return out }, func() bool {
			if out.n >= target {
				if !yield(out) {
					return false
				}
				if target < batchSizeMax {
					target *= batchSizeGrowth
				}
				if out.cap < target {
					out = newBatch(e.dict, op.schema, target)
				} else {
					out.reset()
				}
			}
			return true
		})
		if out.n > 0 {
			yield(out)
		}
	})
}

// probeHash extends one probe row with every compatible build row. The
// compatibility loop runs entirely on IDs: equal IDs are equal terms
// within an evaluation (and across evaluations in native mode).
func (it *joinIter) probeHash(probe rowRef, out *Batch) {
	it.ensureTable()
	it.kb = rowKey(it.kb[:0], probe, it.op.shared)
	build := it.build
	for _, bi := range it.table[string(it.kb)] {
		r := out.beginRow(probe)
		ok := true
		for c, name := range build.schema.names {
			val := build.cols[c][bi]
			if val == 0 {
				continue
			}
			oc, has := out.schema.col(name)
			if !has {
				continue
			}
			if ex := out.cols[oc][r]; ex != 0 {
				if ex != val {
					ok = false
					break
				}
			} else {
				out.cols[oc][r] = val
			}
		}
		if ok {
			out.commitRow()
		}
	}
}

func (it *joinIter) close() {
	if it.closed {
		return
	}
	it.closed = true
	if it.stop != nil {
		it.stop()
		it.pull, it.stop = nil, nil
	}
	it.in.close()
}

func (op *joinOp) explain(b *strings.Builder, indent string) {
	fmt.Fprintf(b, "%sjoin[%s] {%s %s %s}", indent, op.strategy,
		termOrVarString(op.pat.S), termOrVarString(op.pat.P), termOrVarString(op.pat.O))
	if len(op.shared) > 0 {
		fmt.Fprintf(b, " on %s", strings.Join(op.shared, ","))
	}
	fmt.Fprintf(b, " est=%s\n", formatEst(op.est))
}

// bindingKey appends a composite key of the row's values for vars to dst.
// Missing vars are encoded distinctly from any bound value. This is the
// term-level key used for map-backed rows (materialised deduplication,
// the shard merger's RowKey); batch rows key on IDs via rowKey.
func bindingKey(dst []byte, row Binding, vars []string) []byte {
	for _, v := range vars {
		dst = appendTermKey(dst, row[v])
		dst = append(dst, 0x1f)
	}
	return dst
}

// appendTermKey appends a unique byte encoding of a term without the
// quoting cost of Term.String. The zero term (unbound) encodes as a lone
// sentinel byte.
func appendTermKey(dst []byte, t rdf.Term) []byte {
	if t.IsZero() {
		return append(dst, 0x00)
	}
	dst = append(dst, byte('1'+t.Kind))
	dst = append(dst, t.Value...)
	dst = append(dst, 0x00)
	dst = append(dst, t.Datatype...)
	dst = append(dst, 0x00)
	dst = append(dst, t.Lang...)
	return dst
}

// filterOp keeps the rows satisfying a FILTER condition; evaluation
// errors drop the row, per SPARQL semantics. The filter runs a tight
// loop over the batch, compacting its selection vector in place — rows
// are marked dead, never moved. Equality against an IRI constant is
// detected at plan time (newFilterOp) and runs as an ID comparison: the
// constant is encoded once per evaluation and each row costs one
// integer compare, with no term materialisation.
type filterOp struct {
	cond  Expr
	eager bool // pushed into a BGP by the planner (Explain annotation)

	// Plan-time constant-equality detection: FILTER(?v = <iri>) and its
	// negation. IRI constants only — IRI equality is term identity, so
	// the ID comparison is exact; literals need value semantics and fall
	// through to expression evaluation.
	idVar   string
	idConst rdf.Term
	idNeg   bool
}

// newFilterOp builds a filter, detecting the constant-IRI equality
// shape at plan time.
func newFilterOp(cond Expr, eager bool) *filterOp {
	op := &filterOp{cond: cond, eager: eager}
	if be, ok := cond.(*BinaryExpr); ok && (be.Op == "=" || be.Op == "!=") {
		var ve *VarExpr
		var ce *ConstExpr
		if v, okL := be.L.(*VarExpr); okL {
			ve = v
			ce, _ = be.R.(*ConstExpr)
		} else if v, okR := be.R.(*VarExpr); okR {
			ve = v
			ce, _ = be.L.(*ConstExpr)
		}
		if ve != nil && ce != nil && ce.Term.IsIRI() && !ce.Term.IsZero() {
			op.idVar, op.idConst, op.idNeg = ve.Name, ce.Term, be.Op == "!="
		}
	}
	return op
}

func (op *filterOp) open(e *Evaluator, in batchIter) batchIter {
	it := &filterIter{op: op, e: e, in: in}
	if op.idVar != "" {
		// Encode (not merely look up) so the constant also matches terms
		// the evaluation computed itself.
		it.constID = e.dict.encode(op.idConst)
	}
	return it
}

type filterIter struct {
	op      *filterOp
	e       *Evaluator
	in      batchIter
	constID termID
	selBuf  []int32 // reused selection storage for unselected batches
}

func (it *filterIter) next() (*Batch, error) {
	for {
		b, err := it.in.next()
		if err != nil || b == nil {
			return nil, err
		}
		n := b.live()
		var keep []int32
		if b.sel != nil {
			keep = b.sel[:0]
		} else {
			if cap(it.selBuf) < n {
				it.selBuf = make([]int32, 0, b.cap)
			}
			keep = it.selBuf[:0]
		}
		if it.op.idVar != "" {
			keep = it.filterIDs(b, keep)
		} else {
			for ord := 0; ord < n; ord++ {
				i := b.row(ord)
				v := it.e.evalExpr(it.op.cond, rowRef{b: b, i: i})
				if pass, err := v.effectiveBool(); err == nil && pass {
					keep = append(keep, int32(i))
				}
			}
		}
		b.sel = keep
		if len(keep) > 0 {
			return b, nil
		}
	}
}

// filterIDs is the constant-equality fast path: one ID compare per row.
// An unbound row (ID 0) drops for both = and != — SPARQL comparison
// with unbound is an error, and errors drop the row.
func (it *filterIter) filterIDs(b *Batch, keep []int32) []int32 {
	c, ok := b.schema.col(it.op.idVar)
	if !ok {
		return keep
	}
	col := b.cols[c]
	n := b.live()
	for ord := 0; ord < n; ord++ {
		i := b.row(ord)
		id := col[i]
		if id != 0 && ((id == it.constID) != it.op.idNeg) {
			keep = append(keep, int32(i))
		}
	}
	return keep
}

func (it *filterIter) close() { it.in.close() }

func (op *filterOp) explain(b *strings.Builder, indent string) {
	label := "filter"
	if op.eager {
		label = "filter[pushed]"
	}
	fmt.Fprintf(b, "%s%s %s\n", indent, label, exprString(op.cond))
}

// optionalOp left-joins each row against a sub-plan: rows with no
// sub-solution pass through unextended. The sub-plan (which shares the
// enclosing group's schema) is re-opened per input row over a reused
// one-row seed batch; its batches are forwarded without copying, and
// unmatched probe rows accumulate in a pass-through batch flushed in
// arrival order.
type optionalOp struct {
	sub    *groupPlan
	schema *varSchema
}

func (op *optionalOp) open(e *Evaluator, in batchIter) batchIter {
	return &optionalIter{op: op, e: e, in: in}
}

type optionalIter struct {
	op *optionalOp
	e  *Evaluator
	in batchIter

	inBatch *Batch
	inOrd   int

	sub      batchIter
	subAny   bool
	subProbe rowRef
	seed     *Batch
	pass     *Batch // unmatched probe rows awaiting flush
	held     *Batch // sub batch held back while pass flushes first
}

func (it *optionalIter) next() (*Batch, error) {
	if it.held != nil {
		b := it.held
		it.held = nil
		return b, nil
	}
	for {
		if it.sub != nil {
			b, err := it.sub.next()
			if err != nil {
				return nil, err
			}
			if b != nil {
				if b.live() == 0 {
					continue
				}
				it.subAny = true
				if it.pass != nil && it.pass.live() > 0 {
					//lint:allow batchview held is returned on the next call, before sub is pulled again
					it.held = b
					return it.flushPass(), nil
				}
				return b, nil
			}
			it.sub.close()
			it.sub = nil
			if !it.subAny {
				if it.pass == nil {
					it.pass = newBatch(it.e.dict, it.op.schema, batchSizeMin)
				}
				it.pass.beginRow(it.subProbe)
				it.pass.commitRow()
				if it.pass.n >= batchSizeMax {
					return it.flushPass(), nil
				}
			}
		}
		probe, ok, err := it.nextProbeRow()
		if err != nil {
			return nil, err
		}
		if !ok {
			if it.pass != nil && it.pass.live() > 0 {
				return it.flushPass(), nil
			}
			return nil, nil
		}
		it.subProbe, it.subAny = probe, false
		if it.seed == nil {
			it.seed = newBatch(it.e.dict, it.op.schema, 1)
		}
		it.seed.reset()
		it.seed.beginRow(probe)
		it.seed.commitRow()
		it.sub = it.op.sub.open(it.e, &batchesIter{batches: []*Batch{it.seed}})
	}
}

func (it *optionalIter) flushPass() *Batch {
	b := it.pass
	it.pass = nil
	return b
}

func (it *optionalIter) nextProbeRow() (rowRef, bool, error) {
	for {
		if it.inBatch != nil && it.inOrd < it.inBatch.live() {
			i := it.inBatch.row(it.inOrd)
			it.inOrd++
			return rowRef{b: it.inBatch, i: i}, true, nil
		}
		b, err := nextLive(it.in)
		if err != nil || b == nil {
			return rowRef{}, false, err
		}
		//lint:allow batchview inBatch is drained before the next pull invalidates it
		it.inBatch, it.inOrd = b, 0
	}
}

func (it *optionalIter) close() {
	if it.sub != nil {
		it.sub.close()
		it.sub = nil
	}
	it.in.close()
}

func (op *optionalOp) explain(b *strings.Builder, indent string) {
	fmt.Fprintf(b, "%soptional\n", indent)
	op.sub.explain(b, indent+"  ")
}

// unionOp concatenates the solutions of each branch, seeded per row.
// Branches share the enclosing group's schema, so their batches forward
// through unchanged.
type unionOp struct {
	branches []*groupPlan
	schema   *varSchema
}

func (op *unionOp) open(e *Evaluator, in batchIter) batchIter {
	return &unionIter{op: op, e: e, in: in}
}

type unionIter struct {
	op *unionOp
	e  *Evaluator
	in batchIter

	inBatch *Batch
	inOrd   int

	probe  rowRef
	hasRow bool
	branch int
	sub    batchIter
	seed   *Batch
}

func (it *unionIter) next() (*Batch, error) {
	for {
		if it.sub != nil {
			b, err := it.sub.next()
			if err != nil {
				return nil, err
			}
			if b != nil {
				if b.live() == 0 {
					continue
				}
				return b, nil
			}
			it.sub.close()
			it.sub = nil
		}
		if it.hasRow && it.branch < len(it.op.branches) {
			if it.seed == nil {
				it.seed = newBatch(it.e.dict, it.op.schema, 1)
			}
			it.seed.reset()
			it.seed.beginRow(it.probe)
			it.seed.commitRow()
			it.sub = it.op.branches[it.branch].open(it.e, &batchesIter{batches: []*Batch{it.seed}})
			it.branch++
			continue
		}
		it.hasRow = false
		for {
			if it.inBatch != nil && it.inOrd < it.inBatch.live() {
				i := it.inBatch.row(it.inOrd)
				it.inOrd++
				it.probe, it.hasRow, it.branch = rowRef{b: it.inBatch, i: i}, true, 0
				break
			}
			b, err := nextLive(it.in)
			if err != nil || b == nil {
				return nil, err
			}
			//lint:allow batchview inBatch is drained before the next pull invalidates it
			it.inBatch, it.inOrd = b, 0
		}
	}
}

func (it *unionIter) close() {
	if it.sub != nil {
		it.sub.close()
		it.sub = nil
	}
	it.in.close()
}

func (op *unionOp) explain(b *strings.Builder, indent string) {
	fmt.Fprintf(b, "%sunion\n", indent)
	for _, br := range op.branches {
		fmt.Fprintf(b, "%s branch\n", indent)
		br.explain(b, indent+"  ")
	}
}

// nestedGroupOp evaluates a nested group graph pattern with its own
// filter scope.
type nestedGroupOp struct {
	sub *groupPlan
}

func (op *nestedGroupOp) open(e *Evaluator, in batchIter) batchIter {
	return op.sub.open(e, in)
}

func (op *nestedGroupOp) explain(b *strings.Builder, indent string) {
	fmt.Fprintf(b, "%sgroup\n", indent)
	op.sub.explain(b, indent+"  ")
}

// subSelectOp evaluates a nested SELECT once and joins its solutions
// with the input rows on their shared variables. The sub-evaluation is
// lazy (an empty input never runs it) and cached on the operator as
// decoded terms — sound across evaluations in both dictionary modes —
// so OPTIONAL re-entry and cached plans reuse the solution set.
type subSelectOp struct {
	sub    *selectPlan
	schema *varSchema

	once sync.Once
	res  []Binding
	err  error
}

func (op *subSelectOp) open(e *Evaluator, in batchIter) batchIter {
	return &subSelectIter{op: op, e: e, in: in, target: batchSizeMin}
}

func (op *subSelectOp) solutions(e *Evaluator) ([]Binding, error) {
	op.once.Do(func() {
		res, err := op.sub.run(e, []Binding{{}})
		if err != nil {
			op.err = err
			return
		}
		op.res = res.Rows
	})
	return op.res, op.err
}

type subSelectIter struct {
	op *subSelectOp
	e  *Evaluator
	in batchIter

	inBatch *Batch
	inOrd   int
	target  int
	out     *Batch
}

func (it *subSelectIter) next() (*Batch, error) {
	var out *Batch
	for {
		probe, ok, err := it.nextProbeRow()
		if err != nil {
			return nil, err
		}
		if !ok {
			if out != nil && out.live() > 0 {
				return out, nil
			}
			return nil, nil
		}
		res, err := it.op.solutions(it.e)
		if err != nil {
			return nil, err
		}
		if out == nil {
			if it.out == nil || it.out.cap < it.target {
				it.out = newBatch(it.e.dict, it.op.schema, it.target)
			} else {
				it.out.reset()
			}
			out = it.out
		}
		for _, cand := range res {
			r := out.beginRow(probe)
			compatible := true
			for k, v := range cand {
				c, has := out.schema.col(k)
				if !has {
					continue
				}
				if ex := out.cols[c][r]; ex != 0 {
					if !out.dict.decode(ex).Equal(v) {
						compatible = false
						break
					}
				} else {
					out.cols[c][r] = out.dict.encode(v)
				}
			}
			if compatible {
				out.commitRow()
			}
		}
		if out.n >= it.target {
			if it.target < batchSizeMax {
				it.target *= batchSizeGrowth
			}
			return out, nil
		}
	}
}

func (it *subSelectIter) nextProbeRow() (rowRef, bool, error) {
	for {
		if it.inBatch != nil && it.inOrd < it.inBatch.live() {
			i := it.inBatch.row(it.inOrd)
			it.inOrd++
			return rowRef{b: it.inBatch, i: i}, true, nil
		}
		b, err := nextLive(it.in)
		if err != nil || b == nil {
			return rowRef{}, false, err
		}
		//lint:allow batchview inBatch is drained before the next pull invalidates it
		it.inBatch, it.inOrd = b, 0
	}
}

func (it *subSelectIter) close() { it.in.close() }

func (op *subSelectOp) explain(b *strings.Builder, indent string) {
	fmt.Fprintf(b, "%ssub-select\n", indent)
	op.sub.explain(b, indent+"  ")
}

// aggregateOp groups rows and evaluates aggregate projections and HAVING
// constraints. Blocking: grouping needs the full input, drained batch by
// batch and keyed on fixed-width ID tuples when every GROUP BY key is a
// plain variable (see Evaluator.aggregateBatches).
type aggregateOp struct {
	q *SelectQuery
}

func (op *aggregateOp) open(e *Evaluator, in batchIter) batchIter {
	return &aggregateIter{op: op, e: e, in: in}
}

type aggregateIter struct {
	op  *aggregateOp
	e   *Evaluator
	in  batchIter
	out *batchesIter
}

func (it *aggregateIter) next() (*Batch, error) {
	if it.out == nil {
		grouped, err := it.e.aggregateBatches(it.op.q, it.in)
		if err != nil {
			return nil, err
		}
		it.out = &batchesIter{batches: []*Batch{batchFromBindings(it.e.dict, bindingsSchema(grouped), grouped)}}
	}
	return it.out.next()
}

func (it *aggregateIter) close() { it.in.close() }

// bindingsSchema derives a schema from the variable union of
// materialised rows (aggregate output and SELECT * headers).
func bindingsSchema(rows []Binding) *varSchema {
	set := make(map[string]bool)
	for _, row := range rows {
		for k := range row {
			set[k] = true
		}
	}
	return schemaOf(set)
}

func (op *aggregateOp) explain(b *strings.Builder, indent string) {
	fmt.Fprintf(b, "%saggregate", indent)
	if len(op.q.GroupBy) > 0 {
		keys := make([]string, len(op.q.GroupBy))
		for i, g := range op.q.GroupBy {
			keys[i] = exprString(g)
		}
		fmt.Fprintf(b, " group=%s", strings.Join(keys, ","))
	}
	if len(op.q.Having) > 0 {
		fmt.Fprintf(b, " having=%d", len(op.q.Having))
	}
	b.WriteByte('\n')
}

// projectOp applies the SELECT projection, rewriting each input batch
// into a batch over the projection's schema — an ID-to-ID column copy
// for plain variables, with expression results encoded through the
// evaluation dictionary. An explicit projection streams through one
// reused output slab; SELECT * is the one blocking modifier — the
// header depends on the rows, so it materialises at open, which is what
// lets a cursor report Vars before iteration.
type projectOp struct {
	q       *SelectQuery
	grouped bool
}

func (op *projectOp) open(e *Evaluator, in batchIter) batchIter {
	it := &projectIter{op: op, e: e, in: in}
	if op.q.Star {
		rows, err := drainMaterialise(in)
		if err != nil {
			it.err = err
			return it
		}
		it.vars = e.projectionVars(op.q, rows)
		it.star = &batchesIter{batches: []*Batch{batchFromBindings(e.dict, newSchema(it.vars), rows)}}
		return it
	}
	it.vars = e.projectionVars(op.q, nil)
	it.schema = newSchema(it.vars)
	return it
}

type projectIter struct {
	op     *projectOp
	e      *Evaluator
	in     batchIter
	vars   []string
	schema *varSchema
	star   *batchesIter // materialised output of a SELECT *
	out    *Batch       // reused output slab
	err    error
}

func (it *projectIter) next() (*Batch, error) {
	if it.err != nil {
		return nil, it.err
	}
	if it.star != nil {
		return it.star.next()
	}
	b, err := nextLive(it.in)
	if err != nil || b == nil {
		return nil, err
	}
	n := b.live()
	if it.out == nil || it.out.cap < n {
		it.out = newBatch(it.e.dict, it.schema, max(n, b.cap))
	} else {
		it.out.reset()
	}
	out := it.out
	for ord := 0; ord < n; ord++ {
		i := b.row(ord)
		in := rowRef{b: b, i: i}
		r := out.beginRow(rowRef{})
		for _, item := range it.op.q.Projection {
			c, has := it.schema.col(item.Var)
			if !has {
				continue
			}
			if item.Expr != nil && !it.op.grouped {
				if t, ok := it.e.evalExpr(item.Expr, in).asTerm(); ok {
					out.cols[c][r] = out.dict.encode(t)
				}
				continue
			}
			// Plain variables, and grouped rows (which already carry the
			// computed aggregate bindings), copy through as IDs.
			out.cols[c][r] = in.lookupID(item.Var)
		}
		out.commitRow()
	}
	return out, nil
}

func (it *projectIter) close() { it.in.close() }

func (op *projectOp) explain(b *strings.Builder, indent string) {
	if op.q.Star {
		fmt.Fprintf(b, "%sproject *\n", indent)
		return
	}
	items := make([]string, len(op.q.Projection))
	for i, item := range op.q.Projection {
		if item.Expr != nil {
			items[i] = "(" + exprString(item.Expr) + " AS ?" + item.Var + ")"
		} else {
			items[i] = "?" + item.Var
		}
	}
	fmt.Fprintf(b, "%sproject %s\n", indent, strings.Join(items, " "))
}

// distinctOp deduplicates rows over the projected variables, streaming:
// each batch's fixed-width ID-tuple keys are built into a reused arena
// and checked against the seen set, compacting the selection vector in
// place so first occurrences flow through immediately (the same order
// materialised deduplication produced). The projection's batches carry
// exactly the projected columns, so the keys range over the batch
// schema.
type distinctOp struct {
	proj *projectOp
}

func (op *distinctOp) open(e *Evaluator, in batchIter) batchIter {
	return &distinctIter{in: in, seen: make(map[string]bool)}
}

type distinctIter struct {
	in     batchIter
	seen   map[string]bool
	kb     []byte
	selBuf []int32
}

func (it *distinctIter) next() (*Batch, error) {
	for {
		b, err := it.in.next()
		if err != nil || b == nil {
			return nil, err
		}
		n := b.live()
		var keep []int32
		if b.sel != nil {
			keep = b.sel[:0]
		} else {
			if cap(it.selBuf) < n {
				it.selBuf = make([]int32, 0, b.cap)
			}
			keep = it.selBuf[:0]
		}
		for ord := 0; ord < n; ord++ {
			i := b.row(ord)
			it.kb = rowKey(it.kb[:0], rowRef{b: b, i: i}, b.schema.names)
			if !it.seen[string(it.kb)] {
				it.seen[string(it.kb)] = true
				keep = append(keep, int32(i))
			}
		}
		b.sel = keep
		if len(keep) > 0 {
			return b, nil
		}
	}
}

func (it *distinctIter) close() { it.in.close() }

func (op *distinctOp) explain(b *strings.Builder, indent string) {
	fmt.Fprintf(b, "%sdistinct\n", indent)
}

// orderOp sorts rows by the ORDER BY keys (stable; incomparable values
// tie). Blocking: sorting needs the full input, drained batch by batch —
// rows materialise to terms here, the ORDER BY comparator being one of
// the engine's late-materialisation points — but when a downstream
// LIMIT bounds how many sorted rows can ever be consumed (topK > 0),
// the operator keeps only the top K rows in a bounded heap instead of
// materialising the whole input.
type orderOp struct {
	keys []OrderKey
	// topK > 0 bounds how many rows of the sorted output are reachable
	// (OFFSET+LIMIT). The input is still fully drained, but memory stays
	// O(topK) and the final sort is over topK rows, not the input.
	topK int
}

func (op *orderOp) open(e *Evaluator, in batchIter) batchIter {
	return &orderIter{op: op, e: e, in: in}
}

type orderIter struct {
	op  *orderOp
	e   *Evaluator
	in  batchIter
	out *batchesIter
}

func (it *orderIter) next() (*Batch, error) {
	if it.out == nil {
		var rows []Binding
		var schema *varSchema
		var err error
		if it.op.topK > 0 {
			rows, schema, err = it.drainTopK(it.op.topK)
		} else {
			rows, schema, err = it.drainAll()
			if err == nil {
				it.e.orderRows(rows, it.op.keys)
			}
		}
		if err != nil {
			return nil, err
		}
		if schema == nil {
			schema = newSchema(nil)
		}
		it.out = &batchesIter{batches: []*Batch{batchFromBindings(it.e.dict, schema, rows)}}
	}
	return it.out.next()
}

// drainAll materialises the input, remembering its schema for the
// sorted output batches.
func (it *orderIter) drainAll() ([]Binding, *varSchema, error) {
	var rows []Binding
	var schema *varSchema
	for {
		b, err := it.in.next()
		if err != nil {
			return nil, nil, err
		}
		if b == nil {
			return rows, schema, nil
		}
		schema = b.schema
		for ord := 0; ord < b.live(); ord++ {
			rows = append(rows, b.binding(b.row(ord)))
		}
	}
}

// seqRow tags a row with its arrival sequence so the bounded heap can
// reproduce the stable sort exactly: among equal keys the earliest
// arrivals win, and the final order breaks key ties by arrival.
type seqRow struct {
	row Binding
	seq int
}

// drainTopK pulls the input to exhaustion keeping only the k first rows
// of the stable sort order in a max-heap: the root is the worst kept row
// (by key, later arrival losing ties), so each new row either replaces
// it or is dropped. O(n log k) comparisons, O(k) memory — also the
// per-shard pre-merge truncation of the sharded store's ordered merge.
func (it *orderIter) drainTopK(k int) ([]Binding, *varSchema, error) {
	// after reports whether a sorts strictly after b in the final order.
	after := func(a, b seqRow) bool {
		if c := it.e.compareOrderKeys(a.row, b.row, it.op.keys); c != 0 {
			return c > 0
		}
		return a.seq > b.seq
	}
	var heap []seqRow // max-heap under after(): root = worst kept row
	siftDown := func(i int) {
		for {
			l, r := 2*i+1, 2*i+2
			worst := i
			if l < len(heap) && after(heap[l], heap[worst]) {
				worst = l
			}
			if r < len(heap) && after(heap[r], heap[worst]) {
				worst = r
			}
			if worst == i {
				return
			}
			heap[i], heap[worst] = heap[worst], heap[i]
			i = worst
		}
	}
	var schema *varSchema
	seq := 0
	for {
		b, err := it.in.next()
		if err != nil {
			return nil, nil, err
		}
		if b == nil {
			break
		}
		schema = b.schema
		for ord := 0; ord < b.live(); ord++ {
			e := seqRow{row: b.binding(b.row(ord)), seq: seq}
			seq++
			if len(heap) < k {
				heap = append(heap, e)
				for i := len(heap) - 1; i > 0; { // sift up
					p := (i - 1) / 2
					if !after(heap[i], heap[p]) {
						break
					}
					heap[i], heap[p] = heap[p], heap[i]
					i = p
				}
				continue
			}
			if after(e, heap[0]) {
				continue // sorts after the worst kept row: unreachable
			}
			heap[0] = e
			siftDown(0)
		}
	}
	sort.Slice(heap, func(i, j int) bool { return after(heap[j], heap[i]) })
	rows := make([]Binding, len(heap))
	for i, e := range heap {
		rows[i] = e.row
	}
	return rows, schema, nil
}

func (it *orderIter) close() { it.in.close() }

func (op *orderOp) explain(b *strings.Builder, indent string) {
	keys := make([]string, len(op.keys))
	for i, k := range op.keys {
		keys[i] = exprString(k.Expr)
		if k.Desc {
			keys[i] += " desc"
		}
	}
	fmt.Fprintf(b, "%sorder %s", indent, strings.Join(keys, ", "))
	if op.topK > 0 {
		fmt.Fprintf(b, " top=%d", op.topK)
	}
	b.WriteByte('\n')
}

// sliceOp applies OFFSET and LIMIT by trimming the selection vectors of
// the batches flowing through. Once the limit is satisfied it closes
// its input, releasing any scans still in flight — with a streaming
// upstream (pushed=true, see planSelect) this stops the index scans
// themselves.
type sliceOp struct {
	offset, limit int
	pushed        bool // order/aggregate/distinct-free: early exit reaches the scans
}

func (op *sliceOp) open(e *Evaluator, in batchIter) batchIter {
	return &sliceIter{op: op, in: in}
}

type sliceIter struct {
	op      *sliceOp
	in      batchIter
	skipped int
	emitted int
	done    bool
}

func (it *sliceIter) next() (*Batch, error) {
	if it.done {
		return nil, nil
	}
	for {
		if it.op.limit >= 0 && it.emitted >= it.op.limit {
			it.done = true
			it.in.close()
			return nil, nil
		}
		b, err := it.in.next()
		if err != nil || b == nil {
			it.done = true
			return nil, err
		}
		n := b.live()
		if it.skipped < it.op.offset {
			skip := it.op.offset - it.skipped
			if skip > n {
				skip = n
			}
			it.skipped += skip
			if skip == n {
				continue
			}
			b.dropFirst(skip)
			n -= skip
		}
		if it.op.limit >= 0 {
			remain := it.op.limit - it.emitted
			if n > remain {
				b.truncLive(remain)
				n = remain
			}
		}
		if n == 0 {
			continue
		}
		it.emitted += n
		if it.op.limit >= 0 && it.emitted >= it.op.limit {
			it.done = true
			// Stop the upstream scans before the consumer even drains
			// this final batch.
			it.in.close()
		}
		return b, nil
	}
}

func (it *sliceIter) close() { it.in.close() }

func (op *sliceOp) explain(b *strings.Builder, indent string) {
	label := "slice"
	if op.pushed {
		label = "slice[pushed]"
	}
	fmt.Fprintf(b, "%s%s offset=%d limit=%d\n", indent, label, op.offset, op.limit)
}

// --- pattern scanning (shared by bind joins and hash build sides) ---

// scanPatternInto matches one triple pattern under a probe row,
// appending extended rows to the batch out returns. onRow runs after
// each appended row and reports whether to continue the scan; the
// streaming coroutine yields full batches from it and swaps in a fresh
// slab, which is why out is fetched per row rather than passed once.
// When the pattern binds a fresh geometry variable that a pending
// spatial filter constrains against an already-known geometry, and the
// source has a spatial index, the scan is served by an R-tree window
// query instead of a full predicate scan.
func (e *Evaluator) scanPatternInto(pat TriplePattern, probe rowRef, filters []*FilterElement, out func() *Batch, onRow func() bool) {
	newPatScan(e, pat, filters, out, onRow).run(probe)
}

// patScan is one pattern scan's reusable context. Bind joins run a
// scan per probe row, so everything a visit needs lives in fields and
// the visit callbacks are bound once at construction — a re-run
// mutates probe state and allocates nothing. Against an IDSource the
// scan runs in ID space end to end: the pattern resolves to store IDs,
// the index visitor yields encoded triples and the matched IDs land in
// the batch columns without a single term materialisation. Composite
// sources (the sharded store's multi-dictionary views) take the term
// path and intern each bound term into the evaluation-local dictionary.
type patScan struct {
	e       *Evaluator
	pat     TriplePattern
	filters []*FilterElement
	out     func() *Batch
	onRow   func() bool

	probe   rowRef   // current probe row
	s, p, o rdf.Term // pattern components resolved under probe (term path)

	sid, pid, oid rdf.ID // pattern components resolved under probe (ID path)

	visit       func(rdf.Triple) bool // bound tryBind
	visitWindow func(rdf.Triple) bool // bound windowVisit

	visitIDs       func(rdf.EncodedTriple) bool // bound tryBindIDs
	visitWindowIDs func(rdf.EncodedTriple) bool // bound windowVisitIDs
}

func newPatScan(e *Evaluator, pat TriplePattern, filters []*FilterElement, out func() *Batch, onRow func() bool) *patScan {
	sc := &patScan{e: e, pat: pat, filters: filters, out: out, onRow: onRow}
	sc.visit = sc.tryBind
	sc.visitWindow = sc.windowVisit
	sc.visitIDs = sc.tryBindIDs
	sc.visitWindowIDs = sc.windowVisitIDs
	return sc
}

// run scans the pattern under one probe row. When the pattern binds a
// fresh geometry variable that a pending spatial filter constrains
// against an already-known geometry, and the source has a spatial
// index, the scan is served by an R-tree window query instead of a
// full predicate scan.
func (sc *patScan) run(probe rowRef) {
	sc.probe = probe
	if sc.e.idsrc != nil {
		sc.runIDs(probe)
		return
	}
	sc.s, sc.p, sc.o = resolveTV(sc.pat.S, probe), resolveTV(sc.pat.P, probe), resolveTV(sc.pat.O, probe)

	if ss, ok := sc.e.src.(SpatialSource); ok && ss.SpatialIndexEnabled() &&
		!sc.p.IsZero() && GeometryPredicates[sc.p.Value] && sc.pat.O.IsVar() && sc.o.IsZero() {
		if env, found := sc.e.spatialWindowFor(sc.pat.O.Var, probe, sc.filters); found {
			ss.MatchGeometryWindow(env, sc.visitWindow)
			return
		}
	}
	sc.e.src.MatchTerms(sc.s, sc.p, sc.o, sc.visit)
}

// runIDs is the native scan: the pattern resolves to store IDs and the
// index visitors stay encoded. A bound component the store dictionary
// has never seen (including evaluation-computed overflow terms) matches
// nothing, so the scan is skipped outright.
func (sc *patScan) runIDs(probe rowRef) {
	sid, ok := resolveTVID(sc.pat.S, probe, sc.e.dict)
	if !ok {
		return
	}
	pid, ok := resolveTVID(sc.pat.P, probe, sc.e.dict)
	if !ok {
		return
	}
	oid, ok := resolveTVID(sc.pat.O, probe, sc.e.dict)
	if !ok {
		return
	}
	sc.sid, sc.pid, sc.oid = sid, pid, oid

	if pid != 0 && sc.pat.O.IsVar() && oid == 0 && GeometryPredicates[sc.e.dict.decode(termID(pid)).Value] {
		if ss, ok := sc.e.src.(SpatialIDSource); ok && ss.SpatialIndexEnabled() {
			if env, found := sc.e.spatialWindowFor(sc.pat.O.Var, probe, sc.filters); found {
				ss.MatchGeometryWindowIDs(env, sc.visitWindowIDs)
				return
			}
		}
	}
	sc.e.idsrc.MatchIDs(sid, pid, oid, sc.visitIDs)
}

// windowVisit filters R-tree window candidates down to the pattern
// before binding (the window over-approximates).
func (sc *patScan) windowVisit(t rdf.Triple) bool {
	if !sc.p.IsZero() && t.P.Value != sc.p.Value {
		return true
	}
	if !sc.s.IsZero() && !t.S.Equal(sc.s) {
		return true
	}
	return sc.tryBind(t)
}

// windowVisitIDs is windowVisit in ID space: one integer compare per
// over-approximated component.
func (sc *patScan) windowVisitIDs(t rdf.EncodedTriple) bool {
	if sc.pid != 0 && t.P != sc.pid {
		return true
	}
	if sc.sid != 0 && t.S != sc.sid {
		return true
	}
	return sc.tryBindIDs(t)
}

// tryBind stages one matched triple's bindings and reports whether the
// scan should continue. The staged row is discarded (never committed)
// on a conflicting repeated-variable binding.
func (sc *patScan) tryBind(t rdf.Triple) bool {
	b := sc.out()
	r := b.beginRow(sc.probe)
	if !bindStaged(b, r, sc.pat.S, t.S) || !bindStaged(b, r, sc.pat.P, t.P) || !bindStaged(b, r, sc.pat.O, t.O) {
		return true
	}
	b.commitRow()
	return sc.onRow()
}

// tryBindIDs stages one matched encoded triple's bindings — the native
// hot path: three ID stores per row, no term in sight.
func (sc *patScan) tryBindIDs(t rdf.EncodedTriple) bool {
	b := sc.out()
	r := b.beginRow(sc.probe)
	if !bindStagedID(b, r, sc.pat.S, termID(t.S)) || !bindStagedID(b, r, sc.pat.P, termID(t.P)) || !bindStagedID(b, r, sc.pat.O, termID(t.O)) {
		return true
	}
	b.commitRow()
	return sc.onRow()
}

// resolveTV resolves a pattern component under a probe row: constants
// pass through, bound variables take the probe's term, free variables
// resolve to the zero term (a scan wildcard).
func resolveTV(tv TermOrVar, probe rowRef) rdf.Term {
	if !tv.IsVar() {
		return tv.Term
	}
	if t, ok := probe.lookup(tv.Var); ok {
		return t
	}
	return rdf.Term{}
}

// resolveTVID resolves a pattern component to a store ID. ok=false
// means the component is bound to a term no indexed triple can carry
// (a dictionary miss or an evaluation-local overflow ID): the scan
// matches nothing.
func resolveTVID(tv TermOrVar, probe rowRef, d *execDict) (rdf.ID, bool) {
	if !tv.IsVar() {
		return d.storeID(tv.Term)
	}
	if probe.b != nil {
		if id := probe.lookupID(tv.Var); id != 0 {
			if id >= overflowBase {
				return 0, false
			}
			return rdf.ID(id), true
		}
		return 0, true
	}
	if probe.m != nil {
		if t, ok := probe.m[tv.Var]; ok && !t.IsZero() {
			return d.storeID(t)
		}
	}
	return 0, true
}

// alwaysScan is the onRow of scans without early termination; a named
// function so passing it allocates no closure.
func alwaysScan() bool { return true }

// bindStaged binds one pattern component into the staged row r of b,
// reporting false on a conflicting repeated-variable binding. Term
// path: the value interns into the evaluation dictionary only if the
// variable actually lands in the schema.
func bindStaged(b *Batch, r int, tv TermOrVar, val rdf.Term) bool {
	if !tv.IsVar() {
		return true
	}
	c, ok := b.schema.col(tv.Var)
	if !ok {
		return true
	}
	id := b.dict.encode(val)
	if ex := b.cols[c][r]; ex != 0 {
		return ex == id
	}
	b.cols[c][r] = id
	return true
}

// bindStagedID is bindStaged for already-encoded values.
func bindStagedID(b *Batch, r int, tv TermOrVar, id termID) bool {
	if !tv.IsVar() {
		return true
	}
	c, ok := b.schema.col(tv.Var)
	if !ok {
		return true
	}
	if ex := b.cols[c][r]; ex != 0 {
		return ex == id
	}
	b.cols[c][r] = id
	return true
}

// spatialWindowFor inspects pending filters for a spatial predicate
// constraining variable v against a geometry already computable under
// the probe row; it returns the candidate envelope.
func (e *Evaluator) spatialWindowFor(v string, probe rowRef, filters []*FilterElement) (geom.Envelope, bool) {
	for _, f := range filters {
		if env, ok := e.findSpatialConstraint(f.Cond, v, probe); ok {
			return env, true
		}
	}
	return geom.Envelope{}, false
}

var spatialJoinFns = map[string]bool{
	"strdf:anyinteract": true,
	"strdf:intersects":  true,
	"strdf:contains":    true,
	"strdf:within":      true,
	"strdf:overlap":     true,
	"strdf:overlaps":    true,
	"strdf:touches":     true,
	"strdf:touch":       true,
	"strdf:equals":      true,
	"strdf:coveredby":   true,
	"strdf:covers":      true,
}

func (e *Evaluator) findSpatialConstraint(expr Expr, v string, probe rowRef) (geom.Envelope, bool) {
	switch n := expr.(type) {
	case *CallExpr:
		if spatialJoinFns[n.Name] && len(n.Args) == 2 {
			for i := 0; i < 2; i++ {
				if ve, ok := n.Args[i].(*VarExpr); ok && ve.Name == v {
					other := e.evalExpr(n.Args[1-i], probe)
					if other.Kind == VGeom {
						return other.Geom.Envelope(), true
					}
				}
			}
		}
	case *BinaryExpr:
		if n.Op == "&&" {
			if env, ok := e.findSpatialConstraint(n.L, v, probe); ok {
				return env, true
			}
			return e.findSpatialConstraint(n.R, v, probe)
		}
	}
	return geom.Envelope{}, false
}
