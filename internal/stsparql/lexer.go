package stsparql

import (
	"fmt"
	"strings"
)

type tokenKind int

const (
	tokEOF    tokenKind = iota
	tokWord             // keyword, prefixed name, or "a"
	tokVar              // ?name
	tokIRI              // <...>
	tokString           // "..." (Datatype/Lang captured separately)
	tokNumber           // 123 or 1.5
	tokPunct            // ( ) { } . ; ,
	tokOp               // = != < <= > >= && || ! + - * /
)

type token struct {
	kind     tokenKind
	text     string
	datatype string // for tokString: the raw ^^ target (IRI or qname)
	lang     string
	line     int
}

type lexer struct {
	src  string
	pos  int
	line int
	toks []token
}

func lex(src string) ([]token, error) {
	l := &lexer{src: src, line: 1}
	for {
		tok, err := l.next()
		if err != nil {
			return nil, err
		}
		l.toks = append(l.toks, tok)
		if tok.kind == tokEOF {
			return l.toks, nil
		}
	}
}

func (l *lexer) errf(format string, args ...any) error {
	return fmt.Errorf("stsparql: line %d: %s", l.line, fmt.Sprintf(format, args...))
}

func (l *lexer) skipWS() {
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		switch {
		case c == '\n':
			l.line++
			l.pos++
		case c == ' ' || c == '\t' || c == '\r':
			l.pos++
		case c == '#':
			for l.pos < len(l.src) && l.src[l.pos] != '\n' {
				l.pos++
			}
		default:
			return
		}
	}
}

func isWordByte(c byte) bool {
	return c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' ||
		c >= '0' && c <= '9' || c == '_' || c == '-' || c == ':' || c == '.'
}

func (l *lexer) next() (token, error) {
	l.skipWS()
	if l.pos >= len(l.src) {
		return token{kind: tokEOF, line: l.line}, nil
	}
	c := l.src[l.pos]
	switch {
	case c == '?' || c == '$':
		l.pos++
		start := l.pos
		for l.pos < len(l.src) && isWordByte(l.src[l.pos]) && l.src[l.pos] != ':' && l.src[l.pos] != '.' {
			l.pos++
		}
		if l.pos == start {
			return token{}, l.errf("empty variable name")
		}
		return token{kind: tokVar, text: l.src[start:l.pos], line: l.line}, nil
	case c == '<':
		// Could be IRI or operator "<", "<=". IRI if followed by non-space
		// non-'=' characters ending in '>': scan ahead.
		if j := strings.IndexByte(l.src[l.pos:], '>'); j > 0 {
			candidate := l.src[l.pos+1 : l.pos+j]
			if !strings.ContainsAny(candidate, " \t\n<") && (strings.Contains(candidate, ":") || candidate == "") {
				l.pos += j + 1
				return token{kind: tokIRI, text: candidate, line: l.line}, nil
			}
		}
		l.pos++
		if l.pos < len(l.src) && l.src[l.pos] == '=' {
			l.pos++
			return token{kind: tokOp, text: "<=", line: l.line}, nil
		}
		return token{kind: tokOp, text: "<", line: l.line}, nil
	case c == '"' || c == '\'':
		return l.stringToken(c)
	case c >= '0' && c <= '9':
		start := l.pos
		for l.pos < len(l.src) {
			c := l.src[l.pos]
			if c >= '0' && c <= '9' || c == '.' || c == 'e' || c == 'E' {
				l.pos++
			} else {
				break
			}
		}
		text := l.src[start:l.pos]
		// A trailing dot is punctuation, not part of the number.
		if strings.HasSuffix(text, ".") {
			text = text[:len(text)-1]
			l.pos--
		}
		return token{kind: tokNumber, text: text, line: l.line}, nil
	case c == '(' || c == ')' || c == '{' || c == '}' || c == '.' || c == ';' || c == ',':
		l.pos++
		return token{kind: tokPunct, text: string(c), line: l.line}, nil
	case c == '=':
		l.pos++
		return token{kind: tokOp, text: "=", line: l.line}, nil
	case c == '!':
		l.pos++
		if l.pos < len(l.src) && l.src[l.pos] == '=' {
			l.pos++
			return token{kind: tokOp, text: "!=", line: l.line}, nil
		}
		return token{kind: tokOp, text: "!", line: l.line}, nil
	case c == '>':
		l.pos++
		if l.pos < len(l.src) && l.src[l.pos] == '=' {
			l.pos++
			return token{kind: tokOp, text: ">=", line: l.line}, nil
		}
		return token{kind: tokOp, text: ">", line: l.line}, nil
	case c == '&':
		if l.pos+1 < len(l.src) && l.src[l.pos+1] == '&' {
			l.pos += 2
			return token{kind: tokOp, text: "&&", line: l.line}, nil
		}
		return token{}, l.errf("stray '&'")
	case c == '|':
		if l.pos+1 < len(l.src) && l.src[l.pos+1] == '|' {
			l.pos += 2
			return token{kind: tokOp, text: "||", line: l.line}, nil
		}
		return token{}, l.errf("stray '|'")
	case c == '+' || c == '*' || c == '/':
		l.pos++
		return token{kind: tokOp, text: string(c), line: l.line}, nil
	case c == '-':
		// Negative number literal or minus operator.
		if l.pos+1 < len(l.src) && l.src[l.pos+1] >= '0' && l.src[l.pos+1] <= '9' {
			l.pos++
			t, err := l.next()
			if err != nil {
				return token{}, err
			}
			t.text = "-" + t.text
			return t, nil
		}
		l.pos++
		return token{kind: tokOp, text: "-", line: l.line}, nil
	default:
		start := l.pos
		for l.pos < len(l.src) && isWordByte(l.src[l.pos]) {
			l.pos++
		}
		if l.pos == start {
			return token{}, l.errf("unexpected character %q", string(c))
		}
		text := l.src[start:l.pos]
		// Trailing dots belong to the triple terminator, not the name —
		// except inside decimal-looking names, which don't occur here.
		for strings.HasSuffix(text, ".") && !strings.HasSuffix(text, "..") {
			// "gn:P.PPLA"-style names keep interior dots; only strip if the
			// dot is final and the remaining char is not part of the name.
			text = text[:len(text)-1]
			l.pos--
		}
		return token{kind: tokWord, text: text, line: l.line}, nil
	}
}

func (l *lexer) stringToken(quote byte) (token, error) {
	l.pos++ // opening quote
	var b strings.Builder
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		if c == '\\' && l.pos+1 < len(l.src) {
			l.pos++
			switch l.src[l.pos] {
			case 'n':
				b.WriteByte('\n')
			case 't':
				b.WriteByte('\t')
			default:
				b.WriteByte(l.src[l.pos])
			}
			l.pos++
			continue
		}
		if c == quote {
			l.pos++
			tok := token{kind: tokString, text: b.String(), line: l.line}
			// ^^datatype
			if l.pos+1 < len(l.src) && l.src[l.pos] == '^' && l.src[l.pos+1] == '^' {
				l.pos += 2
				if l.pos < len(l.src) && l.src[l.pos] == '<' {
					j := strings.IndexByte(l.src[l.pos:], '>')
					if j < 0 {
						return token{}, l.errf("unterminated datatype IRI")
					}
					tok.datatype = l.src[l.pos+1 : l.pos+j]
					l.pos += j + 1
				} else {
					start := l.pos
					for l.pos < len(l.src) && isWordByte(l.src[l.pos]) {
						l.pos++
					}
					tok.datatype = l.src[start:l.pos]
				}
			} else if l.pos < len(l.src) && l.src[l.pos] == '@' {
				l.pos++
				start := l.pos
				for l.pos < len(l.src) && (l.src[l.pos] >= 'a' && l.src[l.pos] <= 'z' || l.src[l.pos] == '-') {
					l.pos++
				}
				tok.lang = l.src[start:l.pos]
			}
			return tok, nil
		}
		if c == '\n' {
			l.line++
		}
		b.WriteByte(c)
		l.pos++
	}
	return token{}, l.errf("unterminated string literal")
}
