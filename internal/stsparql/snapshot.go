package stsparql

import "repro/internal/rdf"

// RowSnapshot is a compact, immutable copy of a materialised result:
// the header plus a flat row-major term slab. The streaming cursors
// yield Bindings that are views into the engine's current columnar
// batch, reused on the next pull — a snapshot copies each row's terms
// out of that view as it streams past (the result-cache tee of the
// endpoint), so the retained result shares nothing with the engine.
//
// A zero Term in the slab is an unbound column; the result encoders
// skip zero terms, so replaying through them is byte-identical to the
// original streamed encoding.
type RowSnapshot struct {
	vars  []string
	terms []rdf.Term // row-major; len == rows*len(vars)
	rows  int
	bytes int64
}

// NewRowSnapshot returns an empty snapshot with the given header. The
// header must be the exact var list the original encoding used — the
// replay is keyed by it.
func NewRowSnapshot(vars []string) *RowSnapshot {
	v := make([]string, len(vars))
	copy(v, vars)
	s := &RowSnapshot{vars: v}
	for _, n := range v {
		s.bytes += int64(len(n)) + 16
	}
	return s
}

// Append copies one row out of the (reused) cursor view.
func (s *RowSnapshot) Append(row Binding) {
	for _, v := range s.vars {
		t := row[v] // zero Term when unbound
		s.terms = append(s.terms, t)
		s.bytes += int64(len(t.Value)+len(t.Datatype)+len(t.Lang)) + 48
	}
	s.rows++
}

// Vars is the result header.
func (s *RowSnapshot) Vars() []string { return s.vars }

// Len is the number of rows.
func (s *RowSnapshot) Len() int { return s.rows }

// Bytes is the snapshot's estimated memory footprint, the unit the
// result cache's byte bound is enforced in.
func (s *RowSnapshot) Bytes() int64 { return s.bytes }

// Row fills dst with row i's bindings and returns it. dst is cleared
// first so one map can be reused across the whole replay (the same
// reuse contract the streaming cursors have); a nil dst allocates one.
// Unbound columns stay absent.
func (s *RowSnapshot) Row(i int, dst Binding) Binding {
	if dst == nil {
		dst = make(Binding, len(s.vars))
	}
	clear(dst)
	base := i * len(s.vars)
	for j, v := range s.vars {
		if t := s.terms[base+j]; !t.IsZero() {
			dst[v] = t
		}
	}
	return dst
}

// Result materialises the snapshot into an owned Result (the ASK and
// non-streamed replay path).
func (s *RowSnapshot) Result() *Result {
	res := &Result{Vars: s.vars}
	for i := 0; i < s.rows; i++ {
		res.Rows = append(res.Rows, s.Row(i, Binding{}))
	}
	return res
}
