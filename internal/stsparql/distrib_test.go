package stsparql

import (
	"fmt"
	"testing"

	"repro/internal/rdf"
)

// --- top-k ORDER BY + LIMIT ---

// valStore builds a store of n subjects with an integer ex:val — with
// deliberate duplicate values, so the bounded heap's tie handling is
// exercised against the stable sort.
func valStore(n int) *rdf.Store {
	s := rdf.NewStore()
	for i := 0; i < n; i++ {
		subj := rdf.NewIRI(fmt.Sprintf("http://example.org/s%03d", i))
		s.Add(rdf.Triple{S: subj, P: rdf.NewIRI("http://example.org/val"),
			O: rdf.NewInteger(int64((i * 37) % 11))})
	}
	return s
}

// TestOrderTopKMatchesFullSort pins the bounded-heap order operator at
// the query level: for every k, ORDER BY ... LIMIT k must return exactly
// the first k rows of the unlimited sort. The keys carry a full
// tiebreak (?s) because index scan order — the engine's tie order — is
// not stable across separate query runs.
func TestOrderTopKMatchesFullSort(t *testing.T) {
	src := valStore(50)
	for _, desc := range []bool{false, true} {
		dir := ""
		if desc {
			dir = "DESC(?v) ?s"
		} else {
			dir = "ASC(?v) ?s"
		}
		full, err := NewEvaluator(src).Select(mustParse(t, fmt.Sprintf(
			`SELECT ?s ?v WHERE { ?s <http://example.org/val> ?v . } ORDER BY %s`, dir)).Select)
		if err != nil {
			t.Fatal(err)
		}
		for _, k := range []int{0, 1, 3, 10, 49, 50, 80} {
			for _, offset := range []int{0, 5} {
				limited, err := NewEvaluator(src).Select(mustParse(t, fmt.Sprintf(
					`SELECT ?s ?v WHERE { ?s <http://example.org/val> ?v . } ORDER BY %s LIMIT %d OFFSET %d`,
					dir, k, offset)).Select)
				if err != nil {
					t.Fatal(err)
				}
				want := full.Rows
				if offset < len(want) {
					want = want[offset:]
				} else {
					want = nil
				}
				if k < len(want) {
					want = want[:k]
				}
				if len(limited.Rows) != len(want) {
					t.Fatalf("%s k=%d off=%d: rows=%d want %d", dir, k, offset, len(limited.Rows), len(want))
				}
				for i := range want {
					if limited.Rows[i]["s"].Value != want[i]["s"].Value ||
						limited.Rows[i]["v"].Value != want[i]["v"].Value {
						t.Fatalf("%s k=%d off=%d row %d: got %v/%v want %v/%v", dir, k, offset, i,
							limited.Rows[i]["s"].Value, limited.Rows[i]["v"].Value,
							want[i]["s"].Value, want[i]["v"].Value)
					}
				}
			}
		}
	}
}

// TestOrderTopKStableTies pins tie handling at the operator level,
// where arrival order is deterministic: the bounded heap must keep the
// earliest-arriving rows among equal keys and emit them in arrival
// order, exactly like the stable full sort.
func TestOrderTopKStableTies(t *testing.T) {
	var rows []Binding
	for i := 0; i < 40; i++ {
		rows = append(rows, Binding{
			"s": rdf.NewIRI(fmt.Sprintf("http://example.org/r%02d", i)),
			"v": rdf.NewInteger(int64(i % 4)),
		})
	}
	keys := []OrderKey{{Expr: &VarExpr{Name: "v"}}}
	e := NewEvaluator(emptySource{})

	sorted := make([]Binding, len(rows))
	copy(sorted, rows)
	e.orderRows(sorted, keys)

	for _, k := range []int{1, 2, 5, 13, 40, 100} {
		op := &orderOp{keys: keys, topK: k}
		it := op.open(e, seedIter(e.dict, bindingsSchema(rows), rows))
		got, err := drainMaterialise(it)
		it.close()
		if err != nil {
			t.Fatal(err)
		}
		want := sorted
		if k < len(want) {
			want = want[:k]
		}
		if len(got) != len(want) {
			t.Fatalf("k=%d: rows=%d want %d", k, len(got), len(want))
		}
		for i := range want {
			if got[i]["s"].Value != want[i]["s"].Value {
				t.Fatalf("k=%d row %d: got %s want %s", k, i, got[i]["s"].Value, want[i]["s"].Value)
			}
		}
	}
}

// --- partial-aggregate recombination ---

// TestAggMergeRecombination splits a dataset across two disjoint stores,
// runs the partial query on each, and requires Finalize over the
// concatenated partials to equal the direct evaluation on the union.
func TestAggMergeRecombination(t *testing.T) {
	mk := func() (*rdf.Store, *rdf.Store, *rdf.Store) {
		a, b, all := rdf.NewStore(), rdf.NewStore(), rdf.NewStore()
		for i := 0; i < 30; i++ {
			subj := rdf.NewIRI(fmt.Sprintf("http://example.org/h%02d", i))
			grp := rdf.NewLiteral(fmt.Sprintf("g%d", i%4))
			val := rdf.NewFloat(float64(i%7) / 2)
			ts := []rdf.Triple{
				{S: subj, P: rdf.NewIRI("http://example.org/group"), O: grp},
				{S: subj, P: rdf.NewIRI("http://example.org/score"), O: val},
			}
			target := a
			if i%3 == 0 {
				target = b
			}
			for _, tr := range ts {
				target.Add(tr)
				all.Add(tr)
			}
		}
		return a, b, all
	}

	queries := []string{
		`SELECT ?g (COUNT(?h) AS ?n) (SUM(?v) AS ?sum) (AVG(?v) AS ?avg)
   (MIN(?v) AS ?lo) (MAX(?v) AS ?hi)
 WHERE { ?h <http://example.org/group> ?g ; <http://example.org/score> ?v . }
 GROUP BY ?g`,
		`SELECT ?g (COUNT(?h) AS ?n)
 WHERE { ?h <http://example.org/group> ?g . }
 GROUP BY ?g HAVING (COUNT(?h) >= 8)`,
		`SELECT (COUNT(*) AS ?n) (AVG(?v) AS ?avg)
 WHERE { ?h <http://example.org/score> ?v . }`,
		`SELECT ?g ((MAX(?v) - MIN(?v)) AS ?spread)
 WHERE { ?h <http://example.org/group> ?g ; <http://example.org/score> ?v . }
 GROUP BY ?g`,
	}
	for qi, src := range queries {
		a, b, all := mk()
		q := mustParse(t, src)
		am, ok := PlanAggMerge(q.Select)
		if !ok {
			t.Fatalf("query %d: PlanAggMerge rejected", qi)
		}
		var partials []Binding
		for _, st := range []*rdf.Store{a, b} {
			res, err := NewEvaluator(st).Select(am.Partial().Select)
			if err != nil {
				t.Fatal(err)
			}
			partials = append(partials, res.Rows...)
		}
		merged, err := am.Finalize(partials)
		if err != nil {
			t.Fatal(err)
		}
		want, err := NewEvaluator(all).Select(q.Select)
		if err != nil {
			t.Fatal(err)
		}
		if len(merged.Rows) != len(want.Rows) {
			t.Fatalf("query %d: rows=%d want %d", qi, len(merged.Rows), len(want.Rows))
		}
		index := func(rows []Binding, vars []string) map[string]bool {
			out := make(map[string]bool)
			var kb []byte
			for _, r := range rows {
				kb = RowKey(kb[:0], r, vars)
				out[string(kb)] = true
			}
			return out
		}
		wantSet := index(want.Rows, want.Vars)
		for _, r := range merged.Rows {
			if k := string(RowKey(nil, r, want.Vars)); !wantSet[k] {
				t.Fatalf("query %d: merged row %v not in direct result", qi, r)
			}
		}
	}

	// AVG over a group containing non-numeric bound values: the engine
	// divides by the count of NUMERIC values only, and the recombined
	// result must agree (the partial ships #numcount, not COUNT).
	{
		a, b := rdf.NewStore(), rdf.NewStore()
		all := rdf.NewStore()
		add := func(st *rdf.Store, i int, o rdf.Term) {
			tr := rdf.Triple{S: rdf.NewIRI(fmt.Sprintf("http://example.org/m%d", i)),
				P: rdf.NewIRI("http://example.org/score"), O: o}
			st.Add(tr)
			all.Add(tr)
		}
		add(a, 0, rdf.NewFloat(2))
		add(a, 1, rdf.NewLiteral("not-a-number"))
		add(b, 2, rdf.NewFloat(4))
		q := mustParse(t, `SELECT (AVG(?v) AS ?avg) WHERE { ?h <http://example.org/score> ?v . }`)
		am, ok := PlanAggMerge(q.Select)
		if !ok {
			t.Fatal("PlanAggMerge rejected avg")
		}
		var partials []Binding
		for _, st := range []*rdf.Store{a, b} {
			res, err := NewEvaluator(st).Select(am.Partial().Select)
			if err != nil {
				t.Fatal(err)
			}
			partials = append(partials, res.Rows...)
		}
		merged, err := am.Finalize(partials)
		if err != nil {
			t.Fatal(err)
		}
		want, err := NewEvaluator(all).Select(q.Select)
		if err != nil {
			t.Fatal(err)
		}
		if len(merged.Rows) != 1 || len(want.Rows) != 1 ||
			merged.Rows[0]["avg"].Value != want.Rows[0]["avg"].Value {
			t.Fatalf("mixed-type AVG: merged=%v want=%v", merged.Rows, want.Rows)
		}
		if want.Rows[0]["avg"].Value != "3" {
			t.Fatalf("single-store AVG over {2, \"x\", 4} = %s, want 3", want.Rows[0]["avg"].Value)
		}
	}

	// Zero partial rows with no GROUP BY still yields the implicit group.
	q := mustParse(t, `SELECT (COUNT(*) AS ?n) WHERE { ?h <http://example.org/none> ?v . }`)
	am, ok := PlanAggMerge(q.Select)
	if !ok {
		t.Fatal("PlanAggMerge rejected count(*)")
	}
	res, err := am.Finalize(nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 || res.Rows[0]["n"].Value != "0" {
		t.Fatalf("implicit group over nothing: %+v", res.Rows)
	}
}

// TestAggMergeRejections pins the queries partial aggregation must
// refuse (the union fallback handles them).
func TestAggMergeRejections(t *testing.T) {
	for _, src := range []string{
		// DISTINCT inside an aggregate.
		`SELECT (COUNT(DISTINCT ?v) AS ?n) WHERE { ?h <http://example.org/score> ?v . }`,
		// SAMPLE has no combine rule.
		`SELECT (SAMPLE(?v) AS ?s) WHERE { ?h <http://example.org/score> ?v . }`,
		// Spatial aggregate.
		`SELECT (strdf:union(?g) AS ?u) WHERE { ?h strdf:hasGeometry ?g . }`,
		// Plain projection that is not a group key.
		`SELECT ?h (COUNT(?v) AS ?n) WHERE { ?h <http://example.org/score> ?v . } GROUP BY ?g`,
	} {
		q := mustParse(t, src)
		if _, ok := PlanAggMerge(q.Select); ok {
			t.Errorf("PlanAggMerge accepted %q", src)
		}
	}
}

// TestNewOrderComparator pins the merge comparator against orderRows.
func TestNewOrderComparator(t *testing.T) {
	q := mustParse(t, `SELECT ?s ?v WHERE { ?s <http://example.org/val> ?v . } ORDER BY DESC(?v)`)
	cmp := NewOrderComparator(q.Select.OrderBy)
	lo := Binding{"v": rdf.NewInteger(1)}
	hi := Binding{"v": rdf.NewInteger(5)}
	if cmp(hi, lo) >= 0 {
		t.Fatal("DESC: higher value must sort first")
	}
	if cmp(lo, lo) != 0 {
		t.Fatal("equal keys must tie")
	}
}
