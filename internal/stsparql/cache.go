package stsparql

// Cache is a shareable geometry-parse cache. A store that runs many
// queries against the same datasets (the refinement loop re-reads the
// same coastline literals on every acquisition) should create one Cache
// and hand it to every evaluator instead of letting each evaluator
// re-parse WKT.
type Cache struct {
	inner *geomCache
}

// NewCache returns an empty shared cache.
func NewCache() *Cache { return &Cache{inner: newGeomCache()} }

// Size reports the number of cached geometries.
func (c *Cache) Size() int {
	c.inner.mu.RLock()
	defer c.inner.mu.RUnlock()
	return len(c.inner.geoms)
}

// NewEvaluatorWithCache returns an evaluator over src that shares the
// given geometry cache. The evaluator itself is still single-goroutine.
func NewEvaluatorWithCache(src Source, cache *Cache) *Evaluator {
	if cache == nil {
		return NewEvaluator(src)
	}
	e := &Evaluator{src: src, cache: cache.inner}
	e.initDict()
	return e
}
