package stsparql

import (
	"strings"

	"repro/internal/geom"
	"repro/internal/rdf"
)

// evalExpr evaluates an expression under a row view — either a
// map-backed Binding (via mapRow) or a physical batch row, looked up
// column-wise without materialising a map.
func (e *Evaluator) evalExpr(expr Expr, row rowRef) Value {
	switch v := expr.(type) {
	case *VarExpr:
		t, ok := row.lookup(v.Name)
		if !ok {
			return unboundValue()
		}
		return termToValue(t, e.cache)
	case *ConstExpr:
		return termToValue(v.Term, e.cache)
	case *UnaryExpr:
		return e.applyUnary(v.Op, e.evalExpr(v.X, row))
	case *BinaryExpr:
		// Short-circuit logical operators.
		switch v.Op {
		case "&&":
			l, err := e.evalExpr(v.L, row).effectiveBool()
			if err != nil {
				return errValue("%v", err)
			}
			if !l {
				return boolValue(false)
			}
			r, err := e.evalExpr(v.R, row).effectiveBool()
			if err != nil {
				return errValue("%v", err)
			}
			return boolValue(r)
		case "||":
			l, err := e.evalExpr(v.L, row).effectiveBool()
			if err == nil && l {
				return boolValue(true)
			}
			r, err2 := e.evalExpr(v.R, row).effectiveBool()
			if err2 != nil {
				return errValue("%v", err2)
			}
			return boolValue(r)
		}
		return e.applyBinary(v.Op, e.evalExpr(v.L, row), e.evalExpr(v.R, row))
	case *CallExpr:
		if v.Name == "bound" {
			if len(v.Args) != 1 {
				return errValue("stsparql: bound() wants one variable")
			}
			ve, ok := v.Args[0].(*VarExpr)
			if !ok {
				return errValue("stsparql: bound() wants a variable")
			}
			_, present := row.lookup(ve.Name)
			return boolValue(present)
		}
		if v.isAggregate() {
			return errValue("stsparql: aggregate %q outside grouped query", v.Name)
		}
		base := len(e.argScratch)
		for _, a := range v.Args {
			e.argScratch = append(e.argScratch, e.evalExpr(a, row))
		}
		res := e.applyFunction(v, e.argScratch[base:])
		e.argScratch = e.argScratch[:base]
		return res
	default:
		return errValue("stsparql: unknown expression node %T", expr)
	}
}

func (e *Evaluator) applyUnary(op string, x Value) Value {
	switch op {
	case "!":
		b, err := x.effectiveBool()
		if err != nil {
			// !bound-style patterns rely on error-free handling of
			// unbound: SPARQL defines !E as error when E is an error, but
			// bound() never errors, so this only triggers on true errors.
			return errValue("%v", err)
		}
		return boolValue(!b)
	case "-":
		if x.Kind != VNum {
			return errValue("stsparql: unary minus on non-number")
		}
		return numValue(-x.Num)
	default:
		return errValue("stsparql: unknown unary operator %q", op)
	}
}

func (e *Evaluator) applyBinary(op string, l, r Value) Value {
	if l.Kind == VErr {
		return l
	}
	if r.Kind == VErr {
		return r
	}
	switch op {
	case "=", "!=":
		eq, err := l.equalValue(r)
		if err != nil {
			return errValue("%v", err)
		}
		if op == "!=" {
			eq = !eq
		}
		return boolValue(eq)
	case "<", "<=", ">", ">=":
		c, err := l.compare(r)
		if err != nil {
			return errValue("%v", err)
		}
		switch op {
		case "<":
			return boolValue(c < 0)
		case "<=":
			return boolValue(c <= 0)
		case ">":
			return boolValue(c > 0)
		default:
			return boolValue(c >= 0)
		}
	case "+", "-", "*", "/":
		if l.Kind != VNum || r.Kind != VNum {
			return errValue("stsparql: arithmetic on non-numbers")
		}
		switch op {
		case "+":
			return numValue(l.Num + r.Num)
		case "-":
			return numValue(l.Num - r.Num)
		case "*":
			return numValue(l.Num * r.Num)
		default:
			if r.Num == 0 {
				return errValue("stsparql: division by zero")
			}
			return numValue(l.Num / r.Num)
		}
	default:
		return errValue("stsparql: unknown operator %q", op)
	}
}

// applyFunction dispatches builtin and strdf: extension functions.
func (e *Evaluator) applyFunction(c *CallExpr, args []Value) Value {
	for _, a := range args {
		if a.Kind == VErr {
			return a
		}
	}
	name := c.Name
	switch name {
	case "str":
		if len(args) != 1 {
			return errValue("stsparql: str() wants 1 argument")
		}
		a := args[0]
		switch a.Kind {
		case VTerm:
			return strValue(a.Term.Value)
		case VUnbound:
			return errValue("stsparql: str() of unbound")
		default:
			if !a.Term.IsZero() {
				return strValue(a.Term.Value)
			}
			t, _ := a.asTerm()
			return strValue(t.Value)
		}
	case "lang":
		if len(args) == 1 {
			return strValue(args[0].Term.Lang)
		}
	case "datatype":
		if len(args) == 1 {
			return Value{Kind: VTerm, Term: rdf.NewIRI(args[0].Term.Datatype)}
		}
	case "isiri", "isuri":
		if len(args) == 1 {
			return boolValue(args[0].Kind == VTerm && args[0].Term.IsIRI())
		}
	case "isliteral":
		if len(args) == 1 {
			return boolValue(!args[0].Term.IsZero() && args[0].Term.IsLiteral())
		}
	case "isblank":
		if len(args) == 1 {
			return boolValue(args[0].Kind == VTerm && args[0].Term.IsBlank())
		}
	case "regex":
		if len(args) >= 2 && args[0].Kind == VStr || len(args) >= 2 && !args[0].Term.IsZero() {
			s := args[0].Str
			if s == "" {
				s = args[0].Term.Value
			}
			// Substring semantics only; full regexp is out of scope and
			// unused by the paper's queries.
			return boolValue(strings.Contains(s, args[1].Str))
		}
	case "contains":
		if len(args) == 2 {
			return boolValue(strings.Contains(args[0].Str, args[1].Str))
		}
	case "strstarts":
		if len(args) == 2 {
			return boolValue(strings.HasPrefix(args[0].Str, args[1].Str))
		}
	case "abs":
		if len(args) == 1 && args[0].Kind == VNum {
			if args[0].Num < 0 {
				return numValue(-args[0].Num)
			}
			return args[0]
		}
	}

	if strings.HasPrefix(name, "strdf:") || strings.HasPrefix(name, "geof:") {
		return e.applySpatialFunction(strings.TrimPrefix(strings.TrimPrefix(name, "strdf:"), "geof:"), args)
	}
	return errValue("stsparql: unknown function %q", name)
}

func (e *Evaluator) applySpatialFunction(local string, args []Value) Value {
	geomArg := func(i int) (geom.Geometry, bool) {
		if i >= len(args) {
			return nil, false
		}
		a := args[i]
		switch a.Kind {
		case VGeom:
			return a.Geom, true
		case VStr:
			// Tolerate bare WKT strings (the paper's FILTERs sometimes
			// wrap constants in strdf:WKT, sometimes in strdf:geometry).
			g, err := e.cache.parse(a.Str)
			return g, err == nil
		default:
			return nil, false
		}
	}
	bin := func(f func(a, b geom.Geometry) bool) Value {
		g1, ok1 := geomArg(0)
		g2, ok2 := geomArg(1)
		if !ok1 || !ok2 {
			return errValue("stsparql: strdf:%s wants two geometries", local)
		}
		return boolValue(f(g1, g2))
	}
	switch local {
	case "anyinteract", "intersects", "sfintersects":
		return bin(geom.Intersects)
	case "contains", "sfcontains":
		return bin(geom.Contains)
	case "within", "sfwithin", "inside":
		return bin(geom.Within)
	case "coveredby":
		return bin(geom.CoveredBy)
	case "covers":
		return bin(func(a, b geom.Geometry) bool { return geom.CoveredBy(b, a) })
	case "disjoint", "sfdisjoint":
		return bin(geom.Disjoint)
	case "touches", "touch", "sftouches":
		return bin(geom.Touches)
	case "overlap", "overlaps", "sfoverlaps":
		return bin(geom.Overlaps)
	case "equals", "sfequals":
		return bin(geom.Equals)
	case "intersection":
		g1, ok1 := geomArg(0)
		g2, ok2 := geomArg(1)
		if !ok1 || !ok2 {
			return errValue("stsparql: strdf:intersection wants two geometries")
		}
		return geomValue(geom.IntersectionG(g1, g2))
	case "union":
		// Binary form; the 1-argument aggregate form is handled in
		// evalAggregateCall.
		g1, ok1 := geomArg(0)
		g2, ok2 := geomArg(1)
		if !ok1 || !ok2 {
			return errValue("stsparql: strdf:union wants two geometries (or one in aggregate position)")
		}
		return geomValue(geom.Union(g1, g2))
	case "difference":
		g1, ok1 := geomArg(0)
		g2, ok2 := geomArg(1)
		if !ok1 || !ok2 {
			return errValue("stsparql: strdf:difference wants two geometries")
		}
		return geomValue(geom.Difference(g1, g2))
	case "symdifference":
		g1, ok1 := geomArg(0)
		g2, ok2 := geomArg(1)
		if !ok1 || !ok2 {
			return errValue("stsparql: strdf:symDifference wants two geometries")
		}
		return geomValue(geom.SymmetricDifference(g1, g2))
	case "boundary":
		g, ok := geomArg(0)
		if !ok {
			return errValue("stsparql: strdf:boundary wants a geometry")
		}
		return geomValue(geom.Boundary(g))
	case "envelope", "mbb":
		g, ok := geomArg(0)
		if !ok {
			return errValue("stsparql: strdf:envelope wants a geometry")
		}
		return geomValue(g.Envelope().ToPolygon())
	case "convexhull":
		g, ok := geomArg(0)
		if !ok {
			return errValue("stsparql: strdf:convexHull wants a geometry")
		}
		pts, ls, ps := geomParts(g)
		for _, l := range ls {
			pts = append(pts, l...)
		}
		for _, p := range ps {
			pts = append(pts, p.Shell...)
		}
		return geomValue(geom.Polygon{Shell: geom.ConvexHull(pts)})
	case "buffer":
		// Envelope-based buffer: exact rounded buffers are not needed by
		// the service; the validation protocol only uses small tolerance
		// windows around pixel squares.
		g, ok := geomArg(0)
		if !ok || len(args) < 2 || args[1].Kind != VNum {
			return errValue("stsparql: strdf:buffer wants geometry and distance")
		}
		return geomValue(g.Envelope().Buffer(args[1].Num).ToPolygon())
	case "area":
		g, ok := geomArg(0)
		if !ok {
			return errValue("stsparql: strdf:area wants a geometry")
		}
		return numValue(geom.Area(g))
	case "distance":
		g1, ok1 := geomArg(0)
		g2, ok2 := geomArg(1)
		if !ok1 || !ok2 {
			return errValue("stsparql: strdf:distance wants two geometries")
		}
		return numValue(geom.Distance(g1, g2))
	case "dimension":
		g, ok := geomArg(0)
		if !ok {
			return errValue("stsparql: strdf:dimension wants a geometry")
		}
		return numValue(float64(g.Dimension()))
	case "srid":
		return numValue(4326)
	case "astext", "wkt":
		g, ok := geomArg(0)
		if !ok {
			return errValue("stsparql: strdf:asText wants a geometry")
		}
		return strValue(geom.WKT(g))
	default:
		return errValue("stsparql: unknown spatial function strdf:%s", local)
	}
}
