package stsparql

// Result cacheability, marked at plan time. A query's materialised
// result may be served from a cache until the data it read mutates —
// but only if re-evaluating against the unchanged data would be
// obligated to produce the same rows. Two plan shapes break that:
//
//   - SAMPLE: the engine returns the first value collected for the
//     group, and collection order follows rdf.Store scan order — Go map
//     iteration, randomised per run. Two evaluations at one generation
//     may legitimately answer differently, so pinning one answer in a
//     cache would silently freeze an arbitrary representative.
//   - Plans reading live store statistics mid-flight. Today statistics
//     are consulted only at plan time (the plan cache's generation key
//     already covers that); any future operator that re-reads
//     StatSource during execution must flip planReadsLiveStats below.
//
// Everything else the engine evaluates is a deterministic function of
// the source contents, which the generation vector pins.

// Cacheable reports whether a parsed query's result may be cached and
// replayed at an unchanged store generation. Update requests are never
// cacheable.
func Cacheable(q *Query) bool {
	switch {
	case q == nil || q.Update != nil:
		return false
	case q.Select != nil:
		return selectCacheable(q.Select)
	case q.Ask != nil:
		return groupCacheable(q.Ask.Where)
	}
	return false
}

// planReadsLiveStats reports whether the compiled plan consults live
// store statistics during execution (not just at plan time). No
// current operator does; kept as the explicit hook the cacheability
// contract names.
func planReadsLiveStats(*Compiled) bool { return false }

// Cacheable reports whether this compiled plan's result may be cached.
func (c *Compiled) Cacheable() bool { return c.cacheable }

func selectCacheable(sel *SelectQuery) bool {
	for _, item := range sel.Projection {
		if item.Expr != nil && exprHasSample(item.Expr) {
			return false
		}
	}
	for _, g := range sel.GroupBy {
		if exprHasSample(g) {
			return false
		}
	}
	for _, h := range sel.Having {
		if exprHasSample(h) {
			return false
		}
	}
	for _, k := range sel.OrderBy {
		if exprHasSample(k.Expr) {
			return false
		}
	}
	return groupCacheable(sel.Where)
}

func groupCacheable(gp *GroupPattern) bool {
	if gp == nil {
		return true
	}
	for _, el := range gp.Elements {
		switch v := el.(type) {
		case *FilterElement:
			if exprHasSample(v.Cond) {
				return false
			}
		case *OptionalElement:
			if !groupCacheable(v.Pattern) {
				return false
			}
		case *UnionElement:
			for _, br := range v.Branches {
				if !groupCacheable(br) {
					return false
				}
			}
		case *GroupPattern:
			if !groupCacheable(v) {
				return false
			}
		case *SubSelectElement:
			if !selectCacheable(v.Select) {
				return false
			}
		}
	}
	return true
}

// exprHasSample walks an expression tree for SAMPLE aggregate calls.
func exprHasSample(e Expr) bool {
	switch v := e.(type) {
	case *CallExpr:
		if v.Name == "sample" {
			return true
		}
		for _, a := range v.Args {
			if exprHasSample(a) {
				return true
			}
		}
	case *BinaryExpr:
		return exprHasSample(v.L) || exprHasSample(v.R)
	case *UnaryExpr:
		return exprHasSample(v.X)
	}
	return false
}
