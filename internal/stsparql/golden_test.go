package stsparql

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"
)

var updateGolden = flag.Bool("update-golden", false, "rewrite the golden result files from the current engine")

// modifierCorpus exercises the solution-modifier edge cases (plus the
// operator shapes around them) whose exact rows were materialised from
// the row-at-a-time engine into testdata/golden before the batch
// rewrite. ordered marks queries whose ORDER BY keys fully determine
// the row sequence; everything else is compared sorted, because store
// scan order is nondeterministic.
var modifierCorpus = []struct {
	name    string
	query   string
	ordered bool
}{
	{"offset-past-end", `SELECT ?h WHERE { ?h a noa:Hotspot . } OFFSET 10`, false},
	{"limit-zero", `SELECT ?h WHERE { ?h a noa:Hotspot . } LIMIT 0`, false},
	{"limit-larger", `SELECT ?h WHERE { ?h a noa:Hotspot . } LIMIT 100`, false},
	{"order-offset-limit", `SELECT ?h ?c WHERE { ?h a noa:Hotspot ; noa:hasConfidence ?c . }
ORDER BY DESC(?c) ?h OFFSET 1 LIMIT 1`, true},
	{"order-unbound", `SELECT ?h ?pop WHERE {
  ?h a noa:Hotspot .
  OPTIONAL { ?h gag:hasPopulation ?pop . }
} ORDER BY ?pop ?h`, true},
	{"order-mixed-bound", `SELECT ?x ?pop WHERE {
  { ?x a noa:Hotspot . } UNION { ?x a gag:Municipality . }
  OPTIONAL { ?x gag:hasPopulation ?pop . }
} ORDER BY DESC(?pop) ?x`, true},
	{"distinct-subset", `SELECT DISTINCT ?sensor WHERE {
  ?h a noa:Hotspot ; noa:isDerivedFromSensor ?sensor .
}`, false},
	{"distinct-pair", `SELECT DISTINCT ?h ?sensor WHERE {
  ?h a noa:Hotspot ; noa:isDerivedFromSensor ?sensor .
}`, false},
	{"distinct-expr", `SELECT DISTINCT (strdf:area(?g) AS ?a) WHERE {
  ?m a gag:Municipality ; strdf:hasGeometry ?g .
}`, false},
	{"distinct-order-limit", `SELECT DISTINCT ?c WHERE { ?h a noa:Hotspot ; noa:hasConfidence ?c . }
ORDER BY ?c LIMIT 1`, true},
	{"distinct-unbound", `SELECT DISTINCT ?pop WHERE {
  ?x a noa:Hotspot .
  OPTIONAL { ?x gag:hasPopulation ?pop . }
}`, false},
	{"offset-after-distinct-order", `SELECT DISTINCT ?c WHERE { ?h a noa:Hotspot ; noa:hasConfidence ?c . }
ORDER BY DESC(?c) OFFSET 1`, true},
	{"spatial-join", `SELECT ?h ?m WHERE {
  ?h a noa:Hotspot ; strdf:hasGeometry ?hg .
  ?m a gag:Municipality ; strdf:hasGeometry ?mg .
  FILTER( strdf:anyInteract(?hg, ?mg) )
}`, false},
	{"optional-not-bound", `SELECT ?h WHERE {
  ?h a noa:Hotspot ; strdf:hasGeometry ?hg .
  OPTIONAL {
    ?c a coast:Coastline ; strdf:hasGeometry ?cg .
    FILTER( strdf:anyInteract(?hg, ?cg) )
  }
  FILTER( !bound(?c) )
}`, false},
	{"group-having", `SELECT ?sensor (COUNT(?h) AS ?n) (AVG(?c) AS ?avgc) WHERE {
  ?h a noa:Hotspot ; noa:isDerivedFromSensor ?sensor ; noa:hasConfidence ?c .
} GROUP BY ?sensor HAVING (COUNT(?h) >= 1)`, false},
	{"count-empty", `SELECT (COUNT(*) AS ?n) WHERE {
  ?h a noa:Hotspot ; noa:hasConfidence ?c .
  FILTER( ?c > 2.0 )
}`, false},
	{"select-star", `SELECT * WHERE { ?h a noa:Hotspot ; noa:hasConfidence ?c . }`, false},
	{"expr-projection", `SELECT ?m (strdf:area(?g) AS ?a) WHERE {
  ?m a gag:Municipality ; strdf:hasGeometry ?g .
}`, false},
}

// TestModifierGolden pins every modifier-corpus query row-for-row
// against results materialised before the batch execution rewrite.
func TestModifierGolden(t *testing.T) {
	s := fixtureStore()
	for _, tc := range modifierCorpus {
		t.Run(tc.name, func(t *testing.T) {
			res := runSelect(t, s, tc.query)
			got := renderResultGolden(res, tc.ordered)
			path := filepath.Join("testdata", "golden", tc.name+".txt")
			if *updateGolden {
				if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden %s (run with -update-golden): %v", path, err)
			}
			if string(want) != got {
				t.Fatalf("result diverges from %s:\n--- want\n%s\n--- got\n%s", path, want, got)
			}
		})
	}
}

// TestModifierGoldenCursor runs the same corpus through the streaming
// cursor path and checks it agrees with the materialised wrapper.
func TestModifierGoldenCursor(t *testing.T) {
	s := fixtureStore()
	for _, tc := range modifierCorpus {
		t.Run(tc.name, func(t *testing.T) {
			want := renderResultGolden(runSelect(t, s, tc.query), tc.ordered)
			cur, err := NewEvaluator(s).Run(mustParse(t, tc.query))
			if err != nil {
				t.Fatal(err)
			}
			res := &Result{Vars: cur.Vars()}
			for row, ok := cur.Next(); ok; row, ok = cur.Next() {
				res.Rows = append(res.Rows, row.Clone())
			}
			if err := cur.Close(); err != nil {
				t.Fatal(err)
			}
			if got := renderResultGolden(res, tc.ordered); got != want {
				t.Fatalf("cursor path diverges:\n--- materialised\n%s\n--- cursor\n%s", want, got)
			}
		})
	}
}

// renderResultGolden canonicalises a result the same way the shard
// equivalence suite does: sorted header, "_" for unbound, rows sorted
// unless ORDER BY fully determines their sequence.
func renderResultGolden(res *Result, ordered bool) string {
	vars := append([]string(nil), res.Vars...)
	sort.Strings(vars)
	rows := make([]string, len(res.Rows))
	for i, row := range res.Rows {
		var b strings.Builder
		for _, v := range vars {
			if t, ok := row[v]; ok && !t.IsZero() {
				fmt.Fprintf(&b, "%s=%s|", v, t.String())
			} else {
				fmt.Fprintf(&b, "%s=_|", v)
			}
		}
		rows[i] = b.String()
	}
	if !ordered {
		sort.Strings(rows)
	}
	var b strings.Builder
	fmt.Fprintf(&b, "vars: %s\n", strings.Join(vars, ","))
	for _, r := range rows {
		b.WriteString(r)
		b.WriteByte('\n')
	}
	return b.String()
}
