package stsparql

import (
	"fmt"
	"testing"

	"repro/internal/rdf"
)

// countingSource wraps a Source and counts the triples its scans visit,
// so tests can pin that pull-based early termination actually stops the
// index scans (not just the row flow).
type countingSource struct {
	Source
	visited int
}

func (c *countingSource) MatchTerms(s, p, o rdf.Term, visit func(rdf.Triple) bool) {
	c.Source.MatchTerms(s, p, o, func(t rdf.Triple) bool {
		c.visited++
		return visit(t)
	})
}

// wideStore builds a store with n triples under one predicate.
func wideStore(n int) *rdf.Store {
	s := rdf.NewStore()
	p := rdf.NewIRI("http://e/p")
	for i := 0; i < n; i++ {
		s.Add(rdf.Triple{
			S: rdf.NewIRI(fmt.Sprintf("http://e/s%d", i)),
			P: p,
			O: rdf.NewIRI(fmt.Sprintf("http://e/o%d", i)),
		})
	}
	return s
}

// TestRunCursorMatchesSelect checks the streaming cursor yields exactly
// the rows the materialising wrapper returns.
func TestRunCursorMatchesSelect(t *testing.T) {
	src := clcFixture()
	q := mustParse(t, `SELECT ?h ?c WHERE { ?h a noa:Hotspot ; noa:hasConfidence ?c . }`)

	want, err := NewEvaluator(src).Select(q.Select)
	if err != nil {
		t.Fatal(err)
	}
	cur, err := NewEvaluator(src).Run(q)
	if err != nil {
		t.Fatal(err)
	}
	defer cur.Close()
	if fmt.Sprint(cur.Vars()) != fmt.Sprint(want.Vars) {
		t.Fatalf("vars = %v, want %v", cur.Vars(), want.Vars)
	}
	var got []Binding
	for row, ok := cur.Next(); ok; row, ok = cur.Next() {
		got = append(got, row)
	}
	if err := cur.Close(); err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want.Rows) {
		t.Fatalf("rows = %d, want %d", len(got), len(want.Rows))
	}
	seen := map[string]bool{}
	for _, row := range want.Rows {
		seen[row["h"].Value+"|"+row["c"].Value] = true
	}
	for _, row := range got {
		if !seen[row["h"].Value+"|"+row["c"].Value] {
			t.Fatalf("unexpected row %v", row)
		}
	}
}

// TestCursorLimitStopsScan pins LIMIT pushdown at the scan level: a
// LIMIT 10 over a 10k-triple pattern must abandon the index scan after
// a handful of visits instead of enumerating the store.
func TestCursorLimitStopsScan(t *testing.T) {
	const n = 10000
	src := &countingSource{Source: wideStore(n)}
	q := mustParse(t, `PREFIX e: <http://e/> SELECT ?s ?o WHERE { ?s e:p ?o } LIMIT 10`)
	cur, err := NewEvaluator(src).Run(q)
	if err != nil {
		t.Fatal(err)
	}
	rows := 0
	for _, ok := cur.Next(); ok; _, ok = cur.Next() {
		rows++
	}
	if err := cur.Close(); err != nil {
		t.Fatal(err)
	}
	if rows != 10 {
		t.Fatalf("rows = %d, want 10", rows)
	}
	if src.visited >= n/10 {
		t.Fatalf("scan visited %d of %d triples; LIMIT pushdown should stop it near 10", src.visited, n)
	}
}

// TestCursorEarlyCloseStopsScan pins that abandoning a cursor stops the
// underlying scan (the streamed-client-went-away case).
func TestCursorEarlyCloseStopsScan(t *testing.T) {
	const n = 10000
	src := &countingSource{Source: wideStore(n)}
	q := mustParse(t, `PREFIX e: <http://e/> SELECT ?s ?o WHERE { ?s e:p ?o }`)
	cur, err := NewEvaluator(src).Run(q)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if _, ok := cur.Next(); !ok {
			t.Fatal("exhausted early")
		}
	}
	if err := cur.Close(); err != nil {
		t.Fatal(err)
	}
	if _, ok := cur.Next(); ok {
		t.Fatal("Next after Close yielded a row")
	}
	if src.visited >= n/10 {
		t.Fatalf("scan visited %d of %d triples after early Close", src.visited, n)
	}
}

// TestAskStopsAtFirstSolution pins that ASK terminates the scan at its
// first solution instead of materialising the full pattern extent.
func TestAskStopsAtFirstSolution(t *testing.T) {
	const n = 10000
	src := &countingSource{Source: wideStore(n)}
	q := mustParse(t, `PREFIX e: <http://e/> ASK { ?s e:p ?o }`)
	ok, err := NewEvaluator(src).Ask(q.Ask)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("ask = false, want true")
	}
	if src.visited >= n/10 {
		t.Fatalf("ask visited %d of %d triples; should stop at the first", src.visited, n)
	}
}

// TestRunAskCursor checks the unified Run entry point wraps an ASK
// verdict as a single-row cursor.
func TestRunAskCursor(t *testing.T) {
	src := clcFixture()
	cur, err := NewEvaluator(src).Run(mustParse(t, `ASK { ?h a noa:Hotspot }`))
	if err != nil {
		t.Fatal(err)
	}
	defer cur.Close()
	if fmt.Sprint(cur.Vars()) != "[ask]" {
		t.Fatalf("vars = %v", cur.Vars())
	}
	row, ok := cur.Next()
	if !ok || row["ask"].Value != "true" {
		t.Fatalf("ask row = %v (ok=%v)", row, ok)
	}
	if _, ok := cur.Next(); ok {
		t.Fatal("ask cursor yielded a second row")
	}
}

// TestCompiledPlanReuse runs one compiled SELECT several times (and from
// several evaluators) over the same source, as the plan cache does, and
// checks the runs are independent and identical.
func TestCompiledPlanReuse(t *testing.T) {
	src := clcFixture()
	q := mustParse(t, `SELECT ?h ?m WHERE {
	  ?h a noa:Hotspot ; strdf:hasGeometry ?hGeo .
	  ?m a gag:Municipality ; strdf:hasGeometry ?mGeo .
	  FILTER( strdf:anyInteract(?hGeo, ?mGeo) ) .
	}`)
	c := NewEvaluator(src).Compile(q)
	for i := 0; i < 3; i++ {
		cur, err := NewEvaluator(src).RunCompiled(c)
		if err != nil {
			t.Fatal(err)
		}
		rows, err := drainCursor(cur)
		if err != nil {
			t.Fatal(err)
		}
		if len(rows) != 2 {
			t.Fatalf("run %d: rows = %d, want 2", i, len(rows))
		}
	}
}

func drainCursor(cur Cursor) ([]Binding, error) {
	defer cur.Close()
	var rows []Binding
	for row, ok := cur.Next(); ok; row, ok = cur.Next() {
		rows = append(rows, row)
	}
	return rows, cur.Close()
}
