package stsparql

import (
	"fmt"
	"math"
	"testing"

	"repro/internal/geom"
	"repro/internal/rdf"
)

const (
	noaNS   = "http://teleios.di.uoa.gr/ontologies/noaOntology.owl#"
	coastNS = "http://teleios.di.uoa.gr/ontologies/coastlineOntology.owl#"
	strdfNS = "http://strdf.di.uoa.gr/ontology#"
	gagNS   = "http://teleios.di.uoa.gr/ontologies/gagOntology.owl#"
)

func iri(s string) rdf.Term { return rdf.NewIRI(s) }

// fixtureStore builds a small dataset mirroring the paper's layout: three
// hotspots (one on land, one in the sea, one straddling the coast), a
// coastline polygon (land mass), and two municipalities.
func fixtureStore() *rdf.Store {
	s := rdf.NewStore()
	add := func(subj, pred string, obj rdf.Term) {
		s.Add(rdf.Triple{S: iri(subj), P: iri(pred), O: obj})
	}
	hotspot := func(name, wkt, at string, conf float64) {
		h := noaNS + name
		add(h, rdf.RDFType, iri(noaNS+"Hotspot"))
		add(h, strdfNS+"hasGeometry", rdf.NewGeometry(wkt))
		add(h, noaNS+"hasAcquisitionDateTime", rdf.NewDateTime(at))
		add(h, noaNS+"hasConfidence", rdf.NewFloat(conf))
		add(h, noaNS+"isDerivedFromSensor", rdf.NewTypedLiteral("MSG2", rdf.XSDString))
	}
	// Land mass: a big square "island" from (0,0) to (10,10).
	add(coastNS+"Coastline_1", rdf.RDFType, iri(coastNS+"Coastline"))
	add(coastNS+"Coastline_1", strdfNS+"hasGeometry",
		rdf.NewGeometry("POLYGON ((0 0, 10 0, 10 10, 0 10, 0 0))"))

	hotspot("Hotspot_land", "POLYGON ((2 2, 3 2, 3 3, 2 3, 2 2))", "2007-08-24T18:15:00", 1.0)
	hotspot("Hotspot_sea", "POLYGON ((20 20, 21 20, 21 21, 20 21, 20 20))", "2007-08-24T18:15:00", 0.5)
	hotspot("Hotspot_coast", "POLYGON ((9 4, 11 4, 11 6, 9 6, 9 4))", "2007-08-24T18:20:00", 1.0)

	// Municipalities: west half and east half of the island.
	for i, m := range []struct {
		name, wkt string
		pop       int64
	}{
		{"munWest", "POLYGON ((0 0, 5 0, 5 10, 0 10, 0 0))", 1000},
		{"munEast", "POLYGON ((5 0, 10 0, 10 10, 5 10, 5 0))", 2500},
	} {
		u := gagNS + m.name
		add(u, rdf.RDFType, iri(gagNS+"Municipality"))
		add(u, strdfNS+"hasGeometry", rdf.NewGeometry(m.wkt))
		add(u, gagNS+"hasPopulation", rdf.NewInteger(m.pop))
		add(u, "http://www.w3.org/2000/01/rdf-schema#label",
			rdf.NewLiteral(fmt.Sprintf("Municipality %d", i)))
	}
	return s
}

func mustParse(t *testing.T, src string) *Query {
	t.Helper()
	q, err := Parse(src, nil)
	if err != nil {
		t.Fatalf("parse: %v\nquery:\n%s", err, src)
	}
	return q
}

func runSelect(t *testing.T, s *rdf.Store, src string) *Result {
	t.Helper()
	q := mustParse(t, src)
	if q.Select == nil {
		t.Fatalf("not a SELECT: %s", src)
	}
	res, err := NewEvaluator(s).Select(q.Select)
	if err != nil {
		t.Fatalf("eval: %v", err)
	}
	return res
}

func TestParseSelectBasics(t *testing.T) {
	q := mustParse(t, `SELECT DISTINCT ?h ?g WHERE { ?h a noa:Hotspot ; strdf:hasGeometry ?g . } ORDER BY ?h LIMIT 5 OFFSET 1`)
	sel := q.Select
	if sel == nil || !sel.Distinct || len(sel.Projection) != 2 {
		t.Fatalf("bad select: %+v", sel)
	}
	if sel.Limit != 5 || sel.Offset != 1 || len(sel.OrderBy) != 1 {
		t.Fatalf("modifiers: %+v", sel)
	}
	bgp, ok := sel.Where.Elements[0].(*BGPElement)
	if !ok || len(bgp.Patterns) != 2 {
		t.Fatalf("where: %#v", sel.Where.Elements)
	}
	if bgp.Patterns[0].P.Term.Value != rdf.RDFType {
		t.Fatalf("'a' not expanded: %v", bgp.Patterns[0].P)
	}
}

func TestParsePrefixDeclaration(t *testing.T) {
	q := mustParse(t, `PREFIX ex: <http://example.org/> SELECT ?x WHERE { ?x a ex:Thing . }`)
	bgp := q.Select.Where.Elements[0].(*BGPElement)
	if bgp.Patterns[0].O.Term.Value != "http://example.org/Thing" {
		t.Fatalf("prefix not applied: %v", bgp.Patterns[0].O)
	}
}

func TestParseErrors(t *testing.T) {
	for _, src := range []string{
		"",
		"SELECT WHERE { ?s ?p ?o }",
		"SELECT ?x WHERE { ?x a }",
		"SELECT ?x WHERE { ?x a unknown:Thing }",
		"FROB ?x WHERE { }",
		"SELECT ?x WHERE { ?x a noa:Hotspot",
		"SELECT (?x AS) WHERE { ?x a noa:Hotspot }",
	} {
		if _, err := Parse(src, nil); err == nil {
			t.Errorf("expected parse error for %q", src)
		}
	}
}

func TestSelectSimpleBGP(t *testing.T) {
	res := runSelect(t, fixtureStore(), `
SELECT ?h WHERE { ?h a noa:Hotspot . }`)
	if len(res.Rows) != 3 {
		t.Fatalf("got %d hotspots, want 3", len(res.Rows))
	}
}

func TestSelectJoin(t *testing.T) {
	res := runSelect(t, fixtureStore(), `
SELECT ?h ?conf WHERE {
  ?h a noa:Hotspot ;
     noa:hasConfidence ?conf .
}`)
	if len(res.Rows) != 3 {
		t.Fatalf("got %d rows", len(res.Rows))
	}
	for _, row := range res.Rows {
		if _, ok := row["conf"].Float(); !ok {
			t.Fatalf("conf not numeric: %v", row["conf"])
		}
	}
}

func TestSelectFilterComparison(t *testing.T) {
	res := runSelect(t, fixtureStore(), `
SELECT ?h WHERE {
  ?h a noa:Hotspot ;
     noa:hasConfidence ?c .
  FILTER(?c >= 1.0)
}`)
	if len(res.Rows) != 2 {
		t.Fatalf("got %d rows, want 2", len(res.Rows))
	}
}

func TestSelectFilterDateTimeStrComparison(t *testing.T) {
	// The paper's Query 1 compares str(?hAcqTime) against plain strings.
	res := runSelect(t, fixtureStore(), `
SELECT ?h WHERE {
  ?h a noa:Hotspot ;
     noa:hasAcquisitionDateTime ?at .
  FILTER( "2007-08-24T18:18:00" <= str(?at) ) .
}`)
	if len(res.Rows) != 1 {
		t.Fatalf("got %d rows, want 1", len(res.Rows))
	}
}

func TestSelectSpatialFilterContains(t *testing.T) {
	// Query-1 shape: constant polygon contains hotspot geometry.
	res := runSelect(t, fixtureStore(), `
SELECT ?h ?g WHERE {
  ?h a noa:Hotspot ;
     strdf:hasGeometry ?g .
  FILTER( strdf:contains("POLYGON((0 0, 10 0, 10 10, 0 10, 0 0))"^^strdf:WKT, ?g) ) .
}`)
	if len(res.Rows) != 1 {
		t.Fatalf("got %d rows, want 1 (only the fully-on-land hotspot)", len(res.Rows))
	}
	if res.Rows[0]["h"].Value != noaNS+"Hotspot_land" {
		t.Fatalf("wrong hotspot: %v", res.Rows[0]["h"])
	}
}

func TestSelectSpatialJoinAnyInteract(t *testing.T) {
	res := runSelect(t, fixtureStore(), `
SELECT ?h ?m WHERE {
  ?h a noa:Hotspot ;
     strdf:hasGeometry ?hGeo .
  ?m a gag:Municipality ;
     strdf:hasGeometry ?mGeo .
  FILTER( strdf:anyInteract(?hGeo, ?mGeo) ) .
}`)
	// land hotspot -> west; coast hotspot -> east; sea hotspot -> none.
	if len(res.Rows) != 2 {
		t.Fatalf("got %d rows, want 2", len(res.Rows))
	}
}

func TestOptionalAndNotBound(t *testing.T) {
	// The delete-in-sea pattern: hotspots NOT intersecting any coastline.
	res := runSelect(t, fixtureStore(), `
SELECT ?h WHERE {
  ?h a noa:Hotspot ;
     strdf:hasGeometry ?hGeo .
  OPTIONAL {
    ?c a coast:Coastline ;
       strdf:hasGeometry ?cGeo .
    FILTER( strdf:anyInteract(?hGeo, ?cGeo) )
  }
  FILTER( !bound(?c) )
}`)
	if len(res.Rows) != 1 {
		t.Fatalf("got %d rows, want 1 (the sea hotspot)", len(res.Rows))
	}
	if res.Rows[0]["h"].Value != noaNS+"Hotspot_sea" {
		t.Fatalf("wrong hotspot: %v", res.Rows[0]["h"])
	}
}

func TestOptionalKeepsUnmatchedRows(t *testing.T) {
	res := runSelect(t, fixtureStore(), `
SELECT ?h ?pop WHERE {
  ?h a noa:Hotspot .
  OPTIONAL { ?h gag:hasPopulation ?pop . }
}`)
	if len(res.Rows) != 3 {
		t.Fatalf("got %d rows, want 3", len(res.Rows))
	}
	for _, row := range res.Rows {
		if row.has("pop") {
			t.Fatal("no hotspot has a population")
		}
	}
}

func TestUnion(t *testing.T) {
	res := runSelect(t, fixtureStore(), `
SELECT ?x WHERE {
  { ?x a noa:Hotspot . } UNION { ?x a gag:Municipality . }
}`)
	if len(res.Rows) != 5 {
		t.Fatalf("got %d rows, want 5", len(res.Rows))
	}
}

func TestGroupByCountAndHaving(t *testing.T) {
	res := runSelect(t, fixtureStore(), `
SELECT ?sensor (COUNT(?h) AS ?n) WHERE {
  ?h a noa:Hotspot ;
     noa:isDerivedFromSensor ?sensor .
} GROUP BY ?sensor`)
	if len(res.Rows) != 1 {
		t.Fatalf("got %d groups", len(res.Rows))
	}
	if n, _ := res.Rows[0]["n"].Float(); n != 3 {
		t.Fatalf("count = %v", res.Rows[0]["n"])
	}

	res2 := runSelect(t, fixtureStore(), `
SELECT ?sensor (COUNT(?h) AS ?n) WHERE {
  ?h a noa:Hotspot ; noa:isDerivedFromSensor ?sensor .
} GROUP BY ?sensor HAVING (COUNT(?h) > 5)`)
	if len(res2.Rows) != 0 {
		t.Fatalf("HAVING should reject the group")
	}
}

func TestAggregatesNumeric(t *testing.T) {
	res := runSelect(t, fixtureStore(), `
SELECT (SUM(?p) AS ?s) (AVG(?p) AS ?a) (MIN(?p) AS ?lo) (MAX(?p) AS ?hi) (COUNT(*) AS ?n)
WHERE { ?m a gag:Municipality ; gag:hasPopulation ?p . }`)
	if len(res.Rows) != 1 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	row := res.Rows[0]
	check := func(v string, want float64) {
		got, ok := row[v].Float()
		if !ok || math.Abs(got-want) > 1e-9 {
			t.Fatalf("%s = %v, want %g", v, row[v], want)
		}
	}
	check("s", 3500)
	check("a", 1750)
	check("lo", 1000)
	check("hi", 2500)
	check("n", 2)
}

func TestSpatialUnionAggregate(t *testing.T) {
	// strdf:union over both municipality polygons covers the island.
	res := runSelect(t, fixtureStore(), `
SELECT (strdf:union(?mGeo) AS ?all) WHERE {
  ?m a gag:Municipality ; strdf:hasGeometry ?mGeo .
}`)
	if len(res.Rows) != 1 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	g, err := geom.ParseWKT(res.Rows[0]["all"].Value)
	if err != nil {
		t.Fatalf("union WKT: %v", err)
	}
	if a := geom.Area(g); math.Abs(a-100) > 0.5 {
		t.Fatalf("union area = %g, want ~100", a)
	}
}

func TestRefineInCoastQueryShape(t *testing.T) {
	// The paper's second refinement query: group the coastline polygons
	// intersecting each hotspot, subtract the sea part.
	res := runSelect(t, fixtureStore(), `
SELECT DISTINCT ?h ?hGeo
  (strdf:intersection(?hGeo, strdf:union(?cGeo)) AS ?dif)
WHERE {
  ?h a noa:Hotspot ;
     strdf:hasGeometry ?hGeo .
  ?c a coast:Coastline ;
     strdf:hasGeometry ?cGeo .
  FILTER( strdf:anyInteract(?hGeo, ?cGeo) )
}
GROUP BY ?h ?hGeo
HAVING strdf:overlap(?hGeo, strdf:union(?cGeo))`)
	// Only the coast-straddling hotspot overlaps (not contained in) land.
	if len(res.Rows) != 1 {
		t.Fatalf("rows = %d, want 1", len(res.Rows))
	}
	difTerm := res.Rows[0]["dif"]
	g, err := geom.ParseWKT(difTerm.Value)
	if err != nil {
		t.Fatalf("dif WKT: %v (%q)", err, difTerm.Value)
	}
	// Hotspot (9..11)x(4..6) clipped to island (0..10)^2 = 1x2 = 2.
	if a := geom.Area(g); math.Abs(a-2) > 1e-3 {
		t.Fatalf("clipped area = %g, want 2", a)
	}
}

func TestSubSelect(t *testing.T) {
	res := runSelect(t, fixtureStore(), `
SELECT ?h ?dif WHERE {
  SELECT ?h (strdf:area(?hGeo) AS ?dif) WHERE {
    ?h a noa:Hotspot ; strdf:hasGeometry ?hGeo .
  }
}`)
	if len(res.Rows) != 3 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
}

func TestOrderByAndLimit(t *testing.T) {
	res := runSelect(t, fixtureStore(), `
SELECT ?m ?p WHERE { ?m a gag:Municipality ; gag:hasPopulation ?p . }
ORDER BY DESC(?p) LIMIT 1`)
	if len(res.Rows) != 1 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	if p, _ := res.Rows[0]["p"].Integer(); p != 2500 {
		t.Fatalf("top population = %v", res.Rows[0]["p"])
	}
}

func TestAsk(t *testing.T) {
	s := fixtureStore()
	q := mustParse(t, `ASK { ?h a noa:Hotspot . }`)
	got, err := NewEvaluator(s).Ask(q.Ask)
	if err != nil || !got {
		t.Fatalf("ask = %v, %v", got, err)
	}
	q2 := mustParse(t, `ASK { ?h a noa:Volcano . }`)
	got2, err := NewEvaluator(s).Ask(q2.Ask)
	if err != nil || got2 {
		t.Fatalf("ask2 = %v, %v", got2, err)
	}
}

func TestDeleteInSeaUpdate(t *testing.T) {
	s := fixtureStore()
	// The paper's first refinement update, with consistent variable names.
	src := `
DELETE { ?h ?hProperty ?hObject }
WHERE {
  ?h a noa:Hotspot ;
     strdf:hasGeometry ?hGeo ;
     ?hProperty ?hObject .
  OPTIONAL {
    ?c a coast:Coastline ;
       strdf:hasGeometry ?cGeo .
    FILTER( strdf:anyInteract(?hGeo, ?cGeo) )
  }
  FILTER( !bound(?c) )
}`
	q := mustParse(t, src)
	if q.Update == nil {
		t.Fatal("not an update")
	}
	before := s.Len()
	stats, err := NewEvaluator(s).Update(q.Update)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Deleted != 5 {
		t.Fatalf("deleted %d triples, want 5 (all sea-hotspot properties)", stats.Deleted)
	}
	if s.Len() != before-5 {
		t.Fatalf("store len = %d", s.Len())
	}
	res := runSelect(t, s, `SELECT ?h WHERE { ?h a noa:Hotspot . }`)
	if len(res.Rows) != 2 {
		t.Fatalf("%d hotspots remain, want 2", len(res.Rows))
	}
}

func TestRefineInCoastUpdate(t *testing.T) {
	s := fixtureStore()
	src := `
DELETE { ?h strdf:hasGeometry ?hGeo }
INSERT { ?h strdf:hasGeometry ?dif }
WHERE {
  SELECT DISTINCT ?h ?hGeo
    (strdf:intersection(?hGeo, strdf:union(?cGeo)) AS ?dif)
  WHERE {
    ?h a noa:Hotspot ;
       strdf:hasGeometry ?hGeo .
    ?c a coast:Coastline ;
       strdf:hasGeometry ?cGeo .
    FILTER( strdf:anyInteract(?hGeo, ?cGeo) )
  }
  GROUP BY ?h ?hGeo
  HAVING strdf:overlap(?hGeo, strdf:union(?cGeo))
}`
	q := mustParse(t, src)
	stats, err := NewEvaluator(s).Update(q.Update)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Deleted != 1 || stats.Inserted != 1 {
		t.Fatalf("stats = %+v, want 1 delete + 1 insert", stats)
	}
	// The coast hotspot's geometry must now be clipped to land.
	res := runSelect(t, s, `
SELECT ?g WHERE { <`+noaNS+`Hotspot_coast> strdf:hasGeometry ?g . }`)
	if len(res.Rows) != 1 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	g, err := geom.ParseWKT(res.Rows[0]["g"].Value)
	if err != nil {
		t.Fatal(err)
	}
	if a := geom.Area(g); math.Abs(a-2) > 1e-3 {
		t.Fatalf("refined area = %g, want 2", a)
	}
}

func TestInsertData(t *testing.T) {
	s := rdf.NewStore()
	q := mustParse(t, `
INSERT DATA {
  noa:h1 a noa:Hotspot ;
    noa:hasConfidence 0.5 .
}`)
	stats, err := NewEvaluator(s).Update(q.Update)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Inserted != 2 || s.Len() != 2 {
		t.Fatalf("inserted %d, len %d", stats.Inserted, s.Len())
	}
}

func TestDeleteWhereShorthand(t *testing.T) {
	s := fixtureStore()
	q := mustParse(t, `
DELETE WHERE { ?h a noa:Hotspot . }`)
	stats, err := NewEvaluator(s).Update(q.Update)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Deleted != 3 {
		t.Fatalf("deleted %d, want 3", stats.Deleted)
	}
}

func TestPaperQuery1Full(t *testing.T) {
	// Query 1 of the paper, nearly verbatim (predicates adapted to the
	// fixture's schema), including the dangling ';' before FILTER.
	res := runSelect(t, fixtureStore(), `
SELECT ?hotspot ?hGeo ?hAcqTime ?hConfidence ?hSensor
WHERE {
  ?hotspot a noa:Hotspot ;
    strdf:hasGeometry ?hGeo ;
    noa:hasAcquisitionDateTime ?hAcqTime ;
    noa:hasConfidence ?hConfidence ;
    noa:isDerivedFromSensor ?hSensor ;
  FILTER( "2007-08-23T00:00:00" <= str(?hAcqTime) ) .
  FILTER( str(?hAcqTime) <= "2007-08-26T23:59:59" ) .
  FILTER( strdf:contains("POLYGON((-5 -5, 15 -5, 15 15, -5 15, -5 -5))"^^strdf:WKT, ?hGeo)).
}`)
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %d, want 2 (land + coast hotspots)", len(res.Rows))
	}
}

func TestExpressionArithmetic(t *testing.T) {
	res := runSelect(t, fixtureStore(), `
SELECT ?m ((?p * 2 + 100) AS ?x) WHERE { ?m a gag:Municipality ; gag:hasPopulation ?p . }
ORDER BY ?x`)
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	if v, _ := res.Rows[0]["x"].Float(); v != 2100 {
		t.Fatalf("x = %v", res.Rows[0]["x"])
	}
}

func TestBooleanConnectives(t *testing.T) {
	res := runSelect(t, fixtureStore(), `
SELECT ?m WHERE {
  ?m a gag:Municipality ; gag:hasPopulation ?p .
  FILTER(?p > 500 && ?p < 2000)
}`)
	if len(res.Rows) != 1 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	res2 := runSelect(t, fixtureStore(), `
SELECT ?m WHERE {
  ?m a gag:Municipality ; gag:hasPopulation ?p .
  FILTER(?p = 1000 || ?p = 2500)
}`)
	if len(res2.Rows) != 2 {
		t.Fatalf("rows = %d", len(res2.Rows))
	}
}

func TestSpatialFunctionsInProjection(t *testing.T) {
	res := runSelect(t, fixtureStore(), `
SELECT ?m (strdf:boundary(?g) AS ?b) (strdf:area(?g) AS ?a) WHERE {
  ?m a gag:Municipality ; strdf:hasGeometry ?g .
}`)
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	for _, row := range res.Rows {
		if a, _ := row["a"].Float(); math.Abs(a-50) > 1e-6 {
			t.Fatalf("area = %v", row["a"])
		}
		bg, err := geom.ParseWKT(row["b"].Value)
		if err != nil || bg.Dimension() != 1 {
			t.Fatalf("boundary = %v (%v)", row["b"], err)
		}
	}
}

func TestDistinct(t *testing.T) {
	res := runSelect(t, fixtureStore(), `
SELECT DISTINCT ?sensor WHERE { ?h noa:isDerivedFromSensor ?sensor . }`)
	if len(res.Rows) != 1 {
		t.Fatalf("rows = %d, want 1", len(res.Rows))
	}
}

func TestSelectStar(t *testing.T) {
	res := runSelect(t, fixtureStore(), `
SELECT * WHERE { ?m a gag:Municipality ; gag:hasPopulation ?p . }`)
	if len(res.Rows) != 2 || len(res.Vars) != 2 {
		t.Fatalf("rows=%d vars=%v", len(res.Rows), res.Vars)
	}
}

func TestVariablePredicate(t *testing.T) {
	res := runSelect(t, fixtureStore(), `
SELECT ?p ?o WHERE { <`+noaNS+`Hotspot_land> ?p ?o . }`)
	if len(res.Rows) != 5 {
		t.Fatalf("rows = %d, want 5", len(res.Rows))
	}
}

func TestUpdateOnNonUpdatableSource(t *testing.T) {
	q := mustParse(t, `DELETE WHERE { ?s ?p ?o }`)
	ev := NewEvaluator(readOnlySource{fixtureStore()})
	if _, err := ev.Update(q.Update); err == nil {
		t.Fatal("update on read-only source should fail")
	}
}

type readOnlySource struct{ s *rdf.Store }

func (r readOnlySource) MatchTerms(s, p, o rdf.Term, visit func(rdf.Triple) bool) {
	r.s.MatchTerms(s, p, o, visit)
}
