package stsparql

import (
	"fmt"
	"testing"

	"repro/internal/rdf"
)

// These tests pin the solution-modifier semantics — ORDER BY, LIMIT,
// OFFSET, DISTINCT and their interactions — so the plan/operator engine
// can be validated against the exact behaviour of the tree-walking
// evaluator they were first run against.

func TestOffsetPastEnd(t *testing.T) {
	res := runSelect(t, fixtureStore(), `
SELECT ?h WHERE { ?h a noa:Hotspot . } OFFSET 10`)
	if len(res.Rows) != 0 {
		t.Fatalf("rows = %d, want 0 (offset past end)", len(res.Rows))
	}
}

func TestOffsetExactlyAtEnd(t *testing.T) {
	res := runSelect(t, fixtureStore(), `
SELECT ?h WHERE { ?h a noa:Hotspot . } OFFSET 3`)
	if len(res.Rows) != 0 {
		t.Fatalf("rows = %d, want 0 (offset == row count)", len(res.Rows))
	}
}

func TestLimitZero(t *testing.T) {
	res := runSelect(t, fixtureStore(), `
SELECT ?h WHERE { ?h a noa:Hotspot . } LIMIT 0`)
	if len(res.Rows) != 0 {
		t.Fatalf("rows = %d, want 0 (LIMIT 0)", len(res.Rows))
	}
	// The projection header survives even when no rows do.
	if len(res.Vars) != 1 || res.Vars[0] != "h" {
		t.Fatalf("vars = %v", res.Vars)
	}
}

func TestLimitLargerThanResult(t *testing.T) {
	res := runSelect(t, fixtureStore(), `
SELECT ?h WHERE { ?h a noa:Hotspot . } LIMIT 100`)
	if len(res.Rows) != 3 {
		t.Fatalf("rows = %d, want 3", len(res.Rows))
	}
}

func TestOrderByWithOffsetAndLimit(t *testing.T) {
	res := runSelect(t, fixtureStore(), `
SELECT ?h ?c WHERE { ?h a noa:Hotspot ; noa:hasConfidence ?c . }
ORDER BY DESC(?c) ?h OFFSET 1 LIMIT 1`)
	if len(res.Rows) != 1 {
		t.Fatalf("rows = %d, want 1", len(res.Rows))
	}
	// Full order: (1.0, Hotspot_coast), (1.0, Hotspot_land), (0.5, Hotspot_sea);
	// OFFSET 1 LIMIT 1 picks the middle row.
	if got := res.Rows[0]["h"].Value; got != noaNS+"Hotspot_land" {
		t.Fatalf("row = %v", res.Rows[0]["h"])
	}
}

func TestOrderOverUnboundVars(t *testing.T) {
	// ?pop is unbound for every hotspot: ordering must neither error nor
	// drop rows — unbound comparisons are treated as ties, preserving the
	// stable order.
	res := runSelect(t, fixtureStore(), `
SELECT ?h ?pop WHERE {
  ?h a noa:Hotspot .
  OPTIONAL { ?h gag:hasPopulation ?pop . }
} ORDER BY ?pop`)
	if len(res.Rows) != 3 {
		t.Fatalf("rows = %d, want 3", len(res.Rows))
	}
}

func TestOrderMixedBoundUnbound(t *testing.T) {
	// Municipalities have populations, hotspots do not; ordering by ?pop
	// must keep all five rows.
	res := runSelect(t, fixtureStore(), `
SELECT ?x ?pop WHERE {
  { ?x a noa:Hotspot . } UNION { ?x a gag:Municipality . }
  OPTIONAL { ?x gag:hasPopulation ?pop . }
} ORDER BY DESC(?pop)`)
	if len(res.Rows) != 5 {
		t.Fatalf("rows = %d, want 5", len(res.Rows))
	}
	// The two bound rows compare against each other; 2500 sorts before
	// 1000 under DESC wherever the unbound block ends up.
	var popOrder []int64
	for _, row := range res.Rows {
		if v, ok := row["pop"].Integer(); ok {
			popOrder = append(popOrder, v)
		}
	}
	if len(popOrder) != 2 || popOrder[0] != 2500 || popOrder[1] != 1000 {
		t.Fatalf("bound populations in order: %v", popOrder)
	}
}

func TestDistinctOnProjectedSubset(t *testing.T) {
	// DISTINCT applies to the projected columns only: three hotspots share
	// one sensor, so projecting just ?sensor collapses them.
	res := runSelect(t, fixtureStore(), `
SELECT DISTINCT ?sensor WHERE {
  ?h a noa:Hotspot ; noa:isDerivedFromSensor ?sensor .
}`)
	if len(res.Rows) != 1 {
		t.Fatalf("rows = %d, want 1", len(res.Rows))
	}
	// Projecting the hotspot too keeps all three rows distinct.
	res2 := runSelect(t, fixtureStore(), `
SELECT DISTINCT ?h ?sensor WHERE {
  ?h a noa:Hotspot ; noa:isDerivedFromSensor ?sensor .
}`)
	if len(res2.Rows) != 3 {
		t.Fatalf("rows = %d, want 3", len(res2.Rows))
	}
}

func TestDistinctOverExpressionProjection(t *testing.T) {
	// Both municipalities have area 50, so DISTINCT over the computed
	// column yields one row.
	res := runSelect(t, fixtureStore(), `
SELECT DISTINCT (strdf:area(?g) AS ?a) WHERE {
  ?m a gag:Municipality ; strdf:hasGeometry ?g .
}`)
	if len(res.Rows) != 1 {
		t.Fatalf("rows = %d, want 1", len(res.Rows))
	}
}

func TestDistinctWithOrderAndLimit(t *testing.T) {
	res := runSelect(t, fixtureStore(), `
SELECT DISTINCT ?c WHERE { ?h a noa:Hotspot ; noa:hasConfidence ?c . }
ORDER BY ?c LIMIT 1`)
	if len(res.Rows) != 1 {
		t.Fatalf("rows = %d, want 1", len(res.Rows))
	}
	if v, _ := res.Rows[0]["c"].Float(); v != 0.5 {
		t.Fatalf("min confidence = %v", res.Rows[0]["c"])
	}
}

func TestDistinctUnboundVsBound(t *testing.T) {
	// A row where ?pop is unbound must stay distinct from rows where it is
	// bound, and two all-unbound rows collapse.
	res := runSelect(t, fixtureStore(), `
SELECT DISTINCT ?pop WHERE {
  ?x a noa:Hotspot .
  OPTIONAL { ?x gag:hasPopulation ?pop . }
}`)
	if len(res.Rows) != 1 {
		t.Fatalf("rows = %d, want 1 (three unbound rows collapse)", len(res.Rows))
	}
}

func TestOffsetAfterDistinctAndOrder(t *testing.T) {
	// Modifier order is DISTINCT -> ORDER -> OFFSET/LIMIT: offset applies
	// to the deduplicated, sorted rows.
	res := runSelect(t, fixtureStore(), `
SELECT DISTINCT ?c WHERE { ?h a noa:Hotspot ; noa:hasConfidence ?c . }
ORDER BY DESC(?c) OFFSET 1`)
	if len(res.Rows) != 1 {
		t.Fatalf("rows = %d, want 1 (two distinct confidences, skip one)", len(res.Rows))
	}
	if v, _ := res.Rows[0]["c"].Float(); v != 0.5 {
		t.Fatalf("row = %v", res.Rows[0]["c"])
	}
}

// --- distinct hot-path micro-benchmarks (see distinctRows/distinctAll) ---

func distinctBenchRows(n int) ([]Binding, []string) {
	vars := []string{"h", "g", "c", "sensor"}
	rows := make([]Binding, 0, n)
	for i := 0; i < n; i++ {
		rows = append(rows, Binding{
			"h":      rdf.NewIRI(fmt.Sprintf("http://e/h%d", i%(n/2+1))),
			"g":      rdf.NewGeometry(fmt.Sprintf("POLYGON ((%d 0, %d 0, %d 1, %d 1, %d 0))", i, i+1, i+1, i, i)),
			"c":      rdf.NewFloat(float64(i%7) / 7),
			"sensor": rdf.NewTypedLiteral("MSG2", rdf.XSDString),
		})
	}
	return rows, vars
}

func BenchmarkDistinctRows(b *testing.B) {
	rows, vars := distinctBenchRows(2000)
	work := make([]Binding, len(rows))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		copy(work, rows)
		distinctRows(work, vars)
	}
}

func BenchmarkDistinctAll(b *testing.B) {
	rows, _ := distinctBenchRows(2000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		distinctAll(rows)
	}
}

func TestDuplicateLimitOffsetRejected(t *testing.T) {
	for _, src := range []string{
		`SELECT ?h WHERE { ?h a noa:Hotspot . } LIMIT 5 LIMIT 0`,
		`SELECT ?h WHERE { ?h a noa:Hotspot . } OFFSET 1 OFFSET 2`,
		`SELECT ?h WHERE { ?h a noa:Hotspot . } LIMIT 5 OFFSET 1 LIMIT 2`,
	} {
		if _, err := Parse(src, nil); err == nil {
			t.Errorf("expected parse error for %q", src)
		}
	}
}
