package stsparql

import (
	"testing"

	"repro/internal/rdf"
)

// TestCacheableShapes enumerates the plan shapes the result cache must
// refuse — every position a SAMPLE aggregate can hide in, plus updates
// — against the deterministic shapes that stay cacheable. The verdict
// is made at plan time; a wrong true here would let the serving tier
// pin one arbitrary SAMPLE representative forever.
func TestCacheableShapes(t *testing.T) {
	for _, tc := range []struct {
		name string
		src  string
		want bool
	}{
		{"plain select", `SELECT ?h WHERE { ?h a noa:Hotspot . }`, true},
		{"ask", `ASK { ?h a noa:Hotspot . }`, true},
		{"deterministic aggregate", `SELECT (COUNT(?h) AS ?n) WHERE { ?h a noa:Hotspot . }`, true},
		{"order limit offset", `SELECT ?h ?c WHERE { ?h noa:hasConfidence ?c . } ORDER BY DESC(?c) LIMIT 5 OFFSET 2`, true},
		{"optional union filter", `SELECT ?h WHERE {
  { ?h a noa:Hotspot . } UNION { ?h a gag:Municipality . }
  OPTIONAL { ?h noa:hasConfidence ?c . }
  FILTER( !BOUND(?c) || ?c > 0.5 )
}`, true},
		{"subselect", `SELECT ?h WHERE { { SELECT ?h WHERE { ?h a noa:Hotspot . } LIMIT 3 } }`, true},

		{"sample in projection", `SELECT (SAMPLE(?c) AS ?s) WHERE { ?h noa:hasConfidence ?c . }`, false},
		{"sample nested in projection expr", `SELECT (SAMPLE(?c) + 1 AS ?s) WHERE { ?h noa:hasConfidence ?c . }`, false},
		{"sample in having", `SELECT ?s (COUNT(?h) AS ?n) WHERE { ?h noa:isProducedBy ?s ; noa:hasConfidence ?c . } GROUP BY ?s HAVING ( SAMPLE(?c) > 0.5 )`, false},
		{"sample in order by", `SELECT ?s WHERE { ?h noa:isProducedBy ?s ; noa:hasConfidence ?c . } GROUP BY ?s ORDER BY DESC(SAMPLE(?c))`, false},
		{"sample in subselect", `SELECT ?s WHERE { { SELECT ?s (SAMPLE(?c) AS ?x) WHERE { ?h noa:isProducedBy ?s ; noa:hasConfidence ?c . } GROUP BY ?s } }`, false},
		{"sample in union branch subselect", `SELECT ?s WHERE {
  { ?s a gag:Municipality . }
  UNION
  { { SELECT ?s (SAMPLE(?c) AS ?x) WHERE { ?h noa:isProducedBy ?s ; noa:hasConfidence ?c . } GROUP BY ?s } }
}`, false},
		{"sample in optional subselect", `SELECT ?s WHERE {
  ?s a gag:Municipality .
  OPTIONAL { { SELECT ?s (SAMPLE(?c) AS ?x) WHERE { ?h noa:isProducedBy ?s ; noa:hasConfidence ?c . } GROUP BY ?s } }
}`, false},
		{"update", `INSERT DATA { <http://example.org/h1> a noa:Hotspot . }`, false},
	} {
		t.Run(tc.name, func(t *testing.T) {
			q := mustParse(t, tc.src)
			if got := Cacheable(q); got != tc.want {
				t.Fatalf("Cacheable = %v, want %v for:\n%s", got, tc.want, tc.src)
			}
			// The compiled plan carries the same verdict (updates
			// don't compile into plans at all).
			if q.Update == nil {
				if c := NewEvaluator(rdf.NewStore()).Compile(q); c.Cacheable() != tc.want {
					t.Fatalf("Compiled.Cacheable = %v, want %v", c.Cacheable(), tc.want)
				}
			}
		})
	}
	if Cacheable(nil) {
		t.Fatal("nil query reported cacheable")
	}
}
