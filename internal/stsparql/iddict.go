package stsparql

import (
	"encoding/binary"

	"repro/internal/geom"
	"repro/internal/rdf"
)

// ID-native execution: batches carry fixed-width term IDs, not rdf.Term
// structs, and terms materialise late — at the cursor row views, ORDER
// BY comparators, aggregate evaluation and the shard fan-out boundary.
// The execDict is the per-evaluation codec behind that: it resolves the
// engine's uint64 IDs to terms and interns terms the evaluation computes
// itself (projection expressions, constants, sub-select solutions).
//
// Two modes:
//
//   - native: the source exposes its own append-only rdf.Dictionary
//     (IDSource — the single strabon store). Scans emit store IDs
//     directly from the index visitors, so the hot path never touches a
//     term; computed terms intern into an evaluation-local overflow
//     table whose IDs start above the 32-bit store range. encode is
//     canonical — store dictionary first — so within one evaluation ID
//     equality coincides exactly with term equality.
//   - local: the source is a composite (the sharded store's views span
//     member stores with unrelated dictionaries, so member IDs cannot
//     be compared). Every term the evaluation sees interns into the
//     overflow table instead; same term, same local ID, so joins,
//     DISTINCT and grouping stay sound, just without the zero-cost scan
//     emission of native mode.
//
// A termID is private to one evaluation except in native mode, where
// IDs below overflowBase are store IDs and therefore stable for the
// life of the store — which is what lets a cached plan's hash-join
// build side (built from pure scan output) be shared across
// evaluations in native mode only.

// termID is the engine's native value currency: a dictionary ID widened
// to 64 bits so evaluation-local overflow IDs can sit above the store
// range. 0 is the unbound sentinel, exactly as the zero Term was.
type termID uint64

// overflowBase is the first evaluation-local ID: store IDs are 32-bit,
// so anything at or above this never collides with a scan emission.
const overflowBase termID = 1 << 32

// IDSource is an optional Source extension: a store whose triples are
// dictionary-encoded can let the engine scan and join on its IDs
// directly. Implementations must guarantee the rdf.Dictionary
// append-only contract (IDs stable and dense, Decode lock-free for
// readers holding the store's read lock).
type IDSource interface {
	Source
	// Dict exposes the source's term dictionary.
	Dict() *rdf.Dictionary
	// MatchIDs streams encoded triples matching an encoded pattern;
	// rdf.Wildcard components match anything.
	MatchIDs(s, p, o rdf.ID, visit func(rdf.EncodedTriple) bool)
}

// SpatialIDSource extends a spatial source with an encoded window scan,
// so R-tree window joins can stay in ID space too.
type SpatialIDSource interface {
	SpatialSource
	// MatchGeometryWindowIDs streams the encoded (subject,
	// hasGeometry-pred, geometry) triples whose envelope intersects env.
	MatchGeometryWindowIDs(env geom.Envelope, visit func(rdf.EncodedTriple) bool)
}

// execDict is one evaluation's term codec. It is single-goroutine, like
// the Evaluator owning it.
type execDict struct {
	store *rdf.Dictionary     // non-nil in native mode
	over  []rdf.Term          // overflow terms; over[i] has ID overflowBase+i
	ids   map[rdf.Term]termID // term → overflow ID (terms are comparable)
}

func newExecDict(src Source) *execDict {
	if is, ok := src.(IDSource); ok {
		return &execDict{store: is.Dict()}
	}
	return &execDict{}
}

// native reports whether IDs below overflowBase are store IDs — the
// precondition for sharing ID-keyed operator state across evaluations.
func (d *execDict) native() bool { return d.store != nil }

// encode interns a term, canonicalising store-dictionary-first so equal
// terms always map to equal IDs within the evaluation.
func (d *execDict) encode(t rdf.Term) termID {
	if t.IsZero() {
		return 0
	}
	if d.store != nil {
		if id, ok := d.store.Lookup(t); ok {
			return termID(id)
		}
	}
	if id, ok := d.ids[t]; ok {
		return id
	}
	id := overflowBase + termID(len(d.over))
	d.over = append(d.over, t)
	if d.ids == nil {
		d.ids = make(map[rdf.Term]termID)
	}
	d.ids[t] = id
	return id
}

// decode returns the term for an ID; 0 decodes to the zero (unbound)
// term.
func (d *execDict) decode(id termID) rdf.Term {
	if id == 0 {
		return rdf.Term{}
	}
	if id < overflowBase {
		return d.store.Decode(rdf.ID(id))
	}
	return d.over[id-overflowBase]
}

// storeID resolves a term against the store dictionary only — the scan
// path's constant resolution. ok=false means no indexed triple can
// carry the term, so a pattern bound to it matches nothing.
func (d *execDict) storeID(t rdf.Term) (rdf.ID, bool) {
	if d.store == nil {
		return 0, false
	}
	id, ok := d.store.Lookup(t)
	return id, ok
}

// appendIDKey appends the fixed-width encoding of one ID to a composite
// key buffer — the ID-native replacement for appendTermKey in hash
// join, DISTINCT and grouping keys (8 bytes per variable, unbound = 0).
func appendIDKey(dst []byte, id termID) []byte {
	return binary.LittleEndian.AppendUint64(dst, uint64(id))
}
