package stsparql

import (
	"sort"

	"repro/internal/rdf"
)

// Columnar batches: the unit of exchange between physical operators.
// Instead of pulling one map-backed Binding at a time, operators pull
// *Batch slabs of up to batchSizeMax rows in a columnar layout — one
// []termID column per variable of the plan segment's schema, with a
// selection vector so filters and slices mark rows dead without moving
// or copying them. ID 0 encodes "unbound", exactly as the zero Term did
// in the term-columned representation (the engine never binds the
// unbound sentinel); terms materialise only at the late points — cursor
// row views, ORDER BY comparators, aggregate evaluation and blocking
// materialisation — through the evaluation's execDict.
//
// Scans start small (batchSizeMin) and grow their slabs geometrically,
// so early-terminating consumers — LIMIT pushdown, ASK, an abandoned
// cursor — stop the index scans after a few dozen visits rather than a
// full first slab.

const (
	batchSizeMin    = 64
	batchSizeMax    = 1024
	batchSizeGrowth = 4
)

// varSchema is the ordered variable layout of a plan segment, fixed at
// plan (or open) time: every batch flowing through the segment uses the
// same column order, so probe rows copy column-to-column.
type varSchema struct {
	names []string
	index map[string]int
}

func newSchema(names []string) *varSchema {
	s := &varSchema{names: names, index: make(map[string]int, len(names))}
	for i, n := range names {
		s.index[n] = i
	}
	return s
}

// schemaOf builds a schema over the sorted, deduplicated variable set.
func schemaOf(set map[string]bool) *varSchema {
	names := make([]string, 0, len(set))
	for n := range set {
		names = append(names, n)
	}
	sort.Strings(names)
	return newSchema(names)
}

func (s *varSchema) col(name string) (int, bool) {
	c, ok := s.index[name]
	return c, ok
}

// Batch is a columnar slab of bindings, carrying the evaluation's term
// codec so consumers can materialise rows late. Rows [0,n) are
// physical; sel, when non-nil, lists the live physical rows in order
// (nil = all live). The columns share one backing slab, allocated per
// batch; producers that own their batch reuse the slab across next
// calls (see batchIter).
type Batch struct {
	schema *varSchema
	dict   *execDict
	cols   [][]termID
	n      int
	cap    int
	sel    []int32
}

func newBatch(dict *execDict, schema *varSchema, capacity int) *Batch {
	if capacity < 1 {
		capacity = 1
	}
	b := &Batch{schema: schema, dict: dict, cap: capacity}
	nv := len(schema.names)
	if nv > 0 {
		slab := make([]termID, nv*capacity)
		b.cols = make([][]termID, nv)
		for i := range b.cols {
			b.cols[i] = slab[i*capacity : (i+1)*capacity : (i+1)*capacity]
		}
	}
	return b
}

// live returns the number of live rows.
func (b *Batch) live() int {
	if b.sel != nil {
		return len(b.sel)
	}
	return b.n
}

// row maps a live ordinal to its physical row index.
func (b *Batch) row(ord int) int {
	if b.sel != nil {
		return int(b.sel[ord])
	}
	return ord
}

// grow doubles the slab capacity, preserving rows. Needed when a single
// probe row's fan-out overshoots the soft batch cap.
func (b *Batch) grow() {
	ncap := b.cap * 2
	nv := len(b.schema.names)
	if nv > 0 {
		slab := make([]termID, nv*ncap)
		for i := range b.cols {
			col := slab[i*ncap : (i+1)*ncap : (i+1)*ncap]
			copy(col, b.cols[i][:b.n])
			b.cols[i] = col
		}
	}
	b.cap = ncap
}

// beginRow stages a new physical row initialised from probe (zeroed
// where probe is unbound) and returns its index; commitRow makes it
// live. A staged row that is never committed is simply overwritten by
// the next beginRow.
func (b *Batch) beginRow(probe rowRef) int {
	if b.n == b.cap {
		b.grow()
	}
	r := b.n
	if probe.b != nil && probe.b.schema == b.schema {
		for c := range b.cols {
			b.cols[c][r] = probe.b.cols[c][probe.i]
		}
		return r
	}
	if probe.m != nil {
		for c, name := range b.schema.names {
			if t, ok := probe.m[name]; ok && !t.IsZero() {
				b.cols[c][r] = b.dict.encode(t)
			} else {
				b.cols[c][r] = 0
			}
		}
		return r
	}
	for c, name := range b.schema.names {
		if probe.b != nil {
			if bc, ok := probe.b.schema.col(name); ok {
				b.cols[c][r] = probe.b.cols[bc][probe.i]
				continue
			}
		}
		b.cols[c][r] = 0
	}
	return r
}

func (b *Batch) commitRow() { b.n++ }

// reset empties the batch for reuse (seed batches of per-row sub-plans,
// producer-owned output slabs).
func (b *Batch) reset() {
	b.n = 0
	b.sel = nil
}

// dropFirst removes the first k live rows from the selection.
func (b *Batch) dropFirst(k int) {
	b.materialiseSel()
	b.sel = b.sel[k:]
}

// truncLive keeps only the first k live rows.
func (b *Batch) truncLive(k int) {
	b.materialiseSel()
	b.sel = b.sel[:k]
}

func (b *Batch) materialiseSel() {
	if b.sel != nil {
		return
	}
	sel := make([]int32, b.n)
	for i := range sel {
		sel[i] = int32(i)
	}
	b.sel = sel
}

// binding decodes physical row i into a fresh owned Binding, skipping
// unbound columns — the late-materialisation point used by blocking
// operators and the result-owning wrappers.
func (b *Batch) binding(i int) Binding {
	row := make(Binding, len(b.schema.names))
	for c, name := range b.schema.names {
		if id := b.cols[c][i]; id != 0 {
			row[name] = b.dict.decode(id)
		}
	}
	return row
}

// rowRef is a view of one row for expression evaluation: either a
// map-backed Binding (m != nil) or a physical row of a batch.
type rowRef struct {
	m Binding
	b *Batch
	i int
}

func mapRow(b Binding) rowRef { return rowRef{m: b} }

// lookup returns the bound, non-zero term for a variable, decoding
// batch-backed rows through the evaluation dictionary.
func (r rowRef) lookup(name string) (rdf.Term, bool) {
	if r.m != nil {
		t, ok := r.m[name]
		return t, ok && !t.IsZero()
	}
	if r.b == nil {
		return rdf.Term{}, false
	}
	c, ok := r.b.schema.index[name]
	if !ok {
		return rdf.Term{}, false
	}
	id := r.b.cols[c][r.i]
	if id == 0 {
		return rdf.Term{}, false
	}
	return r.b.dict.decode(id), true
}

// lookupID returns the row's ID for a variable (0 = unbound). Map-backed
// rows encode through the batchless path only when a dict is supplied.
func (r rowRef) lookupID(name string) termID {
	if r.b != nil {
		if c, ok := r.b.schema.index[name]; ok {
			return r.b.cols[c][r.i]
		}
		return 0
	}
	return 0
}

// rowKey appends a composite fixed-width ID key of the row's values for
// vars to dst — the batch counterpart of bindingKey, 8 bytes per
// variable with 0 encoding unbound.
func rowKey(dst []byte, row rowRef, vars []string) []byte {
	for _, v := range vars {
		dst = appendIDKey(dst, row.lookupID(v))
	}
	return dst
}

// batchIter is the pull side of an opened operator pipeline: next
// yields the next batch (nil once exhausted or on error), close
// releases resources and must be idempotent. Returned batches are owned
// by the producer and only valid until the next call to next —
// producers exploit this by reusing one output slab across calls, so a
// consumer that needs two batches at once (or rows beyond the next
// pull) must copy first.
type batchIter interface {
	next() (*Batch, error)
	close()
}

// batchesIter yields a prepared batch list; it doubles as the seed
// iterator of a pipeline.
type batchesIter struct {
	batches []*Batch
	pos     int
}

func (it *batchesIter) next() (*Batch, error) {
	for it.pos < len(it.batches) {
		b := it.batches[it.pos]
		it.pos++
		if b.live() > 0 {
			return b, nil
		}
	}
	return nil, nil
}

func (it *batchesIter) close() {}

// seedIter builds the one-batch seed of a pipeline from map rows.
func seedIter(dict *execDict, schema *varSchema, rows []Binding) batchIter {
	return &batchesIter{batches: []*Batch{batchFromBindings(dict, schema, rows)}}
}

// batchFromBindings encodes map rows into a single batch (variables
// outside the schema are dropped).
func batchFromBindings(dict *execDict, schema *varSchema, rows []Binding) *Batch {
	b := newBatch(dict, schema, len(rows))
	for _, row := range rows {
		b.beginRow(mapRow(row))
		b.commitRow()
	}
	return b
}

// cloneBatch copies the live rows of src into a fresh owned batch —
// used by consumers that must hold rows across a subsequent pull from
// the same producer (the hash-join strategy lookahead).
func cloneBatch(src *Batch) *Batch {
	out := newBatch(src.dict, src.schema, src.live())
	for ord := 0; ord < src.live(); ord++ {
		i := src.row(ord)
		for c := range out.cols {
			out.cols[c][out.n] = src.cols[c][i]
		}
		out.commitRow()
	}
	return out
}

// drainMaterialise pulls an iterator to exhaustion, decoding every live
// row into an owned Binding.
func drainMaterialise(in batchIter) ([]Binding, error) {
	var rows []Binding
	for {
		b, err := in.next()
		if err != nil {
			return nil, err
		}
		if b == nil {
			return rows, nil
		}
		for ord := 0; ord < b.live(); ord++ {
			rows = append(rows, b.binding(b.row(ord)))
		}
	}
}
