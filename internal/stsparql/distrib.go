package stsparql

import (
	"fmt"
	"time"

	"repro/internal/rdf"
)

// This file holds the engine-side helpers of distributed (sharded) query
// evaluation — see internal/shard. A sharded store fans a query out to
// per-shard evaluations and merges their cursors; the pieces that need
// engine internals live here:
//
//   - NewOrderComparator: the ORDER BY comparator a k-way ordered merge
//     ranks pre-sorted shard streams with.
//   - CompileASTCached: plan caching for rewritten per-shard ASTs that
//     have no surface text of their own.
//   - AggMerge: partial-aggregate recombination — a grouped SELECT is
//     rewritten into a per-shard partial query (COUNT/SUM/MIN/MAX stay
//     themselves, AVG splits into SUM+COUNT) whose groups are then
//     recombined, filtered (HAVING) and projected at the merger.

// ParseDateTime parses the ISO dateTime forms appearing in the
// datasets — the engine's literal parsing, exported so the sharded
// store's routing and window pruning accept exactly the same forms the
// evaluator compares.
func ParseDateTime(s string) (time.Time, bool) { return parseDateTime(s) }

// RowKey appends a composite key of the row's values for vars to dst —
// the engine's binding-key encoding, exported for result mergers that
// deduplicate or group rows across shard streams.
func RowKey(dst []byte, row Binding, vars []string) []byte {
	return bindingKey(dst, row, vars)
}

// emptySource is a Source with no triples, backing evaluators that only
// evaluate expressions over existing bindings (comparators, mergers).
type emptySource struct{}

func (emptySource) MatchTerms(s, p, o rdf.Term, visit func(rdf.Triple) bool) {}

// NewOrderComparator returns a three-way comparator of result rows under
// the ORDER BY keys: negative when a sorts before b. Mergers use it to
// combine per-shard streams that are each already sorted by the same
// keys.
func NewOrderComparator(keys []OrderKey) func(a, b Binding) int {
	e := NewEvaluator(emptySource{})
	return func(a, b Binding) int { return e.compareOrderKeys(a, b, keys) }
}

// CompileASTCached returns the cached plan for key at gen, or compiles q
// against this evaluator's source and stores it. Unlike CompileCached
// the query is already parsed — typically a rewritten per-shard AST with
// no surface text — so key must uniquely identify both the original
// query text and the rewrite applied to it. cache may be nil.
func (e *Evaluator) CompileASTCached(key string, gen uint64, cache *PlanCache, q *Query) *Compiled {
	if cache != nil {
		if c, ok := cache.get(key, gen); ok {
			return c
		}
	}
	c := e.Compile(q)
	if cache != nil && (c.sel != nil || c.ask != nil) {
		cache.put(key, gen, c)
	}
	return c
}

// IsGrouped reports whether the SELECT evaluates through the aggregate
// operator (GROUP BY, HAVING, or aggregate projections) — the queries a
// distributing merger must recombine rather than concatenate.
func IsGrouped(sel *SelectQuery) bool {
	return len(sel.GroupBy) > 0 || len(sel.Having) > 0 || projectionHasAggregates(sel)
}

// aggPart is one aggregate call occurrence and the partial column(s) the
// per-shard query computes for it.
type aggPart struct {
	call *CallExpr
	vars []string // 1 column (count/sum/min/max) or 2 (avg: sum, count)
}

// AggMerge is the distributed-evaluation plan of a grouped SELECT:
// Partial() is the query every shard runs, Finalize recombines the
// shipped partial rows into the final result. Built by PlanAggMerge.
type AggMerge struct {
	q       *SelectQuery
	keys    []string // GROUP BY variable names
	parts   []*aggPart
	byCall  map[*CallExpr]*aggPart
	partial *Query
}

// PlanAggMerge analyses a grouped SELECT for partial-aggregate
// recombination. It succeeds when every GROUP BY key is a plain
// variable, every plain projection is a key, and every aggregate call
// (projection, HAVING) is a DISTINCT-free COUNT, SUM, MIN, MAX or AVG —
// the decomposable aggregates. Anything else (SAMPLE, spatial
// aggregates, DISTINCT args, expression keys) returns ok=false and the
// caller must evaluate the query undistributed.
func PlanAggMerge(sel *SelectQuery) (*AggMerge, bool) {
	if sel.Star {
		return nil, false
	}
	m := &AggMerge{q: sel, byCall: make(map[*CallExpr]*aggPart)}
	keySet := make(map[string]bool)
	for _, g := range sel.GroupBy {
		ve, ok := g.(*VarExpr)
		if !ok {
			return nil, false
		}
		m.keys = append(m.keys, ve.Name)
		keySet[ve.Name] = true
	}
	for _, item := range sel.Projection {
		if item.Expr == nil {
			if !keySet[item.Var] {
				return nil, false
			}
			continue
		}
		if !m.collect(item.Expr, keySet) {
			return nil, false
		}
	}
	for _, h := range sel.Having {
		if !m.collect(h, keySet) {
			return nil, false
		}
	}

	// Per-shard partial query: same WHERE and grouping, but projecting
	// the keys plus raw partials, with no HAVING / DISTINCT / ORDER /
	// LIMIT — those all re-apply at the merger, over complete groups.
	partial := &SelectQuery{Where: sel.Where, GroupBy: sel.GroupBy, Limit: -1}
	for _, k := range m.keys {
		partial.Projection = append(partial.Projection, SelectItem{Var: k})
	}
	for i, p := range m.parts {
		if p.call.Name == "avg" {
			// AVG = SUM / count-of-NUMERIC-values (the engine skips
			// non-numeric bound values in both), so the denominator
			// partial is the internal #numcount aggregate, not COUNT —
			// COUNT keeps non-numeric bound values.
			p.vars = []string{fmt.Sprintf("#a%ds", i), fmt.Sprintf("#a%dc", i)}
			partial.Projection = append(partial.Projection,
				SelectItem{Var: p.vars[0], Expr: &CallExpr{Name: "sum", Args: p.call.Args}},
				SelectItem{Var: p.vars[1], Expr: &CallExpr{Name: "#numcount", Args: p.call.Args}})
			continue
		}
		p.vars = []string{fmt.Sprintf("#a%d", i)}
		partial.Projection = append(partial.Projection, SelectItem{Var: p.vars[0], Expr: p.call})
	}
	m.partial = &Query{Select: partial}
	return m, true
}

// decomposableAggs are the aggregate functions with an exact
// partial-combine rule (AVG via SUM+COUNT).
var decomposableAggs = map[string]bool{
	"count": true, "sum": true, "min": true, "max": true, "avg": true,
}

// collect validates one projection/HAVING expression and registers its
// aggregate calls as partials. Outside aggregate calls only GROUP BY
// variables may be referenced (anything else would take the group's
// representative row, which is shard-dependent).
func (m *AggMerge) collect(expr Expr, keySet map[string]bool) bool {
	switch v := expr.(type) {
	case *CallExpr:
		if v.isAggregate() {
			if !decomposableAggs[v.Name] || v.Distinct {
				return false
			}
			if !v.Star && len(v.Args) != 1 {
				return false
			}
			p := &aggPart{call: v}
			m.parts = append(m.parts, p)
			m.byCall[v] = p
			return true
		}
		for _, a := range v.Args {
			if !m.collect(a, keySet) {
				return false
			}
		}
		return true
	case *VarExpr:
		return keySet[v.Name]
	case *ConstExpr:
		return true
	case *BinaryExpr:
		return m.collect(v.L, keySet) && m.collect(v.R, keySet)
	case *UnaryExpr:
		return m.collect(v.X, keySet)
	default:
		return false
	}
}

// Partial returns the per-shard query computing the group keys and raw
// partial aggregates.
func (m *AggMerge) Partial() *Query { return m.partial }

// Vars is the final result header (the original SELECT's projection).
func (m *AggMerge) Vars() []string {
	vars := make([]string, len(m.q.Projection))
	for i, item := range m.q.Projection {
		vars[i] = item.Var
	}
	return vars
}

// mergedGroup accumulates one group's partials across shards.
type mergedGroup struct {
	key  Binding // GROUP BY variable bindings
	vals []Value // merged value per part (zero Value = nothing seen yet)
	seen []bool
	cnts []float64 // avg denominators
}

// Finalize recombines the partial rows shipped by every shard into the
// final result: groups are merged by key, HAVING filters complete
// groups, the original projection is evaluated with aggregate calls
// replaced by their merged values, and DISTINCT / ORDER BY / OFFSET /
// LIMIT re-apply at the end.
func (m *AggMerge) Finalize(rows []Binding) (*Result, error) {
	e := NewEvaluator(emptySource{})
	groups := make(map[string]*mergedGroup)
	var order []string
	var kb []byte
	for _, row := range rows {
		kb = bindingKey(kb[:0], row, m.keys)
		g, ok := groups[string(kb)]
		if !ok {
			g = &mergedGroup{
				key:  Binding{},
				vals: make([]Value, len(m.parts)),
				seen: make([]bool, len(m.parts)),
				cnts: make([]float64, len(m.parts)),
			}
			for _, k := range m.keys {
				if t, bound := row[k]; bound {
					g.key[k] = t
				}
			}
			groups[string(kb)] = g
			order = append(order, string(kb))
		}
		for i, p := range m.parts {
			m.combine(e, g, i, p, row)
		}
	}
	// An ungrouped aggregate always yields its implicit group, even over
	// zero partial rows (a window pruned to zero shards): COUNT()=0.
	if len(order) == 0 && len(m.keys) == 0 {
		groups[""] = &mergedGroup{
			key:  Binding{},
			vals: make([]Value, len(m.parts)),
			seen: make([]bool, len(m.parts)),
			cnts: make([]float64, len(m.parts)),
		}
		order = append(order, "")
	}

	vars := e.projectionVars(m.q, nil)
	var out []Binding
	for _, k := range order {
		g := groups[k]
		vals := m.groupValues(g)
		ok := true
		for _, h := range m.q.Having {
			v := m.evalMerged(e, h, vals, g.key)
			pass, err := v.effectiveBool()
			if err != nil || !pass {
				ok = false
				break
			}
		}
		if !ok {
			continue
		}
		row := Binding{}
		for v, t := range g.key {
			row[v] = t
		}
		for _, item := range m.q.Projection {
			if item.Expr == nil {
				if t, bound := g.key[item.Var]; bound {
					row[item.Var] = t
				}
				continue
			}
			if t, bound := m.evalMerged(e, item.Expr, vals, g.key).asTerm(); bound {
				row[item.Var] = t
			}
		}
		out = append(out, row)
	}
	if m.q.Distinct {
		out = distinctRows(out, vars)
	}
	if len(m.q.OrderBy) > 0 {
		e.orderRows(out, m.q.OrderBy)
	}
	if m.q.Offset > 0 {
		if m.q.Offset >= len(out) {
			out = nil
		} else {
			out = out[m.q.Offset:]
		}
	}
	if m.q.Limit >= 0 && m.q.Limit < len(out) {
		out = out[:m.q.Limit]
	}
	return &Result{Vars: vars, Rows: out}, nil
}

// combine folds one partial row into a group's merged value for part i.
func (m *AggMerge) combine(e *Evaluator, g *mergedGroup, i int, p *aggPart, row Binding) {
	get := func(v string) (Value, bool) {
		t, ok := row[v]
		if !ok || t.IsZero() {
			return Value{}, false
		}
		return termToValue(t, e.cache), true
	}
	switch p.call.Name {
	case "count", "sum":
		v, ok := get(p.vars[0])
		if !ok || v.Kind != VNum {
			return
		}
		if !g.seen[i] {
			g.vals[i], g.seen[i] = numValue(0), true
		}
		g.vals[i] = numValue(g.vals[i].Num + v.Num)
	case "min", "max":
		v, ok := get(p.vars[0])
		if !ok {
			return
		}
		if !g.seen[i] {
			g.vals[i], g.seen[i] = v, true
			return
		}
		c, err := v.compare(g.vals[i])
		if err != nil {
			return
		}
		if (p.call.Name == "min" && c < 0) || (p.call.Name == "max" && c > 0) {
			g.vals[i] = v
		}
	case "avg":
		s, okS := get(p.vars[0])
		c, okC := get(p.vars[1])
		if !okS || !okC || s.Kind != VNum || c.Kind != VNum {
			return
		}
		if !g.seen[i] {
			g.vals[i], g.seen[i] = numValue(0), true
		}
		g.vals[i] = numValue(g.vals[i].Num + s.Num)
		g.cnts[i] += c.Num
	}
}

// groupValues renders the merged value of every aggregate call for one
// complete group, applying the AVG = SUM/COUNT recombination and the
// engine's empty-input conventions (COUNT/SUM/AVG of nothing are 0,
// MIN/MAX of nothing are unbound).
func (m *AggMerge) groupValues(g *mergedGroup) map[*CallExpr]Value {
	vals := make(map[*CallExpr]Value, len(m.parts))
	for i, p := range m.parts {
		switch p.call.Name {
		case "count", "sum":
			if !g.seen[i] {
				vals[p.call] = numValue(0)
				continue
			}
			vals[p.call] = g.vals[i]
		case "min", "max":
			if !g.seen[i] {
				vals[p.call] = unboundValue()
				continue
			}
			vals[p.call] = g.vals[i]
		case "avg":
			if !g.seen[i] || g.cnts[i] == 0 {
				vals[p.call] = numValue(0)
				continue
			}
			vals[p.call] = numValue(g.vals[i].Num / g.cnts[i])
		}
	}
	return vals
}

// evalMerged evaluates a projection/HAVING expression with aggregate
// calls replaced by their merged group values — the merger-side
// counterpart of evalAggExpr.
func (m *AggMerge) evalMerged(e *Evaluator, expr Expr, vals map[*CallExpr]Value, rep Binding) Value {
	switch v := expr.(type) {
	case *CallExpr:
		if v.isAggregate() {
			if val, ok := vals[v]; ok {
				return val
			}
			return errValue("stsparql: unplanned aggregate %q in merge", v.Name)
		}
		args := make([]Value, len(v.Args))
		for i, a := range v.Args {
			args[i] = m.evalMerged(e, a, vals, rep)
		}
		return e.applyFunction(v, args)
	case *BinaryExpr:
		return e.applyBinary(v.Op,
			m.evalMerged(e, v.L, vals, rep),
			m.evalMerged(e, v.R, vals, rep))
	case *UnaryExpr:
		return e.applyUnary(v.Op, m.evalMerged(e, v.X, vals, rep))
	default:
		return e.evalExpr(expr, mapRow(rep))
	}
}
