package stsparql

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/rdf"
)

// This file is the logical planner of the stSPARQL engine: it compiles a
// parsed query into the operator pipeline of ops.go. The planner orders
// basic graph patterns by cardinality estimates drawn from the source's
// maintained statistics (StatSource), pushes filters down to the
// earliest point where their variables are certainly bound, routes
// R-tree-servable geometry patterns through window scans, and picks hash
// joins for large or disconnected intermediate results. Explain renders
// the chosen plan.

// StatSource is an optional Source extension providing the cardinality
// statistics the planner costs join orders with. All methods must be
// cheap (O(1)-ish); rdf.Store maintains them incrementally.
type StatSource interface {
	Source
	// CountPattern returns the exact number of triples matching a term
	// pattern (zero Terms are wildcards).
	CountPattern(s, p, o rdf.Term) int
	// PredicateCard reports triples, distinct subjects and distinct
	// objects for one predicate.
	PredicateCard(p rdf.Term) (triples, distinctS, distinctO int)
	// StoreCard reports total triples and distinct subject / predicate /
	// object counts.
	StoreCard() (triples, subjects, predicates, objects int)
}

const (
	// spatialWindowSelectivity scales the estimate of a geometry pattern
	// the R-tree can serve through a window query: the window prunes the
	// scan to the join partner's envelope, so such patterns should order
	// ahead of similarly-sized plain scans (the paper's Municipalities-
	// style joins collapse from hotspots x dataset to hotspots x few).
	spatialWindowSelectivity = 0.01
	// hashJoinMinRows is the estimated input size above which building a
	// hash table beats per-row index scans for a connected pattern.
	hashJoinMinRows = 64
	// crossJoinHashMinRows is the threshold for disconnected patterns,
	// where the bind strategy degenerates to a full rescan per input row.
	crossJoinHashMinRows = 4
	// eagerFilterSelectivity discounts the cumulative row estimate for
	// each filter pushed into the BGP; it keeps downstream hash-join
	// decisions from overestimating their probe side.
	eagerFilterSelectivity = 0.25
)

// planner compiles queries for one evaluator.
type planner struct {
	e       *Evaluator
	stats   StatSource // nil when the source keeps no statistics
	spatial bool
	// firstBatch is the first-batch size hint for the SELECT currently
	// being compiled: when a pushed LIMIT bounds the reachable rows below
	// batchSizeMin, scans open with a batch of that size so the early
	// exit abandons the index scan after ~LIMIT visits, not a full
	// minimum slab. 0 means no hint (batchSizeMin).
	firstBatch int

	totalTriples, totalSubj, totalPred, totalObj int
}

func (e *Evaluator) newPlanner() *planner {
	p := &planner{e: e}
	if st, ok := e.src.(StatSource); ok {
		p.stats = st
		p.totalTriples, p.totalSubj, p.totalPred, p.totalObj = st.StoreCard()
	}
	if ss, ok := e.src.(SpatialSource); ok {
		p.spatial = ss.SpatialIndexEnabled()
	}
	return p
}

// --- compiled plan containers ---

// groupPlan is the pipeline of one group graph pattern: open chains its
// operators over the input iterator. The pull model gives the old
// early-exit for free — an empty upstream means no downstream operator
// ever does per-row work, and a sub-select is never evaluated when no
// row reaches it (cost, not correctness). schema is the shared column
// layout of every batch flowing through the group: it spans all
// variables of the enclosing WHERE tree, so OPTIONAL and UNION
// sub-plans emit batches the parent forwards without conversion.
type groupPlan struct {
	ops    []operator
	schema *varSchema
}

func (g *groupPlan) open(e *Evaluator, in batchIter) batchIter {
	cur := in
	for _, op := range g.ops {
		cur = op.open(e, cur)
		if e.trace != nil {
			cur = e.trace.wrap(op, cur)
		}
	}
	return cur
}

// run is the materialising wrapper used by update planning and ASK.
func (g *groupPlan) run(e *Evaluator, seed []Binding) ([]Binding, error) {
	it := g.open(e, seedIter(e.dict, g.schema, seed))
	defer it.close()
	return drainMaterialise(it)
}

func (g *groupPlan) explain(b *strings.Builder, indent string) {
	for _, op := range g.ops {
		op.explain(b, indent)
	}
}

// selectPlan is a compiled SELECT: the WHERE pipeline plus the solution
// modifiers (aggregate, project, distinct, order, slice), which run even
// over an empty row set (COUNT over zero rows still yields a row).
type selectPlan struct {
	where *groupPlan
	tail  []operator
	proj  *projectOp
}

// open wires the full pipeline over the seed rows and returns the output
// iterator together with the projection's output variable list (the
// result header), which is known once the projection has opened.
func (p *selectPlan) open(e *Evaluator, seed []Binding) (batchIter, []string) {
	cur := p.where.open(e, seedIter(e.dict, p.where.schema, seed))
	var vars []string
	for _, op := range p.tail {
		cur = op.open(e, cur)
		if op == operator(p.proj) {
			vars = cur.(*projectIter).vars
		}
		if e.trace != nil {
			cur = e.trace.wrap(op, cur)
		}
	}
	return cur, vars
}

// run is the materialising wrapper behind Evaluator.Select.
func (p *selectPlan) run(e *Evaluator, seed []Binding) (*Result, error) {
	it, vars := p.open(e, seed)
	defer it.close()
	rows, err := drainMaterialise(it)
	if err != nil {
		return nil, err
	}
	return &Result{Vars: vars, Rows: rows}, nil
}

func (p *selectPlan) explain(b *strings.Builder, indent string) {
	p.where.explain(b, indent)
	for _, op := range p.tail {
		op.explain(b, indent)
	}
}

// --- compilation ---

// planSelect compiles a SELECT. buffered marks plans whose joins should
// materialise scan matches per probe row instead of streaming them
// through a pull coroutine: sub-plans a parent re-opens once per input
// row (OPTIONAL and UNION), and plans that are always fully drained
// (update WHERE clauses, see evalWhere).
func (p *planner) planSelect(q *SelectQuery, buffered bool) *selectPlan {
	grouped := len(q.GroupBy) > 0 || len(q.Having) > 0 || projectionHasAggregates(q)
	pushed := !grouped && !q.Distinct && len(q.OrderBy) == 0 && !q.Star

	// A pushed LIMIT below batchSizeMin bounds the rows the pipeline
	// will ever pull; size the first batches to it (saved/restored
	// around the group so a sub-select's hint does not leak out).
	saved := p.firstBatch
	p.firstBatch = 0
	if pushed && q.Limit >= 0 {
		if k := q.Offset + q.Limit; k > 0 && k < batchSizeMin {
			p.firstBatch = k
		}
	}
	where := p.planGroupRoot(q.Where, buffered)
	p.firstBatch = saved
	proj := &projectOp{q: q, grouped: grouped}
	var tail []operator
	if grouped {
		tail = append(tail, &aggregateOp{q: q})
	}
	tail = append(tail, proj)
	if q.Distinct {
		tail = append(tail, &distinctOp{proj: proj})
	}
	if len(q.OrderBy) > 0 {
		// Top-k: a LIMIT bounds how many sorted rows are reachable, so the
		// order operator can keep OFFSET+LIMIT rows in a bounded heap
		// instead of sorting the full input.
		topK := 0
		if q.Limit >= 0 {
			topK = q.Offset + q.Limit
		}
		tail = append(tail, &orderOp{keys: q.OrderBy, topK: topK})
	}
	if q.Offset > 0 || q.Limit >= 0 {
		// LIMIT/OFFSET pushdown: with no blocking or row-set modifier
		// between the scans and the slice (no order, no aggregate, no
		// distinct, no star projection), the slice's early exit
		// propagates through the streaming pipeline to the index scans
		// themselves — the plan stops pulling, and therefore scanning,
		// once offset+limit rows have been produced.
		tail = append(tail, &sliceOp{offset: q.Offset, limit: q.Limit, pushed: pushed})
	}
	return &selectPlan{where: where, tail: tail, proj: proj}
}

// planGroupRoot compiles the root group of a WHERE clause: it derives
// the shared column schema from the full variable set of the pattern
// tree (sub-selects contributing only their projected variables) and
// compiles the group against it.
func (p *planner) planGroupRoot(gp *GroupPattern, buffered bool) *groupPlan {
	vars := map[string]bool{}
	collectGroupVars(gp, vars)
	return p.planGroup(gp, map[string]bool{}, 1, buffered, schemaOf(vars))
}

// collectGroupVars accumulates every variable a group graph pattern can
// bind — the column set of the group's batch schema.
func collectGroupVars(gp *GroupPattern, vars map[string]bool) {
	if gp == nil {
		return
	}
	for _, el := range gp.Elements {
		switch v := el.(type) {
		case *BGPElement:
			for _, pat := range v.Patterns {
				for _, tv := range []TermOrVar{pat.S, pat.P, pat.O} {
					if tv.IsVar() {
						vars[tv.Var] = true
					}
				}
			}
		case *OptionalElement:
			collectGroupVars(v.Pattern, vars)
		case *UnionElement:
			for _, br := range v.Branches {
				collectGroupVars(br, vars)
			}
		case *GroupPattern:
			collectGroupVars(v, vars)
		case *SubSelectElement:
			if v.Select.Star {
				collectGroupVars(v.Select.Where, vars)
			} else {
				for _, item := range v.Select.Projection {
					vars[item.Var] = true
				}
			}
		}
	}
}

// planGroup compiles a group graph pattern. bound is the set of
// variables certainly bound when the group starts; it is extended with
// the variables this group certainly binds (BGP patterns; for UNION, the
// intersection across branches). buffered propagates the per-row
// re-execution mark to the joins (see planSelect). schema is the shared
// column layout of the enclosing WHERE tree — sub-groups compile against
// the same schema so their batches forward through unchanged.
func (p *planner) planGroup(gp *GroupPattern, bound map[string]bool, inEst float64, buffered bool, schema *varSchema) *groupPlan {
	g := &groupPlan{schema: schema}
	if gp == nil {
		return g
	}
	var filters []*FilterElement
	for _, el := range gp.Elements {
		if f, ok := el.(*FilterElement); ok {
			filters = append(filters, f)
		}
	}
	applied := make(map[*FilterElement]bool)

	for _, el := range gp.Elements {
		switch v := el.(type) {
		case *BGPElement:
			var ops []operator
			ops, inEst = p.planBGP(v.Patterns, filters, applied, bound, inEst, buffered, schema)
			g.ops = append(g.ops, ops...)
		case *FilterElement:
			// applied at group end (or pushed into a BGP)
		case *OptionalElement:
			sub := p.planGroup(v.Pattern, cloneBound(bound), 1, true, schema)
			g.ops = append(g.ops, &optionalOp{sub: sub, schema: schema})
		case *UnionElement:
			u := &unionOp{schema: schema}
			var branchBound []map[string]bool
			for _, br := range v.Branches {
				bb := cloneBound(bound)
				u.branches = append(u.branches, p.planGroup(br, bb, 1, true, schema))
				branchBound = append(branchBound, bb)
			}
			g.ops = append(g.ops, u)
			// Variables bound in every branch are certainly bound after
			// the union.
			if len(branchBound) > 0 {
				for v2 := range branchBound[0] {
					all := true
					for _, bb := range branchBound[1:] {
						if !bb[v2] {
							all = false
							break
						}
					}
					if all {
						bound[v2] = true
					}
				}
			}
			inEst *= float64(len(v.Branches))
		case *GroupPattern:
			sub := p.planGroup(v, bound, inEst, buffered, schema)
			g.ops = append(g.ops, &nestedGroupOp{sub: sub})
		case *SubSelectElement:
			// A sub-select evaluates once (its solutions are cached on
			// the operator), so its own pipeline may stream even when
			// the enclosing group is re-executed per row. It carries its
			// own schema; only its projected solution rows join back into
			// the enclosing layout.
			sub := p.planSelect(v.Select, false)
			g.ops = append(g.ops, &subSelectOp{sub: sub, schema: schema})
			// The sub-select's projected variables are NOT certainly bound:
			// a projection can come from an OPTIONAL-only variable or an
			// erroring expression, leaving it unbound in some rows. Marking
			// them here would let a later hash join key on an unbound
			// variable and silently drop rows; leaving them unmarked only
			// costs eager-filter and hash opportunities (bind joins still
			// use the runtime bindings).
		}
	}

	// Remaining filters apply over the whole group. Filters already pushed
	// into a BGP are pure pruning and need not re-run.
	for _, f := range filters {
		if !applied[f] {
			g.ops = append(g.ops, newFilterOp(f.Cond, false))
		}
	}
	return g
}

// planBGP orders a basic graph pattern's triples by cardinality
// estimates and interleaves eagerly-applicable filters, returning the
// operators and the updated cumulative row estimate.
func (p *planner) planBGP(patterns []TriplePattern, filters []*FilterElement, applied map[*FilterElement]bool, bound map[string]bool, inEst float64, buffered bool, schema *varSchema) ([]operator, float64) {
	remaining := append([]TriplePattern(nil), patterns...)
	var ops []operator

	for len(remaining) > 0 {
		// Pick the next pattern by (boundness class, cardinality estimate):
		// the class ranks patterns by how many components are constant or
		// certainly bound — with R-tree-servable geometry patterns promoted
		// when a pending spatial filter joins their fresh geometry variable
		// against a bound one — and the statistics break ties within a
		// class with the lowest estimated matches per input row. The class
		// ordering is the heuristic the tree-walking evaluator pinned
		// (selective scans first, window scans as soon as servable); the
		// estimates refine choices the class cannot rank, such as two type
		// scans of different sizes.
		best, bestScore, bestEst, bestWindow := 0, -1, 0.0, false
		for i, pat := range remaining {
			score := 0
			for _, tv := range []TermOrVar{pat.S, pat.P, pat.O} {
				if !tv.IsVar() || bound[tv.Var] {
					score += 2
				}
			}
			if !pat.P.IsVar() {
				score++ // bound predicates: the POS index is effective
			}
			window := false
			if p.spatial && score < 6 && !pat.P.IsVar() && GeometryPredicates[pat.P.Term.Value] &&
				pat.O.IsVar() && !bound[pat.O.Var] &&
				spatialJoinReady(filters, applied, pat.O.Var, bound) {
				score = 6
				window = true
			}
			est := p.estimateFanout(pat, bound)
			if window {
				est *= spatialWindowSelectivity
			}
			if score > bestScore || (score == bestScore && est < bestEst) {
				best, bestScore, bestEst, bestWindow = i, score, est, window
			}
		}
		pat := remaining[best]
		remaining = append(remaining[:best], remaining[best+1:]...)

		op := &joinOp{pat: pat, filters: filters, strategy: joinBind, buffered: buffered, schema: schema, first: p.firstBatch}
		for _, tv := range []TermOrVar{pat.S, pat.P, pat.O} {
			if tv.IsVar() && bound[tv.Var] && !containsVar(op.shared, tv.Var) {
				op.shared = append(op.shared, tv.Var)
			}
		}
		// Hash joins need real cardinalities: without statistics the
		// pseudo-estimates rank patterns but do not measure rows, so the
		// planner sticks to bind joins.
		switch {
		case bestWindow:
			op.strategy = joinWindow
		case p.stats != nil && len(op.shared) == 0 && inEst >= crossJoinHashMinRows:
			// Disconnected pattern: bind degenerates to a rescan per row.
			op.strategy = joinHash
		case p.stats != nil && len(op.shared) > 0 && inEst >= hashJoinMinRows &&
			p.scanAllEstimate(pat) <= inEst*maxf(bestEst, 1):
			op.strategy = joinHash
		}
		if p.stats != nil {
			inEst *= maxf(bestEst, 1.0/16)
		}
		op.est = inEst
		ops = append(ops, op)

		for _, tv := range []TermOrVar{pat.S, pat.P, pat.O} {
			if tv.IsVar() {
				bound[tv.Var] = true
			}
		}

		// Push down any filter whose variables just became certainly
		// bound (bound() must wait for the group end: OPTIONAL may bind
		// later).
		for _, f := range filters {
			if applied[f] {
				continue
			}
			vars := map[string]bool{}
			exprVars(f.Cond, vars)
			all := true
			for v := range vars {
				if !bound[v] {
					all = false
					break
				}
			}
			if all && !usesBoundFn(f.Cond) {
				applied[f] = true
				ops = append(ops, newFilterOp(f.Cond, true))
				inEst *= eagerFilterSelectivity
			}
		}
	}
	return ops, inEst
}

// estimateFanout estimates how many matches one input row finds in the
// pattern. Components are either constants (usable in exact counts),
// certainly-bound variables (whose value is unknown at plan time —
// estimated through per-predicate distinct counts), or free.
func (p *planner) estimateFanout(pat TriplePattern, bound map[string]bool) float64 {
	sBound := pat.S.IsVar() && bound[pat.S.Var]
	pBound := pat.P.IsVar() && bound[pat.P.Var]
	oBound := pat.O.IsVar() && bound[pat.O.Var]

	if p.stats == nil {
		// No statistics: order by boundness, the old evaluator's
		// heuristic, expressed as a pseudo-estimate.
		est := 1e9
		for _, c := range []struct {
			tv      TermOrVar
			isBound bool
		}{{pat.S, sBound}, {pat.P, pBound}, {pat.O, oBound}} {
			if !c.tv.IsVar() || c.isBound {
				est /= 1000
			}
		}
		if !pat.P.IsVar() {
			est /= 2
		}
		return est
	}

	term := func(tv TermOrVar) rdf.Term {
		if tv.IsVar() {
			return rdf.Term{}
		}
		return tv.Term
	}
	base := float64(p.stats.CountPattern(term(pat.S), term(pat.P), term(pat.O)))
	if !sBound && !pBound && !oBound {
		return base // exact
	}
	var distinctS, distinctO int
	if !pat.P.IsVar() {
		_, distinctS, distinctO = p.stats.PredicateCard(pat.P.Term)
	}
	if sBound {
		if !pat.P.IsVar() {
			base /= float64(maxi(distinctS, 1))
		} else {
			base /= float64(maxi(p.totalSubj, 1))
		}
	}
	if oBound {
		if !pat.P.IsVar() {
			base /= float64(maxi(distinctO, 1))
		} else {
			base /= float64(maxi(p.totalObj, 1))
		}
	}
	if pBound {
		base /= float64(maxi(p.totalPred, 1))
	}
	return base
}

// scanAllEstimate estimates the cost of materialising the pattern's
// matches with only its constants bound — the hash join's build side.
func (p *planner) scanAllEstimate(pat TriplePattern) float64 {
	if p.stats == nil {
		return 1e9
	}
	term := func(tv TermOrVar) rdf.Term {
		if tv.IsVar() {
			return rdf.Term{}
		}
		return tv.Term
	}
	return float64(p.stats.CountPattern(term(pat.S), term(pat.P), term(pat.O)))
}

// spatialJoinReady reports whether a pending filter spatially joins
// variable v against a geometry computable from the already-bound
// variables — the static counterpart of findSpatialConstraint, used to
// route index-servable geometry patterns through window scans.
func spatialJoinReady(filters []*FilterElement, applied map[*FilterElement]bool, v string, bound map[string]bool) bool {
	for _, f := range filters {
		if applied[f] {
			continue
		}
		if spatialJoinReadyExpr(f.Cond, v, bound) {
			return true
		}
	}
	return false
}

func spatialJoinReadyExpr(expr Expr, v string, bound map[string]bool) bool {
	switch n := expr.(type) {
	case *CallExpr:
		if spatialJoinFns[n.Name] && len(n.Args) == 2 {
			for i := 0; i < 2; i++ {
				ve, ok := n.Args[i].(*VarExpr)
				if !ok || ve.Name != v {
					continue
				}
				vars := map[string]bool{}
				exprVars(n.Args[1-i], vars)
				otherBound := true
				for name := range vars {
					if !bound[name] {
						otherBound = false
						break
					}
				}
				if otherBound {
					return true
				}
			}
		}
	case *BinaryExpr:
		if n.Op == "&&" {
			return spatialJoinReadyExpr(n.L, v, bound) || spatialJoinReadyExpr(n.R, v, bound)
		}
	}
	return false
}

// --- Explain ---

// Explain compiles the query and renders the chosen plan without
// executing it. Join operators are annotated with their strategy and the
// planner's cumulative row estimates.
func (e *Evaluator) Explain(q *Query) (string, error) {
	p := e.newPlanner()
	var b strings.Builder
	switch {
	case q.Select != nil:
		b.WriteString("select\n")
		p.planSelect(q.Select, false).explain(&b, "  ")
	case q.Ask != nil:
		b.WriteString("ask\n")
		p.planGroupRoot(q.Ask.Where, false).explain(&b, "  ")
	case q.Update != nil:
		fmt.Fprintf(&b, "update delete=%d insert=%d\n", len(q.Update.Delete), len(q.Update.Insert))
		if q.Update.Where != nil {
			p.planGroupRoot(q.Update.Where, false).explain(&b, "  ")
		}
	default:
		return "", fmt.Errorf("stsparql: empty query")
	}
	return b.String(), nil
}

// --- rendering helpers ---

func termOrVarString(tv TermOrVar) string {
	if tv.IsVar() {
		return "?" + tv.Var
	}
	return tv.Term.String()
}

func exprString(e Expr) string {
	switch v := e.(type) {
	case *VarExpr:
		return "?" + v.Name
	case *ConstExpr:
		return v.Term.String()
	case *BinaryExpr:
		return "(" + exprString(v.L) + " " + v.Op + " " + exprString(v.R) + ")"
	case *UnaryExpr:
		return v.Op + exprString(v.X)
	case *CallExpr:
		var b strings.Builder
		b.WriteString(v.Name)
		b.WriteByte('(')
		if v.Distinct {
			b.WriteString("DISTINCT ")
		}
		if v.Star {
			b.WriteByte('*')
		}
		for i, a := range v.Args {
			if i > 0 {
				b.WriteString(", ")
			}
			b.WriteString(exprString(a))
		}
		b.WriteByte(')')
		return b.String()
	default:
		return fmt.Sprintf("%T", e)
	}
}

func formatEst(est float64) string {
	if est >= 10 {
		return strconv.FormatFloat(est, 'f', 0, 64)
	}
	return strconv.FormatFloat(est, 'g', 2, 64)
}

func cloneBound(m map[string]bool) map[string]bool {
	out := make(map[string]bool, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}

func containsVar(vars []string, v string) bool {
	for _, x := range vars {
		if x == v {
			return true
		}
	}
	return false
}

func maxf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}

func maxi(a, b int) int {
	if a > b {
		return a
	}
	return b
}
