package stsparql

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/geom"
	"repro/internal/rdf"
)

// Source is the triple source queries run against.
type Source interface {
	// MatchTerms streams triples matching a pattern; zero Terms are
	// wildcards.
	MatchTerms(s, p, o rdf.Term, visit func(rdf.Triple) bool)
}

// UpdatableSource additionally supports mutation, required by
// DELETE/INSERT requests.
type UpdatableSource interface {
	Source
	Add(rdf.Triple) bool
	Remove(rdf.Triple) bool
}

// SpatialSource is an optional Source extension: a store that maintains a
// spatial index over strdf:hasGeometry objects can serve window queries,
// which the evaluator uses to prune spatial-join candidates.
type SpatialSource interface {
	Source
	// SpatialIndexEnabled reports whether the window path may be used.
	SpatialIndexEnabled() bool
	// MatchGeometryWindow streams (subject, hasGeometry-pred, geometry)
	// triples whose geometry envelope intersects env.
	MatchGeometryWindow(env geom.Envelope, visit func(rdf.Triple) bool)
}

// GeometryPredicates lists the predicate IRIs treated as geometry
// attachment points for index acceleration (the datasets use
// strdf:hasGeometry; the paper's queries also write noa:hasGeometry).
var GeometryPredicates = map[string]bool{
	"http://strdf.di.uoa.gr/ontology#hasGeometry":                     true,
	"http://teleios.di.uoa.gr/ontologies/noaOntology.owl#hasGeometry": true,
}

// Binding maps variable names to RDF terms.
type Binding map[string]rdf.Term

func (b Binding) clone() Binding {
	out := make(Binding, len(b)+2)
	for k, v := range b {
		out[k] = v
	}
	return out
}

// Result is the outcome of a SELECT evaluation.
type Result struct {
	Vars []string
	Rows []Binding
}

// UpdateStats reports the effect of an update request.
type UpdateStats struct {
	Matched  int // WHERE solutions
	Deleted  int // triples removed
	Inserted int // triples added
}

// Evaluator executes parsed queries against a source. It is not safe for
// concurrent use; create one per goroutine (the geometry cache may be
// shared through NewEvaluatorWithCache).
type Evaluator struct {
	src   Source
	cache *geomCache
}

// NewEvaluator returns an evaluator over src.
func NewEvaluator(src Source) *Evaluator {
	return &Evaluator{src: src, cache: newGeomCache()}
}

// Select evaluates a SELECT query.
func (e *Evaluator) Select(q *SelectQuery) (*Result, error) {
	return e.evalSelect(q, []Binding{{}})
}

// Ask evaluates an ASK query.
func (e *Evaluator) Ask(q *AskQuery) (bool, error) {
	rows, err := e.evalGroup(q.Where, []Binding{{}})
	if err != nil {
		return false, err
	}
	return len(rows) > 0, nil
}

// UpdatePlan is a computed but not yet applied DELETE/INSERT request: the
// WHERE solutions have been matched and both templates instantiated
// against the pre-update state. Splitting planning from application lets a
// store evaluate the (expensive, read-only) match phase under a shared
// read lock and serialise only the mutation.
type UpdatePlan struct {
	Matched int
	Deletes []rdf.Triple
	Inserts []rdf.Triple
}

// PlanUpdate evaluates an update's WHERE clause and instantiates its
// templates without mutating the source. The returned plan reflects the
// source state at planning time; callers that apply it later are
// responsible for ensuring no conflicting write lands in between (see
// strabon.UpdateScoped for the discipline used by the refinement loop).
func (e *Evaluator) PlanUpdate(q *UpdateQuery) (*UpdatePlan, error) {
	var solutions []Binding
	if q.Where != nil {
		rows, err := e.evalGroup(q.Where, []Binding{{}})
		if err != nil {
			return nil, err
		}
		solutions = rows
	} else {
		solutions = []Binding{{}}
	}
	plan := &UpdatePlan{Matched: len(solutions)}

	// SPARQL Update semantics: both template instantiations are computed
	// against the pre-update state, then deletes apply before inserts.
	seen := make(map[string]bool)
	for _, row := range solutions {
		for _, tpl := range q.Delete {
			if t, ok := instantiate(tpl, row); ok {
				if k := t.String(); !seen["D"+k] {
					seen["D"+k] = true
					plan.Deletes = append(plan.Deletes, t)
				}
			}
		}
		for _, tpl := range q.Insert {
			if t, ok := instantiate(tpl, row); ok {
				if k := t.String(); !seen["I"+k] {
					seen["I"+k] = true
					plan.Inserts = append(plan.Inserts, t)
				}
			}
		}
	}
	return plan, nil
}

// ApplyPlan applies a computed update plan to a source: deletes before
// inserts, per SPARQL Update semantics.
func ApplyPlan(up UpdatableSource, plan *UpdatePlan) UpdateStats {
	stats := UpdateStats{Matched: plan.Matched}
	for _, t := range plan.Deletes {
		if up.Remove(t) {
			stats.Deleted++
		}
	}
	for _, t := range plan.Inserts {
		if up.Add(t) {
			stats.Inserted++
		}
	}
	return stats
}

// Update executes a DELETE/INSERT request against an updatable source.
func (e *Evaluator) Update(q *UpdateQuery) (UpdateStats, error) {
	up, ok := e.src.(UpdatableSource)
	if !ok {
		return UpdateStats{}, fmt.Errorf("stsparql: source is not updatable")
	}
	plan, err := e.PlanUpdate(q)
	if err != nil {
		return UpdateStats{}, err
	}
	return ApplyPlan(up, plan), nil
}

func instantiate(tpl TriplePattern, row Binding) (rdf.Triple, bool) {
	resolve := func(tv TermOrVar) (rdf.Term, bool) {
		if !tv.IsVar() {
			return tv.Term, true
		}
		t, ok := row[tv.Var]
		return t, ok && !t.IsZero()
	}
	s, ok1 := resolve(tpl.S)
	p, ok2 := resolve(tpl.P)
	o, ok3 := resolve(tpl.O)
	if !ok1 || !ok2 || !ok3 || s.IsLiteral() || !p.IsIRI() {
		return rdf.Triple{}, false
	}
	return rdf.Triple{S: s, P: p, O: o}, true
}

// --- SELECT evaluation ---

func (e *Evaluator) evalSelect(q *SelectQuery, seed []Binding) (*Result, error) {
	rows, err := e.evalGroup(q.Where, seed)
	if err != nil {
		return nil, err
	}

	grouped := len(q.GroupBy) > 0 || len(q.Having) > 0 || projectionHasAggregates(q)
	if grouped {
		rows, err = e.aggregate(q, rows)
		if err != nil {
			return nil, err
		}
	}

	// Projection.
	vars := e.projectionVars(q, rows)
	projected := make([]Binding, 0, len(rows))
	for _, row := range rows {
		out := make(Binding, len(vars))
		for _, item := range q.Projection {
			if item.Expr != nil && !grouped {
				if t, ok := e.evalExpr(item.Expr, row).asTerm(); ok {
					out[item.Var] = t
				}
				continue
			}
			// Plain variables, and grouped rows (which already carry the
			// computed aggregate bindings), copy through.
			if t, ok := row[item.Var]; ok {
				out[item.Var] = t
			}
		}
		if q.Star {
			for k, v := range row {
				out[k] = v
			}
		}
		projected = append(projected, out)
	}

	if q.Distinct {
		projected = distinctRows(projected, vars)
	}
	if len(q.OrderBy) > 0 {
		e.orderRows(projected, q.OrderBy)
	}
	if q.Offset > 0 {
		if q.Offset >= len(projected) {
			projected = nil
		} else {
			projected = projected[q.Offset:]
		}
	}
	if q.Limit >= 0 && q.Limit < len(projected) {
		projected = projected[:q.Limit]
	}
	return &Result{Vars: vars, Rows: projected}, nil
}

func (b Binding) has(v string) bool {
	t, ok := b[v]
	return ok && !t.IsZero()
}

func projectionHasAggregates(q *SelectQuery) bool {
	for _, item := range q.Projection {
		if item.Expr != nil && containsAggregate(item.Expr) {
			return true
		}
	}
	return false
}

func (e *Evaluator) projectionVars(q *SelectQuery, rows []Binding) []string {
	if !q.Star {
		vars := make([]string, len(q.Projection))
		for i, item := range q.Projection {
			vars[i] = item.Var
		}
		return vars
	}
	set := make(map[string]bool)
	for _, row := range rows {
		for k := range row {
			set[k] = true
		}
	}
	vars := make([]string, 0, len(set))
	for k := range set {
		vars = append(vars, k)
	}
	sort.Strings(vars)
	return vars
}

func distinctRows(rows []Binding, vars []string) []Binding {
	seen := make(map[string]bool, len(rows))
	out := rows[:0]
	for _, row := range rows {
		var b strings.Builder
		for _, v := range vars {
			b.WriteString(row[v].String())
			b.WriteByte('|')
		}
		k := b.String()
		if !seen[k] {
			seen[k] = true
			out = append(out, row)
		}
	}
	return out
}

func (e *Evaluator) orderRows(rows []Binding, keys []OrderKey) {
	sort.SliceStable(rows, func(i, j int) bool {
		for _, k := range keys {
			vi := e.evalExpr(k.Expr, rows[i])
			vj := e.evalExpr(k.Expr, rows[j])
			c, err := vi.compare(vj)
			if err != nil {
				continue
			}
			if c != 0 {
				if k.Desc {
					return c > 0
				}
				return c < 0
			}
		}
		return false
	})
}

// --- grouping & aggregates ---

func (e *Evaluator) aggregate(q *SelectQuery, rows []Binding) ([]Binding, error) {
	type grp struct {
		key  Binding
		rows []Binding
	}
	groups := make(map[string]*grp)
	var order []string
	for _, row := range rows {
		var kb strings.Builder
		key := Binding{}
		for _, ge := range q.GroupBy {
			v := e.evalExpr(ge, row)
			t, _ := v.asTerm()
			kb.WriteString(t.String())
			kb.WriteByte('|')
			if ve, ok := ge.(*VarExpr); ok {
				key[ve.Name] = t
			}
		}
		k := kb.String()
		g, ok := groups[k]
		if !ok {
			g = &grp{key: key}
			groups[k] = g
			order = append(order, k)
		}
		g.rows = append(g.rows, row)
	}
	// With no GROUP BY, all rows form one implicit group (even zero rows
	// for COUNT(*) = 0).
	if len(q.GroupBy) == 0 && len(groups) == 0 {
		groups[""] = &grp{key: Binding{}}
		order = append(order, "")
	}

	var out []Binding
	for _, k := range order {
		g := groups[k]
		row := Binding{}
		// Group keys are visible in the output row.
		for v, t := range g.key {
			row[v] = t
		}
		// Representative bindings for non-aggregate var references.
		var rep Binding
		if len(g.rows) > 0 {
			rep = g.rows[0]
		} else {
			rep = Binding{}
		}
		ok := true
		for _, h := range q.Having {
			v := e.evalAggExpr(h, g.rows, rep)
			pass, err := v.effectiveBool()
			if err != nil || !pass {
				ok = false
				break
			}
		}
		if !ok {
			continue
		}
		for _, item := range q.Projection {
			if item.Expr == nil {
				if t, bound := rep[item.Var]; bound {
					row[item.Var] = t
				}
				continue
			}
			v := e.evalAggExpr(item.Expr, g.rows, rep)
			if t, okT := v.asTerm(); okT {
				row[item.Var] = t
			}
		}
		out = append(out, row)
	}
	return out, nil
}

// evalAggExpr evaluates an expression in aggregate context: aggregate
// calls consume the group's rows, everything else evaluates against the
// representative binding.
func (e *Evaluator) evalAggExpr(expr Expr, rows []Binding, rep Binding) Value {
	switch v := expr.(type) {
	case *CallExpr:
		if v.isAggregate() {
			return e.evalAggregateCall(v, rows)
		}
		args := make([]Value, len(v.Args))
		for i, a := range v.Args {
			args[i] = e.evalAggExpr(a, rows, rep)
		}
		return e.applyFunction(v, args, rep)
	case *BinaryExpr:
		return e.applyBinary(v.Op,
			e.evalAggExpr(v.L, rows, rep),
			e.evalAggExpr(v.R, rows, rep))
	case *UnaryExpr:
		return e.applyUnary(v.Op, e.evalAggExpr(v.X, rows, rep))
	default:
		return e.evalExpr(expr, rep)
	}
}

func (e *Evaluator) evalAggregateCall(c *CallExpr, rows []Binding) Value {
	collect := func() []Value {
		var vals []Value
		seen := make(map[string]bool)
		for _, row := range rows {
			if len(c.Args) == 0 {
				continue
			}
			v := e.evalExpr(c.Args[0], row)
			if v.Kind == VUnbound || v.Kind == VErr {
				continue
			}
			if c.Distinct {
				t, _ := v.asTerm()
				k := t.String()
				if seen[k] {
					continue
				}
				seen[k] = true
			}
			vals = append(vals, v)
		}
		return vals
	}
	switch c.Name {
	case "count":
		if c.Star {
			if c.Distinct {
				return numValue(float64(len(distinctAll(rows))))
			}
			return numValue(float64(len(rows)))
		}
		return numValue(float64(len(collect())))
	case "sum", "avg":
		vals := collect()
		var sum float64
		n := 0
		for _, v := range vals {
			if v.Kind == VNum {
				sum += v.Num
				n++
			}
		}
		if c.Name == "avg" {
			if n == 0 {
				return numValue(0)
			}
			return numValue(sum / float64(n))
		}
		return numValue(sum)
	case "min", "max":
		vals := collect()
		if len(vals) == 0 {
			return unboundValue()
		}
		best := vals[0]
		for _, v := range vals[1:] {
			c2, err := v.compare(best)
			if err != nil {
				continue
			}
			if (c.Name == "min" && c2 < 0) || (c.Name == "max" && c2 > 0) {
				best = v
			}
		}
		return best
	case "sample":
		vals := collect()
		if len(vals) == 0 {
			return unboundValue()
		}
		return vals[0]
	case "strdf:union":
		vals := collect()
		var polys []geom.Polygon
		var rest geom.Collection
		for _, v := range vals {
			if v.Kind != VGeom {
				continue
			}
			_, _, ps := geomParts(v.Geom)
			if len(ps) > 0 {
				polys = append(polys, ps...)
			} else {
				rest = append(rest, v.Geom)
			}
		}
		u := geom.UnionAllPolygons(polys)
		if len(rest) == 0 {
			return geomValue(u)
		}
		return geomValue(append(rest, u))
	case "strdf:extent":
		vals := collect()
		env := geom.EmptyEnvelope()
		for _, v := range vals {
			if v.Kind == VGeom {
				env = env.Expand(v.Geom.Envelope())
			}
		}
		if env.IsEmpty() {
			return unboundValue()
		}
		return geomValue(env.ToPolygon())
	default:
		return errValue("stsparql: unknown aggregate %q", c.Name)
	}
}

func distinctAll(rows []Binding) []Binding {
	seen := make(map[string]bool)
	var out []Binding
	for _, row := range rows {
		keys := make([]string, 0, len(row))
		for k, v := range row {
			keys = append(keys, k+"="+v.String())
		}
		sort.Strings(keys)
		k := strings.Join(keys, "|")
		if !seen[k] {
			seen[k] = true
			out = append(out, row)
		}
	}
	return out
}

func geomParts(g geom.Geometry) ([]geom.Point, []geom.LineString, []geom.Polygon) {
	switch v := g.(type) {
	case geom.Point:
		return []geom.Point{v}, nil, nil
	case geom.MultiPoint:
		return v, nil, nil
	case geom.LineString:
		return nil, []geom.LineString{v}, nil
	case geom.MultiLineString:
		return nil, v, nil
	case geom.Polygon:
		return nil, nil, []geom.Polygon{v}
	case geom.MultiPolygon:
		return nil, nil, v
	case geom.Collection:
		var pts []geom.Point
		var ls []geom.LineString
		var ps []geom.Polygon
		for _, m := range v {
			p2, l2, g2 := geomParts(m)
			pts = append(pts, p2...)
			ls = append(ls, l2...)
			ps = append(ps, g2...)
		}
		return pts, ls, ps
	}
	return nil, nil, nil
}

// --- group graph pattern evaluation ---

func (e *Evaluator) evalGroup(gp *GroupPattern, seed []Binding) ([]Binding, error) {
	if gp == nil {
		return seed, nil
	}
	rows := seed
	// Filters apply over the whole group; they are additionally pushed
	// into BGP joins when their variables are certainly bound (see
	// joinBGP).
	var filters []*FilterElement
	for _, el := range gp.Elements {
		if f, ok := el.(*FilterElement); ok {
			filters = append(filters, f)
		}
	}
	for _, el := range gp.Elements {
		var err error
		switch v := el.(type) {
		case *BGPElement:
			rows, err = e.joinBGP(rows, v.Patterns, filters)
		case *FilterElement:
			// applied at group end
		case *OptionalElement:
			rows, err = e.leftJoin(rows, v.Pattern)
		case *UnionElement:
			rows, err = e.union(rows, v)
		case *GroupPattern:
			rows, err = e.evalGroup(v, rows)
		case *SubSelectElement:
			rows, err = e.subSelect(rows, v.Select)
		}
		if err != nil {
			return nil, err
		}
		if len(rows) == 0 {
			break
		}
	}
	// Final filter pass (error => row dropped, per SPARQL semantics).
	out := rows[:0]
	for _, row := range rows {
		keep := true
		for _, f := range filters {
			v := e.evalExpr(f.Cond, row)
			pass, err := v.effectiveBool()
			if err != nil || !pass {
				keep = false
				break
			}
		}
		if keep {
			out = append(out, row)
		}
	}
	return out, nil
}

func (e *Evaluator) leftJoin(rows []Binding, pat *GroupPattern) ([]Binding, error) {
	var out []Binding
	for _, row := range rows {
		sub, err := e.evalGroup(pat, []Binding{row})
		if err != nil {
			return nil, err
		}
		if len(sub) == 0 {
			out = append(out, row)
		} else {
			out = append(out, sub...)
		}
	}
	return out, nil
}

func (e *Evaluator) union(rows []Binding, u *UnionElement) ([]Binding, error) {
	var out []Binding
	for _, row := range rows {
		for _, br := range u.Branches {
			sub, err := e.evalGroup(br, []Binding{row})
			if err != nil {
				return nil, err
			}
			out = append(out, sub...)
		}
	}
	return out, nil
}

func (e *Evaluator) subSelect(rows []Binding, q *SelectQuery) ([]Binding, error) {
	res, err := e.evalSelect(q, []Binding{{}})
	if err != nil {
		return nil, err
	}
	// Join on shared variables.
	var out []Binding
	for _, row := range rows {
		for _, sub := range res.Rows {
			merged, ok := mergeCompatible(row, sub)
			if ok {
				out = append(out, merged)
			}
		}
	}
	return out, nil
}

func mergeCompatible(a, b Binding) (Binding, bool) {
	out := a.clone()
	for k, v := range b {
		if existing, ok := out[k]; ok && !existing.IsZero() {
			if !existing.Equal(v) {
				return nil, false
			}
			continue
		}
		out[k] = v
	}
	return out, true
}

// joinBGP extends each row through the triple patterns, greedily ordering
// patterns by boundness and eagerly applying any group filter whose
// variables are certainly bound.
func (e *Evaluator) joinBGP(rows []Binding, patterns []TriplePattern, filters []*FilterElement) ([]Binding, error) {
	remaining := append([]TriplePattern(nil), patterns...)
	applied := make(map[*FilterElement]bool)

	boundVars := make(map[string]bool)
	for _, row := range rows {
		for k := range row {
			boundVars[k] = true
		}
		break // seed rows share the same domain
	}

	spatialIdx := false
	if ss, ok := e.src.(SpatialSource); ok {
		spatialIdx = ss.SpatialIndexEnabled()
	}

	for len(remaining) > 0 {
		// Pick the most selective pattern: most bound components.
		best, bestScore := 0, -1
		for i, p := range remaining {
			score := 0
			for _, tv := range []TermOrVar{p.S, p.P, p.O} {
				if !tv.IsVar() || boundVars[tv.Var] {
					score += 2
				}
			}
			if !p.P.IsVar() {
				score++ // prefer bound predicates: POS index is effective
			}
			// Prefer geometry patterns the R-tree can serve: when a pending
			// spatial filter joins this pattern's fresh geometry variable
			// against an already-bound one, scanning it next turns a full
			// cross join into a window query (the paper's Municipalities-
			// style joins collapse from hotspots×dataset to hotspots×few).
			if spatialIdx && score < 6 && !p.P.IsVar() && GeometryPredicates[p.P.Term.Value] &&
				p.O.IsVar() && !boundVars[p.O.Var] &&
				spatialJoinReady(filters, applied, p.O.Var, boundVars) {
				score = 6
			}
			if score > bestScore {
				best, bestScore = i, score
			}
		}
		pat := remaining[best]
		remaining = append(remaining[:best], remaining[best+1:]...)

		// Which filters become certainly-bound after this pattern?
		for _, tv := range []TermOrVar{pat.S, pat.P, pat.O} {
			if tv.IsVar() {
				boundVars[tv.Var] = true
			}
		}
		var eager []*FilterElement
		for _, f := range filters {
			if applied[f] {
				continue
			}
			vars := map[string]bool{}
			exprVars(f.Cond, vars)
			all := true
			for v := range vars {
				if !boundVars[v] {
					all = false
					break
				}
			}
			if all && !usesBoundFn(f.Cond) {
				eager = append(eager, f)
				applied[f] = true
			}
		}

		var next []Binding
		for _, row := range rows {
			e.scanPattern(pat, row, filters, func(extended Binding) {
				for _, f := range eager {
					v := e.evalExpr(f.Cond, extended)
					pass, err := v.effectiveBool()
					if err != nil || !pass {
						return
					}
				}
				next = append(next, extended)
			})
		}
		rows = next
		if len(rows) == 0 {
			return rows, nil
		}
	}
	return rows, nil
}

// usesBoundFn reports whether the expression calls bound(); such filters
// must wait for the end of the group (OPTIONAL may bind later).
func usesBoundFn(e Expr) bool {
	switch v := e.(type) {
	case *CallExpr:
		if v.Name == "bound" {
			return true
		}
		for _, a := range v.Args {
			if usesBoundFn(a) {
				return true
			}
		}
	case *BinaryExpr:
		return usesBoundFn(v.L) || usesBoundFn(v.R)
	case *UnaryExpr:
		return usesBoundFn(v.X)
	}
	return false
}

// scanPattern matches one triple pattern under a row, emitting extended
// rows. When the pattern binds a fresh geometry variable that a pending
// spatial filter constrains against an already-known geometry, and the
// source has a spatial index, the scan is served by an R-tree window
// query instead of a full predicate scan.
func (e *Evaluator) scanPattern(pat TriplePattern, row Binding, filters []*FilterElement, emit func(Binding)) {
	resolve := func(tv TermOrVar) rdf.Term {
		if !tv.IsVar() {
			return tv.Term
		}
		if t, ok := row[tv.Var]; ok {
			return t
		}
		return rdf.Term{}
	}
	s, p, o := resolve(pat.S), resolve(pat.P), resolve(pat.O)

	tryBind := func(t rdf.Triple) {
		out := row
		cloned := false
		bind := func(tv TermOrVar, val rdf.Term) bool {
			if !tv.IsVar() {
				return true
			}
			if existing, ok := out[tv.Var]; ok && !existing.IsZero() {
				return existing.Equal(val)
			}
			if !cloned {
				out = row.clone()
				cloned = true
			}
			out[tv.Var] = val
			return true
		}
		if !bind(pat.S, t.S) || !bind(pat.P, t.P) || !bind(pat.O, t.O) {
			return
		}
		if !cloned {
			out = row.clone()
		}
		emit(out)
	}

	// Spatial index fast path.
	if ss, ok := e.src.(SpatialSource); ok && ss.SpatialIndexEnabled() &&
		!p.IsZero() && GeometryPredicates[p.Value] && pat.O.IsVar() && o.IsZero() {
		if env, found := e.spatialWindowFor(pat.O.Var, row, filters); found {
			ss.MatchGeometryWindow(env, func(t rdf.Triple) bool {
				if !p.IsZero() && t.P.Value != p.Value {
					return true
				}
				if !s.IsZero() && !t.S.Equal(s) {
					return true
				}
				tryBind(t)
				return true
			})
			return
		}
	}

	e.src.MatchTerms(s, p, o, func(t rdf.Triple) bool {
		tryBind(t)
		return true
	})
}

// spatialWindowFor inspects pending filters for a spatial predicate
// constraining variable v against a geometry already computable under row;
// it returns the candidate envelope.
func (e *Evaluator) spatialWindowFor(v string, row Binding, filters []*FilterElement) (geom.Envelope, bool) {
	for _, f := range filters {
		if env, ok := e.findSpatialConstraint(f.Cond, v, row); ok {
			return env, true
		}
	}
	return geom.Envelope{}, false
}

var spatialJoinFns = map[string]bool{
	"strdf:anyinteract": true,
	"strdf:intersects":  true,
	"strdf:contains":    true,
	"strdf:within":      true,
	"strdf:overlap":     true,
	"strdf:overlaps":    true,
	"strdf:touches":     true,
	"strdf:touch":       true,
	"strdf:equals":      true,
	"strdf:coveredby":   true,
	"strdf:covers":      true,
}

// spatialJoinReady reports whether a pending filter spatially joins
// variable v against a geometry computable from the already-bound
// variables — the static planning counterpart of findSpatialConstraint,
// used to order index-servable geometry patterns early.
func spatialJoinReady(filters []*FilterElement, applied map[*FilterElement]bool, v string, bound map[string]bool) bool {
	for _, f := range filters {
		if applied[f] {
			continue
		}
		if spatialJoinReadyExpr(f.Cond, v, bound) {
			return true
		}
	}
	return false
}

func spatialJoinReadyExpr(expr Expr, v string, bound map[string]bool) bool {
	switch n := expr.(type) {
	case *CallExpr:
		if spatialJoinFns[n.Name] && len(n.Args) == 2 {
			for i := 0; i < 2; i++ {
				ve, ok := n.Args[i].(*VarExpr)
				if !ok || ve.Name != v {
					continue
				}
				vars := map[string]bool{}
				exprVars(n.Args[1-i], vars)
				otherBound := true
				for name := range vars {
					if !bound[name] {
						otherBound = false
						break
					}
				}
				if otherBound {
					return true
				}
			}
		}
	case *BinaryExpr:
		if n.Op == "&&" {
			return spatialJoinReadyExpr(n.L, v, bound) || spatialJoinReadyExpr(n.R, v, bound)
		}
	}
	return false
}

func (e *Evaluator) findSpatialConstraint(expr Expr, v string, row Binding) (geom.Envelope, bool) {
	switch n := expr.(type) {
	case *CallExpr:
		if spatialJoinFns[n.Name] && len(n.Args) == 2 {
			for i := 0; i < 2; i++ {
				if ve, ok := n.Args[i].(*VarExpr); ok && ve.Name == v {
					other := e.evalExpr(n.Args[1-i], row)
					if other.Kind == VGeom {
						return other.Geom.Envelope(), true
					}
				}
			}
		}
	case *BinaryExpr:
		if n.Op == "&&" {
			if env, ok := e.findSpatialConstraint(n.L, v, row); ok {
				return env, true
			}
			return e.findSpatialConstraint(n.R, v, row)
		}
	}
	return geom.Envelope{}, false
}
