package stsparql

import (
	"fmt"
	"sort"

	"repro/internal/geom"
	"repro/internal/rdf"
)

// Source is the triple source queries run against.
type Source interface {
	// MatchTerms streams triples matching a pattern; zero Terms are
	// wildcards.
	MatchTerms(s, p, o rdf.Term, visit func(rdf.Triple) bool)
}

// UpdatableSource additionally supports mutation, required by
// DELETE/INSERT requests.
type UpdatableSource interface {
	Source
	Add(rdf.Triple) bool
	Remove(rdf.Triple) bool
}

// SpatialSource is an optional Source extension: a store that maintains a
// spatial index over strdf:hasGeometry objects can serve window queries,
// which the engine uses to prune spatial-join candidates.
type SpatialSource interface {
	Source
	// SpatialIndexEnabled reports whether the window path may be used.
	SpatialIndexEnabled() bool
	// MatchGeometryWindow streams (subject, hasGeometry-pred, geometry)
	// triples whose geometry envelope intersects env.
	MatchGeometryWindow(env geom.Envelope, visit func(rdf.Triple) bool)
}

// GeometryPredicates lists the predicate IRIs treated as geometry
// attachment points for index acceleration (the datasets use
// strdf:hasGeometry; the paper's queries also write noa:hasGeometry).
var GeometryPredicates = map[string]bool{
	"http://strdf.di.uoa.gr/ontology#hasGeometry":                     true,
	"http://teleios.di.uoa.gr/ontologies/noaOntology.owl#hasGeometry": true,
}

// Binding maps variable names to RDF terms.
type Binding map[string]rdf.Term

func (b Binding) clone() Binding {
	out := make(Binding, len(b)+2)
	for k, v := range b {
		out[k] = v
	}
	return out
}

// Clone returns an independent copy of the binding. Rows yielded by a
// Cursor are views into the engine's current batch and are only valid
// until the next call to Next (or Close); callers that retain a row
// beyond that must Clone it first.
func (b Binding) Clone() Binding { return b.clone() }

// Result is the outcome of a materialised SELECT evaluation.
type Result struct {
	Vars []string
	Rows []Binding
}

// Cursor is the pull side of a running query: Next yields solutions one
// at a time, terminating the underlying scans early when the consumer
// stops (LIMIT, ASK, an abandoned client). A cursor must be Closed —
// Close releases the scans still in flight and reports any evaluation
// error; callers embedding a cursor in a locked context (see
// strabon.Store.QueryStream) additionally hold their lock until Close.
// A cursor is single-goroutine, like the Evaluator that produced it.
type Cursor interface {
	// Vars is the result header: the projected variable list.
	Vars() []string
	// Next returns the next solution; ok=false once the result set is
	// exhausted or evaluation failed (check Err).
	Next() (Binding, bool)
	// Err reports the first evaluation error, if any.
	Err() error
	// Close terminates the evaluation, releasing scans in flight. It is
	// idempotent and returns Err().
	Close() error
}

// planCursor adapts an opened batch pipeline to the public Cursor API:
// Next is a thin row-view over the current batch. The yielded Binding is
// one reused map, refilled from the batch columns per row — valid only
// until the next call to Next (or Close); retainers must Clone it.
type planCursor struct {
	it     batchIter
	vars   []string
	cur    *Batch
	ord    int
	view   Binding
	err    error
	closed bool
}

func (c *planCursor) Vars() []string { return c.vars }

func (c *planCursor) Next() (Binding, bool) {
	if c.closed || c.err != nil {
		return nil, false
	}
	for c.cur == nil || c.ord >= c.cur.live() {
		b, err := c.it.next()
		if err != nil {
			c.err = err
			return nil, false
		}
		if b == nil {
			return nil, false
		}
		//lint:allow batchview cur is drained before the next pull invalidates it
		c.cur, c.ord = b, 0
	}
	i := c.cur.row(c.ord)
	c.ord++
	if c.view == nil {
		c.view = make(Binding, len(c.cur.schema.names))
	}
	clear(c.view)
	for col, name := range c.cur.schema.names {
		if id := c.cur.cols[col][i]; id != 0 {
			c.view[name] = c.cur.dict.decode(id)
		}
	}
	return c.view, true
}

func (c *planCursor) Err() error { return c.err }

func (c *planCursor) Close() error {
	if !c.closed {
		c.closed = true
		c.cur = nil
		c.it.close()
	}
	return c.err
}

// sliceCursor yields pre-computed owned rows; its rows are NOT
// invalidated by Next, unlike a streaming cursor's views.
type sliceCursor struct {
	vars []string
	rows []Binding
	pos  int
}

func (c *sliceCursor) Vars() []string { return c.vars }

func (c *sliceCursor) Next() (Binding, bool) {
	if c.pos >= len(c.rows) {
		return nil, false
	}
	row := c.rows[c.pos]
	c.pos++
	return row, true
}

func (c *sliceCursor) Err() error   { return nil }
func (c *sliceCursor) Close() error { return nil }

// MaterialisedCursor returns a Cursor over pre-computed rows. Used for
// results that are cheap to hold whole (ASK verdicts, test fixtures).
func MaterialisedCursor(vars []string, rows []Binding) Cursor {
	return &sliceCursor{vars: vars, rows: rows}
}

// UpdateStats reports the effect of an update request.
type UpdateStats struct {
	Matched  int // WHERE solutions
	Deleted  int // triples removed
	Inserted int // triples added
}

// Evaluator executes parsed queries against a source. Queries are
// compiled into a plan of physical operators (see plan.go and ops.go)
// and run through pull-based cursors. The evaluator and its cursors are
// not safe for concurrent use; create one per goroutine (the geometry
// cache may be shared through NewEvaluatorWithCache, and a Compiled
// plan may be run by several evaluators over the same unchanged
// source — see plancache.go).
type Evaluator struct {
	src   Source
	cache *geomCache

	// dict is this evaluation's term codec (see iddict.go): batches carry
	// IDs, and every encode/decode of the evaluation goes through it.
	dict *execDict
	// idsrc is non-nil when the source supports ID-native scans; set once
	// at construction so the scan hot path costs one nil check.
	idsrc IDSource

	// argScratch is the function-call argument stack of expression
	// evaluation: evalExpr frames append their argument Values and
	// truncate back on return, so per-row filter evaluation allocates
	// nothing once the slice has grown to the plan's deepest call.
	// applyFunction must not retain the slice it is handed.
	argScratch []Value

	// trace, when armed (SetTrace), collects per-operator actuals for
	// EXPLAIN ANALYZE. The disabled path costs one nil check per
	// operator at open time — nothing per row or batch.
	trace *ExecTrace
}

// NewEvaluator returns an evaluator over src.
func NewEvaluator(src Source) *Evaluator {
	e := &Evaluator{src: src, cache: newGeomCache()}
	e.initDict()
	return e
}

func (e *Evaluator) initDict() {
	e.dict = newExecDict(e.src)
	if is, ok := e.src.(IDSource); ok {
		e.idsrc = is
	}
}

// Run compiles a SELECT or ASK query and returns a streaming cursor
// over its solutions (an ASK yields one row binding "ask" to a boolean,
// computed at the first solution — it never enumerates the rest). The
// cursor must be Closed. Select and Ask are materialising wrappers over
// the same pipeline.
func (e *Evaluator) Run(q *Query) (Cursor, error) {
	c := e.Compile(q)
	switch {
	case c.IsSelect():
		return e.RunCompiled(c)
	case c.IsAsk():
		ok, err := e.AskCompiled(c)
		if err != nil {
			return nil, err
		}
		rows := []Binding{{"ask": rdf.NewBoolean(ok)}}
		return MaterialisedCursor([]string{"ask"}, rows), nil
	default:
		return nil, fmt.Errorf("stsparql: Run wants SELECT or ASK")
	}
}

// Select evaluates a SELECT query, materialising the full result.
func (e *Evaluator) Select(q *SelectQuery) (*Result, error) {
	return e.evalSelect(q, []Binding{{}})
}

// Ask evaluates an ASK query; the pull pipeline stops at the first
// live batch (whose first slab is batchSizeMin rows).
func (e *Evaluator) Ask(q *AskQuery) (bool, error) {
	plan := e.newPlanner().planGroupRoot(q.Where, false)
	it := plan.open(e, seedIter(e.dict, plan.schema, []Binding{{}}))
	defer it.close()
	b, err := nextLive(it)
	return b != nil, err
}

// evalSelect compiles and runs a SELECT.
func (e *Evaluator) evalSelect(q *SelectQuery, seed []Binding) (*Result, error) {
	return e.newPlanner().planSelect(q, false).run(e, seed)
}

// evalWhere compiles and runs an update's WHERE pattern. Update WHERE
// clauses are always fully drained — no LIMIT, no early exit — so their
// joins use buffered scans (streaming through a pull coroutine would
// cost switches without ever terminating early).
func (e *Evaluator) evalWhere(gp *GroupPattern) ([]Binding, error) {
	plan := e.newPlanner().planGroupRoot(gp, true)
	return plan.run(e, []Binding{{}})
}

// UpdatePlan is a computed but not yet applied DELETE/INSERT request: the
// WHERE solutions have been matched and both templates instantiated
// against the pre-update state. Splitting planning from application lets a
// store evaluate the (expensive, read-only) match phase under a shared
// read lock and serialise only the mutation.
type UpdatePlan struct {
	Matched int
	Deletes []rdf.Triple
	Inserts []rdf.Triple
}

// PlanUpdate evaluates an update's WHERE clause and instantiates its
// templates without mutating the source. The returned plan reflects the
// source state at planning time; callers that apply it later are
// responsible for ensuring no conflicting write lands in between (see
// strabon.UpdateScoped for the discipline used by the refinement loop).
func (e *Evaluator) PlanUpdate(q *UpdateQuery) (*UpdatePlan, error) {
	var solutions []Binding
	if q.Where != nil {
		rows, err := e.evalWhere(q.Where)
		if err != nil {
			return nil, err
		}
		solutions = rows
	} else {
		solutions = []Binding{{}}
	}
	plan := &UpdatePlan{Matched: len(solutions)}

	// SPARQL Update semantics: both template instantiations are computed
	// against the pre-update state, then deletes apply before inserts.
	seen := make(map[string]bool)
	for _, row := range solutions {
		for _, tpl := range q.Delete {
			if t, ok := instantiate(tpl, row); ok {
				if k := t.String(); !seen["D"+k] {
					seen["D"+k] = true
					plan.Deletes = append(plan.Deletes, t)
				}
			}
		}
		for _, tpl := range q.Insert {
			if t, ok := instantiate(tpl, row); ok {
				if k := t.String(); !seen["I"+k] {
					seen["I"+k] = true
					plan.Inserts = append(plan.Inserts, t)
				}
			}
		}
	}
	return plan, nil
}

// ApplyPlan applies a computed update plan to a source: deletes before
// inserts, per SPARQL Update semantics.
func ApplyPlan(up UpdatableSource, plan *UpdatePlan) UpdateStats {
	stats := UpdateStats{Matched: plan.Matched}
	for _, t := range plan.Deletes {
		if up.Remove(t) {
			stats.Deleted++
		}
	}
	for _, t := range plan.Inserts {
		if up.Add(t) {
			stats.Inserted++
		}
	}
	return stats
}

// Update executes a DELETE/INSERT request against an updatable source.
func (e *Evaluator) Update(q *UpdateQuery) (UpdateStats, error) {
	up, ok := e.src.(UpdatableSource)
	if !ok {
		return UpdateStats{}, fmt.Errorf("stsparql: source is not updatable")
	}
	plan, err := e.PlanUpdate(q)
	if err != nil {
		return UpdateStats{}, err
	}
	return ApplyPlan(up, plan), nil
}

func instantiate(tpl TriplePattern, row Binding) (rdf.Triple, bool) {
	resolve := func(tv TermOrVar) (rdf.Term, bool) {
		if !tv.IsVar() {
			return tv.Term, true
		}
		t, ok := row[tv.Var]
		return t, ok && !t.IsZero()
	}
	s, ok1 := resolve(tpl.S)
	p, ok2 := resolve(tpl.P)
	o, ok3 := resolve(tpl.O)
	if !ok1 || !ok2 || !ok3 || s.IsLiteral() || !p.IsIRI() {
		return rdf.Triple{}, false
	}
	return rdf.Triple{S: s, P: p, O: o}, true
}

// --- projection / modifier helpers (used by the tail operators) ---

func (b Binding) has(v string) bool {
	t, ok := b[v]
	return ok && !t.IsZero()
}

func projectionHasAggregates(q *SelectQuery) bool {
	for _, item := range q.Projection {
		if item.Expr != nil && containsAggregate(item.Expr) {
			return true
		}
	}
	return false
}

func (e *Evaluator) projectionVars(q *SelectQuery, rows []Binding) []string {
	if !q.Star {
		vars := make([]string, len(q.Projection))
		for i, item := range q.Projection {
			vars[i] = item.Var
		}
		return vars
	}
	set := make(map[string]bool)
	for _, row := range rows {
		for k := range row {
			set[k] = true
		}
	}
	vars := make([]string, 0, len(set))
	for k := range set {
		vars = append(vars, k)
	}
	sort.Strings(vars)
	return vars
}

// distinctRows deduplicates a materialised row slice over the given
// variables — the same reused-key-buffer encoding the streaming
// distinct operator (ops.go) applies row by row; kept as the reference
// implementation its micro-benchmarks pin.
func distinctRows(rows []Binding, vars []string) []Binding {
	seen := make(map[string]bool, len(rows))
	out := rows[:0]
	var key []byte
	for _, row := range rows {
		key = bindingKey(key[:0], row, vars)
		if !seen[string(key)] {
			seen[string(key)] = true
			out = append(out, row)
		}
	}
	return out
}

func (e *Evaluator) orderRows(rows []Binding, keys []OrderKey) {
	sort.SliceStable(rows, func(i, j int) bool {
		return e.compareOrderKeys(rows[i], rows[j], keys) < 0
	})
}

// compareOrderKeys compares two rows under the ORDER BY keys: negative
// when a sorts before b, zero when the keys tie (incomparable values
// tie, like orderRows always did).
func (e *Evaluator) compareOrderKeys(a, b Binding, keys []OrderKey) int {
	for _, k := range keys {
		va := e.evalExpr(k.Expr, mapRow(a))
		vb := e.evalExpr(k.Expr, mapRow(b))
		c, err := va.compare(vb)
		if err != nil || c == 0 {
			continue
		}
		if k.Desc {
			return -c
		}
		return c
	}
	return 0
}

// --- grouping & aggregates ---

// aggGroup is one group of the grouping phase: the key bindings visible
// in the output row and the group's member rows.
type aggGroup struct {
	key  Binding
	rows []Binding
}

func (e *Evaluator) aggregate(q *SelectQuery, rows []Binding) ([]Binding, error) {
	groups := make(map[string]*aggGroup)
	var order []string
	var kb []byte
	for _, row := range rows {
		kb = kb[:0]
		key := Binding{}
		for _, ge := range q.GroupBy {
			v := e.evalExpr(ge, mapRow(row))
			t, _ := v.asTerm()
			kb = appendTermKey(kb, t)
			kb = append(kb, '|')
			if ve, ok := ge.(*VarExpr); ok {
				key[ve.Name] = t
			}
		}
		k := string(kb)
		g, ok := groups[k]
		if !ok {
			g = &aggGroup{key: key}
			groups[k] = g
			order = append(order, k)
		}
		g.rows = append(g.rows, row)
	}
	// With no GROUP BY, all rows form one implicit group (even zero rows
	// for COUNT(*) = 0).
	if len(q.GroupBy) == 0 && len(groups) == 0 {
		groups[""] = &aggGroup{key: Binding{}}
		order = append(order, "")
	}
	return e.evalGroups(q, groups, order)
}

// aggregateBatches is the batch-drain grouping path used by the
// aggregate operator. When every GROUP BY key is a plain variable, rows
// group on fixed-width ID tuples straight off the batch columns — one
// 8-byte append per key, no term materialisation until a group's first
// row (its key bindings) and its member rows are recorded. Computed
// group keys fall back to the materialised term-key path.
func (e *Evaluator) aggregateBatches(q *SelectQuery, in batchIter) ([]Binding, error) {
	vars := make([]string, 0, len(q.GroupBy))
	simple := true
	for _, ge := range q.GroupBy {
		ve, ok := ge.(*VarExpr)
		if !ok {
			simple = false
			break
		}
		vars = append(vars, ve.Name)
	}
	if !simple {
		rows, err := drainMaterialise(in)
		if err != nil {
			return nil, err
		}
		return e.aggregate(q, rows)
	}
	groups := make(map[string]*aggGroup)
	var order []string
	var kb []byte
	for {
		b, err := in.next()
		if err != nil {
			return nil, err
		}
		if b == nil {
			break
		}
		for ord := 0; ord < b.live(); ord++ {
			i := b.row(ord)
			row := rowRef{b: b, i: i}
			kb = kb[:0]
			for _, v := range vars {
				kb = appendIDKey(kb, row.lookupID(v))
			}
			g, ok := groups[string(kb)]
			if !ok {
				key := Binding{}
				for _, v := range vars {
					t, _ := row.lookup(v)
					key[v] = t
				}
				g = &aggGroup{key: key}
				groups[string(kb)] = g
				order = append(order, string(kb))
			}
			g.rows = append(g.rows, b.binding(i))
		}
	}
	if len(q.GroupBy) == 0 && len(groups) == 0 {
		groups[""] = &aggGroup{key: Binding{}}
		order = append(order, "")
	}
	return e.evalGroups(q, groups, order)
}

// evalGroups applies HAVING and the aggregate projection to grouped
// rows, in group arrival order.
func (e *Evaluator) evalGroups(q *SelectQuery, groups map[string]*aggGroup, order []string) ([]Binding, error) {
	var out []Binding
	for _, k := range order {
		g := groups[k]
		row := Binding{}
		// Group keys are visible in the output row.
		for v, t := range g.key {
			row[v] = t
		}
		// Representative bindings for non-aggregate var references.
		var rep Binding
		if len(g.rows) > 0 {
			rep = g.rows[0]
		} else {
			rep = Binding{}
		}
		ok := true
		for _, h := range q.Having {
			v := e.evalAggExpr(h, g.rows, rep)
			pass, err := v.effectiveBool()
			if err != nil || !pass {
				ok = false
				break
			}
		}
		if !ok {
			continue
		}
		for _, item := range q.Projection {
			if item.Expr == nil {
				if t, bound := rep[item.Var]; bound {
					row[item.Var] = t
				}
				continue
			}
			v := e.evalAggExpr(item.Expr, g.rows, rep)
			if t, okT := v.asTerm(); okT {
				row[item.Var] = t
			}
		}
		out = append(out, row)
	}
	return out, nil
}

// evalAggExpr evaluates an expression in aggregate context: aggregate
// calls consume the group's rows, everything else evaluates against the
// representative binding.
func (e *Evaluator) evalAggExpr(expr Expr, rows []Binding, rep Binding) Value {
	switch v := expr.(type) {
	case *CallExpr:
		if v.isAggregate() {
			return e.evalAggregateCall(v, rows)
		}
		base := len(e.argScratch)
		for _, a := range v.Args {
			e.argScratch = append(e.argScratch, e.evalAggExpr(a, rows, rep))
		}
		res := e.applyFunction(v, e.argScratch[base:])
		e.argScratch = e.argScratch[:base]
		return res
	case *BinaryExpr:
		return e.applyBinary(v.Op,
			e.evalAggExpr(v.L, rows, rep),
			e.evalAggExpr(v.R, rows, rep))
	case *UnaryExpr:
		return e.applyUnary(v.Op, e.evalAggExpr(v.X, rows, rep))
	default:
		return e.evalExpr(expr, mapRow(rep))
	}
}

func (e *Evaluator) evalAggregateCall(c *CallExpr, rows []Binding) Value {
	collect := func() []Value {
		var vals []Value
		seen := make(map[string]bool)
		for _, row := range rows {
			if len(c.Args) == 0 {
				continue
			}
			v := e.evalExpr(c.Args[0], mapRow(row))
			if v.Kind == VUnbound || v.Kind == VErr {
				continue
			}
			if c.Distinct {
				t, _ := v.asTerm()
				k := t.String()
				if seen[k] {
					continue
				}
				seen[k] = true
			}
			vals = append(vals, v)
		}
		return vals
	}
	switch c.Name {
	case "count":
		if c.Star {
			if c.Distinct {
				return numValue(float64(len(distinctAll(rows))))
			}
			return numValue(float64(len(rows)))
		}
		return numValue(float64(len(collect())))
	case "#numcount":
		// Internal: the count of numeric values — AVG's denominator,
		// shipped as a partial by distributed aggregation.
		n := 0
		for _, v := range collect() {
			if v.Kind == VNum {
				n++
			}
		}
		return numValue(float64(n))
	case "sum", "avg":
		vals := collect()
		var sum float64
		n := 0
		for _, v := range vals {
			if v.Kind == VNum {
				sum += v.Num
				n++
			}
		}
		if c.Name == "avg" {
			if n == 0 {
				return numValue(0)
			}
			return numValue(sum / float64(n))
		}
		return numValue(sum)
	case "min", "max":
		vals := collect()
		if len(vals) == 0 {
			return unboundValue()
		}
		best := vals[0]
		for _, v := range vals[1:] {
			c2, err := v.compare(best)
			if err != nil {
				continue
			}
			if (c.Name == "min" && c2 < 0) || (c.Name == "max" && c2 > 0) {
				best = v
			}
		}
		return best
	case "sample":
		vals := collect()
		if len(vals) == 0 {
			return unboundValue()
		}
		return vals[0]
	case "strdf:union":
		vals := collect()
		var polys []geom.Polygon
		var rest geom.Collection
		for _, v := range vals {
			if v.Kind != VGeom {
				continue
			}
			_, _, ps := geomParts(v.Geom)
			if len(ps) > 0 {
				polys = append(polys, ps...)
			} else {
				rest = append(rest, v.Geom)
			}
		}
		u := geom.UnionAllPolygons(polys)
		if len(rest) == 0 {
			return geomValue(u)
		}
		return geomValue(append(rest, u))
	case "strdf:extent":
		vals := collect()
		env := geom.EmptyEnvelope()
		for _, v := range vals {
			if v.Kind == VGeom {
				env = env.Expand(v.Geom.Envelope())
			}
		}
		if env.IsEmpty() {
			return unboundValue()
		}
		return geomValue(env.ToPolygon())
	default:
		return errValue("stsparql: unknown aggregate %q", c.Name)
	}
}

// distinctAll deduplicates rows over every variable any row binds. The
// variable union is collected and sorted once, then each row's key is
// built into a reused buffer (missing variables encode distinctly from
// every bound term).
func distinctAll(rows []Binding) []Binding {
	varSet := make(map[string]bool)
	for _, row := range rows {
		for k := range row {
			varSet[k] = true
		}
	}
	vars := make([]string, 0, len(varSet))
	for k := range varSet {
		vars = append(vars, k)
	}
	sort.Strings(vars)

	seen := make(map[string]bool, len(rows))
	var out []Binding
	var key []byte
	for _, row := range rows {
		key = key[:0]
		for _, v := range vars {
			if t, ok := row[v]; ok {
				key = appendTermKey(key, t)
			}
			key = append(key, '|')
		}
		if !seen[string(key)] {
			seen[string(key)] = true
			out = append(out, row)
		}
	}
	return out
}

func geomParts(g geom.Geometry) ([]geom.Point, []geom.LineString, []geom.Polygon) {
	switch v := g.(type) {
	case geom.Point:
		return []geom.Point{v}, nil, nil
	case geom.MultiPoint:
		return v, nil, nil
	case geom.LineString:
		return nil, []geom.LineString{v}, nil
	case geom.MultiLineString:
		return nil, v, nil
	case geom.Polygon:
		return nil, nil, []geom.Polygon{v}
	case geom.MultiPolygon:
		return nil, nil, v
	case geom.Collection:
		var pts []geom.Point
		var ls []geom.LineString
		var ps []geom.Polygon
		for _, m := range v {
			p2, l2, g2 := geomParts(m)
			pts = append(pts, p2...)
			ls = append(ls, l2...)
			ps = append(ps, g2...)
		}
		return pts, ls, ps
	}
	return nil, nil, nil
}

// mergeCompatible merges two bindings, failing on conflicting values for
// a shared variable.
func mergeCompatible(a, b Binding) (Binding, bool) {
	out := a.clone()
	for k, v := range b {
		if existing, ok := out[k]; ok && !existing.IsZero() {
			if !existing.Equal(v) {
				return nil, false
			}
			continue
		}
		out[k] = v
	}
	return out, true
}

// usesBoundFn reports whether the expression calls bound(); such filters
// must wait for the end of the group (OPTIONAL may bind later).
func usesBoundFn(e Expr) bool {
	switch v := e.(type) {
	case *CallExpr:
		if v.Name == "bound" {
			return true
		}
		for _, a := range v.Args {
			if usesBoundFn(a) {
				return true
			}
		}
	case *BinaryExpr:
		return usesBoundFn(v.L) || usesBoundFn(v.R)
	case *UnaryExpr:
		return usesBoundFn(v.X)
	}
	return false
}
