package stsparql

import "repro/internal/rdf"

// Query is the root of a parsed stSPARQL request: exactly one of Select,
// Ask or Update is non-nil.
type Query struct {
	Select *SelectQuery
	Ask    *AskQuery
	Update *UpdateQuery
}

// SelectQuery is a SELECT with optional grouping, ordering and slicing.
type SelectQuery struct {
	Distinct   bool
	Star       bool
	Projection []SelectItem
	Where      *GroupPattern
	GroupBy    []Expr
	Having     []Expr
	OrderBy    []OrderKey
	Limit      int // -1 means unlimited
	Offset     int
}

// SelectItem is either a plain variable or "(expr AS ?var)".
type SelectItem struct {
	Var  string
	Expr Expr // nil for plain variables
}

// OrderKey is one ORDER BY criterion.
type OrderKey struct {
	Expr Expr
	Desc bool
}

// AskQuery tests for the existence of at least one solution.
type AskQuery struct {
	Where *GroupPattern
}

// UpdateQuery is a SPARQL-Update style DELETE/INSERT ... WHERE, or the
// data forms (INSERT DATA / DELETE DATA) when Where is nil.
type UpdateQuery struct {
	Delete []TriplePattern
	Insert []TriplePattern
	Where  *GroupPattern // nil for DATA forms
}

// TermOrVar is a triple-pattern component: either a constant term or a
// variable name.
type TermOrVar struct {
	Term rdf.Term
	Var  string // non-empty means variable
}

// IsVar reports whether the component is a variable.
func (t TermOrVar) IsVar() bool { return t.Var != "" }

// TriplePattern is a BGP triple with possibly-variable components.
type TriplePattern struct {
	S, P, O TermOrVar
}

// PatternElement is one element of a group graph pattern.
type PatternElement interface{ patternElement() }

// GroupPattern is "{ ... }": a sequence of elements with SPARQL's
// bottom-up semantics (BGPs joined, OPTIONAL left-joined, FILTERs applied
// over the group).
type GroupPattern struct {
	Elements []PatternElement
}

func (*GroupPattern) patternElement() {}

// BGPElement is a run of triple patterns.
type BGPElement struct {
	Patterns []TriplePattern
}

func (*BGPElement) patternElement() {}

// FilterElement is a FILTER constraint.
type FilterElement struct {
	Cond Expr
}

func (*FilterElement) patternElement() {}

// OptionalElement is an OPTIONAL group (left join).
type OptionalElement struct {
	Pattern *GroupPattern
}

func (*OptionalElement) patternElement() {}

// UnionElement is "{A} UNION {B} UNION ...".
type UnionElement struct {
	Branches []*GroupPattern
}

func (*UnionElement) patternElement() {}

// SubSelectElement is a nested SELECT inside a WHERE clause.
type SubSelectElement struct {
	Select *SelectQuery
}

func (*SubSelectElement) patternElement() {}

// Expr is an expression tree node.
type Expr interface{ exprNode() }

// VarExpr references a binding.
type VarExpr struct{ Name string }

func (*VarExpr) exprNode() {}

// ConstExpr holds a constant term (literal or IRI).
type ConstExpr struct{ Term rdf.Term }

func (*ConstExpr) exprNode() {}

// BinaryExpr applies an operator: || && = != < <= > >= + - * /.
type BinaryExpr struct {
	Op   string
	L, R Expr
}

func (*BinaryExpr) exprNode() {}

// UnaryExpr applies ! or unary minus.
type UnaryExpr struct {
	Op string
	X  Expr
}

func (*UnaryExpr) exprNode() {}

// CallExpr invokes a builtin or strdf: extension function. Distinct is
// used by aggregate calls (COUNT(DISTINCT ?x)).
type CallExpr struct {
	Name     string // lower-cased local name, e.g. "bound", "strdf:anyinteract"
	Args     []Expr
	Distinct bool
	Star     bool // COUNT(*)
}

func (*CallExpr) exprNode() {}

// aggregate names recognised in grouped queries.
var aggregateNames = map[string]bool{
	"count":        true,
	"sum":          true,
	"avg":          true,
	"min":          true,
	"max":          true,
	"sample":       true,
	"strdf:union":  true,
	"strdf:extent": true,
	// #numcount counts numeric values only — AVG's true denominator,
	// used by distributed partial aggregation (distrib.go). The '#'
	// makes it unreachable from query text (comment character).
	"#numcount": true,
}

// isAggregate reports whether the call is an aggregate function
// application.
func (c *CallExpr) isAggregate() bool { return aggregateNames[c.Name] }

// containsAggregate walks an expression tree for aggregate calls.
func containsAggregate(e Expr) bool {
	switch v := e.(type) {
	case *CallExpr:
		if v.isAggregate() {
			return true
		}
		for _, a := range v.Args {
			if containsAggregate(a) {
				return true
			}
		}
	case *BinaryExpr:
		return containsAggregate(v.L) || containsAggregate(v.R)
	case *UnaryExpr:
		return containsAggregate(v.X)
	}
	return false
}

// exprVars collects the variables referenced by an expression.
func exprVars(e Expr, out map[string]bool) {
	switch v := e.(type) {
	case *VarExpr:
		out[v.Name] = true
	case *BinaryExpr:
		exprVars(v.L, out)
		exprVars(v.R, out)
	case *UnaryExpr:
		exprVars(v.X, out)
	case *CallExpr:
		for _, a := range v.Args {
			exprVars(a, out)
		}
	}
}
