// Package stsparql implements the stSPARQL query and update language of
// Strabon (Kyzirakos et al., ISWC 2012): SPARQL 1.1 SELECT / ASK /
// DELETE-INSERT-WHERE over RDF with the strdf:* spatial filter functions,
// spatial aggregates, grouping, ordering and sub-selects — the exact
// dialect the paper's refinement queries (Section 3.2.4) are written in.
package stsparql

import (
	"fmt"
	"strings"
	"sync"
	"time"

	"repro/internal/geom"
	"repro/internal/rdf"
)

// ValueKind tags the runtime type of an expression value.
type ValueKind int

// Expression value kinds.
const (
	VErr ValueKind = iota
	VBool
	VNum
	VStr
	VTime
	VGeom
	VTerm // IRI or blank node
	VUnbound
)

// Value is the result of evaluating an expression. Values carry the
// original RDF term when they were derived from one, so projection can
// round-trip bindings losslessly.
type Value struct {
	Kind ValueKind
	Bool bool
	Num  float64
	Str  string
	Time time.Time
	Geom geom.Geometry
	Term rdf.Term
	err  error
}

func errValue(format string, args ...any) Value {
	return Value{Kind: VErr, err: fmt.Errorf(format, args...)}
}

func unboundValue() Value { return Value{Kind: VUnbound} }

func boolValue(b bool) Value { return Value{Kind: VBool, Bool: b} }

func numValue(f float64) Value { return Value{Kind: VNum, Num: f} }

func strValue(s string) Value { return Value{Kind: VStr, Str: s} }

func geomValue(g geom.Geometry) Value { return Value{Kind: VGeom, Geom: g} }

// Err returns the error carried by a VErr value.
func (v Value) Err() error { return v.err }

// termToValue converts an RDF term into an expression value, parsing
// typed literals into their native representation.
func termToValue(t rdf.Term, cache *geomCache) Value {
	if t.IsZero() {
		return unboundValue()
	}
	switch t.Kind {
	case rdf.TermIRI, rdf.TermBlank:
		return Value{Kind: VTerm, Term: t}
	default:
		switch t.Datatype {
		case rdf.XSDInteger, rdf.XSDFloat, rdf.XSDDouble:
			if f, ok := t.Float(); ok {
				return Value{Kind: VNum, Num: f, Term: t}
			}
			return errValue("stsparql: malformed numeric literal %q", t.Value)
		case rdf.XSDBoolean:
			if b, ok := t.Bool(); ok {
				return Value{Kind: VBool, Bool: b, Term: t}
			}
			return errValue("stsparql: malformed boolean literal %q", t.Value)
		case rdf.XSDDateTime:
			if tm, ok := parseDateTime(t.Value); ok {
				return Value{Kind: VTime, Time: tm, Term: t}
			}
			return errValue("stsparql: malformed dateTime literal %q", t.Value)
		case rdf.StRDFGeometry, rdf.StRDFWKT:
			g, err := cache.parse(t.Value)
			if err != nil {
				return errValue("stsparql: %v", err)
			}
			return Value{Kind: VGeom, Geom: g, Term: t}
		default:
			return Value{Kind: VStr, Str: t.Value, Term: t}
		}
	}
}

// parseDateTime accepts the ISO forms appearing in the datasets. The
// layout is dispatched on the literal's length first: this runs per row
// under filter evaluation, and every failed time.Parse attempt
// allocates its error.
func parseDateTime(s string) (time.Time, bool) {
	var layout string
	switch len(s) {
	case len("2006-01-02"):
		layout = "2006-01-02"
	case len("2006-01-02T15:04"):
		layout = "2006-01-02T15:04"
	case len("2006-01-02T15:04:05"):
		layout = "2006-01-02T15:04:05"
	default:
		layout = time.RFC3339 // zoned forms
	}
	t, err := time.Parse(layout, s)
	return t, err == nil
}

// asTerm converts a value back to an RDF term for projection or template
// instantiation.
func (v Value) asTerm() (rdf.Term, bool) {
	if !v.Term.IsZero() {
		return v.Term, true
	}
	switch v.Kind {
	case VBool:
		return rdf.NewBoolean(v.Bool), true
	case VNum:
		return rdf.NewFloat(v.Num), true
	case VStr:
		return rdf.NewLiteral(v.Str), true
	case VTime:
		return rdf.NewDateTime(v.Time.Format("2006-01-02T15:04:05")), true
	case VGeom:
		return rdf.NewGeometry(geom.WKT(v.Geom)), true
	case VTerm:
		return v.Term, true
	default:
		return rdf.Term{}, false
	}
}

// effectiveBool implements SPARQL's effective boolean value rules.
func (v Value) effectiveBool() (bool, error) {
	switch v.Kind {
	case VBool:
		return v.Bool, nil
	case VNum:
		return v.Num != 0, nil
	case VStr:
		return v.Str != "", nil
	case VErr:
		return false, v.err
	case VUnbound:
		return false, fmt.Errorf("stsparql: unbound value has no boolean")
	default:
		return false, fmt.Errorf("stsparql: value kind %d has no effective boolean", v.Kind)
	}
}

// compare returns -1/0/1 for ordered values, or an error for incomparable
// kinds. SPARQL's operator mapping: numbers by value, strings
// lexicographically, dateTimes chronologically, other terms by string form.
func (v Value) compare(o Value) (int, error) {
	if v.Kind == VErr {
		return 0, v.err
	}
	if o.Kind == VErr {
		return 0, o.err
	}
	if v.Kind == VUnbound || o.Kind == VUnbound {
		return 0, fmt.Errorf("stsparql: comparison with unbound value")
	}
	switch {
	case v.Kind == VNum && o.Kind == VNum:
		switch {
		case v.Num < o.Num:
			return -1, nil
		case v.Num > o.Num:
			return 1, nil
		default:
			return 0, nil
		}
	case v.Kind == VTime && o.Kind == VTime:
		switch {
		case v.Time.Before(o.Time):
			return -1, nil
		case v.Time.After(o.Time):
			return 1, nil
		default:
			return 0, nil
		}
	case v.Kind == VStr && o.Kind == VStr:
		return strings.Compare(v.Str, o.Str), nil
	case v.Kind == VStr && o.Kind == VTime:
		// The paper compares str(?hAcqTime) against plain strings; also
		// allow the symmetric direct comparison of a dateTime with an ISO
		// string, which Strabon accepts.
		if t, ok := parseDateTime(v.Str); ok {
			return Value{Kind: VTime, Time: t}.compare(o)
		}
		return 0, fmt.Errorf("stsparql: cannot compare %q with dateTime", v.Str)
	case v.Kind == VTime && o.Kind == VStr:
		c, err := o.compare(v)
		return -c, err
	case v.Kind == VBool && o.Kind == VBool:
		switch {
		case !v.Bool && o.Bool:
			return -1, nil
		case v.Bool && !o.Bool:
			return 1, nil
		default:
			return 0, nil
		}
	case v.Kind == VTerm && o.Kind == VTerm:
		return strings.Compare(v.Term.String(), o.Term.String()), nil
	default:
		return 0, fmt.Errorf("stsparql: incomparable value kinds %d and %d", v.Kind, o.Kind)
	}
}

// equalValue implements "=" with term-equality fallbacks.
func (v Value) equalValue(o Value) (bool, error) {
	if v.Kind == VGeom && o.Kind == VGeom {
		return geom.Equals(v.Geom, o.Geom), nil
	}
	if v.Kind == VTerm || o.Kind == VTerm {
		t1, ok1 := v.asTerm()
		t2, ok2 := o.asTerm()
		if !ok1 || !ok2 {
			return false, fmt.Errorf("stsparql: cannot compare terms")
		}
		return t1.Equal(t2), nil
	}
	c, err := v.compare(o)
	if err != nil {
		return false, err
	}
	return c == 0, nil
}

// geomCache caches parsed WKT so repeated spatial joins do not re-parse
// the same coastline literal thousands of times. It also caches computed
// envelopes for index pre-filtering. The cache is safe for concurrent use:
// a store may run several read-locked evaluations at once, all sharing one
// cache (see strabon's locking discipline).
type geomCache struct {
	mu    sync.RWMutex
	geoms map[string]geom.Geometry
}

func newGeomCache() *geomCache {
	return &geomCache{geoms: make(map[string]geom.Geometry)}
}

func (c *geomCache) parse(wkt string) (geom.Geometry, error) {
	c.mu.RLock()
	g, ok := c.geoms[wkt]
	c.mu.RUnlock()
	if ok {
		return g, nil
	}
	g, err := geom.ParseWKT(wkt)
	if err != nil {
		return nil, err
	}
	//lint:allow lockdiscipline fill-on-miss on the shared geometry cache's own mutex, not a store lock; held only for one map insert
	c.mu.Lock()
	c.geoms[wkt] = g
	c.mu.Unlock()
	return g, nil
}
