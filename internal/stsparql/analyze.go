package stsparql

import (
	"fmt"
	"strings"
	"sync/atomic"
	"time"
)

// EXPLAIN ANALYZE support: an ExecTrace collects per-operator actuals
// (rows out, batches, cumulative wall time, open count) while a plan
// runs, and renders the plan tree annotated with them next to the
// optimizer's estimates.
//
// Plans are immutable and shared (plan cache, concurrent runs), so the
// trace never touches the operators themselves: it is keyed by operator
// identity and armed on one Evaluator. The wrap happens once per
// operator at open time — a single nil check on the disabled path, so
// an untraced evaluation pays nothing per row or batch. A traced
// iterator's time is inclusive: it covers the operator and everything
// upstream of it, like PostgreSQL's actual time.

// OpStats accumulates one operator's actuals. Counters are atomic:
// fan-out sub-plans re-opened per probe row (OPTIONAL, UNION) and
// sub-selects shared across shard workers all add into the same entry.
type OpStats struct {
	Rows    atomic.Int64 // live rows emitted
	Batches atomic.Int64 // batches emitted
	Opens   atomic.Int64 // times the operator was opened
	Nanos   atomic.Int64 // cumulative wall time in next(), inclusive of upstream
}

// ExecTrace maps a compiled plan's operators to their runtime actuals.
// Build it with NewExecTrace, arm it with Evaluator.SetTrace, run the
// plan, then Render the annotated tree. One trace may be armed on
// several evaluators at once (shard fan-out workers); the counters are
// atomic.
type ExecTrace struct {
	stats map[operator]*OpStats
}

// NewExecTrace registers every operator of a compiled SELECT or ASK
// plan. The map is complete before any evaluation starts and is never
// mutated afterwards, so traced iterators read it without locks.
func NewExecTrace(c *Compiled) *ExecTrace {
	t := &ExecTrace{stats: make(map[operator]*OpStats)}
	switch {
	case c.sel != nil:
		t.registerSelect(c.sel)
	case c.ask != nil:
		t.registerGroup(c.ask)
	}
	return t
}

func (t *ExecTrace) registerSelect(p *selectPlan) {
	t.registerGroup(p.where)
	for _, op := range p.tail {
		t.registerOp(op)
	}
}

func (t *ExecTrace) registerGroup(g *groupPlan) {
	for _, op := range g.ops {
		t.registerOp(op)
	}
}

func (t *ExecTrace) registerOp(op operator) {
	if _, ok := t.stats[op]; ok {
		return
	}
	t.stats[op] = &OpStats{}
	switch v := op.(type) {
	case *optionalOp:
		t.registerGroup(v.sub)
	case *unionOp:
		for _, br := range v.branches {
			t.registerGroup(br)
		}
	case *nestedGroupOp:
		t.registerGroup(v.sub)
	case *subSelectOp:
		t.registerSelect(v.sub)
	}
}

// wrap interposes a traced iterator over one operator's output. Called
// from the open paths only when a trace is armed.
func (t *ExecTrace) wrap(op operator, in batchIter) batchIter {
	st, ok := t.stats[op]
	if !ok {
		// An operator outside the registered plan (defensive; should not
		// happen — traces are built from the Compiled being run).
		return in
	}
	st.Opens.Add(1)
	return &tracedIter{st: st, in: in}
}

type tracedIter struct {
	st *OpStats
	in batchIter
}

func (it *tracedIter) next() (*Batch, error) {
	start := time.Now()
	b, err := it.in.next()
	it.st.Nanos.Add(int64(time.Since(start)))
	if b != nil {
		it.st.Batches.Add(1)
		it.st.Rows.Add(int64(b.live()))
	}
	return b, err
}

func (it *tracedIter) close() { it.in.close() }

// SetTrace arms t on this evaluator: plans opened through it wrap every
// operator with actuals collection. nil disarms. The evaluator's usual
// single-goroutine contract stands; one trace may be shared by several
// evaluators.
func (e *Evaluator) SetTrace(t *ExecTrace) { e.trace = t }

// Render walks the compiled plan in Explain order and prints each
// operator's line annotated with its actuals:
//
//	join[bind] {?h a noa:Hotspot} est=1000 (actual rows=9731 batches=12 time=1.2ms)
//
// rows/batches are the operator's output; time is inclusive of
// everything upstream; opens>1 marks per-probe-row re-opened sub-plans
// (OPTIONAL/UNION branches), where the figures are cumulative across
// re-openings. Operators the evaluation never opened are annotated
// "(never executed)".
func (t *ExecTrace) Render(c *Compiled) string {
	var b strings.Builder
	switch {
	case c.sel != nil:
		t.renderGroup(&b, c.sel.where, "  ")
		for _, op := range c.sel.tail {
			t.renderOp(&b, op, "  ")
		}
	case c.ask != nil:
		t.renderGroup(&b, c.ask, "  ")
	}
	return b.String()
}

func (t *ExecTrace) renderGroup(b *strings.Builder, g *groupPlan, indent string) {
	for _, op := range g.ops {
		t.renderOp(b, op, indent)
	}
}

func (t *ExecTrace) renderOp(b *strings.Builder, op operator, indent string) {
	b.WriteString(indent)
	b.WriteString(opLabel(op))
	t.annotate(b, op)
	b.WriteByte('\n')
	sub := indent + "  "
	switch v := op.(type) {
	case *optionalOp:
		t.renderGroup(b, v.sub, sub)
	case *unionOp:
		for _, br := range v.branches {
			fmt.Fprintf(b, "%s branch\n", indent)
			t.renderGroup(b, br, sub)
		}
	case *nestedGroupOp:
		t.renderGroup(b, v.sub, sub)
	case *subSelectOp:
		t.renderGroup(b, v.sub.where, sub)
		for _, tailOp := range v.sub.tail {
			t.renderOp(b, tailOp, sub)
		}
	}
}

func (t *ExecTrace) annotate(b *strings.Builder, op operator) {
	st, ok := t.stats[op]
	if !ok {
		return
	}
	if st.Opens.Load() == 0 {
		b.WriteString(" (never executed)")
		return
	}
	fmt.Fprintf(b, " (actual rows=%d batches=%d time=%v",
		st.Rows.Load(), st.Batches.Load(), time.Duration(st.Nanos.Load()).Round(time.Microsecond))
	if n := st.Opens.Load(); n > 1 {
		fmt.Fprintf(b, " opens=%d", n)
	}
	b.WriteString(")")
}

// opLabel is the operator's own Explain line — the first line of its
// explain output (sub-plan operators print their header first and then
// recurse, so the first line is always the operator itself).
func opLabel(op operator) string {
	var tmp strings.Builder
	op.explain(&tmp, "")
	s := tmp.String()
	if i := strings.IndexByte(s, '\n'); i >= 0 {
		s = s[:i]
	}
	return s
}
