// Package a is the batchview fixture: *Batch views from an iterator's
// next are owned by the producer, reused on the next pull, and must be
// cloneBatch-ed before retention.
package a

type Batch struct {
	cols [][]uint64
	n    int
}

func cloneBatch(src *Batch) *Batch {
	out := &Batch{cols: make([][]uint64, len(src.cols)), n: src.n}
	for i, c := range src.cols {
		out.cols[i] = append([]uint64(nil), c...)
	}
	return out
}

type iter struct{}

func (it *iter) next() (*Batch, error) { return nil, nil }

// nextLive mirrors the engine helper: it forwards the producer's view.
func nextLive(in *iter) (*Batch, error) { return in.next() }

type sink struct {
	pending []*Batch
	cur     *Batch
	byKey   map[string]*Batch
}

func retainAppend(it *iter, s *sink) {
	for {
		b, err := it.next()
		if err != nil || b == nil {
			return
		}
		s.pending = append(s.pending, b) // bad: view appended without cloneBatch
	}
}

func retainField(it *iter, s *sink) {
	b, _ := it.next()
	s.cur = b // bad: view stored into a field
}

func retainMap(it *iter, s *sink) {
	b, _ := it.next()
	s.byKey["k"] = b // bad: view stored into a map
}

func retainChan(it *iter, ch chan *Batch) {
	b, _ := it.next()
	ch <- b // bad: view crosses a channel
}

func retainComposite(it *iter) *sink {
	b, _ := it.next()
	return &sink{cur: b} // bad: view captured in a literal
}

func retainFromHelper(it *iter, s *sink) {
	b, _ := nextLive(it)
	s.cur = b // bad: nextLive forwards the producer's view
}

func clonedAppend(it *iter, s *sink) {
	b, _ := it.next()
	s.pending = append(s.pending, cloneBatch(b)) // ok: cloned out
}

func clonedField(it *iter, s *sink) {
	b, _ := it.next()
	s.cur = cloneBatch(b) // ok
}

func consumed(it *iter, emit func(int)) {
	b, _ := it.next()
	for i := 0; i < b.n; i++ {
		emit(i) // ok: immediate consumption, no retention
	}
}

func forwarded(it *iter) (*Batch, error) {
	return it.next() // ok: ownership forwards with the pull
}

type rowRef struct {
	b *Batch
	i int
}

func addressed(it *iter, eval func(rowRef)) {
	b, _ := it.next()
	eval(rowRef{b: b, i: 0}) // ok: transient row view, consumed within the pull
}

func allowedRetain(it *iter, s *sink) {
	b, _ := it.next()
	//lint:allow batchview fixture pins the suppression pragma
	s.cur = b
}
