// Package a is the lockdiscipline fixture: reader entry points
// (QueryStream, QueryStreamCtx, Explain) must not reach a write-lock
// acquisition through any call chain.
package a

import (
	"sync"

	"member"
)

type Store struct {
	mu      sync.RWMutex
	writeMu sync.Mutex
	m       *member.Store
}

// QueryStream is a reader entry; badHelper reaches an RWMutex write
// Lock one hop down.
func (s *Store) QueryStream() {
	s.goodPath()
	s.badHelper()
	s.allowedHelper()
}

func (s *Store) badHelper() {
	s.mu.Lock() // bad: write lock on the reader path
	s.mu.Unlock()
}

// QueryStreamCtx reaches the writer mutex through two hops.
func (s *Store) QueryStreamCtx() { s.hop1() }
func (s *Store) hop1()           { s.hop2() }
func (s *Store) hop2() {
	s.writeMu.Lock() // bad: writer mutex two hops from a reader entry
	s.writeMu.Unlock()
}

// Explain takes a member-store write lock directly.
func (s *Store) Explain() {
	s.m.Lock() // bad: member write lock from a reader entry
	s.m.Unlock()
}

// Update is a writer, not a reader entry: write locks are fine here.
func (s *Store) Update() {
	s.mu.Lock()
	s.mu.Unlock()
	s.lockAllWrite()
}

func (s *Store) lockAllWrite() {
	s.m.Lock()
	s.m.Unlock()
}

// goodPath only ever takes read locks.
func (s *Store) goodPath() {
	s.mu.RLock()
	s.mu.RUnlock()
	s.m.RLock()
	s.m.RUnlock()
}

func (s *Store) allowedHelper() {
	//lint:allow lockdiscipline fixture pins the suppression pragma
	s.mu.Lock()
	s.mu.Unlock()
}

// source hides the lock acquisition behind an interface: the walk
// must fan out to every implementation.
type source interface{ Acquire() }

type IfaceStore struct{ src source }

func (is *IfaceStore) QueryStream() { is.src.Acquire() }

type impl struct{ mu sync.RWMutex }

func (i *impl) Acquire() {
	i.mu.Lock() // bad: reached through interface dispatch
	i.mu.Unlock()
}
