// Package member stands in for a per-range member store: its Lock is
// the write lock that reader paths must never reach.
package member

type Store struct{}

func (s *Store) Lock()    {}
func (s *Store) Unlock()  {}
func (s *Store) RLock()   {}
func (s *Store) RUnlock() {}
