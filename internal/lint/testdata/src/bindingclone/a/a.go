// Package a is the bindingclone fixture: row views from Cursor.Next
// are reused on the next pull and must be Cloned before retention.
package a

type Term struct{ V string }

type Binding map[string]Term

func (b Binding) Clone() Binding {
	out := make(Binding, len(b))
	for k, v := range b {
		out[k] = v
	}
	return out
}

type Cursor struct{}

func (c *Cursor) Next() (Binding, bool) { return nil, false }

type sink struct {
	rows []Binding
	last Binding
	byID map[string]Binding
}

func retainAppend(c *Cursor, s *sink) {
	for {
		row, ok := c.Next()
		if !ok {
			return
		}
		s.rows = append(s.rows, row) // bad: view appended without Clone
	}
}

func retainField(c *Cursor, s *sink) {
	row, ok := c.Next()
	if ok {
		s.last = row // bad: view stored into a field
	}
}

func retainMap(c *Cursor, s *sink) {
	row, _ := c.Next()
	s.byID["k"] = row // bad: view stored into a map
}

func retainChan(c *Cursor, ch chan Binding) {
	row, _ := c.Next()
	ch <- row // bad: view crosses a channel
}

func retainComposite(c *Cursor) *sink {
	row, _ := c.Next()
	return &sink{last: row} // bad: view captured in a literal
}

func clonedAppend(c *Cursor, s *sink) {
	row, ok := c.Next()
	if ok {
		s.rows = append(s.rows, row.Clone()) // ok: cloned out
	}
}

func clonedField(c *Cursor, s *sink) {
	row, _ := c.Next()
	s.last = row.Clone() // ok
}

func consumed(c *Cursor, emit func(Binding)) {
	row, ok := c.Next()
	if ok {
		emit(row) // ok: immediate consumption, no retention
	}
}

func allowedRetain(c *Cursor, s *sink) {
	row, _ := c.Next()
	//lint:allow bindingclone fixture pins the suppression pragma
	s.last = row
}
