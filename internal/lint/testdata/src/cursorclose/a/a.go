// Package a is the cursorclose fixture: lock-holding cursor producers
// whose results must be Closed, returned, or handed to an owner.
package a

import "context"

type Cursor struct{}

func (c *Cursor) Next() (int, bool) { return 0, false }
func (c *Cursor) Close() error      { return nil }

type Store struct{}

func (s *Store) QueryStream(src string) (*Cursor, error) { return &Cursor{}, nil }
func (s *Store) QueryStreamCtx(ctx context.Context, src string) (*Cursor, error) {
	return &Cursor{}, nil
}

type Evaluator struct{}

func (e *Evaluator) Run(q string) (*Cursor, error)         { return &Cursor{}, nil }
func (e *Evaluator) RunCompiled(q string) (*Cursor, error) { return &Cursor{}, nil }

type holder struct{ cur *Cursor }

func leak(s *Store) {
	cur, err := s.QueryStream("q") // leak: never closed
	if err != nil {
		return
	}
	_ = cur
}

func discarded(s *Store) {
	s.QueryStream("q") // leak: result discarded
}

func blankAssigned(s *Store) {
	_, _ = s.QueryStream("q") // leak: blank identifier
}

func evaluatorLeak(e *Evaluator) {
	cur, _ := e.Run("q") // leak
	_ = cur
}

func runCompiledLeak(e *Evaluator) {
	cur, _ := e.RunCompiled("q") // leak
	_ = cur
}

func ctxLeak(s *Store) {
	cur, _ := s.QueryStreamCtx(context.Background(), "q") // leak
	_ = cur
}

func closedDirect(s *Store) error {
	cur, err := s.QueryStream("q") // ok: closed below
	if err != nil {
		return err
	}
	for _, ok := cur.Next(); ok; _, ok = cur.Next() {
	}
	return cur.Close()
}

func closedDeferred(s *Store) error {
	cur, err := s.QueryStreamCtx(context.Background(), "q") // ok: deferred Close
	if err != nil {
		return err
	}
	defer cur.Close()
	return nil
}

func returned(s *Store) (*Cursor, error) {
	return s.QueryStream("q") // ok: ownership moves to the caller
}

func escapesField(s *Store, h *holder) {
	cur, _ := s.QueryStream("q") // ok: stored into an owner
	h.cur = cur
}

func escapesWrap(s *Store) *holder {
	cur, _ := s.QueryStream("q") // ok: wrapped into an owning value
	return &holder{cur: cur}
}

func handOff(s *Store, own func(*Cursor)) {
	cur, _ := s.QueryStream("q") // ok: passed to an owner
	own(cur)
}

func allowed(s *Store) {
	//lint:allow cursorclose fixture pins the suppression pragma
	cur, _ := s.QueryStream("q")
	_ = cur
}
