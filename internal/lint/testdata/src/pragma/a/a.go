// Package a is the pragma fixture: malformed or unknown //lint:allow
// pragmas are themselves diagnostics, so typos cannot silently
// disable an analyzer.
package a

//lint:allow cursorclose
func malformed() {}

//lint:allow nosuchanalyzer reason text here
func unknown() {}

//lint:allow cursorclose a well-formed pragma is fine even with nothing to suppress
func wellFormed() {}
