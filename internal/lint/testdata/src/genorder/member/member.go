// Package member stands in for a member store whose mutators bump the
// shard generation vector.
package member

type Store struct{}

func (s *Store) Add(x string) bool          { return true }
func (s *Store) Remove(x string) bool       { return true }
func (s *Store) InsertAll(xs ...string) int { return 0 }
