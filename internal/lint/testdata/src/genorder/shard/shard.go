// Package shard mirrors the real shard store's write-path shape: in
// any function that registers routing knowledge via track, no
// generation bump (member-store mutation or gen counter Add) may
// appear lexically before the track call.
package shard

import (
	"sync/atomic"

	"member"
)

type Store struct {
	m       *member.Store
	gen     atomic.Uint64
	knowGen atomic.Uint64
}

func (s *Store) track(groups []string) {
	s.knowGen.Add(1) // ok: track itself is exempt
}

func (s *Store) goodInsert(groups []string) {
	s.track(groups)
	s.m.InsertAll(groups...) // ok: after track
}

func (s *Store) badInsert(groups []string) {
	s.m.InsertAll(groups...) // bad: mutation before track
	s.track(groups)
}

func (s *Store) badRemove(groups []string) {
	s.m.Remove(groups[0]) // bad
	s.m.Add(groups[0])    // bad
	s.track(groups)
}

func (s *Store) badGenBump(groups []string) {
	s.gen.Add(1) // bad: gen counter bumped before track
	s.track(groups)
}

func (s *Store) helperNoTrack(groups []string) {
	s.m.Add(groups[0]) // ok: no track call in this function
}

func (s *Store) allowedOrder(groups []string) {
	//lint:allow genorder fixture pins the suppression pragma
	s.m.Add(groups[0])
	s.track(groups)
}
