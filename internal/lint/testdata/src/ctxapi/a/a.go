// Package a is the ctxapi fixture's caller side: legacy materialising
// method calls are banned; the blessed wrappers and unrelated Query
// methods pass.
package a

import (
	"context"

	"strabon"
)

func bad(s *strabon.Store) {
	s.Query("q") // bad: legacy method call
}

func badTimed(s *strabon.Store) {
	s.TimedQuery("q") // bad
}

func badIface(api strabon.API) {
	api.Query("q") // bad: the interface method is the same surface
}

func good(s *strabon.Store) {
	strabon.MaterialiseQuery(context.Background(), s, "q") // ok: blessed wrapper
	strabon.TimedQuery(s, "q")                             // ok
}

type urlValues struct{}

func (urlValues) Query() string { return "" }

func unrelated(v urlValues) {
	v.Query() // ok: not a store-package method
}

func allowed(s *strabon.Store) {
	//lint:allow ctxapi fixture pins the suppression pragma
	s.Query("q")
}
