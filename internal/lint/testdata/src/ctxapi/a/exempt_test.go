package a

import "strabon"

// Test files are exempt from ctxapi: the materialising compat methods
// exist exactly for test convenience.
func exemptInTests(s *strabon.Store) {
	s.Query("q") // ok: _test.go file
}
