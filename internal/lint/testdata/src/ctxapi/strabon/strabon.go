// Package strabon mimics the real store surface for the ctxapi
// fixture: legacy materialising methods, the canonical streaming
// entrypoint, and the two blessed package-level wrappers.
package strabon

import "context"

type Result struct{}

type Cursor struct{}

func (c *Cursor) Close() error { return nil }

type Store struct{}

func (s *Store) QueryStreamCtx(ctx context.Context, src string) (*Cursor, error) {
	return &Cursor{}, nil
}

// Query is the legacy materialising compat wrapper.
func (s *Store) Query(src string) (*Result, error) {
	return MaterialiseQuery(context.Background(), s, src)
}

// TimedQuery is the legacy timing compat wrapper.
func (s *Store) TimedQuery(src string) (*Result, error) {
	return TimedQuery(s, src)
}

type API interface {
	Query(src string) (*Result, error)
	TimedQuery(src string) (*Result, error)
}

// MaterialiseQuery is the blessed materialising wrapper.
func MaterialiseQuery(ctx context.Context, s *Store, src string) (*Result, error) {
	cur, err := s.QueryStreamCtx(ctx, src)
	if err != nil {
		return nil, err
	}
	defer cur.Close()
	return &Result{}, nil
}

// TimedQuery is the blessed timing wrapper.
func TimedQuery(s *Store, src string) (*Result, error) {
	return MaterialiseQuery(context.Background(), s, src)
}
