package lint

import (
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite the expected-diagnostic golden files")

// fixtureDiagnostics loads testdata/src/<name> as a GOPATH-style
// fixture tree and runs the given analyzers over it.
func fixtureDiagnostics(t *testing.T, name string, analyzers []*Analyzer) []Diagnostic {
	t.Helper()
	prog, err := LoadFixtureTree(filepath.Join("testdata", "src", name))
	if err != nil {
		t.Fatalf("loading fixture %s: %v", name, err)
	}
	if len(prog.Pkgs) == 0 {
		t.Fatalf("fixture %s loaded no packages", name)
	}
	return RunAnalyzers(prog, analyzers)
}

func render(diags []Diagnostic) string {
	var sb strings.Builder
	for _, d := range diags {
		sb.WriteString(filepath.ToSlash(d.String()))
		sb.WriteString("\n")
	}
	return sb.String()
}

// TestAnalyzerFixtures checks each analyzer against its fixture
// package: the diagnostics (file:line:col, message, and suppressions
// applied) must match the golden file exactly, and every fixture must
// actually demonstrate its analyzer firing.
func TestAnalyzerFixtures(t *testing.T) {
	for _, a := range All() {
		t.Run(a.Name, func(t *testing.T) {
			got := render(fixtureDiagnostics(t, a.Name, []*Analyzer{a}))
			golden := filepath.Join("testdata", a.Name+".golden")
			if *update {
				if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
					t.Fatal(err)
				}
			}
			want, err := os.ReadFile(golden)
			if err != nil {
				t.Fatalf("reading golden file: %v (run `go test -run TestAnalyzerFixtures -update ./internal/lint` to create it)", err)
			}
			if got != string(want) {
				t.Errorf("diagnostics mismatch for %s:\n--- got ---\n%s--- want ---\n%s", a.Name, got, want)
			}
			if strings.TrimSpace(got) == "" {
				t.Errorf("fixture for %s produced no diagnostics; the fixture must demonstrate the analyzer firing", a.Name)
			}
			for _, line := range strings.Split(strings.TrimSuffix(got, "\n"), "\n") {
				if line != "" && !strings.Contains(line, ": "+a.Name+": ") {
					t.Errorf("diagnostic from a different analyzer in the %s fixture: %s", a.Name, line)
				}
			}
		})
	}
}

// TestAllowPragmasSuppress pins the suppression mechanism: every
// fixture contains at least one //lint:allow case for its analyzer,
// and no diagnostic survives on the pragma's line or the line below.
func TestAllowPragmasSuppress(t *testing.T) {
	for _, a := range All() {
		t.Run(a.Name, func(t *testing.T) {
			pragmas := make(map[string][]int) // file -> pragma line numbers
			root := filepath.Join("testdata", "src", a.Name)
			err := filepath.Walk(root, func(path string, info os.FileInfo, err error) error {
				if err != nil || info.IsDir() || !strings.HasSuffix(path, ".go") {
					return err
				}
				data, err := os.ReadFile(path)
				if err != nil {
					return err
				}
				for i, line := range strings.Split(string(data), "\n") {
					if strings.Contains(line, allowPrefix+a.Name) {
						pragmas[filepath.ToSlash(path)] = append(pragmas[filepath.ToSlash(path)], i+1)
					}
				}
				return nil
			})
			if err != nil {
				t.Fatal(err)
			}
			if len(pragmas) == 0 {
				t.Fatalf("fixture for %s has no //lint:allow %s case; each fixture must pin the suppression path", a.Name, a.Name)
			}
			for _, d := range fixtureDiagnostics(t, a.Name, []*Analyzer{a}) {
				for _, line := range pragmas[filepath.ToSlash(d.Pos.Filename)] {
					if d.Pos.Line == line || d.Pos.Line == line+1 {
						t.Errorf("diagnostic survived an //lint:allow pragma at %s:%d: %s", d.Pos.Filename, line, d)
					}
				}
			}
		})
	}
}

// TestPragmaValidation: malformed and unknown-analyzer pragmas are
// themselves diagnostics, so a typo cannot silently disable a check.
func TestPragmaValidation(t *testing.T) {
	diags := fixtureDiagnostics(t, "pragma", All())
	if len(diags) != 2 {
		t.Fatalf("want 2 pragma diagnostics, got %d:\n%s", len(diags), render(diags))
	}
	for _, d := range diags {
		if d.Analyzer != "pragma" {
			t.Errorf("want analyzer %q, got %q in %s", "pragma", d.Analyzer, d)
		}
	}
	if !strings.Contains(diags[0].Message, "malformed") {
		t.Errorf("first diagnostic should flag the malformed pragma: %s", diags[0])
	}
	if !strings.Contains(diags[1].Message, `unknown analyzer "nosuchanalyzer"`) {
		t.Errorf("second diagnostic should flag the unknown analyzer: %s", diags[1])
	}
}

// TestModuleIsClean runs the full suite over the real module tree: the
// invariants reprolint enforces must hold on every commit.
func TestModuleIsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("loads and type-checks the whole module")
	}
	prog, err := LoadPackages("repro/...")
	if err != nil {
		t.Fatalf("loading module packages: %v", err)
	}
	if len(prog.Pkgs) == 0 {
		t.Fatal("loaded no module packages")
	}
	if diags := RunAnalyzers(prog, All()); len(diags) > 0 {
		t.Errorf("module tree is not reprolint-clean:\n%s", render(diags))
	}
}
