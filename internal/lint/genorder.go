package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// genorder: the result cache validates generation vectors lock-free
// (PR 7), which is only sound because every shard write path registers
// its routing knowledge — track() — BEFORE any member-store generation
// bumps. Invert the order and a validator racing the write can see the
// new generation while the fan-out verdict it validates against was
// computed from pre-write routing knowledge: a stale cached result
// survives.
//
// The analyzer checks, within each function of a package named shard
// that calls track(), that no member-store mutation (a method named
// Add, Remove, InsertAll, or ApplyPlan on a Store type declared in
// another package) and no direct generation bump (.Add on a field
// named gen or knowGen) lexically precedes the first track() call.
// Functions without a track() call — pure helpers, read paths — are
// out of scope, as is track itself.

var analyzerGenOrder = &Analyzer{
	Name: "genorder",
	Doc:  "shard write paths must track routing knowledge before bumping member-store generations",
	Run:  runGenOrder,
}

var mutatingMethods = map[string]bool{
	"Add":       true,
	"Remove":    true,
	"InsertAll": true,
	"ApplyPlan": true,
}

func runGenOrder(prog *Program) []Diagnostic {
	var diags []Diagnostic
	for _, pkg := range prog.Pkgs {
		if pkg.Name != "shard" {
			continue
		}
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil || fd.Name.Name == "track" {
					continue
				}
				diags = append(diags, genOrderFunc(pkg, fd)...)
			}
		}
	}
	return diags
}

func genOrderFunc(pkg *Package, fd *ast.FuncDecl) []Diagnostic {
	info := pkg.Info

	// Locate the first routing-knowledge registration.
	firstTrack := token.NoPos
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if firstTrack.IsValid() {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		switch fun := ast.Unparen(call.Fun).(type) {
		case *ast.SelectorExpr:
			if fun.Sel.Name == "track" {
				firstTrack = call.Pos()
			}
		case *ast.Ident:
			if fun.Name == "track" {
				firstTrack = call.Pos()
			}
		}
		return !firstTrack.IsValid()
	})
	if !firstTrack.IsValid() {
		return nil
	}

	var diags []Diagnostic
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() >= firstTrack {
			return true
		}
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok {
			return true
		}
		if desc, ok := genBumpCall(pkg, info, sel); ok {
			diags = append(diags, Diagnostic{
				Pos:      pkg.Fset.Position(call.Pos()),
				Analyzer: "genorder",
				Message: fmt.Sprintf("%s precedes the routing-knowledge track() call: track BEFORE bumping generations, or lock-free cache validation can accept results under pre-write routing",
					desc),
			})
		}
		return true
	})
	return diags
}

// genBumpCall classifies a selector call as a generation bump: a
// mutating method on a member Store from another package, or a direct
// .Add on a generation counter field.
func genBumpCall(pkg *Package, info *types.Info, sel *ast.SelectorExpr) (string, bool) {
	if mutatingMethods[sel.Sel.Name] {
		if n := recvNamed(info, sel); n != nil && n.Obj().Name() == "Store" &&
			n.Obj().Pkg() != nil && n.Obj().Pkg() != pkg.Types {
			return fmt.Sprintf("member-store mutation %s.%s", n.Obj().Pkg().Name()+".Store", sel.Sel.Name), true
		}
	}
	if sel.Sel.Name == "Add" {
		if x, ok := ast.Unparen(sel.X).(*ast.SelectorExpr); ok {
			if name := x.Sel.Name; name == "gen" || name == "knowGen" {
				return fmt.Sprintf("generation bump %s.Add", name), true
			}
		}
	}
	return "", false
}
