package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// cursorclose: a cursor returned by QueryStream / QueryStreamCtx /
// Evaluator.Run / Evaluator.RunCompiled holds its store read lock(s)
// from creation until Close — leaking one pins the lock forever (PR 3's
// lock-until-Close discipline). Every producer call must therefore
// either
//
//   - have Close called on its result somewhere in the function
//     (deferred or not),
//   - return the cursor (ownership moves to the caller),
//   - or hand the cursor to an owner: store it into a struct/slice/map,
//     wrap it in a composite literal, send it on a channel, or pass it
//     to another call.
//
// The check is lexical, not path-sensitive: it catches the "never
// closed at all" leak class. Deliberate exceptions carry
// //lint:allow cursorclose <reason>.

var analyzerCursorClose = &Analyzer{
	Name: "cursorclose",
	Doc:  "cursors from QueryStream/QueryStreamCtx/Evaluator.Run must be Closed, returned, or handed to an owner",
	Run:  runCursorClose,
}

// isCursorProducer reports whether the call returns a lock-holding
// cursor: any QueryStream/QueryStreamCtx method, or Run/RunCompiled on
// an Evaluator.
func isCursorProducer(info *types.Info, call *ast.CallExpr) (string, bool) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	switch sel.Sel.Name {
	case "QueryStream", "QueryStreamCtx":
		if isMethodCall(info, sel) {
			return sel.Sel.Name, true
		}
	case "Run", "RunCompiled":
		if n := recvNamed(info, sel); n != nil && n.Obj().Name() == "Evaluator" {
			return "Evaluator." + sel.Sel.Name, true
		}
	}
	return "", false
}

func runCursorClose(prog *Program) []Diagnostic {
	var diags []Diagnostic
	for _, pkg := range prog.Pkgs {
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				diags = append(diags, cursorCloseFunc(pkg, fd)...)
			}
		}
	}
	return diags
}

func cursorCloseFunc(pkg *Package, fd *ast.FuncDecl) []Diagnostic {
	var diags []Diagnostic
	walkParents(fd.Body, func(n ast.Node, stack []ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		producer, ok := isCursorProducer(pkg.Info, call)
		if !ok {
			return true
		}
		if len(stack) == 0 {
			return true
		}
		switch parent := stack[len(stack)-1].(type) {
		case *ast.ReturnStmt:
			return true // ownership moves to the caller
		case *ast.CallExpr:
			return true // passed straight to another call
		case *ast.ExprStmt:
			diags = append(diags, cursorDiag(pkg, call.Pos(), producer,
				"its result is discarded"))
			return true
		case *ast.AssignStmt:
			obj := cursorTarget(pkg.Info, parent, call)
			if obj == nil {
				diags = append(diags, cursorDiag(pkg, call.Pos(), producer,
					"its result is assigned to the blank identifier"))
				return true
			}
			if !cursorHandled(pkg.Info, fd, obj) {
				diags = append(diags, cursorDiag(pkg, call.Pos(), producer,
					fmt.Sprintf("%q is never Closed, returned, or handed to an owner", obj.Name())))
			}
			return true
		default:
			// Composite literal, KeyValueExpr, etc: the cursor escapes
			// into an owning value.
			return true
		}
	})
	return diags
}

func cursorDiag(pkg *Package, pos token.Pos, producer, why string) Diagnostic {
	return Diagnostic{
		Pos:      pkg.Fset.Position(pos),
		Analyzer: "cursorclose",
		Message: fmt.Sprintf("cursor from %s leaks its read lock: %s (Close it on every path, defer the Close, or return it)",
			producer, why),
	}
}

// cursorTarget finds the variable the producer call's cursor result is
// bound to: producers return (cursor, error), so it is the first LHS.
// nil means the cursor landed in the blank identifier.
func cursorTarget(info *types.Info, assign *ast.AssignStmt, call *ast.CallExpr) types.Object {
	if len(assign.Rhs) != 1 || assign.Rhs[0] == nil || len(assign.Lhs) == 0 {
		return nil
	}
	if ast.Unparen(assign.Rhs[0]) != call {
		// Parallel assignment; find the matching position.
		for i, r := range assign.Rhs {
			if ast.Unparen(r) == call && i < len(assign.Lhs) {
				if id, ok := assign.Lhs[i].(*ast.Ident); ok && id.Name != "_" {
					return identObj(info, id)
				}
				return nil
			}
		}
		return nil
	}
	id, ok := assign.Lhs[0].(*ast.Ident)
	if !ok || id.Name == "_" {
		return nil
	}
	return identObj(info, id)
}

// cursorHandled reports whether the function closes the cursor
// variable or passes ownership on: a .Close() call (deferred counts),
// a return mentioning it, an escape into a composite literal, another
// call's arguments, a channel send, or a store into a non-local
// l-value.
func cursorHandled(info *types.Info, fd *ast.FuncDecl, obj types.Object) bool {
	handled := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if handled {
			return false
		}
		switch n := n.(type) {
		case *ast.CallExpr:
			if sel, ok := ast.Unparen(n.Fun).(*ast.SelectorExpr); ok && sel.Sel.Name == "Close" {
				if id, ok := ast.Unparen(sel.X).(*ast.Ident); ok && identObj(info, id) == obj {
					handled = true
					return false
				}
			}
			for _, arg := range n.Args {
				if id, ok := ast.Unparen(arg).(*ast.Ident); ok && identObj(info, id) == obj {
					handled = true
					return false
				}
			}
		case *ast.ReturnStmt:
			if containsIdentOf(info, n, obj) {
				handled = true
				return false
			}
		case *ast.CompositeLit:
			if containsIdentOf(info, n, obj) {
				handled = true
				return false
			}
		case *ast.SendStmt:
			if id, ok := ast.Unparen(n.Value).(*ast.Ident); ok && identObj(info, id) == obj {
				handled = true
				return false
			}
		case *ast.AssignStmt:
			for i, r := range n.Rhs {
				id, ok := ast.Unparen(r).(*ast.Ident)
				if !ok || identObj(info, id) != obj || i >= len(n.Lhs) {
					continue
				}
				switch n.Lhs[i].(type) {
				case *ast.SelectorExpr, *ast.IndexExpr, *ast.StarExpr:
					handled = true
					return false
				}
			}
		}
		return true
	})
	return handled
}
