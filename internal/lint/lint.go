// Package lint is a project-specific static-analysis driver enforcing
// the engine's concurrency and lifetime invariants mechanically —
// the rules that previously lived only in comments and review
// vigilance. It is stdlib-only (go/parser, go/ast, go/types) so it
// builds and runs offline; cmd/reprolint is the CLI front end and
// `make lint` / CI run it over the whole module.
//
// The analyzer suite:
//
//   - cursorclose: every cursor obtained from QueryStream,
//     QueryStreamCtx, Evaluator.Run or Evaluator.RunCompiled must be
//     Closed, returned, or handed to an owner — a leaked cursor pins a
//     store read lock forever.
//   - bindingclone: a Binding yielded by Cursor.Next is a view into
//     the engine's current batch, reused on the next pull; retaining
//     one (struct field, slice, map, channel) requires an interposing
//     Clone call.
//   - batchview: the columnar analogue — a *Batch yielded by a batch
//     iterator's next is owned by the producer and reused on the next
//     pull; retaining one requires an interposing cloneBatch call.
//   - ctxapi: internal callers use the canonical context-first
//     QueryStreamCtx surface; the legacy materialising Query/TimedQuery
//     methods are banned outside the blessed strabon.MaterialiseQuery /
//     strabon.TimedQuery wrappers and test files.
//   - lockdiscipline: no write-lock acquisition (writeMu, RWMutex
//     write Lock, Store.Lock, lockAllWrite) is reachable from the
//     reader entry points (QueryStream, QueryStreamCtx, Explain) via a
//     static call-graph walk.
//   - genorder: in package shard's write paths, routing knowledge must
//     be tracked BEFORE member-store generations bump, or the result
//     cache validates against stale routing vectors.
//
// Deliberate exceptions are annotated in source as
//
//	//lint:allow <analyzer> <reason>
//
// on the flagged line or the line directly above it; the driver
// suppresses matching diagnostics and rejects malformed or
// unknown-analyzer pragmas.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Diagnostic is one analyzer finding at a source position.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
}

// Package is one type-checked package under analysis.
type Package struct {
	Name  string // package name
	Path  string // import path (fixture-relative for test fixtures)
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// Program is the full set of packages one reprolint invocation
// analyzes, in dependency order (imports before importers), sharing
// one FileSet and one type-checker universe so cross-package object
// identity holds (the lockdiscipline call graph depends on it).
type Program struct {
	Fset *token.FileSet
	Pkgs []*Package

	allows    []allowPragma
	pragmaDia []Diagnostic
}

// Analyzer is one named invariant check over a Program.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(prog *Program) []Diagnostic
}

// All returns the full analyzer suite in reporting order.
func All() []*Analyzer {
	return []*Analyzer{
		analyzerCursorClose,
		analyzerBindingClone,
		analyzerBatchView,
		analyzerCtxAPI,
		analyzerLockDiscipline,
		analyzerGenOrder,
	}
}

// allowPragma is one parsed //lint:allow comment.
type allowPragma struct {
	file     string
	line     int // the comment's own line; it covers line and line+1
	analyzer string
}

const allowPrefix = "//lint:allow "

// collectPragmas scans a package's comments for //lint:allow pragmas,
// recording valid ones and reporting malformed or unknown-analyzer
// ones as driver diagnostics (a pragma that silently fails to parse
// would un-suppress nothing and suppress review instead).
func (prog *Program) collectPragmas(pkg *Package, known map[string]bool) {
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, strings.TrimSpace(allowPrefix)) {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				rest := strings.TrimPrefix(c.Text, strings.TrimSpace(allowPrefix))
				fields := strings.Fields(rest)
				if len(fields) < 2 {
					prog.pragmaDia = append(prog.pragmaDia, Diagnostic{
						Pos:      pos,
						Analyzer: "pragma",
						Message:  "malformed //lint:allow pragma: want `//lint:allow <analyzer> <reason>`",
					})
					continue
				}
				if !known[fields[0]] {
					prog.pragmaDia = append(prog.pragmaDia, Diagnostic{
						Pos:      pos,
						Analyzer: "pragma",
						Message:  fmt.Sprintf("unknown analyzer %q in //lint:allow pragma", fields[0]),
					})
					continue
				}
				prog.allows = append(prog.allows, allowPragma{
					file:     pos.Filename,
					line:     pos.Line,
					analyzer: fields[0],
				})
			}
		}
	}
}

// suppressed reports whether an //lint:allow pragma for the
// diagnostic's analyzer sits on its line or the line directly above.
func (prog *Program) suppressed(d Diagnostic) bool {
	for _, a := range prog.allows {
		if a.analyzer != d.Analyzer || a.file != d.Pos.Filename {
			continue
		}
		if a.line == d.Pos.Line || a.line == d.Pos.Line-1 {
			return true
		}
	}
	return false
}

// RunAnalyzers runs every analyzer over the program, filters
// pragma-suppressed findings, and returns the surviving diagnostics in
// file/line order (pragma errors included — a broken pragma is itself
// a finding).
func RunAnalyzers(prog *Program, analyzers []*Analyzer) []Diagnostic {
	known := make(map[string]bool, len(analyzers))
	for _, a := range analyzers {
		known[a.Name] = true
	}
	prog.allows = nil
	prog.pragmaDia = nil
	for _, pkg := range prog.Pkgs {
		prog.collectPragmas(pkg, known)
	}
	var out []Diagnostic
	out = append(out, prog.pragmaDia...)
	for _, a := range analyzers {
		for _, d := range a.Run(prog) {
			if !prog.suppressed(d) {
				out = append(out, d)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Pos.Filename != out[j].Pos.Filename {
			return out[i].Pos.Filename < out[j].Pos.Filename
		}
		if out[i].Pos.Line != out[j].Pos.Line {
			return out[i].Pos.Line < out[j].Pos.Line
		}
		if out[i].Pos.Column != out[j].Pos.Column {
			return out[i].Pos.Column < out[j].Pos.Column
		}
		return out[i].Message < out[j].Message
	})
	return out
}

// --- shared AST/type helpers ---

// isTestFile reports whether the position's file is a _test.go file
// (ctxapi exempts tests; fixtures include a _test.go case to pin it).
func isTestFile(fset *token.FileSet, pos token.Pos) bool {
	return strings.HasSuffix(fset.Position(pos).Filename, "_test.go")
}

// calleeFunc resolves a call expression to the *types.Func it invokes
// (method or package-level function), or nil for builtins, conversions
// and calls through function-typed values.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if fn, ok := info.Uses[fun].(*types.Func); ok {
			return fn
		}
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[fun]; ok {
			if fn, ok := sel.Obj().(*types.Func); ok {
				return fn
			}
			return nil
		}
		if fn, ok := info.Uses[fun.Sel].(*types.Func); ok {
			return fn
		}
	}
	return nil
}

// isMethodCall reports whether the selector call goes through a
// receiver value (as opposed to a package-qualified function call).
func isMethodCall(info *types.Info, sel *ast.SelectorExpr) bool {
	_, ok := info.Selections[sel]
	return ok
}

// namedOf unwraps pointers and aliases down to the *types.Named type,
// or nil.
func namedOf(t types.Type) *types.Named {
	for {
		switch u := t.(type) {
		case *types.Pointer:
			t = u.Elem()
		case *types.Alias:
			t = types.Unalias(t)
		case *types.Named:
			return u
		default:
			return nil
		}
	}
}

// recvNamed returns the named type of a method call's receiver, or nil.
func recvNamed(info *types.Info, sel *ast.SelectorExpr) *types.Named {
	s, ok := info.Selections[sel]
	if !ok {
		return nil
	}
	return namedOf(s.Recv())
}

// typeIs reports whether t (possibly behind a pointer) is the named
// type pkgName.typeName.
func typeIs(t types.Type, pkgName, typeName string) bool {
	n := namedOf(t)
	if n == nil || n.Obj() == nil || n.Obj().Pkg() == nil {
		return false
	}
	return n.Obj().Pkg().Name() == pkgName && n.Obj().Name() == typeName
}

// walkParents traverses root, invoking fn with each node and the stack
// of its ancestors (outermost first, not including n itself).
func walkParents(root ast.Node, fn func(n ast.Node, stack []ast.Node) bool) {
	var stack []ast.Node
	ast.Inspect(root, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		if !fn(n, stack) {
			// Still push: Inspect will descend only if we return true,
			// so mirror its contract by skipping the subtree.
			return false
		}
		stack = append(stack, n)
		return true
	})
}

// containsIdentOf reports whether any identifier inside node resolves
// to obj.
func containsIdentOf(info *types.Info, node ast.Node, obj types.Object) bool {
	found := false
	ast.Inspect(node, func(n ast.Node) bool {
		if found {
			return false
		}
		if id, ok := n.(*ast.Ident); ok && identObj(info, id) == obj {
			found = true
		}
		return !found
	})
	return found
}

// identObj resolves an identifier to its object via Uses or Defs.
func identObj(info *types.Info, id *ast.Ident) types.Object {
	if o := info.Uses[id]; o != nil {
		return o
	}
	return info.Defs[id]
}

// funcName renders a function or method name for diagnostics:
// "(*Store).QueryStream" or "MaterialiseQuery".
func funcName(fn *types.Func) string {
	sig, ok := fn.Type().(*types.Signature)
	if ok && sig.Recv() != nil {
		t := sig.Recv().Type()
		if p, ok := t.(*types.Pointer); ok {
			if n := namedOf(p.Elem()); n != nil {
				return "(*" + n.Obj().Name() + ")." + fn.Name()
			}
		}
		if n := namedOf(t); n != nil {
			return "(" + n.Obj().Name() + ")." + fn.Name()
		}
	}
	return fn.Name()
}
