package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// lockdiscipline: the serving tier's scaling story rests on readers
// never blocking on writers (PRs 4/7): query paths take member read
// locks only, and the shard store's writeMu — which serialises
// check-then-act routing against application — is a writer-only
// mutex. A read path that acquires any write lock deadlocks against
// its own read locks or serialises every concurrent reader.
//
// The analyzer builds a static call graph over the whole program
// (function literals are attributed to their enclosing declaration;
// calls through interfaces fan out to every in-program concrete method
// set that implements the interface) and walks it from the reader
// entry points — methods named QueryStream, QueryStreamCtx, or Explain
// — flagging every reachable write-lock acquisition:
//
//   - .Lock() on a field named writeMu,
//   - .Lock() on a sync.RWMutex (the write side; readers use RLock),
//   - .Lock() on a type named Store (the exported member write lock),
//   - any call to a function named lockAllWrite.

var analyzerLockDiscipline = &Analyzer{
	Name: "lockdiscipline",
	Doc:  "no write-lock acquisition may be reachable from the reader entry points (QueryStream/QueryStreamCtx/Explain/ExplainAnalyze)",
	Run:  runLockDiscipline,
}

var readerEntryNames = map[string]bool{
	"QueryStream":    true,
	"QueryStreamCtx": true,
	"Explain":        true,
	"ExplainAnalyze": true,
}

type forbiddenOp struct {
	pos  token.Pos
	desc string
}

type funcNode struct {
	fn        *types.Func
	pkg       *Package
	decl      *ast.FuncDecl
	callees   []*types.Func
	ifaceCall []ifaceCallSite
	forbidden []forbiddenOp
}

type ifaceCallSite struct {
	iface *types.Interface
	name  string
}

func runLockDiscipline(prog *Program) []Diagnostic {
	nodes := make(map[*types.Func]*funcNode)
	var order []*types.Func // deterministic iteration

	// Collect every declared function with a body.
	for _, pkg := range prog.Pkgs {
		for _, file := range pkg.Files {
			if isTestFile(pkg.Fset, file.Pos()) {
				continue
			}
			for _, decl := range file.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				fn, _ := pkg.Info.Defs[fd.Name].(*types.Func)
				if fn == nil {
					continue
				}
				node := &funcNode{fn: fn, pkg: pkg, decl: fd}
				collectCallsAndLocks(pkg, fd, node)
				nodes[fn] = node
				order = append(order, fn)
			}
		}
	}

	// Expand interface call sites: an interface method call may reach
	// any in-program concrete method of a type implementing it.
	var namedTypes []*types.Named
	for _, pkg := range prog.Pkgs {
		scope := pkg.Types.Scope()
		for _, name := range scope.Names() {
			if tn, ok := scope.Lookup(name).(*types.TypeName); ok && !tn.IsAlias() {
				if n, ok := tn.Type().(*types.Named); ok {
					namedTypes = append(namedTypes, n)
				}
			}
		}
	}
	for _, fn := range order {
		node := nodes[fn]
		for _, ic := range node.ifaceCall {
			for _, n := range namedTypes {
				impl := types.Type(n)
				if !types.Implements(impl, ic.iface) {
					impl = types.NewPointer(n)
					if !types.Implements(impl, ic.iface) {
						continue
					}
				}
				obj, _, _ := types.LookupFieldOrMethod(impl, true, n.Obj().Pkg(), ic.name)
				if m, ok := obj.(*types.Func); ok {
					node.callees = append(node.callees, m)
				}
			}
		}
	}

	// BFS from each reader entry, remembering one parent per visited
	// function so diagnostics can show a witness call chain. A
	// forbidden site is reported once, for the first entry reaching it.
	reported := make(map[token.Pos]bool)
	var diags []Diagnostic
	sort.Slice(order, func(i, j int) bool { return order[i].Pos() < order[j].Pos() })
	for _, entry := range order {
		if !readerEntryNames[entry.Name()] {
			continue
		}
		if sig, ok := entry.Type().(*types.Signature); !ok || sig.Recv() == nil {
			continue // entry points are methods on store types
		}
		parent := map[*types.Func]*types.Func{entry: nil}
		queue := []*types.Func{entry}
		for len(queue) > 0 {
			fn := queue[0]
			queue = queue[1:]
			node := nodes[fn]
			if node == nil {
				continue
			}
			for _, op := range node.forbidden {
				if reported[op.pos] {
					continue
				}
				reported[op.pos] = true
				diags = append(diags, Diagnostic{
					Pos:      node.pkg.Fset.Position(op.pos),
					Analyzer: "lockdiscipline",
					Message: fmt.Sprintf("%s is reachable from reader entry %s (%s): read paths must never take a write lock",
						op.desc, funcName(entry), chain(parent, fn)),
				})
			}
			for _, callee := range node.callees {
				if _, seen := parent[callee]; seen {
					continue
				}
				if _, inProgram := nodes[callee]; !inProgram {
					continue
				}
				parent[callee] = fn
				queue = append(queue, callee)
			}
		}
	}
	return diags
}

// chain renders the witness call path entry → ... → fn.
func chain(parent map[*types.Func]*types.Func, fn *types.Func) string {
	var names []string
	for f := fn; f != nil; f = parent[f] {
		names = append(names, funcName(f))
	}
	for i, j := 0, len(names)-1; i < j; i, j = i+1, j-1 {
		names[i], names[j] = names[j], names[i]
	}
	return strings.Join(names, " -> ")
}

// collectCallsAndLocks records, for one function declaration (function
// literals included), its statically resolvable callees, its interface
// call sites, and any write-lock acquisitions it performs directly.
func collectCallsAndLocks(pkg *Package, fd *ast.FuncDecl, node *funcNode) {
	info := pkg.Info
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}

		if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
			if op, ok := forbiddenLock(info, sel); ok {
				node.forbidden = append(node.forbidden, forbiddenOp{pos: call.Pos(), desc: op})
			}
			if s, ok := info.Selections[sel]; ok {
				if types.IsInterface(s.Recv()) {
					if iface, ok := s.Recv().Underlying().(*types.Interface); ok {
						node.ifaceCall = append(node.ifaceCall, ifaceCallSite{iface: iface, name: sel.Sel.Name})
						return true
					}
				}
			}
		}

		if fn := calleeFunc(info, call); fn != nil {
			if fn.Name() == "lockAllWrite" {
				node.forbidden = append(node.forbidden, forbiddenOp{pos: call.Pos(), desc: "lockAllWrite (every member write lock)"})
			}
			node.callees = append(node.callees, fn)
		}
		return true
	})
}

// forbiddenLock classifies a selector call as a write-lock
// acquisition.
func forbiddenLock(info *types.Info, sel *ast.SelectorExpr) (string, bool) {
	if sel.Sel.Name != "Lock" {
		return "", false
	}
	if x, ok := ast.Unparen(sel.X).(*ast.SelectorExpr); ok && x.Sel.Name == "writeMu" {
		return "writer mutex writeMu.Lock", true
	}
	if tv, ok := info.Types[sel.X]; ok {
		if typeIs(tv.Type, "sync", "RWMutex") {
			return "RWMutex write Lock", true
		}
		if n := namedOf(tv.Type); n != nil && n.Obj().Name() == "Store" {
			return "Store.Lock (member write lock)", true
		}
	}
	return "", false
}
