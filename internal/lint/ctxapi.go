package lint

import (
	"fmt"
	"go/ast"
)

// ctxapi: the canonical query surface is context-first streaming —
// QueryStreamCtx, with strabon.MaterialiseQuery / strabon.TimedQuery as
// the two blessed materialising wrappers over it (PR 6's API
// consolidation). The legacy materialising METHODS Query and TimedQuery
// on the stores (and the API interface) survive only as compatibility
// one-liners; internal callers must not grow new dependencies on them.
//
// The analyzer flags method calls named Query/TimedQuery whose receiver
// type is declared in a package named strabon or shard. Package-
// qualified function calls (strabon.TimedQuery(...)) are the blessed
// wrappers and pass; _test.go files are exempt; unrelated Query methods
// (url.URL.Query, flag sets, ...) live in other packages and never
// match.

var analyzerCtxAPI = &Analyzer{
	Name: "ctxapi",
	Doc:  "legacy materialising Query/TimedQuery store methods are banned outside tests; use QueryStreamCtx or the strabon.MaterialiseQuery/TimedQuery wrappers",
	Run:  runCtxAPI,
}

func runCtxAPI(prog *Program) []Diagnostic {
	var diags []Diagnostic
	for _, pkg := range prog.Pkgs {
		for _, file := range pkg.Files {
			if isTestFile(pkg.Fset, file.Pos()) {
				continue
			}
			ast.Inspect(file, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
				if !ok {
					return true
				}
				name := sel.Sel.Name
				if name != "Query" && name != "TimedQuery" {
					return true
				}
				if !isMethodCall(pkg.Info, sel) {
					return true // package-qualified: the blessed wrappers
				}
				fn := calleeFunc(pkg.Info, call)
				if fn == nil || fn.Pkg() == nil {
					return true
				}
				if pkgName := fn.Pkg().Name(); pkgName != "strabon" && pkgName != "shard" {
					return true
				}
				diags = append(diags, Diagnostic{
					Pos:      pkg.Fset.Position(call.Pos()),
					Analyzer: "ctxapi",
					Message: fmt.Sprintf("legacy materialising %s method call: use QueryStreamCtx, or the blessed strabon.%s wrapper",
						name, blessedFor(name)),
				})
				return true
			})
		}
	}
	return diags
}

func blessedFor(method string) string {
	if method == "TimedQuery" {
		return "TimedQuery(store, src)"
	}
	return "MaterialiseQuery(ctx, store, src)"
}
