package lint

import (
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"sort"
	"strconv"
	"strings"
)

// The loader type-checks every module package from source (so analyzers
// see bodies and cross-package *types.Func identity holds for the call
// graph) and resolves everything else — the standard library — through
// the toolchain's compiled export data, located via `go list -export`.
// No network, no module downloads: the module has no external deps and
// the stdlib export data comes out of the local build cache.

// listedPackage is the subset of `go list -json` output we consume.
type listedPackage struct {
	ImportPath string
	Name       string
	Dir        string
	GoFiles    []string
	Imports    []string
	Export     string
	Standard   bool
	DepOnly    bool
}

// exportImporter resolves import paths to type information from gc
// export data files, finding them lazily via `go list -export` when
// the initial listing didn't provide one (fixture loads start empty).
type exportImporter struct {
	gc    types.Importer
	files map[string]string // import path -> export data file
	local map[string]*types.Package
}

func newExportImporter(fset *token.FileSet) *exportImporter {
	e := &exportImporter{
		files: make(map[string]string),
		local: make(map[string]*types.Package),
	}
	e.gc = importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		f, err := e.exportFile(path)
		if err != nil {
			return nil, err
		}
		return os.Open(f)
	})
	return e
}

func (e *exportImporter) exportFile(path string) (string, error) {
	if f, ok := e.files[path]; ok {
		return f, nil
	}
	out, err := exec.Command("go", "list", "-export", "-f", "{{.Export}}", path).Output()
	if err != nil {
		return "", fmt.Errorf("locating export data for %q: %v", path, err)
	}
	f := strings.TrimSpace(string(out))
	if f == "" {
		return "", fmt.Errorf("no export data for %q", path)
	}
	e.files[path] = f
	return f, nil
}

func (e *exportImporter) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if p, ok := e.local[path]; ok {
		return p, nil
	}
	return e.gc.Import(path)
}

// checkPackage parses and type-checks one package's files.
func checkPackage(fset *token.FileSet, imp *exportImporter, path, dir string, files []string) (*Package, error) {
	var parsed []*ast.File
	for _, name := range files {
		full := name
		if dir != "" && !filepath.IsAbs(name) {
			full = filepath.Join(dir, name)
		}
		f, err := parser.ParseFile(fset, displayPath(full), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		parsed = append(parsed, f)
	}
	if len(parsed) == 0 {
		return nil, nil
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	var firstErr error
	conf := types.Config{
		Importer: imp,
		Sizes:    types.SizesFor("gc", runtime.GOARCH),
		Error: func(err error) {
			if firstErr == nil {
				firstErr = err
			}
		},
	}
	tpkg, _ := conf.Check(path, fset, parsed, info)
	if firstErr != nil {
		return nil, fmt.Errorf("type-checking %s: %v", path, firstErr)
	}
	return &Package{
		Name:  tpkg.Name(),
		Path:  path,
		Fset:  fset,
		Files: parsed,
		Types: tpkg,
		Info:  info,
	}, nil
}

// displayPath renders file paths relative to the working directory
// when possible, so diagnostics read `internal/shard/shard.go:663`.
func displayPath(p string) string {
	wd, err := os.Getwd()
	if err != nil {
		return p
	}
	if rel, err := filepath.Rel(wd, p); err == nil && !strings.HasPrefix(rel, "..") {
		return rel
	}
	return p
}

// LoadPackages loads and type-checks the module packages matching the
// given `go list` patterns (plus their in-module dependencies, which
// are type-checked but not analyzed). Test files are not loaded: the
// invariants gate production code, and ctxapi explicitly exempts
// tests.
func LoadPackages(patterns ...string) (*Program, error) {
	args := append([]string{"list", "-deps", "-export", "-json=ImportPath,Name,Dir,GoFiles,Imports,Export,Standard,DepOnly"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Stderr = os.Stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list %s: %v", strings.Join(patterns, " "), err)
	}

	fset := token.NewFileSet()
	imp := newExportImporter(fset)
	prog := &Program{Fset: fset}

	// -deps emits dependencies before their importers, so one pass in
	// stream order type-checks every module package after its imports.
	dec := json.NewDecoder(strings.NewReader(string(out)))
	for {
		var lp listedPackage
		if err := dec.Decode(&lp); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("decoding go list output: %v", err)
		}
		if lp.Standard {
			if lp.Export != "" {
				imp.files[lp.ImportPath] = lp.Export
			}
			continue
		}
		if len(lp.GoFiles) == 0 {
			continue
		}
		pkg, err := checkPackage(fset, imp, lp.ImportPath, lp.Dir, lp.GoFiles)
		if err != nil {
			return nil, err
		}
		if pkg == nil {
			continue
		}
		imp.local[lp.ImportPath] = pkg.Types
		if !lp.DepOnly {
			prog.Pkgs = append(prog.Pkgs, pkg)
		}
	}
	return prog, nil
}

// LoadFixtureTree loads a GOPATH-style fixture tree rooted at dir:
// every subdirectory holding .go files is one package whose import
// path is its slash-separated path relative to dir. Fixture packages
// may import each other by those relative paths and the standard
// library; _test.go files ARE loaded (the ctxapi fixtures pin the
// test-file exemption with one).
func LoadFixtureTree(dir string) (*Program, error) {
	pkgFiles := make(map[string][]string)
	err := filepath.Walk(dir, func(path string, info os.FileInfo, err error) error {
		if err != nil || info.IsDir() || !strings.HasSuffix(path, ".go") {
			return err
		}
		rel, err := filepath.Rel(dir, filepath.Dir(path))
		if err != nil {
			return err
		}
		key := filepath.ToSlash(rel)
		pkgFiles[key] = append(pkgFiles[key], path)
		return nil
	})
	if err != nil {
		return nil, err
	}

	fset := token.NewFileSet()
	imp := newExportImporter(fset)
	prog := &Program{Fset: fset}

	// Topologically order fixture packages by their fixture-internal
	// imports (parse import clauses only; cheap and sufficient).
	paths := make([]string, 0, len(pkgFiles))
	for p := range pkgFiles {
		paths = append(paths, p)
	}
	sort.Strings(paths)
	deps := make(map[string][]string)
	for _, p := range paths {
		for _, file := range pkgFiles[p] {
			f, err := parser.ParseFile(fset, file, nil, parser.ImportsOnly)
			if err != nil {
				return nil, err
			}
			for _, spec := range f.Imports {
				ip, _ := strconv.Unquote(spec.Path.Value)
				if _, ok := pkgFiles[ip]; ok {
					deps[p] = append(deps[p], ip)
				}
			}
		}
	}
	var order []string
	state := make(map[string]int) // 0 unvisited, 1 visiting, 2 done
	var visit func(string) error
	visit = func(p string) error {
		switch state[p] {
		case 1:
			return fmt.Errorf("fixture import cycle at %s", p)
		case 2:
			return nil
		}
		state[p] = 1
		for _, d := range deps[p] {
			if err := visit(d); err != nil {
				return err
			}
		}
		state[p] = 2
		order = append(order, p)
		return nil
	}
	for _, p := range paths {
		if err := visit(p); err != nil {
			return nil, err
		}
	}

	for _, p := range order {
		files := pkgFiles[p]
		sort.Strings(files)
		pkg, err := checkPackage(fset, imp, p, "", files)
		if err != nil {
			return nil, err
		}
		if pkg == nil {
			continue
		}
		imp.local[p] = pkg.Types
		prog.Pkgs = append(prog.Pkgs, pkg)
	}
	return prog, nil
}
