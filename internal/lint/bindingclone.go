package lint

import (
	"fmt"
	"go/ast"
	"go/types"
)

// bindingclone: the Binding a streaming cursor's Next yields is a thin
// view over the engine's current columnar batch, reused on the next
// pull (PR 6's row-view contract). Retaining such a row — appending it
// to a slice, storing it into a struct field, map, or array element, or
// sending it over a channel — without an interposing Clone() means the
// retained row mutates under the holder at the next Next.
//
// The check is a per-function taint pass: variables bound from a
// `row, ok := cur.Next()` call whose first result is a named Binding
// type are tainted; any retention of a tainted variable that is not a
// direct .Clone() call is flagged. Immediate consumption — passing the
// row to an encoder, reading fields — is fine and not flagged.

var analyzerBindingClone = &Analyzer{
	Name: "bindingclone",
	Doc:  "Binding row views from Cursor.Next must be Cloned before being retained",
	Run:  runBindingClone,
}

func runBindingClone(prog *Program) []Diagnostic {
	var diags []Diagnostic
	for _, pkg := range prog.Pkgs {
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				diags = append(diags, bindingCloneFunc(pkg, fd)...)
			}
		}
	}
	return diags
}

// isNextRowCall reports whether the call is a cursor pull: a method
// named Next whose first result is a named Binding.
func isNextRowCall(info *types.Info, call *ast.CallExpr) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Next" || !isMethodCall(info, sel) {
		return false
	}
	tv, ok := info.Types[call]
	if !ok {
		return false
	}
	tuple, ok := tv.Type.(*types.Tuple)
	if !ok || tuple.Len() < 1 {
		return false
	}
	n := namedOf(tuple.At(0).Type())
	return n != nil && n.Obj().Name() == "Binding"
}

func bindingCloneFunc(pkg *Package, fd *ast.FuncDecl) []Diagnostic {
	info := pkg.Info

	// Pass 1: collect tainted row-view variables.
	tainted := make(map[types.Object]bool)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		assign, ok := n.(*ast.AssignStmt)
		if !ok || len(assign.Rhs) != 1 || len(assign.Lhs) == 0 {
			return true
		}
		call, ok := ast.Unparen(assign.Rhs[0]).(*ast.CallExpr)
		if !ok || !isNextRowCall(info, call) {
			return true
		}
		if id, ok := assign.Lhs[0].(*ast.Ident); ok && id.Name != "_" {
			if obj := identObj(info, id); obj != nil {
				tainted[obj] = true
			}
		}
		return true
	})
	if len(tainted) == 0 {
		return nil
	}

	isTainted := func(expr ast.Expr) (types.Object, bool) {
		id, ok := ast.Unparen(expr).(*ast.Ident)
		if !ok {
			return nil, false
		}
		obj := identObj(info, id)
		return obj, obj != nil && tainted[obj]
	}

	var diags []Diagnostic
	report := func(n ast.Node, obj types.Object, how string) {
		diags = append(diags, Diagnostic{
			Pos:      pkg.Fset.Position(n.Pos()),
			Analyzer: "bindingclone",
			Message: fmt.Sprintf("Binding row view %q from Next is %s without Clone: the view is reused on the next pull — retain %s.Clone() instead",
				obj.Name(), how, obj.Name()),
		})
	}

	// Pass 2: flag retention of tainted variables.
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			if id, ok := ast.Unparen(n.Fun).(*ast.Ident); ok && id.Name == "append" && len(n.Args) > 1 {
				for _, arg := range n.Args[1:] {
					if obj, ok := isTainted(arg); ok {
						report(arg, obj, "appended to a slice")
					}
				}
			}
		case *ast.AssignStmt:
			for i, r := range n.Rhs {
				obj, ok := isTainted(r)
				if !ok {
					continue
				}
				li := i
				if len(n.Lhs) != len(n.Rhs) {
					li = 0
				}
				switch n.Lhs[li].(type) {
				case *ast.SelectorExpr:
					report(r, obj, "stored into a struct field")
				case *ast.IndexExpr:
					report(r, obj, "stored into a slice or map element")
				case *ast.StarExpr:
					report(r, obj, "stored through a pointer")
				}
			}
		case *ast.SendStmt:
			if obj, ok := isTainted(n.Value); ok {
				report(n.Value, obj, "sent over a channel")
			}
		case *ast.CompositeLit:
			for _, elt := range n.Elts {
				v := elt
				if kv, ok := elt.(*ast.KeyValueExpr); ok {
					v = kv.Value
				}
				if obj, ok := isTainted(v); ok {
					report(v, obj, "captured in a composite literal")
				}
			}
		}
		return true
	})
	return diags
}
