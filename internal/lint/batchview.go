package lint

import (
	"fmt"
	"go/ast"
	"go/types"
)

// batchview: the *Batch a batch iterator's next yields is owned by the
// producer and reused (or overwritten in place) on the next pull — the
// columnar analogue of the Binding row-view contract bindingclone
// enforces. Retaining such a batch — appending it to a slice, storing
// it into a struct field, map, array element or through a pointer, or
// sending it over a channel — without an interposing cloneBatch means
// the retained columns mutate under the holder at the next next.
//
// The check mirrors bindingclone's per-function taint pass: variables
// bound from a call named next (or the nextLive helper) whose first
// result is a *Batch are tainted; any retention of a tainted variable
// is flagged. Immediate consumption — iterating rows, compacting the
// selection, returning the batch downstream (ownership forwards with
// the pull) — is fine and not flagged. Deliberate stashes whose
// lifetime provably ends before the next pull (a cursor's current
// batch, a lookahead buffer drained before the iterator pulls again)
// carry //lint:allow pragmas stating that argument.

var analyzerBatchView = &Analyzer{
	Name: "batchview",
	Doc:  "*Batch views from a batch iterator's next must be cloneBatch-ed before being retained",
	Run:  runBatchView,
}

func runBatchView(prog *Program) []Diagnostic {
	var diags []Diagnostic
	for _, pkg := range prog.Pkgs {
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				diags = append(diags, batchViewFunc(pkg, fd)...)
			}
		}
	}
	return diags
}

// isNextBatchCall reports whether the call is a batch pull: a function
// or method named next (or nextLive) whose first result is a pointer
// to a named Batch.
func isNextBatchCall(info *types.Info, call *ast.CallExpr) bool {
	var name string
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		name = fun.Name
	case *ast.SelectorExpr:
		name = fun.Sel.Name
	default:
		return false
	}
	if name != "next" && name != "nextLive" {
		return false
	}
	tv, ok := info.Types[call]
	if !ok {
		return false
	}
	first := tv.Type
	if tuple, ok := tv.Type.(*types.Tuple); ok {
		if tuple.Len() < 1 {
			return false
		}
		first = tuple.At(0).Type()
	}
	ptr, ok := first.(*types.Pointer)
	if !ok {
		return false
	}
	n := namedOf(ptr.Elem())
	return n != nil && n.Obj().Name() == "Batch"
}

func batchViewFunc(pkg *Package, fd *ast.FuncDecl) []Diagnostic {
	info := pkg.Info

	// Pass 1: collect tainted batch-view variables.
	tainted := make(map[types.Object]bool)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		assign, ok := n.(*ast.AssignStmt)
		if !ok || len(assign.Rhs) != 1 || len(assign.Lhs) == 0 {
			return true
		}
		call, ok := ast.Unparen(assign.Rhs[0]).(*ast.CallExpr)
		if !ok || !isNextBatchCall(info, call) {
			return true
		}
		if id, ok := assign.Lhs[0].(*ast.Ident); ok && id.Name != "_" {
			if obj := identObj(info, id); obj != nil {
				tainted[obj] = true
			}
		}
		return true
	})
	if len(tainted) == 0 {
		return nil
	}

	isTainted := func(expr ast.Expr) (types.Object, bool) {
		id, ok := ast.Unparen(expr).(*ast.Ident)
		if !ok {
			return nil, false
		}
		obj := identObj(info, id)
		return obj, obj != nil && tainted[obj]
	}

	var diags []Diagnostic
	report := func(n ast.Node, obj types.Object, how string) {
		diags = append(diags, Diagnostic{
			Pos:      pkg.Fset.Position(n.Pos()),
			Analyzer: "batchview",
			Message: fmt.Sprintf("*Batch view %q from next is %s without cloneBatch: the producer reuses the batch on the next pull — retain cloneBatch(%s) instead",
				obj.Name(), how, obj.Name()),
		})
	}

	// Pass 2: flag retention of tainted variables. A cloneBatch(b) (or
	// any other call) on the right-hand side is not a bare identifier
	// and therefore never flags.
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			if id, ok := ast.Unparen(n.Fun).(*ast.Ident); ok && id.Name == "append" && len(n.Args) > 1 {
				for _, arg := range n.Args[1:] {
					if obj, ok := isTainted(arg); ok {
						report(arg, obj, "appended to a slice")
					}
				}
			}
		case *ast.AssignStmt:
			for i, r := range n.Rhs {
				obj, ok := isTainted(r)
				if !ok {
					continue
				}
				li := i
				if len(n.Lhs) != len(n.Rhs) {
					li = 0
				}
				switch n.Lhs[li].(type) {
				case *ast.SelectorExpr:
					report(r, obj, "stored into a struct field")
				case *ast.IndexExpr:
					report(r, obj, "stored into a slice or map element")
				case *ast.StarExpr:
					report(r, obj, "stored through a pointer")
				}
			}
		case *ast.SendStmt:
			if obj, ok := isTainted(n.Value); ok {
				report(n.Value, obj, "sent over a channel")
			}
		case *ast.CompositeLit:
			// rowRef{b: b, i: i} is the engine's sanctioned transient
			// row-addressing view, built and consumed within one pull;
			// flagging it would drown the real retention sites.
			if tv, ok := info.Types[n]; ok {
				if named := namedOf(tv.Type); named != nil && named.Obj().Name() == "rowRef" {
					return true
				}
			}
			for _, elt := range n.Elts {
				v := elt
				if kv, ok := elt.(*ast.KeyValueExpr); ok {
					v = kv.Value
				}
				if obj, ok := isTainted(v); ok {
					report(v, obj, "captured in a composite literal")
				}
			}
		}
		return true
	})
	return diags
}
