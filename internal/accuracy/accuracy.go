// Package accuracy implements the thematic-accuracy validation protocol
// of the paper's Section 4.1 (Table 1): MSG/SEVIRI hotspot products are
// cross-validated against MODIS hotspots by (i) merging 30 minutes of
// MSG acquisitions around each MODIS overpass, (ii) overlaying the MODIS
// points with the MSG polygons using a 700 m tolerance, and (iii)
// reporting the omission error (MODIS fires the MSG product misses) and
// the false-alarm rate (MSG hotspots MODIS does not confirm).
package accuracy

import (
	"time"

	"repro/internal/geom"
	"repro/internal/modis"
	"repro/internal/products"
	"repro/internal/seviri"
)

// ToleranceKm is the paper's overlay tolerance: "with 700 m tolerance
// (accounting for the 1 km pixel size of MODIS)".
const ToleranceKm = 0.7

// MergeWindow is the MSG aggregation span: "we merged 30 minutes of MSG
// acquisitions ... around the corresponding MODIS acquisition times".
const MergeWindow = 30 * time.Minute

// Row is one line of Table 1.
type Row struct {
	Label string
	// TotalMODIS is the MODIS hotspot count over the window.
	TotalMODIS int
	// MODISDetectedByMSG counts MODIS hotspots falling inside MSG
	// polygons (700 m tolerance).
	MODISDetectedByMSG int
	// OmissionPct = 100 × (1 − detected/total).
	OmissionPct float64
	// TotalMSG is the MSG hotspot count over the window.
	TotalMSG int
	// MSGDetectedByMODIS counts MSG hotspots confirmed by MODIS points.
	MSGDetectedByMODIS int
	// FalseAlarmPct = 100 × (1 − confirmed/total).
	FalseAlarmPct float64
}

// Evaluate runs the protocol: msgProducts are the per-acquisition
// products of one chain variant; modisByOverpass the reference points.
func Evaluate(label string, msgProducts []*products.Product, modisByOverpass map[time.Time][]modis.Hotspot) Row {
	row := Row{Label: label}
	tolDegLon := ToleranceKm / seviri.KmPerDegLon
	tolDegLat := ToleranceKm / seviri.KmPerDegLat
	tol := tolDegLon
	if tolDegLat > tol {
		tol = tolDegLat
	}

	for opTime, points := range modisByOverpass {
		// Merge MSG hotspots within ±15 min of the overpass.
		var msg []products.Hotspot
		for _, p := range msgProducts {
			d := p.AcquiredAt.Sub(opTime)
			if d < 0 {
				d = -d
			}
			if d <= MergeWindow/2 {
				msg = append(msg, p.Hotspots...)
			}
		}
		row.TotalMODIS += len(points)
		row.TotalMSG += len(msg)

		// MODIS points inside (buffered) MSG polygons.
		for _, pt := range points {
			for _, h := range msg {
				if h.Geometry.Envelope().Buffer(tol).ContainsPoint(pt.Location) &&
					pointNearPolygon(pt.Location, h.Geometry, tol) {
					row.MODISDetectedByMSG++
					break
				}
			}
		}
		// MSG hotspots confirmed by at least one MODIS point.
		for _, h := range msg {
			for _, pt := range points {
				if h.Geometry.Envelope().Buffer(tol).ContainsPoint(pt.Location) &&
					pointNearPolygon(pt.Location, h.Geometry, tol) {
					row.MSGDetectedByMODIS++
					break
				}
			}
		}
	}
	if row.TotalMODIS > 0 {
		row.OmissionPct = 100 * (1 - float64(row.MODISDetectedByMSG)/float64(row.TotalMODIS))
	}
	if row.TotalMSG > 0 {
		row.FalseAlarmPct = 100 * (1 - float64(row.MSGDetectedByMODIS)/float64(row.TotalMSG))
	}
	return row
}

// pointNearPolygon reports whether p lies in poly or within tol of it.
func pointNearPolygon(p geom.Point, poly geom.Polygon, tol float64) bool {
	if geom.PointInPolygon(p, poly) {
		return true
	}
	return geom.Distance(p, poly) <= tol
}
