package accuracy

import (
	"math"
	"testing"
	"time"

	"repro/internal/geom"
	"repro/internal/modis"
	"repro/internal/products"
)

func msgProduct(at time.Time, centres ...[2]float64) *products.Product {
	p := &products.Product{Sensor: "MSG1", Chain: "test", AcquiredAt: at}
	for i, c := range centres {
		p.Hotspots = append(p.Hotspots, products.Hotspot{
			ID:       string(rune('a' + i)),
			Geometry: geom.NewSquare(c[0], c[1], 0.04),
		})
	}
	return p
}

func TestEvaluatePerfectAgreement(t *testing.T) {
	op := time.Date(2007, 8, 24, 11, 0, 0, 0, time.UTC)
	// MODIS point at the centre of the only MSG pixel.
	ref := map[time.Time][]modis.Hotspot{
		op: {{Platform: "Terra", Time: op, Location: geom.Point{X: 22.0, Y: 38.0}}},
	}
	msg := []*products.Product{msgProduct(op.Add(5*time.Minute), [2]float64{22.0, 38.0})}
	row := Evaluate("perfect", msg, ref)
	if row.OmissionPct != 0 || row.FalseAlarmPct != 0 {
		t.Fatalf("perfect agreement: %+v", row)
	}
	if row.TotalMODIS != 1 || row.TotalMSG != 1 {
		t.Fatalf("totals: %+v", row)
	}
}

func TestEvaluateOmissionAndFalseAlarm(t *testing.T) {
	op := time.Date(2007, 8, 24, 11, 0, 0, 0, time.UTC)
	ref := map[time.Time][]modis.Hotspot{
		op: {
			{Location: geom.Point{X: 22.0, Y: 38.0}}, // detected by MSG
			{Location: geom.Point{X: 25.0, Y: 36.0}}, // missed: omission
		},
	}
	msg := []*products.Product{msgProduct(op,
		[2]float64{22.0, 38.0}, // confirmed
		[2]float64{20.5, 39.5}, // unconfirmed: false alarm
	)}
	row := Evaluate("mixed", msg, ref)
	if math.Abs(row.OmissionPct-50) > 1e-9 {
		t.Fatalf("omission = %g", row.OmissionPct)
	}
	if math.Abs(row.FalseAlarmPct-50) > 1e-9 {
		t.Fatalf("false alarms = %g", row.FalseAlarmPct)
	}
}

func TestMergeWindowBoundaries(t *testing.T) {
	op := time.Date(2007, 8, 24, 11, 0, 0, 0, time.UTC)
	ref := map[time.Time][]modis.Hotspot{
		op: {{Location: geom.Point{X: 22.0, Y: 38.0}}},
	}
	// A product 20 minutes away falls outside the ±15-min merge window.
	far := msgProduct(op.Add(20*time.Minute), [2]float64{22.0, 38.0})
	row := Evaluate("outside", []*products.Product{far}, ref)
	if row.TotalMSG != 0 {
		t.Fatalf("out-of-window product merged: %+v", row)
	}
	if row.OmissionPct != 100 {
		t.Fatalf("omission = %g, want 100", row.OmissionPct)
	}
	// Exactly at the window edge it merges.
	edge := msgProduct(op.Add(MergeWindow/2), [2]float64{22.0, 38.0})
	row2 := Evaluate("edge", []*products.Product{edge}, ref)
	if row2.TotalMSG != 1 {
		t.Fatalf("edge product not merged: %+v", row2)
	}
}

func TestToleranceBuffer(t *testing.T) {
	op := time.Date(2007, 8, 24, 11, 0, 0, 0, time.UTC)
	// A MODIS point ~500 m east of the pixel edge: inside the 700 m
	// tolerance.
	pixelEdge := 22.0 + 0.02
	nearPoint := geom.Point{X: pixelEdge + 0.5/88.0, Y: 38.0}
	farPoint := geom.Point{X: pixelEdge + 2.0/88.0, Y: 38.0}
	msg := []*products.Product{msgProduct(op, [2]float64{22.0, 38.0})}
	rowNear := Evaluate("near", msg, map[time.Time][]modis.Hotspot{op: {{Location: nearPoint}}})
	if rowNear.MODISDetectedByMSG != 1 {
		t.Fatalf("500 m point not matched: %+v", rowNear)
	}
	rowFar := Evaluate("far", msg, map[time.Time][]modis.Hotspot{op: {{Location: farPoint}}})
	if rowFar.MODISDetectedByMSG != 0 {
		t.Fatalf("2 km point matched: %+v", rowFar)
	}
}
