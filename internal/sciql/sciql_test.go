package sciql

import (
	"math"
	"testing"

	"repro/internal/array"
)

func mustExec(t *testing.T, e *Engine, src string) *Frame {
	t.Helper()
	f, err := e.Exec(src)
	if err != nil {
		t.Fatalf("exec: %v\nstatement:\n%s", err, src)
	}
	return f
}

func TestCreateInsertSelect(t *testing.T) {
	e := NewEngine()
	mustExec(t, e, `CREATE ARRAY a (x INTEGER DIMENSION [0:4], y INTEGER DIMENSION [0:3], v FLOAT)`)
	mustExec(t, e, `INSERT INTO a VALUES (0,0,1), (1,0,2), (2,0,3), (0,1,10), (1,1,20)`)
	f := mustExec(t, e, `SELECT [x], [y], v FROM a`)
	if f.W != 4 || f.H != 3 {
		t.Fatalf("dims = %dx%d", f.W, f.H)
	}
	d, err := f.Dense("v")
	if err != nil {
		t.Fatal(err)
	}
	if d.Get(1, 1) != 20 || d.Get(2, 0) != 3 {
		t.Fatalf("values wrong: %g %g", d.Get(1, 1), d.Get(2, 0))
	}
}

func TestCreateArrayValidation(t *testing.T) {
	e := NewEngine()
	if _, err := e.Exec(`CREATE ARRAY bad (x INTEGER DIMENSION, v FLOAT)`); err == nil {
		t.Fatal("1-dimensional array should be rejected")
	}
	if _, err := e.Exec(`CREATE ARRAY bad (x INTEGER DIMENSION, y INTEGER DIMENSION)`); err == nil {
		t.Fatal("array without value column should be rejected")
	}
	mustExec(t, e, `CREATE ARRAY a (x INTEGER DIMENSION [0:2], y INTEGER DIMENSION [0:2], v FLOAT)`)
	if _, err := e.Exec(`CREATE ARRAY a (x INTEGER DIMENSION [0:2], y INTEGER DIMENSION [0:2], v FLOAT)`); err == nil {
		t.Fatal("duplicate CREATE should fail")
	}
}

func TestDropArray(t *testing.T) {
	e := NewEngine()
	mustExec(t, e, `CREATE ARRAY a (x INTEGER DIMENSION [0:2], y INTEGER DIMENSION [0:2], v FLOAT)`)
	mustExec(t, e, `DROP ARRAY a`)
	if _, err := e.Exec(`SELECT v FROM a`); err == nil {
		t.Fatal("dropped array should be unknown")
	}
	if _, err := e.Exec(`DROP ARRAY a`); err == nil {
		t.Fatal("double drop should fail")
	}
}

func TestInsertValuesOutOfRange(t *testing.T) {
	e := NewEngine()
	mustExec(t, e, `CREATE ARRAY a (x INTEGER DIMENSION [0:2], y INTEGER DIMENSION [0:2], v FLOAT)`)
	if _, err := e.Exec(`INSERT INTO a VALUES (5, 5, 1)`); err == nil {
		t.Fatal("out-of-range insert should fail")
	}
	if _, err := e.Exec(`INSERT INTO a VALUES (0, 0)`); err == nil {
		t.Fatal("short row should fail")
	}
}

func TestWhereCropping(t *testing.T) {
	e := NewEngine()
	d := array.New(10, 10)
	for y := 0; y < 10; y++ {
		for x := 0; x < 10; x++ {
			d.Set(x, y, float64(y*10+x))
		}
	}
	e.RegisterArray("img", d, "v")
	f := mustExec(t, e, `SELECT [x], [y], v FROM img WHERE x >= 2 AND x < 5 AND y >= 3 AND y < 6`)
	if f.W != 3 || f.H != 3 || f.X0 != 2 || f.Y0 != 3 {
		t.Fatalf("crop = origin(%d,%d) %dx%d", f.X0, f.Y0, f.W, f.H)
	}
	dd, _ := f.Dense("v")
	if dd.Get(2, 3) != 32 {
		t.Fatalf("cropped value = %g", dd.Get(2, 3))
	}
	// BETWEEN form.
	f2 := mustExec(t, e, `SELECT v FROM img WHERE x BETWEEN 2 AND 4 AND y BETWEEN 3 AND 5`)
	if f2.W != 3 || f2.H != 3 {
		t.Fatalf("between crop = %dx%d", f2.W, f2.H)
	}
}

func TestFromSliceSyntax(t *testing.T) {
	e := NewEngine()
	d := array.New(8, 8)
	d.Set(3, 3, 42)
	e.RegisterArray("img", d, "v")
	f := mustExec(t, e, `SELECT v FROM img[2:5][2:5]`)
	if f.W != 3 || f.H != 3 {
		t.Fatalf("slice = %dx%d", f.W, f.H)
	}
	dd, _ := f.Dense("v")
	if dd.Get(3, 3) != 42 {
		t.Fatalf("sliced value = %g", dd.Get(3, 3))
	}
}

func TestValuePredicateMasksCells(t *testing.T) {
	e := NewEngine()
	d := array.New(4, 1)
	for x := 0; x < 4; x++ {
		d.Set(x, 0, float64(x))
	}
	e.RegisterArray("a", d, "v")
	f := mustExec(t, e, `SELECT v FROM a WHERE v >= 2`)
	dd, _ := f.Dense("v")
	if dd.Valid(0, 0) || dd.Valid(1, 0) {
		t.Fatal("cells failing the predicate should be invalid")
	}
	if !dd.Valid(2, 0) || !dd.Valid(3, 0) {
		t.Fatal("cells passing the predicate should be valid")
	}
}

func TestArithmeticAndCase(t *testing.T) {
	e := NewEngine()
	d := array.New(3, 1)
	d.Set(0, 0, 1)
	d.Set(1, 0, 5)
	d.Set(2, 0, 9)
	e.RegisterArray("a", d, "v")
	f := mustExec(t, e, `
SELECT CASE WHEN v > 6 THEN 2 WHEN v > 3 THEN 1 ELSE 0 END AS class,
       v * 2 + 1 AS scaled
FROM a`)
	cls, _ := f.Dense("class")
	if cls.Get(0, 0) != 0 || cls.Get(1, 0) != 1 || cls.Get(2, 0) != 2 {
		t.Fatalf("case results: %g %g %g", cls.Get(0, 0), cls.Get(1, 0), cls.Get(2, 0))
	}
	sc, _ := f.Dense("scaled")
	if sc.Get(1, 0) != 11 {
		t.Fatalf("scaled = %g", sc.Get(1, 0))
	}
}

func TestDimensionJoin(t *testing.T) {
	e := NewEngine()
	a := array.New(4, 4)
	b := array.New(4, 4)
	a.Fill(10)
	b.Fill(3)
	e.RegisterArray("t039", a, "v")
	e.RegisterArray("t108", b, "v")
	f := mustExec(t, e, `
SELECT [T039.x], [T039.y], T039.v AS v039, T108.v AS v108
FROM t039 AS T039 JOIN t108 AS T108
ON T039.x = T108.x AND T039.y = T108.y`)
	if f.W != 4 || f.H != 4 {
		t.Fatalf("join dims = %dx%d", f.W, f.H)
	}
	d1, _ := f.Dense("v039")
	d2, _ := f.Dense("v108")
	if d1.Get(2, 2) != 10 || d2.Get(2, 2) != 3 {
		t.Fatalf("join values = %g / %g", d1.Get(2, 2), d2.Get(2, 2))
	}
}

func TestJoinRejectsNonDimCondition(t *testing.T) {
	e := NewEngine()
	e.RegisterArray("a", array.New(2, 2), "v")
	e.RegisterArray("b", array.New(2, 2), "v")
	if _, err := e.Exec(`SELECT a.v FROM a JOIN b ON a.v = b.v`); err == nil {
		t.Fatal("value join should be rejected")
	}
}

func TestStructuralGroupingAvg(t *testing.T) {
	e := NewEngine()
	d := array.New(5, 5)
	d.Set(2, 2, 9) // single spike
	e.RegisterArray("a", d, "v")
	f := mustExec(t, e, `
SELECT [x], [y], AVG(v) AS m
FROM a
GROUP BY a[x-1:x+2][y-1:y+2]`)
	m, _ := f.Dense("m")
	if got := m.Get(2, 2); math.Abs(got-1) > 1e-9 {
		t.Fatalf("window mean at spike = %g, want 1", got)
	}
	if got := m.Get(0, 0); got != 0 {
		t.Fatalf("corner mean = %g", got)
	}
	// Corner window is 2x2=4 cells, none hot.
	if got := m.Get(4, 4); got != 0 {
		t.Fatalf("far corner = %g", got)
	}
	// At (1,1) the 3x3 window includes the spike: 9/9 = 1.
	if got := m.Get(1, 1); math.Abs(got-1) > 1e-9 {
		t.Fatalf("window mean near spike = %g", got)
	}
}

func TestStructuralGroupingSumMinMaxCount(t *testing.T) {
	e := NewEngine()
	d := array.New(3, 3)
	for y := 0; y < 3; y++ {
		for x := 0; x < 3; x++ {
			d.Set(x, y, float64(y*3+x+1)) // 1..9
		}
	}
	e.RegisterArray("a", d, "v")
	f := mustExec(t, e, `
SELECT SUM(v) AS s, MIN(v) AS lo, MAX(v) AS hi, COUNT(*) AS n
FROM a GROUP BY a[x-1:x+2][y-1:y+2]`)
	s, _ := f.Dense("s")
	lo, _ := f.Dense("lo")
	hi, _ := f.Dense("hi")
	n, _ := f.Dense("n")
	if s.Get(1, 1) != 45 {
		t.Fatalf("centre sum = %g, want 45", s.Get(1, 1))
	}
	if lo.Get(1, 1) != 1 || hi.Get(1, 1) != 9 {
		t.Fatalf("centre min/max = %g/%g", lo.Get(1, 1), hi.Get(1, 1))
	}
	if n.Get(0, 0) != 4 || n.Get(1, 1) != 9 || n.Get(2, 0) != 4 {
		t.Fatalf("counts = %g %g %g", n.Get(0, 0), n.Get(1, 1), n.Get(2, 0))
	}
	if s.Get(0, 0) != 1+2+4+5 {
		t.Fatalf("corner sum = %g", s.Get(0, 0))
	}
}

func TestAggregateOutsideGroupByFails(t *testing.T) {
	e := NewEngine()
	e.RegisterArray("a", array.New(2, 2), "v")
	if _, err := e.Exec(`SELECT AVG(v) FROM a`); err == nil {
		t.Fatal("aggregate without structural GROUP BY should fail")
	}
}

func TestTableFunction(t *testing.T) {
	e := NewEngine()
	e.RegisterFunc("make_image", func(args []string) (*Frame, error) {
		d := array.New(2, 2)
		d.Fill(7)
		return FromDense(d, "v"), nil
	})
	f := mustExec(t, e, `SELECT v FROM make_image('x') AS img`)
	d, _ := f.Dense("v")
	if d.Get(0, 0) != 7 {
		t.Fatalf("table function value = %g", d.Get(0, 0))
	}
	if _, err := e.Exec(`SELECT v FROM no_such_fn('x') AS a`); err == nil {
		t.Fatal("unknown table function should fail")
	}
}

func TestInsertSelectIntoDeclaredArray(t *testing.T) {
	e := NewEngine()
	d := array.New(4, 4)
	d.Fill(2)
	e.RegisterArray("src", d, "v")
	mustExec(t, e, `CREATE ARRAY dst (x INTEGER DIMENSION, y INTEGER DIMENSION, v FLOAT)`)
	mustExec(t, e, `INSERT INTO dst SELECT v * 10 AS w FROM src`)
	f := mustExec(t, e, `SELECT v FROM dst`)
	dd, _ := f.Dense("v") // renamed to the declared column
	if dd.Get(1, 1) != 20 {
		t.Fatalf("stored value = %g", dd.Get(1, 1))
	}
}

func TestExecScript(t *testing.T) {
	e := NewEngine()
	f, err := e.ExecScript(`
CREATE ARRAY a (x INTEGER DIMENSION [0:2], y INTEGER DIMENSION [0:2], v FLOAT);
INSERT INTO a VALUES (0,0,1), (1,1,2);
SELECT v FROM a;
`)
	if err != nil {
		t.Fatal(err)
	}
	if f == nil || f.W != 2 {
		t.Fatalf("script result = %+v", f)
	}
}

// figure4Query is the paper's Figure 4 hotspot-classification query with
// its two listing typos fixed (stray ';' and the v018_mean alias).
const figure4Query = `
SELECT [x], [y],
CASE
 WHEN v039 > 310 AND v039 - v108 > 10 AND v039_std_dev > 4 AND
      v108_std_dev < 2
 THEN 2
 WHEN v039 > 310 AND v039 - v108 > 8 AND v039_std_dev > 2.5 AND
      v108_std_dev < 2
 THEN 1
 ELSE 0
END AS confidence
FROM (
 SELECT [x], [y], v039, v108,
  SQRT( v039_sqr_mean - v039_mean * v039_mean ) AS v039_std_dev,
  SQRT( v108_sqr_mean - v108_mean * v108_mean ) AS v108_std_dev
 FROM (
  SELECT [x], [y], v039, v108,
   AVG( v039 ) AS v039_mean, AVG( v039 * v039 ) AS v039_sqr_mean,
   AVG( v108 ) AS v108_mean, AVG( v108 * v108 ) AS v108_sqr_mean
  FROM (
   SELECT [T039.x], [T039.y], T039.v AS v039, T108.v AS v108
   FROM hrit_T039_image_array AS T039
   JOIN hrit_T108_image_array AS T108
   ON T039.x = T108.x AND T039.y = T108.y
  ) AS image_array
  GROUP BY image_array[x-1:x+2][y-1:y+2]
 ) AS tmp1
) AS tmp2`

func TestFigure4ClassificationQuery(t *testing.T) {
	e := NewEngine()
	// Background: uniform 290 K in both bands — no fire anywhere.
	t039 := array.New(16, 16)
	t108 := array.New(16, 16)
	t039.Fill(290)
	t108.Fill(288)
	// Inject a fire pixel at (8,8): hot in 3.9µm, moderate in 10.8µm.
	t039.Set(8, 8, 340)
	t108.Set(8, 8, 292)
	e.RegisterArray("hrit_T039_image_array", t039, "v")
	e.RegisterArray("hrit_T108_image_array", t108, "v")

	f := mustExec(t, e, figure4Query)
	conf, err := f.Dense("confidence")
	if err != nil {
		t.Fatal(err)
	}
	if got := conf.Get(8, 8); got != 2 {
		t.Fatalf("fire pixel confidence = %g, want 2", got)
	}
	// Background must be quiet.
	for _, p := range [][2]int{{0, 0}, {15, 15}, {3, 12}} {
		if got := conf.Get(p[0], p[1]); got != 0 {
			t.Fatalf("background pixel (%d,%d) confidence = %g", p[0], p[1], got)
		}
	}
	// Immediate neighbours share the high std-dev window but not the
	// temperature threshold, so they stay 0.
	if got := conf.Get(7, 8); got != 0 {
		t.Fatalf("neighbour confidence = %g", got)
	}
}

func TestFigure4PotentialFire(t *testing.T) {
	e := NewEngine()
	t039 := array.New(16, 16)
	t108 := array.New(16, 16)
	t039.Fill(303)
	t108.Fill(297)
	// A weaker anomaly that passes the confidence-1 thresholds but not
	// the confidence-2 ones. For a single spike of height d over a flat
	// background, the 3x3 std-dev is d·√8/9 ≈ 0.314·d, so:
	//   v039 = 311.5 (> 310), spike 8.5 → std 2.67 ∈ (2.5, 4]
	//   v108 = 302.5, spike 5.5 → std 1.73 < 2
	//   diff = 9.0 ∈ (8, 10]  → confidence 1, not 2.
	t039.Set(8, 8, 311.5)
	t108.Set(8, 8, 302.5)
	e.RegisterArray("hrit_T039_image_array", t039, "v")
	e.RegisterArray("hrit_T108_image_array", t108, "v")
	f := mustExec(t, e, figure4Query)
	conf, _ := f.Dense("confidence")
	if got := conf.Get(8, 8); got != 1 {
		t.Fatalf("potential-fire confidence = %g, want 1", got)
	}
}

func TestParserErrors(t *testing.T) {
	for _, src := range []string{
		`SELECT FROM a`,
		`SELECT v`,
		`SELECT v FROM`,
		`CREATE ARRAY (x INTEGER DIMENSION, y INTEGER DIMENSION, v FLOAT)`,
		`INSERT INTO`,
		`SELECT v FROM a GROUP BY a[x-1:z+2][y-1:y+2]`,
		`SELECT v FROM a WHERE`,
		`SELECT CASE END FROM a`,
		`SELECT v FROM a[1:2]`,
	} {
		if _, err := ParseStmt(src); err == nil {
			t.Errorf("expected parse error for %q", src)
		}
	}
}

func TestLexerStringsAndComments(t *testing.T) {
	toks, err := lexAll(`SELECT 'it''s' -- comment
FROM t`)
	if err != nil {
		t.Fatal(err)
	}
	var str string
	for _, tk := range toks {
		if tk.kind == tString {
			str = tk.text
		}
	}
	if str != "it's" {
		t.Fatalf("string literal = %q", str)
	}
}

func TestAmbiguousColumnDetection(t *testing.T) {
	e := NewEngine()
	e.RegisterArray("a", array.New(2, 2), "v")
	e.RegisterArray("b", array.New(2, 2), "v")
	if _, err := e.Exec(`SELECT v FROM a JOIN b ON a.x = b.x AND a.y = b.y`); err == nil {
		t.Fatal("ambiguous column should be rejected")
	}
	// Qualified access works.
	mustExec(t, e, `SELECT a.v AS av, b.v AS bv FROM a JOIN b ON a.x = b.x AND a.y = b.y`)
}

func TestDimRefInExpression(t *testing.T) {
	e := NewEngine()
	e.RegisterArray("a", array.New(3, 2), "v")
	f := mustExec(t, e, `SELECT x + y * 10 AS code FROM a`)
	d, _ := f.Dense("code")
	if d.Get(2, 1) != 12 {
		t.Fatalf("code = %g, want 12", d.Get(2, 1))
	}
}

func TestScalarFunctions(t *testing.T) {
	e := NewEngine()
	d := array.New(1, 1)
	d.Set(0, 0, -9)
	e.RegisterArray("a", d, "v")
	f := mustExec(t, e, `SELECT ABS(v) AS a, SQRT(ABS(v)) AS s, POWER(2, 3) AS p, FLOOR(1.7) AS fl FROM a`)
	get := func(c string) float64 {
		dd, err := f.Dense(c)
		if err != nil {
			t.Fatal(err)
		}
		return dd.Get(0, 0)
	}
	if get("a") != 9 || get("s") != 3 || get("p") != 8 || get("fl") != 1 {
		t.Fatalf("scalar results: %g %g %g %g", get("a"), get("s"), get("p"), get("fl"))
	}
}
