package sciql

import (
	"fmt"
	"strconv"
	"strings"
)

// ParseStmt parses a single SciQL statement (a trailing ';' is allowed).
func ParseStmt(src string) (Stmt, error) {
	toks, err := lexAll(src)
	if err != nil {
		return nil, err
	}
	p := &sparser{toks: toks}
	s, err := p.statement()
	if err != nil {
		return nil, err
	}
	p.accept(tPunct, ";")
	if p.cur().kind != tEOF {
		return nil, p.errf("trailing tokens after statement")
	}
	return s, nil
}

// ParseScript parses a ';'-separated sequence of statements.
func ParseScript(src string) ([]Stmt, error) {
	toks, err := lexAll(src)
	if err != nil {
		return nil, err
	}
	p := &sparser{toks: toks}
	var out []Stmt
	for p.cur().kind != tEOF {
		s, err := p.statement()
		if err != nil {
			return nil, err
		}
		out = append(out, s)
		for p.accept(tPunct, ";") {
		}
	}
	return out, nil
}

type sparser struct {
	toks []tok
	pos  int
}

func (p *sparser) cur() tok { return p.toks[p.pos] }

func (p *sparser) peekAt(n int) tok {
	if p.pos+n >= len(p.toks) {
		return tok{kind: tEOF}
	}
	return p.toks[p.pos+n]
}

func (p *sparser) advance() tok {
	t := p.toks[p.pos]
	if t.kind != tEOF {
		p.pos++
	}
	return t
}

func (p *sparser) errf(format string, args ...any) error {
	return fmt.Errorf("sciql: line %d: %s (near %q)", p.cur().line,
		fmt.Sprintf(format, args...), p.cur().text)
}

func (p *sparser) isKw(kw string) bool {
	return p.cur().kind == tIdent && strings.EqualFold(p.cur().text, kw)
}

func (p *sparser) acceptKw(kw string) bool {
	if p.isKw(kw) {
		p.advance()
		return true
	}
	return false
}

func (p *sparser) expectKw(kw string) error {
	if !p.acceptKw(kw) {
		return p.errf("expected %s", kw)
	}
	return nil
}

func (p *sparser) accept(kind tokKind, text string) bool {
	if p.cur().kind == kind && p.cur().text == text {
		p.advance()
		return true
	}
	return false
}

func (p *sparser) expect(kind tokKind, text string) error {
	if !p.accept(kind, text) {
		return p.errf("expected %q", text)
	}
	return nil
}

func (p *sparser) ident() (string, error) {
	if p.cur().kind != tIdent {
		return "", p.errf("expected identifier")
	}
	return p.advance().text, nil
}

func (p *sparser) intLit() (int, error) {
	neg := p.accept(tOp, "-")
	if p.cur().kind != tNumber {
		return 0, p.errf("expected integer")
	}
	n, err := strconv.Atoi(p.advance().text)
	if err != nil {
		return 0, p.errf("bad integer: %v", err)
	}
	if neg {
		n = -n
	}
	return n, nil
}

func (p *sparser) statement() (Stmt, error) {
	switch {
	case p.isKw("CREATE"):
		return p.createArray()
	case p.isKw("DROP"):
		p.advance()
		if err := p.expectKw("ARRAY"); err != nil {
			return nil, err
		}
		name, err := p.ident()
		if err != nil {
			return nil, err
		}
		return &DropArray{Name: name}, nil
	case p.isKw("INSERT"):
		return p.insert()
	case p.isKw("SELECT"):
		return p.selectStmt()
	default:
		return nil, p.errf("expected CREATE, DROP, INSERT or SELECT")
	}
}

func (p *sparser) createArray() (Stmt, error) {
	p.advance() // CREATE
	if err := p.expectKw("ARRAY"); err != nil {
		return nil, err
	}
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	if err := p.expect(tPunct, "("); err != nil {
		return nil, err
	}
	out := &CreateArray{Name: name}
	for {
		colName, err := p.ident()
		if err != nil {
			return nil, err
		}
		typ, err := p.ident()
		if err != nil {
			return nil, err
		}
		if p.acceptKw("DIMENSION") {
			d := DimDef{Name: colName}
			if p.accept(tPunct, "[") {
				d.HasRange = true
				if d.Lo, err = p.intLit(); err != nil {
					return nil, err
				}
				if err := p.expect(tPunct, ":"); err != nil {
					return nil, err
				}
				if d.Hi, err = p.intLit(); err != nil {
					return nil, err
				}
				if err := p.expect(tPunct, "]"); err != nil {
					return nil, err
				}
			}
			out.Dims = append(out.Dims, d)
		} else {
			out.Cols = append(out.Cols, ColDef{Name: colName, Type: strings.ToUpper(typ)})
		}
		if p.accept(tPunct, ",") {
			continue
		}
		break
	}
	if err := p.expect(tPunct, ")"); err != nil {
		return nil, err
	}
	if len(out.Dims) != 2 {
		return nil, fmt.Errorf("sciql: array %s wants exactly 2 dimensions, got %d", name, len(out.Dims))
	}
	if len(out.Cols) == 0 {
		return nil, fmt.Errorf("sciql: array %s wants at least one value column", name)
	}
	return out, nil
}

func (p *sparser) insert() (Stmt, error) {
	p.advance() // INSERT
	if err := p.expectKw("INTO"); err != nil {
		return nil, err
	}
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	if p.isKw("SELECT") {
		sel, err := p.selectStmt()
		if err != nil {
			return nil, err
		}
		return &InsertSelect{Name: name, Sel: sel.(*Select)}, nil
	}
	if err := p.expectKw("VALUES"); err != nil {
		return nil, err
	}
	out := &InsertValues{Name: name}
	for {
		if err := p.expect(tPunct, "("); err != nil {
			return nil, err
		}
		var row []float64
		for {
			neg := p.accept(tOp, "-")
			if p.cur().kind != tNumber {
				return nil, p.errf("expected number in VALUES")
			}
			v, err := strconv.ParseFloat(p.advance().text, 64)
			if err != nil {
				return nil, p.errf("bad number: %v", err)
			}
			if neg {
				v = -v
			}
			row = append(row, v)
			if p.accept(tPunct, ",") {
				continue
			}
			break
		}
		if err := p.expect(tPunct, ")"); err != nil {
			return nil, err
		}
		out.Rows = append(out.Rows, row)
		if p.accept(tPunct, ",") {
			continue
		}
		break
	}
	return out, nil
}

func (p *sparser) selectStmt() (Stmt, error) {
	sel, err := p.selectBlock()
	if err != nil {
		return nil, err
	}
	return sel, nil
}

func (p *sparser) selectBlock() (*Select, error) {
	if err := p.expectKw("SELECT"); err != nil {
		return nil, err
	}
	out := &Select{}
	for {
		item, err := p.selectItem()
		if err != nil {
			return nil, err
		}
		out.Items = append(out.Items, item)
		if p.accept(tPunct, ",") {
			continue
		}
		break
	}
	if err := p.expectKw("FROM"); err != nil {
		return nil, err
	}
	from, err := p.fromClause()
	if err != nil {
		return nil, err
	}
	out.From = from
	if p.acceptKw("WHERE") {
		w, err := p.expr()
		if err != nil {
			return nil, err
		}
		out.Where = w
	}
	if p.acceptKw("GROUP") {
		if err := p.expectKw("BY"); err != nil {
			return nil, err
		}
		gs, err := p.groupSpec()
		if err != nil {
			return nil, err
		}
		out.GroupBy = gs
	}
	return out, nil
}

// selectItem parses "[x]", "[T039.x]", or "expr [AS alias]".
func (p *sparser) selectItem() (SelectItem, error) {
	if p.cur().kind == tPunct && p.cur().text == "[" {
		p.advance()
		q, err := p.ident()
		if err != nil {
			return SelectItem{}, err
		}
		item := SelectItem{Dim: q}
		if p.accept(tPunct, ".") {
			d, err := p.ident()
			if err != nil {
				return SelectItem{}, err
			}
			item.DimQualifier = q
			item.Dim = d
		}
		if err := p.expect(tPunct, "]"); err != nil {
			return SelectItem{}, err
		}
		if item.Dim != "x" && item.Dim != "y" {
			return SelectItem{}, fmt.Errorf("sciql: unknown dimension %q", item.Dim)
		}
		return item, nil
	}
	e, err := p.expr()
	if err != nil {
		return SelectItem{}, err
	}
	item := SelectItem{Expr: e}
	if p.acceptKw("AS") {
		a, err := p.ident()
		if err != nil {
			return SelectItem{}, err
		}
		item.Alias = a
	}
	return item, nil
}

func (p *sparser) fromClause() (FromClause, error) {
	left, err := p.fromSource()
	if err != nil {
		return nil, err
	}
	for p.acceptKw("JOIN") {
		right, err := p.fromSource()
		if err != nil {
			return nil, err
		}
		if err := p.expectKw("ON"); err != nil {
			return nil, err
		}
		cond, err := p.expr()
		if err != nil {
			return nil, err
		}
		left = &JoinRef{L: left, R: right, On: cond}
	}
	return left, nil
}

func (p *sparser) fromSource() (FromClause, error) {
	if p.accept(tPunct, "(") {
		sel, err := p.selectBlock()
		if err != nil {
			return nil, err
		}
		if err := p.expect(tPunct, ")"); err != nil {
			return nil, err
		}
		p.acceptKw("AS")
		alias, err := p.ident()
		if err != nil {
			return nil, err
		}
		return &SubqueryRef{Sel: sel, Alias: alias}, nil
	}
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	// Table function?
	if p.cur().kind == tPunct && p.cur().text == "(" {
		p.advance()
		f := &FuncRef{Name: strings.ToLower(name)}
		for !p.accept(tPunct, ")") {
			if p.cur().kind != tString {
				return nil, p.errf("table function arguments must be string literals")
			}
			f.Args = append(f.Args, p.advance().text)
			p.accept(tPunct, ",")
		}
		if p.acceptKw("AS") {
			if f.Alias, err = p.ident(); err != nil {
				return nil, err
			}
		}
		return f, nil
	}
	ref := &TableRef{Name: name}
	// Optional slice "[a:b][c:d]".
	if p.cur().kind == tPunct && p.cur().text == "[" {
		s := &SliceSpec{}
		p.advance()
		if s.X0, err = p.intLit(); err != nil {
			return nil, err
		}
		if err := p.expect(tPunct, ":"); err != nil {
			return nil, err
		}
		if s.X1, err = p.intLit(); err != nil {
			return nil, err
		}
		if err := p.expect(tPunct, "]"); err != nil {
			return nil, err
		}
		if err := p.expect(tPunct, "["); err != nil {
			return nil, err
		}
		if s.Y0, err = p.intLit(); err != nil {
			return nil, err
		}
		if err := p.expect(tPunct, ":"); err != nil {
			return nil, err
		}
		if s.Y1, err = p.intLit(); err != nil {
			return nil, err
		}
		if err := p.expect(tPunct, "]"); err != nil {
			return nil, err
		}
		ref.Slice = s
	}
	if p.acceptKw("AS") {
		if ref.Alias, err = p.ident(); err != nil {
			return nil, err
		}
	}
	return ref, nil
}

// groupSpec parses "target[x-1:x+2][y-1:y+2]".
func (p *sparser) groupSpec() (*GroupSpec, error) {
	target, err := p.ident()
	if err != nil {
		return nil, err
	}
	gs := &GroupSpec{Target: target}
	for i := 0; i < 2; i++ {
		if err := p.expect(tPunct, "["); err != nil {
			return nil, err
		}
		dim, lo, err := p.relOffset()
		if err != nil {
			return nil, err
		}
		if err := p.expect(tPunct, ":"); err != nil {
			return nil, err
		}
		dim2, hi, err := p.relOffset()
		if err != nil {
			return nil, err
		}
		if err := p.expect(tPunct, "]"); err != nil {
			return nil, err
		}
		if dim != dim2 {
			return nil, fmt.Errorf("sciql: mismatched dimensions %q/%q in GROUP BY window", dim, dim2)
		}
		switch dim {
		case "x":
			gs.XLo, gs.XHi = lo, hi
		case "y":
			gs.YLo, gs.YHi = lo, hi
		default:
			return nil, fmt.Errorf("sciql: unknown dimension %q in GROUP BY", dim)
		}
	}
	return gs, nil
}

// relOffset parses "x", "x-1", "x+2".
func (p *sparser) relOffset() (dim string, off int, err error) {
	dim, err = p.ident()
	if err != nil {
		return "", 0, err
	}
	switch {
	case p.accept(tOp, "-"):
		n, err := p.intLit()
		if err != nil {
			return "", 0, err
		}
		return dim, -n, nil
	case p.accept(tOp, "+"):
		n, err := p.intLit()
		if err != nil {
			return "", 0, err
		}
		return dim, n, nil
	default:
		return dim, 0, nil
	}
}

// --- expressions ---

func (p *sparser) expr() (Expr, error) { return p.orExpr() }

func (p *sparser) orExpr() (Expr, error) {
	l, err := p.andExpr()
	if err != nil {
		return nil, err
	}
	for p.acceptKw("OR") {
		r, err := p.andExpr()
		if err != nil {
			return nil, err
		}
		l = &BinExpr{Op: "OR", L: l, R: r}
	}
	return l, nil
}

func (p *sparser) andExpr() (Expr, error) {
	l, err := p.notExpr()
	if err != nil {
		return nil, err
	}
	for p.acceptKw("AND") {
		r, err := p.notExpr()
		if err != nil {
			return nil, err
		}
		l = &BinExpr{Op: "AND", L: l, R: r}
	}
	return l, nil
}

func (p *sparser) notExpr() (Expr, error) {
	if p.acceptKw("NOT") {
		x, err := p.notExpr()
		if err != nil {
			return nil, err
		}
		return &UnaryExpr{Op: "NOT", X: x}, nil
	}
	return p.comparison()
}

func (p *sparser) comparison() (Expr, error) {
	l, err := p.additive()
	if err != nil {
		return nil, err
	}
	if p.isKw("BETWEEN") {
		p.advance()
		lo, err := p.additive()
		if err != nil {
			return nil, err
		}
		if err := p.expectKw("AND"); err != nil {
			return nil, err
		}
		hi, err := p.additive()
		if err != nil {
			return nil, err
		}
		return &BetweenExpr{X: l, Lo: lo, Hi: hi}, nil
	}
	if t := p.cur(); t.kind == tOp {
		switch t.text {
		case "=", "<>", "<", "<=", ">", ">=":
			p.advance()
			r, err := p.additive()
			if err != nil {
				return nil, err
			}
			return &BinExpr{Op: t.text, L: l, R: r}, nil
		}
	}
	return l, nil
}

func (p *sparser) additive() (Expr, error) {
	l, err := p.multiplicative()
	if err != nil {
		return nil, err
	}
	for t := p.cur(); t.kind == tOp && (t.text == "+" || t.text == "-"); t = p.cur() {
		p.advance()
		r, err := p.multiplicative()
		if err != nil {
			return nil, err
		}
		l = &BinExpr{Op: t.text, L: l, R: r}
	}
	return l, nil
}

func (p *sparser) multiplicative() (Expr, error) {
	l, err := p.unary()
	if err != nil {
		return nil, err
	}
	for t := p.cur(); t.kind == tOp && (t.text == "*" || t.text == "/"); t = p.cur() {
		p.advance()
		r, err := p.unary()
		if err != nil {
			return nil, err
		}
		l = &BinExpr{Op: t.text, L: l, R: r}
	}
	return l, nil
}

func (p *sparser) unary() (Expr, error) {
	if p.accept(tOp, "-") {
		x, err := p.unary()
		if err != nil {
			return nil, err
		}
		return &UnaryExpr{Op: "-", X: x}, nil
	}
	return p.primary()
}

func (p *sparser) primary() (Expr, error) {
	t := p.cur()
	switch t.kind {
	case tNumber:
		p.advance()
		v, err := strconv.ParseFloat(t.text, 64)
		if err != nil {
			return nil, p.errf("bad number: %v", err)
		}
		return &NumLit{V: v}, nil
	case tPunct:
		if t.text == "(" {
			p.advance()
			e, err := p.expr()
			if err != nil {
				return nil, err
			}
			if err := p.expect(tPunct, ")"); err != nil {
				return nil, err
			}
			return e, nil
		}
		if t.text == "[" {
			// Dimension reference in expression position.
			p.advance()
			q, err := p.ident()
			if err != nil {
				return nil, err
			}
			ref := &DimRef{Name: q}
			if p.accept(tPunct, ".") {
				d, err := p.ident()
				if err != nil {
					return nil, err
				}
				ref.Qualifier = q
				ref.Name = d
			}
			if err := p.expect(tPunct, "]"); err != nil {
				return nil, err
			}
			return ref, nil
		}
		return nil, p.errf("unexpected %q in expression", t.text)
	case tIdent:
		upper := strings.ToUpper(t.text)
		if upper == "CASE" {
			return p.caseExpr()
		}
		// Function call?
		if p.peekAt(1).kind == tPunct && p.peekAt(1).text == "(" {
			name := upper
			p.advance()
			p.advance()
			f := &FuncExpr{Name: name}
			if p.accept(tOp, "*") {
				// COUNT(*)
				if err := p.expect(tPunct, ")"); err != nil {
					return nil, err
				}
				return f, nil
			}
			for !p.accept(tPunct, ")") {
				arg, err := p.expr()
				if err != nil {
					return nil, err
				}
				f.Args = append(f.Args, arg)
				p.accept(tPunct, ",")
			}
			return f, nil
		}
		// Column reference, possibly qualified; bare x/y are dimensions.
		name := t.text
		p.advance()
		if p.accept(tPunct, ".") {
			member, err := p.ident()
			if err != nil {
				return nil, err
			}
			if member == "x" || member == "y" {
				return &DimRef{Qualifier: name, Name: member}, nil
			}
			return &ColRef{Qualifier: name, Name: member}, nil
		}
		if name == "x" || name == "y" {
			return &DimRef{Name: name}, nil
		}
		return &ColRef{Name: name}, nil
	default:
		return nil, p.errf("unexpected token in expression")
	}
}

func (p *sparser) caseExpr() (Expr, error) {
	p.advance() // CASE
	out := &CaseExpr{}
	for p.acceptKw("WHEN") {
		cond, err := p.expr()
		if err != nil {
			return nil, err
		}
		if err := p.expectKw("THEN"); err != nil {
			return nil, err
		}
		then, err := p.expr()
		if err != nil {
			return nil, err
		}
		out.Whens = append(out.Whens, CaseWhen{Cond: cond, Then: then})
	}
	if len(out.Whens) == 0 {
		return nil, p.errf("CASE wants at least one WHEN")
	}
	if p.acceptKw("ELSE") {
		e, err := p.expr()
		if err != nil {
			return nil, err
		}
		out.Else = e
	}
	if err := p.expectKw("END"); err != nil {
		return nil, err
	}
	return out, nil
}
