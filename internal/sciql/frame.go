package sciql

import (
	"fmt"

	"repro/internal/array"
)

// Frame is the executor's working relation: a rectangular 2-D domain with
// named value columns, all sharing the domain. A stored SciQL array is a
// Frame with the declared value columns; subquery results are Frames with
// computed columns.
type Frame struct {
	X0, Y0 int // dimension origin
	W, H   int
	cols   []Column
	valid  []bool // nil = fully valid
}

// Column is one named value column, optionally qualified by the alias of
// the source that produced it.
type Column struct {
	Qualifier string
	Name      string
	Data      []float64
}

// NewFrame returns an empty frame with the given domain.
func NewFrame(x0, y0, w, h int) *Frame {
	return &Frame{X0: x0, Y0: y0, W: w, H: h}
}

// Len returns the cell count.
func (f *Frame) Len() int { return f.W * f.H }

// Columns returns the column descriptors in order.
func (f *Frame) Columns() []Column { return f.cols }

// ColumnNames returns the unqualified column names in order.
func (f *Frame) ColumnNames() []string {
	out := make([]string, len(f.cols))
	for i, c := range f.cols {
		out[i] = c.Name
	}
	return out
}

// AddColumn appends a column; the data length must match the domain.
func (f *Frame) AddColumn(qualifier, name string, data []float64) error {
	if len(data) != f.Len() {
		return fmt.Errorf("sciql: column %q has %d cells for a %dx%d frame",
			name, len(data), f.W, f.H)
	}
	f.cols = append(f.cols, Column{Qualifier: qualifier, Name: name, Data: data})
	return nil
}

// Resolve finds a column by optional qualifier and name.
func (f *Frame) Resolve(qualifier, name string) ([]float64, error) {
	var found []float64
	matches := 0
	for _, c := range f.cols {
		if c.Name != name {
			continue
		}
		if qualifier != "" && c.Qualifier != qualifier {
			continue
		}
		found = c.Data
		matches++
	}
	switch {
	case matches == 0:
		if qualifier != "" {
			return nil, fmt.Errorf("sciql: unknown column %s.%s", qualifier, name)
		}
		return nil, fmt.Errorf("sciql: unknown column %q", name)
	case matches > 1 && qualifier == "":
		return nil, fmt.Errorf("sciql: ambiguous column %q", name)
	default:
		return found, nil
	}
}

// DimColumn materialises the x or y dimension as a per-cell column.
func (f *Frame) DimColumn(dim string) ([]float64, error) {
	out := make([]float64, f.Len())
	switch dim {
	case "x":
		for y := 0; y < f.H; y++ {
			for x := 0; x < f.W; x++ {
				out[y*f.W+x] = float64(f.X0 + x)
			}
		}
	case "y":
		for y := 0; y < f.H; y++ {
			for x := 0; x < f.W; x++ {
				out[y*f.W+x] = float64(f.Y0 + y)
			}
		}
	default:
		return nil, fmt.Errorf("sciql: unknown dimension %q", dim)
	}
	return out, nil
}

// Crop returns the sub-frame covering [x0,x1) × [y0,y1) in absolute
// dimension coordinates, clamped to the frame.
func (f *Frame) Crop(x0, x1, y0, y1 int) *Frame {
	x0 = max(x0, f.X0)
	y0 = max(y0, f.Y0)
	x1 = min(x1, f.X0+f.W)
	y1 = min(y1, f.Y0+f.H)
	if x1 <= x0 || y1 <= y0 {
		return NewFrame(x0, y0, 0, 0)
	}
	out := NewFrame(x0, y0, x1-x0, y1-y0)
	for _, c := range f.cols {
		data := make([]float64, out.Len())
		for y := 0; y < out.H; y++ {
			srcOff := (y0-f.Y0+y)*f.W + (x0 - f.X0)
			copy(data[y*out.W:(y+1)*out.W], c.Data[srcOff:srcOff+out.W])
		}
		out.cols = append(out.cols, Column{Qualifier: c.Qualifier, Name: c.Name, Data: data})
	}
	if f.valid != nil {
		out.valid = make([]bool, out.Len())
		for y := 0; y < out.H; y++ {
			srcOff := (y0-f.Y0+y)*f.W + (x0 - f.X0)
			copy(out.valid[y*out.W:(y+1)*out.W], f.valid[srcOff:srcOff+out.W])
		}
	}
	return out
}

// Requalify rewrites every column's qualifier (used when a source gets an
// alias).
func (f *Frame) Requalify(alias string) {
	for i := range f.cols {
		f.cols[i].Qualifier = alias
	}
}

// Clone deep-copies the frame.
func (f *Frame) Clone() *Frame {
	out := NewFrame(f.X0, f.Y0, f.W, f.H)
	for _, c := range f.cols {
		out.cols = append(out.cols, Column{
			Qualifier: c.Qualifier, Name: c.Name,
			Data: append([]float64(nil), c.Data...),
		})
	}
	if f.valid != nil {
		out.valid = append([]bool(nil), f.valid...)
	}
	return out
}

// Valid reports per-cell validity by linear index.
func (f *Frame) Valid(i int) bool { return f.valid == nil || f.valid[i] }

// MaskInvalid marks cells where mask is zero as invalid.
func (f *Frame) MaskInvalid(mask []float64) {
	if f.valid == nil {
		f.valid = make([]bool, f.Len())
		for i := range f.valid {
			f.valid[i] = true
		}
	}
	for i, m := range mask {
		if m == 0 {
			f.valid[i] = false
		}
	}
}

// FromDense wraps a storage array as a single-column frame.
func FromDense(d *array.Dense, colName string) *Frame {
	x0, y0 := d.Origin()
	f := NewFrame(x0, y0, d.Width(), d.Height())
	f.cols = []Column{{Name: colName, Data: append([]float64(nil), d.Values()...)}}
	f.valid = denseValidity(d)
	return f
}

func denseValidity(d *array.Dense) []bool {
	x0, y0 := d.Origin()
	any := false
	out := make([]bool, d.Len())
	for y := 0; y < d.Height(); y++ {
		for x := 0; x < d.Width(); x++ {
			v := d.Valid(x0+x, y0+y)
			out[y*d.Width()+x] = v
			if !v {
				any = true
			}
		}
	}
	if !any {
		return nil
	}
	return out
}

// Dense extracts a column as a storage array. With a single column the
// name may be empty.
func (f *Frame) Dense(colName string) (*array.Dense, error) {
	var data []float64
	switch {
	case colName == "" && len(f.cols) == 1:
		data = f.cols[0].Data
	case colName == "":
		return nil, fmt.Errorf("sciql: frame has %d columns; name one", len(f.cols))
	default:
		var err error
		data, err = f.Resolve("", colName)
		if err != nil {
			return nil, err
		}
	}
	d := array.NewWithOrigin(f.X0, f.Y0, f.W, f.H)
	copy(d.Values(), data)
	if f.valid != nil {
		for y := 0; y < f.H; y++ {
			for x := 0; x < f.W; x++ {
				if !f.valid[y*f.W+x] {
					d.Invalidate(f.X0+x, f.Y0+y)
				}
			}
		}
	}
	return d, nil
}
