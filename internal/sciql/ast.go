package sciql

// Stmt is a parsed SciQL statement.
type Stmt interface{ stmt() }

// DimDef declares an array dimension, optionally bounded "[lo:hi)".
type DimDef struct {
	Name     string
	Lo, Hi   int
	HasRange bool
}

// ColDef declares a value column.
type ColDef struct {
	Name string
	Type string // FLOAT, DOUBLE, INTEGER — informational; storage is float64
}

// CreateArray is "CREATE ARRAY name (x INTEGER DIMENSION, ... , v FLOAT)".
type CreateArray struct {
	Name string
	Dims []DimDef
	Cols []ColDef
}

func (*CreateArray) stmt() {}

// DropArray is "DROP ARRAY name".
type DropArray struct{ Name string }

func (*DropArray) stmt() {}

// InsertValues is "INSERT INTO name VALUES (x, y, v), ...".
type InsertValues struct {
	Name string
	Rows [][]float64
}

func (*InsertValues) stmt() {}

// InsertSelect is "INSERT INTO name SELECT ...".
type InsertSelect struct {
	Name string
	Sel  *Select
}

func (*InsertSelect) stmt() {}

// Select is a SciQL query block.
type Select struct {
	Items   []SelectItem
	From    FromClause
	Where   Expr       // nil when absent
	GroupBy *GroupSpec // structural grouping, nil when absent
}

func (*Select) stmt() {}

// SelectItem is one projection entry: either a dimension projection
// "[x]" / "[T039.x]" or a value expression with an optional alias.
type SelectItem struct {
	DimQualifier string // for dimension items, the optional table alias
	Dim          string // "x" or "y"; empty for expression items
	Expr         Expr
	Alias        string
}

// GroupSpec is "GROUP BY target[xlo:xhi][ylo:yhi]" with relative offsets
// (hi exclusive).
type GroupSpec struct {
	Target             string
	XLo, XHi, YLo, YHi int
}

// FromClause is a data source.
type FromClause interface{ from() }

// TableRef names a stored array, optionally sliced.
type TableRef struct {
	Name  string
	Alias string
	Slice *SliceSpec
}

func (*TableRef) from() {}

// SliceSpec is "[x0:x1][y0:y1]" with absolute dimension bounds (hi
// exclusive).
type SliceSpec struct {
	X0, X1, Y0, Y1 int
}

// FuncRef invokes a registered table function, e.g. the data vault's
// "hrit_load_image('uri')".
type FuncRef struct {
	Name  string
	Args  []string // string literal arguments
	Alias string
}

func (*FuncRef) from() {}

// SubqueryRef is "(SELECT ...) AS alias".
type SubqueryRef struct {
	Sel   *Select
	Alias string
}

func (*SubqueryRef) from() {}

// JoinRef is "L JOIN R ON cond"; the executor requires the condition to
// be a dimension equi-join (x = x AND y = y), the only join the paper's
// chain uses.
type JoinRef struct {
	L, R FromClause
	On   Expr
}

func (*JoinRef) from() {}

// Expr is a scalar (per-cell) expression.
type Expr interface{ expr() }

// NumLit is a numeric literal.
type NumLit struct{ V float64 }

func (*NumLit) expr() {}

// ColRef references a value column, optionally qualified ("T039.v").
type ColRef struct {
	Qualifier string
	Name      string
}

func (*ColRef) expr() {}

// DimRef references a dimension (x or y) as a per-cell value.
type DimRef struct {
	Qualifier string
	Name      string // "x" or "y"
}

func (*DimRef) expr() {}

// BinExpr applies an infix operator: arithmetic, comparison, AND, OR.
type BinExpr struct {
	Op   string
	L, R Expr
}

func (*BinExpr) expr() {}

// UnaryExpr applies NOT or unary minus.
type UnaryExpr struct {
	Op string
	X  Expr
}

func (*UnaryExpr) expr() {}

// FuncExpr applies a scalar or aggregate function.
type FuncExpr struct {
	Name string // upper-cased
	Args []Expr
}

func (*FuncExpr) expr() {}

// CaseExpr is "CASE WHEN c THEN v ... ELSE e END".
type CaseExpr struct {
	Whens []CaseWhen
	Else  Expr
}

// CaseWhen is one WHEN/THEN arm.
type CaseWhen struct {
	Cond Expr
	Then Expr
}

func (*CaseExpr) expr() {}

// BetweenExpr is "x BETWEEN lo AND hi".
type BetweenExpr struct {
	X, Lo, Hi Expr
}

func (*BetweenExpr) expr() {}

var aggregateFns = map[string]bool{
	"AVG": true, "SUM": true, "COUNT": true, "MIN": true, "MAX": true,
}
