// Package sciql implements the SciQL subset used by the paper's
// processing chain (Zhang, Kersten, Ivanova, Nes — IDEAS 2011): SQL with
// arrays as first-class citizens, dimension projections "[x]", range
// slicing "a[x0:x1][y0:y1]", dimension joins, and the structural grouping
// "GROUP BY a[x-1:x+2][y-1:y+2]" that generalises window queries. The
// classification query of the paper's Figure 4 runs verbatim.
package sciql

import (
	"fmt"
	"strings"
)

type tokKind int

const (
	tEOF tokKind = iota
	tIdent
	tNumber
	tString
	tPunct // ( ) [ ] , ; . :
	tOp    // = <> != <= >= < > + - * /
)

type tok struct {
	kind tokKind
	text string
	line int
}

type lexer struct {
	src  string
	pos  int
	line int
}

func lexAll(src string) ([]tok, error) {
	l := &lexer{src: src, line: 1}
	var out []tok
	for {
		t, err := l.next()
		if err != nil {
			return nil, err
		}
		out = append(out, t)
		if t.kind == tEOF {
			return out, nil
		}
	}
}

func (l *lexer) errf(format string, args ...any) error {
	return fmt.Errorf("sciql: line %d: %s", l.line, fmt.Sprintf(format, args...))
}

func (l *lexer) skipWS() {
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		switch {
		case c == '\n':
			l.line++
			l.pos++
		case c == ' ' || c == '\t' || c == '\r':
			l.pos++
		case c == '-' && l.pos+1 < len(l.src) && l.src[l.pos+1] == '-':
			for l.pos < len(l.src) && l.src[l.pos] != '\n' {
				l.pos++
			}
		default:
			return
		}
	}
}

func isIdentByte(c byte) bool {
	return c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' ||
		c >= '0' && c <= '9' || c == '_'
}

func (l *lexer) next() (tok, error) {
	l.skipWS()
	if l.pos >= len(l.src) {
		return tok{kind: tEOF, line: l.line}, nil
	}
	c := l.src[l.pos]
	switch {
	case c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c == '_':
		start := l.pos
		for l.pos < len(l.src) && isIdentByte(l.src[l.pos]) {
			l.pos++
		}
		return tok{kind: tIdent, text: l.src[start:l.pos], line: l.line}, nil
	case c >= '0' && c <= '9':
		start := l.pos
		for l.pos < len(l.src) {
			c := l.src[l.pos]
			if c >= '0' && c <= '9' || c == '.' || c == 'e' || c == 'E' {
				l.pos++
			} else {
				break
			}
		}
		text := l.src[start:l.pos]
		if strings.HasSuffix(text, ".") {
			text = text[:len(text)-1]
			l.pos--
		}
		return tok{kind: tNumber, text: text, line: l.line}, nil
	case c == '\'':
		l.pos++
		var b strings.Builder
		for l.pos < len(l.src) {
			if l.src[l.pos] == '\'' {
				// Doubled quote escapes a quote.
				if l.pos+1 < len(l.src) && l.src[l.pos+1] == '\'' {
					b.WriteByte('\'')
					l.pos += 2
					continue
				}
				l.pos++
				return tok{kind: tString, text: b.String(), line: l.line}, nil
			}
			if l.src[l.pos] == '\n' {
				l.line++
			}
			b.WriteByte(l.src[l.pos])
			l.pos++
		}
		return tok{}, l.errf("unterminated string literal")
	case c == '(' || c == ')' || c == '[' || c == ']' || c == ',' || c == ';' || c == '.' || c == ':':
		l.pos++
		return tok{kind: tPunct, text: string(c), line: l.line}, nil
	case c == '=':
		l.pos++
		return tok{kind: tOp, text: "=", line: l.line}, nil
	case c == '<':
		l.pos++
		if l.pos < len(l.src) {
			switch l.src[l.pos] {
			case '=':
				l.pos++
				return tok{kind: tOp, text: "<=", line: l.line}, nil
			case '>':
				l.pos++
				return tok{kind: tOp, text: "<>", line: l.line}, nil
			}
		}
		return tok{kind: tOp, text: "<", line: l.line}, nil
	case c == '>':
		l.pos++
		if l.pos < len(l.src) && l.src[l.pos] == '=' {
			l.pos++
			return tok{kind: tOp, text: ">=", line: l.line}, nil
		}
		return tok{kind: tOp, text: ">", line: l.line}, nil
	case c == '!':
		if l.pos+1 < len(l.src) && l.src[l.pos+1] == '=' {
			l.pos += 2
			return tok{kind: tOp, text: "<>", line: l.line}, nil
		}
		return tok{}, l.errf("stray '!'")
	case c == '+' || c == '*' || c == '/' || c == '-':
		l.pos++
		return tok{kind: tOp, text: string(c), line: l.line}, nil
	default:
		return tok{}, l.errf("unexpected character %q", string(c))
	}
}
