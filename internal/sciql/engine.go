package sciql

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"repro/internal/array"
)

// TableFunc is a registered table-producing function callable from FROM
// clauses, e.g. the data vault's "hrit_load_image('uri')".
type TableFunc func(args []string) (*Frame, error)

// Engine is the SciQL execution engine: a catalog of named arrays plus
// registered table functions. It is the role MonetDB/SciQL plays in the
// paper's architecture.
type Engine struct {
	arrays   map[string]*Frame
	declared map[string]*CreateArray
	fns      map[string]TableFunc
}

// NewEngine returns an empty engine.
func NewEngine() *Engine {
	return &Engine{
		arrays:   make(map[string]*Frame),
		declared: make(map[string]*CreateArray),
		fns:      make(map[string]TableFunc),
	}
}

// RegisterFunc installs a table function under a (lower-cased) name.
func (e *Engine) RegisterFunc(name string, fn TableFunc) {
	e.fns[strings.ToLower(name)] = fn
}

// RegisterArray installs a Go-side array into the catalog as a
// single-column array.
func (e *Engine) RegisterArray(name string, d *array.Dense, colName string) {
	e.arrays[name] = FromDense(d, colName)
}

// RegisterFrame installs a multi-column frame into the catalog.
func (e *Engine) RegisterFrame(name string, f *Frame) { e.arrays[name] = f }

// Array fetches a stored array's column as a Dense.
func (e *Engine) Array(name, col string) (*array.Dense, error) {
	f, ok := e.arrays[name]
	if !ok {
		return nil, fmt.Errorf("sciql: unknown array %q", name)
	}
	return f.Dense(col)
}

// Frame fetches a stored frame.
func (e *Engine) Frame(name string) (*Frame, bool) {
	f, ok := e.arrays[name]
	return f, ok
}

// Names lists the catalog entries, sorted.
func (e *Engine) Names() []string {
	out := make([]string, 0, len(e.arrays))
	for n := range e.arrays {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Exec parses and executes one statement. SELECTs return the result
// frame; other statements return nil.
func (e *Engine) Exec(src string) (*Frame, error) {
	stmt, err := ParseStmt(src)
	if err != nil {
		return nil, err
	}
	return e.ExecStmt(stmt)
}

// ExecScript executes a ';'-separated script, returning the frame of the
// final SELECT (if any).
func (e *Engine) ExecScript(src string) (*Frame, error) {
	stmts, err := ParseScript(src)
	if err != nil {
		return nil, err
	}
	var last *Frame
	for _, s := range stmts {
		f, err := e.ExecStmt(s)
		if err != nil {
			return nil, err
		}
		if f != nil {
			last = f
		}
	}
	return last, nil
}

// ExecStmt executes a parsed statement.
func (e *Engine) ExecStmt(stmt Stmt) (*Frame, error) {
	switch s := stmt.(type) {
	case *CreateArray:
		return nil, e.createArray(s)
	case *DropArray:
		if _, ok := e.arrays[s.Name]; !ok {
			return nil, fmt.Errorf("sciql: DROP of unknown array %q", s.Name)
		}
		delete(e.arrays, s.Name)
		delete(e.declared, s.Name)
		return nil, nil
	case *InsertValues:
		return nil, e.insertValues(s)
	case *InsertSelect:
		f, err := e.evalSelect(s.Sel)
		if err != nil {
			return nil, err
		}
		return nil, e.storeInto(s.Name, f)
	case *Select:
		return e.evalSelect(s)
	default:
		return nil, fmt.Errorf("sciql: unsupported statement %T", stmt)
	}
}

func (e *Engine) createArray(s *CreateArray) error {
	if _, exists := e.arrays[s.Name]; exists {
		return fmt.Errorf("sciql: array %q already exists", s.Name)
	}
	x, y := s.Dims[0], s.Dims[1]
	var f *Frame
	if x.HasRange && y.HasRange {
		f = NewFrame(x.Lo, y.Lo, x.Hi-x.Lo, y.Hi-y.Lo)
	} else {
		f = NewFrame(0, 0, 0, 0)
	}
	for _, c := range s.Cols {
		if err := f.AddColumn("", c.Name, make([]float64, f.Len())); err != nil {
			return err
		}
	}
	e.arrays[s.Name] = f
	e.declared[s.Name] = s
	return nil
}

func (e *Engine) insertValues(s *InsertValues) error {
	f, ok := e.arrays[s.Name]
	if !ok {
		return fmt.Errorf("sciql: INSERT into unknown array %q", s.Name)
	}
	ncols := len(f.cols)
	for _, row := range s.Rows {
		if len(row) != 2+ncols {
			return fmt.Errorf("sciql: INSERT row wants %d values (x, y, %d columns), got %d",
				2+ncols, ncols, len(row))
		}
	}
	if f.Len() == 0 {
		// Unbounded array: size from the data's bounding box.
		minX, minY := math.Inf(1), math.Inf(1)
		maxX, maxY := math.Inf(-1), math.Inf(-1)
		for _, row := range s.Rows {
			minX = math.Min(minX, row[0])
			maxX = math.Max(maxX, row[0])
			minY = math.Min(minY, row[1])
			maxY = math.Max(maxY, row[1])
		}
		nf := NewFrame(int(minX), int(minY), int(maxX-minX)+1, int(maxY-minY)+1)
		for _, c := range f.cols {
			if err := nf.AddColumn("", c.Name, make([]float64, nf.Len())); err != nil {
				return err
			}
		}
		f = nf
		e.arrays[s.Name] = f
	}
	for _, row := range s.Rows {
		x, y := int(row[0]), int(row[1])
		if x < f.X0 || x >= f.X0+f.W || y < f.Y0 || y >= f.Y0+f.H {
			return fmt.Errorf("sciql: INSERT cell (%d,%d) outside array %q domain", x, y, s.Name)
		}
		i := (y-f.Y0)*f.W + (x - f.X0)
		for c := range f.cols {
			f.cols[c].Data[i] = row[2+c]
		}
	}
	return nil
}

// storeInto replaces the contents of a declared array with a select
// result, renaming result columns to the declared value columns.
func (e *Engine) storeInto(name string, f *Frame) error {
	decl, declared := e.declared[name]
	if _, exists := e.arrays[name]; !exists {
		return fmt.Errorf("sciql: INSERT into unknown array %q", name)
	}
	if declared {
		if len(f.cols) != len(decl.Cols) {
			return fmt.Errorf("sciql: INSERT SELECT produces %d columns, array %q has %d",
				len(f.cols), name, len(decl.Cols))
		}
		for i := range f.cols {
			f.cols[i].Name = decl.Cols[i].Name
			f.cols[i].Qualifier = ""
		}
	}
	e.arrays[name] = f
	return nil
}

// --- SELECT evaluation ---

func (e *Engine) evalSelect(s *Select) (*Frame, error) {
	base, err := e.evalFrom(s.From)
	if err != nil {
		return nil, err
	}

	// WHERE: split the conjunction into dimension-range constraints
	// (cropping, the paper's range query) and residual cell predicates
	// (validity masking).
	if s.Where != nil {
		crop, residual := splitWhere(s.Where)
		if crop != nil {
			base = base.Crop(crop.x0, crop.x1, crop.y0, crop.y1)
		}
		if residual != nil && base.Len() > 0 {
			mask, err := e.evalExprCol(base, residual, nil)
			if err != nil {
				return nil, err
			}
			base.MaskInvalid(mask)
		}
	}

	// Validate the GROUP BY target references this FROM.
	if s.GroupBy != nil {
		if !frameHasQualifier(base, s.GroupBy.Target) {
			return nil, fmt.Errorf("sciql: GROUP BY target %q is not a source of this query", s.GroupBy.Target)
		}
	}

	out := NewFrame(base.X0, base.Y0, base.W, base.H)
	out.valid = base.valid
	sawDim := map[string]bool{}
	anon := 0
	for _, item := range s.Items {
		if item.Dim != "" {
			sawDim[item.Dim] = true
			continue
		}
		col, err := e.evalExprCol(base, item.Expr, s.GroupBy)
		if err != nil {
			return nil, err
		}
		name := item.Alias
		if name == "" {
			if cr, ok := item.Expr.(*ColRef); ok {
				name = cr.Name
			} else {
				anon++
				name = fmt.Sprintf("col%d", anon)
			}
		}
		if err := out.AddColumn("", name, col); err != nil {
			return nil, err
		}
	}
	if len(out.cols) == 0 {
		return nil, fmt.Errorf("sciql: SELECT projects no value columns")
	}
	_ = sawDim // dimension projections are implicit in the array result
	return out, nil
}

func frameHasQualifier(f *Frame, q string) bool {
	for _, c := range f.cols {
		if c.Qualifier == q {
			return true
		}
	}
	// A single-source frame may be addressed by its stored name even when
	// unaliased.
	return len(f.cols) > 0 && f.cols[0].Qualifier == ""
}

func (e *Engine) evalFrom(fc FromClause) (*Frame, error) {
	switch src := fc.(type) {
	case *TableRef:
		stored, ok := e.arrays[src.Name]
		if !ok {
			return nil, fmt.Errorf("sciql: unknown array %q", src.Name)
		}
		f := stored.Clone()
		alias := src.Alias
		if alias == "" {
			alias = src.Name
		}
		f.Requalify(alias)
		if src.Slice != nil {
			f = f.Crop(src.Slice.X0, src.Slice.X1, src.Slice.Y0, src.Slice.Y1)
		}
		return f, nil
	case *FuncRef:
		fn, ok := e.fns[src.Name]
		if !ok {
			return nil, fmt.Errorf("sciql: unknown table function %q", src.Name)
		}
		f, err := fn(src.Args)
		if err != nil {
			return nil, fmt.Errorf("sciql: %s: %w", src.Name, err)
		}
		if src.Alias != "" {
			f.Requalify(src.Alias)
		}
		return f, nil
	case *SubqueryRef:
		f, err := e.evalSelect(src.Sel)
		if err != nil {
			return nil, err
		}
		f.Requalify(src.Alias)
		return f, nil
	case *JoinRef:
		l, err := e.evalFrom(src.L)
		if err != nil {
			return nil, err
		}
		r, err := e.evalFrom(src.R)
		if err != nil {
			return nil, err
		}
		if !isDimEquiJoin(src.On) {
			return nil, fmt.Errorf("sciql: only dimension equi-joins (x = x AND y = y) are supported")
		}
		return joinFrames(l, r)
	default:
		return nil, fmt.Errorf("sciql: unsupported FROM clause %T", fc)
	}
}

// isDimEquiJoin accepts conjunctions of equalities between dimension
// references, the paper's "ON T039.x = T108.x AND T039.y = T108.y".
func isDimEquiJoin(e Expr) bool {
	switch v := e.(type) {
	case *BinExpr:
		if v.Op == "AND" {
			return isDimEquiJoin(v.L) && isDimEquiJoin(v.R)
		}
		if v.Op == "=" {
			_, lOK := v.L.(*DimRef)
			_, rOK := v.R.(*DimRef)
			return lOK && rOK
		}
	}
	return false
}

// joinFrames aligns two frames on the overlap of their domains and merges
// their columns.
func joinFrames(l, r *Frame) (*Frame, error) {
	x0 := max(l.X0, r.X0)
	y0 := max(l.Y0, r.Y0)
	x1 := min(l.X0+l.W, r.X0+r.W)
	y1 := min(l.Y0+l.H, r.Y0+r.H)
	lc := l.Crop(x0, x1, y0, y1)
	rc := r.Crop(x0, x1, y0, y1)
	out := NewFrame(lc.X0, lc.Y0, lc.W, lc.H)
	out.cols = append(out.cols, lc.cols...)
	out.cols = append(out.cols, rc.cols...)
	if lc.valid != nil || rc.valid != nil {
		out.valid = make([]bool, out.Len())
		for i := range out.valid {
			out.valid[i] = lc.Valid(i) && rc.Valid(i)
		}
	}
	return out, nil
}

// cropBox accumulates dimension constraints from a WHERE conjunction.
type cropBox struct {
	x0, x1, y0, y1 int
}

// splitWhere separates dimension-range conjuncts from residual cell
// predicates.
func splitWhere(e Expr) (*cropBox, Expr) {
	box := &cropBox{x0: math.MinInt32, x1: math.MaxInt32, y0: math.MinInt32, y1: math.MaxInt32}
	residual := collectCrop(e, box)
	if box.x0 == math.MinInt32 && box.x1 == math.MaxInt32 &&
		box.y0 == math.MinInt32 && box.y1 == math.MaxInt32 {
		return nil, residual
	}
	return box, residual
}

// collectCrop extracts range constraints on bare dimensions; it returns
// the residual expression (nil when fully consumed).
func collectCrop(e Expr, box *cropBox) Expr {
	switch v := e.(type) {
	case *BinExpr:
		if v.Op == "AND" {
			l := collectCrop(v.L, box)
			r := collectCrop(v.R, box)
			switch {
			case l == nil:
				return r
			case r == nil:
				return l
			default:
				return &BinExpr{Op: "AND", L: l, R: r}
			}
		}
		if dim, lit, op, ok := dimComparison(v); ok {
			applyDimBound(box, dim, op, lit)
			return nil
		}
	case *BetweenExpr:
		if d, ok := v.X.(*DimRef); ok {
			lo, okLo := v.Lo.(*NumLit)
			hi, okHi := v.Hi.(*NumLit)
			if okLo && okHi {
				applyDimBound(box, d.Name, ">=", lo.V)
				applyDimBound(box, d.Name, "<=", hi.V)
				return nil
			}
		}
	}
	return e
}

// dimComparison matches "dim OP number" or "number OP dim".
func dimComparison(v *BinExpr) (dim string, lit float64, op string, ok bool) {
	if d, okD := v.L.(*DimRef); okD {
		if n, okN := v.R.(*NumLit); okN {
			return d.Name, n.V, v.Op, true
		}
	}
	if d, okD := v.R.(*DimRef); okD {
		if n, okN := v.L.(*NumLit); okN {
			return d.Name, n.V, flipOp(v.Op), true
		}
	}
	return "", 0, "", false
}

func flipOp(op string) string {
	switch op {
	case "<":
		return ">"
	case "<=":
		return ">="
	case ">":
		return "<"
	case ">=":
		return "<="
	default:
		return op
	}
}

func applyDimBound(box *cropBox, dim, op string, v float64) {
	lo, hi := &box.x0, &box.x1
	if dim == "y" {
		lo, hi = &box.y0, &box.y1
	}
	switch op {
	case ">=":
		*lo = max(*lo, int(math.Ceil(v)))
	case ">":
		*lo = max(*lo, int(math.Floor(v))+1)
	case "<":
		*hi = min(*hi, int(math.Ceil(v)))
	case "<=":
		*hi = min(*hi, int(math.Floor(v))+1)
	case "=":
		*lo = max(*lo, int(v))
		*hi = min(*hi, int(v)+1)
	}
}

// --- expression evaluation (vectorised per column) ---

func (e *Engine) evalExprCol(f *Frame, expr Expr, win *GroupSpec) ([]float64, error) {
	n := f.Len()
	switch v := expr.(type) {
	case *NumLit:
		out := make([]float64, n)
		for i := range out {
			out[i] = v.V
		}
		return out, nil
	case *ColRef:
		col, err := f.Resolve(v.Qualifier, v.Name)
		if err != nil {
			return nil, err
		}
		return col, nil
	case *DimRef:
		return f.DimColumn(v.Name)
	case *UnaryExpr:
		x, err := e.evalExprCol(f, v.X, win)
		if err != nil {
			return nil, err
		}
		out := make([]float64, n)
		switch v.Op {
		case "-":
			for i := range out {
				out[i] = -x[i]
			}
		case "NOT":
			for i := range out {
				if x[i] == 0 {
					out[i] = 1
				}
			}
		default:
			return nil, fmt.Errorf("sciql: unknown unary operator %q", v.Op)
		}
		return out, nil
	case *BinExpr:
		l, err := e.evalExprCol(f, v.L, win)
		if err != nil {
			return nil, err
		}
		r, err := e.evalExprCol(f, v.R, win)
		if err != nil {
			return nil, err
		}
		return applyBinOp(v.Op, l, r)
	case *BetweenExpr:
		x, err := e.evalExprCol(f, v.X, win)
		if err != nil {
			return nil, err
		}
		lo, err := e.evalExprCol(f, v.Lo, win)
		if err != nil {
			return nil, err
		}
		hi, err := e.evalExprCol(f, v.Hi, win)
		if err != nil {
			return nil, err
		}
		out := make([]float64, n)
		for i := range out {
			if x[i] >= lo[i] && x[i] <= hi[i] {
				out[i] = 1
			}
		}
		return out, nil
	case *CaseExpr:
		out := make([]float64, n)
		decided := make([]bool, n)
		for _, w := range v.Whens {
			cond, err := e.evalExprCol(f, w.Cond, win)
			if err != nil {
				return nil, err
			}
			then, err := e.evalExprCol(f, w.Then, win)
			if err != nil {
				return nil, err
			}
			for i := range out {
				if !decided[i] && cond[i] != 0 {
					out[i] = then[i]
					decided[i] = true
				}
			}
		}
		if v.Else != nil {
			els, err := e.evalExprCol(f, v.Else, win)
			if err != nil {
				return nil, err
			}
			for i := range out {
				if !decided[i] {
					out[i] = els[i]
				}
			}
		}
		return out, nil
	case *FuncExpr:
		return e.evalFuncCol(f, v, win)
	default:
		return nil, fmt.Errorf("sciql: unsupported expression %T", expr)
	}
}

func applyBinOp(op string, l, r []float64) ([]float64, error) {
	out := make([]float64, len(l))
	switch op {
	case "+":
		for i := range out {
			out[i] = l[i] + r[i]
		}
	case "-":
		for i := range out {
			out[i] = l[i] - r[i]
		}
	case "*":
		for i := range out {
			out[i] = l[i] * r[i]
		}
	case "/":
		for i := range out {
			if r[i] != 0 {
				out[i] = l[i] / r[i]
			}
		}
	case "=":
		for i := range out {
			out[i] = b2f(l[i] == r[i])
		}
	case "<>":
		for i := range out {
			out[i] = b2f(l[i] != r[i])
		}
	case "<":
		for i := range out {
			out[i] = b2f(l[i] < r[i])
		}
	case "<=":
		for i := range out {
			out[i] = b2f(l[i] <= r[i])
		}
	case ">":
		for i := range out {
			out[i] = b2f(l[i] > r[i])
		}
	case ">=":
		for i := range out {
			out[i] = b2f(l[i] >= r[i])
		}
	case "AND":
		for i := range out {
			out[i] = b2f(l[i] != 0 && r[i] != 0)
		}
	case "OR":
		for i := range out {
			out[i] = b2f(l[i] != 0 || r[i] != 0)
		}
	default:
		return nil, fmt.Errorf("sciql: unknown operator %q", op)
	}
	return out, nil
}

func b2f(b bool) float64 {
	if b {
		return 1
	}
	return 0
}

func (e *Engine) evalFuncCol(f *Frame, fn *FuncExpr, win *GroupSpec) ([]float64, error) {
	if aggregateFns[fn.Name] {
		if win == nil {
			return nil, fmt.Errorf("sciql: aggregate %s outside structural GROUP BY", fn.Name)
		}
		spec := array.WindowSpec{XLo: win.XLo, XHi: win.XHi, YLo: win.YLo, YHi: win.YHi}
		if fn.Name == "COUNT" {
			d := array.NewWithOrigin(f.X0, f.Y0, f.W, f.H)
			return d.WindowCount(spec).Values(), nil
		}
		if len(fn.Args) != 1 {
			return nil, fmt.Errorf("sciql: %s wants one argument", fn.Name)
		}
		arg, err := e.evalExprCol(f, fn.Args[0], win)
		if err != nil {
			return nil, err
		}
		d := array.NewWithOrigin(f.X0, f.Y0, f.W, f.H)
		copy(d.Values(), arg)
		switch fn.Name {
		case "AVG":
			return d.WindowAvg(spec).Values(), nil
		case "SUM":
			return d.WindowSum(spec).Values(), nil
		case "MIN":
			return d.WindowMin(spec).Values(), nil
		case "MAX":
			return d.WindowMax(spec).Values(), nil
		}
	}
	// Scalar functions.
	args := make([][]float64, len(fn.Args))
	for i, a := range fn.Args {
		col, err := e.evalExprCol(f, a, win)
		if err != nil {
			return nil, err
		}
		args[i] = col
	}
	unary := func(g func(float64) float64) ([]float64, error) {
		if len(args) != 1 {
			return nil, fmt.Errorf("sciql: %s wants one argument", fn.Name)
		}
		out := make([]float64, len(args[0]))
		for i, v := range args[0] {
			out[i] = g(v)
		}
		return out, nil
	}
	switch fn.Name {
	case "SQRT":
		return unary(func(v float64) float64 {
			if v < 0 {
				return 0
			}
			return math.Sqrt(v)
		})
	case "ABS":
		return unary(math.Abs)
	case "FLOOR":
		return unary(math.Floor)
	case "CEIL", "CEILING":
		return unary(math.Ceil)
	case "EXP":
		return unary(math.Exp)
	case "LN", "LOG":
		return unary(func(v float64) float64 {
			if v <= 0 {
				return 0
			}
			return math.Log(v)
		})
	case "POWER", "POW":
		if len(args) != 2 {
			return nil, fmt.Errorf("sciql: POWER wants two arguments")
		}
		out := make([]float64, len(args[0]))
		for i := range out {
			out[i] = math.Pow(args[0][i], args[1][i])
		}
		return out, nil
	default:
		return nil, fmt.Errorf("sciql: unknown function %s", fn.Name)
	}
}
