package resultcache

import (
	"fmt"
	"testing"

	"repro/internal/stsparql"
)

func snapOf(rows int) *stsparql.RowSnapshot {
	s := stsparql.NewRowSnapshot([]string{"x"})
	for i := 0; i < rows; i++ {
		s.Append(stsparql.Binding{})
	}
	return s
}

func vec(gen uint64) GenVector {
	return GenVector{Gens: []SliceGen{{Slice: -1, Gen: gen}}}
}

func always(GenVector) bool { return true }

func TestCacheHitMissEvict(t *testing.T) {
	c := New(2, 0)
	if _, ok := c.Get("a", always); ok {
		t.Fatal("hit on empty cache")
	}
	c.Put("a", &Entry{Snap: snapOf(1)}, vec(1))
	c.Put("b", &Entry{Snap: snapOf(1)}, vec(1))
	if _, ok := c.Get("a", always); !ok {
		t.Fatal("miss after put")
	}
	// a is now most recently used; inserting c evicts b.
	c.Put("c", &Entry{Snap: snapOf(1)}, vec(1))
	if _, ok := c.Get("b", always); ok {
		t.Fatal("LRU kept the least recently used entry")
	}
	if _, ok := c.Get("a", always); !ok {
		t.Fatal("LRU evicted the recently used entry")
	}
	st := c.Stats()
	if st.Entries != 2 || st.Evictions != 1 || st.Hits != 2 || st.Misses != 2 {
		t.Fatalf("stats: %+v", st)
	}
}

func TestCacheStaleEntryInvalidates(t *testing.T) {
	c := New(4, 0)
	gen := uint64(1)
	valid := func(v GenVector) bool { return v.Gens[0].Gen == gen }
	c.Put("q", &Entry{Snap: snapOf(1)}, vec(1))
	if _, ok := c.Get("q", valid); !ok {
		t.Fatal("fresh entry missed")
	}
	gen = 2 // the store mutated
	if _, ok := c.Get("q", valid); ok {
		t.Fatal("stale entry served")
	}
	st := c.Stats()
	if st.Invalidations != 1 || st.Entries != 0 {
		t.Fatalf("stats after invalidation: %+v", st)
	}
	// The key is free again for the new generation.
	c.Put("q", &Entry{Snap: snapOf(1)}, vec(2))
	if _, ok := c.Get("q", valid); !ok {
		t.Fatal("re-cached entry missed")
	}
}

func TestCacheByteBound(t *testing.T) {
	c := New(100, 4096)
	if c.MaxEntryBytes() != 1024 {
		t.Fatalf("MaxEntryBytes = %d", c.MaxEntryBytes())
	}
	// Oversized entries are refused outright.
	c.Put("big", &Entry{Snap: snapOf(100)}, vec(1))
	if st := c.Stats(); st.Entries != 0 {
		t.Fatalf("oversized entry admitted: %+v", st)
	}
	// Small entries evict older ones once the byte budget fills.
	for i := 0; i < 40; i++ {
		c.Put(fmt.Sprintf("q%d", i), &Entry{Snap: snapOf(2)}, vec(1))
	}
	st := c.Stats()
	if st.Bytes > 4096 {
		t.Fatalf("byte budget exceeded: %+v", st)
	}
	if st.Entries == 0 || st.Evictions == 0 {
		t.Fatalf("expected byte-bound evictions: %+v", st)
	}
}

func TestCacheNilSafe(t *testing.T) {
	var c *Cache
	c.Put("q", &Entry{Snap: snapOf(1)}, vec(1))
	if st := c.Stats(); st.Entries != 0 {
		t.Fatalf("nil cache stats: %+v", st)
	}
	if c.MaxEntryBytes() != 0 {
		t.Fatal("nil cache MaxEntryBytes")
	}
}
