// Package resultcache is a bounded, generation-keyed cache of
// materialised query results — the read-scaling tier of the serving
// roadmap. Where the plan cache (stsparql.PlanCache) skips parse+plan
// for a repeated query, this cache skips the evaluation itself: the
// endpoint stores the format-independent row set of a finished query
// and replays it through the ordinary result encoders on the next
// request for the same text.
//
// Invalidation is by generation vector, not TTL. Every entry carries
// the (slice, generation) pairs of exactly the member stores its rows
// were derived from, captured while the evaluation held those stores'
// read locks. The entry stays valid until one of THOSE members
// mutates: on a sharded store a historical-window query's entry
// survives arbitrary writes to the live slice, which is what makes the
// hot dashboard queries ("hotspots last hour per municipality")
// effectively never expire. A validator callback supplied by the store
// compares the vector against the live generations at Get time; a
// stale entry is dropped and the caller re-evaluates.
//
// The cache is bounded both by entry count and by total byte estimate,
// LRU-evicted, and safe for concurrent use.
package resultcache

import (
	"container/list"
	"sync"

	"repro/internal/stsparql"
)

// SliceGen is one member store's generation at result-capture time.
// Slice -1 is the static store (or the whole store for an unsharded
// backend); indices >= 0 name time-range slices. The cache treats the
// pairs as opaque — only the issuing store's validator interprets them.
type SliceGen struct {
	Slice int
	Gen   uint64
}

// GenVector pins one cached result to the store state it was computed
// from.
//
// Partial=false means Gens covers every member store: the entry is
// valid iff no member has mutated since. Partial=true means Gens
// covers only the members a fan-out evaluation provably read (static
// plus the window's candidate slices); validity additionally requires
// that the routing knowledge the fan-out decision was based on has not
// grown (Know) — a new predicate or rdf:type routed into some slice
// can turn a fanned-out query shape into a union-fallback one without
// touching the listed slices' generations.
type GenVector struct {
	Gens    []SliceGen
	Know    uint64 // routing-knowledge generation (sharded stores)
	Partial bool   // Gens covers a subset of members (fan-out entries)
}

// Entry is one cached result: an ASK verdict or a SELECT row set,
// stored format-independently (the endpoint re-encodes per request).
type Entry struct {
	Ask  bool
	Snap *stsparql.RowSnapshot

	vec   GenVector
	bytes int64
}

// Stats is a snapshot of cache effectiveness counters. Invalidations
// counts entries dropped because their generation vector went stale;
// Evictions counts capacity (entry or byte bound) evictions.
type Stats struct {
	Hits          uint64 `json:"hits"`
	Misses        uint64 `json:"misses"`
	Evictions     uint64 `json:"evictions"`
	Invalidations uint64 `json:"invalidations"`
	Entries       int    `json:"entries"`
	Bytes         int64  `json:"bytes"`
}

// Cache is the bounded LRU result cache, keyed by query text.
type Cache struct {
	mu         sync.Mutex
	maxEntries int
	maxBytes   int64
	bytes      int64
	lru        *list.List // of *cacheEntry; front = most recently used
	entries    map[string]*list.Element

	hits, misses, evictions, invalidations uint64
}

type cacheEntry struct {
	key string
	e   *Entry
}

// New returns a cache holding at most maxEntries results totalling at
// most maxBytes (estimated). maxBytes <= 0 means no byte bound.
func New(maxEntries int, maxBytes int64) *Cache {
	return &Cache{
		maxEntries: maxEntries,
		maxBytes:   maxBytes,
		lru:        list.New(),
		entries:    make(map[string]*list.Element),
	}
}

// MaxEntryBytes is the admission bound for a single entry: a result
// bigger than a quarter of the byte budget is never cached (it would
// evict most of the working set for one giant response). 0 means
// unbounded.
func (c *Cache) MaxEntryBytes() int64 {
	if c == nil || c.maxBytes <= 0 {
		return 0
	}
	return c.maxBytes / 4
}

// Get returns the entry under key if present and still valid per the
// store's validator. A present-but-stale entry is removed and counted
// as an invalidation plus a miss.
func (c *Cache) Get(key string, valid func(GenVector) bool) (*Entry, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[key]
	if ok {
		ce := el.Value.(*cacheEntry)
		if valid != nil && valid(ce.e.vec) {
			c.lru.MoveToFront(el)
			c.hits++
			return ce.e, true
		}
		c.removeLocked(el)
		c.invalidations++
	}
	c.misses++
	return nil, false
}

// Put stores an entry computed against the store state vec describes.
// Entries above the per-entry admission bound are ignored.
func (c *Cache) Put(key string, e *Entry, vec GenVector) {
	if c == nil || c.maxEntries <= 0 || e == nil {
		return
	}
	e.vec = vec
	e.bytes = int64(len(key)) + 128
	if e.Snap != nil {
		e.bytes += e.Snap.Bytes()
	}
	if bound := c.MaxEntryBytes(); bound > 0 && e.bytes > bound {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[key]; ok {
		c.bytes -= el.Value.(*cacheEntry).e.bytes
		el.Value = &cacheEntry{key: key, e: e}
		c.bytes += e.bytes
		c.lru.MoveToFront(el)
	} else {
		c.entries[key] = c.lru.PushFront(&cacheEntry{key: key, e: e})
		c.bytes += e.bytes
	}
	for c.lru.Len() > c.maxEntries || (c.maxBytes > 0 && c.bytes > c.maxBytes) {
		back := c.lru.Back()
		if back == nil {
			break
		}
		c.removeLocked(back)
		c.evictions++
	}
}

func (c *Cache) removeLocked(el *list.Element) {
	ce := el.Value.(*cacheEntry)
	c.lru.Remove(el)
	delete(c.entries, ce.key)
	c.bytes -= ce.e.bytes
}

// Stats returns a snapshot of the cache counters.
func (c *Cache) Stats() Stats {
	if c == nil {
		return Stats{}
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return Stats{
		Hits:          c.hits,
		Misses:        c.misses,
		Evictions:     c.evictions,
		Invalidations: c.invalidations,
		Entries:       len(c.entries),
		Bytes:         c.bytes,
	}
}
