// Package ontology defines the vocabularies of the service: the NOA
// ontology of Section 3.2.1 (RawData / Shapefile / Hotspot with their
// annotation properties, aligned to SWEET), and the term IRIs of the
// auxiliary datasets (Corine Land Cover, Greek coastline, Greek
// Administrative Geography, LinkedGeoData, GeoNames).
package ontology

import "repro/internal/rdf"

// Namespace bases; the prefixes match rdf.NewNamespaces.
const (
	NOA   = "http://teleios.di.uoa.gr/ontologies/noaOntology.owl#"
	CLC   = "http://teleios.di.uoa.gr/ontologies/clcOntology.owl#"
	Coast = "http://teleios.di.uoa.gr/ontologies/coastlineOntology.owl#"
	GAG   = "http://teleios.di.uoa.gr/ontologies/gagOntology.owl#"
	LGD   = "http://linkedgeodata.org/triplify/"
	LGDO  = "http://linkedgeodata.org/ontology/"
	GN    = "http://www.geonames.org/ontology#"
	GNRes = "http://sws.geonames.org/"
	SWEET = "http://sweet.jpl.nasa.gov/ontology/"
	StRDF = "http://strdf.di.uoa.gr/ontology#"
	RDFS  = "http://www.w3.org/2000/01/rdf-schema#"
	OWL   = "http://www.w3.org/2002/07/owl#"
)

// NOA ontology classes.
const (
	ClassRawData   = NOA + "RawData"
	ClassShapefile = NOA + "Shapefile"
	ClassHotspot   = NOA + "Hotspot"
)

// NOA ontology properties (the annotations of Figure 5).
const (
	PropAcquisitionDateTime = NOA + "hasAcquisitionDateTime"
	PropConfidence          = NOA + "hasConfidence"
	PropConfirmation        = NOA + "hasConfirmation"
	PropSensor              = NOA + "isDerivedFromSensor"
	PropSatellite           = NOA + "isDerivedFromSatellite"
	PropProducedBy          = NOA + "isProducedBy"
	PropProcessingChain     = NOA + "isFromProcessingChain"
	PropFilename            = NOA + "hasFilename"
	PropIsInMunicipality    = NOA + "isInMunicipality"
	PropExtractedFrom       = NOA + "isExtractedFrom"
	HasGeometry             = StRDF + "hasGeometry"
)

// Confirmation individuals.
const (
	ConfirmedFire   = NOA + "confirmed"
	UnconfirmedFire = NOA + "unconfirmed"
)

// Corine Land Cover vocabulary (three-level taxonomy per the paper).
const (
	ClassCLCArea  = CLC + "Area"
	PropLandUse   = CLC + "hasLandUse"
	PropCLCCode   = CLC + "hasCode"
	ClassArtifial = CLC + "ArtificialSurface" // level 1
	ClassAgri     = CLC + "AgriculturalArea"  // level 1
	ClassForestSN = CLC + "ForestAndSemiNaturalArea"
	ClassWater    = CLC + "WaterBody"

	ClassUrbanFabric = CLC + "ContinuousUrbanFabric" // level 3 under Artificial
	ClassArable      = CLC + "NonIrrigatedArableLand"
	ClassConiferous  = CLC + "ConiferousForest"
	ClassSclerophyll = CLC + "SclerophyllousVegetation"
	ClassSea         = CLC + "SeaAndOcean"
)

// Coastline vocabulary.
const (
	ClassCoastline = Coast + "Coastline"
)

// Greek Administrative Geography vocabulary.
const (
	ClassMunicipality = GAG + "Municipality"
	ClassPrefecture   = GAG + "Prefecture"
	PropPopulation    = GAG + "hasPopulation"
	PropIsPartOf      = GAG + "isPartOf"
	PropYpesCode      = GAG + "hasYpesCode"
)

// LinkedGeoData vocabulary.
const (
	ClassLGDNode        = LGDO + "Node"
	ClassLGDWay         = LGDO + "Way"
	ClassLGDAmenity     = LGDO + "Amenity"
	ClassLGDFireStation = LGDO + "FireStation"
	ClassLGDHospital    = LGDO + "Hospital"
	ClassLGDPrimary     = LGDO + "Primary"
	PropLGDDirectType   = LGDO + "directType"
)

// GeoNames vocabulary.
const (
	ClassGNFeature     = GN + "Feature"
	PropGNName         = GN + "name"
	PropGNAltName      = GN + "alternateName"
	PropGNCountryCode  = GN + "countryCode"
	PropGNFeatureClass = GN + "featureClass"
	PropGNFeatureCode  = GN + "featureCode"
	PropGNParentADM1   = GN + "parentADM1"
	CodePPLA           = GN + "P.PPLA" // first-order admin seat
	CodePPL            = GN + "P.PPL"  // populated place
)

// RDFS / label helpers.
const (
	PropLabel      = RDFS + "label"
	PropSubClassOf = RDFS + "subClassOf"
)

func iri(s string) rdf.Term { return rdf.NewIRI(s) }

// Triples returns the NOA ontology's schema triples: the class hierarchy
// of Figure 5 including the SWEET alignment, and the Corine level
// taxonomy. Loading these enables subclass-aware queries.
func Triples() []rdf.Triple {
	sub := func(c, super string) rdf.Triple {
		return rdf.Triple{S: iri(c), P: iri(PropSubClassOf), O: iri(super)}
	}
	typ := func(s, c string) rdf.Triple {
		return rdf.Triple{S: iri(s), P: iri(rdf.RDFType), O: iri(c)}
	}
	owlClass := OWL + "Class"
	return []rdf.Triple{
		typ(ClassRawData, owlClass),
		typ(ClassShapefile, owlClass),
		typ(ClassHotspot, owlClass),
		// SWEET alignment (the paper: "these classes have been defined as
		// subclasses of corresponding classes of the SWEET ontology").
		sub(ClassRawData, SWEET+"data/Data"),
		sub(ClassShapefile, SWEET+"data/Dataset"),
		sub(ClassHotspot, SWEET+"phenAtmo/Fire"),
		// Corine level taxonomy.
		sub(ClassUrbanFabric, ClassArtifial),
		sub(ClassArable, ClassAgri),
		sub(ClassConiferous, ClassForestSN),
		sub(ClassSclerophyll, ClassForestSN),
		sub(ClassSea, ClassWater),
	}
}

// FireInconsistentCovers lists the level-3 land covers on which a real
// forest-fire alarm is implausible — the "fully inconsistent land
// use/land cover classes, like urban or permanent agriculture areas" of
// the paper. The InvalidForFires refinement deletes hotspots whose pixel
// lies entirely on these.
var FireInconsistentCovers = map[string]bool{
	ClassUrbanFabric: true,
	ClassArable:      true,
	ClassSea:         true,
}
