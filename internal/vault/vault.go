// Package vault implements the data-vault mechanism of the paper (Ivanova,
// Kersten, Manegold — SSDBM 2012): external HRIT files are attached
// "as-is"; attaching only parses their header metadata into a catalog
// ("Extract and store the raw file metadata", the SEVIRI Monitor's first
// job). Pixel data is converted into SciQL arrays lazily, on the first
// query that touches an acquisition, and cached with LRU eviction. The
// vault registers the table function hrit_load_image(uri) with the SciQL
// engine, the function the paper's loading section describes.
package vault

import (
	"container/list"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/array"
	"repro/internal/hrit"
	"repro/internal/sciql"
)

// Entry is one attached external file with its scanned metadata.
type Entry struct {
	Name   string // path or registered name
	Header hrit.SegmentHeader
	Size   int
	// raw holds the bytes for memory-attached files; nil means read from
	// disk at load time.
	raw []byte
}

// acquisitionKey identifies one (product, channel, timestamp) image.
type acquisitionKey struct {
	Channel string
	Stamp   int64
}

// Stats reports vault activity.
type Stats struct {
	Attached  int // files attached
	Loads     int // lazy materialisations performed
	CacheHits int
	CacheMiss int
	Evictions int
	BytesRead int64
}

// Vault is the external-file catalog with lazy array materialisation.
type Vault struct {
	mu      sync.Mutex
	entries map[acquisitionKey][]Entry

	cacheCap int
	cache    map[acquisitionKey]*list.Element
	lru      *list.List // of cacheItem

	stats Stats
}

type cacheItem struct {
	key acquisitionKey
	img *array.Dense
}

// New returns a vault caching up to capacity assembled acquisitions
// (per channel).
func New(capacity int) *Vault {
	if capacity < 1 {
		capacity = 1
	}
	return &Vault{
		entries:  make(map[acquisitionKey][]Entry),
		cacheCap: capacity,
		cache:    make(map[acquisitionKey]*list.Element),
		lru:      list.New(),
	}
}

// AttachDir scans a directory for .hrit files and attaches them. Only
// headers are parsed; pixel data stays on disk.
func (v *Vault) AttachDir(dir string) (int, error) {
	des, err := os.ReadDir(dir)
	if err != nil {
		return 0, fmt.Errorf("vault: %w", err)
	}
	n := 0
	for _, de := range des {
		if de.IsDir() || !strings.HasSuffix(de.Name(), ".hrit") {
			continue
		}
		path := filepath.Join(dir, de.Name())
		raw, err := os.ReadFile(path)
		if err != nil {
			return n, fmt.Errorf("vault: %w", err)
		}
		if err := v.attach(path, raw, false); err != nil {
			return n, err
		}
		n++
	}
	return n, nil
}

// AttachBytes attaches an in-memory HRIT file (the simulator's output
// path; the operational deployment would write the same bytes to the
// ground-station spool directory).
func (v *Vault) AttachBytes(name string, raw []byte) error {
	return v.attach(name, raw, true)
}

func (v *Vault) attach(name string, raw []byte, keep bool) error {
	hdr, _, err := hrit.DecodeHeader(raw)
	if err != nil {
		return fmt.Errorf("vault: %s: %w", name, err)
	}
	e := Entry{Name: name, Header: hdr, Size: len(raw)}
	if keep {
		e.raw = raw
	}
	key := acquisitionKey{Channel: hdr.Channel, Stamp: hdr.Timestamp.UnixNano()}
	v.mu.Lock()
	defer v.mu.Unlock()
	v.entries[key] = append(v.entries[key], e)
	v.stats.Attached++
	return nil
}

// Acquisitions lists the attached acquisition timestamps for a channel,
// sorted ascending.
func (v *Vault) Acquisitions(channel string) []time.Time {
	v.mu.Lock()
	defer v.mu.Unlock()
	var out []time.Time
	for k := range v.entries {
		if k.Channel == channel {
			out = append(out, time.Unix(0, k.Stamp).UTC())
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Before(out[j]) })
	return out
}

// Complete reports whether all segments of an acquisition have arrived.
func (v *Vault) Complete(channel string, ts time.Time) bool {
	v.mu.Lock()
	defer v.mu.Unlock()
	key := acquisitionKey{Channel: channel, Stamp: ts.UnixNano()}
	es := v.entries[key]
	if len(es) == 0 {
		return false
	}
	return len(es) == es[0].Header.TotalSegments
}

// Stats returns a snapshot of vault statistics.
func (v *Vault) Stats() Stats {
	v.mu.Lock()
	defer v.mu.Unlock()
	return v.stats
}

// Load materialises the full image (raw counts) for an acquisition,
// assembling and decompressing its segments on first touch and serving
// the LRU cache afterwards.
func (v *Vault) Load(channel string, ts time.Time) (*array.Dense, error) {
	key := acquisitionKey{Channel: channel, Stamp: ts.UnixNano()}
	v.mu.Lock()
	if el, ok := v.cache[key]; ok {
		v.lru.MoveToFront(el)
		v.stats.CacheHits++
		img := el.Value.(cacheItem).img
		v.mu.Unlock()
		return img, nil
	}
	v.stats.CacheMiss++
	entries := append([]Entry(nil), v.entries[key]...)
	v.mu.Unlock()

	if len(entries) == 0 {
		return nil, fmt.Errorf("vault: no segments for %s @ %s", channel, ts.Format(time.RFC3339))
	}
	segs := make([]hrit.Segment, 0, len(entries))
	var bytesRead int64
	for _, e := range entries {
		raw := e.raw
		if raw == nil {
			var err error
			raw, err = os.ReadFile(e.Name)
			if err != nil {
				return nil, fmt.Errorf("vault: %w", err)
			}
		}
		bytesRead += int64(len(raw))
		seg, err := hrit.Decode(raw)
		if err != nil {
			return nil, fmt.Errorf("vault: %s: %w", e.Name, err)
		}
		segs = append(segs, seg)
	}
	img, err := hrit.Assemble(segs)
	if err != nil {
		return nil, fmt.Errorf("vault: %w", err)
	}

	v.mu.Lock()
	v.stats.Loads++
	v.stats.BytesRead += bytesRead
	// Concurrent misses on the same key both decode; only the first may
	// insert, or a duplicate lru element would later evict the live
	// cache mapping.
	if el, ok := v.cache[key]; ok {
		v.lru.MoveToFront(el)
		v.mu.Unlock()
		return el.Value.(cacheItem).img, nil
	}
	el := v.lru.PushFront(cacheItem{key: key, img: img})
	v.cache[key] = el
	for v.lru.Len() > v.cacheCap {
		oldest := v.lru.Back()
		v.lru.Remove(oldest)
		delete(v.cache, oldest.Value.(cacheItem).key)
		v.stats.Evictions++
	}
	v.mu.Unlock()
	return img, nil
}

// LoadTemperature loads an acquisition and calibrates counts to kelvin.
func (v *Vault) LoadTemperature(channel string, ts time.Time) (*array.Dense, error) {
	img, err := v.Load(channel, ts)
	if err != nil {
		return nil, err
	}
	cal, err := hrit.CalibrationFor(channel)
	if err != nil {
		return nil, err
	}
	return cal.CalibrateArray(img), nil
}

// URI renders the vault URI for an acquisition, the argument format of
// hrit_load_image: "hrit://IR_039/2007-08-24T12:05:00Z".
func URI(channel string, ts time.Time) string {
	return fmt.Sprintf("hrit://%s/%s", channel, ts.UTC().Format(time.RFC3339))
}

// parseURI inverts URI.
func parseURI(uri string) (channel string, ts time.Time, err error) {
	rest, ok := strings.CutPrefix(uri, "hrit://")
	if !ok {
		return "", time.Time{}, fmt.Errorf("vault: bad URI %q", uri)
	}
	parts := strings.SplitN(rest, "/", 2)
	if len(parts) != 2 {
		return "", time.Time{}, fmt.Errorf("vault: bad URI %q", uri)
	}
	t, err := time.Parse(time.RFC3339, parts[1])
	if err != nil {
		return "", time.Time{}, fmt.Errorf("vault: bad URI timestamp: %w", err)
	}
	return parts[0], t, nil
}

// Register installs the vault's table functions into a SciQL engine:
//
//	hrit_load_image('hrit://IR_039/2007-08-24T12:05:00Z')  — temperatures
//	hrit_load_counts('hrit://...')                          — raw counts
func (v *Vault) Register(e *sciql.Engine) {
	e.RegisterFunc("hrit_load_image", func(args []string) (*sciql.Frame, error) {
		if len(args) != 1 {
			return nil, fmt.Errorf("hrit_load_image wants one URI argument")
		}
		ch, ts, err := parseURI(args[0])
		if err != nil {
			return nil, err
		}
		img, err := v.LoadTemperature(ch, ts)
		if err != nil {
			return nil, err
		}
		return sciql.FromDense(img, "v"), nil
	})
	e.RegisterFunc("hrit_load_counts", func(args []string) (*sciql.Frame, error) {
		if len(args) != 1 {
			return nil, fmt.Errorf("hrit_load_counts wants one URI argument")
		}
		ch, ts, err := parseURI(args[0])
		if err != nil {
			return nil, err
		}
		img, err := v.Load(ch, ts)
		if err != nil {
			return nil, err
		}
		return sciql.FromDense(img, "v"), nil
	})
}
