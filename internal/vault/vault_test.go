package vault

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/hrit"
	"repro/internal/sciql"
)

func makeAcquisition(t *testing.T, ts time.Time, compressed bool) [][]byte {
	t.Helper()
	counts := make([]uint16, 32*24)
	for i := range counts {
		counts[i] = uint16((i * 7) % 1024)
	}
	segs, err := hrit.Split(counts, 32, 3, hrit.SegmentHeader{
		ProductName: "MSG1-SEVIRI",
		Channel:     hrit.ChannelIR039,
		Timestamp:   ts,
		Compressed:  compressed,
	})
	if err != nil {
		t.Fatal(err)
	}
	out := make([][]byte, len(segs))
	for i, s := range segs {
		raw, err := hrit.Encode(s)
		if err != nil {
			t.Fatal(err)
		}
		out[i] = raw
	}
	return out
}

func TestAttachAndLazyLoad(t *testing.T) {
	v := New(4)
	ts := time.Date(2010, 8, 22, 12, 0, 0, 0, time.UTC)
	for i, raw := range makeAcquisition(t, ts, true) {
		if err := v.AttachBytes(fmt.Sprintf("seg%d", i), raw); err != nil {
			t.Fatal(err)
		}
	}
	if got := v.Stats(); got.Attached != 3 || got.Loads != 0 {
		t.Fatalf("stats after attach = %+v", got)
	}
	if !v.Complete(hrit.ChannelIR039, ts) {
		t.Fatal("acquisition should be complete")
	}
	img, err := v.Load(hrit.ChannelIR039, ts)
	if err != nil {
		t.Fatal(err)
	}
	if img.Width() != 32 || img.Height() != 24 {
		t.Fatalf("image dims %dx%d", img.Width(), img.Height())
	}
	if got := v.Stats(); got.Loads != 1 || got.CacheMiss != 1 {
		t.Fatalf("stats after load = %+v", got)
	}
	// Second load hits the cache.
	if _, err := v.Load(hrit.ChannelIR039, ts); err != nil {
		t.Fatal(err)
	}
	if got := v.Stats(); got.CacheHits != 1 || got.Loads != 1 {
		t.Fatalf("stats after reload = %+v", got)
	}
}

func TestIncompleteAcquisition(t *testing.T) {
	v := New(4)
	ts := time.Date(2010, 8, 22, 12, 5, 0, 0, time.UTC)
	segs := makeAcquisition(t, ts, false)
	if err := v.AttachBytes("only", segs[0]); err != nil {
		t.Fatal(err)
	}
	if v.Complete(hrit.ChannelIR039, ts) {
		t.Fatal("incomplete acquisition reported complete")
	}
	if _, err := v.Load(hrit.ChannelIR039, ts); err == nil {
		t.Fatal("loading incomplete acquisition should fail")
	}
}

func TestCacheEviction(t *testing.T) {
	v := New(2)
	base := time.Date(2010, 8, 22, 0, 0, 0, 0, time.UTC)
	for i := 0; i < 3; i++ {
		ts := base.Add(time.Duration(i) * 5 * time.Minute)
		for j, raw := range makeAcquisition(t, ts, false) {
			if err := v.AttachBytes(fmt.Sprintf("a%d_s%d", i, j), raw); err != nil {
				t.Fatal(err)
			}
		}
		if _, err := v.Load(hrit.ChannelIR039, ts); err != nil {
			t.Fatal(err)
		}
	}
	if got := v.Stats(); got.Evictions != 1 {
		t.Fatalf("evictions = %d, want 1", got.Evictions)
	}
	// The evicted (oldest) acquisition reloads with a fresh miss.
	if _, err := v.Load(hrit.ChannelIR039, base); err != nil {
		t.Fatal(err)
	}
	if got := v.Stats(); got.Loads != 4 {
		t.Fatalf("loads = %d, want 4", got.Loads)
	}
}

func TestAttachDir(t *testing.T) {
	dir := t.TempDir()
	ts := time.Date(2010, 8, 22, 13, 0, 0, 0, time.UTC)
	for i, raw := range makeAcquisition(t, ts, true) {
		path := filepath.Join(dir, fmt.Sprintf("seg%d.hrit", i))
		if err := os.WriteFile(path, raw, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	// A non-HRIT file must be ignored.
	if err := os.WriteFile(filepath.Join(dir, "README.txt"), []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	v := New(2)
	n, err := v.AttachDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if n != 3 {
		t.Fatalf("attached %d files", n)
	}
	img, err := v.Load(hrit.ChannelIR039, ts)
	if err != nil {
		t.Fatal(err)
	}
	if img.Len() != 32*24 {
		t.Fatalf("image cells = %d", img.Len())
	}
	acqs := v.Acquisitions(hrit.ChannelIR039)
	if len(acqs) != 1 || !acqs[0].Equal(ts) {
		t.Fatalf("acquisitions = %v", acqs)
	}
}

func TestSciQLTableFunction(t *testing.T) {
	v := New(2)
	ts := time.Date(2010, 8, 22, 14, 0, 0, 0, time.UTC)
	for i, raw := range makeAcquisition(t, ts, false) {
		if err := v.AttachBytes(fmt.Sprintf("s%d", i), raw); err != nil {
			t.Fatal(err)
		}
	}
	e := sciql.NewEngine()
	v.Register(e)
	f, err := e.Exec(fmt.Sprintf(`SELECT v FROM hrit_load_counts('%s') AS img WHERE x >= 0 AND x < 10 AND y >= 0 AND y < 10`,
		URI(hrit.ChannelIR039, ts)))
	if err != nil {
		t.Fatal(err)
	}
	if f.W != 10 || f.H != 10 {
		t.Fatalf("frame = %dx%d", f.W, f.H)
	}
	// Temperature variant produces calibrated kelvins.
	f2, err := e.Exec(fmt.Sprintf(`SELECT v FROM hrit_load_image('%s') AS img`, URI(hrit.ChannelIR039, ts)))
	if err != nil {
		t.Fatal(err)
	}
	d, _ := f2.Dense("v")
	if s := d.Summary(); s.Min < 100 || s.Max > 500 {
		t.Fatalf("calibrated range = [%g, %g]", s.Min, s.Max)
	}
	// Bad URIs error cleanly.
	if _, err := e.Exec(`SELECT v FROM hrit_load_image('nope') AS img`); err == nil {
		t.Fatal("bad URI should fail")
	}
}

func TestURIRoundTrip(t *testing.T) {
	ts := time.Date(2007, 8, 24, 12, 5, 0, 0, time.UTC)
	uri := URI("IR_039", ts)
	ch, back, err := parseURI(uri)
	if err != nil {
		t.Fatal(err)
	}
	if ch != "IR_039" || !back.Equal(ts) {
		t.Fatalf("roundtrip = %s @ %v", ch, back)
	}
	for _, bad := range []string{"", "http://x", "hrit://only-channel", "hrit://ch/notatime"} {
		if _, _, err := parseURI(bad); err == nil {
			t.Errorf("parseURI(%q) should fail", bad)
		}
	}
}
