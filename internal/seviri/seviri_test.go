package seviri

import (
	"math"
	"testing"
	"time"

	"repro/internal/auxdata"
	"repro/internal/geom"
	"repro/internal/georef"
	"repro/internal/hrit"
)

func testScenario(t *testing.T) *Scenario {
	t.Helper()
	w := auxdata.Generate(42)
	cfg := DefaultScenarioConfig()
	cfg.Days = 1
	cfg.FiresPerDay = 4
	cfg.ArtifactsPerDay = 2
	return GenerateScenario(w, 43, cfg)
}

func TestScenarioDeterminism(t *testing.T) {
	w := auxdata.Generate(42)
	cfg := DefaultScenarioConfig()
	a := GenerateScenario(w, 1, cfg)
	b := GenerateScenario(w, 1, cfg)
	if len(a.Fires) != len(b.Fires) {
		t.Fatal("scenario not deterministic")
	}
	for i := range a.Fires {
		if !a.Fires[i].Center.Equals(b.Fires[i].Center) {
			t.Fatal("fire positions differ")
		}
	}
}

func TestFireLifecycle(t *testing.T) {
	start := time.Date(2007, 8, 24, 12, 0, 0, 0, time.UTC)
	f := FireEvent{
		Start: start, End: start.Add(4 * time.Hour),
		PeakRadiusKm: 3, Intensity: 40,
	}
	if f.RadiusKmAt(start.Add(-time.Minute)) != 0 {
		t.Fatal("fire burning before ignition")
	}
	if f.RadiusKmAt(start.Add(5*time.Hour)) != 0 {
		t.Fatal("fire burning after end")
	}
	peak := f.RadiusKmAt(start.Add(time.Duration(0.6 * 4 * float64(time.Hour))))
	if math.Abs(peak-3) > 1e-9 {
		t.Fatalf("peak radius = %g", peak)
	}
	early := f.RadiusKmAt(start.Add(30 * time.Minute))
	late := f.RadiusKmAt(start.Add(3*time.Hour + 50*time.Minute))
	if early <= 0 || early >= 3 {
		t.Fatalf("early radius = %g", early)
	}
	if late <= 0 || late >= 3 {
		t.Fatalf("late radius = %g", late)
	}
}

func TestFiresIgniteOnBurnableLand(t *testing.T) {
	sc := testScenario(t)
	for _, f := range sc.Fires {
		if !sc.World.LandAt(f.Center) {
			t.Fatalf("fire %d ignited in the sea", f.ID)
		}
		c := sc.World.CoverAt(f.Center)
		if c != auxdata.CoverForest && c != auxdata.CoverScrub {
			t.Fatalf("fire %d ignited on %v", f.ID, c)
		}
	}
}

func TestGeoTemperaturesShowFire(t *testing.T) {
	sc := testScenario(t)
	sim := NewSimulator(sc)
	// Find a burning moment of the biggest fire.
	var big FireEvent
	for _, f := range sc.Fires {
		if f.PeakRadiusKm > big.PeakRadiusKm {
			big = f
		}
	}
	at := big.Start.Add(big.End.Sub(big.Start) / 2)
	t039, t108 := sim.GeoTemperatures(at)
	// Locate the fire pixel.
	x, y := sim.Transform().GeoToPixel(big.Center.X, big.Center.Y)
	fire039 := t039.Get(x, y)
	fire108 := t108.Get(x, y)
	// Compare against a far-away pixel at similar latitude.
	bgX := (x + sim.GeoWidth/2) % sim.GeoWidth
	bg039 := t039.Get(bgX, y)
	if fire039-bg039 < 15 {
		t.Fatalf("fire 3.9µm contrast too low: %g vs %g", fire039, bg039)
	}
	if fire039-fire108 < 8 {
		t.Fatalf("band difference too low: %g vs %g", fire039, fire108)
	}
}

func TestDiurnalCycle(t *testing.T) {
	sc := testScenario(t)
	sim := NewSimulator(sc)
	day := time.Date(2007, 8, 24, 11, 0, 0, 0, time.UTC) // ~14:00 local
	night := time.Date(2007, 8, 24, 23, 30, 0, 0, time.UTC)
	_, dayT108 := sim.GeoTemperatures(day)
	_, nightT108 := sim.GeoTemperatures(night)
	// Compare a land pixel's temperatures.
	var p geom.Point
	found := false
	for _, town := range sc.World.Towns {
		p = town.Location
		found = true
		break
	}
	if !found {
		t.Skip("no towns")
	}
	x, y := sim.Transform().GeoToPixel(p.X, p.Y)
	if dayT108.Get(x, y)-nightT108.Get(x, y) < 5 {
		t.Fatalf("no diurnal cycle: day %g vs night %g", dayT108.Get(x, y), nightT108.Get(x, y))
	}
}

func TestAcquireProducesDecodableSegments(t *testing.T) {
	sc := testScenario(t)
	sim := NewSimulator(sc)
	at := time.Date(2007, 8, 24, 12, 0, 0, 0, time.UTC)
	acq, err := sim.Acquire(MSG1, at, 4, true)
	if err != nil {
		t.Fatal(err)
	}
	for _, ch := range []string{hrit.ChannelIR039, hrit.ChannelIR108} {
		files := acq.Segments[ch]
		if len(files) != 4 {
			t.Fatalf("%s: %d segments", ch, len(files))
		}
		segs := make([]hrit.Segment, len(files))
		for i, raw := range files {
			seg, err := hrit.Decode(raw)
			if err != nil {
				t.Fatal(err)
			}
			segs[i] = seg
		}
		img, err := hrit.Assemble(segs)
		if err != nil {
			t.Fatal(err)
		}
		if img.Width() != sim.RawWidth || img.Height() != sim.RawHeight {
			t.Fatalf("%s raw dims %dx%d", ch, img.Width(), img.Height())
		}
	}
}

func TestTransformInverseConsistency(t *testing.T) {
	sc := testScenario(t)
	sim := NewSimulator(sc)
	tr := sim.Transform()
	// Fit from control points recovers the transform.
	pts := sim.ControlPoints(36)
	sx, sy, err := georef.Fit(pts)
	if err != nil {
		t.Fatal(err)
	}
	if rms := georef.ResidualRMS(pts, sx, sy); rms > 1e-6 {
		t.Fatalf("refit RMS = %g", rms)
	}
	// Forward transform hits the raw grid's interior.
	u := tr.SrcX.Eval(float64(sim.GeoWidth/2), float64(sim.GeoHeight/2))
	v := tr.SrcY.Eval(float64(sim.GeoWidth/2), float64(sim.GeoHeight/2))
	if u < 0 || u >= float64(sim.RawWidth) || v < 0 || v >= float64(sim.RawHeight) {
		t.Fatalf("centre maps outside raw grid: (%g,%g)", u, v)
	}
}

func TestAcquisitionTimes(t *testing.T) {
	from := time.Date(2010, 8, 22, 0, 0, 0, 0, time.UTC)
	msg1 := AcquisitionTimes(MSG1, from, 24*time.Hour)
	if len(msg1) != 288 {
		t.Fatalf("MSG1 acquisitions = %d, want 288 (5-min cadence)", len(msg1))
	}
	msg2 := AcquisitionTimes(MSG2, from, 24*time.Hour)
	if len(msg2) != 96 {
		t.Fatalf("MSG2 acquisitions = %d, want 96", len(msg2))
	}
}

func TestCoverageFraction(t *testing.T) {
	c := geom.Point{X: 22, Y: 38}
	// Pixel right on the fire centre with a big fire: fully covered.
	if f := coverageFraction(c, c, 10, 4); f != 1 {
		t.Fatalf("full coverage = %g", f)
	}
	// Far away: zero.
	far := geom.Point{X: 23, Y: 38}
	if f := coverageFraction(far, c, 2, 4); f != 0 {
		t.Fatalf("far coverage = %g", f)
	}
	// Partial coverage strictly between.
	edge := geom.Point{X: 22 + 2.0/KmPerDegLon, Y: 38}
	if f := coverageFraction(edge, c, 2, 4); f <= 0 || f >= 1 {
		t.Fatalf("edge coverage = %g", f)
	}
}
