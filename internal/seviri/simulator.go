package seviri

import (
	"fmt"
	"math"
	"math/rand"
	"time"

	"repro/internal/array"
	"repro/internal/auxdata"
	"repro/internal/geom"
	"repro/internal/georef"
	"repro/internal/hrit"
	"repro/internal/solar"
)

// Sensor describes one of the two MSG platforms of the paper.
type Sensor struct {
	Name    string
	Cadence time.Duration
}

// The paper's platforms: "MSG-1 Seviri (5 mins), MSG-2 Seviri (15 mins)".
var (
	MSG1 = Sensor{Name: "MSG1", Cadence: 5 * time.Minute}
	MSG2 = Sensor{Name: "MSG2", Cadence: 15 * time.Minute}
)

// PixelDeg is the MSG/SEVIRI ground sampling distance over Greece in
// degrees (~4 km, the paper's "nearly 4x4 km").
const PixelDeg = 0.04

// PixelKm is the nominal MSG pixel size.
const PixelKm = 4.0

// Simulator renders acquisitions of a scenario.
type Simulator struct {
	Scenario *Scenario
	// Geo grid covering auxdata.Region at PixelDeg.
	GeoWidth, GeoHeight int
	// Raw grid: the distorted scan geometry; slightly larger.
	RawWidth, RawHeight int
	// geoToRaw maps geo pixel coordinates to raw pixel coordinates — the
	// "precalculated" polynomial the chain's georeferencing step applies.
	geoToRaw georef.Transform
}

// NewSimulator builds the simulator and its scan geometry.
func NewSimulator(sc *Scenario) *Simulator {
	region := auxdata.Region
	gw := int(region.Width()/PixelDeg + 0.5)
	gh := int(region.Height()/PixelDeg + 0.5)
	s := &Simulator{
		Scenario: sc,
		GeoWidth: gw, GeoHeight: gh,
		RawWidth: gw + 14, RawHeight: gh + 12,
	}
	// The scan geometry: a mild affine skew plus a weak quadratic term —
	// the shape a geostationary view of a mid-latitude region has.
	s.geoToRaw = georef.Transform{
		SrcX:      georef.Poly2{6.0, 1.01, 0.015, 0.00002, 0.000008, 0},
		SrcY:      georef.Poly2{5.0, -0.01, 1.008, 0, 0.000006, 0.00002},
		DstWidth:  gw,
		DstHeight: gh,
		LonMin:    region.MinX,
		LatMax:    region.MaxY,
		LonStep:   PixelDeg,
		LatStep:   PixelDeg,
	}
	return s
}

// Transform exposes the chain's georeferencing transform (known a priori
// in the operational service; Fit can re-derive it from control points).
func (s *Simulator) Transform() georef.Transform { return s.geoToRaw }

// ControlPoints samples ground control points tying geo pixels to raw
// pixels, for refitting the polynomial after satellite drift.
func (s *Simulator) ControlPoints(n int) []georef.ControlPoint {
	out := make([]georef.ControlPoint, 0, n)
	side := int(math.Sqrt(float64(n))) + 1
	for i := 0; i < side; i++ {
		for j := 0; j < side && len(out) < n; j++ {
			dx := float64(i) * float64(s.GeoWidth-1) / float64(side-1)
			dy := float64(j) * float64(s.GeoHeight-1) / float64(side-1)
			out = append(out, georef.ControlPoint{
				DstX: dx, DstY: dy,
				SrcX: s.geoToRaw.SrcX.Eval(dx, dy),
				SrcY: s.geoToRaw.SrcY.Eval(dx, dy),
			})
		}
	}
	return out
}

// GeoTemperatures renders the two brightness-temperature fields on the
// geographic grid at time t (the physical scene before scan distortion).
func (s *Simulator) GeoTemperatures(t time.Time) (t039, t108 *array.Dense) {
	w, h := s.GeoWidth, s.GeoHeight
	t039 = array.New(w, h)
	t108 = array.New(w, h)
	world := s.Scenario.World
	active := s.Scenario.ActiveAt(t)
	var arts []Artifact
	for _, a := range s.Scenario.Artifacts {
		if !t.Before(a.Start) && !t.After(a.End) {
			arts = append(arts, a)
		}
	}
	// Deterministic per-acquisition sensor noise.
	noise := rand.New(rand.NewSource(s.Scenario.Seed ^ t.Unix()))

	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			lon, lat := s.geoToRaw.PixelToGeo(x, y)
			p := geom.Point{X: lon, Y: lat}
			zen := solar.ZenithAngle(t, lon, lat)
			daylight := math.Max(0, math.Cos(zen*math.Pi/180))

			var base108 float64
			if world.LandAt(p) {
				base108 = 286 + 16*daylight
				switch world.CoverAt(p) {
				case auxdata.CoverUrban:
					base108 += 3
				case auxdata.CoverAgricultural:
					base108 += 2
				case auxdata.CoverScrub:
					base108 += 1
				}
			} else {
				base108 = 291 + 1.5*daylight
			}
			base039 := base108 + 1.0 + 0.5*daylight

			// Ground-truth fires: strong sub-pixel-sensitive 3.9 µm bump.
			for _, f := range active {
				frac := coverageFraction(p, f.Event.Center, f.RadiusKm, PixelKm)
				if frac <= 0 {
					continue
				}
				// The 3.9 µm channel saturates quickly with fire fraction
				// (the paper: "a small portion of a pixel ... will
				// suffice").
				bump := f.Event.Intensity * math.Min(1, 6*math.Sqrt(frac))
				base039 += bump
				base108 += f.Event.Intensity * 0.25 * frac
			}
			// Artifacts.
			for _, a := range arts {
				frac := coverageFraction(p, a.Center, 2.0, PixelKm)
				if frac <= 0 {
					continue
				}
				switch a.Kind {
				case ArtifactGlint:
					// Glint needs daylight.
					base039 += a.Strength * frac * daylight * 2.5
				case ArtifactAgriBurn:
					base039 += a.Strength * math.Min(1, 3*frac)
					base108 += a.Strength * 0.15 * frac
				case ArtifactSmoke:
					base039 += a.Strength * math.Min(1, 2*frac)
				}
			}
			t039.Set(x, y, base039+noise.NormFloat64()*0.4)
			t108.Set(x, y, base108+noise.NormFloat64()*0.3)
		}
	}
	return t039, t108
}

// RawAcquisition is one acquisition in raw form: per-channel HRIT
// segment files (encoded bytes), as delivered by the ground station.
type RawAcquisition struct {
	Sensor    Sensor
	Timestamp time.Time
	// Segments maps channel name to its encoded segment files, in
	// arrival order (shuffled deterministically — segments arrive
	// out-of-order in the operational feed).
	Segments map[string][][]byte
}

// Acquire renders the scene at t, warps it to the raw scan grid,
// calibrates temperatures to 10-bit counts, and encodes HRIT segments.
func (s *Simulator) Acquire(sensor Sensor, t time.Time, segments int, compressed bool) (*RawAcquisition, error) {
	t039, t108 := s.GeoTemperatures(t)
	raw039 := s.warpToRaw(t039)
	raw108 := s.warpToRaw(t108)

	out := &RawAcquisition{Sensor: sensor, Timestamp: t, Segments: make(map[string][][]byte)}
	shuffle := rand.New(rand.NewSource(s.Scenario.Seed ^ t.Unix() ^ int64(len(sensor.Name))))
	for _, band := range []struct {
		channel string
		img     *array.Dense
	}{
		{hrit.ChannelIR039, raw039},
		{hrit.ChannelIR108, raw108},
	} {
		cal, err := hrit.CalibrationFor(band.channel)
		if err != nil {
			return nil, err
		}
		counts := make([]uint16, band.img.Len())
		vals := band.img.Values()
		for i, v := range vals {
			counts[i] = cal.TempToCount(v)
		}
		hdr := hrit.SegmentHeader{
			ProductName: fmt.Sprintf("%s-SEVIRI", sensor.Name),
			Channel:     band.channel,
			Timestamp:   t,
			Compressed:  compressed,
		}
		segs, err := hrit.Split(counts, band.img.Width(), segments, hdr)
		if err != nil {
			return nil, err
		}
		encoded := make([][]byte, len(segs))
		for i, sg := range segs {
			raw, err := hrit.Encode(sg)
			if err != nil {
				return nil, err
			}
			encoded[i] = raw
		}
		shuffle.Shuffle(len(encoded), func(i, j int) {
			encoded[i], encoded[j] = encoded[j], encoded[i]
		})
		out.Segments[band.channel] = encoded
	}
	return out, nil
}

// warpToRaw resamples a geo-grid field onto the raw scan grid using the
// inverse of the chain's transform (Newton iteration on the polynomial).
func (s *Simulator) warpToRaw(geoImg *array.Dense) *array.Dense {
	inv := func(u, v int) (float64, float64) {
		// Solve geoToRaw(x, y) = (u, v) for (x, y).
		x, y := float64(u)-6, float64(v)-5 // affine initial guess
		for iter := 0; iter < 4; iter++ {
			fx := s.geoToRaw.SrcX.Eval(x, y) - float64(u)
			fy := s.geoToRaw.SrcY.Eval(x, y) - float64(v)
			// Jacobian of the near-affine transform.
			j11 := s.geoToRaw.SrcX[1] + 2*s.geoToRaw.SrcX[3]*x + s.geoToRaw.SrcX[4]*y
			j12 := s.geoToRaw.SrcX[2] + s.geoToRaw.SrcX[4]*x + 2*s.geoToRaw.SrcX[5]*y
			j21 := s.geoToRaw.SrcY[1] + 2*s.geoToRaw.SrcY[3]*x + s.geoToRaw.SrcY[4]*y
			j22 := s.geoToRaw.SrcY[2] + s.geoToRaw.SrcY[4]*x + 2*s.geoToRaw.SrcY[5]*y
			det := j11*j22 - j12*j21
			if math.Abs(det) < 1e-12 {
				break
			}
			x -= (fx*j22 - fy*j12) / det
			y -= (fy*j11 - fx*j21) / det
		}
		return x, y
	}
	out := array.New(s.RawWidth, s.RawHeight)
	// Fill with a sane background so border pixels calibrate validly.
	out.Fill(280)
	resampled := geoImg.Resample(s.RawWidth, s.RawHeight, inv)
	x0, y0 := resampled.Origin()
	for y := 0; y < s.RawHeight; y++ {
		for x := 0; x < s.RawWidth; x++ {
			if resampled.Valid(x0+x, y0+y) {
				out.Set(x, y, resampled.Get(x0+x, y0+y))
			}
		}
	}
	return out
}

// AcquisitionTimes lists a sensor's acquisition timestamps over a window.
func AcquisitionTimes(sensor Sensor, from time.Time, span time.Duration) []time.Time {
	var out []time.Time
	for t := from; t.Before(from.Add(span)); t = t.Add(sensor.Cadence) {
		out = append(out, t)
	}
	return out
}
