// Package seviri simulates the MSG/SEVIRI observation system of the
// paper: the geostationary acquisition cadence of MSG-1 (5 min) and MSG-2
// (15 min), the IR 3.9/10.8 µm radiometry with a diurnal surface cycle,
// seeded wildfire scenarios with growth and decay, and the false-alarm
// sources the paper's refinement step targets (sun glint over the sea,
// agricultural burns, smoke plumes near active fires). Acquisitions are
// emitted as raw HRIT segment files on a distorted scan grid, so the full
// chain — vault ingest, crop, georeference, classify — exercises the same
// code paths as the operational service.
package seviri

import (
	"math"
	"math/rand"
	"time"

	"repro/internal/auxdata"
	"repro/internal/geom"
)

// FireEvent is one wildfire of the ground truth.
type FireEvent struct {
	ID     int
	Center geom.Point
	Start  time.Time
	End    time.Time
	// PeakRadiusKm is the fire front radius at the peak of the event.
	PeakRadiusKm float64
	// Intensity is the 3.9 µm brightness-temperature excess (K) of a
	// fully burning pixel at peak.
	Intensity float64
}

// RadiusKmAt returns the footprint radius at time t: quadratic ramp to
// the peak at 60% of the event, then decay.
func (f FireEvent) RadiusKmAt(t time.Time) float64 {
	if t.Before(f.Start) || t.After(f.End) {
		return 0
	}
	total := f.End.Sub(f.Start).Seconds()
	frac := t.Sub(f.Start).Seconds() / total
	peakAt := 0.6
	if frac <= peakAt {
		x := frac / peakAt
		return f.PeakRadiusKm * x * (2 - x)
	}
	x := (frac - peakAt) / (1 - peakAt)
	return f.PeakRadiusKm * (1 - 0.8*x)
}

// ArtifactKind enumerates the false-alarm sources.
type ArtifactKind int

// Artifact kinds, matching the paper's error taxonomy.
const (
	// ArtifactGlint: daytime sun glint over the sea near the coast —
	// "hotspots occurring in the sea".
	ArtifactGlint ArtifactKind = iota
	// ArtifactAgriBurn: farmer burns on agricultural plains — "real cases
	// of fires located in big agricultural plains ... not real forest
	// fires".
	ArtifactAgriBurn
	// ArtifactSmoke: hot smoke fumes adjacent to active fires — "false
	// alarms, such as hot smoke fumes from nearby fires".
	ArtifactSmoke
)

// Artifact is one false-alarm source with a time window.
type Artifact struct {
	Kind     ArtifactKind
	Center   geom.Point
	Start    time.Time
	End      time.Time
	Strength float64 // 3.9 µm excess (K)
}

// Scenario is a full synthetic fire season fragment: ground-truth fires
// plus artifact sources, generated deterministically over a world.
type Scenario struct {
	Seed      int64
	World     *auxdata.World
	Fires     []FireEvent
	Artifacts []Artifact
}

// ScenarioConfig controls scenario generation.
type ScenarioConfig struct {
	Start time.Time
	Days  int
	// FiresPerDay controls ground-truth fire ignitions.
	FiresPerDay int
	// SmallFireFraction is the share of fires too small for reliable MSG
	// detection (MODIS still sees them) — the omission error source.
	SmallFireFraction float64
	// ArtifactsPerDay controls glint/agri-burn injections.
	ArtifactsPerDay int
}

// DefaultScenarioConfig mirrors the paper's severe-fire-days evaluation
// window (24–26 Aug 2007).
func DefaultScenarioConfig() ScenarioConfig {
	return ScenarioConfig{
		Start:             time.Date(2007, 8, 24, 0, 0, 0, 0, time.UTC),
		Days:              3,
		FiresPerDay:       8,
		SmallFireFraction: 0.25,
		ArtifactsPerDay:   6,
	}
}

// GenerateScenario builds a deterministic scenario over the world.
func GenerateScenario(w *auxdata.World, seed int64, cfg ScenarioConfig) *Scenario {
	r := rand.New(rand.NewSource(seed))
	sc := &Scenario{Seed: seed, World: w}
	id := 0
	for d := 0; d < cfg.Days; d++ {
		day := cfg.Start.Add(time.Duration(d) * 24 * time.Hour)
		for i := 0; i < cfg.FiresPerDay; i++ {
			p, ok := w.RandomForestPoint(r)
			if !ok {
				continue
			}
			id++
			start := day.Add(time.Duration(6+r.Intn(12)) * time.Hour).
				Add(time.Duration(r.Intn(60)) * time.Minute)
			duration := time.Duration(2+r.Intn(9)) * time.Hour
			radius := 2.0 + r.Float64()*4.0 // km
			intensity := 35 + r.Float64()*25
			if r.Float64() < cfg.SmallFireFraction {
				radius = 0.3 + r.Float64()*0.5 // sub-pixel even for MODIS merges
				intensity = 12 + r.Float64()*8
			}
			fire := FireEvent{
				ID: id, Center: p,
				Start: start, End: start.Add(duration),
				PeakRadiusKm: radius, Intensity: intensity,
			}
			sc.Fires = append(sc.Fires, fire)
			// Large fires trail a smoke artifact displaced downwind.
			if radius > 2.5 && r.Float64() < 0.7 {
				sc.Artifacts = append(sc.Artifacts, Artifact{
					Kind: ArtifactSmoke,
					Center: geom.Point{
						X: p.X + 0.05 + r.Float64()*0.05,
						Y: p.Y + 0.03 + r.Float64()*0.04,
					},
					Start:    start.Add(30 * time.Minute),
					End:      start.Add(duration),
					Strength: 14 + r.Float64()*8,
				})
			}
		}
		for i := 0; i < cfg.ArtifactsPerDay; i++ {
			if p, ok := w.CoastPoint(r); ok {
				mid := day.Add(time.Duration(10+r.Intn(4)) * time.Hour)
				sc.Artifacts = append(sc.Artifacts, Artifact{
					Kind: ArtifactGlint, Center: p,
					Start: mid, End: mid.Add(time.Duration(30+r.Intn(90)) * time.Minute),
					Strength: 16 + r.Float64()*10,
				})
			}
			if p, ok := w.RandomAgriculturalPoint(r); ok {
				start := day.Add(time.Duration(8+r.Intn(8)) * time.Hour)
				sc.Artifacts = append(sc.Artifacts, Artifact{
					Kind: ArtifactAgriBurn, Center: p,
					Start: start, End: start.Add(time.Duration(1+r.Intn(3)) * time.Hour),
					Strength: 25 + r.Float64()*15,
				})
			}
		}
	}
	return sc
}

// ActiveFire is a ground-truth fire state at one instant.
type ActiveFire struct {
	Event    FireEvent
	RadiusKm float64
}

// ActiveAt returns the fires burning at time t.
func (sc *Scenario) ActiveAt(t time.Time) []ActiveFire {
	var out []ActiveFire
	for _, f := range sc.Fires {
		if r := f.RadiusKmAt(t); r > 0 {
			out = append(out, ActiveFire{Event: f, RadiusKm: r})
		}
	}
	return out
}

// KmPerDegLon converts at the scenario's latitude band.
const (
	KmPerDegLat = 111.0
	KmPerDegLon = 88.0 // ~cos(37.5°)·111
)

// coverageFraction approximates how much of a size-km pixel centred at
// pix is covered by a fire disk of radius radiusKm at centre c.
func coverageFraction(pix geom.Point, c geom.Point, radiusKm, pixSizeKm float64) float64 {
	dx := (pix.X - c.X) * KmPerDegLon
	dy := (pix.Y - c.Y) * KmPerDegLat
	d := math.Hypot(dx, dy)
	half := pixSizeKm / 2
	if d > radiusKm+half*math.Sqrt2 {
		return 0
	}
	// Sample the pixel on a 4x4 sub-grid.
	inside := 0
	for i := 0; i < 4; i++ {
		for j := 0; j < 4; j++ {
			sx := dx + (float64(i)+0.5)/4*pixSizeKm - half
			sy := dy + (float64(j)+0.5)/4*pixSizeKm - half
			if math.Hypot(sx, sy) <= radiusKm {
				inside++
			}
		}
	}
	return float64(inside) / 16
}
