package refine

import (
	"math/rand"
	"testing"
	"time"

	"repro/internal/auxdata"
	"repro/internal/geom"
	"repro/internal/products"
	"repro/internal/strabon"
)

// testWorldStore loads a tiny hand-made world: one square island with an
// urban cell and a municipality.
func testWorldStore(t *testing.T) *strabon.Store {
	t.Helper()
	s := strabon.New()
	_, err := s.LoadTurtle(`
@prefix coast: <http://teleios.di.uoa.gr/ontologies/coastlineOntology.owl#> .
@prefix clc: <http://teleios.di.uoa.gr/ontologies/clcOntology.owl#> .
@prefix gag: <http://teleios.di.uoa.gr/ontologies/gagOntology.owl#> .
@prefix strdf: <http://strdf.di.uoa.gr/ontology#> .

coast:Coastline_1 a coast:Coastline ;
  strdf:hasGeometry "POLYGON ((22 37, 24 37, 24 39, 22 39, 22 37))"^^strdf:geometry .

clc:Area_urban a clc:Area ;
  clc:hasLandUse clc:ContinuousUrbanFabric ;
  strdf:hasGeometry "POLYGON ((23 38, 23.5 38, 23.5 38.5, 23 38.5, 23 38))"^^strdf:geometry .

clc:Area_forest a clc:Area ;
  clc:hasLandUse clc:ConiferousForest ;
  strdf:hasGeometry "POLYGON ((22 37, 23 37, 23 38, 22 38, 22 37))"^^strdf:geometry .

gag:mun1 a gag:Municipality ;
  strdf:hasGeometry "POLYGON ((22 37, 24 37, 24 39, 22 39, 22 37))"^^strdf:geometry .
`)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func hotspotAt(lon, lat float64, at time.Time, id string) products.Hotspot {
	return products.Hotspot{
		ID:         id,
		Geometry:   geom.NewSquare(lon, lat, 0.04),
		Confidence: 1.0,
		AcquiredAt: at,
		Sensor:     "MSG1",
		Chain:      "sciql",
		Producer:   "noa",
	}
}

func TestRunAllOperationOrder(t *testing.T) {
	s := testWorldStore(t)
	r := NewRunner(s)
	at := time.Date(2007, 8, 24, 12, 0, 0, 0, time.UTC)
	p := &products.Product{
		Sensor: "MSG1", Chain: "sciql", AcquiredAt: at,
		Hotspots: []products.Hotspot{
			hotspotAt(22.5, 37.5, at, "forest"),
			hotspotAt(25.5, 35.5, at, "sea"),
			hotspotAt(23.2, 38.2, at, "urban"),
		},
	}
	timings, err := r.RunAll(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(timings) != len(AllOps) {
		t.Fatalf("%d timings", len(timings))
	}
	for i, tm := range timings {
		if tm.Op != AllOps[i] {
			t.Fatalf("op %d = %s, want %s", i, tm.Op, AllOps[i])
		}
		if tm.Duration <= 0 {
			t.Fatalf("op %s has no duration", tm.Op)
		}
	}
	// Only the forest hotspot must survive: sea deleted, urban deleted.
	res, err := r.CurrentHotspots(at)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 {
		t.Fatalf("%d hotspots survive, want 1", len(res.Rows))
	}
}

func TestMunicipalityAssociation(t *testing.T) {
	s := testWorldStore(t)
	r := NewRunner(s)
	at := time.Date(2007, 8, 24, 12, 0, 0, 0, time.UTC)
	p := &products.Product{
		Sensor: "MSG1", Chain: "sciql", AcquiredAt: at,
		Hotspots: []products.Hotspot{hotspotAt(22.5, 37.5, at, "h1")},
	}
	if _, err := r.StoreProduct(p); err != nil {
		t.Fatal(err)
	}
	n, err := r.Municipalities(p)
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Fatalf("associations = %d", n)
	}
}

func TestRefineInCoastClipsGeometry(t *testing.T) {
	s := testWorldStore(t)
	r := NewRunner(s)
	at := time.Date(2007, 8, 24, 12, 0, 0, 0, time.UTC)
	// A hotspot square straddling the island's west edge at x=22.
	p := &products.Product{
		Sensor: "MSG1", Chain: "sciql", AcquiredAt: at,
		Hotspots: []products.Hotspot{hotspotAt(22.0, 38.0, at, "coastal")},
	}
	if _, err := r.StoreProduct(p); err != nil {
		t.Fatal(err)
	}
	if _, err := r.RefineInCoast(p); err != nil {
		t.Fatal(err)
	}
	res, err := r.CurrentHotspots(at)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	g, err := geom.ParseWKT(res.Rows[0]["g"].Value)
	if err != nil {
		t.Fatal(err)
	}
	full := 0.04 * 0.04
	if a := geom.Area(g); a > full*0.6 || a < full*0.4 {
		t.Fatalf("clipped area = %g, want about half of %g", a, full)
	}
}

func TestTimePersistenceConfirmsAndReinstates(t *testing.T) {
	s := testWorldStore(t)
	r := NewRunner(s)
	r.PersistenceMin = 3
	base := time.Date(2007, 8, 24, 12, 0, 0, 0, time.UTC)
	loc := [2]float64{22.5, 37.5}
	// Three prior sightings of the same pixel within the hour.
	for i := 0; i < 3; i++ {
		at := base.Add(time.Duration(i*5) * time.Minute)
		p := &products.Product{
			Sensor: "MSG1", Chain: "sciql", AcquiredAt: at,
			Hotspots: []products.Hotspot{hotspotAt(loc[0], loc[1], at, "p")},
		}
		if _, err := r.StoreProduct(p); err != nil {
			t.Fatal(err)
		}
	}
	// Fresh acquisition WITHOUT the persistent hotspot: reinstatement.
	at := base.Add(20 * time.Minute)
	empty := &products.Product{Sensor: "MSG1", Chain: "sciql", AcquiredAt: at}
	if _, err := r.StoreProduct(empty); err != nil {
		t.Fatal(err)
	}
	n, err := r.TimePersistence(empty)
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Fatalf("persistence affected %d, want 1 reinstated hotspot", n)
	}
	res, err := r.CurrentHotspots(at)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 {
		t.Fatalf("reinstated hotspots = %d", len(res.Rows))
	}
	// Fresh acquisition WITH the hotspot: confirmation path.
	at2 := base.Add(25 * time.Minute)
	h := hotspotAt(loc[0], loc[1], at2, "fresh")
	h.Confidence = 0.5
	h.Confirmation = false
	withHot := &products.Product{
		Sensor: "MSG1", Chain: "sciql", AcquiredAt: at2,
		Hotspots: []products.Hotspot{h},
	}
	if _, err := r.StoreProduct(withHot); err != nil {
		t.Fatal(err)
	}
	if _, err := r.TimePersistence(withHot); err != nil {
		t.Fatal(err)
	}
	res2, err := r.CurrentHotspots(at2)
	if err != nil {
		t.Fatal(err)
	}
	if len(res2.Rows) != 1 {
		t.Fatalf("rows = %d", len(res2.Rows))
	}
	if conf, _ := res2.Rows[0]["conf"].Float(); conf != 1.0 {
		t.Fatalf("confidence = %g, want raised to 1.0", conf)
	}
}

func TestRefineAgainstGeneratedWorld(t *testing.T) {
	// Integration: the synthetic world's triples drive the full sequence.
	w := auxdata.Generate(42)
	s := strabon.New()
	s.LoadTriples(w.AllTriples())
	r := NewRunner(s)
	at := time.Date(2007, 8, 24, 12, 0, 0, 0, time.UTC)

	// One hotspot in deep sea, one on a forest point.
	fp, ok := w.RandomForestPoint(randSrc())
	if !ok {
		t.Skip("no forest point")
	}
	p := &products.Product{
		Sensor: "MSG1", Chain: "sciql", AcquiredAt: at,
		Hotspots: []products.Hotspot{
			hotspotAt(fp.X, fp.Y, at, "forest"),
			hotspotAt(25.9, 35.1, at, "deepsea"),
		},
	}
	if _, err := r.RunAll(p); err != nil {
		t.Fatal(err)
	}
	res, err := r.CurrentHotspots(at)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 {
		t.Fatalf("%d hotspots survive, want only the forest one", len(res.Rows))
	}
}

func randSrc() *rand.Rand { return rand.New(rand.NewSource(9)) }
