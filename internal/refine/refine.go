// Package refine implements the semantic refinement step of Section
// 3.2.4: the sequence of stSPARQL updates that runs against Strabon after
// every acquisition's product is stored. The six operations are the ones
// timed in the paper's Figure 8: Store, Municipalities, Delete In Sea,
// Invalid For Fires, Refine In Coast, and Time Persistence.
package refine

import (
	"context"
	"fmt"
	"time"

	"repro/internal/geom"
	"repro/internal/ontology"
	"repro/internal/products"
	"repro/internal/rdf"
	"repro/internal/strabon"
	"repro/internal/stsparql"
)

// Op names the refinement operations in execution order (the legend of
// Figure 8).
type Op string

// The Figure 8 operations.
const (
	OpStore           Op = "Store"
	OpMunicipalities  Op = "Municipalities"
	OpDeleteInSea     Op = "Delete In Sea"
	OpInvalidForFires Op = "Invalid For Fires"
	OpRefineInCoast   Op = "Refine In Coast"
	OpTimePersistence Op = "Time Persistence"
)

// AllOps lists the operations in execution order.
var AllOps = []Op{
	OpStore, OpMunicipalities, OpDeleteInSea,
	OpInvalidForFires, OpRefineInCoast, OpTimePersistence,
}

// Timing records one operation's response time at one acquisition — one
// point of Figure 8.
type Timing struct {
	Op       Op
	At       time.Time
	Duration time.Duration
	// Affected counts matched solutions / changed triples, whichever is
	// more informative for the op.
	Affected int
}

// Runner executes the refinement sequence against a Strabon store —
// the single strabon.Store or the sharded store, through strabon.API.
type Runner struct {
	Store strabon.API
	// PersistenceWindow is the look-back of the Time Persistence
	// heuristic (the paper: "during the last hour(s)").
	PersistenceWindow time.Duration
	// PersistenceMin is how many sightings within the window confirm a
	// location.
	PersistenceMin int
}

// NewRunner returns a Runner with the paper's defaults.
func NewRunner(s strabon.API) *Runner {
	return &Runner{Store: s, PersistenceWindow: time.Hour, PersistenceMin: 2}
}

func xsdTime(t time.Time) string { return t.UTC().Format("2006-01-02T15:04:05") }

// RunAll stores a product and applies every refinement operation,
// returning the per-operation timings (one Figure 8 column).
func (r *Runner) RunAll(p *products.Product) ([]Timing, error) {
	out, err := r.runSteps(p, nil, []step{{OpStore, r.StoreProduct}})
	if err != nil {
		return out, err
	}
	out, err = r.RunScoped(p, out)
	if err != nil {
		return out, err
	}
	return r.RunHistorical(p, out)
}

type step struct {
	op Op
	fn func(*products.Product) (int, error)
}

func (r *Runner) runSteps(p *products.Product, out []Timing, steps []step) ([]Timing, error) {
	for _, s := range steps {
		start := time.Now()
		n, err := s.fn(p)
		if err != nil {
			return out, fmt.Errorf("refine: %s: %w", s.op, err)
		}
		out = append(out, Timing{Op: s.op, At: p.AcquiredAt, Duration: time.Since(start), Affected: n})
	}
	return out, nil
}

// RunScoped applies the acquisition-scoped refinement operations —
// Municipalities, Delete In Sea, Invalid For Fires, Refine In Coast —
// appending their timings to out. Every one of these updates filters on
// the product's own acquisition timestamp and reads otherwise static
// auxiliary data, so RunScoped calls for DIFFERENT acquisitions are
// mutually independent. The product's triples must already be stored.
func (r *Runner) RunScoped(p *products.Product, out []Timing) ([]Timing, error) {
	return r.runSteps(p, out, []step{
		{OpMunicipalities, r.Municipalities},
		{OpDeleteInSea, r.DeleteInSea},
		{OpInvalidForFires, r.InvalidForFires},
		{OpRefineInCoast, r.RefineInCoast},
	})
}

// RunScopedRange is the batch-rule-evaluation form of RunScoped: each
// scoped operation is evaluated ONCE over the whole acquisition range
// [from, to] instead of once per acquisition. Because every scoped
// operation acts hotspot-by-hotspot (scoping merely selects which
// hotspots), a range evaluation over a batch of acquisitions deletes,
// clips and annotates exactly the hotspots the per-acquisition runs
// would — while paying the evaluation's scan and join setup once per
// flush instead of once per acquisition. The pipeline writer calls this
// with the first and last timestamps of a flush; the range must cover no
// acquisitions outside the flush. Timings carry the whole batch's cost
// and the At of the range start.
func (r *Runner) RunScopedRange(from, to time.Time) ([]Timing, error) {
	var out []Timing
	scope := scopeRange(from, to)
	for _, s := range []struct {
		op Op
		fn func(string) (int, error)
	}{
		{OpMunicipalities, r.municipalitiesScope},
		{OpDeleteInSea, r.deleteInSeaScope},
		{OpInvalidForFires, r.invalidForFiresScope},
		{OpRefineInCoast, r.refineInCoastScope},
	} {
		start := time.Now()
		n, err := s.fn(scope)
		if err != nil {
			return out, fmt.Errorf("refine: %s: %w", s.op, err)
		}
		out = append(out, Timing{Op: s.op, At: from, Duration: time.Since(start), Affected: n})
	}
	return out, nil
}

// scopeEq renders the acquisition filter selecting exactly one
// acquisition's hotspots.
func scopeEq(at time.Time) string {
	return fmt.Sprintf(`FILTER( str(?at) = "%s" )`, xsdTime(at))
}

// scopeRange renders the filter selecting every acquisition in the
// inclusive range; the xsd:dateTime text format compares chronologically
// as strings.
func scopeRange(from, to time.Time) string {
	if from.Equal(to) {
		return scopeEq(from)
	}
	return fmt.Sprintf(`FILTER( str(?at) >= "%s" )
  FILTER( str(?at) <= "%s" )`, xsdTime(from), xsdTime(to))
}

// RunHistorical applies the operations that read other acquisitions'
// history — currently Time Persistence, whose sighting window spans the
// preceding hour. These must run in acquisition order, after every
// earlier acquisition has been fully refined; the pipeline serialises
// them on its writer goroutine.
func (r *Runner) RunHistorical(p *products.Product, out []Timing) ([]Timing, error) {
	return r.runSteps(p, out, []step{{OpTimePersistence, r.TimePersistence}})
}

// StoreProduct inserts the product's RDF-ization (the "Store" series).
func (r *Runner) StoreProduct(p *products.Product) (int, error) {
	return r.Store.LoadTriples(p.Triples()), nil
}

// Municipalities associates each fresh hotspot with the municipalities
// its pixel interacts with — the operation the paper singles out as the
// slowest ("labeled as Municipalities ... there are cases where it needs
// four seconds").
func (r *Runner) Municipalities(p *products.Product) (int, error) {
	return r.municipalitiesScope(scopeEq(p.AcquiredAt))
}

func (r *Runner) municipalitiesScope(scope string) (int, error) {
	st, err := r.Store.UpdateScoped(fmt.Sprintf(`
INSERT { ?h noa:isInMunicipality ?m }
WHERE {
  ?h a noa:Hotspot ;
     noa:hasAcquisitionDateTime ?at ;
     strdf:hasGeometry ?hGeo .
  ?m a gag:Municipality ;
     strdf:hasGeometry ?mGeo .
  %s
  FILTER( strdf:anyInteract(?hGeo, ?mGeo) )
}`, scope))
	return st.Inserted, err
}

// DeleteInSea removes fresh hotspots that touch no coastline polygon —
// the paper's first refinement update, scoped to the acquisition.
func (r *Runner) DeleteInSea(p *products.Product) (int, error) {
	return r.deleteInSeaScope(scopeEq(p.AcquiredAt))
}

func (r *Runner) deleteInSeaScope(scope string) (int, error) {
	st, err := r.Store.UpdateScoped(fmt.Sprintf(`
DELETE { ?h ?hProperty ?hObject }
WHERE {
  ?h a noa:Hotspot ;
     noa:hasAcquisitionDateTime ?at ;
     strdf:hasGeometry ?hGeo ;
     ?hProperty ?hObject .
  %s
  OPTIONAL {
    ?c a coast:Coastline ;
       strdf:hasGeometry ?cGeo .
    FILTER( strdf:anyInteract(?hGeo, ?cGeo) )
  }
  FILTER( !bound(?c) )
}`, scope))
	return st.Deleted, err
}

// InvalidForFires removes fresh hotspots lying entirely on land-cover
// classes where forest fires are implausible (urban fabric, arable
// plains) — the paper's "hotspots located outside forested areas".
func (r *Runner) InvalidForFires(p *products.Product) (int, error) {
	return r.invalidForFiresScope(scopeEq(p.AcquiredAt))
}

func (r *Runner) invalidForFiresScope(scope string) (int, error) {
	st, err := r.Store.UpdateScoped(fmt.Sprintf(`
DELETE { ?h ?hProperty ?hObject }
WHERE {
  ?h a noa:Hotspot ;
     noa:hasAcquisitionDateTime ?at ;
     strdf:hasGeometry ?hGeo ;
     ?hProperty ?hObject .
  ?a a clc:Area ;
     clc:hasLandUse ?use ;
     strdf:hasGeometry ?aGeo .
  %s
  FILTER( ?use = <%s> || ?use = <%s> )
  FILTER( strdf:coveredBy(?hGeo, ?aGeo) )
}`, scope, ontology.ClassArable, ontology.ClassUrbanFabric))
	return st.Deleted, err
}

// RefineInCoast clips fresh hotspots that straddle the coastline to
// their land part — the paper's second refinement update.
func (r *Runner) RefineInCoast(p *products.Product) (int, error) {
	return r.refineInCoastScope(scopeEq(p.AcquiredAt))
}

func (r *Runner) refineInCoastScope(scope string) (int, error) {
	st, err := r.Store.UpdateScoped(fmt.Sprintf(`
DELETE { ?h strdf:hasGeometry ?hGeo }
INSERT { ?h strdf:hasGeometry ?dif }
WHERE {
  SELECT DISTINCT ?h ?hGeo
    (strdf:intersection(?hGeo, strdf:union(?cGeo)) AS ?dif)
  WHERE {
    ?h a noa:Hotspot ;
       noa:hasAcquisitionDateTime ?at ;
       strdf:hasGeometry ?hGeo .
    ?c a coast:Coastline ;
       strdf:hasGeometry ?cGeo .
    %s
    FILTER( strdf:anyInteract(?hGeo, ?cGeo) )
  }
  GROUP BY ?h ?hGeo
  HAVING strdf:overlap(?hGeo, strdf:union(?cGeo))
}`, scope))
	return st.Inserted, err
}

// TimePersistence implements the paper's persistence heuristic: "check
// the number of times a specific fire was detected over the same or near
// the same geographic location during the last hour(s) ... attributing a
// level of confidence to each detected pixel". Two effects:
//
//  1. Fresh hotspots whose location was sighted at least PersistenceMin
//     times within the window are confirmed (confidence raised to 1.0).
//  2. Persistent locations missing from the fresh product are
//     reinstated as virtual hotspots — this is what grows the refined
//     chain's hotspot count in Table 1 and cuts the omission error.
func (r *Runner) TimePersistence(p *products.Product) (int, error) {
	since := p.AcquiredAt.Add(-r.PersistenceWindow)
	affected := 0

	// Effect 1: confirm persistent fresh hotspots.
	for _, h := range p.Hotspots {
		n, err := r.sightings(h, since, p.AcquiredAt)
		if err != nil {
			return affected, err
		}
		if n >= r.PersistenceMin {
			uri := products.HotspotURI(h)
			st, err := r.Store.Update(fmt.Sprintf(`
DELETE { <%[1]s> noa:hasConfidence ?c . <%[1]s> noa:hasConfirmation ?cf }
INSERT { <%[1]s> noa:hasConfidence 1.0 . <%[1]s> noa:hasConfirmation noa:confirmed }
WHERE  { <%[1]s> noa:hasConfidence ?c ; noa:hasConfirmation ?cf . }`, uri))
			if err != nil {
				return affected, err
			}
			affected += st.Inserted / 2
		}
	}

	// Effect 2: reinstate persistent locations absent from this product.
	res, err := strabon.MaterialiseQuery(context.Background(), r.Store, fmt.Sprintf(`
SELECT DISTINCT ?hGeo (COUNT(?h) AS ?n)
WHERE {
  ?h a noa:Hotspot ;
     noa:hasAcquisitionDateTime ?at ;
     strdf:hasGeometry ?hGeo .
  FILTER( str(?at) >= "%s" )
  FILTER( str(?at) < "%s" )
}
GROUP BY ?hGeo
HAVING (COUNT(?h) >= %d)`, xsdTime(since), xsdTime(p.AcquiredAt), r.PersistenceMin))
	if err != nil {
		return affected, err
	}
	fresh := make(map[string]bool, len(p.Hotspots))
	for _, h := range p.Hotspots {
		fresh[geomKey(rdf.NewGeometry(wktOf(h)))] = true
	}
	virt := 0
	for _, row := range res.Rows {
		g := row["hGeo"]
		if fresh[geomKey(g)] {
			continue
		}
		virt++
		uri := fmt.Sprintf("%sHotspot_%s_%s_persist%d", ontology.NOA,
			p.Sensor, p.AcquiredAt.UTC().Format("20060102T150405"), virt)
		ins := fmt.Sprintf(`
INSERT DATA {
  <%s> a noa:Hotspot ;
    noa:hasAcquisitionDateTime "%s"^^xsd:dateTime ;
    noa:hasConfidence 0.5 ;
    noa:hasConfirmation noa:unconfirmed ;
    strdf:hasGeometry %s ;
    noa:isDerivedFromSensor "%s"^^xsd:string ;
    noa:isProducedBy noa:noa ;
    noa:isFromProcessingChain "time-persistence"^^xsd:string .
}`, uri, xsdTime(p.AcquiredAt), g.String(), p.Sensor)
		if _, err := r.Store.Update(ins); err != nil {
			return affected, err
		}
		affected++
	}
	return affected, nil
}

// sightings counts prior hotspots interacting with h's pixel within the
// window.
func (r *Runner) sightings(h products.Hotspot, since, until time.Time) (int, error) {
	res, err := strabon.MaterialiseQuery(context.Background(), r.Store, fmt.Sprintf(`
SELECT ?h WHERE {
  ?h a noa:Hotspot ;
     noa:hasAcquisitionDateTime ?at ;
     strdf:hasGeometry ?g .
  FILTER( str(?at) >= "%s" )
  FILTER( str(?at) < "%s" )
  FILTER( strdf:anyInteract(?g, "%s"^^strdf:WKT) )
}`, xsdTime(since), xsdTime(until), wktOf(h)))
	if err != nil {
		return 0, err
	}
	return len(res.Rows), nil
}

func wktOf(h products.Hotspot) string {
	return geom.WKT(h.Geometry)
}

// geomKey normalises a geometry term for set membership.
func geomKey(t rdf.Term) string { return t.Value }

// CurrentHotspots lists the hotspot URIs and geometries present in the
// store for one acquisition (post-refinement product extraction).
func (r *Runner) CurrentHotspots(at time.Time) (*stsparql.Result, error) {
	return strabon.MaterialiseQuery(context.Background(), r.Store, fmt.Sprintf(`
SELECT ?h ?g ?conf WHERE {
  ?h a noa:Hotspot ;
     noa:hasAcquisitionDateTime ?at ;
     noa:hasConfidence ?conf ;
     strdf:hasGeometry ?g .
  FILTER( str(?at) = "%s" )
}`, xsdTime(at)))
}
