package strabon

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"net/url"
	"regexp"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/resultcache"
)

// newObsEndpoint builds a loaded endpoint with result cache, admission
// and telemetry wired — the full serving tier under observation.
func newObsEndpoint(t *testing.T) (*Endpoint, *Store) {
	t.Helper()
	s := New()
	if _, err := s.LoadTurtle(fixtureTurtle); err != nil {
		t.Fatal(err)
	}
	ep := NewEndpoint(s)
	ep.Results = resultcache.New(64, 1<<20)
	ep.Admission = NewAdmission(4, 16)
	EnableTelemetry(ep, obs.NewRegistry(), obs.NewQueryLog(32))
	return ep, s
}

func obsGet(t *testing.T, srv *httptest.Server, path string) (int, string, http.Header) {
	t.Helper()
	resp, err := http.Get(srv.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(body), resp.Header
}

func TestStatsJSONShape(t *testing.T) {
	ep, _ := newObsEndpoint(t)
	srv := httptest.NewServer(ep)
	defer srv.Close()

	q := url.QueryEscape(`SELECT ?h WHERE { ?h a noa:Hotspot . }`)
	for i := 0; i < 2; i++ { // miss then hit
		if code, _, _ := obsGet(t, srv, "/sparql?query="+q); code != 200 {
			t.Fatalf("query -> %d", code)
		}
	}

	code, body, _ := obsGet(t, srv, "/stats")
	if code != 200 {
		t.Fatalf("/stats -> %d", code)
	}
	var doc map[string]json.RawMessage
	if err := json.Unmarshal([]byte(body), &doc); err != nil {
		t.Fatalf("stats not JSON: %v\n%s", err, body)
	}
	for _, key := range []string{"triples", "store", "dictionary", "endpoint", "plan_cache", "result_cache", "admission"} {
		if _, ok := doc[key]; !ok {
			t.Errorf("/stats lacks %q: %s", key, body)
		}
	}
	var rc resultcache.Stats
	if err := json.Unmarshal(doc["result_cache"], &rc); err != nil {
		t.Fatal(err)
	}
	if rc.Hits != 1 || rc.Misses != 1 {
		t.Fatalf("result cache hits=%d misses=%d, want 1/1", rc.Hits, rc.Misses)
	}
	var ad AdmissionStats
	if err := json.Unmarshal(doc["admission"], &ad); err != nil {
		t.Fatal(err)
	}
	if ad.Admitted != 1 { // only the miss passed the gate
		t.Fatalf("admitted = %d, want 1", ad.Admitted)
	}
}

func TestMetricsEndpoint(t *testing.T) {
	ep, _ := newObsEndpoint(t)
	srv := httptest.NewServer(ep)
	defer srv.Close()

	hot := url.QueryEscape(`SELECT ?h WHERE { ?h a noa:Hotspot . }`)
	obsGet(t, srv, "/sparql?query="+hot)                                         // miss
	obsGet(t, srv, "/sparql?query="+hot)                                         // hit
	obsGet(t, srv, "/sparql?query="+url.QueryEscape(`SELECT ?x WHERE { broken`)) // error
	obsGet(t, srv, "/stats")

	code, body, hdr := obsGet(t, srv, "/metrics")
	if code != 200 {
		t.Fatalf("/metrics -> %d", code)
	}
	if ct := hdr.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Fatalf("content type %q", ct)
	}
	for _, want := range []string{
		`strabon_query_seconds_count{outcome="miss"} 1`,
		`strabon_query_seconds_count{outcome="hit"} 1`,
		`strabon_query_seconds_count{outcome="error"} 1`,
		`strabon_query_seconds_bucket{outcome="miss",le="+Inf"} 1`,
		`strabon_http_requests_total{path="/sparql"} 3`,
		`strabon_http_requests_total{path="/stats"} 1`,
		"strabon_result_rows_total 4", // 2 rows on the miss + 2 replayed on the hit
		"strabon_result_cache_hits_total 1",
		"strabon_result_cache_misses_total 2", // the broken query misses the cache before failing to parse
		"strabon_admission_admitted_total 2",  // ...and passes the admission gate too
		"strabon_admission_wait_seconds_count 2",
		"strabon_store_triples 8",
		"strabon_plan_cache_entries 1",
		"# TYPE strabon_dict_entries gauge",
		"# TYPE strabon_dict_bytes gauge",
		"# TYPE strabon_query_seconds histogram",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics lacks %q", want)
		}
	}
	if t.Failed() {
		t.Log(body)
	}
	sample := regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^}]*\})? -?[0-9+.eEInf-]+$`)
	for _, line := range strings.Split(strings.TrimSpace(body), "\n") {
		if strings.HasPrefix(line, "#") {
			continue
		}
		if !sample.MatchString(line) {
			t.Errorf("malformed sample line %q", line)
		}
	}
}

func TestTraceIDAndSlowQueryLog(t *testing.T) {
	ep, _ := newObsEndpoint(t)
	srv := httptest.NewServer(ep)
	defer srv.Close()

	// Inbound X-Request-Id is echoed and lands in the slow-query log
	// (SlowQuery 0 records every miss).
	req, _ := http.NewRequest(http.MethodGet,
		srv.URL+"/sparql?query="+url.QueryEscape(`SELECT ?h WHERE { ?h a noa:Hotspot . }`), nil)
	req.Header.Set(obs.RequestIDHeader, "trace-42")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if got := resp.Header.Get(obs.RequestIDHeader); got != "trace-42" {
		t.Fatalf("trace id not echoed: %q", got)
	}

	// A minted ID appears when the client sends none.
	code, _, hdr := obsGet(t, srv, "/stats")
	if code != 200 || hdr.Get(obs.RequestIDHeader) == "" {
		t.Fatalf("no minted trace id (code %d)", code)
	}

	code, body, _ := obsGet(t, srv, "/debug/queries")
	if code != 200 {
		t.Fatalf("/debug/queries -> %d", code)
	}
	var recs []obs.QueryRecord
	if err := json.Unmarshal([]byte(body), &recs); err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 {
		t.Fatalf("slow-query log has %d records, want 1: %s", len(recs), body)
	}
	if recs[0].TraceID != "trace-42" || recs[0].Outcome != "miss" || recs[0].Rows != 2 {
		t.Fatalf("record = %+v", recs[0])
	}
	if recs[0].PlanDigest == "" {
		t.Fatal("no plan digest on logged miss")
	}
}

func TestExplainAnalyzeEndpoint(t *testing.T) {
	ep, _ := newObsEndpoint(t)
	srv := httptest.NewServer(ep)
	defer srv.Close()

	q := url.QueryEscape(`SELECT ?h ?c WHERE { ?h a noa:Hotspot ; noa:hasConfidence ?c . }`)
	code, body, _ := obsGet(t, srv, "/explain?analyze=1&query="+q)
	if code != 200 {
		t.Fatalf("/explain?analyze=1 -> %d: %s", code, body)
	}
	for _, want := range []string{"select (analyze)", "actual rows=", "total: rows=2"} {
		if !strings.Contains(body, want) {
			t.Errorf("analyze output lacks %q:\n%s", want, body)
		}
	}

	// Plain explain is unchanged — no actuals.
	code, body, _ = obsGet(t, srv, "/explain?query="+q)
	if code != 200 || strings.Contains(body, "actual rows=") {
		t.Fatalf("plain explain grew actuals (code %d):\n%s", code, body)
	}
}

func TestStoreExplainAnalyze(t *testing.T) {
	s := New()
	if _, err := s.LoadTurtle(fixtureTurtle); err != nil {
		t.Fatal(err)
	}
	out, err := s.ExplainAnalyze(context.Background(), `SELECT ?h WHERE { ?h a noa:Hotspot . }`)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "actual rows=2") || !strings.Contains(out, "total: rows=2") {
		t.Fatalf("analyze output:\n%s", out)
	}

	ask, err := s.ExplainAnalyze(context.Background(), `ASK { ?h a noa:Hotspot }`)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(ask, "ask (analyze)") || !strings.Contains(ask, "total: ask=true") {
		t.Fatalf("ask analyze output:\n%s", ask)
	}

	if _, err := s.ExplainAnalyze(context.Background(), `INSERT DATA { noa:x a noa:Hotspot . }`); err == nil {
		t.Fatal("update accepted by ExplainAnalyze")
	}

	// The analyze evaluation released its read lock: a write must succeed.
	if _, err := s.Update(`INSERT DATA { noa:h9 a noa:Hotspot . }`); err != nil {
		t.Fatal(err)
	}
}

// TestMetricsScrapeRaces scrapes /metrics concurrently with a live
// writer and live queries — the -race guarantee that collectors touch
// shared state safely.
func TestMetricsScrapeRaces(t *testing.T) {
	ep, s := newObsEndpoint(t)
	srv := httptest.NewServer(ep)
	defer srv.Close()

	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { // live writer
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			if _, err := s.Update(fmt.Sprintf(`INSERT DATA { noa:w%d a noa:Hotspot . }`, i)); err != nil {
				t.Error(err)
				return
			}
			time.Sleep(200 * time.Microsecond)
		}
	}()
	for c := 0; c < 3; c++ {
		wg.Add(1)
		go func(id int) { // scrapers + queriers
			defer wg.Done()
			for i := 0; i < 25; i++ {
				if code, body, _ := obsGet(t, srv, "/metrics"); code != 200 || !strings.Contains(body, "# TYPE") {
					t.Errorf("scrape %d/%d -> %d", id, i, code)
					return
				}
				obsGet(t, srv, "/sparql?query="+url.QueryEscape(`SELECT ?h WHERE { ?h a noa:Hotspot . }`))
			}
		}(c)
	}
	time.Sleep(20 * time.Millisecond)
	close(stop)
	wg.Wait()
}
