package strabon

import (
	"fmt"
	"math"
	"sync"
	"testing"

	"repro/internal/geom"
	"repro/internal/rdf"
)

const fixtureTurtle = `
@prefix noa: <http://teleios.di.uoa.gr/ontologies/noaOntology.owl#> .
@prefix strdf: <http://strdf.di.uoa.gr/ontology#> .
@prefix coast: <http://teleios.di.uoa.gr/ontologies/coastlineOntology.owl#> .

noa:Hotspot_1 a noa:Hotspot ;
  noa:hasConfidence 1.0 ;
  strdf:hasGeometry "POLYGON ((2 2, 3 2, 3 3, 2 3, 2 2))"^^strdf:geometry .

noa:Hotspot_2 a noa:Hotspot ;
  noa:hasConfidence 0.5 ;
  strdf:hasGeometry "POLYGON ((20 20, 21 20, 21 21, 20 21, 20 20))"^^strdf:geometry .

coast:Coastline_1 a coast:Coastline ;
  strdf:hasGeometry "POLYGON ((0 0, 10 0, 10 10, 0 10, 0 0))"^^strdf:geometry .
`

func TestLoadTurtleAndQuery(t *testing.T) {
	s := New()
	n, err := s.LoadTurtle(fixtureTurtle)
	if err != nil {
		t.Fatal(err)
	}
	if n != 8 {
		t.Fatalf("loaded %d triples, want 8", n)
	}
	res, err := s.Query(`SELECT ?h WHERE { ?h a noa:Hotspot . }`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
}

func TestSpatialQueryUsesIndex(t *testing.T) {
	s := New()
	if _, err := s.LoadTurtle(fixtureTurtle); err != nil {
		t.Fatal(err)
	}
	res, err := s.Query(`
SELECT ?h WHERE {
  ?h a noa:Hotspot ;
     strdf:hasGeometry ?g .
  FILTER( strdf:anyInteract(?g, "POLYGON ((1 1, 4 1, 4 4, 1 4, 1 1))"^^strdf:WKT) )
}`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 {
		t.Fatalf("rows = %d, want 1", len(res.Rows))
	}
	if s.Stats().IndexHits == 0 {
		t.Fatal("spatial index was not consulted")
	}
}

func TestIndexDisabledGivesSameResults(t *testing.T) {
	query := `
SELECT ?h ?c WHERE {
  ?h a noa:Hotspot ; strdf:hasGeometry ?hg .
  ?c a coast:Coastline ; strdf:hasGeometry ?cg .
  FILTER( strdf:anyInteract(?hg, ?cg) )
}`
	indexed := New()
	plain := NewWithoutIndex()
	for _, s := range []*Store{indexed, plain} {
		if _, err := s.LoadTurtle(fixtureTurtle); err != nil {
			t.Fatal(err)
		}
	}
	r1, err := indexed.Query(query)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := plain.Query(query)
	if err != nil {
		t.Fatal(err)
	}
	if len(r1.Rows) != len(r2.Rows) || len(r1.Rows) != 1 {
		t.Fatalf("indexed %d vs plain %d rows", len(r1.Rows), len(r2.Rows))
	}
	if plain.Stats().IndexHits != 0 {
		t.Fatal("disabled index was consulted")
	}
}

func TestUpdateMaintainsIndex(t *testing.T) {
	s := New()
	if _, err := s.LoadTurtle(fixtureTurtle); err != nil {
		t.Fatal(err)
	}
	// Delete the sea hotspot entirely.
	stats, err := s.Update(`
DELETE { ?h ?p ?o }
WHERE {
  ?h a noa:Hotspot ;
     strdf:hasGeometry ?hGeo ;
     ?p ?o .
  OPTIONAL {
    ?c a coast:Coastline ; strdf:hasGeometry ?cGeo .
    FILTER( strdf:anyInteract(?hGeo, ?cGeo) )
  }
  FILTER( !bound(?c) )
}`)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Deleted != 3 {
		t.Fatalf("deleted = %d, want 3", stats.Deleted)
	}
	// The index must no longer return the deleted geometry.
	found := 0
	s.MatchGeometryWindow(geom.Envelope{MinX: 19, MinY: 19, MaxX: 22, MaxY: 22},
		func(rdf.Triple) bool { found++; return true })
	if found != 0 {
		t.Fatalf("index still holds %d deleted entries", found)
	}
	// The remaining hotspot and the coastline must still be indexed.
	found = 0
	s.MatchGeometryWindow(geom.Envelope{MinX: 0, MinY: 0, MaxX: 5, MaxY: 5},
		func(rdf.Triple) bool { found++; return true })
	if found != 2 {
		t.Fatalf("index returned %d entries, want hotspot + coastline", found)
	}
}

func TestInsertedGeometriesBecomeIndexed(t *testing.T) {
	s := New()
	_, err := s.Update(`
INSERT DATA {
  noa:h9 a noa:Hotspot ;
    strdf:hasGeometry "POLYGON ((5 5, 6 5, 6 6, 5 6, 5 5))"^^strdf:geometry .
}`)
	if err != nil {
		t.Fatal(err)
	}
	found := 0
	s.MatchGeometryWindow(geom.Envelope{MinX: 4, MinY: 4, MaxX: 7, MaxY: 7},
		func(rdf.Triple) bool { found++; return true })
	if found != 1 {
		t.Fatalf("found %d indexed geometries, want 1", found)
	}
}

func TestAskThroughQuery(t *testing.T) {
	s := New()
	if _, err := s.LoadTurtle(fixtureTurtle); err != nil {
		t.Fatal(err)
	}
	res, err := s.Query(`ASK { ?h a noa:Hotspot . }`)
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := res.Rows[0]["ask"].Bool(); !v {
		t.Fatal("ask should be true")
	}
}

func TestQueryRejectsUpdate(t *testing.T) {
	s := New()
	if _, err := s.Query(`DELETE WHERE { ?s ?p ?o }`); err == nil {
		t.Fatal("Query should reject updates")
	}
	if _, err := s.Update(`SELECT ?s WHERE { ?s ?p ?o }`); err == nil {
		t.Fatal("Update should reject queries")
	}
}

func TestTimedOperations(t *testing.T) {
	s := New()
	if _, err := s.LoadTurtle(fixtureTurtle); err != nil {
		t.Fatal(err)
	}
	res, d, err := s.TimedQuery(`SELECT ?h WHERE { ?h a noa:Hotspot . }`)
	if err != nil || d <= 0 || len(res.Rows) != 2 {
		t.Fatalf("timed query: rows=%d d=%v err=%v", len(res.Rows), d, err)
	}
	_, d2, err := s.TimedUpdate(`INSERT DATA { noa:x a noa:Hotspot . }`)
	if err != nil || d2 <= 0 {
		t.Fatalf("timed update: d=%v err=%v", d2, err)
	}
}

func TestLargeSpatialJoinCorrectness(t *testing.T) {
	// Build a grid of polygons and verify the index path returns exactly
	// the brute-force answer for a window join.
	indexed := New()
	plain := NewWithoutIndex()
	var triples []rdf.Triple
	for i := 0; i < 20; i++ {
		for j := 0; j < 20; j++ {
			subj := rdf.NewIRI(fmt.Sprintf("http://e/cell_%d_%d", i, j))
			wkt := fmt.Sprintf("POLYGON ((%d %d, %d %d, %d %d, %d %d, %d %d))",
				i, j, i+1, j, i+1, j+1, i, j+1, i, j)
			triples = append(triples,
				rdf.Triple{S: subj, P: rdf.NewIRI(rdf.RDFType), O: rdf.NewIRI("http://e/Cell")},
				rdf.Triple{S: subj, P: rdf.NewIRI("http://strdf.di.uoa.gr/ontology#hasGeometry"), O: rdf.NewGeometry(wkt)},
			)
		}
	}
	indexed.LoadTriples(triples)
	plain.LoadTriples(triples)
	q := `
PREFIX e: <http://e/>
SELECT ?c WHERE {
  ?c a e:Cell ; strdf:hasGeometry ?g .
  FILTER( strdf:within(?g, "POLYGON ((4.5 4.5, 10.5 4.5, 10.5 10.5, 4.5 10.5, 4.5 4.5))"^^strdf:WKT) )
}`
	r1, err := indexed.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := plain.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	// Cells fully inside (4.5..10.5)^2: x,y in 5..9 => 5x5 = 25.
	if len(r1.Rows) != 25 || len(r2.Rows) != 25 {
		t.Fatalf("indexed=%d plain=%d, want 25", len(r1.Rows), len(r2.Rows))
	}
	if indexed.Stats().IndexHits == 0 {
		t.Fatal("index unused in indexed store")
	}
}

func TestGeometryCacheGrows(t *testing.T) {
	s := New()
	if _, err := s.LoadTurtle(fixtureTurtle); err != nil {
		t.Fatal(err)
	}
	_, err := s.Query(`
SELECT ?h WHERE {
  ?h a noa:Hotspot ; strdf:hasGeometry ?g .
  FILTER( strdf:area(?g) > 0.5 )
}`)
	if err != nil {
		t.Fatal(err)
	}
	if s.cache.Size() == 0 {
		t.Fatal("geometry cache empty after spatial query")
	}
	before := s.cache.Size()
	if _, err := s.Query(`
SELECT ?h WHERE {
  ?h a noa:Hotspot ; strdf:hasGeometry ?g .
  FILTER( strdf:area(?g) > 0.5 )
}`); err != nil {
		t.Fatal(err)
	}
	if s.cache.Size() != before {
		t.Fatalf("cache grew on repeat query: %d -> %d", before, s.cache.Size())
	}
}

func TestMunicipalityAssociationPattern(t *testing.T) {
	// The "Municipalities" refinement op: annotate each hotspot with the
	// municipality containing its centre.
	s := New()
	ttl := fixtureTurtle + `
@prefix gag: <http://teleios.di.uoa.gr/ontologies/gagOntology.owl#> .
gag:munA a gag:Municipality ;
  strdf:hasGeometry "POLYGON ((0 0, 5 0, 5 10, 0 10, 0 0))"^^strdf:geometry .
gag:munB a gag:Municipality ;
  strdf:hasGeometry "POLYGON ((5 0, 10 0, 10 10, 5 10, 5 0))"^^strdf:geometry .
`
	if _, err := s.LoadTurtle(ttl); err != nil {
		t.Fatal(err)
	}
	stats, err := s.Update(`
INSERT { ?h noa:isInMunicipality ?m }
WHERE {
  ?h a noa:Hotspot ; strdf:hasGeometry ?hg .
  ?m a gag:Municipality ; strdf:hasGeometry ?mg .
  FILTER( strdf:anyInteract(?hg, ?mg) )
}`)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Inserted != 1 {
		t.Fatalf("inserted = %d, want 1 (only the land hotspot)", stats.Inserted)
	}
	res, err := s.Query(`SELECT ?m WHERE { noa:Hotspot_1 noa:isInMunicipality ?m . }`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	if got := res.Rows[0]["m"].Value; got != "http://teleios.di.uoa.gr/ontologies/gagOntology.owl#munA" {
		t.Fatalf("municipality = %q", got)
	}
}

func TestStatsCounting(t *testing.T) {
	s := New()
	if _, err := s.LoadTurtle(fixtureTurtle); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, err := s.Query(`SELECT ?h WHERE { ?h a noa:Hotspot . }`); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := s.Update(`INSERT DATA { noa:y a noa:Hotspot . }`); err != nil {
		t.Fatal(err)
	}
	st := s.Stats()
	if st.Queries != 3 || st.Updates != 1 || st.TriplesLoaded != 8 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestAreaFunctionThroughEndpoint(t *testing.T) {
	s := New()
	if _, err := s.LoadTurtle(fixtureTurtle); err != nil {
		t.Fatal(err)
	}
	res, err := s.Query(`
SELECT ?h (strdf:area(?g) AS ?a) WHERE { ?h a noa:Hotspot ; strdf:hasGeometry ?g . }`)
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range res.Rows {
		a, ok := row["a"].Float()
		if !ok || math.Abs(a-1) > 1e-9 {
			t.Fatalf("area = %v", row["a"])
		}
	}
}

func hotspotGroup(i int, x float64) []rdf.Triple {
	s := rdf.NewIRI(fmt.Sprintf("http://e/batch_h%d", i))
	return []rdf.Triple{
		{S: s, P: rdf.NewIRI(rdf.RDFType),
			O: rdf.NewIRI("http://teleios.di.uoa.gr/ontologies/noaOntology.owl#Hotspot")},
		{S: s, P: rdf.NewIRI("http://strdf.di.uoa.gr/ontology#hasGeometry"),
			O: rdf.NewGeometry(fmt.Sprintf(
				"POLYGON ((%g 1, %g 1, %g 2, %g 2, %g 1))", x, x+1, x+1, x, x))},
	}
}

// TestInsertAllMatchesLoadTriples pins that the batched write path is
// observationally identical to per-triple loading: same triple count,
// same spatial query results, duplicate suppression included.
func TestInsertAllMatchesLoadTriples(t *testing.T) {
	batched, plain := New(), New()
	var groups [][]rdf.Triple
	for i := 0; i < 40; i++ {
		groups = append(groups, hotspotGroup(i, float64(i)))
	}
	counts := batched.InsertAll(groups...)
	for i, g := range groups {
		if n := plain.LoadTriples(g); n != counts[i] {
			t.Fatalf("group %d: batched %d vs plain %d", i, counts[i], n)
		}
	}
	// Re-inserting must count zero new triples on both paths.
	if again := batched.InsertAll(groups[0]); again[0] != 0 {
		t.Fatalf("duplicate batch inserted %d", again[0])
	}
	if batched.Len() != plain.Len() {
		t.Fatalf("len %d vs %d", batched.Len(), plain.Len())
	}
	q := `
SELECT ?h WHERE {
  ?h a noa:Hotspot ; strdf:hasGeometry ?g .
  FILTER( strdf:anyInteract(?g, "POLYGON ((10 0, 20 0, 20 3, 10 3, 10 0))"^^strdf:WKT) )
}`
	rb, err := batched.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	rp, err := plain.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(rb.Rows) == 0 || len(rb.Rows) != len(rp.Rows) {
		t.Fatalf("spatial rows: batched %d vs plain %d", len(rb.Rows), len(rp.Rows))
	}
}

// TestUpdateScopedMatchesUpdate runs the same scoped delete through both
// update paths and checks identical effect.
func TestUpdateScopedMatchesUpdate(t *testing.T) {
	mk := func() *Store {
		s := New()
		if _, err := s.LoadTurtle(fixtureTurtle); err != nil {
			t.Fatal(err)
		}
		return s
	}
	del := `
DELETE { ?h ?p ?o }
WHERE {
  ?h a noa:Hotspot ; strdf:hasGeometry ?g ; ?p ?o .
  OPTIONAL {
    ?c a coast:Coastline ; strdf:hasGeometry ?cg .
    FILTER( strdf:anyInteract(?g, ?cg) )
  }
  FILTER( !bound(?c) )
}`
	a, b := mk(), mk()
	stA, err := a.Update(del)
	if err != nil {
		t.Fatal(err)
	}
	stB, err := b.UpdateScoped(del)
	if err != nil {
		t.Fatal(err)
	}
	if stA.Deleted == 0 || stA.Deleted != stB.Deleted || a.Len() != b.Len() {
		t.Fatalf("Update deleted %d (len %d), UpdateScoped deleted %d (len %d)",
			stA.Deleted, a.Len(), stB.Deleted, b.Len())
	}
}

// TestConcurrentEndpointSmoke hammers the endpoint from many goroutines —
// queries, scoped updates and batch inserts at once. Run under -race it
// validates the store's locking discipline.
func TestConcurrentEndpointSmoke(t *testing.T) {
	s := New()
	if _, err := s.LoadTurtle(fixtureTurtle); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 25; i++ {
				switch w % 3 {
				case 0:
					if _, err := s.Query(`SELECT ?h WHERE { ?h a noa:Hotspot . }`); err != nil {
						t.Error(err)
						return
					}
				case 1:
					s.InsertAll(hotspotGroup(1000+w*100+i, float64(w*30+i)))
				default:
					if _, err := s.UpdateScoped(fmt.Sprintf(`
INSERT { ?h noa:hasConfidence %d.0 }
WHERE  { ?h a noa:Hotspot . FILTER( strdf:area("POLYGON ((0 0, 1 0, 1 1, 0 1, 0 0))"^^strdf:WKT) > 2 ) }`, w)); err != nil {
						t.Error(err)
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	if s.Len() == 0 {
		t.Fatal("store emptied")
	}
}
