package strabon

import (
	"context"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"
	"testing"

	"repro/internal/resultcache"
)

// TestEndpointResultCache drives the serving tier over the single
// store: a repeated query is served from the cache byte-for-byte, a
// write invalidates it, and /stats reports the cache counters.
func TestEndpointResultCache(t *testing.T) {
	_, ep := endpointFixture(t)
	ep.Results = resultcache.New(16, 1<<20)

	target := "/sparql?query=" + url.QueryEscape(`SELECT ?h ?c WHERE { ?h a noa:Hotspot ; noa:hasConfidence ?c . } ORDER BY ?h`)
	w1 := get(t, ep, target)
	w2 := get(t, ep, target)
	if w1.Code != http.StatusOK || w2.Code != http.StatusOK {
		t.Fatalf("status %d / %d", w1.Code, w2.Code)
	}
	if w1.Body.String() != w2.Body.String() {
		t.Fatalf("hit body differs from miss body:\n%s\n---\n%s", w1.Body, w2.Body)
	}
	if w2.Header().Get("X-Rows") != w1.Header().Get("X-Rows") {
		t.Fatalf("hit trailers differ: %v vs %v", w2.Header(), w1.Header())
	}
	if st := ep.Results.Stats(); st.Hits != 1 || st.Misses != 1 || st.Entries != 1 {
		t.Fatalf("cache stats after replay: %+v", st)
	}

	// The cached row set is format-independent: the same entry renders
	// as TSV without a re-evaluation.
	w3 := get(t, ep, target+"&format=tsv")
	if w3.Code != http.StatusOK || !strings.HasPrefix(w3.Body.String(), "?h\t?c") {
		t.Fatalf("tsv replay: %d\n%s", w3.Code, w3.Body)
	}
	if st := ep.Results.Stats(); st.Hits != 2 {
		t.Fatalf("tsv replay missed: %+v", st)
	}

	// ASK verdicts cache too.
	ask := "/sparql?query=" + url.QueryEscape(`ASK { ?h a noa:Hotspot . }`)
	a1 := get(t, ep, ask)
	a2 := get(t, ep, ask)
	if a1.Body.String() != a2.Body.String() || !strings.Contains(a2.Body.String(), "true") {
		t.Fatalf("ask replay: %s vs %s", a1.Body, a2.Body)
	}
	if st := ep.Results.Stats(); st.Hits != 3 {
		t.Fatalf("ask replay missed: %+v", st)
	}

	// A write bumps the store generation: every entry goes stale and the
	// next lookup is an invalidation + miss, then re-caches.
	w := httptest.NewRecorder()
	req := httptest.NewRequest(http.MethodPost, "/update",
		strings.NewReader(`INSERT DATA { noa:hz a noa:Hotspot . }`))
	req.Header.Set("Content-Type", "application/sparql-update")
	ep.ServeHTTP(w, req)
	if w.Code != http.StatusOK {
		t.Fatalf("update: %d %s", w.Code, w.Body)
	}
	get(t, ep, ask)
	st := ep.Results.Stats()
	if st.Invalidations != 1 {
		t.Fatalf("stats after write: %+v", st)
	}

	// /stats surfaces the cache and counts the traffic above.
	sw := get(t, ep, "/stats")
	if !strings.Contains(sw.Body.String(), `"result_cache"`) ||
		!strings.Contains(sw.Body.String(), `"invalidations":1`) {
		t.Fatalf("/stats missing result_cache: %s", sw.Body)
	}
}

// TestEndpointSampleUncached pins the cacheability gate end to end: a
// SAMPLE-bearing query is evaluated every time, never stored.
func TestEndpointSampleUncached(t *testing.T) {
	_, ep := endpointFixture(t)
	ep.Results = resultcache.New(16, 1<<20)
	target := "/sparql?query=" + url.QueryEscape(`SELECT (SAMPLE(?h) AS ?s) WHERE { ?h a noa:Hotspot . }`)
	get(t, ep, target)
	get(t, ep, target)
	if st := ep.Results.Stats(); st.Hits != 0 || st.Entries != 0 {
		t.Fatalf("SAMPLE result was cached: %+v", st)
	}
}

// TestEndpointAdmission429 saturates the gate and checks the endpoint
// answers 429 with Retry-After, then serves normally once freed — and
// that a cache hit bypasses the saturated gate entirely.
func TestEndpointAdmission429(t *testing.T) {
	_, ep := endpointFixture(t)
	ep.Results = resultcache.New(16, 1<<20)
	ep.Admission = NewAdmission(1, 0)

	target := "/sparql?query=" + url.QueryEscape(`SELECT ?h WHERE { ?h a noa:Hotspot . }`)
	warm := get(t, ep, target) // populate the cache while the gate is open
	if warm.Code != http.StatusOK {
		t.Fatalf("warm-up: %d %s", warm.Code, warm.Body)
	}

	if err := ep.Admission.Acquire(context.Background()); err != nil {
		t.Fatal(err)
	}

	// The hot query replays without an admission slot.
	if w := get(t, ep, target); w.Code != http.StatusOK {
		t.Fatalf("cache hit blocked by saturated gate: %d %s", w.Code, w.Body)
	}

	// A cold query needs a slot and is rejected with backoff advice.
	cold := "/sparql?query=" + url.QueryEscape(`SELECT ?m WHERE { ?m a gag:Municipality . }`)
	w := get(t, ep, cold)
	if w.Code != http.StatusTooManyRequests {
		t.Fatalf("saturated gate answered %d: %s", w.Code, w.Body)
	}
	if w.Header().Get("Retry-After") == "" {
		t.Fatalf("429 without Retry-After: %v", w.Header())
	}
	if st := ep.Admission.Stats(); st.Rejected != 1 {
		t.Fatalf("admission stats: %+v", st)
	}

	ep.Admission.Release()
	if w := get(t, ep, cold); w.Code != http.StatusOK {
		t.Fatalf("freed gate answered %d: %s", w.Code, w.Body)
	}

	sw := get(t, ep, "/stats")
	if !strings.Contains(sw.Body.String(), `"admission"`) ||
		!strings.Contains(sw.Body.String(), `"rejected":1`) {
		t.Fatalf("/stats missing admission: %s", sw.Body)
	}
}

// TestEndpointBudgets checks the miss-path response budgets abort the
// stream with an X-Error trailer and keep the truncated result out of
// the cache.
func TestEndpointBudgets(t *testing.T) {
	target := "/sparql?query=" + url.QueryEscape(`SELECT ?h WHERE { ?h a noa:Hotspot . }`)

	_, ep := endpointFixture(t)
	ep.Results = resultcache.New(16, 1<<20)
	ep.MaxRows = 1
	w := get(t, ep, target)
	if !strings.Contains(w.Header().Get("X-Error"), "row budget exceeded") {
		t.Fatalf("row budget trailer: %v", w.Header())
	}
	if st := ep.Results.Stats(); st.Entries != 0 {
		t.Fatalf("truncated result cached: %+v", st)
	}

	_, ep2 := endpointFixture(t)
	ep2.MaxBytes = 8 // smaller than the first encoded row
	w2 := get(t, ep2, target)
	if !strings.Contains(w2.Header().Get("X-Error"), "byte budget exceeded") {
		t.Fatalf("byte budget trailer: %v", w2.Header())
	}
}
