package strabon

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"
	"sync"
	"testing"
)

func endpointFixture(t testing.TB) (*Store, *Endpoint) {
	s := New()
	if _, err := s.LoadTurtle(fixtureTurtle); err != nil {
		t.Fatal(err)
	}
	return s, NewEndpoint(s)
}

func get(t testing.TB, ep *Endpoint, target string) *httptest.ResponseRecorder {
	t.Helper()
	w := httptest.NewRecorder()
	ep.ServeHTTP(w, httptest.NewRequest(http.MethodGet, target, nil))
	return w
}

func TestEndpointQueryJSON(t *testing.T) {
	_, ep := endpointFixture(t)
	w := get(t, ep, "/sparql?query="+url.QueryEscape(`SELECT ?h ?c WHERE { ?h a noa:Hotspot ; noa:hasConfidence ?c . }`))
	if w.Code != http.StatusOK {
		t.Fatalf("status %d: %s", w.Code, w.Body)
	}
	if ct := w.Header().Get("Content-Type"); ct != "application/sparql-results+json" {
		t.Fatalf("content type %q", ct)
	}
	if w.Header().Get("X-Rows") != "2" || w.Header().Get("X-Elapsed-Us") == "" {
		t.Fatalf("per-request stats headers: %v", w.Header())
	}
	var doc struct {
		Head struct {
			Vars []string `json:"vars"`
		} `json:"head"`
		Results struct {
			Bindings []map[string]struct {
				Type     string `json:"type"`
				Value    string `json:"value"`
				Datatype string `json:"datatype"`
			} `json:"bindings"`
		} `json:"results"`
	}
	if err := json.Unmarshal(w.Body.Bytes(), &doc); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, w.Body)
	}
	if len(doc.Head.Vars) != 2 || len(doc.Results.Bindings) != 2 {
		t.Fatalf("doc: %+v", doc)
	}
	b := doc.Results.Bindings[0]
	if b["h"].Type != "uri" || b["c"].Type != "literal" || b["c"].Datatype == "" {
		t.Fatalf("binding typing: %+v", b)
	}
}

func TestEndpointQueryTSV(t *testing.T) {
	_, ep := endpointFixture(t)
	w := get(t, ep, "/sparql?format=tsv&query="+url.QueryEscape(`SELECT ?h WHERE { ?h a noa:Hotspot . }`))
	if w.Code != http.StatusOK {
		t.Fatalf("status %d: %s", w.Code, w.Body)
	}
	lines := strings.Split(strings.TrimSpace(w.Body.String()), "\n")
	if len(lines) != 3 || lines[0] != "?h" {
		t.Fatalf("tsv:\n%s", w.Body)
	}
	if !strings.HasPrefix(lines[1], "<") {
		t.Fatalf("tsv term encoding: %q", lines[1])
	}
}

func TestEndpointPostForms(t *testing.T) {
	_, ep := endpointFixture(t)

	// Form-encoded query.
	w := httptest.NewRecorder()
	req := httptest.NewRequest(http.MethodPost, "/sparql",
		strings.NewReader("query="+url.QueryEscape(`ASK { ?h a noa:Hotspot . }`)))
	req.Header.Set("Content-Type", "application/x-www-form-urlencoded")
	ep.ServeHTTP(w, req)
	if w.Code != http.StatusOK || !strings.Contains(w.Body.String(), "true") {
		t.Fatalf("form POST: %d %s", w.Code, w.Body)
	}

	// Direct POST body.
	w2 := httptest.NewRecorder()
	req2 := httptest.NewRequest(http.MethodPost, "/sparql",
		strings.NewReader(`SELECT ?h WHERE { ?h a noa:Hotspot . }`))
	req2.Header.Set("Content-Type", "application/sparql-query")
	ep.ServeHTTP(w2, req2)
	if w2.Code != http.StatusOK || w2.Header().Get("X-Rows") != "2" {
		t.Fatalf("direct POST: %d %s", w2.Code, w2.Body)
	}
}

func TestEndpointUpdateAndStats(t *testing.T) {
	s, ep := endpointFixture(t)
	w := httptest.NewRecorder()
	req := httptest.NewRequest(http.MethodPost, "/update",
		strings.NewReader(`INSERT DATA { noa:hx a noa:Hotspot . }`))
	req.Header.Set("Content-Type", "application/sparql-update")
	ep.ServeHTTP(w, req)
	if w.Code != http.StatusOK {
		t.Fatalf("update: %d %s", w.Code, w.Body)
	}
	var st struct {
		Inserted int
	}
	if err := json.Unmarshal(w.Body.Bytes(), &st); err != nil || st.Inserted != 1 {
		t.Fatalf("update stats: %s (%v)", w.Body, err)
	}
	if s.Len() != 9 {
		t.Fatalf("store len %d", s.Len())
	}

	// Updates must not be accepted on the query route, nor via GET.
	if w := get(t, ep, "/update?update=x"); w.Code != http.StatusMethodNotAllowed {
		t.Fatalf("GET /update: %d", w.Code)
	}
	if w := get(t, ep, "/sparql?query="+url.QueryEscape(`DELETE WHERE { ?s ?p ?o }`)); w.Code != http.StatusBadRequest {
		t.Fatalf("update via /sparql: %d", w.Code)
	}

	sw := get(t, ep, "/stats")
	var doc struct {
		Triples  int
		Endpoint EndpointStats
	}
	if err := json.Unmarshal(sw.Body.Bytes(), &doc); err != nil {
		t.Fatalf("stats JSON: %v", err)
	}
	if doc.Triples != 9 || doc.Endpoint.Requests == 0 || doc.Endpoint.Errors == 0 {
		t.Fatalf("stats: %+v", doc)
	}
}

func TestEndpointExplain(t *testing.T) {
	_, ep := endpointFixture(t)
	w := get(t, ep, "/explain?query="+url.QueryEscape(`
SELECT ?h ?c WHERE {
  ?h a noa:Hotspot ; strdf:hasGeometry ?hg .
  ?c a coast:Coastline ; strdf:hasGeometry ?cg .
  FILTER( strdf:anyInteract(?hg, ?cg) )
}`))
	if w.Code != http.StatusOK {
		t.Fatalf("explain: %d %s", w.Code, w.Body)
	}
	for _, want := range []string{"select\n", "join[window]", "est="} {
		if !strings.Contains(w.Body.String(), want) {
			t.Fatalf("explain missing %q:\n%s", want, w.Body)
		}
	}
}

func TestEndpointErrors(t *testing.T) {
	_, ep := endpointFixture(t)
	if w := get(t, ep, "/sparql"); w.Code != http.StatusBadRequest {
		t.Fatalf("empty query: %d", w.Code)
	}
	if w := get(t, ep, "/sparql?query=NOT+SPARQL"); w.Code != http.StatusBadRequest {
		t.Fatalf("parse error: %d", w.Code)
	}
	if w := get(t, ep, "/nope"); w.Code != http.StatusNotFound {
		t.Fatalf("unknown route: %d", w.Code)
	}
}

// TestEndpointConcurrent hammers the endpoint from many goroutines —
// queries, explains and updates at once — validating that the HTTP layer
// inherits the store's locking discipline. Run under -race in CI.
func TestEndpointConcurrent(t *testing.T) {
	_, ep := endpointFixture(t)
	query := "/sparql?query=" + url.QueryEscape(`SELECT ?h WHERE { ?h a noa:Hotspot . }`)
	explain := "/explain?query=" + url.QueryEscape(`SELECT ?h WHERE { ?h a noa:Hotspot ; strdf:hasGeometry ?g . FILTER( strdf:area(?g) > 0.5 ) }`)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 30; i++ {
				switch w % 3 {
				case 0:
					if rec := get(t, ep, query); rec.Code != http.StatusOK {
						t.Errorf("query: %d", rec.Code)
						return
					}
				case 1:
					if rec := get(t, ep, explain); rec.Code != http.StatusOK {
						t.Errorf("explain: %d", rec.Code)
						return
					}
				default:
					rec := httptest.NewRecorder()
					req := httptest.NewRequest(http.MethodPost, "/update",
						strings.NewReader(fmt.Sprintf(`INSERT DATA { noa:c%d_%d a noa:Hotspot . }`, w, i)))
					req.Header.Set("Content-Type", "application/sparql-update")
					ep.ServeHTTP(rec, req)
					if rec.Code != http.StatusOK {
						t.Errorf("update: %d", rec.Code)
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	st := ep.Stats()
	if st.Requests != 240 || st.Errors != 0 {
		t.Fatalf("endpoint stats after hammering: %+v", st)
	}
}

// BenchmarkServedQueries measures concurrent endpoint read throughput:
// b.RunParallel scales the client count with GOMAXPROCS, and the store's
// read-lock discipline lets all queries evaluate in parallel. Compare
// -cpu 1,4,8 runs to see the scaling.
func BenchmarkServedQueries(b *testing.B) {
	s := New()
	if _, err := s.LoadTurtle(fixtureTurtle); err != nil {
		b.Fatal(err)
	}
	// A store resembling a serviced window: many hotspots to scan.
	for i := 0; i < 300; i++ {
		s.InsertAll(hotspotGroup(i, float64(i%50)))
	}
	ep := NewEndpoint(s)
	target := "/sparql?query=" + url.QueryEscape(`
SELECT ?h WHERE {
  ?h a noa:Hotspot ; strdf:hasGeometry ?g .
  FILTER( strdf:anyInteract(?g, "POLYGON ((10 0, 20 0, 20 3, 10 3, 10 0))"^^strdf:WKT) )
}`)
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			w := httptest.NewRecorder()
			ep.ServeHTTP(w, httptest.NewRequest(http.MethodGet, target, nil))
			if w.Code != http.StatusOK {
				b.Fatalf("status %d: %s", w.Code, w.Body)
			}
		}
	})
	b.ReportMetric(float64(ep.Stats().Rows)/float64(b.N), "rows/req")
}

func TestEndpointAcceptNegotiation(t *testing.T) {
	_, ep := endpointFixture(t)
	query := "/sparql?query=" + url.QueryEscape(`SELECT ?h WHERE { ?h a noa:Hotspot . }`)

	do := func(accept, format string) *httptest.ResponseRecorder {
		t.Helper()
		target := query
		if format != "" {
			target += "&format=" + format
		}
		w := httptest.NewRecorder()
		req := httptest.NewRequest(http.MethodGet, target, nil)
		if accept != "" {
			req.Header.Set("Accept", accept)
		}
		ep.ServeHTTP(w, req)
		return w
	}

	cases := []struct {
		name, accept, format string
		code                 int
		contentType          string // prefix match
	}{
		{"default is JSON", "", "", http.StatusOK, mediaJSON},
		{"exact TSV", mediaTSV, "", http.StatusOK, mediaTSV},
		{"exact JSON", mediaJSON, "", http.StatusOK, mediaJSON},
		{"full wildcard is JSON", "*/*", "", http.StatusOK, mediaJSON},
		{"text wildcard is TSV", "text/*", "", http.StatusOK, mediaTSV},
		{"q-values rank", mediaJSON + ";q=0.3, " + mediaTSV + ";q=0.9", "", http.StatusOK, mediaTSV},
		{"specific beats wildcard at same q", "*/*, " + mediaTSV, "", http.StatusOK, mediaTSV},
		{"q=0 excludes", mediaTSV + ";q=0, */*", "", http.StatusOK, mediaJSON},
		{"browser-style falls through to JSON", "text/html;q=0.9, */*;q=0.8", "", http.StatusOK, mediaJSON},
		{"format param overrides Accept", mediaJSON, "tsv", http.StatusOK, mediaTSV},
		{"unsupported only is 406", "application/xml", "", http.StatusNotAcceptable, ""},
		{"unknown format param is 406", "", "csv", http.StatusNotAcceptable, ""},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			w := do(tc.accept, tc.format)
			if w.Code != tc.code {
				t.Fatalf("status %d, want %d: %s", w.Code, tc.code, w.Body)
			}
			if tc.code == http.StatusNotAcceptable {
				if !strings.Contains(w.Body.String(), mediaJSON) || !strings.Contains(w.Body.String(), mediaTSV) {
					t.Fatalf("406 body should list supported types: %s", w.Body)
				}
				return
			}
			if ct := w.Header().Get("Content-Type"); !strings.HasPrefix(ct, tc.contentType) {
				t.Fatalf("content type %q, want prefix %q", ct, tc.contentType)
			}
		})
	}
}
