package strabon

import (
	"context"
	"errors"
	"testing"
	"time"
)

// TestAdmissionGate pins the gate's contract: max slots, immediate
// rejection past the queue bound, FIFO handoff on Release, and
// cancellation of a queued waiter.
func TestAdmissionGate(t *testing.T) {
	a := NewAdmission(1, 1)
	if err := a.Acquire(context.Background()); err != nil {
		t.Fatalf("first acquire: %v", err)
	}

	// One waiter fits in the queue.
	granted := make(chan error, 1)
	go func() {
		granted <- a.Acquire(context.Background())
	}()
	waitQueued(t, a, 1)

	// The next request overflows and is rejected without blocking.
	if err := a.Acquire(context.Background()); !errors.Is(err, ErrAdmissionFull) {
		t.Fatalf("overflow acquire: %v, want ErrAdmissionFull", err)
	}

	// Release hands the slot to the waiter.
	a.Release()
	if err := <-granted; err != nil {
		t.Fatalf("queued acquire: %v", err)
	}
	a.Release()

	st := a.Stats()
	if st.Admitted != 2 || st.Rejected != 1 || st.TimedOut != 0 {
		t.Fatalf("stats: %+v", st)
	}
	if st.Active != 0 || st.Queued != 0 {
		t.Fatalf("gate not drained: %+v", st)
	}
}

// TestAdmissionFIFO checks waiters are granted in arrival order.
func TestAdmissionFIFO(t *testing.T) {
	a := NewAdmission(1, 4)
	if err := a.Acquire(context.Background()); err != nil {
		t.Fatal(err)
	}
	order := make(chan int, 3)
	for i := 0; i < 3; i++ {
		i := i
		go func() {
			if err := a.Acquire(context.Background()); err != nil {
				t.Errorf("waiter %d: %v", i, err)
				return
			}
			order <- i
			a.Release()
		}()
		waitQueued(t, a, i+1)
	}
	a.Release()
	for want := 0; want < 3; want++ {
		if got := <-order; got != want {
			t.Fatalf("grant order: got waiter %d, want %d", got, want)
		}
	}
}

// TestAdmissionCancelWhileQueued checks a queued waiter whose context
// fires is removed from the queue (so it never absorbs a later grant)
// and counted as timed out.
func TestAdmissionCancelWhileQueued(t *testing.T) {
	a := NewAdmission(1, 2)
	if err := a.Acquire(context.Background()); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	errc := make(chan error, 1)
	go func() { errc <- a.Acquire(ctx) }()
	waitQueued(t, a, 1)
	cancel()
	if err := <-errc; !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled acquire: %v", err)
	}
	if st := a.Stats(); st.TimedOut != 1 || st.Queued != 0 {
		t.Fatalf("stats after cancel: %+v", st)
	}
	// The slot still hands off cleanly to a live waiter.
	errc2 := make(chan error, 1)
	go func() { errc2 <- a.Acquire(context.Background()) }()
	waitQueued(t, a, 1)
	a.Release()
	if err := <-errc2; err != nil {
		t.Fatalf("post-cancel acquire: %v", err)
	}
	a.Release()
}

func waitQueued(t *testing.T, a *Admission, n int) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for a.Stats().Queued < n {
		if time.Now().After(deadline) {
			t.Fatalf("queue never reached depth %d: %+v", n, a.Stats())
		}
		time.Sleep(time.Millisecond)
	}
}
