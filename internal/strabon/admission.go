package strabon

import (
	"context"
	"errors"
	"sync"
)

// Admission is the endpoint's miss-path concurrency gate: at most max
// evaluations hold store read locks at once, and up to maxQueue
// further requests wait in FIFO order (each bounded by its own request
// context — the -query-timeout deadline covers queueing and
// evaluation together). A request arriving to a full queue is rejected
// immediately so the client can back off (the endpoint answers 429
// with Retry-After) instead of piling more lock-holders onto an
// already saturated store. Cache hits never pass through admission:
// replaying a materialised result takes no store locks, so serving it
// cannot deepen the overload the gate protects against.
type Admission struct {
	mu       sync.Mutex
	max      int
	maxQueue int
	active   int
	queue    []*waiter
	stats    AdmissionStats
}

type waiter struct {
	ch chan struct{} // closed when granted
}

// AdmissionStats counts gate traffic. Active and Queued are
// instantaneous depths; the counters are cumulative.
type AdmissionStats struct {
	Admitted uint64 `json:"admitted"`
	Rejected uint64 `json:"rejected"`
	TimedOut uint64 `json:"timed_out"`
	Active   int    `json:"active"`
	Queued   int    `json:"queued"`
}

// ErrAdmissionFull reports a request rejected because the wait queue
// was at capacity.
var ErrAdmissionFull = errors.New("strabon: admission queue full")

// NewAdmission returns a gate admitting max concurrent evaluations
// with a FIFO wait queue of maxQueue (0 = reject as soon as all slots
// are busy).
func NewAdmission(max, maxQueue int) *Admission {
	if max < 1 {
		max = 1
	}
	if maxQueue < 0 {
		maxQueue = 0
	}
	return &Admission{max: max, maxQueue: maxQueue}
}

// Acquire blocks until a slot is granted, the queue overflows
// (ErrAdmissionFull), or ctx fires (its error). On nil return the
// caller owns a slot and must Release it.
func (a *Admission) Acquire(ctx context.Context) error {
	a.mu.Lock()
	if a.active < a.max {
		a.active++
		a.stats.Admitted++
		a.mu.Unlock()
		return nil
	}
	if len(a.queue) >= a.maxQueue {
		a.stats.Rejected++
		a.mu.Unlock()
		return ErrAdmissionFull
	}
	w := &waiter{ch: make(chan struct{})}
	a.queue = append(a.queue, w)
	a.mu.Unlock()

	select {
	case <-w.ch:
		return nil
	case <-ctx.Done():
		a.mu.Lock()
		select {
		case <-w.ch:
			// Release granted the slot in the race window before we
			// re-took the lock: keep it — the caller will Release.
			a.mu.Unlock()
			return nil
		default:
		}
		for i, q := range a.queue {
			if q == w {
				a.queue = append(a.queue[:i], a.queue[i+1:]...)
				break
			}
		}
		a.stats.TimedOut++
		a.mu.Unlock()
		return ctx.Err()
	}
}

// Release frees a slot, handing it to the oldest waiter if any.
func (a *Admission) Release() {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.active--
	if len(a.queue) > 0 {
		w := a.queue[0]
		a.queue = a.queue[1:]
		a.active++
		a.stats.Admitted++
		close(w.ch)
	}
}

// Stats returns a snapshot of the gate counters and current depths.
func (a *Admission) Stats() AdmissionStats {
	a.mu.Lock()
	defer a.mu.Unlock()
	st := a.stats
	st.Active = a.active
	st.Queued = len(a.queue)
	return st
}
