package strabon

import (
	"context"
	"time"

	"repro/internal/rdf"
	"repro/internal/resultcache"
	"repro/internal/stsparql"
)

// API is the endpoint surface a Strabon-shaped store presents: the
// methods the HTTP endpoint, the acquisition pipeline's batched writer,
// the refinement loop and the serving binaries consume. Both the single
// *Store and the sharded store (internal/shard) implement it, which is
// what lets `-shards N` swap the backend without touching any consumer.
type API interface {
	Namespaces() *rdf.Namespaces
	Len() int
	Stats() Stats
	PlanStats() stsparql.PlanCacheStats
	SetPlanCacheSize(n int)

	LoadTriples(triples []rdf.Triple) int
	LoadTurtle(src string) (int, error)
	InsertAll(groups ...[]rdf.Triple) []int

	Query(src string) (*stsparql.Result, error)
	TimedQuery(src string) (*stsparql.Result, time.Duration, error)
	QueryStreamCtx(ctx context.Context, src string) (QueryCursor, error)
	Explain(src string) (string, error)

	Update(src string) (stsparql.UpdateStats, error)
	UpdateScoped(src string) (stsparql.UpdateStats, error)
}

// QueryCursor is the streaming result surface shared by single-store
// and sharded cursors. A cursor holds its backing read lock(s) from
// creation until Close — close promptly. See Store.QueryStream for the
// single-store semantics.
//
// The Binding a streaming cursor yields is a view into the engine's
// current batch, reused on the next Next: it is only valid until the
// next call to Next (or Close). Callers that retain rows past that —
// materialising wrappers, fan-out workers — must Clone them.
type QueryCursor interface {
	Vars() []string
	IsAsk() bool
	Next() (stsparql.Binding, bool)
	Err() error
	Rows() int
	Close() error
}

// CacheInfo is implemented by cursors that can report what their rows
// were derived from: the generation vector captured while the
// evaluation held its read locks, and whether the result is
// deterministic enough to cache at all (false for SAMPLE-bearing
// plans). The endpoint's result-cache tee only stores results from
// cursors offering this.
type CacheInfo interface {
	CacheVector() (resultcache.GenVector, bool)
}

// GenValidator is implemented by stores that can check a cached
// result's generation vector against their live state. Validation is
// lock-free (generations are atomics), so it runs on every cache Get
// without touching the stores' RWMutexes.
type GenValidator interface {
	GensValid(v resultcache.GenVector) bool
}

// Streamer is the canonical query surface: one context-first streaming
// entrypoint. Query, TimedQuery and QueryStream on both the single and
// the sharded store are thin wrappers over it, shared through the
// package-level helpers below — the streaming call is the only place a
// query is actually executed.
type Streamer interface {
	QueryStreamCtx(ctx context.Context, src string) (QueryCursor, error)
}

// MaterialiseQuery drains one streaming evaluation into an owned
// Result — the single materialising wrapper behind every Query method.
// Cursor rows are batch views reused on the next pull, so each is
// cloned out. The header is re-read after the drain: SELECT * and
// merged-aggregate headers are only final once the rows are known.
func MaterialiseQuery(ctx context.Context, s Streamer, src string) (*stsparql.Result, error) {
	cur, err := s.QueryStreamCtx(ctx, src)
	if err != nil {
		return nil, err
	}
	defer cur.Close()
	res := &stsparql.Result{Vars: cur.Vars()}
	for {
		row, ok := cur.Next()
		if !ok {
			break
		}
		res.Rows = append(res.Rows, row.Clone())
	}
	if err := cur.Close(); err != nil {
		return nil, err
	}
	res.Vars = cur.Vars()
	return res, nil
}

// TimedQuery materialises a query and reports its wall-clock duration,
// including a full iteration over the result rows (the paper's metric:
// "elapsed time from query submission till a complete iteration over
// each query's results"). With the streaming cursor the iteration is
// the evaluation itself.
func TimedQuery(s Streamer, src string) (*stsparql.Result, time.Duration, error) {
	start := time.Now()
	res, err := MaterialiseQuery(context.Background(), s, src)
	if err != nil {
		return nil, 0, err
	}
	return res, time.Since(start), nil
}

// ShardStat describes one shard of a sharded backend for /stats and
// the /metrics per-shard gauges: cardinality, mutation generation and
// the observed temporal range (zero MinUnix/MaxUnix when the shard has
// seen no timestamped data).
type ShardStat struct {
	Name    string `json:"name"`
	Range   string `json:"range,omitempty"`
	Triples int    `json:"triples"`
	Gen     uint64 `json:"generation"`
	MinUnix int64  `json:"min_unix,omitempty"`
	MaxUnix int64  `json:"max_unix,omitempty"`

	// Dictionary size of the shard's term dictionary: distinct terms
	// interned and the approximate heap bytes they pin. Each shard owns
	// its own dictionary (IDs are never comparable across shards), so
	// these do not sum to a global distinct-term count.
	DictEntries int `json:"dict_entries"`
	DictBytes   int `json:"dict_bytes"`
}

// ShardStatser is implemented by backends that partition their data;
// the endpoint's /stats reports the per-shard cardinalities when the
// backend offers them.
type ShardStatser interface {
	ShardStats() []ShardStat
}

// DictStatser is implemented by backends that can report the size of
// their term dictionary (distinct terms interned and the approximate
// heap bytes pinned). For a sharded backend the figures are sums over
// the member dictionaries — an upper bound on distinct terms, since
// each shard interns independently.
type DictStatser interface {
	DictStats() (entries, bytes int)
}

// Analyzer is implemented by backends that can execute a query with
// per-operator instrumentation and render the annotated plan — EXPLAIN
// ANALYZE. Like the other capability interfaces it is optional: the
// endpoint's /explain?analyze=1 answers 501 when the backend lacks it.
type Analyzer interface {
	ExplainAnalyze(ctx context.Context, src string) (string, error)
}

// QueryStreamCtx is QueryStream bound to a context: once ctx is
// cancelled (client gone, deadline hit) the cursor stops yielding rows,
// reports the context error, and — because every consumer closes a
// drained cursor — the store read lock is released at the next pull
// instead of whenever the abandoned client would have finished.
func (s *Store) QueryStreamCtx(ctx context.Context, src string) (QueryCursor, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	cur, err := s.QueryStream(src)
	if err != nil {
		return nil, err
	}
	if ctx.Done() == nil {
		return cur, nil
	}
	return &ctxCursor{cur: cur, ctx: ctx}, nil
}

// ctxCursor wraps a cursor with per-pull context checks.
type ctxCursor struct {
	cur *Cursor
	ctx context.Context
	err error
}

func (c *ctxCursor) Vars() []string { return c.cur.Vars() }
func (c *ctxCursor) IsAsk() bool    { return c.cur.IsAsk() }
func (c *ctxCursor) Rows() int      { return c.cur.Rows() }

// CacheVector forwards the wrapped cursor's cache metadata.
func (c *ctxCursor) CacheVector() (resultcache.GenVector, bool) { return c.cur.CacheVector() }

func (c *ctxCursor) Next() (stsparql.Binding, bool) {
	if c.err != nil {
		return nil, false
	}
	if err := c.ctx.Err(); err != nil {
		c.err = err
		c.cur.Close() // release the read lock immediately
		return nil, false
	}
	return c.cur.Next()
}

func (c *ctxCursor) Err() error {
	if c.err != nil {
		return c.err
	}
	return c.cur.Err()
}

func (c *ctxCursor) Close() error {
	c.cur.Close()
	return c.Err()
}

// --- composite-store hooks ---
//
// The sharded store (internal/shard) evaluates one query across several
// member stores: it holds each member's lock itself and calls the
// unlocked stsparql interface methods (MatchTerms, CountPattern,
// MatchGeometryWindow, Add, Remove) directly. These exports hand it the
// lock and the plan-invalidation generation; ordinary clients should
// use the endpoint API and never touch them.

// RLock takes the store's read lock (composite-store use only).
func (s *Store) RLock() { s.mu.RLock() }

// RUnlock releases the store's read lock.
func (s *Store) RUnlock() { s.mu.RUnlock() }

// Lock takes the store's write lock (composite-store use only).
func (s *Store) Lock() { s.mu.Lock() }

// Unlock releases the store's write lock.
func (s *Store) Unlock() { s.mu.Unlock() }

// Generation reports the mutation generation compiled plans and cached
// results are pinned to. It is an atomic load: callers holding the
// store's lock (read or write) observe a stable value; lock-free
// callers (cache validators, pruned-slice vector capture) observe the
// latest published one.
func (s *Store) Generation() uint64 { return s.gen.Load() }

// GensValid implements GenValidator for the single store: a cached
// result is valid iff its vector is the whole-store generation and the
// store has not mutated since.
func (s *Store) GensValid(v resultcache.GenVector) bool {
	if v.Partial || len(v.Gens) != 1 {
		return false
	}
	return v.Gens[0].Gen == s.gen.Load()
}

// GeomCache exposes the store's shared geometry-parse cache so a
// composite store's evaluators reuse the same parsed WKT.
func (s *Store) GeomCache() *stsparql.Cache { return s.cache }
