package strabon

import (
	"time"

	"repro/internal/obs"
)

// Telemetry is the endpoint's observability bundle: the /metrics
// registry, the /debug/queries slow-query ring, and the live
// instruments the request path updates. A nil *Telemetry disables
// everything — the request path pays one nil check.
//
// Snapshot state (result-cache stats, admission depths, plan-cache
// stats, per-shard cardinalities) is rendered at scrape time through
// collect funcs, so the request path never maintains duplicates of
// counters other subsystems already keep. Scrape-time collectors take
// only the short internal mutexes of the subsystems they snapshot —
// never a store write lock, never a cursor.
type Telemetry struct {
	Registry *obs.Registry
	Queries  *obs.QueryLog

	// SlowQuery is the elapsed threshold at or above which a cache-miss
	// query lands in the slow-query log; 0 records every miss. Errors
	// and admission rejections are always recorded.
	SlowQuery time.Duration

	latency       *obs.HistogramVec // strabon_query_seconds{outcome}
	requests      *obs.CounterVec   // strabon_http_requests_total{path}
	rows          *obs.Counter      // strabon_result_rows_total
	admissionWait *obs.Histogram    // strabon_admission_wait_seconds
}

// EnableTelemetry wires a registry and slow-query log onto the
// endpoint: live latency/row instruments for the request path, plus
// scrape-time collectors over the endpoint's existing stat sources
// (result cache, admission, plan cache, per-shard state when the
// backend is sharded). Call once, before serving.
func EnableTelemetry(ep *Endpoint, reg *obs.Registry, qlog *obs.QueryLog) *Telemetry {
	t := &Telemetry{Registry: reg, Queries: qlog}
	t.latency = reg.NewHistogramVec("strabon_query_seconds",
		"Query latency by outcome (hit, miss, rejected, error).",
		[]string{"outcome"}, nil)
	t.requests = reg.NewCounterVec("strabon_http_requests_total",
		"HTTP requests by endpoint path.", []string{"path"})
	t.rows = reg.NewCounter("strabon_result_rows_total",
		"Result rows served by queries.")
	t.admissionWait = reg.NewHistogram("strabon_admission_wait_seconds",
		"Time spent queued for an admission slot.", nil)

	reg.NewGaugeFunc("strabon_store_triples",
		"Triples in the store.", func() float64 { return float64(ep.store.Len()) })

	if ds, ok := ep.store.(DictStatser); ok {
		reg.NewGaugeFunc("strabon_dict_entries",
			"Distinct terms interned in the store dictionary (summed over shards).",
			func() float64 { entries, _ := ds.DictStats(); return float64(entries) })
		reg.NewGaugeFunc("strabon_dict_bytes",
			"Approximate heap bytes pinned by the store dictionary (summed over shards).",
			func() float64 { _, bytes := ds.DictStats(); return float64(bytes) })
	}

	reg.NewCollectFunc("strabon_plan_cache_hits_total",
		"Plan cache hits.", "counter", nil, func() []obs.Sample {
			return []obs.Sample{{Value: float64(ep.store.PlanStats().Hits)}}
		})
	reg.NewCollectFunc("strabon_plan_cache_misses_total",
		"Plan cache misses.", "counter", nil, func() []obs.Sample {
			return []obs.Sample{{Value: float64(ep.store.PlanStats().Misses)}}
		})
	reg.NewGaugeFunc("strabon_plan_cache_entries",
		"Compiled plans resident in the plan cache.",
		func() float64 { return float64(ep.store.PlanStats().Entries) })

	if ep.Results != nil {
		rc := ep.Results
		reg.NewCollectFunc("strabon_result_cache_hits_total",
			"Result cache hits.", "counter", nil, func() []obs.Sample {
				return []obs.Sample{{Value: float64(rc.Stats().Hits)}}
			})
		reg.NewCollectFunc("strabon_result_cache_misses_total",
			"Result cache misses.", "counter", nil, func() []obs.Sample {
				return []obs.Sample{{Value: float64(rc.Stats().Misses)}}
			})
		reg.NewCollectFunc("strabon_result_cache_evictions_total",
			"Result cache evictions (capacity).", "counter", nil, func() []obs.Sample {
				return []obs.Sample{{Value: float64(rc.Stats().Evictions)}}
			})
		reg.NewCollectFunc("strabon_result_cache_invalidations_total",
			"Result cache entries invalidated by writes.", "counter", nil, func() []obs.Sample {
				return []obs.Sample{{Value: float64(rc.Stats().Invalidations)}}
			})
		reg.NewGaugeFunc("strabon_result_cache_entries",
			"Entries resident in the result cache.",
			func() float64 { return float64(rc.Stats().Entries) })
		reg.NewGaugeFunc("strabon_result_cache_bytes",
			"Bytes resident in the result cache.",
			func() float64 { return float64(rc.Stats().Bytes) })
	}

	if ep.Admission != nil {
		ad := ep.Admission
		reg.NewCollectFunc("strabon_admission_admitted_total",
			"Evaluations admitted.", "counter", nil, func() []obs.Sample {
				return []obs.Sample{{Value: float64(ad.Stats().Admitted)}}
			})
		reg.NewCollectFunc("strabon_admission_rejected_total",
			"Evaluations rejected with 429 (queue full).", "counter", nil, func() []obs.Sample {
				return []obs.Sample{{Value: float64(ad.Stats().Rejected)}}
			})
		reg.NewCollectFunc("strabon_admission_timedout_total",
			"Queued evaluations abandoned before a slot freed.", "counter", nil, func() []obs.Sample {
				return []obs.Sample{{Value: float64(ad.Stats().TimedOut)}}
			})
		reg.NewGaugeFunc("strabon_admission_active",
			"Evaluations holding an admission slot.",
			func() float64 { return float64(ad.Stats().Active) })
		reg.NewGaugeFunc("strabon_admission_queued",
			"Evaluations waiting in the admission queue.",
			func() float64 { return float64(ad.Stats().Queued) })
	}

	if ss, ok := ep.store.(ShardStatser); ok {
		shardLabels := []string{"shard"}
		reg.NewCollectFunc("strabon_shard_triples",
			"Triples per shard.", "gauge", shardLabels, func() []obs.Sample {
				sts := ss.ShardStats()
				out := make([]obs.Sample, len(sts))
				for i, st := range sts {
					out[i] = obs.Sample{LabelValues: []string{st.Name}, Value: float64(st.Triples)}
				}
				return out
			})
		reg.NewCollectFunc("strabon_shard_generation",
			"Mutation generation per shard.", "gauge", shardLabels, func() []obs.Sample {
				sts := ss.ShardStats()
				out := make([]obs.Sample, len(sts))
				for i, st := range sts {
					out[i] = obs.Sample{LabelValues: []string{st.Name}, Value: float64(st.Gen)}
				}
				return out
			})
		reg.NewCollectFunc("strabon_shard_dict_entries",
			"Distinct terms interned in the shard's dictionary.", "gauge", shardLabels, func() []obs.Sample {
				sts := ss.ShardStats()
				out := make([]obs.Sample, len(sts))
				for i, st := range sts {
					out[i] = obs.Sample{LabelValues: []string{st.Name}, Value: float64(st.DictEntries)}
				}
				return out
			})
		reg.NewCollectFunc("strabon_shard_dict_bytes",
			"Approximate heap bytes pinned by the shard's dictionary.", "gauge", shardLabels, func() []obs.Sample {
				sts := ss.ShardStats()
				out := make([]obs.Sample, len(sts))
				for i, st := range sts {
					out[i] = obs.Sample{LabelValues: []string{st.Name}, Value: float64(st.DictBytes)}
				}
				return out
			})
		reg.NewCollectFunc("strabon_shard_observed_min_time_seconds",
			"Oldest observed timestamp per shard (unix seconds; absent when empty).",
			"gauge", shardLabels, func() []obs.Sample {
				var out []obs.Sample
				for _, st := range ss.ShardStats() {
					if st.MinUnix != 0 {
						out = append(out, obs.Sample{LabelValues: []string{st.Name}, Value: float64(st.MinUnix)})
					}
				}
				return out
			})
		reg.NewCollectFunc("strabon_shard_observed_max_time_seconds",
			"Newest observed timestamp per shard (unix seconds; absent when empty).",
			"gauge", shardLabels, func() []obs.Sample {
				var out []obs.Sample
				for _, st := range ss.ShardStats() {
					if st.MaxUnix != 0 {
						out = append(out, obs.Sample{LabelValues: []string{st.Name}, Value: float64(st.MaxUnix)})
					}
				}
				return out
			})
	}

	ep.Metrics = t
	return t
}

// countRequest bumps the per-path request counter.
func (t *Telemetry) countRequest(path string) {
	if t == nil {
		return
	}
	t.requests.With(path).Inc()
}

// observeWait records time spent queued for an admission slot.
func (t *Telemetry) observeWait(d time.Duration) {
	if t == nil {
		return
	}
	t.admissionWait.Observe(d.Seconds())
}

// recordQuery lands one finished query in the latency histogram, the
// row counter, and — for errors, rejections and slow misses — the
// slow-query log.
func (t *Telemetry) recordQuery(traceID, query, outcome string, rows int, elapsed time.Duration, planDigest string) {
	if t == nil {
		return
	}
	t.latency.With(outcome).Observe(elapsed.Seconds())
	if rows > 0 {
		t.rows.Add(uint64(rows))
	}
	if t.Queries == nil {
		return
	}
	log := outcome == "error" || outcome == "rejected" ||
		(outcome == "miss" && elapsed >= t.SlowQuery)
	if !log {
		return
	}
	t.Queries.Record(obs.QueryRecord{
		TraceID:    traceID,
		Query:      query,
		PlanDigest: planDigest,
		Outcome:    outcome,
		Rows:       rows,
		Elapsed:    elapsed,
	})
}

// planDigest fingerprints the plan the store would choose for q — the
// slow-query log's grouping key. Explain parses and plans but does not
// evaluate; it is only called for queries already deemed worth logging.
func (ep *Endpoint) planDigest(q string) string {
	plan, err := ep.store.Explain(q)
	if err != nil {
		return ""
	}
	return obs.Digest(plan)
}
