package strabon

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/obs"
	"repro/internal/resultcache"
	"repro/internal/stsparql"
)

// Endpoint is an http.Handler exposing a Store over a minimal
// SPARQL-protocol surface — the role Strabon's endpoint plays for NOA
// operators' thematic queries (Section 3.2.4 of the paper):
//
//	GET  /sparql?query=...          evaluate a SELECT/ASK
//	POST /sparql                    form-encoded query=, or a raw
//	                                application/sparql-query body
//	POST /update                    form-encoded update=, or a raw
//	                                application/sparql-update body
//	GET  /explain?query=...         render the evaluation plan
//	GET  /stats                     store + endpoint statistics
//
// Result format negotiation: an explicit format=json|tsv parameter
// wins; otherwise the Accept header is matched (q-values and wildcards
// honoured) against application/sparql-results+json and
// text/tab-separated-values. No Accept, or */*, means SPARQL results
// JSON; an Accept naming only unsupported types is answered 406 with
// the supported list.
//
// SELECT responses stream: rows are encoded from the store cursor as
// they are produced and flushed in chunks, so the first byte goes out
// before the last row exists and no full result set is ever buffered.
// Because the byte count is unknown up front, per-request statistics
// for streamed SELECTs travel as HTTP trailers (X-Rows, X-Elapsed-Us,
// and X-Error if evaluation failed mid-stream) on the chunked response;
// ASK and /update responses are tiny and keep them as plain headers.
//
// Handlers take no locks of their own: the store's read-lock discipline
// lets any number of /sparql and /explain requests run concurrently with
// each other and with the planning phases of scoped updates. A streamed
// response holds the store read lock for as long as the client keeps
// reading (until the cursor closes) — bounded by the request context:
// queries run under r.Context(), optionally capped by QueryTimeout, so
// a gone or stalled client releases the lock at the next row pull.
//
// The endpoint serves any API backend: the single Store or the sharded
// store (internal/shard), whose per-shard cardinalities /stats includes
// when available.
type Endpoint struct {
	store API

	// QueryTimeout, when positive, caps how long one /sparql evaluation
	// may hold store read locks; 0 means no cap beyond the client's own
	// context. The cap spans admission queueing and evaluation together.
	QueryTimeout time.Duration

	// Results, when set, caches materialised query results keyed by the
	// query text. A hit replays the stored rows through the same
	// RowWriter pipeline — byte-identical to a fresh evaluation,
	// trailers included — without taking any store lock or admission
	// slot. Entries carry the generation vector of the slices their
	// evaluation read and are validated against the store (GenValidator)
	// on every Get, so a write to any of those slices invalidates
	// exactly the results that read it. Requires the backend to
	// implement GenValidator; otherwise every lookup misses.
	Results *resultcache.Cache

	// Admission, when set, gates the cache-miss path: bounded concurrent
	// evaluations plus a FIFO wait queue. Overflow is answered 429 with
	// Retry-After.
	Admission *Admission

	// MaxRows and MaxBytes, when positive, bound one streamed response
	// on the miss path (budget overruns abort the stream with an
	// X-Error trailer). Cache hits replay results that already fit.
	MaxRows  int
	MaxBytes int64

	// Metrics, when set (EnableTelemetry), instruments the request path:
	// latency histograms by outcome, per-path request counters, the
	// slow-query log, and /metrics + /debug/queries routes on this
	// handler. nil disables all of it at the cost of one nil check.
	Metrics *Telemetry

	mu    sync.Mutex
	stats EndpointStats
}

// EndpointStats counts served traffic.
type EndpointStats struct {
	Requests int // query/update/explain requests accepted
	Errors   int // requests answered with a non-2xx status
	Rows     int // result rows served by queries
}

// NewEndpoint returns an endpoint over a store backend (the single
// Store, or internal/shard's sharded store).
func NewEndpoint(s API) *Endpoint { return &Endpoint{store: s} }

// Stats returns a snapshot of the endpoint counters.
func (ep *Endpoint) Stats() EndpointStats {
	ep.mu.Lock()
	defer ep.mu.Unlock()
	return ep.stats
}

// ServeHTTP implements http.Handler.
func (ep *Endpoint) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	path := strings.TrimSuffix(r.URL.Path, "/")
	if ep.Metrics != nil {
		// Resolve the trace ID once (minting is not idempotent) and pin it
		// on the inbound headers so the handlers below see the same ID.
		rid := obs.RequestID(r)
		r.Header.Set(obs.RequestIDHeader, rid)
		w.Header().Set(obs.RequestIDHeader, rid)
		ep.Metrics.countRequest(path)
	}
	switch path {
	case "", "/sparql":
		ep.serveQuery(w, r)
	case "/update":
		ep.serveUpdate(w, r)
	case "/explain":
		ep.serveExplain(w, r)
	case "/stats":
		ep.serveStats(w, r)
	case "/metrics":
		if ep.Metrics != nil && ep.Metrics.Registry != nil {
			ep.Metrics.Registry.ServeHTTP(w, r)
			return
		}
		http.NotFound(w, r)
	case "/debug/queries":
		if ep.Metrics != nil && ep.Metrics.Queries != nil {
			ep.Metrics.Queries.ServeHTTP(w, r)
			return
		}
		http.NotFound(w, r)
	default:
		http.NotFound(w, r)
	}
}

// maxRequestBody caps request bodies (direct and form-encoded alike):
// no thematic query comes anywhere near 1 MB.
const maxRequestBody = 1 << 20

// requestText extracts the query/update text per the SPARQL protocol:
// the named form/URL parameter, or the raw body for direct-POST content
// types.
func requestText(w http.ResponseWriter, r *http.Request, param, directType string) (string, error) {
	if r.Body != nil {
		r.Body = http.MaxBytesReader(w, r.Body, maxRequestBody)
	}
	if r.Method == http.MethodPost {
		ct := r.Header.Get("Content-Type")
		if strings.HasPrefix(ct, directType) {
			raw, err := io.ReadAll(r.Body)
			if err != nil {
				return "", err
			}
			return string(raw), nil
		}
	}
	if err := r.ParseForm(); err != nil {
		return "", err
	}
	return r.Form.Get(param), nil
}

func (ep *Endpoint) count(rows int, failed bool) {
	ep.mu.Lock()
	ep.stats.Requests++
	ep.stats.Rows += rows
	if failed {
		ep.stats.Errors++
	}
	ep.mu.Unlock()
}

// streamFlushRows is the row interval at which a streamed response is
// flushed to the client (each flush emits an HTTP chunk).
const streamFlushRows = 64

// setElapsed stamps the X-Elapsed-Us header (or trailer, when already
// declared) — the one helper behind every response's elapsed stamp.
func setElapsed(w http.ResponseWriter, start time.Time) {
	w.Header().Set("X-Elapsed-Us", fmt.Sprint(time.Since(start).Microseconds()))
}

func (ep *Endpoint) serveQuery(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet && r.Method != http.MethodPost {
		ep.count(0, true)
		http.Error(w, "GET or POST", http.StatusMethodNotAllowed)
		return
	}
	q, err := requestText(w, r, "query", "application/sparql-query")
	if err != nil || q == "" {
		ep.count(0, true)
		http.Error(w, "missing query", http.StatusBadRequest)
		return
	}
	media, acceptable := negotiateFormat(r)
	if !acceptable {
		ep.count(0, true)
		http.Error(w, "not acceptable: supported result formats are "+
			strings.Join(resultMediaTypes, ", ")+" (or format=json|tsv)",
			http.StatusNotAcceptable)
		return
	}

	traceID := r.Header.Get(obs.RequestIDHeader)

	// Result-cache lookup, ahead of plan compilation and admission: the
	// key is the query text alone (the cached row set is
	// format-independent; each hit renders it in the request's format),
	// and validation checks the entry's generation vector against the
	// live store without taking any lock.
	if ep.Results != nil {
		if ent, ok := ep.Results.Get(q, ep.validator()); ok {
			start := time.Now()
			rows := ep.serveCached(w, media, ent, start)
			ep.Metrics.recordQuery(traceID, q, "hit", rows, time.Since(start), "")
			return
		}
	}

	ctx := r.Context()
	if ep.QueryTimeout > 0 {
		var cancel func()
		ctx, cancel = context.WithTimeout(ctx, ep.QueryTimeout)
		defer cancel()
	}

	reqStart := time.Now()

	// Admission gates the miss path only — evaluations hold store read
	// locks, replays don't. The wait shares the query deadline.
	if ep.Admission != nil {
		waitStart := time.Now()
		if err := ep.Admission.Acquire(ctx); err != nil {
			ep.count(0, true)
			if errors.Is(err, ErrAdmissionFull) {
				w.Header().Set("Retry-After", "1")
				http.Error(w, "busy: admission queue full", http.StatusTooManyRequests)
				ep.Metrics.recordQuery(traceID, q, "rejected", 0, time.Since(reqStart), "")
			} else {
				http.Error(w, "queue wait cancelled: "+err.Error(), http.StatusServiceUnavailable)
				ep.Metrics.recordQuery(traceID, q, "error", 0, time.Since(reqStart), "")
			}
			return
		}
		ep.Metrics.observeWait(time.Since(waitStart))
		defer ep.Admission.Release()
	}

	start := time.Now()
	cur, err := ep.store.QueryStreamCtx(ctx, q)
	if err != nil {
		ep.count(0, true)
		http.Error(w, err.Error(), http.StatusBadRequest)
		ep.Metrics.recordQuery(traceID, q, "error", 0, time.Since(reqStart), "")
		return
	}
	defer cur.Close()

	// Pull the first row before committing to a status code: blocking
	// plans (aggregates, ORDER BY) surface their evaluation errors here,
	// keeping them 400s instead of mid-stream aborts.
	first, hasFirst := cur.Next()
	if err := cur.Err(); err != nil {
		cur.Close()
		ep.count(0, true)
		http.Error(w, err.Error(), http.StatusBadRequest)
		ep.Metrics.recordQuery(traceID, q, "error", 0, time.Since(reqStart), "")
		return
	}

	// Tee rows into a snapshot when the cursor vouches for the result:
	// it carries the generation vector captured under its read locks and
	// the plan is deterministic (no SAMPLE). The header is read here —
	// the same point the row encoder reads it — so a replay renders
	// identical bytes.
	var snap *stsparql.RowSnapshot
	var vec resultcache.GenVector
	if ep.Results != nil {
		if ci, ok := cur.(CacheInfo); ok {
			if v, cacheOK := ci.CacheVector(); cacheOK {
				vec = v
				snap = stsparql.NewRowSnapshot(cur.Vars())
			}
		}
	}

	if cur.IsAsk() {
		// ASK: a single pre-materialised row — keep the plain headers.
		res := &stsparql.Result{Vars: cur.Vars()}
		if hasFirst {
			res.Rows = append(res.Rows, first.Clone())
			if snap != nil {
				snap.Append(first)
			}
		}
		closeErr := cur.Close()
		if snap != nil && closeErr == nil {
			ep.Results.Put(q, &resultcache.Entry{Ask: true, Snap: snap}, vec)
		}
		w.Header().Set("X-Rows", fmt.Sprint(len(res.Rows)))
		setElapsed(w, start)
		if media == mediaTSV {
			w.Header().Set("Content-Type", mediaTSV+"; charset=utf-8")
			_ = WriteResultTSV(w, res)
		} else {
			w.Header().Set("Content-Type", mediaJSON)
			_ = WriteResultJSON(w, res)
		}
		ep.count(len(res.Rows), false)
		ep.recordMiss(traceID, q, len(res.Rows), time.Since(reqStart), false)
		return
	}

	// Streamed SELECT: declare the trailers, then encode rows from the
	// cursor, flushing every streamFlushRows rows.
	w.Header().Set("Trailer", "X-Rows, X-Elapsed-Us, X-Error")
	var sink io.Writer = w
	var cw *countWriter
	if ep.MaxBytes > 0 {
		cw = &countWriter{w: w}
		sink = cw
	}
	var enc RowWriter
	if media == mediaTSV {
		w.Header().Set("Content-Type", mediaTSV+"; charset=utf-8")
		enc = NewTSVRowWriter(sink, cur.Vars())
	} else {
		w.Header().Set("Content-Type", mediaJSON)
		enc = NewJSONRowWriter(sink, cur.Vars())
	}
	flusher, _ := w.(http.Flusher)
	var writeErr, budgetErr error
	for ok := hasFirst; ok; first, ok = cur.Next() {
		if ep.MaxRows > 0 && cur.Rows() > ep.MaxRows {
			budgetErr = fmt.Errorf("row budget exceeded (%d rows)", ep.MaxRows)
			break
		}
		if cw != nil && cw.n > ep.MaxBytes {
			budgetErr = fmt.Errorf("byte budget exceeded (%d bytes)", ep.MaxBytes)
			break
		}
		if snap != nil {
			snap.Append(first)
			if bound := ep.Results.MaxEntryBytes(); bound > 0 && snap.Bytes() > bound {
				snap = nil // result outgrew the per-entry bound: stop teeing
			}
		}
		if writeErr = enc.Row(first); writeErr != nil {
			break // client gone: stop pulling rows
		}
		if cur.Rows()%streamFlushRows == 0 && flusher != nil {
			flusher.Flush()
		}
	}
	if writeErr == nil && budgetErr == nil {
		writeErr = enc.End()
	}
	closeErr := cur.Close() // rows are final once the cursor is closed
	rows := cur.Rows()
	if snap != nil && closeErr == nil && writeErr == nil && budgetErr == nil {
		ep.Results.Put(q, &resultcache.Entry{Snap: snap}, vec)
	}
	w.Header().Set("X-Rows", fmt.Sprint(rows))
	setElapsed(w, start)
	failed := false
	switch {
	case closeErr != nil:
		w.Header().Set("X-Error", closeErr.Error())
		failed = true
	case budgetErr != nil:
		w.Header().Set("X-Error", budgetErr.Error())
		failed = true
	}
	ep.count(rows, failed || writeErr != nil)
	ep.recordMiss(traceID, q, rows, time.Since(reqStart), failed || writeErr != nil)
}

// recordMiss lands a completed (or failed) evaluation in the telemetry:
// outcome miss or error, with a plan digest computed only for queries
// the slow-query log will actually keep.
func (ep *Endpoint) recordMiss(traceID, q string, rows int, elapsed time.Duration, failed bool) {
	tel := ep.Metrics
	if tel == nil {
		return
	}
	outcome := "miss"
	if failed {
		outcome = "error"
	}
	digest := ""
	if tel.Queries != nil && (failed || elapsed >= tel.SlowQuery) {
		digest = ep.planDigest(q)
	}
	tel.recordQuery(traceID, q, outcome, rows, elapsed, digest)
}

// validator adapts the backend's generation check for cache lookups; a
// backend without one fails every entry (nothing is ever served stale).
func (ep *Endpoint) validator() func(resultcache.GenVector) bool {
	if gv, ok := ep.store.(GenValidator); ok {
		return gv.GensValid
	}
	return func(resultcache.GenVector) bool { return false }
}

// serveCached replays a cached result through the same encoding
// pipeline a fresh evaluation streams through, so the response bytes —
// headers, body and trailers — match a miss of the same query, with
// only X-Elapsed-Us reflecting the replay. Returns the rows served.
func (ep *Endpoint) serveCached(w http.ResponseWriter, media string, ent *resultcache.Entry, start time.Time) int {
	snap := ent.Snap
	if ent.Ask {
		res := snap.Result()
		w.Header().Set("X-Rows", fmt.Sprint(len(res.Rows)))
		setElapsed(w, start)
		if media == mediaTSV {
			w.Header().Set("Content-Type", mediaTSV+"; charset=utf-8")
			_ = WriteResultTSV(w, res)
		} else {
			w.Header().Set("Content-Type", mediaJSON)
			_ = WriteResultJSON(w, res)
		}
		ep.count(len(res.Rows), false)
		return len(res.Rows)
	}
	w.Header().Set("Trailer", "X-Rows, X-Elapsed-Us, X-Error")
	var enc RowWriter
	if media == mediaTSV {
		w.Header().Set("Content-Type", mediaTSV+"; charset=utf-8")
		enc = NewTSVRowWriter(w, snap.Vars())
	} else {
		w.Header().Set("Content-Type", mediaJSON)
		enc = NewJSONRowWriter(w, snap.Vars())
	}
	flusher, _ := w.(http.Flusher)
	var row stsparql.Binding
	var writeErr error
	for i := 0; i < snap.Len(); i++ {
		row = snap.Row(i, row)
		if writeErr = enc.Row(row); writeErr != nil {
			break
		}
		if (i+1)%streamFlushRows == 0 && flusher != nil {
			flusher.Flush()
		}
	}
	if writeErr == nil {
		writeErr = enc.End()
	}
	w.Header().Set("X-Rows", fmt.Sprint(snap.Len()))
	setElapsed(w, start)
	ep.count(snap.Len(), writeErr != nil)
	return snap.Len()
}

// countWriter counts bytes on their way to the client for the
// response byte budget.
type countWriter struct {
	w io.Writer
	n int64
}

func (c *countWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.n += int64(n)
	return n, err
}

func (ep *Endpoint) serveUpdate(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		ep.count(0, true)
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	u, err := requestText(w, r, "update", "application/sparql-update")
	if err != nil || u == "" {
		ep.count(0, true)
		http.Error(w, "missing update", http.StatusBadRequest)
		return
	}
	start := time.Now()
	st, err := ep.store.Update(u)
	if err != nil {
		ep.count(0, true)
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	ep.count(0, false)
	w.Header().Set("Content-Type", "application/json")
	setElapsed(w, start)
	_ = json.NewEncoder(w).Encode(st)
}

func (ep *Endpoint) serveExplain(w http.ResponseWriter, r *http.Request) {
	q, err := requestText(w, r, "query", "application/sparql-query")
	if err != nil || q == "" {
		ep.count(0, true)
		http.Error(w, "missing query", http.StatusBadRequest)
		return
	}
	var plan string
	if analyzeParam(r) {
		an, ok := ep.store.(Analyzer)
		if !ok {
			ep.count(0, true)
			http.Error(w, "backend does not support EXPLAIN ANALYZE", http.StatusNotImplemented)
			return
		}
		ctx := r.Context()
		if ep.QueryTimeout > 0 {
			var cancel func()
			ctx, cancel = context.WithTimeout(ctx, ep.QueryTimeout)
			defer cancel()
		}
		plan, err = an.ExplainAnalyze(ctx, q)
	} else {
		plan, err = ep.store.Explain(q)
	}
	if err != nil {
		ep.count(0, true)
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	ep.count(0, false)
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	io.WriteString(w, plan)
}

// analyzeParam reports whether the request asked for EXPLAIN ANALYZE
// (analyze=1 or analyze=true, form or query string).
func analyzeParam(r *http.Request) bool {
	v := r.Form.Get("analyze")
	if v == "" {
		v = r.URL.Query().Get("analyze")
	}
	return v == "1" || v == "true"
}

func (ep *Endpoint) serveStats(w http.ResponseWriter, r *http.Request) {
	type dictStats struct {
		Entries int `json:"entries"`
		Bytes   int `json:"bytes"`
	}
	doc := struct {
		Triples     int                     `json:"triples"`
		Store       Stats                   `json:"store"`
		Dict        *dictStats              `json:"dictionary,omitempty"`
		Endpoint    EndpointStats           `json:"endpoint"`
		PlanCache   stsparql.PlanCacheStats `json:"plan_cache"`
		ResultCache *resultcache.Stats      `json:"result_cache,omitempty"`
		Admission   *AdmissionStats         `json:"admission,omitempty"`
		Shards      []ShardStat             `json:"shards,omitempty"`
	}{
		Triples:   ep.store.Len(),
		Store:     ep.store.Stats(),
		Endpoint:  ep.Stats(),
		PlanCache: ep.store.PlanStats(),
	}
	if ds, ok := ep.store.(DictStatser); ok {
		entries, bytes := ds.DictStats()
		doc.Dict = &dictStats{Entries: entries, Bytes: bytes}
	}
	if ep.Results != nil {
		rc := ep.Results.Stats()
		doc.ResultCache = &rc
	}
	if ep.Admission != nil {
		ad := ep.Admission.Stats()
		doc.Admission = &ad
	}
	if ss, ok := ep.store.(ShardStatser); ok {
		doc.Shards = ss.ShardStats()
	}
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(doc)
}

// Media types the endpoint can render a result set in, in preference
// order (the first is the default for absent or fully-wildcard Accept).
const (
	mediaJSON = "application/sparql-results+json"
	mediaTSV  = "text/tab-separated-values"
)

var resultMediaTypes = []string{mediaJSON, mediaTSV}

// negotiateFormat resolves the result media type for a query request.
// An explicit format= parameter (json or tsv) overrides everything;
// otherwise the Accept header is parsed with q-values and matched
// against the supported set, wildcards honoured and specificity
// breaking q ties (an exact type beats text/* beats */*). An absent
// Accept header means JSON. ok is false when the client asked only for
// types the endpoint cannot produce — the caller answers 406 listing
// the supported set.
func negotiateFormat(r *http.Request) (media string, ok bool) {
	f := r.Form.Get("format")
	if f == "" {
		f = r.URL.Query().Get("format")
	}
	switch f {
	case "tsv":
		return mediaTSV, true
	case "json":
		return mediaJSON, true
	case "":
	default:
		return "", false
	}
	accept := strings.TrimSpace(r.Header.Get("Accept"))
	if accept == "" {
		return mediaJSON, true
	}
	best, bestQ, bestSpec := "", -1.0, -1
	for _, part := range strings.Split(accept, ",") {
		fields := strings.Split(part, ";")
		pat := strings.ToLower(strings.TrimSpace(fields[0]))
		if pat == "" {
			continue
		}
		q := 1.0
		for _, p := range fields[1:] {
			if v, isQ := strings.CutPrefix(strings.TrimSpace(p), "q="); isQ {
				if parsed, err := strconv.ParseFloat(v, 64); err == nil {
					q = parsed
				}
			}
		}
		if q <= 0 {
			continue
		}
		for _, m := range resultMediaTypes {
			spec, match := mediaMatch(pat, m)
			if match && (q > bestQ || (q == bestQ && spec > bestSpec)) {
				best, bestQ, bestSpec = m, q, spec
			}
		}
	}
	return best, best != ""
}

// mediaMatch reports whether the Accept pattern covers the concrete
// media type, and how specifically (2 exact, 1 subtype wildcard, 0
// full wildcard).
func mediaMatch(pat, media string) (spec int, ok bool) {
	switch {
	case pat == media:
		return 2, true
	case pat == "*/*":
		return 0, true
	case strings.HasSuffix(pat, "/*"):
		return 1, strings.HasPrefix(media, pat[:len(pat)-1])
	}
	return 0, false
}
