// Package strabon is the geospatial RDF store of the reproduction: the
// role Strabon (Kyzirakos, Karpathiotakis, Koubarakis — ISWC 2012) plays
// in the paper's architecture. It combines the dictionary-encoded triple
// store of package rdf with an R-tree over strdf:hasGeometry objects and
// the stSPARQL engine, exposing an endpoint-style API used by the
// refinement step of the fire-monitoring service.
//
// # Locking discipline
//
// The store is safe for concurrent use through its endpoint API (Query,
// Update, UpdateScoped, LoadTriples, InsertAll, ...). Internally a single
// RWMutex guards the triple store, the spatial index and the geometry
// entry table:
//
//   - Query and QueryStream evaluate under a read lock, so any number
//     of queries — and the read-only planning phases of UpdateScoped —
//     run concurrently. A streaming cursor HOLDS the read lock from
//     QueryStream until Close: writers queue behind open cursors, which
//     is what makes a half-consumed result set immune to concurrent
//     mutation. Clients must Close cursors promptly.
//   - Update, InsertAll and plan application take the write lock;
//     mutations are serialised. Every mutation bumps the store
//     generation, invalidating cached query plans.
//   - The stsparql interface methods (MatchTerms, Add, Remove,
//     MatchGeometryWindow, SpatialIndexEnabled) do NOT lock: they are
//     called by the evaluator while an endpoint method already holds the
//     lock. External callers must go through the endpoint API.
//   - Endpoint statistics live behind a separate mutex so read-locked
//     queries can still count index hits.
//
// UpdateScoped relaxes SPARQL Update atomicity: the WHERE phase runs
// under the read lock and application under the write lock, so a
// conflicting writer could land in between. It exists for the refinement
// loop, whose per-acquisition updates are scope-disjoint (every pattern is
// filtered to one acquisition timestamp), making the interleaving
// unobservable; callers with overlapping updates must use Update.
package strabon

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/geom"
	"repro/internal/rdf"
	"repro/internal/resultcache"
	"repro/internal/rtree"
	"repro/internal/stsparql"
)

// Store is a spatially indexed RDF store with an stSPARQL endpoint. See
// the package comment for the locking discipline.
type Store struct {
	mu      sync.RWMutex
	triples *rdf.Store
	ns      *rdf.Namespaces
	cache   *stsparql.Cache

	// plans caches compiled query plans keyed by query text, guarded by
	// mu; gen is the mutation generation plan- and result-cache entries
	// are pinned to. gen is atomic so composite stores and cache
	// validators can read the generation of a store they do NOT hold
	// locked (observed-range-pruned slices, result-cache Get): it is
	// only advanced under the write lock, so a read-locked observer
	// still sees a stable value.
	plans *stsparql.PlanCache
	gen   atomic.Uint64

	indexOn bool
	index   *rtree.Tree
	// geomEntries remembers what was inserted in the index so Remove can
	// delete the exact entry again.
	geomEntries map[string]indexedGeom

	statsMu sync.Mutex
	stats   Stats
}

// defaultPlanCacheSize bounds the compiled-plan cache: the endpoint's
// repeated thematic-query catalogue is far smaller than this.
const defaultPlanCacheSize = 256

type indexedGeom struct {
	env    geom.Envelope
	triple rdf.Triple
	// enc is the dictionary encoding of triple, captured at insert time so
	// window scans can stay in ID space (MatchGeometryWindowIDs).
	enc rdf.EncodedTriple
}

// Stats counts endpoint activity.
type Stats struct {
	Queries       int
	Updates       int
	TriplesLoaded int
	IndexHits     int
}

// New returns an empty store with the spatial index enabled and a
// default-sized plan cache.
func New() *Store {
	return &Store{
		triples:     rdf.NewStore(),
		ns:          rdf.NewNamespaces(),
		cache:       stsparql.NewCache(),
		plans:       stsparql.NewPlanCache(defaultPlanCacheSize),
		indexOn:     true,
		index:       rtree.New(),
		geomEntries: make(map[string]indexedGeom),
	}
}

// SetPlanCacheSize replaces the compiled-plan cache with one holding at
// most n entries; n <= 0 disables plan caching. Counters restart.
func (s *Store) SetPlanCacheSize(n int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if n <= 0 {
		s.plans = nil
		return
	}
	s.plans = stsparql.NewPlanCache(n)
}

// PlanStats returns a snapshot of the plan cache counters.
func (s *Store) PlanStats() stsparql.PlanCacheStats {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.plans == nil {
		return stsparql.PlanCacheStats{}
	}
	return s.plans.Stats()
}

// NewWithCache returns an empty store sharing an externally-owned
// geometry cache, so several stores — or a store and direct evaluator
// use — can reuse parsed WKT across query runs.
func NewWithCache(cache *stsparql.Cache) *Store {
	s := New()
	if cache != nil {
		s.cache = cache
	}
	return s
}

// NewWithoutIndex returns a store with spatial index acceleration
// disabled; used by the ablation benchmarks.
func NewWithoutIndex() *Store {
	s := New()
	s.indexOn = false
	return s
}

// Namespaces exposes the store's prefix table.
func (s *Store) Namespaces() *rdf.Namespaces { return s.ns }

// Len reports the number of triples.
func (s *Store) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.triples.Len()
}

// Stats returns a snapshot of endpoint statistics.
func (s *Store) Stats() Stats {
	s.statsMu.Lock()
	defer s.statsMu.Unlock()
	return s.stats
}

// --- stsparql.Source / UpdatableSource / SpatialSource ---
// These run with the store lock already held by the calling endpoint
// method; they must not lock s.mu themselves.

// MatchTerms implements stsparql.Source.
func (s *Store) MatchTerms(sub, pred, obj rdf.Term, visit func(rdf.Triple) bool) {
	s.triples.MatchTerms(sub, pred, obj, visit)
}

// Add implements stsparql.UpdatableSource, maintaining the spatial
// index and the plan-invalidating generation (it is only called with
// the write lock held).
func (s *Store) Add(t rdf.Triple) bool {
	if !s.triples.Add(t) {
		return false
	}
	s.gen.Add(1)
	if item, ok := s.geomItem(t); ok {
		s.index.Insert(item.Box, item.Data)
	}
	return true
}

// geomItem prepares the spatial-index entry for a geometry triple,
// recording it in geomEntries. ok is false for non-geometry triples.
func (s *Store) geomItem(t rdf.Triple) (rtree.Item, bool) {
	if !t.O.IsGeometry() || !stsparql.GeometryPredicates[t.P.Value] {
		return rtree.Item{}, false
	}
	g, err := geom.ParseWKT(t.O.Value)
	if err != nil {
		return rtree.Item{}, false
	}
	env := g.Envelope()
	key := t.String()
	// The triple was just added, so all three terms are interned; the
	// encoding lets window scans yield IDs without a per-visit lookup.
	dict := s.triples.Dict()
	var enc rdf.EncodedTriple
	enc.S, _ = dict.Lookup(t.S)
	enc.P, _ = dict.Lookup(t.P)
	enc.O, _ = dict.Lookup(t.O)
	s.geomEntries[key] = indexedGeom{env: env, triple: t, enc: enc}
	return rtree.Item{Box: env, Data: key}, true
}

// Remove implements stsparql.UpdatableSource.
func (s *Store) Remove(t rdf.Triple) bool {
	if !s.triples.Remove(t) {
		return false
	}
	s.gen.Add(1)
	if e, ok := s.geomEntries[t.String()]; ok {
		s.index.Delete(e.env, t.String())
		delete(s.geomEntries, t.String())
	}
	return true
}

// CountPattern implements stsparql.StatSource.
func (s *Store) CountPattern(sub, pred, obj rdf.Term) int {
	return s.triples.CountPattern(sub, pred, obj)
}

// PredicateCard implements stsparql.StatSource.
func (s *Store) PredicateCard(pred rdf.Term) (triples, distinctS, distinctO int) {
	return s.triples.PredicateCard(pred)
}

// StoreCard implements stsparql.StatSource.
func (s *Store) StoreCard() (triples, subjects, predicates, objects int) {
	return s.triples.StoreCard()
}

// SpatialIndexEnabled implements stsparql.SpatialSource.
func (s *Store) SpatialIndexEnabled() bool { return s.indexOn }

// MatchGeometryWindow implements stsparql.SpatialSource: it streams the
// geometry triples whose envelope intersects the window.
func (s *Store) MatchGeometryWindow(env geom.Envelope, visit func(rdf.Triple) bool) {
	s.statsMu.Lock()
	s.stats.IndexHits++
	s.statsMu.Unlock()
	s.index.Search(env, func(it rtree.Item) bool {
		e := s.geomEntries[it.Data.(string)]
		return visit(e.triple)
	})
}

// --- stsparql.IDSource / SpatialIDSource ---
// The ID-native scan surface: the engine joins, filters and deduplicates
// on the store's dictionary IDs and materialises terms late (cursor row
// views, ORDER BY, aggregation). Like the term-level methods above,
// these run with the store lock already held.

// Dict implements stsparql.IDSource, exposing the append-only term
// dictionary (IDs are stable for the life of the store; decode is
// lock-free for readers holding the read lock).
func (s *Store) Dict() *rdf.Dictionary { return s.triples.Dict() }

// MatchIDs implements stsparql.IDSource: it streams encoded triples
// matching an encoded pattern (rdf.Wildcard components match anything).
func (s *Store) MatchIDs(sub, pred, obj rdf.ID, visit func(rdf.EncodedTriple) bool) {
	s.triples.Match(sub, pred, obj, visit)
}

// MatchGeometryWindowIDs implements stsparql.SpatialIDSource: the
// encoded counterpart of MatchGeometryWindow, serving window scans
// without decoding a single term.
func (s *Store) MatchGeometryWindowIDs(env geom.Envelope, visit func(rdf.EncodedTriple) bool) {
	s.statsMu.Lock()
	s.stats.IndexHits++
	s.statsMu.Unlock()
	s.index.Search(env, func(it rtree.Item) bool {
		e := s.geomEntries[it.Data.(string)]
		return visit(e.enc)
	})
}

// DictStats reports the term dictionary's size: interned terms and
// approximate retained bytes. Exported as gauges next to the
// cardinality statistics (see /metrics and /stats).
func (s *Store) DictStats() (entries, bytes int) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	d := s.triples.Dict()
	return d.Len(), d.ApproxBytes()
}

// --- endpoint API ---

// LoadTriples bulk-inserts triples.
func (s *Store) LoadTriples(triples []rdf.Triple) int {
	counts := s.InsertAll(triples)
	return counts[0]
}

// InsertAll bulk-inserts several triple groups under one write-lock
// acquisition, returning the number of new triples per group. Geometry
// triples are gathered across the whole flush and bulk-loaded into the
// R-tree once, instead of one quadratic-split insertion per triple — the
// batched write path of the acquisition pipeline's writer.
func (s *Store) InsertAll(groups ...[]rdf.Triple) []int {
	counts := make([]int, len(groups))
	total := 0
	s.mu.Lock()
	var items []rtree.Item
	for gi, group := range groups {
		for _, t := range group {
			if !s.triples.Add(t) {
				continue
			}
			counts[gi]++
			total++
			if item, ok := s.geomItem(t); ok {
				items = append(items, item)
			}
		}
	}
	if total > 0 {
		s.gen.Add(1)
	}
	s.index.InsertAll(items)
	s.mu.Unlock()

	s.statsMu.Lock()
	s.stats.TriplesLoaded += total
	s.statsMu.Unlock()
	return counts
}

// LoadTurtle parses and loads a Turtle document.
func (s *Store) LoadTurtle(src string) (int, error) {
	triples, err := rdf.ParseTurtle(src, s.ns)
	if err != nil {
		return 0, err
	}
	return s.LoadTriples(triples), nil
}

// Cursor streams the solutions of one query. A SELECT cursor holds the
// store's read lock from QueryStream until Close — close promptly; an
// ASK cursor is pre-materialised and holds no lock. Rows yielded so far
// are counted and reported at Close (Rows), the bookkeeping hook the
// endpoint's streamed responses use.
type Cursor struct {
	inner  stsparql.Cursor
	ask    bool
	rows   int
	unlock func() // releases the read lock; nil once released
	closed bool

	// Result-cache metadata, captured under the read lock at open time:
	// the store generation the rows derive from, and the plan-time
	// cacheability verdict. See CacheVector.
	vec       resultcache.GenVector
	cacheable bool
}

// CacheVector implements CacheInfo: the generation vector this
// cursor's rows were derived from, and whether the result may be
// cached at all (false for non-deterministic plans such as SAMPLE).
func (c *Cursor) CacheVector() (resultcache.GenVector, bool) {
	return c.vec, c.cacheable
}

// Vars is the result header.
func (c *Cursor) Vars() []string { return c.inner.Vars() }

// IsAsk reports whether the cursor carries an ASK verdict (a single row
// binding "ask").
func (c *Cursor) IsAsk() bool { return c.ask }

// Next yields the next solution; ok=false once exhausted or on error
// (check Err).
func (c *Cursor) Next() (stsparql.Binding, bool) {
	if c.closed {
		return nil, false
	}
	row, ok := c.inner.Next()
	if ok {
		c.rows++
	}
	return row, ok
}

// Err reports the first evaluation error, if any.
func (c *Cursor) Err() error { return c.inner.Err() }

// Rows reports how many solutions have been yielded so far.
func (c *Cursor) Rows() int { return c.rows }

// Close terminates the evaluation and releases the store read lock. It
// is idempotent and returns Err().
func (c *Cursor) Close() error {
	if !c.closed {
		c.closed = true
		c.inner.Close()
		if c.unlock != nil {
			c.unlock()
			c.unlock = nil
		}
	}
	return c.inner.Err()
}

// QueryStream parses, plans and starts a SELECT or ASK request,
// returning a streaming cursor over its solutions. Parsing and planning
// consult the plan cache: a repeated query at an unchanged store
// generation reuses its compiled plan. The returned cursor holds the
// store read lock until Close (ASK verdicts are computed eagerly — the
// pipeline stops at the first solution — and release the lock before
// returning).
func (s *Store) QueryStream(src string) (*Cursor, error) {
	s.mu.RLock()
	ev := stsparql.NewEvaluatorWithCache(s, s.cache)
	c, err := ev.CompileCached(src, s.ns, s.plans, s.gen.Load())
	if err != nil {
		s.mu.RUnlock()
		return nil, err
	}
	// Counted after the parse, like the pre-cursor Query: malformed
	// requests are not served queries.
	s.statsMu.Lock()
	s.stats.Queries++
	s.statsMu.Unlock()
	// Captured under the read lock: the generation every row of this
	// evaluation derives from.
	vec := resultcache.GenVector{Gens: []resultcache.SliceGen{{Slice: -1, Gen: s.gen.Load()}}}
	switch {
	case c.IsSelect():
		cur, err := ev.RunCompiled(c)
		if err != nil {
			s.mu.RUnlock()
			return nil, err
		}
		return &Cursor{inner: cur, unlock: s.mu.RUnlock, vec: vec, cacheable: c.Cacheable()}, nil
	case c.IsAsk():
		ok, err := ev.AskCompiled(c)
		s.mu.RUnlock()
		if err != nil {
			return nil, err
		}
		rows := []stsparql.Binding{{"ask": rdf.NewBoolean(ok)}}
		return &Cursor{inner: stsparql.MaterialisedCursor([]string{"ask"}, rows), ask: true,
			vec: vec, cacheable: c.Cacheable()}, nil
	default:
		s.mu.RUnlock()
		return nil, fmt.Errorf("strabon: Query wants SELECT or ASK; use Update for updates")
	}
}

// Query parses and evaluates a SELECT or ASK request, materialising the
// full result through the canonical streaming path (MaterialiseQuery).
// ASK results are returned as a single-row result with variable "ask".
// Queries run under the read lock and may execute concurrently with
// each other.
func (s *Store) Query(src string) (*stsparql.Result, error) {
	return MaterialiseQuery(context.Background(), s, src)
}

// Explain parses a request and renders the evaluation plan the engine
// would choose for it — join order, join strategies (bind / hash /
// R-tree window) and cardinality estimates — without executing it. It
// runs under the read lock because the planner consults live statistics.
func (s *Store) Explain(src string) (string, error) {
	q, err := stsparql.Parse(src, s.ns)
	if err != nil {
		return "", err
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	ev := stsparql.NewEvaluatorWithCache(s, s.cache)
	return ev.Explain(q)
}

// Update parses and executes a DELETE/INSERT request atomically: match
// and application both happen under the write lock.
func (s *Store) Update(src string) (stsparql.UpdateStats, error) {
	q, err := s.parseUpdate(src)
	if err != nil {
		return stsparql.UpdateStats{}, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	ev := stsparql.NewEvaluatorWithCache(s, s.cache)
	return ev.Update(q.Update)
}

// UpdateScoped executes a DELETE/INSERT request with its WHERE phase
// under the read lock and its application under the write lock. Several
// scoped updates can therefore match concurrently — the property the
// refinement stage of the acquisition pipeline relies on, since its
// spatial-join WHERE clauses dominate the cost while touching only one
// acquisition's triples. Atomicity across the two phases is NOT
// guaranteed; see the package comment for when this is sound.
func (s *Store) UpdateScoped(src string) (stsparql.UpdateStats, error) {
	q, err := s.parseUpdate(src)
	if err != nil {
		return stsparql.UpdateStats{}, err
	}
	s.mu.RLock()
	ev := stsparql.NewEvaluatorWithCache(s, s.cache)
	plan, err := ev.PlanUpdate(q.Update)
	s.mu.RUnlock()
	if err != nil {
		return stsparql.UpdateStats{}, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return stsparql.ApplyPlan(s, plan), nil
}

func (s *Store) parseUpdate(src string) (*stsparql.Query, error) {
	q, err := stsparql.Parse(src, s.ns)
	if err != nil {
		return nil, err
	}
	if q.Update == nil {
		return nil, fmt.Errorf("strabon: Update wants DELETE/INSERT")
	}
	s.statsMu.Lock()
	s.stats.Updates++
	s.statsMu.Unlock()
	return q, nil
}

// TimedUpdate executes an update and reports its wall-clock duration,
// the measurement unit of the paper's Figure 8.
func (s *Store) TimedUpdate(src string) (stsparql.UpdateStats, time.Duration, error) {
	start := time.Now()
	st, err := s.Update(src)
	return st, time.Since(start), err
}

// TimedQuery evaluates a query and reports its wall-clock duration
// through the shared wrapper (see TimedQuery in api.go).
func (s *Store) TimedQuery(src string) (*stsparql.Result, time.Duration, error) {
	return TimedQuery(s, src)
}
