// Package strabon is the geospatial RDF store of the reproduction: the
// role Strabon (Kyzirakos, Karpathiotakis, Koubarakis — ISWC 2012) plays
// in the paper's architecture. It combines the dictionary-encoded triple
// store of package rdf with an R-tree over strdf:hasGeometry objects and
// the stSPARQL engine, exposing an endpoint-style API used by the
// refinement step of the fire-monitoring service.
package strabon

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/geom"
	"repro/internal/rdf"
	"repro/internal/rtree"
	"repro/internal/stsparql"
)

// Store is a spatially indexed RDF store with an stSPARQL endpoint.
// Queries and updates are serialised by an internal lock, mirroring the
// single-writer discipline of the NOA deployment.
type Store struct {
	mu      sync.Mutex
	triples *rdf.Store
	ns      *rdf.Namespaces
	cache   *stsparql.Cache

	indexOn bool
	index   *rtree.Tree
	// geomEntries remembers what was inserted in the index so Remove can
	// delete the exact entry again.
	geomEntries map[string]indexedGeom

	stats Stats
}

type indexedGeom struct {
	env    geom.Envelope
	triple rdf.Triple
}

// Stats counts endpoint activity.
type Stats struct {
	Queries       int
	Updates       int
	TriplesLoaded int
	IndexHits     int
}

// New returns an empty store with the spatial index enabled.
func New() *Store {
	return &Store{
		triples:     rdf.NewStore(),
		ns:          rdf.NewNamespaces(),
		cache:       stsparql.NewCache(),
		indexOn:     true,
		index:       rtree.New(),
		geomEntries: make(map[string]indexedGeom),
	}
}

// NewWithoutIndex returns a store with spatial index acceleration
// disabled; used by the ablation benchmarks.
func NewWithoutIndex() *Store {
	s := New()
	s.indexOn = false
	return s
}

// Namespaces exposes the store's prefix table.
func (s *Store) Namespaces() *rdf.Namespaces { return s.ns }

// Len reports the number of triples.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.triples.Len()
}

// Stats returns a snapshot of endpoint statistics.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stats
}

// --- stsparql.Source / UpdatableSource / SpatialSource ---

// MatchTerms implements stsparql.Source.
func (s *Store) MatchTerms(sub, pred, obj rdf.Term, visit func(rdf.Triple) bool) {
	s.triples.MatchTerms(sub, pred, obj, visit)
}

// Add implements stsparql.UpdatableSource, maintaining the spatial index.
func (s *Store) Add(t rdf.Triple) bool {
	if !s.triples.Add(t) {
		return false
	}
	if t.O.IsGeometry() && stsparql.GeometryPredicates[t.P.Value] {
		if g, err := geom.ParseWKT(t.O.Value); err == nil {
			env := g.Envelope()
			s.index.Insert(env, t.String())
			s.geomEntries[t.String()] = indexedGeom{env: env, triple: t}
		}
	}
	return true
}

// Remove implements stsparql.UpdatableSource.
func (s *Store) Remove(t rdf.Triple) bool {
	if !s.triples.Remove(t) {
		return false
	}
	if e, ok := s.geomEntries[t.String()]; ok {
		s.index.Delete(e.env, t.String())
		delete(s.geomEntries, t.String())
	}
	return true
}

// SpatialIndexEnabled implements stsparql.SpatialSource.
func (s *Store) SpatialIndexEnabled() bool { return s.indexOn }

// MatchGeometryWindow implements stsparql.SpatialSource: it streams the
// geometry triples whose envelope intersects the window.
func (s *Store) MatchGeometryWindow(env geom.Envelope, visit func(rdf.Triple) bool) {
	s.stats.IndexHits++
	s.index.Search(env, func(it rtree.Item) bool {
		e := s.geomEntries[it.Data.(string)]
		return visit(e.triple)
	})
}

// --- endpoint API ---

// LoadTriples bulk-inserts triples.
func (s *Store) LoadTriples(triples []rdf.Triple) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := 0
	for _, t := range triples {
		if s.Add(t) {
			n++
		}
	}
	s.stats.TriplesLoaded += n
	return n
}

// LoadTurtle parses and loads a Turtle document.
func (s *Store) LoadTurtle(src string) (int, error) {
	triples, err := rdf.ParseTurtle(src, s.ns)
	if err != nil {
		return 0, err
	}
	return s.LoadTriples(triples), nil
}

// Query parses and evaluates a SELECT or ASK request. ASK results are
// returned as a single-row result with variable "ask".
func (s *Store) Query(src string) (*stsparql.Result, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.stats.Queries++
	q, err := stsparql.Parse(src, s.ns)
	if err != nil {
		return nil, err
	}
	ev := stsparql.NewEvaluatorWithCache(s, s.cache)
	switch {
	case q.Select != nil:
		return ev.Select(q.Select)
	case q.Ask != nil:
		ok, err := ev.Ask(q.Ask)
		if err != nil {
			return nil, err
		}
		res := &stsparql.Result{Vars: []string{"ask"}}
		res.Rows = []stsparql.Binding{{"ask": rdf.NewBoolean(ok)}}
		return res, nil
	default:
		return nil, fmt.Errorf("strabon: Query wants SELECT or ASK; use Update for updates")
	}
}

// Update parses and executes a DELETE/INSERT request.
func (s *Store) Update(src string) (stsparql.UpdateStats, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.stats.Updates++
	q, err := stsparql.Parse(src, s.ns)
	if err != nil {
		return stsparql.UpdateStats{}, err
	}
	if q.Update == nil {
		return stsparql.UpdateStats{}, fmt.Errorf("strabon: Update wants DELETE/INSERT")
	}
	ev := stsparql.NewEvaluatorWithCache(s, s.cache)
	return ev.Update(q.Update)
}

// TimedUpdate executes an update and reports its wall-clock duration,
// the measurement unit of the paper's Figure 8.
func (s *Store) TimedUpdate(src string) (stsparql.UpdateStats, time.Duration, error) {
	start := time.Now()
	st, err := s.Update(src)
	return st, time.Since(start), err
}

// TimedQuery evaluates a query and reports its wall-clock duration,
// including a full iteration over the result rows (the paper's metric:
// "elapsed time from query submission till a complete iteration over each
// query's results").
func (s *Store) TimedQuery(src string) (*stsparql.Result, time.Duration, error) {
	start := time.Now()
	res, err := s.Query(src)
	if err != nil {
		return nil, 0, err
	}
	for range res.Rows {
		// Results are already materialised; the loop mirrors the paper's
		// complete-iteration protocol.
	}
	return res, time.Since(start), nil
}
