package strabon

import (
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/rdf"
)

// Tests for the cursor-based query surface: QueryStream's streaming and
// locking discipline, the generation-invalidated plan cache, and the
// endpoint's chunked responses with trailer bookkeeping.

func TestQueryStreamBasics(t *testing.T) {
	s := New()
	if _, err := s.LoadTurtle(fixtureTurtle); err != nil {
		t.Fatal(err)
	}
	cur, err := s.QueryStream(`SELECT ?h ?c WHERE { ?h a noa:Hotspot ; noa:hasConfidence ?c . }`)
	if err != nil {
		t.Fatal(err)
	}
	if got := fmt.Sprint(cur.Vars()); got != "[h c]" {
		t.Fatalf("vars = %s", got)
	}
	n := 0
	for row, ok := cur.Next(); ok; row, ok = cur.Next() {
		if row["h"].IsZero() || row["c"].IsZero() {
			t.Fatalf("incomplete row %v", row)
		}
		n++
	}
	if err := cur.Close(); err != nil {
		t.Fatal(err)
	}
	if n != 2 || cur.Rows() != 2 {
		t.Fatalf("rows = %d (cursor says %d), want 2", n, cur.Rows())
	}
	// Idempotent close, dead after close.
	if err := cur.Close(); err != nil {
		t.Fatal(err)
	}
	if _, ok := cur.Next(); ok {
		t.Fatal("Next after Close yielded a row")
	}

	// ASK arrives pre-materialised and holds no lock.
	ask, err := s.QueryStream(`ASK { ?h a noa:Hotspot }`)
	if err != nil {
		t.Fatal(err)
	}
	if !ask.IsAsk() {
		t.Fatal("IsAsk = false")
	}
	row, ok := ask.Next()
	if !ok || row["ask"].Value != "true" {
		t.Fatalf("ask row = %v (ok=%v)", row, ok)
	}
	if err := ask.Close(); err != nil {
		t.Fatal(err)
	}

	if _, err := s.QueryStream(`DELETE WHERE { ?s ?p ?o }`); err == nil {
		t.Fatal("QueryStream accepted an update")
	}
}

// TestQueryStreamHoldsLockUntilClose pins the lock discipline: a writer
// must not land while a SELECT cursor is open, and must proceed once it
// closes.
func TestQueryStreamHoldsLockUntilClose(t *testing.T) {
	s := New()
	if _, err := s.LoadTurtle(fixtureTurtle); err != nil {
		t.Fatal(err)
	}
	cur, err := s.QueryStream(`SELECT ?h WHERE { ?h a noa:Hotspot . }`)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := cur.Next(); !ok {
		t.Fatal("no first row")
	}

	done := make(chan struct{})
	go func() {
		defer close(done)
		if _, err := s.Update(`INSERT DATA { noa:locked a noa:Hotspot . }`); err != nil {
			t.Error(err)
		}
	}()
	select {
	case <-done:
		t.Fatal("update landed while the cursor held the read lock")
	case <-time.After(20 * time.Millisecond):
	}
	if err := cur.Close(); err != nil {
		t.Fatal(err)
	}
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("update still blocked after cursor close")
	}
}

// TestPlanCacheHitsAndInvalidation pins the generation discipline:
// repeats hit, any mutation invalidates, and /stats-visible counters
// move accordingly.
func TestPlanCacheHitsAndInvalidation(t *testing.T) {
	s := New()
	if _, err := s.LoadTurtle(fixtureTurtle); err != nil {
		t.Fatal(err)
	}
	const q = `SELECT ?h WHERE { ?h a noa:Hotspot . }`
	for i := 0; i < 3; i++ {
		if _, err := s.Query(q); err != nil {
			t.Fatal(err)
		}
	}
	ps := s.PlanStats()
	if ps.Misses != 1 || ps.Hits != 2 || ps.Entries != 1 {
		t.Fatalf("after repeats: %+v", ps)
	}

	// A mutation bumps the generation: the stale plan is dropped and
	// replanned once, then hits resume.
	if _, err := s.Update(`INSERT DATA { noa:hx a noa:Hotspot . }`); err != nil {
		t.Fatal(err)
	}
	res, err := s.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 {
		t.Fatalf("post-update rows = %d, want 3 (stale plan served?)", len(res.Rows))
	}
	ps = s.PlanStats()
	if ps.Misses != 2 || ps.Evictions != 1 {
		t.Fatalf("after invalidation: %+v", ps)
	}
	if _, err := s.Query(q); err != nil {
		t.Fatal(err)
	}
	if ps = s.PlanStats(); ps.Hits != 3 {
		t.Fatalf("after re-repeat: %+v", ps)
	}

	// Disabling the cache stops caching without breaking queries.
	s.SetPlanCacheSize(0)
	if _, err := s.Query(q); err != nil {
		t.Fatal(err)
	}
	if ps = s.PlanStats(); ps.Hits != 0 || ps.Misses != 0 {
		t.Fatalf("disabled cache counted: %+v", ps)
	}
}

// TestEndpointStreamTrailers checks streamed SELECT responses carry
// their per-request statistics as HTTP trailers (the body length is
// unknown when the status goes out) while ASK keeps plain headers.
func TestEndpointStreamTrailers(t *testing.T) {
	_, ep := endpointFixture(t)
	w := httptest.NewRecorder()
	ep.ServeHTTP(w, httptest.NewRequest(http.MethodGet,
		"/sparql?query="+url.QueryEscape(`SELECT ?h WHERE { ?h a noa:Hotspot . }`), nil))
	if w.Code != http.StatusOK {
		t.Fatalf("status %d: %s", w.Code, w.Body)
	}
	res := w.Result()
	if got := res.Header.Get("Trailer"); !strings.Contains(got, "X-Rows") {
		t.Fatalf("Trailer declaration = %q", got)
	}
	if res.Trailer.Get("X-Rows") != "2" || res.Trailer.Get("X-Elapsed-Us") == "" {
		t.Fatalf("trailers = %v", res.Trailer)
	}
	if res.Trailer.Get("X-Error") != "" {
		t.Fatalf("unexpected X-Error trailer: %v", res.Trailer)
	}

	// ASK: headers, not trailers.
	w2 := httptest.NewRecorder()
	ep.ServeHTTP(w2, httptest.NewRequest(http.MethodGet,
		"/sparql?query="+url.QueryEscape(`ASK { ?h a noa:Hotspot }`), nil))
	res2 := w2.Result()
	if res2.Header.Get("X-Rows") != "1" || res2.Header.Get("Trailer") != "" {
		t.Fatalf("ask headers = %v, trailers = %v", res2.Header, res2.Trailer)
	}
}

// TestEndpointStreamsDuringWrites streams large SELECTs while
// concurrent writers batch-insert — the served-endpoint shape of the
// acquisition pipeline's flush loop (the pipeline itself lives in
// internal/core, which depends on this package, so the writer side is
// reproduced with InsertAll batches). Run under -race in CI.
func TestEndpointStreamsDuringWrites(t *testing.T) {
	s, ep := endpointFixture(t)
	for i := 0; i < 200; i++ {
		s.InsertAll(hotspotGroup(i, float64(i%50)))
	}
	query := "/sparql?query=" + url.QueryEscape(`SELECT ?h ?g WHERE { ?h a noa:Hotspot ; strdf:hasGeometry ?g . }`)

	stop := make(chan struct{})
	var writer sync.WaitGroup
	writer.Add(1)
	go func() { // the "pipeline": batched writes until the readers finish
		defer writer.Done()
		for i := 200; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			s.InsertAll(hotspotGroup(i, float64(i%50)))
		}
	}()
	var readers sync.WaitGroup
	for r := 0; r < 4; r++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			for i := 0; i < 20; i++ {
				w := httptest.NewRecorder()
				ep.ServeHTTP(w, httptest.NewRequest(http.MethodGet, query, nil))
				if w.Code != http.StatusOK {
					t.Errorf("stream status %d", w.Code)
					return
				}
				res := w.Result()
				if res.Trailer.Get("X-Error") != "" {
					t.Errorf("stream error trailer: %v", res.Trailer)
					return
				}
				// Each stream sees a consistent snapshot: at least the
				// 200 pre-loaded hotspots plus the fixture's two.
				rows, err := strconv.Atoi(res.Trailer.Get("X-Rows"))
				if err != nil || rows < 202 {
					t.Errorf("X-Rows = %q (%v), want >= 202", res.Trailer.Get("X-Rows"), err)
					return
				}
			}
		}()
	}
	readers.Wait()
	close(stop)
	writer.Wait()
}

// BenchmarkStreamedSelect measures allocation behaviour of a 10k-row
// SELECT through the cursor path. The full/materialised variant is the
// PR-2-shaped baseline (the whole result set built before the first
// byte); full/streamed drains the cursor row by row without
// accumulating; limit10/streamed is the LIMIT pushdown case — the
// cursor stops the scan after 10 rows, so its B/op must be a small
// fraction (>= 5x lower) of the materialising baseline's.
func BenchmarkStreamedSelect(b *testing.B) {
	s := New()
	if _, err := s.LoadTurtle(fixtureTurtle); err != nil {
		b.Fatal(err)
	}
	const hotspots = 10000
	var groups [][]rdf.Triple
	for i := 0; i < hotspots; i++ {
		groups = append(groups, hotspotGroup(i, float64(i%100)))
	}
	s.InsertAll(groups...)

	const full = `SELECT ?h ?g WHERE { ?h a noa:Hotspot ; strdf:hasGeometry ?g . }`
	const limited = full + ` LIMIT 10`

	b.Run("full/materialised", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			res, err := s.Query(full)
			if err != nil {
				b.Fatal(err)
			}
			if len(res.Rows) < hotspots {
				b.Fatalf("rows = %d", len(res.Rows))
			}
		}
	})
	stream := func(b *testing.B, q string, want int) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			cur, err := s.QueryStream(q)
			if err != nil {
				b.Fatal(err)
			}
			n := 0
			for _, ok := cur.Next(); ok; _, ok = cur.Next() {
				n++
			}
			if err := cur.Close(); err != nil {
				b.Fatal(err)
			}
			if n < want {
				b.Fatalf("rows = %d, want >= %d", n, want)
			}
		}
	}
	b.Run("full/streamed", func(b *testing.B) { stream(b, full, hotspots) })
	b.Run("limit10/streamed", func(b *testing.B) { stream(b, limited, 10) })
}

// TestCursorRowViewLifetime enforces the QueryCursor contract: a
// streamed Binding is a view into the engine's current batch, valid
// only until the next Next. A retained view row is allowed to change
// out from under the caller; Clone is the escape hatch that owns the
// values.
func TestCursorRowViewLifetime(t *testing.T) {
	s := New()
	for i := 0; i < 300; i++ { // several batches' worth of rows
		s.InsertAll(hotspotGroup(i, float64(i%50)))
	}
	cur, err := s.QueryStreamCtx(context.Background(), `SELECT ?h ?g WHERE { ?h a noa:Hotspot ; strdf:hasGeometry ?g . }`)
	if err != nil {
		t.Fatal(err)
	}
	defer cur.Close()

	first, ok := cur.Next()
	if !ok {
		t.Fatal("no rows")
	}
	clone := first.Clone()
	firstH := first["h"].Value

	// Drain the rest through the same view.
	mutated := false
	for row, more := cur.Next(); more; row, more = cur.Next() {
		if row["h"].Value != firstH {
			mutated = true
		}
	}
	if !mutated {
		t.Fatal("every streamed row carried the first row's value — the view was never advanced")
	}
	// The retained view now shows some later row, not the first one...
	if first["h"].Value == firstH {
		t.Fatalf("retained view row still reads %q after further Next calls; the reuse contract is not exercised", firstH)
	}
	// ...while the clone still owns the first row's values.
	if clone["h"].Value != firstH {
		t.Fatalf("clone = %q, want %q", clone["h"].Value, firstH)
	}
	if err := cur.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestStreamedSelectDuringWrites drives the batch cursor directly (no
// endpoint) while concurrent writers insert — the raw QueryStreamCtx
// shape of the flush loop. Each cursor must see a consistent snapshot
// under the store's lock discipline. Run under -race in CI.
func TestStreamedSelectDuringWrites(t *testing.T) {
	s := New()
	for i := 0; i < 200; i++ {
		s.InsertAll(hotspotGroup(i, float64(i%50)))
	}
	query := `SELECT ?h ?g WHERE { ?h a noa:Hotspot ; strdf:hasGeometry ?g . }`

	stop := make(chan struct{})
	var writer sync.WaitGroup
	writer.Add(1)
	go func() {
		defer writer.Done()
		for i := 200; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			s.InsertAll(hotspotGroup(i, float64(i%50)))
		}
	}()
	var readers sync.WaitGroup
	for r := 0; r < 4; r++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			for i := 0; i < 20; i++ {
				cur, err := s.QueryStreamCtx(context.Background(), query)
				if err != nil {
					t.Errorf("open: %v", err)
					return
				}
				rows := 0
				for _, ok := cur.Next(); ok; _, ok = cur.Next() {
					rows++
				}
				if err := cur.Close(); err != nil {
					t.Errorf("close: %v", err)
					return
				}
				if rows < 200 {
					t.Errorf("rows = %d, want >= 200", rows)
					return
				}
			}
		}()
	}
	readers.Wait()
	close(stop)
	writer.Wait()
}
