package strabon

import (
	"context"
	"errors"
	"fmt"
	"net/http/httptest"
	"net/url"
	"testing"
	"time"

	"repro/internal/rdf"
)

// Tests for the context-bound cursor surface: a cancelled (or timed
// out) context stops a streaming cursor at the next pull and releases
// the store read lock, so an abandoned client cannot block writers.

func ctxFixture(t *testing.T, rows int) *Store {
	t.Helper()
	s := New()
	var triples []rdf.Triple
	for i := 0; i < rows; i++ {
		subj := rdf.NewIRI(fmt.Sprintf("http://example.org/h%04d", i))
		triples = append(triples,
			rdf.Triple{S: subj, P: rdf.NewIRI(rdf.RDFType),
				O: rdf.NewIRI("http://teleios.di.uoa.gr/ontologies/noaOntology.owl#Hotspot")},
			rdf.Triple{S: subj,
				P: rdf.NewIRI("http://teleios.di.uoa.gr/ontologies/noaOntology.owl#hasConfidence"),
				O: rdf.NewFloat(0.5)})
	}
	s.LoadTriples(triples)
	return s
}

func TestQueryStreamCtxCancelReleasesLock(t *testing.T) {
	s := ctxFixture(t, 500)
	ctx, cancel := context.WithCancel(context.Background())
	cur, err := s.QueryStreamCtx(ctx, `SELECT ?h WHERE { ?h a noa:Hotspot . }`)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := cur.Next(); !ok {
		t.Fatal("no first row")
	}
	cancel()
	if _, ok := cur.Next(); ok {
		t.Fatal("Next yielded a row after cancellation")
	}
	if err := cur.Err(); !errors.Is(err, context.Canceled) {
		t.Fatalf("Err = %v, want context.Canceled", err)
	}
	// The cancelled cursor must have released the read lock even before
	// Close: a writer may proceed immediately.
	done := make(chan struct{})
	go func() {
		s.LoadTriples([]rdf.Triple{{
			S: rdf.NewIRI("http://example.org/late"),
			P: rdf.NewIRI(rdf.RDFType),
			O: rdf.NewIRI("http://teleios.di.uoa.gr/ontologies/noaOntology.owl#Hotspot"),
		}})
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("write blocked after context cancellation: read lock leaked")
	}
	if err := cur.Close(); !errors.Is(err, context.Canceled) {
		t.Fatalf("Close = %v, want context.Canceled", err)
	}
}

func TestQueryStreamCtxPreCancelled(t *testing.T) {
	s := ctxFixture(t, 3)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := s.QueryStreamCtx(ctx, `SELECT ?h WHERE { ?h a noa:Hotspot . }`); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// TestEndpointQueryTimeout pins the endpoint-side cap: a query under a
// tiny QueryTimeout terminates with the timeout recorded in the X-Error
// trailer instead of holding the read lock forever.
func TestEndpointQueryTimeout(t *testing.T) {
	s := ctxFixture(t, 2000)
	ep := NewEndpoint(s)
	ep.QueryTimeout = time.Nanosecond // expires before the first pull

	srv := httptest.NewServer(ep)
	defer srv.Close()
	resp, err := srv.Client().Get(srv.URL + "/sparql?query=" +
		url.QueryEscape(`SELECT ?h WHERE { ?h a noa:Hotspot . }`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	// Either the pre-evaluation check rejects it (400) or the stream
	// aborts with the deadline in the trailer; both release the lock.
	if resp.StatusCode == 200 {
		buf := make([]byte, 1<<16)
		for {
			if _, err := resp.Body.Read(buf); err != nil {
				break
			}
		}
		if got := resp.Trailer.Get("X-Error"); got == "" {
			t.Fatalf("timed-out stream carried no X-Error trailer")
		}
	}
	done := make(chan struct{})
	go func() {
		s.LoadTriples([]rdf.Triple{{
			S: rdf.NewIRI("http://example.org/after-timeout"),
			P: rdf.NewIRI(rdf.RDFType),
			O: rdf.NewIRI("http://teleios.di.uoa.gr/ontologies/noaOntology.owl#Hotspot"),
		}})
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("write blocked after query timeout")
	}
}
