package strabon

import (
	"context"
	"fmt"
	"strings"
	"time"

	"repro/internal/stsparql"
)

// ExplainAnalyze compiles a SELECT or ASK, executes it to exhaustion
// under the store read lock, and renders the plan tree annotated with
// per-operator actuals (rows out, batches, cumulative wall time) next
// to the optimizer's estimates — EXPLAIN ANALYZE. The evaluation is
// real: it takes the same read lock, runs the same compiled plan (plan
// cache included) and drains the same cursor path a query would, under
// ctx like any streamed evaluation.
func (s *Store) ExplainAnalyze(ctx context.Context, src string) (string, error) {
	if err := ctx.Err(); err != nil {
		return "", err
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	ev := stsparql.NewEvaluatorWithCache(s, s.cache)
	c, err := ev.CompileCached(src, s.ns, s.plans, s.gen.Load())
	if err != nil {
		return "", err
	}
	s.statsMu.Lock()
	s.stats.Queries++
	s.statsMu.Unlock()
	tr := stsparql.NewExecTrace(c)
	ev.SetTrace(tr)
	var b strings.Builder
	start := time.Now()
	switch {
	case c.IsSelect():
		cur, err := ev.RunCompiled(c)
		if err != nil {
			return "", err
		}
		rows, err := drainTraced(ctx, cur)
		if err != nil {
			return "", err
		}
		b.WriteString("select (analyze)\n")
		b.WriteString(tr.Render(c))
		fmt.Fprintf(&b, "total: rows=%d time=%v\n", rows, time.Since(start).Round(time.Microsecond))
	case c.IsAsk():
		ok, err := ev.AskCompiled(c)
		if err != nil {
			return "", err
		}
		b.WriteString("ask (analyze)\n")
		b.WriteString(tr.Render(c))
		fmt.Fprintf(&b, "total: ask=%v time=%v\n", ok, time.Since(start).Round(time.Microsecond))
	default:
		return "", fmt.Errorf("strabon: ExplainAnalyze wants SELECT or ASK")
	}
	return b.String(), nil
}

// drainTraced pulls a cursor to exhaustion under per-row context checks
// and closes it, returning the row count.
func drainTraced(ctx context.Context, cur stsparql.Cursor) (int, error) {
	defer cur.Close()
	n := 0
	for {
		if err := ctx.Err(); err != nil {
			return n, err
		}
		if _, ok := cur.Next(); !ok {
			break
		}
		n++
	}
	return n, cur.Close()
}
